// Cross-validation tests: the compiler's analytic machinery (the exact
// enumeration counter and the closed-form cost model) checked against
// what the executing kernels actually do on the simulated machine. These
// are the consistency guarantees behind EXPERIMENTS.md: if the counter
// and the machine disagreed, the DP would be optimizing a fiction.
package dmcc_test

import (
	"math"
	"testing"

	"dmcc/internal/cost"
	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// TestCounterMatchesMachineJacobiRowScheme: the enumeration counter's
// loop-carried word count for the row scheme must equal the words the
// kernel actually ships per iteration.
func TestCounterMatchesMachineJacobiRowScheme(t *testing.T) {
	m, n, iters := 32, 4, 3
	p := ir.Jacobi()
	g := grid.New(n, 1)
	bind := map[string]int{"m": m}
	schemes := map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.BlockContiguous(m, n, 0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"V": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
	}

	// Counted: X reads of L1 are the only remote words per iteration.
	var counted int64
	for _, nest := range p.Nests {
		ct, err := cost.CountNest(p, nest, schemes, g, bind)
		if err != nil {
			t.Fatal(err)
		}
		counted += ct.Words()
	}

	// Measured: the kernel's total words divided by iterations.
	a, b, _ := matrix.DiagonallyDominant(m, 9)
	x0 := make([]float64, m)
	res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, b, x0, iters, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Stats.Words / int64(iters)
	if counted != perIter {
		t.Errorf("counter says %d words/iter, machine moved %d", counted, perIter)
	}
}

// TestCounterMatchesMachineFlops: total flops agree between the counter
// and the executing kernel (both count 2 per multiply-add and 3 for the
// X update).
func TestCounterMatchesMachineFlops(t *testing.T) {
	m, n := 16, 4
	p := ir.Jacobi()
	g := grid.New(n, 1)
	bind := map[string]int{"m": m}
	schemes := map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.BlockContiguous(m, n, 0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"V": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
	}
	var counted int64
	for _, nest := range p.Nests {
		ct, err := cost.CountNest(p, nest, schemes, g, bind)
		if err != nil {
			t.Fatal(err)
		}
		counted += ct.TotalFlops
	}
	a, b, _ := matrix.DiagonallyDominant(m, 9)
	x0 := make([]float64, m)
	res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, b, x0, 1, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counted != res.Stats.Flops {
		t.Errorf("counter %d flops, machine %d", counted, res.Stats.Flops)
	}
}

// TestClosedFormTracksMachineJacobi: the Table 2 closed forms and the
// simulated makespans must order the grid shapes identically and agree
// on the 1xN shape (whose collectives map 1:1 onto the formula terms).
func TestClosedFormTracksMachineJacobi(t *testing.T) {
	m, n, iters := 64, 16, 2
	a, b, _ := matrix.DiagonallyDominant(m, 21)
	x0 := make([]float64, m)
	c := cost.Unit()

	type point struct {
		model, sim float64
	}
	shapes := [][2]int{{1, n}, {n, 1}}
	pts := map[string]point{}
	for _, s := range shapes {
		res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, b, x0, iters, s[0], s[1])
		if err != nil {
			t.Fatal(err)
		}
		pts[key(s)] = point{
			model: c.JacobiIteration(m, s[0], s[1]).Total() * float64(iters),
			sim:   res.Stats.ParallelTime,
		}
	}
	// Exact agreement on 1xN: reduction + update + no row exchange.
	p1 := pts["1x16"]
	if math.Abs(p1.model-p1.sim) > 1e-9 {
		t.Errorf("1xN: model %v != simulated %v", p1.model, p1.sim)
	}
	// Same winner under both measures.
	p2 := pts["16x1"]
	if (p1.model < p2.model) != (p1.sim < p2.sim) {
		t.Errorf("model and machine disagree on the winner: model %v/%v, sim %v/%v",
			p1.model, p2.model, p1.sim, p2.sim)
	}
}

func key(s [2]int) string {
	return fmtInt(s[0]) + "x" + fmtInt(s[1])
}

func fmtInt(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

// TestSORBoundHolds: the Section 5 closed-form bound dominates the
// measured pipelined makespan across sizes (after adding the update
// flops the bound omits).
func TestSORBoundHolds(t *testing.T) {
	c := cost.Unit()
	for _, mn := range [][2]int{{32, 4}, {64, 4}, {64, 8}} {
		m, n := mn[0], mn[1]
		a, b, _ := matrix.DiagonallyDominant(m, 25)
		x0 := make([]float64, m)
		res, err := kernels.SORPipelined(machine.DefaultConfig(), a, b, x0, 1.2, 2, n)
		if err != nil {
			t.Fatal(err)
		}
		perIter := res.Stats.ParallelTime / 2
		bound := c.SORPipelinedIteration(m, n).Total() + 5*float64(m) // update flops
		if perIter > bound {
			t.Errorf("m=%d n=%d: measured %v exceeds bound %v", m, n, perIter, bound)
		}
	}
}

// TestRedistributionPlanMatchesChangeCost: the dist-level redistribution
// plan and the compiler's ChangeCost agree on what a row->column switch
// moves for the A matrix.
func TestRedistributionPlanMatchesChangeCost(t *testing.T) {
	m, n := 16, 4
	g := grid.New(n, 1)
	rows := dist.Scheme2D(dist.BlockContiguous(m, n, 0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil)
	cols := dist.Scheme2D(dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, dist.BlockContiguous(m, n, 0), nil)
	plan := dist.NewPlan(g, []int{m, m}, rows, cols)
	// Off-diagonal blocks move: m^2 (1 - 1/N).
	want := m*m - m*(m/n)
	if plan.TotalWords != want {
		t.Errorf("plan moves %d words, want %d", plan.TotalWords, want)
	}
	// Perfectly balanced: per-proc in = out = total/N.
	if plan.MaxInWords != want/n || plan.MaxOutWords != want/n {
		t.Errorf("plan balance: in %d out %d, want %d", plan.MaxInWords, plan.MaxOutWords, want/n)
	}
}
