// The complete pipeline in one example: parse the paper's SOR listing
// from source text, run the compiler (alignment + Algorithm 1 + the
// dependence analysis), execute the compiled program on the simulated
// machine with the naive backend, and compare its communication cost to
// the hand-pipelined Fig 6 kernel computing the same values.
package main

import (
	"fmt"
	"log"
	"os"

	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/exec"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/parse"
)

func main() {
	const (
		m, n  = 24, 4
		omega = 1.2
		iters = 3
	)

	src, err := os.ReadFile("testdata/sor.f")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := parse.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d nest(s), arrays", prog.Name, len(prog.Nests))
	for _, d := range prog.AllDims() {
		if d.Dim == 0 {
			fmt.Printf(" %s", d.Array)
		}
	}
	fmt.Println()

	compiler := core.NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
	plan, err := compiler.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: DP cost %.0f, pipelinable=%v\n",
		plan.DP.MinimumCost, plan.Pipelining[0].CanPipeline)

	// Inputs.
	a, b, _ := matrix.DiagonallyDominant(m, 11)
	x0 := make([]float64, m)
	input := ir.NewStorage(prog)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, b[i-1])
		input.Store("X", []int{i}, 0)
	}
	scalars := map[string]float64{"OMEGA": omega}

	// Execute the compiled program with the naive backend.
	_, ss, err := compiler.SegmentCost(1, len(prog.Nests))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exec.Run(prog, ss, map[string]int{"m": m}, scalars, iters, machine.DefaultConfig(), input)
	if err != nil {
		log.Fatal(err)
	}

	// The hand-pipelined Fig 6 kernel computes the same values.
	pip, err := kernels.SORPipelined(machine.DefaultConfig(), a, b, x0, omega, iters, n)
	if err != nil {
		log.Fatal(err)
	}
	want := matrix.SORSeq(a, b, x0, omega, iters)
	got := make([]float64, m)
	for i := 1; i <= m; i++ {
		got[i-1] = res.Values.Load(ir.R("X", ir.Const(i)), []int{i})
	}
	fmt.Printf("naive backend:    makespan %.0f, %d msgs (per-element transfers + reductions)\n",
		res.Stats.ParallelTime, res.Stats.Messages)
	fmt.Printf("Fig 6 pipeline:   makespan %.0f, %d msgs\n",
		pip.Stats.ParallelTime, pip.Stats.Messages)
	fmt.Printf("pipelining gain:  %.2fx\n", res.Stats.ParallelTime/pip.Stats.ParallelTime)
	fmt.Printf("max |naive - sequential|    = %.3g\n", matrix.MaxAbsDiff(got, want))
	fmt.Printf("max |pipeline - sequential| = %.3g\n", matrix.MaxAbsDiff(pip.X, want))
}
