// Processor-idleness study: Section 1 observes that "the reduction step
// normally uses a lot of communication time and results in the idleness
// of processors". This example traces the naive and pipelined SOR
// implementations, prints their per-processor time breakdowns and Gantt
// charts, and shows the stencil's nearest-neighbour pattern for contrast.
package main

import (
	"fmt"
	"log"

	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/trace"
)

func main() {
	const (
		m, n  = 32, 4
		iters = 1
	)
	a, b, _ := matrix.DiagonallyDominant(m, 5)
	x0 := make([]float64, m)

	run := func(title string, f func(cfg machine.Config) (kernels.Result, error)) {
		col := trace.New()
		cfg := machine.DefaultConfig()
		cfg.Tracer = col
		res, err := f(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sum := trace.Summarize(col.Events(), n, res.Stats.ParallelTime)
		fmt.Printf("== %s ==\n%s", title, sum)
		fmt.Print(trace.Gantt(col.Events(), n, res.Stats.ParallelTime, 96))
		fmt.Println()
	}

	run("SOR, naive reduction per step (Section 5's naive algorithm)",
		func(cfg machine.Config) (kernels.Result, error) {
			return kernels.SORNaive(cfg, a, b, x0, 1.2, iters, n)
		})
	run("SOR, Fig 6 ring pipeline",
		func(cfg machine.Config) (kernels.Result, error) {
			return kernels.SORPipelined(cfg, a, b, x0, 1.2, iters, n)
		})
	run("three-point stencil (neighbour-only communication)",
		func(cfg machine.Config) (kernels.Result, error) {
			return kernels.Stencil(cfg, matrix.RandomVector(m, 7), 8, n)
		})
}
