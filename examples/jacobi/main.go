// Jacobi grid-shape study: reproduce the Table 2 trade-off by running the
// same Jacobi system on the 1xN, Nx1 and sqrt(N)xsqrt(N) grids of
// Section 3 and comparing simulated makespans with the closed-form model.
package main

import (
	"fmt"
	"log"

	"dmcc/internal/cost"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func main() {
	const (
		m     = 64
		n     = 16
		iters = 4
	)
	a, b, _ := matrix.DiagonallyDominant(m, 11)
	x0 := make([]float64, m)
	model := cost.Unit()

	fmt.Printf("Jacobi on %d processors, m=%d, %d iterations\n", n, m, iters)
	fmt.Printf("%-10s %-22s %-22s %s\n", "grid", "simulated makespan", "model (per iter x k)", "words")
	for _, shape := range [][2]int{{1, n}, {n, 1}, {4, 4}} {
		res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, b, x0, iters, shape[0], shape[1])
		if err != nil {
			log.Fatal(err)
		}
		pred := model.JacobiIteration(m, shape[0], shape[1]).Total() * iters
		fmt.Printf("%-10s %-22.0f %-22.0f %d\n",
			fmt.Sprintf("%dx%d", shape[0], shape[1]), res.Stats.ParallelTime, pred, res.Stats.Words)
	}
	fmt.Println("\nThe Nx1 row scheme (the Section 4 DP choice) has the lowest")
	fmt.Println("communication volume; 1xN has the best compute balance but pays")
	fmt.Println("the reduction; the square grid sits between (Table 2's shape).")
}
