// SOR pipelining study (Section 5): compare the naive
// reduction-per-step implementation with the Fig 6 ring pipeline across
// problem sizes, and print the Fig 5 wavefront schedule for the paper's
// 16x16 instance.
package main

import (
	"fmt"
	"log"

	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/sched"
)

func main() {
	const (
		n     = 4
		omega = 1.2
		iters = 2
	)

	fmt.Println("SOR: naive vs pipelined on a 4-processor ring (2 sweeps)")
	fmt.Printf("%-6s %-16s %-16s %s\n", "m", "naive makespan", "pipelined", "speedup")
	for _, m := range []int{32, 64, 128, 256} {
		a, b, _ := matrix.DiagonallyDominant(m, 17)
		x0 := make([]float64, m)
		naive, err := kernels.SORNaive(machine.DefaultConfig(), a, b, x0, omega, iters, n)
		if err != nil {
			log.Fatal(err)
		}
		pip, err := kernels.SORPipelined(machine.DefaultConfig(), a, b, x0, omega, iters, n)
		if err != nil {
			log.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(naive.X, pip.X); d > 1e-9 {
			log.Fatalf("m=%d: naive and pipelined disagree by %v", m, d)
		}
		fmt.Printf("%-6d %-16.0f %-16.0f %.2fx\n",
			m, naive.Stats.ParallelTime, pip.Stats.ParallelTime,
			naive.Stats.ParallelTime/pip.Stats.ParallelTime)
	}

	fmt.Println("\nFig 5 wavefront (m=16, N=4), first 12 steps:")
	table, err := sched.Schedule(16, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	if len(table) > 12 {
		table = table[:12]
	}
	fmt.Print(sched.Render(table, 4))
}
