// Quickstart: compile Jacobi's iterative algorithm with the paper's
// pipeline (alignment -> Algorithm 1 -> pipelining analysis), then run
// the resulting row-distributed kernel on a simulated 4-processor
// machine and check it against the sequential solver.
package main

import (
	"fmt"
	"log"

	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func main() {
	const (
		m     = 32 // system size
		n     = 4  // processors
		iters = 50
	)

	// 1. Compile: the dynamic programming algorithm of Section 4 picks
	// the minimum-cost order of distribution schemes for the two loops.
	prog := ir.Jacobi()
	compiler := core.NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
	plan, err := compiler.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d segment(s), total cost %.0f (whole-program baseline %.0f)\n",
		prog.Name, len(plan.DP.Segments), plan.DP.MinimumCost, plan.WholeProgramCost)
	for _, seg := range plan.DP.Segments {
		fmt.Printf("  loops L%d..L%d on %s\n", seg.Start, seg.Start+seg.Len-1, seg.Schemes.Grid)
	}

	// 2. Run the corresponding kernel (row distribution on an Nx1 grid)
	// on the simulated machine.
	a, b, xStar := matrix.DiagonallyDominant(m, 7)
	x0 := make([]float64, m)
	res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, b, x0, iters, n, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Verify and report.
	ref := matrix.JacobiSeq(a, b, x0, iters)
	fmt.Printf("simulated makespan: %.0f time units, %d messages, %d words\n",
		res.Stats.ParallelTime, res.Stats.Messages, res.Stats.Words)
	fmt.Printf("max |parallel - sequential| = %.3g\n", matrix.MaxAbsDiff(res.X, ref))
	fmt.Printf("max |x - x*| after %d iterations = %.3g\n", iters, matrix.MaxAbsDiff(res.X, xStar))
}
