// Gauss elimination pipelining study (Section 6): cyclic row
// distribution on a ring; compare naive multicast of pivot rows and X
// values against the Fig 8 shift pipeline, across ring sizes.
package main

import (
	"fmt"
	"log"

	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func main() {
	const m = 128
	a, b, xStar := matrix.DiagonallyDominant(m, 23)

	fmt.Printf("Gauss elimination, m=%d, cyclic rows (f(i) = (i-1) mod N)\n", m)
	fmt.Printf("%-6s %-18s %-18s %-9s %s\n", "N", "broadcast", "pipelined", "speedup", "max error")
	for _, n := range []int{2, 4, 8, 16} {
		bc, err := kernels.GaussBroadcast(machine.DefaultConfig(), a, b, n)
		if err != nil {
			log.Fatal(err)
		}
		pp, err := kernels.GaussPipelined(machine.DefaultConfig(), a, b, n)
		if err != nil {
			log.Fatal(err)
		}
		errNorm := matrix.MaxAbsDiff(pp.X, xStar)
		fmt.Printf("%-6d %-18.0f %-18.0f %-9.2f %.3g\n",
			n, bc.Stats.ParallelTime, pp.Stats.ParallelTime,
			bc.Stats.ParallelTime/pp.Stats.ParallelTime, errNorm)
	}
	fmt.Println("\nThe pipeline's advantage is the multicast's log N factor: it")
	fmt.Println("grows with N, exactly the Table 5 transformation of Section 6.")
}
