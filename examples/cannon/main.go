// Cannon's matrix multiplication (Section 2.1): the rotated 2-D
// distributions of Fig 1 (b) and (c) in action. Prints the initial
// skewed layouts for a 16x16 matrix on a 4x4 grid, then multiplies and
// verifies on growing sizes.
package main

import (
	"fmt"
	"log"

	"dmcc/internal/dist"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func main() {
	// The Fig 1 (b) and (c) layouts that make Cannon's algorithm start
	// with multipliable blocks.
	cases := dist.Fig1Cases(16)
	for _, c := range cases {
		if c.Name != "b" && c.Name != "c" {
			continue
		}
		fmt.Printf("Fig 1 (%s): %s\n", c.Name, c.Scheme)
		m := dist.LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
		for _, line := range dist.BlockLabels(m) {
			fmt.Println(" ", line)
		}
		fmt.Println()
	}

	fmt.Println("A = B * C on a 4x4 grid:")
	fmt.Printf("%-6s %-18s %-10s %s\n", "m", "makespan", "words", "max |A - B*C|")
	for _, m := range []int{16, 32, 64, 128} {
		bm := matrix.RandomDense(m, m, 31)
		cm := matrix.RandomDense(m, m, 37)
		got, st, err := kernels.Cannon(machine.DefaultConfig(), bm, cm, 4)
		if err != nil {
			log.Fatal(err)
		}
		want := bm.Mul(cm)
		fmt.Printf("%-6d %-18.0f %-10d %.3g\n",
			m, st.ParallelTime, st.Words, matrix.MaxAbsDiff(got.Data, want.Data))
	}
}
