{ Jacobi's iterative algorithm for linear systems A x = b,
  exactly the Section 3 listing of Lee & Tsai (1993). }
PROGRAM jacobi
PARAM m
REAL A(m,m), V(m), B(m), X(m)
DO 10 k = 1, MAX_ITERATION
  DO 6 i = 1, m
3   V(i) = 0.0
    DO 6 j = 1, m
5     V(i) = V(i) + A(i,j) * X(j)
6 CONTINUE
  DO 9 i = 1, m
8   X(i) = X(i) + (B(i) - V(i)) / A(i,i)
9 CONTINUE
10 CONTINUE
END
