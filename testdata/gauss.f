{ Gauss elimination, the Section 6 listing. }
PROGRAM gauss
PARAM m
REAL A(m,m), L(m,m), V(m), B(m), X(m)
DO 8 k = 1, m
  DO 8 i = k + 1, m
4   L(i,k) = A(i,k) / A(k,k)
5   B(i) = B(i) - L(i,k) * B(k)
    DO 8 j = k + 1, m
7     A(i,j) = A(i,j) - L(i,k) * A(k,j)
8 CONTINUE
DO 12 i = m, 1, -1
11  V(i) = 0.0
12 CONTINUE
DO 17 j = m, 1, -1
14  X(j) = (B(j) - V(j)) / A(j,j)
  DO 17 i = j - 1, 1, -1
16    V(i) = V(i) + A(i,j) * X(j)
17 CONTINUE
END
