{ Successive over-relaxation, the Section 5 listing. }
PROGRAM sor
PARAM m
REAL A(m,m), V(m), B(m), X(m)
DO 9 k = 1, MAX_ITERATION
  DO 8 i = 1, m
3   V(i) = 0.0
    DO 6 j = 1, m
5     V(i) = V(i) + A(i,j) * X(j)
6   CONTINUE
7   X(i) = X(i) + OMEGA * (B(i) - V(i)) / A(i,i)
8 CONTINUE
9 CONTINUE
END
