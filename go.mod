module dmcc

go 1.22
