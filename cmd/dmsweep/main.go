// Command dmsweep runs parameter sweeps over the kernels and prints CSV
// series — the raw data behind EXPERIMENTS.md's figures. Each row is one
// (kernel variant, m, N) point with the simulated makespan, words on the
// wire, and the most-loaded processor's flops.
//
// Usage:
//
//	dmsweep -sweep sor     -m 32,64,128 -n 4,8
//	dmsweep -sweep gauss   -m 64,128    -n 4,8,16
//	dmsweep -sweep jacobi  -m 64,128    -n 16
//	dmsweep -sweep stencil -m 64,256    -n 16
//	dmsweep -sweep chunks  -m 64        -n 4   (SOR chunk-size x alpha)
//	dmsweep -sweep compile -m 64 -n 16 -s 4,8,16 -j 4
//	                                           (compile-time scaling of
//	                                            Algorithm 1 over synthetic
//	                                            nest sequences of length s)
//	dmsweep -sweep symbolic -m 64,128,256,1024 -n 4,8
//	                                           (compile once per (program,
//	                                            N), fit piecewise-
//	                                            polynomial cost formulas,
//	                                            evaluate every m
//	                                            symbolically — no
//	                                            recompile per point)
//	dmsweep -sweep exec -m 32,64 -n 16         (batched exec backend vs the
//	                                            per-element RunExact oracle:
//	                                            wall-clock, simulated time,
//	                                            naive and transport message/
//	                                            word counts)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/exec"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func main() {
	sweep := flag.String("sweep", "sor", "sor, gauss, jacobi, stencil, chunks, compile, symbolic, exec")
	ms := flag.String("m", "32,64,128", "comma-separated problem sizes")
	ns := flag.String("n", "4,8", "comma-separated processor counts")
	ss := flag.String("s", "4,8,16", "comma-separated nest-sequence lengths (compile sweep)")
	jobs := flag.Int("j", 0, "cost-engine worker count (0 = all CPUs, 1 = serial)")
	flag.Parse()

	mList, err := parseInts(*ms)
	if err != nil {
		fail(err)
	}
	nList, err := parseInts(*ns)
	if err != nil {
		fail(err)
	}
	sList, err := parseInts(*ss)
	if err != nil {
		fail(err)
	}
	if *sweep == "compile" {
		if err := runCompileSweep(mList, nList, sList, *jobs); err != nil {
			fail(err)
		}
		return
	}
	if *sweep == "symbolic" {
		if err := runSymbolicSweep(mList, nList); err != nil {
			fail(err)
		}
		return
	}
	if *sweep == "exec" {
		if err := runExecSweep(mList, nList); err != nil {
			fail(err)
		}
		return
	}
	if err := run(*sweep, mList, nList); err != nil {
		fail(err)
	}
}

// runSymbolicSweep is the closed-form m-sweep: for each (program, N) it
// compiles ONCE at a base size, freezes the plan, fits piecewise
// polynomials in m to every nest's counts, and then prices every m in
// the list by evaluating the polynomials — per-point work is O(degree),
// independent of m. eval_ns records the per-point evaluation time so the
// independence is visible in the output.
func runSymbolicSweep(mList, nList []int) error {
	fmt.Println("prog,n,m,total,exec,redist,loopcarried,eval_ns")
	progs := []func() *ir.Program{ir.Jacobi, ir.SOR}
	for _, mk := range progs {
		for _, n := range nList {
			p := mk()
			// Sample from the asymptotic regime: below (n-1)^2 + n the
			// last processor's block under ceil(m/n) partitioning is
			// still empty, and counts only become piecewise polynomial
			// once every block is populated.
			baseM := n * n
			if baseM < 4*n {
				baseM = 4 * n
			}
			c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": baseM}, n)
			pe, err := core.NewPlanEvaluator(c)
			if err != nil {
				return err
			}
			if err := pe.Fit(baseM, 3, 2); err != nil {
				fmt.Printf("# %s n=%d: %v; evaluating per point instead\n", p.Name, n, err)
			}
			for _, f := range pe.Formulas() {
				fmt.Printf("# %s n=%d %s\n", p.Name, n, f)
			}
			for _, m := range mList {
				start := time.Now()
				pc, err := pe.EvalAt(m)
				if err != nil {
					return err
				}
				fmt.Printf("%s,%d,%d,%.0f,%.0f,%.0f,%.0f,%d\n",
					p.Name, n, m, pc.Total(), pc.Exec, pc.Redist, pc.LoopCarried,
					time.Since(start).Nanoseconds())
			}
		}
	}
	return nil
}

// runExecSweep compares the batched exec backend against the
// per-element RunExact oracle on the three paper programs. Both arms
// report the same simulated time and naive message/word counts (they
// share the cost model); the batched arm additionally reports what its
// vectored transport moved, and wall_ns shows the real-time win of the
// inspector/executor schedule. The exact arm needs its channel capacity
// raised to the largest per-pair burst (m*m covers it) — the deadlock
// crutch the batched engine removes; the batched arm runs at the
// default ChanCap.
func runExecSweep(mList, nList []int) error {
	fmt.Println("prog,engine,m,n,wall_ns,simtime,messages,words,transport_messages,transport_words,max_msg_words")
	progs := []struct {
		name    string
		mk      func() *ir.Program
		scalars map[string]float64
		iters   int
		x0      bool
	}{
		{"jacobi", ir.Jacobi, nil, 2, true},
		{"sor", ir.SOR, map[string]float64{"OMEGA": 1.2}, 2, true},
		{"gauss", ir.Gauss, nil, 1, false},
	}
	for _, pr := range progs {
		for _, m := range mList {
			for _, n := range nList {
				p := pr.mk()
				c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
				_, ss, err := c.SegmentCost(1, len(p.Nests))
				if err != nil {
					return err
				}
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				input := ir.NewStorage(p)
				for i := 1; i <= m; i++ {
					for j := 1; j <= m; j++ {
						input.Store("A", []int{i, j}, a.At(i-1, j-1))
					}
					input.Store("B", []int{i}, b[i-1])
					if pr.x0 {
						input.Store("X", []int{i}, 0)
					}
				}
				bind := map[string]int{"m": m}

				start := time.Now()
				res, err := exec.Run(p, ss, bind, pr.scalars, pr.iters, machine.DefaultConfig(), input)
				if err != nil {
					return err
				}
				emitExec(pr.name, "batched", m, n, time.Since(start), res)

				ecfg := machine.DefaultConfig()
				ecfg.ChanCap = m * m
				start = time.Now()
				res, err = exec.RunExact(p, ss, bind, pr.scalars, pr.iters, ecfg, input)
				if err != nil {
					return err
				}
				emitExec(pr.name, "exact", m, n, time.Since(start), res)
			}
		}
	}
	return nil
}

func emitExec(prog, engine string, m, n int, wall time.Duration, res exec.Result) {
	fmt.Printf("%s,%s,%d,%d,%d,%.0f,%d,%d,%d,%d,%d\n",
		prog, engine, m, n, wall.Nanoseconds(), res.Stats.ParallelTime,
		res.Stats.Messages, res.Stats.Words,
		res.Transport.Messages, res.Transport.Words, res.Transport.MaxMsgWords)
}

// runCompileSweep measures the compile pipeline itself: wall-clock time
// of Compile() on synthetic nest sequences of growing length, for the
// analytic+memoized engine, the PR 1 engine (exact nest enumeration)
// and the exact-everything ablation.
func runCompileSweep(mList, nList, sList []int, jobs int) error {
	fmt.Println("engine,s,m,n,compile_ns,segments,mincost")
	for _, s := range sList {
		for _, m := range mList {
			for _, n := range nList {
				for _, engine := range []string{"analytic", "pr1", "exact"} {
					p := ir.Synthetic(s)
					c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
					c.Jobs = jobs
					if engine == "pr1" {
						c.ExactNestCount = true
					}
					if engine == "exact" {
						c.ExactNestCount = true
						c.ExactChangeCost = true
						c.NoCache = true
					}
					start := time.Now()
					res, err := c.Compile()
					if err != nil {
						return err
					}
					fmt.Printf("%s,%d,%d,%d,%d,%d,%.0f\n",
						engine, s, m, n, time.Since(start).Nanoseconds(),
						len(res.DP.Segments), res.DP.MinimumCost)
				}
			}
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dmsweep: %v\n", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func emitHeader() {
	fmt.Println("variant,m,n,simtime,words,maxflops")
}

func emit(variant string, m, n int, st machine.Stats) {
	fmt.Printf("%s,%d,%d,%.0f,%d,%d\n", variant, m, n, st.ParallelTime, st.Words, st.MaxFlops())
}

func run(sweep string, mList, nList []int) error {
	cfg := machine.DefaultConfig()
	emitHeader()
	switch sweep {
	case "sor":
		for _, m := range mList {
			for _, n := range nList {
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				x0 := make([]float64, m)
				naive, err := kernels.SORNaive(cfg, a, b, x0, 1.2, 2, n)
				if err != nil {
					return err
				}
				pip, err := kernels.SORPipelined(cfg, a, b, x0, 1.2, 2, n)
				if err != nil {
					return err
				}
				emit("sor-naive", m, n, naive.Stats)
				emit("sor-pipelined", m, n, pip.Stats)
			}
		}
	case "gauss":
		for _, m := range mList {
			for _, n := range nList {
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				bc, err := kernels.GaussBroadcast(cfg, a, b, n)
				if err != nil {
					return err
				}
				pp, err := kernels.GaussPipelined(cfg, a, b, n)
				if err != nil {
					return err
				}
				pv, err := kernels.GaussPartialPivot(cfg, a, b, n)
				if err != nil {
					return err
				}
				emit("gauss-broadcast", m, n, bc.Stats)
				emit("gauss-pipelined", m, n, pp.Stats)
				emit("gauss-pivoting", m, n, pv.Stats)
			}
		}
	case "jacobi":
		for _, m := range mList {
			for _, n := range nList {
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				x0 := make([]float64, m)
				for _, shape := range [][2]int{{1, n}, {n, 1}} {
					res, err := kernels.JacobiGrid(cfg, a, b, x0, 2, shape[0], shape[1])
					if err != nil {
						return err
					}
					emit(fmt.Sprintf("jacobi-%dx%d", shape[0], shape[1]), m, n, res.Stats)
				}
			}
		}
	case "stencil":
		for _, m := range mList {
			for _, n := range nList {
				u0 := matrix.RandomDense(m, m, 1)
				if sq := isqrt(n); sq*sq == n {
					_, st, err := kernels.Stencil2D(cfg, u0, 4, sq, sq)
					if err != nil {
						return err
					}
					emit("stencil2d-square", m, n, st)
				}
				_, st, err := kernels.Stencil2D(cfg, u0, 4, 1, n)
				if err != nil {
					return err
				}
				emit("stencil2d-strip", m, n, st)
			}
		}
	case "chunks":
		for _, m := range mList {
			for _, n := range nList {
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				x0 := make([]float64, m)
				for _, alpha := range []float64{0, 16} {
					for chunk := 1; chunk <= m/n; chunk *= 2 {
						if (m/n)%chunk != 0 {
							continue
						}
						c := cfg
						c.Alpha = alpha
						res, err := kernels.SORPipelinedChunked(c, a, b, x0, 1.2, 2, n, chunk)
						if err != nil {
							return err
						}
						emit(fmt.Sprintf("sor-chunk%d-alpha%.0f", chunk, alpha), m, n, res.Stats)
					}
				}
			}
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}
	return nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
