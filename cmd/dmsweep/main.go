// Command dmsweep runs parameter sweeps over the kernels and compiler
// and prints CSV series — the raw data behind EXPERIMENTS.md's figures.
// The sweep engine lives in internal/sweep; this command parses grids,
// attaches the artifact cache, picks the output format and applies the
// baseline gate.
//
// Usage:
//
//	dmsweep -sweep sor     -m 32,64,128 -n 4,8
//	dmsweep -sweep gauss   -m 64,128    -n 4,8,16
//	dmsweep -sweep jacobi  -m 64,128    -n 16
//	dmsweep -sweep stencil -m 64,256    -n 16
//	dmsweep -sweep chunks  -m 64        -n 4   (SOR chunk-size x alpha)
//	dmsweep -sweep compile -m 64 -n 16 -s 4,8,16 -j 4
//	                                           (compile-time scaling of
//	                                            Algorithm 1 over synthetic
//	                                            nest sequences of length s)
//	dmsweep -sweep symbolic -m 64,128,256,1024 -n 4,8
//	                                           (compile once per (program,
//	                                            N), fit piecewise-
//	                                            polynomial cost formulas,
//	                                            evaluate every m
//	                                            symbolically — no
//	                                            recompile per point)
//	dmsweep -sweep exec -m 32,64 -n 16         (batched exec backend vs the
//	                                            per-element RunExact oracle;
//	                                            -pipeline=false reverts the
//	                                            batched arm to per-element
//	                                            finalizes; -redist=p2p
//	                                            reverts scheme changes to
//	                                            per-pair exchanges instead
//	                                            of composed collectives)
//	dmsweep -sweep scale -m 64 -n 256,1024,4096 (large-N engine scaling:
//	                                            the batched backend under
//	                                            the discrete-event runtime
//	                                            at every N, and under the
//	                                            goroutine runtime up to
//	                                            N=256; wall_ns/sim_ns
//	                                            columns show the scaling
//	                                            gap, deterministic metrics
//	                                            are identical)
//
// Profiling: -cpuprofile prof.cpu / -memprofile prof.mem write pprof
// profiles of the sweep itself.
//
// Caching and gating:
//
//	dmsweep -sweep compile -cache              reuse cached point results
//	                                           (content-addressed on the
//	                                            program, binding and engine
//	                                            flags; stats on stderr)
//	dmsweep -sweep compile -json               deterministic JSON instead of
//	                                           CSV (no wall-clock columns;
//	                                            cached and fresh runs emit
//	                                            byte-identical documents)
//	dmsweep -sweep exec -json -baseline BENCH_exec.json
//	                                           diff this sweep against a
//	                                           committed baseline and exit
//	                                           nonzero on regressions
//
// Sharding and peer stores:
//
//	dmsweep -sweep compile -shard 0/2 -json    run half the points (the
//	                                           canonical order is split
//	                                           round-robin; shards are
//	                                           disjoint and exhaustive)
//	dmsweep -merge s0.json,s1.json             reassemble sharded -json
//	                                           outputs into the canonical
//	                                           document (byte-identical to
//	                                           the unsharded run; -baseline
//	                                           applies to the merge)
//	dmsweep -sweep compile -store-remote http://host:8077
//	                                           tier the cache over a peer
//	                                           daemon's /artifact store
//	                                           (implies -cache): warm
//	                                           points are pulled from the
//	                                           peer, computed points are
//	                                           written through — sharded
//	                                           workers share one store
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dmcc/internal/artifact"
	"dmcc/internal/cli"
	"dmcc/internal/exec"
	"dmcc/internal/sweep"
)

func main() {
	kind := flag.String("sweep", "sor", "sor, gauss, jacobi, stencil, chunks, compile, symbolic, exec, scale")
	ms := flag.String("m", "32,64,128", "comma-separated problem sizes")
	ns := flag.String("n", "4,8", "comma-separated processor counts")
	ss := flag.String("s", "4,8,16", "comma-separated nest-sequence lengths (compile sweep)")
	jobs := flag.Int("j", 0, "cost-engine worker count (0 = all CPUs, 1 = serial)")
	workers := flag.Int("workers", 1, "sweep points computed concurrently")
	useCache := flag.Bool("cache", false, "memoize point results in the artifact cache")
	cacheDir := flag.String("cache-dir", ".dmcc-cache", "artifact cache directory")
	cacheMax := flag.Int64("cache-max-bytes", 256<<20, "GC the cache down to this size after the sweep (0 = unbounded)")
	jsonOut := flag.Bool("json", false, "emit deterministic JSON instead of CSV")
	baseline := flag.String("baseline", "", "baseline JSON file to diff against; regressions exit nonzero")
	baselineTol := flag.Float64("baseline-tol", 0, "relative tolerance for -baseline (0.05 = 5%)")
	pipeline := flag.Bool("pipeline", true, "exec sweep: vectored two-phase / ring reduction exchange (false = per-element finalizes)")
	redistName := flag.String("redist", "auto", "exec/scale sweeps: scheme-change lowering (auto, collective, p2p)")
	shard := flag.String("shard", "", "run one shard of the sweep, as k/n (e.g. 0/2, 1/2)")
	storeRemote := flag.String("store-remote", "", "peer daemon URL to tier the cache over (implies -cache)")
	remoteTimeout := flag.Duration("remote-timeout", 5*time.Second, "per-call bound on peer store requests")
	merge := flag.String("merge", "", "comma-separated sharded -json outputs to reassemble (skips sweeping; emits JSON)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *merge != "" {
		res, err := sweep.MergeFiles(strings.Split(*merge, ","))
		if err != nil {
			fail(err)
		}
		if err := res.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		gate(res, *baseline, *baselineTol)
		return
	}

	// Malformed grids, an unknown sweep family or an unknown lowering are
	// usage errors (exit 2); failures while sweeping exit 1.
	switch *kind {
	case "sor", "gauss", "jacobi", "stencil", "chunks", "compile", "symbolic", "exec", "scale":
	default:
		cli.Usage("dmsweep", fmt.Errorf("unknown sweep %q", *kind))
	}
	mList, err := parseInts(*ms)
	if err != nil {
		cli.Usage("dmsweep", err)
	}
	nList, err := parseInts(*ns)
	if err != nil {
		cli.Usage("dmsweep", err)
	}
	sList, err := parseInts(*ss)
	if err != nil {
		cli.Usage("dmsweep", err)
	}
	redist, err := parseRedist(*redistName)
	if err != nil {
		cli.Usage("dmsweep", err)
	}
	shardK, shardN, err := parseShard(*shard)
	if err != nil {
		cli.Usage("dmsweep", err)
	}

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	opt := sweep.Options{
		Jobs:       *jobs,
		Workers:    *workers,
		NoPipeline: !*pipeline,
		Redist:     redist,
		Shard:      shardK,
		ShardCount: shardN,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dmsweep: "+format+"\n", args...)
		},
	}
	var store *artifact.Store
	if *useCache || *storeRemote != "" {
		store, err = artifact.Open(*cacheDir)
		if err != nil {
			fail(err)
		}
		store.Warnf = opt.Warnf
		opt.Cache = store
		if *storeRemote != "" {
			opt.Cache = artifact.NewTiered(store, artifact.OpenRemote(*storeRemote, artifact.RemoteOptions{
				Timeout: *remoteTimeout, Warnf: opt.Warnf,
			}))
		}
	}

	var res *sweep.Result
	switch *kind {
	case "compile":
		res, err = sweep.Compile(mList, nList, sList, opt)
	case "symbolic":
		res, err = sweep.Symbolic(mList, nList, opt)
	case "exec":
		res, err = sweep.Exec(mList, nList, opt)
	case "scale":
		res, err = sweep.Scale(mList, nList, opt)
	default:
		res, err = sweep.Kernel(*kind, mList, nList, opt)
	}
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		err = res.WriteJSON(os.Stdout)
	} else {
		err = res.WriteCSV(os.Stdout)
	}
	if err != nil {
		fail(err)
	}

	if store != nil {
		fmt.Fprintf(os.Stderr, "dmsweep: cache %s (dir %s)\n", store.Stats(), store.Dir())
		if *cacheMax > 0 {
			removed, err := store.GC(*cacheMax)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmsweep: cache gc: %v\n", err)
			} else if removed > 0 {
				fmt.Fprintf(os.Stderr, "dmsweep: cache gc removed %d entries\n", removed)
			}
		}
	}

	gate(res, *baseline, *baselineTol)
}

// gate applies the baseline diff, exiting nonzero on regressions. A
// no-op with no baseline file.
func gate(res *sweep.Result, baseline string, tol float64) {
	if baseline == "" {
		return
	}
	regs, notes, err := sweep.Compare(baseline, res, tol)
	if err != nil {
		fail(err)
	}
	for _, note := range notes {
		fmt.Fprintf(os.Stderr, "dmsweep: %s\n", note)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "dmsweep: %d regression(s) vs %s (tol %g):\n", len(regs), baseline, tol)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "dmsweep:   %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dmsweep: baseline %s: no regressions (tol %g)\n", baseline, tol)
}

func fail(err error) {
	cli.Fail("dmsweep", err)
}

// parseShard parses the -shard k/n spec; "" means unsharded.
func parseShard(s string) (k, n int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	kStr, nStr, found := strings.Cut(s, "/")
	if !found {
		return 0, 0, fmt.Errorf("bad -shard %q (want k/n, e.g. 0/2)", s)
	}
	k, errK := strconv.Atoi(kStr)
	n, errN := strconv.Atoi(nStr)
	if errK != nil || errN != nil || n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("bad -shard %q (want 0 <= k < n)", s)
	}
	return k, n, nil
}

// parseRedist maps the -redist flag value onto an exec.Redist.
func parseRedist(name string) (exec.Redist, error) {
	switch name {
	case "auto":
		return exec.RedistAuto, nil
	case "collective":
		return exec.RedistCollective, nil
	case "p2p":
		return exec.RedistP2P, nil
	}
	return exec.RedistAuto, fmt.Errorf("unknown -redist %q (want auto, collective or p2p)", name)
}

// startProfiles starts CPU profiling (when cpu != "") and returns the
// function that stops it and writes the heap profile (when mem != "").
func startProfiles(cpu, mem string) (func(), error) {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmsweep: memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dmsweep: memprofile: %v\n", err)
		}
	}, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
