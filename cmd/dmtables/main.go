// Command dmtables regenerates every table and figure of the paper.
//
// Usage:
//
//	dmtables              print everything
//	dmtables -only t1     print one artifact (t1,f1,f2,t2,f3,f4,t3,a1,t4,f5,f6,f7,t5,f8,x1,x2)
//	dmtables -m 64 -n 8   override the problem size / processor count of
//	                      the measured sections
package main

import (
	"flag"
	"fmt"
	"strings"

	"dmcc/internal/align"
	"dmcc/internal/cli"
	"dmcc/internal/ir"
	"dmcc/internal/report"
)

func main() {
	only := flag.String("only", "", "print a single artifact (t1,f1,f2,t2,f3,f4,t3,a1,t4,f5,f6,f7,t5,f8,x1,x2)")
	m := flag.Int("m", 64, "problem size for measured sections")
	n := flag.Int("n", 8, "processor count for measured sections")
	flag.Parse()

	type artifact struct {
		id  string
		gen func() (string, error)
	}
	wp := align.WeightParams{Bind: map[string]int{"m": *m}, N: *n, Tc: 1}
	artifacts := []artifact{
		{"t1", func() (string, error) { return report.Table1(*m, *n), nil }},
		{"f1", func() (string, error) { return report.Fig1(16), nil }},
		{"f2", func() (string, error) {
			p := ir.Jacobi()
			return report.AffinityGraph("Fig 2: component affinity graph of Jacobi's iterative algorithm", p, p.Nests, wp)
		}},
		{"t2", func() (string, error) { return report.Table2(*m, *n), nil }},
		{"f3", func() (string, error) { return report.Fig3(*m, *n) }},
		{"f4", func() (string, error) {
			p := ir.Jacobi()
			s1, err := report.AffinityGraph("Fig 4(a): alignment of L1 (lines 2-6)", p, p.Nests[:1], wp)
			if err != nil {
				return "", err
			}
			s2, err := report.AffinityGraph("Fig 4(b): alignment of L2 (lines 7-9)", p, p.Nests[1:], wp)
			if err != nil {
				return "", err
			}
			return s1 + "\n" + s2, nil
		}},
		{"t3", func() (string, error) { return report.Table3(), nil }},
		{"a1", func() (string, error) { return report.Algorithm1(ir.Jacobi(), *m, *n) }},
		{"t4", func() (string, error) { return report.Table4(), nil }},
		{"f5", report.Fig5},
		{"f6", func() (string, error) { return report.Fig6(*m, *n) }},
		{"f7", func() (string, error) {
			p := ir.Gauss()
			return report.AffinityGraph("Fig 7: component affinity graph of the Gauss elimination algorithm", p, p.Nests, wp)
		}},
		{"t5", func() (string, error) { return report.Table5() }},
		{"f8", func() (string, error) { return report.Fig8(*m, *n) }},
		{"x1", func() (string, error) { return report.Idleness(32, 4) }},
		{"x2", func() (string, error) { return report.NaiveBackend(24, 4) }},
	}

	printed := false
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.id) {
			continue
		}
		s, err := a.gen()
		if err != nil {
			cli.Fail("dmtables", fmt.Errorf("%s: %v", a.id, err))
		}
		fmt.Printf("==================== [%s] ====================\n%s\n", a.id, s)
		printed = true
	}
	if !printed {
		cli.Usage("dmtables", fmt.Errorf("unknown artifact %q", *only))
	}
}
