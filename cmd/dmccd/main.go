// dmccd is the plan-serving compile daemon: an HTTP/JSON front end
// over the artifact cache and the symbolic plan evaluator
// (internal/serve). One cold POST /compile runs alignment, the shape
// search and the DP; every repeat of that configuration — across
// requests and across daemon restarts — is a content-addressed cache
// hit, and GET /cost re-prices any registered plan at any size without
// ever re-running the DP.
//
// Usage:
//
//	dmccd                                     serve on :8077, cache in .dmcc-cache
//	dmccd -addr :9000 -cache-dir /var/dmcc    custom bind and cache
//	dmccd -cache-max-bytes 67108864 -gc-every 30s
//	                                          byte-budget LRU GC online
//	                                          against live traffic
//	dmccd -compile-timeout 10s                bound one /compile request;
//	                                          the compile finishes in its
//	                                          flight and a retry hits warm
//	dmccd -store-remote http://peerhost:8077  tier the local cache over a
//	                                          peer daemon's /artifact
//	                                          store: reads fall through to
//	                                          the peer, computed plans are
//	                                          written through, and startup
//	                                          prewarms the local tier and
//	                                          the plan registry from the
//	                                          peer's inventory (-prewarm=false
//	                                          skips the startup pull)
//
// Every daemon also *serves* its store (GET/PUT /artifact/{id},
// GET /keys), so fleets need no separate storage service: point any
// daemon's -store-remote at any other.
//
// SIGINT/SIGTERM drain in-flight requests and exit 0. Exit codes:
// 2 = bad usage, 1 = runtime failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmcc/internal/artifact"
	"dmcc/internal/cli"
	"dmcc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	cacheDir := flag.String("cache-dir", ".dmcc-cache", "artifact cache directory")
	cacheMax := flag.Int64("cache-max-bytes", 256<<20, "byte budget for the online cache GC (0 = never collect)")
	gcEvery := flag.Duration("gc-every", time.Minute, "online GC interval")
	jobs := flag.Int("j", 0, "cost-engine worker count per compile (0 = all CPUs)")
	compileTimeout := flag.Duration("compile-timeout", 30*time.Second, "per-request /compile bound (0 = none); timed-out compiles finish in the background and stay cached")
	storeRemote := flag.String("store-remote", "", "peer daemon URL to tier the cache over (e.g. http://host:8077); empty = local only")
	remoteTimeout := flag.Duration("remote-timeout", 5*time.Second, "per-call bound on peer store requests")
	prewarm := flag.Bool("prewarm", true, "with -store-remote: pull the peer's inventory and register its plans at startup")
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usage("dmccd", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	if *gcEvery <= 0 {
		cli.Usage("dmccd", fmt.Errorf("-gc-every must be positive, got %v", *gcEvery))
	}

	store, err := artifact.Open(*cacheDir)
	if err != nil {
		cli.Fail("dmccd", err)
	}
	warnf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dmccd: "+format+"\n", args...)
	}
	store.Warnf = warnf
	var backend artifact.Backend = store
	var tiered *artifact.Tiered
	if *storeRemote != "" {
		tiered = artifact.NewTiered(store, artifact.OpenRemote(*storeRemote, artifact.RemoteOptions{
			Timeout: *remoteTimeout, Warnf: warnf,
		}))
		backend = tiered
	}
	srv, err := serve.New(serve.Config{
		Store: backend, Jobs: *jobs,
		CompileTimeout: *compileTimeout, Warnf: warnf,
	})
	if err != nil {
		cli.Fail("dmccd", err)
	}
	if tiered != nil && *prewarm {
		// Best-effort: an unreachable peer means a cold start, never a
		// failed one.
		if keys, pulled, err := tiered.Prewarm(); err != nil {
			warnf("prewarm: %v (starting cold)", err)
		} else {
			plans := srv.PrewarmPlans(keys)
			fmt.Fprintf(os.Stderr, "dmccd: prewarmed %d artifacts, %d plans from %s\n",
				pulled, plans, *storeRemote)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go srv.GCLoop(ctx, *gcEvery, *cacheMax)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dmccd: serving on %s (cache %s, gc %v/%dB)\n",
		*addr, store.Dir(), *gcEvery, *cacheMax)

	select {
	case err := <-errc:
		cli.Fail("dmccd", err)
	case <-ctx.Done():
	}
	// Drain in-flight requests, bounded so a stuck handler cannot wedge
	// shutdown forever.
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Fail("dmccd", fmt.Errorf("shutdown: %w", err))
	}
	ms := srv.Metrics()
	fmt.Fprintf(os.Stderr, "dmccd: drained; compiles=%d hits=%d cost_evals=%d cache{%s}\n",
		ms.Server.Compiles, ms.Server.CompileHits, ms.Server.CostEvals, backend.Stats())
}
