// Command dmcc runs the full compile pipeline of the paper on one of the
// built-in Do-loop programs: component affinity graph, alignment, the
// dynamic programming algorithm over the loop sequence, the dependence
// analysis and pipelining decision, and the generated SPMD code.
//
// Usage:
//
//	dmcc -prog jacobi|sor|gauss|matmul [-m 64] [-n 8] [-greedy] [-j 4]
//	dmcc -file testdata/jacobi.f [-m 64] [-n 8]
//	dmcc -prog jacobi -exec      also execute the compiled program on the
//	                             simulated machine (random system, checked
//	                             against the sequential interpreter)
//	dmcc -prog gauss -cache      serve the compile report from the artifact
//	                             cache when the program, binding and engine
//	                             flags match a prior run (-exec always runs)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dmcc/internal/parse"

	"dmcc/internal/align"
	"dmcc/internal/artifact"
	"dmcc/internal/cli"
	"dmcc/internal/codegen"
	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/dep"
	"dmcc/internal/exec"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/report"
)

func main() {
	prog := flag.String("prog", "jacobi", "program to compile: jacobi, sor, gauss, matmul")
	file := flag.String("file", "", "compile a Do-loop source file instead of a built-in program")
	m := flag.Int("m", 64, "problem size")
	n := flag.Int("n", 8, "total processors")
	greedy := flag.Bool("greedy", false, "use the greedy alignment heuristic instead of exact branch-and-bound")
	doExec := flag.Bool("exec", false, "execute the compiled program on the simulated machine and verify")
	jobs := flag.Int("j", 0, "cost-engine worker count (0 = all CPUs, 1 = serial)")
	engine := flag.String("engine", "fast", "cost engine: fast (closed-form counting with compiled-walker fallback), pr1 (exact nest enumeration), prechange (exact everything, no caches)")
	useCache := flag.Bool("cache", false, "serve the compile report from the artifact cache")
	cacheDir := flag.String("cache-dir", ".dmcc-cache", "artifact cache directory")
	flag.Parse()

	// Validate flag values upfront so a typo is a usage error (exit 2),
	// not a mid-pipeline runtime failure.
	if err := applyEngine(&core.Compiler{}, *engine); err != nil {
		cli.Usage("dmcc", err)
	}
	var p *ir.Program
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err = parse.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	} else {
		switch *prog {
		case "jacobi":
			p = ir.Jacobi()
		case "sor":
			p = ir.SOR()
		case "gauss":
			p = ir.Gauss()
		case "matmul":
			p = ir.Cannon()
		default:
			cli.Usage("dmcc", fmt.Errorf("unknown program %q", *prog))
		}
	}
	if err := compileReport(p, *m, *n, *greedy, *jobs, *engine, *useCache, *cacheDir); err != nil {
		fatal(err)
	}
	if *doExec {
		if err := execute(p, *m, *n, *jobs); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	cli.Fail("dmcc", err)
}

// compileReport renders the compile report, optionally through the
// artifact cache. The report is a pure function of the program, the
// binding and the engine flags — exactly what Compiler.CacheKey encodes
// — so the cached text is served verbatim on a hit.
func compileReport(p *ir.Program, m, n int, greedy bool, jobs int, engine string, useCache bool, cacheDir string) error {
	if !useCache {
		return run(os.Stdout, p, m, n, greedy, jobs, engine)
	}
	c, err := newCompiler(p, m, n, greedy, jobs, engine)
	if err != nil {
		return err
	}
	store, err := artifact.Open(cacheDir)
	if err != nil {
		return err
	}
	store.Warnf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dmcc: "+format+"\n", args...)
	}
	key := artifact.KeyOf("kind=dmcc-report", c.CacheKey())
	payload, cached, err := store.GetOrCompute(key, func() ([]byte, error) {
		var buf bytes.Buffer
		if err := run(&buf, p, m, n, greedy, jobs, engine); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(payload); err != nil {
		return err
	}
	state := "computed"
	if cached {
		state = "hit"
	}
	fmt.Fprintf(os.Stderr, "dmcc: cache %s: %s (dir %s)\n", state, store.Stats(), store.Dir())
	return nil
}

// newCompiler builds the compiler for a (program, binding, flags)
// configuration — shared by the report path and the cache-key
// derivation so the two can never disagree.
func newCompiler(p *ir.Program, m, n int, greedy bool, jobs int, engine string) (*core.Compiler, error) {
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	c.UseGreedyAlign = greedy
	c.Jobs = jobs
	if err := applyEngine(c, engine); err != nil {
		return nil, err
	}
	return c, nil
}

// applyEngine configures the compiler's cost engine: the production
// closed-form path, the PR 1 exact-nest-enumeration path, or the
// original exact-everything path (ablation and A/B testing).
func applyEngine(c *core.Compiler, engine string) error {
	switch engine {
	case "fast":
	case "pr1":
		c.ExactNestCount = true
	case "prechange":
		c.ExactNestCount = true
		c.ExactChangeCost = true
		c.NoCache = true
	default:
		return fmt.Errorf("unknown engine %q (want fast, pr1 or prechange)", engine)
	}
	return nil
}

// execute runs the compiled program on the simulated machine with a
// random input system and checks the result against the sequential IR
// interpreter.
func execute(p *ir.Program, m, n, jobs int) error {
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	c.Jobs = jobs
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		return err
	}
	// Random inputs for every array; overwrite nothing the program
	// initializes itself.
	input := ir.NewStorage(p)
	scalars := map[string]float64{"OMEGA": 1.2}
	seed := int64(7)
	for name, arr := range p.Arrays {
		switch arr.Rank() {
		case 1:
			v := matrix.RandomVector(m, seed)
			for i := 1; i <= m; i++ {
				input.Store(name, []int{i}, v[i-1])
			}
		case 2:
			// Diagonally dominant 2-D inputs keep the solvers stable.
			md, _, _ := matrix.DiagonallyDominant(m, seed)
			for i := 1; i <= m; i++ {
				for j := 1; j <= m; j++ {
					input.Store(name, []int{i, j}, md.At(i-1, j-1))
				}
			}
		}
		seed++
	}
	iters := 3

	// Sequential reference on a copy.
	ref := ir.NewStorage(p)
	for name, elems := range input {
		for k, v := range elems {
			ref[name][k] = v
		}
	}
	if err := ir.EvalProgram(p, map[string]int{"m": m}, ref, scalars, iters); err != nil {
		return err
	}

	res, err := exec.Run(p, ss, map[string]int{"m": m}, scalars, iters, machine.DefaultConfig(), input)
	if err != nil {
		return err
	}
	maxDiff := 0.0
	for name, elems := range ref {
		for k, v := range elems {
			d := res.Values[name][k] - v
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("-- executed on the simulated machine (%s, %d iteration(s)) --\n", ss.Grid, iters)
	fmt.Printf("  simulated makespan %.0f, %d messages, %d words\n",
		res.Stats.ParallelTime, res.Stats.Messages, res.Stats.Words)
	fmt.Printf("  max |parallel - sequential interpreter| = %.3g\n", maxDiff)
	if maxDiff > 1e-9 {
		return fmt.Errorf("execution diverged from the sequential interpreter by %g", maxDiff)
	}
	return nil
}

func run(w io.Writer, p *ir.Program, m, n int, greedy bool, jobs int, engine string) error {
	fmt.Fprintf(w, "=== compiling %s for %d processors (m=%d) ===\n\n", p.Name, n, m)

	wp := align.WeightParams{Bind: map[string]int{"m": m}, N: n, Tc: 1}
	s, err := report.AffinityGraph("-- whole-program component affinity graph --", p, p.Nests, wp)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, s)

	c, err := newCompiler(p, m, n, greedy, jobs, engine)
	if err != nil {
		return err
	}
	c.Engines = &core.EngineStats{}
	res, err := c.Compile()
	if err != nil {
		return err
	}
	// Telemetry goes to stderr so the report payload stays a pure
	// function of the configuration (the -cache path stores it verbatim).
	eng := c.Engines.Snapshot()
	fmt.Fprintf(os.Stderr, "dmcc: engines: analytic_hits=%d fastwalk_fallbacks=%d exact_fallbacks=%d\n",
		eng["analytic_hits"], eng["fastwalk_fallbacks"], eng["exact_fallbacks"])
	fmt.Fprintln(w, "-- Algorithm 1: minimum-cost order of distribution schemes --")
	for _, seg := range res.DP.Segments {
		fmt.Fprintf(w, "  loops L%d..L%d: %s, segment cost %.0f, entry redistribution %.0f\n",
			seg.Start, seg.Start+seg.Len-1, seg.Schemes, seg.M, seg.ChangeIn)
		names := make([]string, 0, len(seg.Schemes.Schemes))
		for name := range seg.Schemes.Schemes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "    %-4s %s\n", name, seg.Schemes.Schemes[name])
		}
	}
	fmt.Fprintf(w, "  loop-carried cost %.0f; total %.0f (whole-program baseline %.0f)\n\n",
		res.DP.LoopCarried, res.DP.MinimumCost, res.WholeProgramCost)

	fmt.Fprintln(w, "-- dependence analysis and pipelining decisions --")
	var plans []codegen.NestPlan
	byNest := map[string]dep.PipelineDecision{}
	for _, d := range res.Pipelining {
		byNest[d.Mapping.Nest] = d
		fmt.Fprintf(w, "  nest %s: mapping %s, pipelinable=%v, travelling %v\n",
			d.Mapping.Nest, d.Mapping, d.CanPipeline, d.TravellingTokens)
	}
	cyclic := false
	for _, seg := range res.DP.Segments {
		if seg.Schemes.Cyclic {
			cyclic = true
		}
	}
	allPipelinable := true
	for _, nest := range p.Nests {
		d, ok := byNest[nest.Label]
		if !ok || !d.CanPipeline {
			allPipelinable = false
			continue
		}
		plans = append(plans, codegen.NestPlan{Nest: nest, Decision: d, Cyclic: cyclic})
	}
	fmt.Fprintln(w)

	if allPipelinable && len(plans) == len(p.Nests) {
		code, err := codegen.Program(p, plans)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- generated SPMD program --\n%s", code)
	} else {
		fmt.Fprintln(w, "-- codegen skipped: not every nest is pipelinable under the chosen mapping --")
	}
	return nil
}
