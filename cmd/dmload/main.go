// dmload drives GET /cost load against a plan-serving daemon (dmccd)
// and reports tail latencies plus the counter deltas that prove the
// warm path stayed warm. With -self it spins up an in-process daemon
// over a throwaway cache — the hermetic mode CI gates on.
//
// Usage:
//
//	dmload -self -json > BENCH_serve.json       hermetic baseline capture
//	dmload -self -json -baseline BENCH_serve.json
//	                                            gate: regressions exit 1
//	dmload -addr http://127.0.0.1:8077          load a running daemon
//	dmload -self -dist hotkey -requests 20000 -conc 16 -min-rps 500
//	                                            throughput floor: exit 1 below it
//
// Each -dist runs after one warm-up pass over -progs; the summary goes
// to stderr, the sweep-shaped rows (kind "serve") to stdout. The
// deterministic columns (requests, errors, misses_after_warm) are
// baseline-gated; latency/throughput columns carry *_ns / *_wall names
// so the gate's machine-dependence filter skips them. Exit codes:
// 2 = bad usage, 1 = runtime failure or a failed gate.
//
// The remote-warm distribution (requires -self) measures the shared
// fleet store end to end: an upstream daemon cold-compiles the key set
// (the only DP runs in the whole arm), then a fresh front daemon —
// tiered over the upstream's /artifact store — prewarms its cache and
// plan registry from the peer inventory and serves the entire load
// without compiling anything. Its row gates compiles=0,
// remote_errors=0 and prewarmed_keys alongside misses_after_warm=0.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"dmcc/internal/artifact"
	"dmcc/internal/cli"
	"dmcc/internal/serve"
	"dmcc/internal/sweep"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	self := flag.Bool("self", false, "load an in-process daemon over a temp cache (hermetic)")
	dists := flag.String("dist", "hotkey,uniform", "comma-separated request distributions (hotkey, uniform, coldm)")
	progs := flag.String("progs", "jacobi,sor,gauss", "comma-separated builtin programs to warm")
	m := flag.Int("m", 64, "base problem size each plan is compiled at")
	n := flag.Int("n", 8, "processor count each plan is compiled at")
	requests := flag.Int("requests", 2000, "GET /cost requests per distribution")
	conc := flag.Int("conc", 8, "client workers")
	hotFrac := flag.Float64("hot-frac", 0.9, "hotkey distribution: fraction aimed at the first plan")
	seed := flag.Int64("seed", 1, "request-schedule seed")
	jsonOut := flag.Bool("json", false, "emit deterministic JSON instead of CSV")
	baseline := flag.String("baseline", "", "baseline JSON file to diff against; regressions exit nonzero")
	baselineTol := flag.Float64("baseline-tol", 0, "relative tolerance for -baseline (0.05 = 5%)")
	minRPS := flag.Float64("min-rps", 0, "fail (exit 1) if any distribution falls below this throughput")
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usage("dmload", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	distList := splitList(*dists)
	progList := splitList(*progs)
	if len(distList) == 0 || len(progList) == 0 {
		cli.Usage("dmload", fmt.Errorf("-dist and -progs must be non-empty"))
	}
	remoteWarm := false
	stdDists := distList[:0:0]
	for _, d := range distList {
		switch d {
		case "hotkey", "uniform", "coldm":
			stdDists = append(stdDists, d)
		case "remote-warm":
			if !*self {
				cli.Usage("dmload", fmt.Errorf("-dist remote-warm requires -self (it builds its own daemon pair)"))
			}
			remoteWarm = true
		default:
			cli.Usage("dmload", fmt.Errorf("unknown distribution %q (want hotkey, uniform, coldm or remote-warm)", d))
		}
	}

	base := *addr
	if *self {
		dir, err := os.MkdirTemp("", "dmload-cache-")
		if err != nil {
			cli.Fail("dmload", err)
		}
		defer os.RemoveAll(dir)
		store, err := artifact.Open(dir)
		if err != nil {
			cli.Fail("dmload", err)
		}
		srv, err := serve.New(serve.Config{Store: store})
		if err != nil {
			cli.Fail("dmload", err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "dmload: hermetic daemon on %s (cache %s)\n", base, dir)
	}

	cfg := serve.LoadConfig{
		BaseURL: base, Progs: progList, M: *m, N: *n,
		Requests: *requests, Concurrency: *conc,
		HotFrac: *hotFrac, Seed: *seed,
	}
	res, sums, err := serve.Harness(cfg, stdDists)
	if err != nil {
		cli.Fail("dmload", err)
	}
	if remoteWarm {
		sum, err := runRemoteWarm(cfg)
		if err != nil {
			cli.Fail("dmload", fmt.Errorf("load remote-warm: %w", err))
		}
		sums = append(sums, sum)
		res.Rows = append(res.Rows, serve.Row(sum, cfg))
		sweep.SortRows(res.Rows)
	}
	for _, sum := range sums {
		fmt.Fprintf(os.Stderr, "dmload: %s\n", sum)
	}

	if *jsonOut {
		err = res.WriteJSON(os.Stdout)
	} else {
		err = res.WriteCSV(os.Stdout)
	}
	if err != nil {
		cli.Fail("dmload", err)
	}

	failed := false
	if *minRPS > 0 {
		for _, sum := range sums {
			if sum.RPS < *minRPS {
				fmt.Fprintf(os.Stderr, "dmload: %s throughput %.0f req/s below floor %.0f\n", sum.Dist, sum.RPS, *minRPS)
				failed = true
			}
		}
	}
	if *baseline != "" {
		regs, notes, err := sweep.Compare(*baseline, res, *baselineTol)
		if err != nil {
			cli.Fail("dmload", err)
		}
		for _, note := range notes {
			fmt.Fprintf(os.Stderr, "dmload: %s\n", note)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "dmload: %d regression(s) vs %s (tol %g):\n", len(regs), *baseline, *baselineTol)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "dmload:   %s\n", r)
			}
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "dmload: baseline %s: no regressions (tol %g)\n", *baseline, *baselineTol)
		}
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

// runRemoteWarm builds the two-daemon pair of the remote-warm arm and
// drives the load against the prewarmed front. The returned summary
// carries the fleet counters (compiles, remote_errors, prewarmed_keys)
// as extra deterministic metrics.
func runRemoteWarm(cfg serve.LoadConfig) (*serve.LoadSummary, error) {
	// The upstream daemon owns the fleet's only cold compiles.
	upDir, err := os.MkdirTemp("", "dmload-upstream-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(upDir)
	upStore, err := artifact.Open(upDir)
	if err != nil {
		return nil, err
	}
	upSrv, err := serve.New(serve.Config{Store: upStore})
	if err != nil {
		return nil, err
	}
	upTS := httptest.NewServer(upSrv.Handler())
	defer upTS.Close()
	for _, prog := range cfg.Progs {
		body, err := json.Marshal(serve.CompileRequest{Prog: prog, M: cfg.M, N: cfg.N})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(upTS.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("upstream compile %s: %w", prog, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("upstream compile %s: %s", prog, resp.Status)
		}
	}

	// The front daemon starts empty, tiered over the upstream's
	// /artifact store, and comes up warm from the peer inventory.
	frontDir, err := os.MkdirTemp("", "dmload-front-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(frontDir)
	frontStore, err := artifact.Open(frontDir)
	if err != nil {
		return nil, err
	}
	tiered := artifact.NewTiered(frontStore, artifact.OpenRemote(upTS.URL, artifact.RemoteOptions{}))
	frontSrv, err := serve.New(serve.Config{Store: tiered})
	if err != nil {
		return nil, err
	}
	keys, pulled, err := tiered.Prewarm()
	if err != nil {
		return nil, fmt.Errorf("prewarm: %w", err)
	}
	plans := frontSrv.PrewarmPlans(keys)
	fmt.Fprintf(os.Stderr, "dmload: remote-warm front prewarmed %d artifacts, %d plans from %s\n",
		pulled, plans, upTS.URL)
	frontTS := httptest.NewServer(frontSrv.Handler())
	defer frontTS.Close()

	cfg.BaseURL = frontTS.URL
	sum, err := serve.Load(cfg, "remote-warm")
	if err != nil {
		return nil, err
	}
	ms := frontSrv.Metrics()
	sum.Extra = map[string]float64{
		"compiles":       float64(ms.Server.Compiles),
		"remote_errors":  float64(ms.Store.RemoteErrors),
		"prewarmed_keys": float64(ms.Store.PrewarmedKeys),
	}
	return sum, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
