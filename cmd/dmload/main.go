// dmload drives GET /cost load against a plan-serving daemon (dmccd)
// and reports tail latencies plus the counter deltas that prove the
// warm path stayed warm. With -self it spins up an in-process daemon
// over a throwaway cache — the hermetic mode CI gates on.
//
// Usage:
//
//	dmload -self -json > BENCH_serve.json       hermetic baseline capture
//	dmload -self -json -baseline BENCH_serve.json
//	                                            gate: regressions exit 1
//	dmload -addr http://127.0.0.1:8077          load a running daemon
//	dmload -self -dist hotkey -requests 20000 -conc 16 -min-rps 500
//	                                            throughput floor: exit 1 below it
//
// Each -dist runs after one warm-up pass over -progs; the summary goes
// to stderr, the sweep-shaped rows (kind "serve") to stdout. The
// deterministic columns (requests, errors, misses_after_warm) are
// baseline-gated; latency/throughput columns carry *_ns / *_wall names
// so the gate's machine-dependence filter skips them. Exit codes:
// 2 = bad usage, 1 = runtime failure or a failed gate.
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"

	"dmcc/internal/artifact"
	"dmcc/internal/cli"
	"dmcc/internal/serve"
	"dmcc/internal/sweep"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	self := flag.Bool("self", false, "load an in-process daemon over a temp cache (hermetic)")
	dists := flag.String("dist", "hotkey,uniform", "comma-separated request distributions (hotkey, uniform)")
	progs := flag.String("progs", "jacobi,sor,gauss", "comma-separated builtin programs to warm")
	m := flag.Int("m", 64, "base problem size each plan is compiled at")
	n := flag.Int("n", 8, "processor count each plan is compiled at")
	requests := flag.Int("requests", 2000, "GET /cost requests per distribution")
	conc := flag.Int("conc", 8, "client workers")
	hotFrac := flag.Float64("hot-frac", 0.9, "hotkey distribution: fraction aimed at the first plan")
	seed := flag.Int64("seed", 1, "request-schedule seed")
	jsonOut := flag.Bool("json", false, "emit deterministic JSON instead of CSV")
	baseline := flag.String("baseline", "", "baseline JSON file to diff against; regressions exit nonzero")
	baselineTol := flag.Float64("baseline-tol", 0, "relative tolerance for -baseline (0.05 = 5%)")
	minRPS := flag.Float64("min-rps", 0, "fail (exit 1) if any distribution falls below this throughput")
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usage("dmload", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	distList := splitList(*dists)
	progList := splitList(*progs)
	if len(distList) == 0 || len(progList) == 0 {
		cli.Usage("dmload", fmt.Errorf("-dist and -progs must be non-empty"))
	}
	for _, d := range distList {
		if d != "hotkey" && d != "uniform" {
			cli.Usage("dmload", fmt.Errorf("unknown distribution %q (want hotkey or uniform)", d))
		}
	}

	base := *addr
	if *self {
		dir, err := os.MkdirTemp("", "dmload-cache-")
		if err != nil {
			cli.Fail("dmload", err)
		}
		defer os.RemoveAll(dir)
		store, err := artifact.Open(dir)
		if err != nil {
			cli.Fail("dmload", err)
		}
		srv, err := serve.New(serve.Config{Store: store})
		if err != nil {
			cli.Fail("dmload", err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "dmload: hermetic daemon on %s (cache %s)\n", base, dir)
	}

	cfg := serve.LoadConfig{
		BaseURL: base, Progs: progList, M: *m, N: *n,
		Requests: *requests, Concurrency: *conc,
		HotFrac: *hotFrac, Seed: *seed,
	}
	res, sums, err := serve.Harness(cfg, distList)
	if err != nil {
		cli.Fail("dmload", err)
	}
	for _, sum := range sums {
		fmt.Fprintf(os.Stderr, "dmload: %s\n", sum)
	}

	if *jsonOut {
		err = res.WriteJSON(os.Stdout)
	} else {
		err = res.WriteCSV(os.Stdout)
	}
	if err != nil {
		cli.Fail("dmload", err)
	}

	failed := false
	if *minRPS > 0 {
		for _, sum := range sums {
			if sum.RPS < *minRPS {
				fmt.Fprintf(os.Stderr, "dmload: %s throughput %.0f req/s below floor %.0f\n", sum.Dist, sum.RPS, *minRPS)
				failed = true
			}
		}
	}
	if *baseline != "" {
		regs, notes, err := sweep.Compare(*baseline, res, *baselineTol)
		if err != nil {
			cli.Fail("dmload", err)
		}
		for _, note := range notes {
			fmt.Fprintf(os.Stderr, "dmload: %s\n", note)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "dmload: %d regression(s) vs %s (tol %g):\n", len(regs), *baseline, *baselineTol)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "dmload:   %s\n", r)
			}
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "dmload: baseline %s: no regressions (tol %g)\n", *baseline, *baselineTol)
		}
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
