// Command dmrun executes a kernel on the simulated distributed memory
// machine, verifies the result against the sequential reference, and
// prints the machine statistics.
//
// Usage:
//
//	dmrun -kernel jacobi      -m 64 -n 8 -n2 1 -iters 10
//	dmrun -kernel sor         -m 64 -n 8 -iters 10 [-naive]
//	dmrun -kernel gauss       -m 64 -n 8 [-broadcast]
//	dmrun -kernel cannon      -m 64 -n 4            (n = grid side q)
//	dmrun -kernel jacobi -exec -m 64 -n 8 -iters 10  (IR program through the
//	                                                  naive exec backend with
//	                                                  compiler-chosen schemes)
//	flags: -overlap (comm/comp overlap), -async (asynchronous collectives),
//	       -trace (per-processor time breakdown + Gantt chart),
//	       -chancap (exec: per-link channel capacity in messages),
//	       -engine=auto|events|goroutines (exec: transport runtime; auto
//	                        picks the discrete-event engine unless -trace
//	                        needs the live goroutine interleaving),
//	       -pipeline=false (exec: per-element finalizes instead of the
//	                        vectored two-phase / ring reduction exchange),
//	       -redist=p2p|collective|auto (exec: scheme-change lowering; auto
//	                        picks the composed collective schedules, p2p
//	                        reverts to per-pair exchanges),
//	       -cpuprofile / -memprofile (write pprof profiles)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"dmcc/internal/cli"
	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/exec"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "jacobi", "jacobi, sor, gauss, cannon")
	m := flag.Int("m", 64, "problem size")
	n := flag.Int("n", 8, "processors (first grid dimension; cannon: grid side)")
	n2 := flag.Int("n2", 1, "second grid dimension (jacobi)")
	iters := flag.Int("iters", 10, "iterations (jacobi, sor)")
	naive := flag.Bool("naive", false, "SOR: reduction-per-step instead of pipeline")
	broadcast := flag.Bool("broadcast", false, "gauss: multicast instead of pipeline")
	execBackend := flag.Bool("exec", false, "run the IR program through the exec backend (jacobi, sor, gauss)")
	engineName := flag.String("engine", "auto", "exec backend transport runtime: auto, events, goroutines")
	chanCap := flag.Int("chancap", 0, "exec backend: per-link channel capacity in messages (0 = default)")
	overlap := flag.Bool("overlap", false, "overlap communication with computation")
	async := flag.Bool("async", false, "asynchronous collectives instead of the paper's synchronous model")
	doTrace := flag.Bool("trace", false, "print per-processor time breakdown and Gantt chart")
	seed := flag.Int64("seed", 1, "system generator seed")
	pipeline := flag.Bool("pipeline", true, "exec backend: vectored two-phase / ring reduction exchange (false = per-element finalizes)")
	redistName := flag.String("redist", "auto", "exec backend scheme-change lowering: auto, collective, p2p")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Validate flag values upfront: a typo is a usage error (exit 2),
	// not a runtime failure (exit 1).
	switch *kernel {
	case "jacobi", "sor", "gauss", "cannon":
	default:
		cli.Usage("dmrun", fmt.Errorf("unknown kernel %q (want jacobi, sor, gauss or cannon)", *kernel))
	}
	engine, err := parseEngine(*engineName)
	if err != nil {
		cli.Usage("dmrun", err)
	}
	redist, err := parseRedist(*redistName)
	if err != nil {
		cli.Usage("dmrun", err)
	}

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		cli.Fail("dmrun", err)
	}
	defer stopProf()

	cfg := machine.DefaultConfig()
	cfg.Overlap = *overlap
	if *async {
		cfg.SyncCollectives = false
	}
	var col *trace.Collector
	if *doTrace {
		col = trace.New()
		cfg.Tracer = col
	}

	if *chanCap > 0 {
		cfg.ChanCap = *chanCap
	}

	if *execBackend {
		err = runExec(*kernel, cfg, *m, *n, *iters, *seed, !*pipeline, engine, redist)
	} else {
		err = run(*kernel, cfg, *m, *n, *n2, *iters, *naive, *broadcast, *seed)
	}
	if err != nil {
		stopProf()
		cli.Fail("dmrun", err)
	}
	if col != nil {
		events := col.Events()
		nprocs := *n * *n2
		if *kernel == "cannon" {
			nprocs = *n * *n
		}
		if *kernel == "sor" || *kernel == "gauss" || *execBackend {
			nprocs = *n
		}
		makespan := 0.0
		for _, e := range events {
			if e.End > makespan {
				makespan = e.End
			}
		}
		sum := trace.Summarize(events, nprocs, makespan)
		fmt.Print(sum)
		fmt.Print(trace.Gantt(events, nprocs, makespan, 100))
	}
}

func run(kernel string, cfg machine.Config, m, n, n2, iters int, naive, broadcast bool, seed int64) error {
	switch kernel {
	case "jacobi":
		a, b, _ := matrix.DiagonallyDominant(m, seed)
		x0 := make([]float64, m)
		res, err := kernels.JacobiGrid(cfg, a, b, x0, iters, n, n2)
		if err != nil {
			return err
		}
		ref := matrix.JacobiSeq(a, b, x0, iters)
		report(fmt.Sprintf("jacobi %dx%d grid, %d iters", n, n2, iters), res.Stats, matrix.MaxAbsDiff(res.X, ref))
	case "sor":
		a, b, _ := matrix.DiagonallyDominant(m, seed)
		x0 := make([]float64, m)
		var res kernels.Result
		var err error
		variant := "pipelined"
		if naive {
			variant = "naive"
			res, err = kernels.SORNaive(cfg, a, b, x0, 1.2, iters, n)
		} else {
			res, err = kernels.SORPipelined(cfg, a, b, x0, 1.2, iters, n)
		}
		if err != nil {
			return err
		}
		ref := matrix.SORSeq(a, b, x0, 1.2, iters)
		report(fmt.Sprintf("sor (%s) ring of %d, %d sweeps", variant, n, iters), res.Stats, matrix.MaxAbsDiff(res.X, ref))
	case "gauss":
		a, b, _ := matrix.DiagonallyDominant(m, seed)
		var res kernels.Result
		var err error
		variant := "pipelined"
		if broadcast {
			variant = "broadcast"
			res, err = kernels.GaussBroadcast(cfg, a, b, n)
		} else {
			res, err = kernels.GaussPipelined(cfg, a, b, n)
		}
		if err != nil {
			return err
		}
		ref := matrix.GaussSeq(a, b)
		report(fmt.Sprintf("gauss (%s) ring of %d", variant, n), res.Stats, matrix.MaxAbsDiff(res.X, ref))
	case "cannon":
		bm := matrix.RandomDense(m, m, seed)
		cm := matrix.RandomDense(m, m, seed+1)
		got, st, err := kernels.Cannon(cfg, bm, cm, n)
		if err != nil {
			return err
		}
		ref := bm.Mul(cm)
		report(fmt.Sprintf("cannon %dx%d grid", n, n), st, matrix.MaxAbsDiff(got.Data, ref.Data))
	default:
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	return nil
}

// runExec compiles the kernel's IR program (whole-program schemes via
// Algorithm 1's segment cost), executes it on the batched exec backend,
// verifies against the sequential reference, and reports both the naive
// cost model's statistics and what the vectored transport actually moved.
// parseEngine maps the -engine flag value onto an exec.Engine.
func parseEngine(name string) (exec.Engine, error) {
	switch name {
	case "auto":
		return exec.EngineAuto, nil
	case "events":
		return exec.EngineEvents, nil
	case "goroutines":
		return exec.EngineGoroutines, nil
	}
	return exec.EngineAuto, fmt.Errorf("unknown -engine %q (want auto, events or goroutines)", name)
}

// parseRedist maps the -redist flag value onto an exec.Redist.
func parseRedist(name string) (exec.Redist, error) {
	switch name {
	case "auto":
		return exec.RedistAuto, nil
	case "collective":
		return exec.RedistCollective, nil
	case "p2p":
		return exec.RedistP2P, nil
	}
	return exec.RedistAuto, fmt.Errorf("unknown -redist %q (want auto, collective or p2p)", name)
}

func runExec(kernel string, cfg machine.Config, m, n, iters int, seed int64, noPipe bool, engine exec.Engine, redist exec.Redist) error {
	a, b, _ := matrix.DiagonallyDominant(m, seed)
	var p *ir.Program
	var scalars map[string]float64
	var x0, ref []float64
	switch kernel {
	case "jacobi":
		p = ir.Jacobi()
		x0 = make([]float64, m)
		ref = matrix.JacobiSeq(a, b, x0, iters)
	case "sor":
		p = ir.SOR()
		scalars = map[string]float64{"OMEGA": 1.2}
		x0 = make([]float64, m)
		ref = matrix.SORSeq(a, b, x0, 1.2, iters)
	case "gauss":
		p = ir.Gauss()
		iters = 1
		ref = matrix.GaussSeq(a, b)
	default:
		return fmt.Errorf("-exec supports jacobi, sor and gauss (got %q)", kernel)
	}
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		return err
	}
	input := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, b[i-1])
		if x0 != nil {
			input.Store("X", []int{i}, x0[i-1])
		}
	}
	res, err := exec.RunOpts(p, ss, map[string]int{"m": m}, scalars, iters, cfg, input,
		exec.Options{NoPipeline: noPipe, Engine: engine, Redist: redist})
	if err != nil {
		return err
	}
	x := make([]float64, m)
	for i := 1; i <= m; i++ {
		x[i-1] = res.Values.Load(ir.R("X", ir.Const(i)), []int{i})
	}
	report(fmt.Sprintf("%s (exec backend, %s redistribution) on %d processors, %d iters",
		kernel, redist, n, iters), res.Stats, matrix.MaxAbsDiff(x, ref))
	fmt.Printf("  transport (batched): %d messages, %d words, largest message %d words\n",
		res.Transport.Messages, res.Transport.Words, res.Transport.MaxMsgWords)
	fmt.Printf("  busiest pair: %d messages, %d words\n",
		res.Transport.MaxPairMessages, res.Transport.MaxPairWords)
	return nil
}

// startProfiles starts CPU profiling (when cpu != "") and returns the
// function that stops it and writes the heap profile (when mem != "").
func startProfiles(cpu, mem string) (func(), error) {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}, nil
}

func report(title string, st machine.Stats, diff float64) {
	fmt.Printf("%s\n", title)
	fmt.Printf("  simulated makespan: %.0f\n", st.ParallelTime)
	fmt.Printf("  flops: %d total, %d on the most loaded processor\n", st.Flops, st.MaxFlops())
	fmt.Printf("  communication: %d messages, %d words\n", st.Messages, st.Words)
	fmt.Printf("  max |diff| vs sequential reference: %.3g\n", diff)
}
