// Command dmrun executes a kernel on the simulated distributed memory
// machine, verifies the result against the sequential reference, and
// prints the machine statistics.
//
// Usage:
//
//	dmrun -kernel jacobi      -m 64 -n 8 -n2 1 -iters 10
//	dmrun -kernel sor         -m 64 -n 8 -iters 10 [-naive]
//	dmrun -kernel gauss       -m 64 -n 8 [-broadcast]
//	dmrun -kernel cannon      -m 64 -n 4            (n = grid side q)
//	flags: -overlap (comm/comp overlap), -async (asynchronous collectives),
//	       -trace (per-processor time breakdown + Gantt chart)
package main

import (
	"flag"
	"fmt"
	"os"

	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "jacobi", "jacobi, sor, gauss, cannon")
	m := flag.Int("m", 64, "problem size")
	n := flag.Int("n", 8, "processors (first grid dimension; cannon: grid side)")
	n2 := flag.Int("n2", 1, "second grid dimension (jacobi)")
	iters := flag.Int("iters", 10, "iterations (jacobi, sor)")
	naive := flag.Bool("naive", false, "SOR: reduction-per-step instead of pipeline")
	broadcast := flag.Bool("broadcast", false, "gauss: multicast instead of pipeline")
	overlap := flag.Bool("overlap", false, "overlap communication with computation")
	async := flag.Bool("async", false, "asynchronous collectives instead of the paper's synchronous model")
	doTrace := flag.Bool("trace", false, "print per-processor time breakdown and Gantt chart")
	seed := flag.Int64("seed", 1, "system generator seed")
	flag.Parse()

	cfg := machine.DefaultConfig()
	cfg.Overlap = *overlap
	if *async {
		cfg.SyncCollectives = false
	}
	var col *trace.Collector
	if *doTrace {
		col = trace.New()
		cfg.Tracer = col
	}

	if err := run(*kernel, cfg, *m, *n, *n2, *iters, *naive, *broadcast, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "dmrun: %v\n", err)
		os.Exit(1)
	}
	if col != nil {
		events := col.Events()
		nprocs := *n * *n2
		if *kernel == "cannon" {
			nprocs = *n * *n
		}
		if *kernel == "sor" || *kernel == "gauss" {
			nprocs = *n
		}
		makespan := 0.0
		for _, e := range events {
			if e.End > makespan {
				makespan = e.End
			}
		}
		sum := trace.Summarize(events, nprocs, makespan)
		fmt.Print(sum)
		fmt.Print(trace.Gantt(events, nprocs, makespan, 100))
	}
}

func run(kernel string, cfg machine.Config, m, n, n2, iters int, naive, broadcast bool, seed int64) error {
	switch kernel {
	case "jacobi":
		a, b, _ := matrix.DiagonallyDominant(m, seed)
		x0 := make([]float64, m)
		res, err := kernels.JacobiGrid(cfg, a, b, x0, iters, n, n2)
		if err != nil {
			return err
		}
		ref := matrix.JacobiSeq(a, b, x0, iters)
		report(fmt.Sprintf("jacobi %dx%d grid, %d iters", n, n2, iters), res.Stats, matrix.MaxAbsDiff(res.X, ref))
	case "sor":
		a, b, _ := matrix.DiagonallyDominant(m, seed)
		x0 := make([]float64, m)
		var res kernels.Result
		var err error
		variant := "pipelined"
		if naive {
			variant = "naive"
			res, err = kernels.SORNaive(cfg, a, b, x0, 1.2, iters, n)
		} else {
			res, err = kernels.SORPipelined(cfg, a, b, x0, 1.2, iters, n)
		}
		if err != nil {
			return err
		}
		ref := matrix.SORSeq(a, b, x0, 1.2, iters)
		report(fmt.Sprintf("sor (%s) ring of %d, %d sweeps", variant, n, iters), res.Stats, matrix.MaxAbsDiff(res.X, ref))
	case "gauss":
		a, b, _ := matrix.DiagonallyDominant(m, seed)
		var res kernels.Result
		var err error
		variant := "pipelined"
		if broadcast {
			variant = "broadcast"
			res, err = kernels.GaussBroadcast(cfg, a, b, n)
		} else {
			res, err = kernels.GaussPipelined(cfg, a, b, n)
		}
		if err != nil {
			return err
		}
		ref := matrix.GaussSeq(a, b)
		report(fmt.Sprintf("gauss (%s) ring of %d", variant, n), res.Stats, matrix.MaxAbsDiff(res.X, ref))
	case "cannon":
		bm := matrix.RandomDense(m, m, seed)
		cm := matrix.RandomDense(m, m, seed+1)
		got, st, err := kernels.Cannon(cfg, bm, cm, n)
		if err != nil {
			return err
		}
		ref := bm.Mul(cm)
		report(fmt.Sprintf("cannon %dx%d grid", n, n), st, matrix.MaxAbsDiff(got.Data, ref.Data))
	default:
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	return nil
}

func report(title string, st machine.Stats, diff float64) {
	fmt.Printf("%s\n", title)
	fmt.Printf("  simulated makespan: %.0f\n", st.ParallelTime)
	fmt.Printf("  flops: %d total, %d on the most loaded processor\n", st.Flops, st.MaxFlops())
	fmt.Printf("  communication: %d messages, %d words\n", st.Messages, st.Words)
	fmt.Printf("  max |diff| vs sequential reference: %.3g\n", diff)
}
