// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md's experiment index), plus the ablations of the design
// choices. Wall-clock ns/op measures the simulator itself; the paper's
// quantities — simulated makespan, words on the wire, flop balance — are
// emitted as custom metrics (simtime, words, maxflops), so
//
//	go test -bench=. -benchmem
//
// regenerates every series the paper reports.
package dmcc_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"dmcc/internal/align"
	"dmcc/internal/artifact"
	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/dep"
	"dmcc/internal/dist"
	"dmcc/internal/exec"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/sched"
	"dmcc/internal/sweep"
)

// ---------------------------------------------------------------- T1 ---

// BenchmarkTable1Primitives measures each communication primitive of
// Table 1 on the simulated hypercube (m=256 words, 16 processors) and
// reports the simulated makespan, which must follow the O(m), O(m log n),
// O(m n) rows.
func BenchmarkTable1Primitives(b *testing.B) {
	const words, procs = 256, 16
	data := make([]machine.Word, words)
	g := grid.New(procs)
	run := func(b *testing.B, body func(p *machine.Proc)) {
		var last machine.Stats
		for i := 0; i < b.N; i++ {
			mach, err := machine.New(g, machine.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			st, err := mach.Run(body)
			if err != nil {
				b.Fatal(err)
			}
			last = st
		}
		b.ReportMetric(last.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Words), "words")
	}
	b.Run("Transfer", func(b *testing.B) {
		run(b, func(p *machine.Proc) {
			switch p.Rank() {
			case 0:
				p.Transfer(0, 1, data)
			case 1:
				p.Transfer(0, 1, nil)
			}
		})
	})
	b.Run("Shift", func(b *testing.B) {
		run(b, func(p *machine.Proc) { p.Shift(0, 1, data) })
	})
	b.Run("OneToManyMulticast", func(b *testing.B) {
		run(b, func(p *machine.Proc) {
			var d []machine.Word
			if p.Rank() == 0 {
				d = data
			}
			p.OneToManyMulticast([]int{0}, 0, d)
		})
	})
	b.Run("Reduction", func(b *testing.B) {
		run(b, func(p *machine.Proc) { p.Reduction([]int{0}, 0, data, machine.SumOp) })
	})
	b.Run("AffineTransform", func(b *testing.B) {
		perm := make([]int, procs)
		for i := range perm {
			perm[i] = (i + 1) % procs
		}
		run(b, func(p *machine.Proc) { p.AffineTransform([]int{0}, perm, data) })
	})
	b.Run("Scatter", func(b *testing.B) {
		run(b, func(p *machine.Proc) {
			var chunks [][]machine.Word
			if p.Rank() == 0 {
				chunks = make([][]machine.Word, procs)
				for i := range chunks {
					chunks[i] = data
				}
			}
			p.Scatter([]int{0}, 0, chunks)
		})
	})
	b.Run("Gather", func(b *testing.B) {
		run(b, func(p *machine.Proc) { p.Gather([]int{0}, 0, data) })
	})
	b.Run("ManyToManyMulticast", func(b *testing.B) {
		run(b, func(p *machine.Proc) { p.ManyToManyMulticast([]int{0}, data) })
	})
}

// ---------------------------------------------------------------- F1 ---

// BenchmarkFig1Layouts times the eight distribution functions of Fig 1
// over a full 64x64 owner map each.
func BenchmarkFig1Layouts(b *testing.B) {
	cases := dist.Fig1Cases(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			dist.LayoutMatrix(c.Grid, []int{64, 64}, c.Scheme)
		}
	}
}

// ------------------------------------------------------------ F2 / F7 --

// BenchmarkFig2JacobiAlignment builds and exactly aligns the Jacobi
// affinity graph (Fig 2); BenchmarkFig7GaussAlignment does the Gauss
// graph (Fig 7).
func BenchmarkFig2JacobiAlignment(b *testing.B) {
	benchAlignment(b, ir.Jacobi())
}

func BenchmarkFig7GaussAlignment(b *testing.B) {
	benchAlignment(b, ir.Gauss())
}

func benchAlignment(b *testing.B, p *ir.Program) {
	wp := align.DefaultWeightParams()
	var cut float64
	for i := 0; i < b.N; i++ {
		g, err := align.BuildGraph(p, p.Nests, wp)
		if err != nil {
			b.Fatal(err)
		}
		pt, err := align.ExactAlign(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		cut = pt.Cut
	}
	b.ReportMetric(cut, "cutweight")
}

// ---------------------------------------------------------------- T2 ---

// BenchmarkTable2 regenerates the Table 2 rows: the simulated Jacobi
// makespan on each grid shape (m=64, N=16, 2 iterations).
func BenchmarkTable2(b *testing.B) {
	const m, n, iters = 64, 16, 2
	a, rhs, _ := matrix.DiagonallyDominant(m, 3)
	x0 := make([]float64, m)
	for _, shape := range [][2]int{{1, n}, {n, 1}, {4, 4}} {
		b.Run(fmt.Sprintf("%dx%d", shape[0], shape[1]), func(b *testing.B) {
			var last kernels.Result
			for i := 0; i < b.N; i++ {
				res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, rhs, x0, iters, shape[0], shape[1])
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Stats.ParallelTime, "simtime")
			b.ReportMetric(float64(last.Stats.Words), "words")
			b.ReportMetric(float64(last.Stats.MaxFlops()), "maxflops")
		})
	}
}

// ----------------------------------------------------------- A1 / F3 ---

// BenchmarkAlgorithm1DP runs the full Section 4 dynamic program on the
// Jacobi loop sequence, reporting the minimum cost it finds (Fig 3's
// decomposition) and the whole-program baseline.
func BenchmarkAlgorithm1DP(b *testing.B) {
	var res *core.CompileResult
	for i := 0; i < b.N; i++ {
		c := core.NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": 32}, 4)
		r, err := c.Compile()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DP.MinimumCost, "dpcost")
	b.ReportMetric(res.WholeProgramCost, "wholecost")
}

// BenchmarkAlgorithm1DPGauss prices the three-nest Gauss sequence.
func BenchmarkAlgorithm1DPGauss(b *testing.B) {
	var res *core.CompileResult
	for i := 0; i < b.N; i++ {
		c := core.NewCompiler(ir.Gauss(), cost.Unit(), map[string]int{"m": 16}, 4)
		r, err := c.Compile()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DP.MinimumCost, "dpcost")
}

// ------------------------------------------------------------ T3 / T4 --

// BenchmarkTable3JacobiRowScheme measures the Section 4 / Table 3 row
// scheme end to end: the DP-chosen Nx1 kernel.
func BenchmarkTable3JacobiRowScheme(b *testing.B) {
	const m, n, iters = 64, 8, 2
	a, rhs, _ := matrix.DiagonallyDominant(m, 5)
	x0 := make([]float64, m)
	var last kernels.Result
	for i := 0; i < b.N; i++ {
		res, err := kernels.JacobiGrid(machine.DefaultConfig(), a, rhs, x0, iters, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Stats.ParallelTime, "simtime")
	b.ReportMetric(float64(last.Stats.Words), "words")
}

// BenchmarkTable4SORColumnScheme measures the Table 4 column layout via
// the naive SOR kernel (its data layout is exactly Table 4).
func BenchmarkTable4SORColumnScheme(b *testing.B) {
	const m, n, iters = 64, 8, 2
	a, rhs, _ := matrix.DiagonallyDominant(m, 7)
	x0 := make([]float64, m)
	var last kernels.Result
	for i := 0; i < b.N; i++ {
		res, err := kernels.SORNaive(machine.DefaultConfig(), a, rhs, x0, 1.2, iters, n)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Stats.ParallelTime, "simtime")
}

// ---------------------------------------------------------------- F5 ---

// BenchmarkFig5Schedule generates the SOR wavefront schedule of Fig 5 and
// reports the iteration period (20 steps for m=16, N=4 in the paper).
func BenchmarkFig5Schedule(b *testing.B) {
	var period int
	for i := 0; i < b.N; i++ {
		table, err := sched.Schedule(16, 4, 3)
		if err != nil {
			b.Fatal(err)
		}
		period = sched.IterationPeriod(table)
	}
	b.ReportMetric(float64(period), "steps/iter")
}

// ------------------------------------------------------------ F6 / X2 --

// BenchmarkFig6SORNaive and BenchmarkFig6SORPipelined regenerate the
// Section 5 comparison across problem sizes; the paper's claims are the
// naive (2m^2/N+4m)tf + m(logN+1)tc versus pipelined
// (2m^2/N+2m)tf + 2(m+N)tc per-iteration times.
func BenchmarkFig6SORNaive(b *testing.B) {
	benchSOR(b, true)
}

func BenchmarkFig6SORPipelined(b *testing.B) {
	benchSOR(b, false)
}

func benchSOR(b *testing.B, naive bool) {
	const n, iters = 4, 2
	for _, m := range []int{32, 64, 128} {
		a, rhs, _ := matrix.DiagonallyDominant(m, 17)
		x0 := make([]float64, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var last kernels.Result
			for i := 0; i < b.N; i++ {
				var res kernels.Result
				var err error
				if naive {
					res, err = kernels.SORNaive(machine.DefaultConfig(), a, rhs, x0, 1.2, iters, n)
				} else {
					res, err = kernels.SORPipelined(machine.DefaultConfig(), a, rhs, x0, 1.2, iters, n)
				}
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Stats.ParallelTime/iters, "simtime/iter")
			b.ReportMetric(float64(last.Stats.Words)/iters, "words/iter")
		})
	}
}

// ---------------------------------------------------------------- T5 ---

// BenchmarkTable5Dependence runs the full dependence analysis of the
// Gauss program (Table 5).
func BenchmarkTable5Dependence(b *testing.B) {
	p := ir.Gauss()
	dd := map[string]int{"A": 0, "L": 0, "V": 0, "B": 0, "X": 0}
	var tokens int
	for i := 0; i < b.N; i++ {
		tokens = 0
		for _, nest := range p.Nests {
			mu, err := dep.DeriveMapping(p, nest, dd)
			if err != nil {
				continue
			}
			tokens += len(dep.Analyze(p, nest, mu))
		}
	}
	b.ReportMetric(float64(tokens), "tokens")
}

// ------------------------------------------------------------ F8 / X3 --

// BenchmarkFig8GaussBroadcast / BenchmarkFig8GaussPipelined regenerate
// the Section 6 comparison: the multicast's log N factor versus the
// shift pipeline, across ring sizes.
func BenchmarkFig8GaussBroadcast(b *testing.B) {
	benchGauss(b, true)
}

func BenchmarkFig8GaussPipelined(b *testing.B) {
	benchGauss(b, false)
}

func benchGauss(b *testing.B, broadcast bool) {
	const m = 96
	a, rhs, _ := matrix.DiagonallyDominant(m, 23)
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var last kernels.Result
			for i := 0; i < b.N; i++ {
				var res kernels.Result
				var err error
				if broadcast {
					res, err = kernels.GaussBroadcast(machine.DefaultConfig(), a, rhs, n)
				} else {
					res, err = kernels.GaussPipelined(machine.DefaultConfig(), a, rhs, n)
				}
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Stats.ParallelTime, "simtime")
			b.ReportMetric(float64(last.Stats.Words), "words")
		})
	}
}

// ---------------------------------------------------------------- X1 ---

// BenchmarkJacobiDPvsGlobal sweeps m and reports the DP plan's cost
// advantage over the whole-program single-scheme baseline (Section 4's
// headline claim).
func BenchmarkJacobiDPvsGlobal(b *testing.B) {
	for _, m := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var dpCost, whole float64
			for i := 0; i < b.N; i++ {
				c := core.NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": m}, 4)
				res, err := c.Compile()
				if err != nil {
					b.Fatal(err)
				}
				dpCost, whole = res.DP.MinimumCost, res.WholeProgramCost
			}
			b.ReportMetric(dpCost, "dpcost")
			b.ReportMetric(whole, "wholecost")
			b.ReportMetric(whole/dpCost, "advantage")
		})
	}
}

// ---------------------------------------------------------------- X4 ---

// BenchmarkCannonMatmul runs Cannon's algorithm on the rotated layouts of
// Fig 1 (b)/(c) on a 4x4 grid.
func BenchmarkCannonMatmul(b *testing.B) {
	for _, m := range []int{32, 64, 128} {
		bm := matrix.RandomDense(m, m, 31)
		cm := matrix.RandomDense(m, m, 37)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var last machine.Stats
			for i := 0; i < b.N; i++ {
				_, st, err := kernels.Cannon(machine.DefaultConfig(), bm, cm, 4)
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(last.ParallelTime, "simtime")
			b.ReportMetric(float64(last.Words), "words")
		})
	}
}

// ----------------------------------------------------------- ablations --

// BenchmarkAblationAlignment compares exact branch-and-bound alignment
// against the greedy heuristic on the Gauss graph (solution quality and
// speed).
func BenchmarkAblationAlignment(b *testing.B) {
	p := ir.Gauss()
	wp := align.DefaultWeightParams()
	g, err := align.BuildGraph(p, p.Nests, wp)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			pt, err := align.ExactAlign(g, 2)
			if err != nil {
				b.Fatal(err)
			}
			cut = pt.Cut
		}
		b.ReportMetric(cut, "cutweight")
	})
	b.Run("greedy", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			pt, err := align.GreedyAlign(g, 2)
			if err != nil {
				b.Fatal(err)
			}
			cut = pt.Cut
		}
		b.ReportMetric(cut, "cutweight")
	})
}

// BenchmarkAblationSyncCollectives shows how much of the Section 6
// pipelining advantage comes from the synchronous-collective execution
// model: under async collectives the broadcast/pipeline gap narrows.
func BenchmarkAblationSyncCollectives(b *testing.B) {
	const m, n = 64, 8
	a, rhs, _ := matrix.DiagonallyDominant(m, 41)
	for _, mode := range []struct {
		name string
		cfg  machine.Config
	}{
		{"sync", machine.DefaultConfig()},
		{"async", machine.AsyncConfig()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var bcT, ppT float64
			for i := 0; i < b.N; i++ {
				bc, err := kernels.GaussBroadcast(mode.cfg, a, rhs, n)
				if err != nil {
					b.Fatal(err)
				}
				pp, err := kernels.GaussPipelined(mode.cfg, a, rhs, n)
				if err != nil {
					b.Fatal(err)
				}
				bcT, ppT = bc.Stats.ParallelTime, pp.Stats.ParallelTime
			}
			b.ReportMetric(bcT/ppT, "pipelinegain")
		})
	}
}

// BenchmarkAblationOverlap measures the effect of comm/comp overlap on
// the pipelined kernels (the closing remark of Section 5).
func BenchmarkAblationOverlap(b *testing.B) {
	const m, n = 64, 4
	a, rhs, _ := matrix.DiagonallyDominant(m, 43)
	x0 := make([]float64, m)
	for _, mode := range []struct {
		name    string
		overlap bool
	}{{"blocking", false}, {"overlap", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := machine.DefaultConfig()
			cfg.Overlap = mode.overlap
			var t float64
			for i := 0; i < b.N; i++ {
				res, err := kernels.SORPipelined(cfg, a, rhs, x0, 1.2, 2, n)
				if err != nil {
					b.Fatal(err)
				}
				t = res.Stats.ParallelTime
			}
			b.ReportMetric(t, "simtime")
		})
	}
}

// BenchmarkAblationGELayout compares block-contiguous against cyclic row
// distribution for the triangular Gauss workload: the cyclic layout's
// load balance (Section 6's reason for choosing it).
func BenchmarkAblationGELayout(b *testing.B) {
	p := ir.Gauss()
	bind := map[string]int{"m": 32}
	g := grid.New(4, 1)
	full := dist.Dim{Sign: 1, Disp: -1, Block: 32, GridDim: 1}
	layouts := map[string]map[string]dist.Scheme{
		"cyclic": {
			"A": dist.Scheme2D(dist.Cyclic(0), full, nil),
			"L": dist.Scheme2D(dist.Cyclic(0), full, nil),
			"V": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
			"B": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
			"X": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
		},
		"block": {
			"A": dist.Scheme2D(dist.BlockContiguous(32, 4, 0), full, nil),
			"L": dist.Scheme2D(dist.BlockContiguous(32, 4, 0), full, nil),
			"V": dist.Scheme1D(dist.BlockContiguous(32, 4, 0), map[int]int{1: 0}),
			"B": dist.Scheme1D(dist.BlockContiguous(32, 4, 0), map[int]int{1: 0}),
			"X": dist.Scheme1D(dist.BlockContiguous(32, 4, 0), map[int]int{1: 0}),
		},
	}
	for name, schemes := range layouts {
		b.Run(name, func(b *testing.B) {
			var ct cost.Counts
			for i := 0; i < b.N; i++ {
				var err error
				ct, err = cost.CountNest(p, p.Nests[0], schemes, g, bind)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ct.MaxProcFlops), "maxflops")
			b.ReportMetric(float64(ct.TotalFlops), "totalflops")
		})
	}
}

// BenchmarkAblationChunkSize sweeps the pipelining granularity of the
// chunked SOR wavefront under two per-message startup costs: with
// alpha=0 the finest grain wins (shortest fill); with a large alpha the
// coarser chunks amortize message startups.
func BenchmarkAblationChunkSize(b *testing.B) {
	const m, n = 64, 4
	a, rhs, _ := matrix.DiagonallyDominant(m, 83)
	x0 := make([]float64, m)
	for _, alpha := range []float64{0, 16} {
		for _, chunk := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("alpha=%.0f/chunk=%d", alpha, chunk), func(b *testing.B) {
				cfgc := machine.DefaultConfig()
				cfgc.Alpha = alpha
				var t float64
				for i := 0; i < b.N; i++ {
					res, err := kernels.SORPipelinedChunked(cfgc, a, rhs, x0, 1.2, 2, n, chunk)
					if err != nil {
						b.Fatal(err)
					}
					t = res.Stats.ParallelTime
				}
				b.ReportMetric(t, "simtime")
			})
		}
	}
}

// BenchmarkNaiveBackendVsPipelined measures the end-to-end payoff of the
// paper's optimizations: the naive compiler backend (package exec,
// per-element transfers and reductions) against the hand-pipelined Fig 6
// kernel for SOR.
func BenchmarkNaiveBackendVsPipelined(b *testing.B) {
	const m, n, iters = 24, 4, 2
	a, rhs, _ := matrix.DiagonallyDominant(m, 401)
	x0 := make([]float64, m)
	prog := ir.SOR()
	c := core.NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(prog.Nests))
	if err != nil {
		b.Fatal(err)
	}
	input := ir.NewStorage(prog)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, rhs[i-1])
		input.Store("X", []int{i}, 0)
	}
	b.Run("naive-backend", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			res, err := exec.Run(prog, ss, map[string]int{"m": m},
				map[string]float64{"OMEGA": 1.2}, iters, machine.DefaultConfig(), input)
			if err != nil {
				b.Fatal(err)
			}
			t = res.Stats.ParallelTime
		}
		b.ReportMetric(t, "simtime")
	})
	b.Run("fig6-pipeline", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			res, err := kernels.SORPipelined(machine.DefaultConfig(), a, rhs, x0, 1.2, iters, n)
			if err != nil {
				b.Fatal(err)
			}
			t = res.Stats.ParallelTime
		}
		b.ReportMetric(t, "simtime")
	})
}

// BenchmarkExecBatchedVsExact measures the tentpole of the batched
// communication schedules: the inspector/executor engine (exec.Run,
// vectored per-pair exchanges, default ChanCap) against the per-element
// oracle (exec.RunExact, one message per remote operand, ChanCap raised
// to m*m so it cannot deadlock) on Gauss elimination at the paper's
// m=64, N=16 scale. Both report the same simulated naive cost; ns/op is
// the real-time gap, and the custom metrics show the transport
// difference (messages on the wire, largest vectored message).
func BenchmarkExecBatchedVsExact(b *testing.B) {
	const m, n = 64, 16
	prog := ir.Gauss()
	c := core.NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(prog.Nests))
	if err != nil {
		b.Fatal(err)
	}
	a, rhs, _ := matrix.DiagonallyDominant(m, 401)
	input := ir.NewStorage(prog)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, rhs[i-1])
	}
	bind := map[string]int{"m": m}
	// "batched" is pinned to the goroutine runtime so its ns/op stays
	// comparable with the historical arm; "events" is the same schedule
	// under the discrete-event runtime (deterministic metrics match
	// bit-for-bit, ns/op shows the engine gap). Both default to the
	// collective redistribution lowering; "p2p" pins the per-pair
	// exchange so the word-count gap between the two lowerings stays
	// visible in the series.
	b.Run("batched", func(b *testing.B) {
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunOpts(prog, ss, bind, nil, 1, machine.DefaultConfig(), input,
				exec.Options{Engine: exec.EngineGoroutines})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
		b.ReportMetric(float64(last.Transport.Words), "transportwords")
		b.ReportMetric(float64(last.Transport.MaxMsgWords), "maxmsgwords")
	})
	b.Run("events", func(b *testing.B) {
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunOpts(prog, ss, bind, nil, 1, machine.DefaultConfig(), input,
				exec.Options{Engine: exec.EngineEvents})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
		b.ReportMetric(float64(last.Transport.Words), "transportwords")
		b.ReportMetric(float64(last.Transport.MaxMsgWords), "maxmsgwords")
	})
	b.Run("p2p", func(b *testing.B) {
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunOpts(prog, ss, bind, nil, 1, machine.DefaultConfig(), input,
				exec.Options{Engine: exec.EngineGoroutines, Redist: exec.RedistP2P})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
		b.ReportMetric(float64(last.Transport.Words), "transportwords")
		b.ReportMetric(float64(last.Transport.MaxMsgWords), "maxmsgwords")
	})
	b.Run("exact", func(b *testing.B) {
		cfg := machine.DefaultConfig()
		cfg.ChanCap = m * m
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunExact(prog, ss, bind, nil, 1, cfg, input)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
	})

	// SOR is the pipelined-reduction showcase: every finalize is forced
	// mid-epoch by the next row's read, and the Section 5 ring lowering
	// turns each per-element combining star into neighbor hops.
	sor := ir.SOR()
	cs := core.NewCompiler(sor, cost.Unit(), map[string]int{"m": m}, n)
	_, sss, err := cs.SegmentCost(1, len(sor.Nests))
	if err != nil {
		b.Fatal(err)
	}
	sorInput := ir.NewStorage(sor)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			sorInput.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		sorInput.Store("B", []int{i}, rhs[i-1])
		sorInput.Store("X", []int{i}, 0)
	}
	omega := map[string]float64{"OMEGA": 1.2}
	const sorIters = 2
	b.Run("sor-batched", func(b *testing.B) {
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunOpts(sor, sss, bind, omega, sorIters, machine.DefaultConfig(), sorInput,
				exec.Options{Engine: exec.EngineGoroutines})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
		b.ReportMetric(float64(last.Transport.MaxMsgWords), "maxmsgwords")
	})
	b.Run("sor-events", func(b *testing.B) {
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunOpts(sor, sss, bind, omega, sorIters, machine.DefaultConfig(), sorInput,
				exec.Options{Engine: exec.EngineEvents})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
		b.ReportMetric(float64(last.Transport.MaxMsgWords), "maxmsgwords")
	})
	b.Run("sor-exact", func(b *testing.B) {
		cfg := machine.DefaultConfig()
		cfg.ChanCap = m * m
		var last exec.Result
		for i := 0; i < b.N; i++ {
			res, err := exec.RunExact(sor, sss, bind, omega, sorIters, cfg, sorInput)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Stats.ParallelTime, "simtime")
		b.ReportMetric(float64(last.Transport.Messages), "transportmsgs")
	})
}

// ------------------------------------------------- compile-time scaling --

// BenchmarkCompileScaling measures the compile pipeline itself — the
// cost engine behind Algorithm 1 — on synthetic nest sequences of
// growing length s and on the paper's Gauss/Jacobi/SOR programs. Each
// program is compiled under up to three engines: "fast" is the
// production configuration (closed-form nest counting with a compiled
// walker fallback, analytic ChangeCost, memoized cost tables, worker
// pool); "pr1" is the previous engine (exact iteration-space nest
// enumeration, everything else as in fast); "prechange" reproduces the
// original engine (element-enumeration ChangeCost, exact nest counts,
// no caches, serial). The prechange variant skips s=16, which is
// impractical without the analytic paths.
func BenchmarkCompileScaling(b *testing.B) {
	const m, n = 64, 16
	compile := func(b *testing.B, p func() *ir.Program, engine string) {
		var res *core.CompileResult
		for i := 0; i < b.N; i++ {
			c := core.NewCompiler(p(), cost.Unit(), map[string]int{"m": m}, n)
			switch engine {
			case "pr1":
				c.ExactNestCount = true
			case "prechange":
				c.ExactNestCount = true
				c.ExactChangeCost = true
				c.NoCache = true
				c.Jobs = 1
			}
			r, err := c.Compile()
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(res.DP.MinimumCost, "dpcost")
		b.ReportMetric(float64(len(res.DP.Segments)), "segments")
	}
	for _, s := range []int{4, 8, 16} {
		s := s
		b.Run(fmt.Sprintf("synth/s=%d/fast", s), func(b *testing.B) {
			compile(b, func() *ir.Program { return ir.Synthetic(s) }, "fast")
		})
		b.Run(fmt.Sprintf("synth/s=%d/pr1", s), func(b *testing.B) {
			compile(b, func() *ir.Program { return ir.Synthetic(s) }, "pr1")
		})
		if s <= 8 {
			b.Run(fmt.Sprintf("synth/s=%d/prechange", s), func(b *testing.B) {
				compile(b, func() *ir.Program { return ir.Synthetic(s) }, "prechange")
			})
		}
	}
	for _, pc := range []struct {
		name string
		prog func() *ir.Program
	}{
		{"gauss", ir.Gauss},
		{"jacobi", ir.Jacobi},
		{"sor", ir.SOR},
	} {
		pc := pc
		b.Run(pc.name+"/fast", func(b *testing.B) { compile(b, pc.prog, "fast") })
		b.Run(pc.name+"/pr1", func(b *testing.B) { compile(b, pc.prog, "pr1") })
		b.Run(pc.name+"/prechange", func(b *testing.B) { compile(b, pc.prog, "prechange") })
	}
}

// BenchmarkSymbolicEvaluator measures the closed-form compile: planfit
// is the one-time cost of compiling a program and fitting every cost
// term — nest counts, loop-carried words and scheme-change loads — as
// piecewise polynomials in m; evalat is the per-point cost of pricing
// the fitted plan at a fresh size, which must stay in the microsecond
// range (O(degree) arithmetic, no counting, no redistribution
// enumeration). BENCH_compile.json's symbolic entries record both.
func BenchmarkSymbolicEvaluator(b *testing.B) {
	// Base size in the asymptotic regime (sweep.symbolicBaseM: n² for
	// n=16) — below it the last processor's block is empty and counts
	// are not yet piecewise polynomial.
	const baseM, n = 256, 16
	progs := []struct {
		name string
		prog func() *ir.Program
	}{
		{"gauss", ir.Gauss},
		{"jacobi", ir.Jacobi},
		{"sor", ir.SOR},
	}
	for _, pc := range progs {
		pc := pc
		b.Run("planfit/"+pc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := core.NewCompiler(pc.prog(), cost.Unit(), map[string]int{"m": baseM}, n)
				pe, err := core.NewPlanEvaluator(c)
				if err != nil {
					b.Fatal(err)
				}
				if err := pe.Fit(baseM, 3, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("evalat/"+pc.name, func(b *testing.B) {
			c := core.NewCompiler(pc.prog(), cost.Unit(), map[string]int{"m": baseM}, n)
			pe, err := core.NewPlanEvaluator(c)
			if err != nil {
				b.Fatal(err)
			}
			if err := pe.Fit(baseM, 3, 2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total float64
			for i := 0; i < b.N; i++ {
				// Vary m so no per-size memo could hide behind the number.
				pct, err := pe.EvalAt(baseM + i%1024)
				if err != nil {
					b.Fatal(err)
				}
				total += pct.Total()
			}
			_ = total
		})
	}
}

// ------------------------------------------------------- artifact cache --

// BenchmarkSweepCached measures the artifact cache behind dmsweep
// -cache on a compile sweep: "cold" runs the grid into an empty store,
// computing and persisting every point; "warm" re-runs the same grid
// against the populated store, so every point is a disk read plus a
// checksum — no compilation. The cold/warm ratio over the full default
// grid is recorded in BENCH_compile.json's sweep_cache entry.
func BenchmarkSweepCached(b *testing.B) {
	mList, nList, sList := []int{32, 64}, []int{4}, []int{4, 8}
	points := len(mList) * len(nList) * len(sList) * len(sweep.CompileEngines)
	open := func(dir string) *artifact.Store {
		st, err := artifact.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := open(filepath.Join(b.TempDir(), fmt.Sprintf("c%d", i)))
			if _, err := sweep.Compile(mList, nList, sList, sweep.Options{Cache: st}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		st := open(b.TempDir())
		if _, err := sweep.Compile(mList, nList, sList, sweep.Options{Cache: st}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Compile(mList, nList, sList, sweep.Options{Cache: st}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Only the populating run may miss; every benchmarked sweep must
		// have been served entirely from the store.
		if s := st.Stats(); s.Misses != int64(points) {
			b.Fatalf("warm sweeps missed the cache: %s (want misses=%d from the populate pass only)", s, points)
		}
	})
}
