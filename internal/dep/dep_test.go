package dep

import (
	"testing"

	"dmcc/internal/ir"
)

// gaussDistDims is the Section 6 distribution: every array partitioned
// (cyclically) along its first dimension.
func gaussDistDims() map[string]int {
	return map[string]int{"A": 0, "L": 0, "V": 0, "B": 0, "X": 0}
}

func gaussMappings(t *testing.T) (*ir.Program, Mapping, Mapping) {
	t.Helper()
	p := ir.Gauss()
	mu1, err := DeriveMapping(p, p.Nests[0], gaussDistDims())
	if err != nil {
		t.Fatal(err)
	}
	mu3, err := DeriveMapping(p, p.Nests[2], gaussDistDims())
	if err != nil {
		t.Fatal(err)
	}
	return p, mu1, mu3
}

func TestDeriveMappingGauss(t *testing.T) {
	_, mu1, mu3 := gaussMappings(t)
	// Section 6: "we want to map index (k,i)^t to be executed in the
	// virtual processor i": mu is the coefficient vector of i.
	if mu1.Coeff["i"] != 1 || mu1.Coeff["k"] != 0 || mu1.Coeff["j"] != 0 {
		t.Fatalf("G1 mapping = %v", mu1.Coeff)
	}
	if mu3.Coeff["i"] != 1 || mu3.Coeff["j"] != 0 {
		t.Fatalf("G3 mapping = %v", mu3.Coeff)
	}
	if got := mu1.MuVector([]string{"k", "i", "j"}); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("mu vector = %v", got)
	}
}

func findToken(tokens []Token, ref string, line int) *Token {
	for i := range tokens {
		if tokens[i].Ref.String() == ref && tokens[i].Line == line {
			return &tokens[i]
		}
	}
	return nil
}

// TestTable5Dependence verifies every row of Table 5.
func TestTable5Dependence(t *testing.T) {
	p, mu1, mu3 := gaussMappings(t)
	g1 := Analyze(p, p.Nests[0], mu1)
	g3 := Analyze(p, p.Nests[2], mu3)

	rows := []struct {
		tokens    []Token
		ref       string
		line      int
		usedIn    string
		muDotD    []int
		class     Class
		usedInPEs string
	}{
		{g1, "B(i)", 5, "(0,i)+k(1,0)", []int{0}, Local, "(i-1) mod N"},
		{g1, "B(k)", 5, "(k,0)+i(0,1)", []int{1}, Pipeline, "all PEs"},
		{g1, "A(i,j)", 7, "(0,i,j)+k(1,0,0)", []int{0}, Local, "(i-1) mod N"},
		{g1, "L(i,k)", 7, "(k,i,0)+j(0,0,1)", []int{0}, Local, "(i-1) mod N"},
		{g1, "A(k,j)", 7, "(k,0,j)+i(0,1,0)", []int{1}, Pipeline, "all PEs"},
		{g3, "V(i)", 16, "(0,i)+j(1,0)", []int{0}, Local, "(i-1) mod N"},
		{g3, "X(j)", 16, "(j,0)+i(0,1)", []int{1}, Pipeline, "all PEs"},
	}
	for _, row := range rows {
		tok := findToken(row.tokens, row.ref, row.line)
		if tok == nil {
			t.Errorf("token %s line %d not found", row.ref, row.line)
			continue
		}
		if tok.UsedIn != row.usedIn {
			t.Errorf("%s line %d: used-in %q, want %q", row.ref, row.line, tok.UsedIn, row.usedIn)
		}
		if len(tok.MuDotD) != len(row.muDotD) {
			t.Errorf("%s line %d: mu.d = %v, want %v", row.ref, row.line, tok.MuDotD, row.muDotD)
		} else {
			for i := range row.muDotD {
				if tok.MuDotD[i] != row.muDotD[i] {
					t.Errorf("%s line %d: mu.d[%d] = %d, want %d", row.ref, row.line, i, tok.MuDotD[i], row.muDotD[i])
				}
			}
		}
		if tok.Class != row.class {
			t.Errorf("%s line %d: class %v, want %v", row.ref, row.line, tok.Class, row.class)
		}
		if tok.UsedInPEs != row.usedInPEs {
			t.Errorf("%s line %d: used-in-PEs %q, want %q", row.ref, row.line, tok.UsedInPEs, row.usedInPEs)
		}
	}
}

func TestPivotRowTokensArePipelinable(t *testing.T) {
	// A(k,k) in line 4 is part of the travelling pivot row: it must be
	// classified Pipeline, matching the Apipeline buffer of Fig 8.
	p, mu1, _ := gaussMappings(t)
	g1 := Analyze(p, p.Nests[0], mu1)
	tok := findToken(g1, "A(k,k)", 4)
	if tok == nil {
		t.Fatal("A(k,k) not analysed")
	}
	if tok.Class != Pipeline {
		t.Fatalf("A(k,k) class = %v", tok.Class)
	}
}

func TestDecidePipeliningGauss(t *testing.T) {
	p, mu1, mu3 := gaussMappings(t)
	d1 := DecidePipelining(p, p.Nests[0], mu1)
	if !d1.CanPipeline {
		t.Fatal("G1 must be pipelinable")
	}
	// Travelling tokens of G1: the pivot row A(k,*), A(k,k), A(i,k)?,
	// B(k). A(i,k) anchors both loops -> local; expect B(k), A(k,k),
	// A(k,j) among travellers.
	names := map[string]bool{}
	for _, r := range d1.TravellingTokens {
		names[r.String()] = true
	}
	for _, want := range []string{"B(k)", "A(k,k)", "A(k,j)"} {
		if !names[want] {
			t.Errorf("traveller %s missing (got %v)", want, names)
		}
	}
	if names["A(i,j)"] || names["L(i,k)"] {
		t.Errorf("local token classified travelling: %v", names)
	}
	d3 := DecidePipelining(p, p.Nests[2], mu3)
	if !d3.CanPipeline {
		t.Fatal("G3 must be pipelinable")
	}
}

func TestSORPipelinable(t *testing.T) {
	// Section 5: with column distribution, the iteration (i,j) executes
	// where A(.,j)/X(j) live, i.e. mapping mu = j. The accumulator V(i)
	// then travels one processor per j step: pipeline.
	p := ir.SOR()
	mu := Mapping{Nest: "S1", Coeff: map[string]int{"j": 1}}
	toks := Analyze(p, p.Nests[0], mu)
	v := findToken(toks, "V(i)", 5)
	if v == nil || v.Class != Pipeline {
		t.Fatalf("V(i) = %+v", v)
	}
	x := findToken(toks, "X(j)", 5)
	if x == nil || x.Class != Local {
		t.Fatalf("X(j) = %+v", x)
	}
	dec := DecidePipelining(p, p.Nests[0], mu)
	if !dec.CanPipeline {
		t.Fatal("SOR must be pipelinable under column mapping")
	}
}

func TestMultiHopClassification(t *testing.T) {
	// A synthetic mapping with coefficient 2 makes the reuse jump two
	// processors per step: MultiHop, not pipelinable.
	p := ir.SOR()
	mu := Mapping{Nest: "S1", Coeff: map[string]int{"j": 2}}
	dec := DecidePipelining(p, p.Nests[0], mu)
	if dec.CanPipeline {
		t.Fatal("coefficient-2 mapping must not be pipelinable")
	}
	v := findToken(dec.Tokens, "V(i)", 5)
	if v.Class != MultiHop {
		t.Fatalf("V(i) class = %v", v.Class)
	}
}

func TestNegativeUnitIsPipeline(t *testing.T) {
	p := ir.SOR()
	mu := Mapping{Nest: "S1", Coeff: map[string]int{"j": -1}}
	toks := Analyze(p, p.Nests[0], mu)
	v := findToken(toks, "V(i)", 5)
	if v.Class != Pipeline {
		t.Fatalf("V(i) with mu=-1 class = %v", v.Class)
	}
}

func TestDeriveMappingErrors(t *testing.T) {
	p := ir.Gauss()
	// All arrays replicated: no distributed LHS.
	if _, err := DeriveMapping(p, p.Nests[0], map[string]int{}); err == nil {
		t.Fatal("expected error for no distributed LHS")
	}
	if _, err := DeriveMapping(p, p.Nests[0], map[string]int{"A": -1, "L": -1, "B": -1}); err == nil {
		t.Fatal("expected error for replicated-only LHS")
	}
}

func TestAnalyzeJacobiL1(t *testing.T) {
	// Row distribution of Jacobi L1 (mu = i): X(j) is reused over i and
	// travels; A(i,j) is local.
	p := ir.Jacobi()
	mu := Mapping{Nest: "L1", Coeff: map[string]int{"i": 1}}
	toks := Analyze(p, p.Nests[0], mu)
	x := findToken(toks, "X(j)", 5)
	if x == nil || x.Class != Pipeline {
		t.Fatalf("X(j) = %+v", x)
	}
	a := findToken(toks, "A(i,j)", 5)
	if a == nil || a.Class != Local {
		t.Fatalf("A(i,j) = %+v", a)
	}
	if a.UsedIn != "(i,j)" {
		t.Fatalf("A(i,j) used-in = %q", a.UsedIn)
	}
}

func TestMappingString(t *testing.T) {
	m := Mapping{Coeff: map[string]int{"i": 1}}
	if m.String() != "1*i" {
		t.Fatalf("String = %q", m.String())
	}
	empty := Mapping{Coeff: map[string]int{}}
	if empty.String() != "0" {
		t.Fatalf("empty String = %q", empty.String())
	}
}

func TestClassString(t *testing.T) {
	if Local.String() != "local" || Pipeline.String() != "pipeline" || MultiHop.String() != "multi-hop" {
		t.Fatal("Class.String wrong")
	}
}

func TestSameRef(t *testing.T) {
	a := ir.R("A", ir.V("i"), ir.V("j"))
	b := ir.R("A", ir.V("i"), ir.V("j"))
	c := ir.R("A", ir.V("i"), ir.V("j").PlusConst(1))
	if !sameRef(a, b) {
		t.Fatal("identical refs not same")
	}
	if sameRef(a, c) {
		t.Fatal("shifted refs reported same")
	}
	if sameRef(a, ir.R("B", ir.V("i"), ir.V("j"))) {
		t.Fatal("different arrays reported same")
	}
	if sameRef(a, ir.R("A", ir.V("i"))) {
		t.Fatal("different ranks reported same")
	}
}
