// Flow analysis: for a token (a read reference), find the statement that
// generates its value and the iteration at which it was generated —
// Table 5's "generated in index" information (e.g. token B(k) in line 5
// "was generated in index (k-1, k)^t").
package dep

import (
	"fmt"
	"strings"

	"dmcc/internal/ir"
)

// Producer describes where a token's value comes from.
type Producer struct {
	// Stmt is the generating statement (nil if the value flows in from
	// outside the nest — program input or an earlier nest).
	Stmt *ir.Stmt
	// GenIndex renders the generating iteration in terms of the reader's
	// loop indices, e.g. "(k-1,k)" for B(k) read at (k,i).
	GenIndex string
	// SameIteration is true when the producer runs in the same iteration
	// vector as the consumer (loop-independent dependence).
	SameIteration bool
}

// FindProducer locates the last write of the token's element before its
// read at the given statement, within the same nest.
//
// The analysis solves the subscript equations for writes of the same
// array: a write W with subscripts w(I') generates the value read by R
// with subscripts r(I) when w(I') = r(I). For the affine single-index
// subscripts of the paper's programs each equation determines one
// coordinate of I'; remaining coordinates take the latest value allowed
// by the loop bounds and the "before the read" requirement.
func FindProducer(p *ir.Program, nest *ir.Nest, reader *ir.Stmt, token ir.Ref) (Producer, error) {
	var best *ir.Stmt
	bestIdx := -1
	readerIdx := -1
	for i, st := range nest.Stmts {
		if st == reader {
			readerIdx = i
		}
		if st.LHS.Array == token.Array {
			best = st
			bestIdx = i
		}
	}
	if best == nil {
		return Producer{GenIndex: "(input)"}, nil
	}
	_ = readerIdx

	// Solve w(I') = r(I) coordinate by coordinate.
	writerScope := make([]string, best.Depth)
	for i := 0; i < best.Depth; i++ {
		writerScope[i] = nest.Loops[i].Index
	}
	gen := make([]string, best.Depth)
	for i := range gen {
		gen[i] = "?"
	}
	for d := range token.Subs {
		w := best.LHS.Subs[d]
		r := token.Subs[d]
		// Single-variable affine subscript: coeff*v + c = r  =>  v = (r-c)/coeff.
		vars := w.Vars()
		if len(vars) != 1 {
			continue
		}
		v := vars[0]
		if w.CoeffOf(v) != 1 {
			continue // non-unit coefficients are out of the paper's class
		}
		pos := indexPos(writerScope, v)
		if pos < 0 {
			continue
		}
		// v = r - const(w).
		expr := r.PlusConst(-w.Const)
		gen[pos] = expr.String()
	}

	// Unsolved coordinates: the writer ran at the latest legal value of
	// that loop before the reader needs the value. For the paper's
	// forward loops that is the reader's value minus one when the same
	// index drives both (the loop-carried case), rendered symbolically.
	sameIter := true
	for pos, g := range gen {
		if g != "?" {
			// If the generating coordinate differs from the plain reader
			// index the dependence is loop-carried.
			if g != writerScope[pos] {
				sameIter = false
			}
			continue
		}
		sameIter = false
		idx := writerScope[pos]
		if _, ok := nest.Loop(idx); ok {
			gen[pos] = idx + "-1"
		}
	}
	// A producer later in statement order within the same iteration means
	// the value actually comes from the previous outer iteration.
	if sameIter && bestIdx > readerIdx && readerIdx >= 0 {
		sameIter = false
		// The outermost unsolved-from-equality coordinate steps back one.
		for pos := range gen {
			if gen[pos] == writerScope[pos] {
				gen[pos] = writerScope[pos] + "-1"
				break
			}
		}
	}
	return Producer{
		Stmt:          best,
		GenIndex:      "(" + strings.Join(gen, ",") + ")",
		SameIteration: sameIter,
	}, nil
}

func indexPos(scope []string, v string) int {
	for i, s := range scope {
		if s == v {
			return i
		}
	}
	return -1
}

// DependenceVector renders the constant dependence distance between the
// producer iteration and the reader's iteration when all components are
// constant, e.g. "(1,0)" for B(i) in line 5 (generated one k-iteration
// earlier). Non-constant components render as "*".
func DependenceVector(nest *ir.Nest, reader *ir.Stmt, prod Producer) string {
	if prod.Stmt == nil {
		return "(input)"
	}
	depth := prod.Stmt.Depth
	comps := make([]string, depth)
	genParts := strings.Split(strings.Trim(prod.GenIndex, "()"), ",")
	for i := 0; i < depth; i++ {
		idx := nest.Loops[i].Index
		if i >= len(genParts) {
			comps[i] = "*"
			continue
		}
		g := strings.TrimSpace(genParts[i])
		switch g {
		case idx:
			comps[i] = "0"
		case idx + "-1":
			comps[i] = "1"
		default:
			comps[i] = "*"
		}
	}
	return "(" + strings.Join(comps, ",") + ")"
}

// DescribeToken is a convenience used by reports: token, producer and
// dependence vector in one line.
func DescribeToken(p *ir.Program, nest *ir.Nest, reader *ir.Stmt, token ir.Ref) (string, error) {
	prod, err := FindProducer(p, nest, reader, token)
	if err != nil {
		return "", err
	}
	line := 0
	if prod.Stmt != nil {
		line = prod.Stmt.Line
	}
	return fmt.Sprintf("%s read at line %d: generated at %s (line %d), dependence %s",
		token, reader.Line, prod.GenIndex, line, DependenceVector(nest, reader, prod)), nil
}
