// Package dep implements the data-dependence analysis of Section 6: for
// every data token (array reference read by a statement) it computes the
// family of iteration indices that use the token, the token's reuse
// direction vectors, and — given an index-to-processor mapping mu — the
// image mu . d of each direction. The classification
//
//	mu . d = 0   the token stays on one processor (local reuse)
//	mu . d = 1   the token is needed by the neighbouring processor in the
//	             next step, so a OneToManyMulticast can be replaced by
//	             pipelined Shift operations
//	|mu . d| > 1 the token jumps processors; pipelining needs multi-hop
//	             shifts or a multicast
//
// reproduces Table 5 and drives the compiler's pipelining decision.
package dep

import (
	"fmt"
	"strings"

	"dmcc/internal/ir"
)

// Class is the communication classification of a token.
type Class int

const (
	// Local tokens never leave the processor that owns them.
	Local Class = iota
	// Pipeline tokens move exactly one processor per reuse step and can
	// be forwarded with Shift (send/receive) instead of broadcast.
	Pipeline
	// MultiHop tokens move more than one processor per reuse step.
	MultiHop
)

func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case Pipeline:
		return "pipeline"
	case MultiHop:
		return "multi-hop"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Token is the dependence information of one read reference, one row of
// Table 5.
type Token struct {
	Nest string
	Line int
	Ref  ir.Ref
	// Indices are the loop indices in scope at the statement, outermost
	// first; all vectors below are over these coordinates.
	Indices []string
	// ReuseDirs are the unit direction vectors of loops over which the
	// same token value is reused (loops whose index does not occur in the
	// token's subscripts).
	ReuseDirs [][]int
	// Mu is the index-to-processor mapping restricted to the statement's
	// scope.
	Mu []int
	// MuDotD holds mu . d for each reuse direction.
	MuDotD []int
	// Class is derived from MuDotD.
	Class Class
	// UsedIn renders the use-index family the way Table 5 prints it,
	// e.g. "(k,0)+i(0,1)".
	UsedIn string
	// UsedInPEs renders the processor set: "(i-1) mod N" for local
	// tokens, "all PEs" for travelling ones.
	UsedInPEs string
}

// Mapping assigns each loop index of a nest a coefficient; the virtual
// processor executing iteration I is mu . I.
type Mapping struct {
	Nest  string
	Coeff map[string]int
}

// MuVector returns the mapping as a vector over the given index order.
func (m Mapping) MuVector(indices []string) []int {
	v := make([]int, len(indices))
	for i, idx := range indices {
		v[i] = m.Coeff[idx]
	}
	return v
}

// String renders the mapping as a row vector over the nest's indices.
func (m Mapping) String() string {
	var parts []string
	for idx, c := range m.Coeff {
		if c != 0 {
			parts = append(parts, fmt.Sprintf("%d*%s", c, idx))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, "+")
}

// DeriveMapping picks the index-to-processor mapping of a nest the way
// Section 6 does: the deepest statement whose left-hand side array is
// distributed determines it — iteration I executes on the virtual
// processor given by the subscript of the LHS's distributed dimension
// (the owner-computes rule). distDim maps each array to its distributed
// dimension (0-based) or -1 if replicated. It returns an error if no
// statement has a distributed LHS or the subscript is not a pure loop
// index combination.
func DeriveMapping(p *ir.Program, nest *ir.Nest, distDim map[string]int) (Mapping, error) {
	var chosen *ir.Stmt
	for _, st := range nest.Stmts {
		d, ok := distDim[st.LHS.Array]
		if !ok || d < 0 {
			continue
		}
		if chosen == nil || st.Depth > chosen.Depth {
			chosen = st
		}
	}
	if chosen == nil {
		return Mapping{}, fmt.Errorf("dep: nest %s has no statement with a distributed LHS", nest.Label)
	}
	sub := chosen.LHS.Subs[distDim[chosen.LHS.Array]]
	m := Mapping{Nest: nest.Label, Coeff: map[string]int{}}
	for _, v := range sub.Vars() {
		if _, isLoop := nest.Loop(v); !isLoop {
			return Mapping{}, fmt.Errorf("dep: LHS subscript %s of %s uses non-loop variable %q", sub, chosen.LHS, v)
		}
		m.Coeff[v] = sub.CoeffOf(v)
	}
	if len(m.Coeff) == 0 {
		return Mapping{}, fmt.Errorf("dep: LHS subscript %s of %s is constant", sub, chosen.LHS)
	}
	return m, nil
}

// Analyze computes the dependence information of every read token of the
// nest under the given mapping, in statement order, reads left to right.
// Self-reads (the accumulator of a reduction, like B(i) in line 5 of the
// Gauss listing) are analysed like any other token; Table 5 lists them.
func Analyze(p *ir.Program, nest *ir.Nest, mu Mapping) []Token {
	var out []Token
	for _, st := range nest.Stmts {
		indices := make([]string, st.Depth)
		for i := 0; i < st.Depth; i++ {
			indices[i] = nest.Loops[i].Index
		}
		for _, rd := range st.Reads {
			out = append(out, analyzeToken(nest.Label, st.Line, rd, indices, mu))
		}
	}
	return out
}

// AnalyzeToken exposes single-token analysis for reports and tests.
func AnalyzeToken(nestLabel string, line int, ref ir.Ref, indices []string, mu Mapping) Token {
	return analyzeToken(nestLabel, line, ref, indices, mu)
}

func analyzeToken(nestLabel string, line int, ref ir.Ref, indices []string, mu Mapping) Token {
	t := Token{Nest: nestLabel, Line: line, Ref: ref, Indices: indices}
	inSub := map[string]bool{}
	for _, s := range ref.Subs {
		for _, v := range s.Vars() {
			inSub[v] = true
		}
	}
	t.Mu = mu.MuVector(indices)
	for pos, idx := range indices {
		if inSub[idx] {
			continue
		}
		d := make([]int, len(indices))
		d[pos] = 1
		t.ReuseDirs = append(t.ReuseDirs, d)
		t.MuDotD = append(t.MuDotD, t.Mu[pos])
	}
	t.Class = Local
	for _, md := range t.MuDotD {
		if md == 0 {
			continue
		}
		if md == 1 || md == -1 {
			if t.Class == Local {
				t.Class = Pipeline
			}
		} else {
			t.Class = MultiHop
		}
	}
	t.UsedIn = renderUsedIn(indices, inSub, t.ReuseDirs)
	t.UsedInPEs = renderUsedInPEs(indices, t.Mu, t.Class)
	return t
}

func renderUsedIn(indices []string, inSub map[string]bool, dirs [][]int) string {
	base := make([]string, len(indices))
	for i, idx := range indices {
		if inSub[idx] {
			base[i] = idx
		} else {
			base[i] = "0"
		}
	}
	s := "(" + strings.Join(base, ",") + ")"
	for _, d := range dirs {
		comp := make([]string, len(d))
		varName := ""
		for i, c := range d {
			comp[i] = fmt.Sprintf("%d", c)
			if c != 0 {
				varName = indices[i]
			}
		}
		s += fmt.Sprintf("+%s(%s)", varName, strings.Join(comp, ","))
	}
	return s
}

func renderUsedInPEs(indices []string, mu []int, c Class) string {
	if c != Local {
		return "all PEs"
	}
	// The token stays on the virtual processor mu . I; express it through
	// the anchored indices.
	a := ir.NewAffine(0)
	for i, m := range mu {
		if m != 0 {
			a = a.Plus(ir.NewAffine(0, ir.Term{Var: indices[i], Coeff: m}))
		}
	}
	return fmt.Sprintf("(%s-1) mod N", a)
}

func sameRef(a, b ir.Ref) bool {
	if a.Array != b.Array || len(a.Subs) != len(b.Subs) {
		return false
	}
	for i := range a.Subs {
		if d, ok := a.Subs[i].ConstDiff(b.Subs[i]); !ok || d != 0 {
			return false
		}
	}
	return true
}

// PipelineDecision summarizes whether a nest's remote communication can be
// implemented with Shift pipelining under a mapping (Section 6's
// transformation of OneToManyMulticast into send/receive).
type PipelineDecision struct {
	Mapping Mapping
	Tokens  []Token
	// CanPipeline is true when every travelling token moves exactly one
	// processor per reuse step.
	CanPipeline bool
	// TravellingTokens are the tokens that actually need communication.
	TravellingTokens []ir.Ref
}

// DecidePipelining analyses a nest and reports whether all its travelling
// tokens are pipelinable.
func DecidePipelining(p *ir.Program, nest *ir.Nest, mu Mapping) PipelineDecision {
	dec := PipelineDecision{Mapping: mu, CanPipeline: true}
	dec.Tokens = Analyze(p, nest, mu)
	seen := map[string]bool{}
	for _, t := range dec.Tokens {
		if t.Class == Local {
			continue
		}
		key := t.Ref.String()
		if !seen[key] {
			seen[key] = true
			dec.TravellingTokens = append(dec.TravellingTokens, t.Ref)
		}
		if t.Class == MultiHop {
			dec.CanPipeline = false
		}
	}
	return dec
}
