package data

import (
	"testing"

	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func runMachine(t *testing.T, g *grid.Grid, body func(p *machine.Proc)) machine.Stats {
	t.Helper()
	mach, err := machine.New(g, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := mach.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestScatterGatherVectorBlock(t *testing.T) {
	n := 16
	global := matrix.RandomVector(n, 3)
	g := grid.New(4)
	s := dist.Scheme1D(dist.BlockContiguous(n, 4, 0), nil)
	var out []float64
	runMachine(t, g, func(p *machine.Proc) {
		local, err := ScatterVector(p, s, 0, pick(p, 0, global))
		if err != nil {
			panic(err)
		}
		if len(local) != n/4 {
			panic("wrong local size")
		}
		// Round trip.
		back, err := GatherVector(p, s, 2, n, local)
		if err != nil {
			panic(err)
		}
		if p.Rank() == 2 {
			out = back
		}
	})
	if matrix.MaxAbsDiff(out, global) != 0 {
		t.Fatal("vector round trip failed")
	}
}

func TestScatterVectorCyclic(t *testing.T) {
	n := 10
	global := matrix.RandomVector(n, 5)
	g := grid.New(3)
	s := dist.Scheme1D(dist.Cyclic(0), nil)
	runMachine(t, g, func(p *machine.Proc) {
		local, err := ScatterVector(p, s, 1, pick(p, 1, global))
		if err != nil {
			panic(err)
		}
		// Proc r owns indices i with (i-1) mod 3 == r.
		want := 0
		for i := 1; i <= n; i++ {
			if (i-1)%3 == p.Rank() {
				if local[want] != global[i-1] {
					panic("wrong element")
				}
				want++
			}
		}
		if len(local) != want {
			panic("wrong count")
		}
	})
}

func TestScatterVectorReplicated(t *testing.T) {
	n := 6
	global := matrix.RandomVector(n, 7)
	g := grid.New(3)
	s := dist.Scheme1D(dist.Replicated(0), nil)
	runMachine(t, g, func(p *machine.Proc) {
		local, err := ScatterVector(p, s, 0, pick(p, 0, global))
		if err != nil {
			panic(err)
		}
		if matrix.MaxAbsDiff(local, global) != 0 {
			panic("replica differs")
		}
		back, err := GatherVector(p, s, 0, n, local)
		if err != nil {
			panic(err)
		}
		if p.Rank() == 0 && matrix.MaxAbsDiff(back, global) != 0 {
			panic("gather of replicated failed")
		}
	})
}

func TestScatterGatherMatrixBlock2D(t *testing.T) {
	m := 12
	global := matrix.RandomDense(m, m, 11)
	g := grid.New(2, 3)
	s := dist.Scheme2D(dist.BlockContiguous(m, 2, 0), dist.BlockContiguous(m, 3, 1), nil)
	var out *matrix.Dense
	runMachine(t, g, func(p *machine.Proc) {
		var in *matrix.Dense
		if p.Rank() == 0 {
			in = global
		}
		blk, err := ScatterMatrix(p, s, 0, in)
		if err != nil {
			panic(err)
		}
		if blk.Rows != m/2 || blk.Cols != m/3 {
			panic("block shape wrong")
		}
		// Check one element: my block starts at (p1*m/2, p2*m/3).
		if blk.At(0, 0) != global.At(p.Coord(0)*m/2, p.Coord(1)*m/3) {
			panic("block content wrong")
		}
		back, err := GatherMatrix(p, s, 0, m, m, blk)
		if err != nil {
			panic(err)
		}
		if p.Rank() == 0 {
			out = back
		}
	})
	if matrix.MaxAbsDiff(out.Data, global.Data) != 0 {
		t.Fatal("matrix round trip failed")
	}
}

func TestScatterMatrixRowsReplicatedCols(t *testing.T) {
	m := 8
	global := matrix.RandomDense(m, m, 13)
	g := grid.New(4, 1)
	s := dist.Scheme2D(dist.BlockContiguous(m, 4, 0),
		dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil)
	runMachine(t, g, func(p *machine.Proc) {
		var in *matrix.Dense
		if p.Rank() == 0 {
			in = global
		}
		blk, err := ScatterMatrix(p, s, 0, in)
		if err != nil {
			panic(err)
		}
		if blk.Rows != m/4 || blk.Cols != m {
			panic("row block shape wrong")
		}
	})
}

func TestScatterMatrixRejectsRotation(t *testing.T) {
	g := grid.New(2, 2)
	s := dist.Scheme2DRotated(dist.BlockContiguous(4, 2, 0), dist.BlockContiguous(4, 2, 1),
		dist.RotateDim2ByDim1, -1, -1, nil)
	runMachine(t, g, func(p *machine.Proc) {
		if _, err := ScatterMatrix(p, s, 0, matrix.NewDense(4, 4)); err == nil {
			panic("rotation accepted")
		}
		if _, err := GatherMatrix(p, s, 0, 4, 4, nil); err == nil {
			panic("rotation accepted in gather")
		}
	})
}

func TestScatterCostsAreCharged(t *testing.T) {
	// Distributing data is not free: the run must show communication.
	n := 16
	global := matrix.RandomVector(n, 17)
	g := grid.New(4)
	s := dist.Scheme1D(dist.BlockContiguous(n, 4, 0), nil)
	st := runMachine(t, g, func(p *machine.Proc) {
		if _, err := ScatterVector(p, s, 0, pick(p, 0, global)); err != nil {
			panic(err)
		}
	})
	if st.Words == 0 || st.ParallelTime == 0 {
		t.Fatalf("scatter was free: %+v", st)
	}
}

// pick returns the global data on root and nil elsewhere.
func pick(p *machine.Proc, root int, global []float64) []float64 {
	if p.Rank() == root {
		return global
	}
	return nil
}
