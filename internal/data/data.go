// Package data moves global arrays between a root processor and their
// distributed layout on the simulated machine: the runtime half of the
// distribution functions of Section 2.1. A kernel author distributes
// inputs with Scatter*, computes on local blocks, and collects results
// with Gather* — paying exactly the Table 1 Scatter/Gather costs the
// paper charges for loading and draining data.
//
// All functions are SPMD collectives over the whole machine: every
// processor must call them with consistent arguments. Local storage
// follows dist.Scheme.LocalIndex: owned elements pack densely in global
// order.
package data

import (
	"fmt"

	"dmcc/internal/dist"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// allDims lists every grid dimension, the peer set of whole-machine
// collectives.
func allDims(p *machine.Proc) []int {
	dims := make([]int, p.Grid().Q())
	for i := range dims {
		dims[i] = i
	}
	return dims
}

// ScatterVector distributes a global vector (1-based scheme indexing over
// global[0..n-1]) from root according to the scheme. Only root's global
// argument is consulted. Every processor returns its dense local block —
// including replicated copies when the scheme replicates.
func ScatterVector(p *machine.Proc, s dist.Scheme, root int, global []float64) ([]float64, error) {
	n := len(global)
	// Root builds one chunk per processor.
	dims := allDims(p)
	peers := p.PeersOver(dims...)
	var chunks [][]machine.Word
	if p.Rank() == root {
		nTot := bcastLen(p, root, n)
		_ = nTot
		chunks = make([][]machine.Word, len(peers))
		for pi, r := range peers {
			for i := 1; i <= n; i++ {
				if s.IsOwner(p.Grid(), r, i) {
					chunks[pi] = append(chunks[pi], global[i-1])
				}
			}
		}
	} else {
		n = bcastLen(p, root, 0)
	}
	local := p.Scatter(dims, root, chunks)
	// Verify the local count matches the scheme (protocol check).
	want := 0
	for i := 1; i <= n; i++ {
		if s.IsOwner(p.Grid(), p.Rank(), i) {
			want++
		}
	}
	if len(local) != want {
		return nil, fmt.Errorf("data: processor %d received %d elements, scheme owns %d", p.Rank(), len(local), want)
	}
	return local, nil
}

// GatherVector collects a distributed vector of global length n at root;
// root returns the assembled global vector, others nil. Replicated
// elements are taken from their lowest-ranked owner.
func GatherVector(p *machine.Proc, s dist.Scheme, root, n int, local []float64) ([]float64, error) {
	dims := allDims(p)
	peers := p.PeersOver(dims...)
	chunks := p.Gather(dims, root, local)
	if p.Rank() != root {
		return nil, nil
	}
	out := make([]float64, n)
	next := make([]int, len(peers))
	for i := 1; i <= n; i++ {
		owners := s.Owners(p.Grid(), i)
		// Consume the element from every owner's chunk to keep cursors
		// aligned; keep the first owner's value.
		first := true
		for pi, r := range peers {
			if !s.IsOwner(p.Grid(), r, i) {
				continue
			}
			if next[pi] >= len(chunks[pi]) {
				return nil, fmt.Errorf("data: processor %d chunk exhausted at element %d", r, i)
			}
			v := chunks[pi][next[pi]]
			next[pi]++
			if first {
				out[i-1] = v
				first = false
			}
		}
		_ = owners
	}
	return out, nil
}

// ScatterMatrix distributes a global matrix from root per a 2-D scheme.
// Every processor returns its local block as a dense row-major matrix of
// its owned rows x owned columns. Only rectangular per-processor
// footprints are supported (true for all Section 2.1 schemes without
// rotation); rotated schemes return an error.
func ScatterMatrix(p *machine.Proc, s dist.Scheme, root int, global *matrix.Dense) (*matrix.Dense, error) {
	if s.Rot != dist.NoRotation {
		return nil, fmt.Errorf("data: ScatterMatrix does not support rotated schemes; place blocks directly")
	}
	dims := allDims(p)
	peers := p.PeersOver(dims...)
	rows, cols := 0, 0
	if p.Rank() == root {
		rows, cols = global.Rows, global.Cols
	}
	rows = bcastLen(p, root, rows)
	cols = bcastLen(p, root, cols)

	var chunks [][]machine.Word
	if p.Rank() == root {
		chunks = make([][]machine.Word, len(peers))
		for pi, r := range peers {
			ri := ownedRows(p, s, r, rows)
			ci := ownedCols(p, s, r, cols)
			for _, i := range ri {
				for _, j := range ci {
					chunks[pi] = append(chunks[pi], global.At(i-1, j-1))
				}
			}
		}
	}
	local := p.Scatter(dims, root, chunks)
	ri := ownedRows(p, s, p.Rank(), rows)
	ci := ownedCols(p, s, p.Rank(), cols)
	if len(ri)*len(ci) != len(local) {
		return nil, fmt.Errorf("data: processor %d received %d elements for a %dx%d block",
			p.Rank(), len(local), len(ri), len(ci))
	}
	if len(ri) == 0 || len(ci) == 0 {
		return matrix.NewDense(1, 1), nil
	}
	blk := matrix.NewDense(len(ri), len(ci))
	copy(blk.Data, local)
	return blk, nil
}

// GatherMatrix reassembles a distributed matrix of global size rows x
// cols at root.
func GatherMatrix(p *machine.Proc, s dist.Scheme, root, rows, cols int, local *matrix.Dense) (*matrix.Dense, error) {
	if s.Rot != dist.NoRotation {
		return nil, fmt.Errorf("data: GatherMatrix does not support rotated schemes")
	}
	dims := allDims(p)
	peers := p.PeersOver(dims...)
	var payload []machine.Word
	if local != nil {
		payload = local.Data
	}
	chunks := p.Gather(dims, root, payload)
	if p.Rank() != root {
		return nil, nil
	}
	out := matrix.NewDense(rows, cols)
	filled := make([]bool, rows*cols)
	for pi, r := range peers {
		ri := ownedRows(p, s, r, rows)
		ci := ownedCols(p, s, r, cols)
		if len(ri)*len(ci) > len(chunks[pi]) {
			return nil, fmt.Errorf("data: processor %d sent %d elements for a %dx%d block",
				r, len(chunks[pi]), len(ri), len(ci))
		}
		k := 0
		for _, i := range ri {
			for _, j := range ci {
				if !filled[(i-1)*cols+(j-1)] {
					out.Set(i-1, j-1, chunks[pi][k])
					filled[(i-1)*cols+(j-1)] = true
				}
				k++
			}
		}
	}
	for idx, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("data: element %d of the gathered matrix has no owner", idx)
		}
	}
	return out, nil
}

func ownedRows(p *machine.Proc, s dist.Scheme, rank, rows int) []int {
	var out []int
	for i := 1; i <= rows; i++ {
		if dimOwned(p, s, 0, rank, i) {
			out = append(out, i)
		}
	}
	return out
}

func ownedCols(p *machine.Proc, s dist.Scheme, rank, cols int) []int {
	var out []int
	for j := 1; j <= cols; j++ {
		if dimOwned(p, s, 1, rank, j) {
			out = append(out, j)
		}
	}
	return out
}

// dimOwned checks ownership along one array dimension only.
func dimOwned(p *machine.Proc, s dist.Scheme, k, rank, idx int) bool {
	d := s.Dims[k]
	if d.Replicated {
		return true
	}
	// Build a probe index fixing the other dimension to 1.
	var coords []int
	if len(s.Dims) == 1 {
		coords = s.GridCoords(p.Grid(), idx)
	} else if k == 0 {
		coords = s.GridCoords(p.Grid(), idx, 1)
	} else {
		coords = s.GridCoords(p.Grid(), 1, idx)
	}
	c := coords[d.GridDim]
	return c == dist.All || p.Grid().Coord(rank, d.GridDim) == c
}

// bcastLen shares a small integer from root with every processor (metadata
// exchange; one word).
func bcastLen(p *machine.Proc, root, v int) int {
	dims := allDims(p)
	got := p.OneToManyMulticast(dims, root, []machine.Word{machine.Word(v)})
	return int(got[0])
}
