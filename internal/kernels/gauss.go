// Gauss elimination on a processor ring with the Section 6 cyclic row
// distribution: fA(i,:) = fL(i,:) = fV(i) = fB(i) = fX(i) = (i-1) mod N.
//
// Two implementations of the communication:
//
//   - GaussBroadcast is the naive compiler output Section 6 warns about:
//     for every pivot k the owner OneToManyMulticasts the pivot row and
//     B(k) to the whole ring, and during back substitution every X(j) is
//     multicast as well.
//
//   - GaussPipelined applies the Table 5 transformation: every travelling
//     token has dependence mapping mu.d = 1, so multicasts become Shift
//     operations — the pivot row is received from the left, forwarded to
//     the right *before* the local update (letting the wave advance), and
//     X values flow leftward the same way, as in the generated code of
//     Fig 8.
package kernels

import (
	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// gaussLocal is the per-processor state of the cyclic row distribution.
type gaussLocal struct {
	m, n, me int
	rows     []int       // my global row indices (i % n == me), ascending
	rowPos   map[int]int // global row -> local position
	a        [][]float64 // my rows of A (full width m)
	l        [][]float64 // my rows of L (multipliers)
	b        []float64
	v        []float64
	x        []float64
}

func newGaussLocal(p *machine.Proc, a *matrix.Dense, b []float64, n int) *gaussLocal {
	m := a.Rows
	me := p.Rank()
	g := &gaussLocal{m: m, n: n, me: me, rowPos: map[int]int{}}
	for i := me; i < m; i += n {
		g.rowPos[i] = len(g.rows)
		g.rows = append(g.rows, i)
		g.a = append(g.a, append([]float64(nil), a.Row(i)...))
		g.l = append(g.l, make([]float64, m))
		g.b = append(g.b, b[i])
		g.v = append(g.v, 0)
		g.x = append(g.x, 0)
	}
	return g
}

// eliminate applies pivot row k (pivA = A(k, k..m-1), pivB = B(k)) to all
// of my rows below k.
func (g *gaussLocal) eliminate(p *machine.Proc, k int, pivA []machine.Word, pivB machine.Word) {
	flops := 0
	for pos, i := range g.rows {
		if i <= k {
			continue
		}
		l := g.a[pos][k] / pivA[0]
		g.l[pos][k] = l
		g.b[pos] -= l * pivB
		row := g.a[pos]
		for j := k + 1; j < g.m; j++ {
			row[j] -= l * pivA[j-k]
		}
		flops += 3 + 2*(g.m-k-1)
	}
	if flops > 0 {
		p.Compute(flops)
	}
}

// backUpdate folds X(j) into the V accumulators of my rows above j
// (line 16 of the listing).
func (g *gaussLocal) backUpdate(p *machine.Proc, j int, xj float64) {
	flops := 0
	for pos, i := range g.rows {
		if i >= j {
			continue
		}
		g.v[pos] += g.a[pos][j] * xj
		flops += 2
	}
	if flops > 0 {
		p.Compute(flops)
	}
}

// pivotPayload packs A(k, k..m-1) and B(k) into one message.
func (g *gaussLocal) pivotPayload(k int) []machine.Word {
	pos := g.rowPos[k]
	payload := make([]machine.Word, 0, g.m-k+1)
	payload = append(payload, g.a[pos][k:]...)
	payload = append(payload, g.b[pos])
	return payload
}

// GaussBroadcast solves A x = b with multicast pivot/X distribution.
func GaussBroadcast(cfg machine.Config, a *matrix.Dense, b []float64, n int) (Result, error) {
	m := a.Rows
	if err := checkRing(m, n); err != nil {
		return Result{}, err
	}
	gr := grid.New(n)
	mach, err := machine.New(gr, cfg)
	if err != nil {
		return Result{}, err
	}
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		l := newGaussLocal(p, a, b, n)
		// Triangularization with pivot-row multicast.
		for k := 0; k < m; k++ {
			owner := k % n
			var payload []machine.Word
			if p.Rank() == owner {
				payload = l.pivotPayload(k)
			}
			payload = p.OneToManyMulticast([]int{0}, owner, payload)
			l.eliminate(p, k, payload[:len(payload)-1], payload[len(payload)-1])
		}
		// Back substitution with X multicast.
		for j := m - 1; j >= 0; j-- {
			owner := j % n
			var xj []machine.Word
			if p.Rank() == owner {
				pos := l.rowPos[j]
				v := (l.b[pos] - l.v[pos]) / l.a[pos][j]
				p.Compute(2)
				l.x[pos] = v
				xj = []machine.Word{v}
			}
			xj = p.OneToManyMulticast([]int{0}, owner, xj)
			l.backUpdate(p, j, xj[0])
		}
		for pos, i := range l.rows {
			w.put(i, l.x[pos])
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}

// GaussPipelined solves A x = b with the Fig 8 shift-pipelined
// communication: pivot rows travel rightward, X values leftward, each
// forwarded before the local computation so the wave overlaps. Rows are
// distributed cyclically (f(i) = (i-1) mod N, Section 6).
func GaussPipelined(cfg machine.Config, a *matrix.Dense, b []float64, n int) (Result, error) {
	return gaussPipelineRun(cfg, a, b, n, func(i int) int { return i % n })
}
