package kernels

import (
	"math"
	"testing"

	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func cfg() machine.Config { return machine.DefaultConfig() }

const tol = 1e-9

func TestJacobiGridMatchesSequential(t *testing.T) {
	m := 24
	a, b, _ := matrix.DiagonallyDominant(m, 3)
	x0 := make([]float64, m)
	want := matrix.JacobiSeq(a, b, x0, 10)
	for _, shape := range [][2]int{{1, 1}, {4, 1}, {1, 4}, {2, 2}, {2, 3}, {6, 4}} {
		res, err := JacobiGrid(cfg(), a, b, x0, 10, shape[0], shape[1])
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("shape %v: max diff %v", shape, d)
		}
	}
}

func TestJacobiGridConverges(t *testing.T) {
	m := 32
	a, b, xs := matrix.DiagonallyDominant(m, 5)
	x0 := make([]float64, m)
	res, err := JacobiGrid(cfg(), a, b, x0, 120, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(res.X, xs); d > 1e-8 {
		t.Fatalf("did not converge: %v", d)
	}
}

func TestJacobiRowSchemeCommMatchesSection4(t *testing.T) {
	// On an Nx1 grid the only communication is the X exchange:
	// m - m/N words received per processor per iteration, zero reduction.
	m, n, iters := 32, 4, 3
	a, b, _ := matrix.DiagonallyDominant(m, 7)
	x0 := make([]float64, m)
	res, err := JacobiGrid(cfg(), a, b, x0, iters, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Binomial multicast of each sub-block: words on the wire per
	// iteration = sum over roots of (m/N words) * (N-1 receivers).
	wantWords := int64(iters * m / n * (n - 1) * n / n * 1)
	_ = wantWords
	// Each of the N multicasts ships m/N words to N-1 receivers.
	want := int64(iters) * int64(n) * int64(m/n) * int64(n-1)
	if res.Stats.Words != want {
		t.Errorf("words = %d, want %d", res.Stats.Words, want)
	}
}

func TestJacobiGridErrors(t *testing.T) {
	a, b, _ := matrix.DiagonallyDominant(10, 1)
	x0 := make([]float64, 10)
	if _, err := JacobiGrid(cfg(), a, b, x0, 1, 3, 1); err == nil {
		t.Fatal("indivisible rows accepted")
	}
	if _, err := JacobiGrid(cfg(), a, b, x0, 1, 1, 4); err == nil {
		t.Fatal("indivisible cols accepted")
	}
	if _, err := JacobiGrid(cfg(), a, b, x0, 1, 0, 1); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestSORNaiveMatchesSequential(t *testing.T) {
	m := 24
	a, b, _ := matrix.DiagonallyDominant(m, 11)
	x0 := make([]float64, m)
	want := matrix.SORSeq(a, b, x0, 1.3, 6)
	for _, n := range []int{1, 2, 4, 8} {
		res, err := SORNaive(cfg(), a, b, x0, 1.3, 6, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestSORPipelinedMatchesSequential(t *testing.T) {
	m := 24
	a, b, _ := matrix.DiagonallyDominant(m, 13)
	x0 := make([]float64, m)
	want := matrix.SORSeq(a, b, x0, 1.1, 6)
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12} {
		res, err := SORPipelined(cfg(), a, b, x0, 1.1, 6, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestSORPipelinedConverges(t *testing.T) {
	m := 32
	a, b, xs := matrix.DiagonallyDominant(m, 17)
	x0 := make([]float64, m)
	res, err := SORPipelined(cfg(), a, b, x0, 1.0, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(res.X, xs); d > 1e-8 {
		t.Fatalf("did not converge: %v", d)
	}
}

// TestSORPipelinedBeatsNaive verifies the Section 5 claim on the machine:
// the pipelined implementation has a lower simulated makespan than the
// naive reduction implementation (and the gap grows with m).
func TestSORPipelinedBeatsNaive(t *testing.T) {
	n := 4
	var prevRatio float64
	for _, m := range []int{32, 64, 128} {
		a, b, _ := matrix.DiagonallyDominant(m, 19)
		x0 := make([]float64, m)
		naive, err := SORNaive(cfg(), a, b, x0, 1.2, 2, n)
		if err != nil {
			t.Fatal(err)
		}
		pip, err := SORPipelined(cfg(), a, b, x0, 1.2, 2, n)
		if err != nil {
			t.Fatal(err)
		}
		if pip.Stats.ParallelTime >= naive.Stats.ParallelTime {
			t.Errorf("m=%d: pipelined %v not faster than naive %v",
				m, pip.Stats.ParallelTime, naive.Stats.ParallelTime)
		}
		ratio := naive.Stats.ParallelTime / pip.Stats.ParallelTime
		if ratio < prevRatio {
			// The advantage should not shrink as m grows.
			t.Logf("m=%d: ratio %v (prev %v)", m, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

// TestSORPipelinedTimeWithinPaperBound: Section 5 bounds the average
// per-iteration time by (m+N)(2(m/N)tf + 2tc).
func TestSORPipelinedTimeWithinPaperBound(t *testing.T) {
	m, n, iters := 64, 4, 4
	a, b, _ := matrix.DiagonallyDominant(m, 23)
	x0 := make([]float64, m)
	res, err := SORPipelined(cfg(), a, b, x0, 1.2, iters, n)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Stats.ParallelTime / float64(iters)
	bound := float64(m+n) * (2*float64(m)/float64(n) + 2)
	// Allow the update flops (5 per row) on top of the paper's bound.
	if perIter > bound*1.25 {
		t.Errorf("per-iteration %v exceeds Section 5 bound %v", perIter, bound)
	}
}

func TestGaussBroadcastSolves(t *testing.T) {
	m := 20
	a, b, xs := matrix.DiagonallyDominant(m, 29)
	for _, n := range []int{1, 2, 4, 5} {
		res, err := GaussBroadcast(cfg(), a, b, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(res.X, xs); d > 1e-7 {
			t.Errorf("n=%d: error %v", n, d)
		}
		// Exact agreement with the sequential listing.
		want := matrix.GaussSeq(a, b)
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("n=%d: diff vs sequential %v", n, d)
		}
	}
}

func TestGaussPipelinedSolves(t *testing.T) {
	m := 20
	a, b, xs := matrix.DiagonallyDominant(m, 31)
	want := matrix.GaussSeq(a, b)
	for _, n := range []int{1, 2, 3, 4, 7} {
		res, err := GaussPipelined(cfg(), a, b, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("n=%d: diff vs sequential %v", n, d)
		}
		if d := matrix.MaxAbsDiff(res.X, xs); d > 1e-7 {
			t.Errorf("n=%d: error vs x* %v", n, d)
		}
	}
}

// TestGaussPipelinedBeatsBroadcast verifies the Section 6 claim: shifting
// the pivot row around the ring beats multicasting it. The advantage is
// the multicast's log N factor, so it appears once log2 N exceeds the
// pipeline's constant per-hop cost (receive-wait plus forward, ~2 message
// times): parity at N=4, a growing win for N >= 8, and a win even at N=4
// when the hardware overlaps communication with computation (the closing
// remark of Section 5).
func TestGaussPipelinedBeatsBroadcast(t *testing.T) {
	m := 64
	a, b, _ := matrix.DiagonallyDominant(m, 37)
	prevRatio := 0.0
	for _, n := range []int{8, 16} {
		bc, err := GaussBroadcast(cfg(), a, b, n)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := GaussPipelined(cfg(), a, b, n)
		if err != nil {
			t.Fatal(err)
		}
		if pp.Stats.ParallelTime >= bc.Stats.ParallelTime {
			t.Errorf("n=%d: pipelined %v not faster than broadcast %v",
				n, pp.Stats.ParallelTime, bc.Stats.ParallelTime)
		}
		ratio := bc.Stats.ParallelTime / pp.Stats.ParallelTime
		if ratio <= prevRatio {
			t.Errorf("n=%d: advantage %v did not grow from %v (want ~log N growth)", n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	// N=4 with overlap: pipelining wins because forwarding leaves the
	// critical path.
	over := cfg()
	over.Overlap = true
	bc, err := GaussBroadcast(over, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := GaussPipelined(over, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Stats.ParallelTime >= bc.Stats.ParallelTime {
		t.Errorf("overlap n=4: pipelined %v not faster than broadcast %v",
			pp.Stats.ParallelTime, bc.Stats.ParallelTime)
	}
}

func TestGaussRingValidation(t *testing.T) {
	a, b, _ := matrix.DiagonallyDominant(4, 1)
	if _, err := GaussBroadcast(cfg(), a, b, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GaussPipelined(cfg(), a, b, 8); err == nil {
		t.Fatal("more processors than rows accepted")
	}
}

func TestCannonMatchesSequential(t *testing.T) {
	m := 12
	bm := matrix.RandomDense(m, m, 41)
	cm := matrix.RandomDense(m, m, 43)
	want := bm.Mul(cm)
	for _, q := range []int{1, 2, 3, 4, 6} {
		got, _, err := Cannon(cfg(), bm, cm, q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if d := matrix.MaxAbsDiff(got.Data, want.Data); d > tol {
			t.Errorf("q=%d: max diff %v", q, d)
		}
	}
}

func TestCannonCommunicationVolume(t *testing.T) {
	// q-1 rotation steps, each moving two blocks of (m/q)^2 words per
	// processor: total words = 2 (q-1) q^2 (m/q)^2.
	m, q := 16, 4
	bm := matrix.RandomDense(m, m, 47)
	cm := matrix.RandomDense(m, m, 53)
	_, st, err := Cannon(cfg(), bm, cm, q)
	if err != nil {
		t.Fatal(err)
	}
	blk := m / q
	want := int64(2 * (q - 1) * q * q * blk * blk)
	if st.Words != want {
		t.Errorf("words = %d, want %d", st.Words, want)
	}
	// Perfect load balance: every processor does 2(m/q)^2 m flops.
	if st.MaxFlops() != int64(2*blk*blk*m) {
		t.Errorf("max flops = %d, want %d", st.MaxFlops(), 2*blk*blk*m)
	}
}

func TestCannonValidation(t *testing.T) {
	bm := matrix.RandomDense(9, 9, 1)
	cm := matrix.RandomDense(9, 8, 1)
	if _, _, err := Cannon(cfg(), bm, cm, 3); err == nil {
		t.Fatal("non-square C accepted")
	}
	if _, _, err := Cannon(cfg(), matrix.RandomDense(9, 9, 1), matrix.RandomDense(9, 9, 2), 2); err == nil {
		t.Fatal("indivisible size accepted")
	}
}

// TestOverlapReducesJacobiTime: with Overlap on, the simulated makespan
// must not increase, and should strictly decrease when communication is
// on the critical path ("if the hardware supports overlaying the
// computation and the communication, the total execution time may reduce
// further", Section 5).
func TestOverlapHelps(t *testing.T) {
	m, n := 32, 4
	a, b, _ := matrix.DiagonallyDominant(m, 59)
	x0 := make([]float64, m)
	plain := cfg()
	over := cfg()
	over.Overlap = true
	r1, err := SORPipelined(plain, a, b, x0, 1.2, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SORPipelined(over, a, b, x0, 1.2, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.ParallelTime > r1.Stats.ParallelTime {
		t.Errorf("overlap increased time: %v > %v", r2.Stats.ParallelTime, r1.Stats.ParallelTime)
	}
	if math.Abs(r1.Stats.ParallelTime-r2.Stats.ParallelTime) < 1e-12 {
		t.Logf("overlap made no difference at m=%d n=%d", m, n)
	}
}

func TestJacobiStatsAccounting(t *testing.T) {
	m, n1, n2, iters := 16, 2, 2, 2
	a, b, _ := matrix.DiagonallyDominant(m, 61)
	x0 := make([]float64, m)
	res, err := JacobiGrid(cfg(), a, b, x0, iters, n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	// Matvec flops: 2 m^2 per iteration (split across processors) plus
	// 3m update flops plus reduction combines.
	minFlops := int64(iters * (2*m*m + 3*m))
	if res.Stats.Flops < minFlops {
		t.Errorf("flops = %d, want >= %d", res.Stats.Flops, minFlops)
	}
	if res.Stats.ParallelTime <= 0 || res.Stats.Messages == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestSORChunkedMatchesSequential(t *testing.T) {
	m := 32
	a, b, _ := matrix.DiagonallyDominant(m, 71)
	x0 := make([]float64, m)
	want := matrix.SORSeq(a, b, x0, 1.15, 5)
	for _, n := range []int{2, 4} {
		for _, chunk := range []int{1, 2, 4, m / n} {
			res, err := SORPipelinedChunked(cfg(), a, b, x0, 1.15, 5, n, chunk)
			if err != nil {
				t.Fatalf("n=%d chunk=%d: %v", n, chunk, err)
			}
			if d := matrix.MaxAbsDiff(res.X, want); d > tol {
				t.Errorf("n=%d chunk=%d: max diff %v", n, chunk, d)
			}
		}
	}
}

func TestSORChunkedChunk1MatchesUnchunkedTime(t *testing.T) {
	m, n := 32, 4
	a, b, _ := matrix.DiagonallyDominant(m, 73)
	x0 := make([]float64, m)
	r1, err := SORPipelined(cfg(), a, b, x0, 1.2, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := SORPipelinedChunked(cfg(), a, b, x0, 1.2, 2, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.ParallelTime != rc.Stats.ParallelTime {
		t.Errorf("chunk=1 time %v != unchunked %v", rc.Stats.ParallelTime, r1.Stats.ParallelTime)
	}
	if r1.Stats.Messages != rc.Stats.Messages {
		t.Errorf("chunk=1 messages %d != unchunked %d", rc.Stats.Messages, r1.Stats.Messages)
	}
}

// TestSORChunkTradeoff: with zero startup cost, fine-grain pipelining
// (chunk 1) is fastest; with a large per-message startup, coarser chunks
// win — the granularity trade-off of blocked pipelining.
func TestSORChunkTradeoff(t *testing.T) {
	m, n := 64, 4
	a, b, _ := matrix.DiagonallyDominant(m, 79)
	x0 := make([]float64, m)
	timeFor := func(alpha float64, chunk int) float64 {
		c := cfg()
		c.Alpha = alpha
		res, err := SORPipelinedChunked(c, a, b, x0, 1.2, 2, n, chunk)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.ParallelTime
	}
	if t1, t8 := timeFor(0, 1), timeFor(0, 8); t1 > t8 {
		t.Errorf("alpha=0: chunk 1 (%v) should not lose to chunk 8 (%v)", t1, t8)
	}
	if t1, t8 := timeFor(16, 1), timeFor(16, 8); t8 >= t1 {
		t.Errorf("alpha=16: chunk 8 (%v) should beat chunk 1 (%v)", t8, t1)
	}
}

func TestSORChunkedValidation(t *testing.T) {
	a, b, _ := matrix.DiagonallyDominant(16, 1)
	x0 := make([]float64, 16)
	if _, err := SORPipelinedChunked(cfg(), a, b, x0, 1.2, 1, 4, 3); err == nil {
		t.Fatal("chunk not dividing block accepted")
	}
	if _, err := SORPipelinedChunked(cfg(), a, b, x0, 1.2, 1, 4, 0); err == nil {
		t.Fatal("chunk 0 accepted")
	}
}

func TestStencilMatchesSequential(t *testing.T) {
	m := 24
	x0 := matrix.RandomVector(m, 91)
	want := StencilSeq(x0, 7)
	for _, n := range []int{1, 2, 3, 4, 6} {
		res, err := Stencil(cfg(), x0, 7, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestStencilCommIndependentOfM(t *testing.T) {
	// Ghost exchange moves 2 words per interior neighbour pair per sweep,
	// regardless of m — the Section 1 "neighboring data" class.
	n, iters := 4, 3
	for _, m := range []int{16, 64, 256} {
		x0 := matrix.RandomVector(m, 93)
		res, err := Stencil(cfg(), x0, iters, n)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(iters * n * 2) // every proc sends 2 words per sweep
		if res.Stats.Words != want {
			t.Errorf("m=%d: words = %d, want %d", m, res.Stats.Words, want)
		}
	}
}

func TestStencilValidation(t *testing.T) {
	if _, err := Stencil(cfg(), make([]float64, 10), 1, 3); err == nil {
		t.Fatal("indivisible accepted")
	}
}

func TestStencil2DMatchesSequential(t *testing.T) {
	m := 12
	u0 := matrix.RandomDense(m, m, 101)
	want := Stencil2DSeq(u0, 6)
	for _, shape := range [][2]int{{1, 1}, {2, 1}, {1, 3}, {2, 2}, {3, 4}, {2, 6}} {
		got, _, err := Stencil2D(cfg(), u0, 6, shape[0], shape[1])
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if d := matrix.MaxAbsDiff(got.Data, want.Data); d > tol {
			t.Errorf("shape %v: max diff %v", shape, d)
		}
	}
}

func TestStencil2DHaloVolume(t *testing.T) {
	// Per sweep: every processor ships one halo row up, one down, one
	// column left, one right (when neighbours exist on that axis).
	m, n1, n2, iters := 16, 2, 4, 3
	u0 := matrix.RandomDense(m, m, 103)
	_, st, err := Stencil2D(cfg(), u0, iters, n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	perSweep := n1 * n2 * (2*(m/n2) + 2*(m/n1)) // rows of cP words + cols of rP words
	if st.Words != int64(iters*perSweep) {
		t.Errorf("words = %d, want %d", st.Words, iters*perSweep)
	}
}

func TestStencil2DSurfaceToVolume(t *testing.T) {
	// The square grid moves fewer halo words than the strip for the same
	// processor count (surface-to-volume advantage): 2-D decomposition is
	// what alignment chooses when both array dims carry affinity.
	m, iters := 32, 2
	u0 := matrix.RandomDense(m, m, 107)
	_, strip, err := Stencil2D(cfg(), u0, iters, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, square, err := Stencil2D(cfg(), u0, iters, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if square.Words >= strip.Words {
		t.Errorf("square grid words %d not below strip %d", square.Words, strip.Words)
	}
}

func TestStencil2DValidation(t *testing.T) {
	if _, _, err := Stencil2D(cfg(), matrix.NewDense(8, 9), 1, 2, 2); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := Stencil2D(cfg(), matrix.NewDense(8, 8), 1, 3, 2); err == nil {
		t.Fatal("indivisible accepted")
	}
}

func TestGaussBlockCyclicSolves(t *testing.T) {
	m := 24
	a, b, _ := matrix.DiagonallyDominant(m, 111)
	want := matrix.GaussSeq(a, b)
	for _, n := range []int{2, 4} {
		for _, block := range []int{1, 2, 3, m / n} {
			res, err := GaussPipelinedBlockCyclic(cfg(), a, b, n, block)
			if err != nil {
				t.Fatalf("n=%d block=%d: %v", n, block, err)
			}
			if d := matrix.MaxAbsDiff(res.X, want); d > tol {
				t.Errorf("n=%d block=%d: diff %v", n, block, d)
			}
		}
	}
	if _, err := GaussPipelinedBlockCyclic(cfg(), a, b, 4, 0); err == nil {
		t.Fatal("block 0 accepted")
	}
}

func TestGaussBlockCyclicMatchesCyclicAtBlock1(t *testing.T) {
	m, n := 32, 4
	a, b, _ := matrix.DiagonallyDominant(m, 113)
	r1, err := GaussPipelined(cfg(), a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := GaussPipelinedBlockCyclic(cfg(), a, b, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.ParallelTime != rb.Stats.ParallelTime || r1.Stats.Words != rb.Stats.Words {
		t.Errorf("block=1 stats differ: %v/%d vs %v/%d",
			rb.Stats.ParallelTime, rb.Stats.Words, r1.Stats.ParallelTime, r1.Stats.Words)
	}
}

// TestGaussLayoutLoadBalanceOnMachine: the Section 6 load-balance
// argument measured end to end — cyclic beats contiguous blocks on
// makespan and max-processor flops for the triangular workload.
func TestGaussLayoutLoadBalanceOnMachine(t *testing.T) {
	m, n := 48, 4
	a, b, _ := matrix.DiagonallyDominant(m, 117)
	cyc, err := GaussPipelinedBlockCyclic(cfg(), a, b, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := GaussPipelinedBlockCyclic(cfg(), a, b, n, m/n)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Stats.MaxFlops() >= blk.Stats.MaxFlops() {
		t.Errorf("cyclic max flops %d not below contiguous %d", cyc.Stats.MaxFlops(), blk.Stats.MaxFlops())
	}
	if cyc.Stats.ParallelTime >= blk.Stats.ParallelTime {
		t.Errorf("cyclic makespan %v not below contiguous %v", cyc.Stats.ParallelTime, blk.Stats.ParallelTime)
	}
}

func TestGaussPartialPivotMatchesSequential(t *testing.T) {
	m := 20
	a, b, xs := matrix.NearSingularLeading(m, 1e-13, 121)
	want, _ := matrix.GaussPivotSeq(a, b)
	for _, n := range []int{1, 2, 4, 5} {
		res, err := GaussPartialPivot(cfg(), a, b, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(res.X, want); d > tol {
			t.Errorf("n=%d: diff vs sequential pivoting %v", n, d)
		}
		if d := matrix.MaxAbsDiff(res.X, xs); d > 1e-6 {
			t.Errorf("n=%d: error vs x* %v", n, d)
		}
	}
}

// TestPivotingRescuesStability: without pivoting the tiny leading pivot
// destroys accuracy; with pivoting the solution stays tight.
func TestPivotingRescuesStability(t *testing.T) {
	m, n := 24, 4
	a, b, xs := matrix.NearSingularLeading(m, 1e-13, 127)
	plain, err := GaussPipelined(cfg(), a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	piv, err := GaussPartialPivot(cfg(), a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	errPlain := matrix.MaxAbsDiff(plain.X, xs)
	errPiv := matrix.MaxAbsDiff(piv.X, xs)
	if errPiv*1e3 > errPlain {
		t.Errorf("pivoting error %.3g not well below plain %.3g", errPiv, errPlain)
	}
}

func TestGaussPartialPivotOnWellConditioned(t *testing.T) {
	// On diagonally dominant systems pivoting may still permute; the
	// answer must match the sequential pivoting reference exactly.
	m := 16
	a, b, _ := matrix.DiagonallyDominant(m, 131)
	want, _ := matrix.GaussPivotSeq(a, b)
	res, err := GaussPartialPivot(cfg(), a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(res.X, want); d > tol {
		t.Errorf("diff %v", d)
	}
}
