// A relaxation stencil: the Section 1 case where "dependent data only
// influence neighboring data", so the component-alignment distribution
// needs only nearest-neighbour Shift communication (ghost cells) — no
// reductions, no multicasts, no pipelining required.
//
//	DO k = 1, iters
//	  DO i = 2, m-1
//	    Y(i) = (X(i-1) + X(i) + X(i+1)) / 3
//	  DO i = 2, m-1
//	    X(i) = Y(i)
//
// Block distribution of X and Y over a ring; each sweep exchanges one
// boundary element with each neighbour: 2 words per processor per sweep,
// independent of m — the cheapest communication class in the paper's
// taxonomy.
package kernels

import (
	"dmcc/internal/grid"
	"dmcc/internal/machine"
)

// StencilSeq is the sequential reference: iters sweeps of the three-point
// average with fixed boundary values.
func StencilSeq(x0 []float64, iters int) []float64 {
	m := len(x0)
	x := append([]float64(nil), x0...)
	y := make([]float64, m)
	for k := 0; k < iters; k++ {
		copy(y, x)
		for i := 1; i < m-1; i++ {
			y[i] = (x[i-1] + x[i] + x[i+1]) / 3
		}
		copy(x, y)
	}
	return x
}

// Stencil runs the relaxation on an n-processor ring with block
// distribution and ghost-cell exchange.
func Stencil(cfg machine.Config, x0 []float64, iters, n int) (Result, error) {
	m := len(x0)
	if err := checkDivisible(m, n, "stencil"); err != nil {
		return Result{}, err
	}
	g := grid.New(n)
	mach, err := machine.New(g, cfg)
	if err != nil {
		return Result{}, err
	}
	blk := m / n
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		me := p.Rank()
		lo := me * blk
		// Local block with two ghost cells.
		x := make([]float64, blk+2)
		copy(x[1:], x0[lo:lo+blk])
		y := make([]float64, blk+2)
		right := g.NeighbourPlus(me, 0)
		left := g.NeighbourMinus(me, 0)

		for k := 0; k < iters; k++ {
			// Ghost exchange: my first element goes left, my last goes
			// right; ring wraparound values land in the ghost cells but
			// are ignored at the global boundary.
			if n > 1 {
				p.SendValue(right, x[blk])
				p.SendValue(left, x[1])
				x[0] = p.RecvValue(left)
				x[blk+1] = p.RecvValue(right)
			}
			copy(y, x)
			flops := 0
			for li := 1; li <= blk; li++ {
				gi := lo + li - 1
				if gi == 0 || gi == m-1 {
					continue // fixed boundary
				}
				y[li] = (x[li-1] + x[li] + x[li+1]) / 3
				flops += 3
			}
			p.Compute(flops)
			copy(x, y)
		}
		for li := 1; li <= blk; li++ {
			w.put(lo+li-1, x[li])
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}
