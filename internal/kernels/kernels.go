// Package kernels contains the executable SPMD programs the paper
// compiles: Jacobi iteration on all the candidate grids of Table 2 and
// the Section 4 row scheme, successive over-relaxation in both the naive
// (reduction per step) and the Fig 6 ring-pipelined form, Gauss
// elimination with broadcast and with the Fig 8 pipelined communication,
// and Cannon's matrix multiplication on the rotated layouts of Fig 1.
//
// Every kernel runs on the simulated machine (package machine), is
// verified numerically against its sequential reference (package matrix),
// and reports the machine's message/word/flop/makespan statistics so the
// benchmarks can compare communication schemes the way the paper does.
package kernels

import (
	"fmt"

	"dmcc/internal/machine"
)

// Result bundles a kernel's numeric output with the machine statistics of
// the run.
type Result struct {
	X     []float64
	Stats machine.Stats
}

// checkDivisible validates the block-distribution precondition m % n == 0
// shared by the kernels (the paper's examples all use divisible sizes).
func checkDivisible(m, n int, kernel string) error {
	if n < 1 {
		return fmt.Errorf("kernels: %s: need at least one processor, got %d", kernel, n)
	}
	if m%n != 0 {
		return fmt.Errorf("kernels: %s: problem size %d not divisible by %d processors", kernel, m, n)
	}
	return nil
}

// checkRing validates a ring kernel's processor count: at least one
// processor and no more than one per row (idle processors would only
// distort the statistics).
func checkRing(m, n int) error {
	if n < 1 {
		return fmt.Errorf("kernels: need at least one processor, got %d", n)
	}
	if n > m {
		return fmt.Errorf("kernels: %d processors for %d rows leaves idle processors", n, m)
	}
	return nil
}

// disjointWriter collects per-processor results into one slice. Writers
// must use disjoint index ranges; the machine's Run barrier (goroutine
// join) orders all writes before the read of the final slice.
type disjointWriter struct {
	out []float64
}

func newDisjointWriter(n int) *disjointWriter {
	return &disjointWriter{out: make([]float64, n)}
}

func (w *disjointWriter) put(i int, v float64) { w.out[i] = v }
