// Jacobi's iterative algorithm on an N1 x N2 processor grid.
//
// The data distribution follows Section 3 (Equation 1) for general grids
// and specializes to the Section 4 / Table 3 row scheme when N2 = 1:
//
//   - A is blocked N1 x N2: processor (p1,p2) holds rows of row-block p1
//     and columns of column-block p2;
//   - X and B are blocked along the columns (aligned with A2) and
//     replicated along grid dimension 1;
//   - V is blocked along the rows (aligned with A1) and, after the
//     per-row reduction, replicated along grid dimension 2.
//
// One iteration:
//
//  1. every processor computes the partial products of its A block
//     against its X block (line 5 of the listing);
//  2. an AllReduce along grid dimension 2 completes V for the row block
//     (the Reduction term of Table 2);
//  3. the processor owning both row i and column i updates X(i)
//     (line 8);
//  4. the updated X sub-blocks are multicast along grid dimension 1
//     (the loop-carried-dependence term).
//
// On an N x 1 grid steps 2-3 are communication-free and step 4 is the
// single ManyToMany exchange of the Section 4 scheme, reproducing
// (2m^2/N + 3m/N)tf + ~m tc per iteration.
package kernels

import (
	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// JacobiGrid runs iters Jacobi iterations of A x = b on an n1 x n2 grid
// and returns the final x and machine statistics.
func JacobiGrid(cfg machine.Config, a *matrix.Dense, b, x0 []float64, iters, n1, n2 int) (Result, error) {
	m := a.Rows
	if err := checkDivisible(m, n1, "jacobi rows"); err != nil {
		return Result{}, err
	}
	if err := checkDivisible(m, n2, "jacobi cols"); err != nil {
		return Result{}, err
	}
	g := grid.New(n1, n2)
	mach, err := machine.New(g, cfg)
	if err != nil {
		return Result{}, err
	}
	rowsPer := m / n1
	colsPer := m / n2
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		p1, p2 := p.Coord(0), p.Coord(1)
		rLo := p1 * rowsPer // my global row range [rLo, rHi)
		rHi := rLo + rowsPer
		cLo := p2 * colsPer // my global column range [cLo, cHi)
		cHi := cLo + colsPer

		// Local storage: my A block, the full X column block (replicated
		// along dim 1), B for the indices I update, the V row block.
		aBlk := make([][]float64, rowsPer)
		for i := range aBlk {
			aBlk[i] = append([]float64(nil), a.Row(rLo + i)[cLo:cHi]...)
		}
		x := append([]float64(nil), x0[cLo:cHi]...)
		bLoc := append([]float64(nil), b[cLo:cHi]...)
		v := make([]machine.Word, rowsPer)

		for it := 0; it < iters; it++ {
			// (1) partial products of my block.
			for i := 0; i < rowsPer; i++ {
				s := 0.0
				for j := 0; j < colsPer; j++ {
					s += aBlk[i][j] * x[j]
				}
				v[i] = s
			}
			p.Compute(2 * rowsPer * colsPer)

			// (2) complete V along the row (grid dim 1).
			if n2 > 1 {
				v = p.AllReduce([]int{1}, v, machine.SumOp)
			}

			// (3) update the X entries whose row and column blocks are
			// both mine.
			lo := max(rLo, cLo)
			hi := min(rHi, cHi)
			for i := lo; i < hi; i++ {
				diag := aBlk[i-rLo][i-cLo]
				x[i-cLo] += (bLoc[i-cLo] - v[i-rLo]) / diag
			}
			if hi > lo {
				p.Compute(3 * (hi - lo))
			}

			// (4) all-gather the updated X sub-blocks along grid dim 1 so
			// the whole column block is fresh everywhere: the loop-carried
			// dependence of X, ManyToManyMulticast(m/N, N) in Section 4.
			if n1 > 1 {
				var mine []machine.Word
				if lo, hi := max(rLo, cLo), min(rHi, cHi); hi > lo {
					mine = x[lo-cLo : hi-cLo]
				}
				all := p.ManyToManyMulticast([]int{0}, mine)
				for r := 0; r < n1; r++ {
					sLo := max(r*rowsPer, cLo)
					sHi := min((r+1)*rowsPer, cHi)
					if sLo >= sHi {
						continue
					}
					copy(x[sLo-cLo:sHi-cLo], all[r])
				}
			}
		}

		// Deposit the final X: the diagonal-block owners hold the fresh
		// values and their ranges are disjoint.
		lo := max(rLo, cLo)
		hi := min(rHi, cHi)
		for i := lo; i < hi; i++ {
			w.put(i, x[i-cLo])
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
