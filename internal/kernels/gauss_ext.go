// Extensions of the Section 6 Gauss kernels:
//
//   - GaussPipelinedBlockCyclic generalizes the cyclic row distribution
//     to block-cyclic blocks (Fig 1 (f)/(h) style), so the load-balance
//     choice of Section 6 can be measured on the executing kernel: block
//     size 1 is the paper's cyclic layout, block size m/N is contiguous.
//
//   - GaussPartialPivot adds partial (row) pivoting — the numerical
//     stability extension. The pivot search is a Reduction with a
//     max-|value| operator over the ring (one more collective per step),
//     and the row swap is a point-to-point exchange between the two
//     owners; everything else pipelines as in Fig 8.
package kernels

import (
	"fmt"
	"math"

	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// newGaussLocalOwner is newGaussLocal with an arbitrary row->owner map.
func newGaussLocalOwner(p *machine.Proc, a *matrix.Dense, b []float64, ownerOf func(int) int) *gaussLocal {
	m := a.Rows
	me := p.Rank()
	g := &gaussLocal{m: m, me: me, rowPos: map[int]int{}}
	for i := 0; i < m; i++ {
		if ownerOf(i) != me {
			continue
		}
		g.rowPos[i] = len(g.rows)
		g.rows = append(g.rows, i)
		g.a = append(g.a, append([]float64(nil), a.Row(i)...))
		g.l = append(g.l, make([]float64, m))
		g.b = append(g.b, b[i])
		g.v = append(g.v, 0)
		g.x = append(g.x, 0)
	}
	return g
}

// gaussPipelineRun is the Fig 8 pipeline parameterized by the row->owner
// map; GaussPipelined is the ownerOf(i) = i mod N instance.
func gaussPipelineRun(cfg machine.Config, a *matrix.Dense, b []float64, n int, ownerOf func(int) int) (Result, error) {
	m := a.Rows
	if err := checkRing(m, n); err != nil {
		return Result{}, err
	}
	if cfg.ChanCap < 2*m+2 {
		cfg.ChanCap = 2*m + 2
	}
	gr := grid.New(n)
	mach, err := machine.New(gr, cfg)
	if err != nil {
		return Result{}, err
	}
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		l := newGaussLocalOwner(p, a, b, ownerOf)
		right := p.Grid().NeighbourPlus(p.Rank(), 0)
		left := p.Grid().NeighbourMinus(p.Rank(), 0)

		for k := 0; k < m; k++ {
			owner := ownerOf(k)
			var pivA []machine.Word
			var pivB machine.Word
			if p.Rank() == owner {
				payload := l.pivotPayload(k)
				if n > 1 {
					p.Send(right, payload)
				}
				pivA, pivB = payload[:len(payload)-1], payload[len(payload)-1]
			} else {
				payload := p.Recv(left)
				if right != owner {
					p.Send(right, payload)
				}
				pivA, pivB = payload[:len(payload)-1], payload[len(payload)-1]
			}
			l.eliminate(p, k, pivA, pivB)
		}

		for j := m - 1; j >= 0; j-- {
			owner := ownerOf(j)
			var xj float64
			if p.Rank() == owner {
				pos := l.rowPos[j]
				xj = (l.b[pos] - l.v[pos]) / l.a[pos][j]
				p.Compute(2)
				l.x[pos] = xj
				if n > 1 {
					p.SendValue(left, xj)
				}
			} else {
				xj = p.RecvValue(right)
				if left != owner {
					p.SendValue(left, xj)
				}
			}
			l.backUpdate(p, j, xj)
		}
		for pos, i := range l.rows {
			w.put(i, l.x[pos])
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}

// GaussPipelinedBlockCyclic solves A x = b with the Fig 8 pipeline on a
// block-cyclic row distribution: row i lives on processor
// (floor(i/block)) mod N. block = 1 is GaussPipelined's layout.
func GaussPipelinedBlockCyclic(cfg machine.Config, a *matrix.Dense, b []float64, n, block int) (Result, error) {
	if block < 1 {
		return Result{}, fmt.Errorf("kernels: gauss: block size %d must be at least 1", block)
	}
	return gaussPipelineRun(cfg, a, b, n, func(i int) int { return (i / block) % n })
}

// maxAbsPairOp reduces (|value|, row) pairs keeping the largest absolute
// value; ties prefer the smaller row index, matching the sequential
// first-maximum pivot choice.
func maxAbsPairOp(acc, in []machine.Word) {
	if in[0] > acc[0] || (in[0] == acc[0] && in[1] < acc[1]) {
		acc[0], acc[1] = in[0], in[1]
	}
}

// GaussPartialPivot solves A x = b on a ring with cyclic rows and partial
// pivoting. Per elimination step: a Reduction finds the largest |A(i,k)|
// over the remaining rows, the two owners exchange the rows, then the
// pivot row pipelines as in Fig 8.
func GaussPartialPivot(cfg machine.Config, a *matrix.Dense, b []float64, n int) (Result, error) {
	m := a.Rows
	if err := checkRing(m, n); err != nil {
		return Result{}, err
	}
	if cfg.ChanCap < 2*m+4 {
		cfg.ChanCap = 2*m + 4
	}
	gr := grid.New(n)
	mach, err := machine.New(gr, cfg)
	if err != nil {
		return Result{}, err
	}
	w := newDisjointWriter(m)
	ownerOf := func(i int) int { return i % n }

	st, err := mach.Run(func(p *machine.Proc) {
		l := newGaussLocalOwner(p, a, b, ownerOf)
		right := p.Grid().NeighbourPlus(p.Rank(), 0)
		left := p.Grid().NeighbourMinus(p.Rank(), 0)

		for k := 0; k < m; k++ {
			// 1. Distributed pivot search over rows >= k.
			best := []machine.Word{-1, machine.Word(m)}
			for pos, i := range l.rows {
				if i < k {
					continue
				}
				if v := math.Abs(l.a[pos][k]); v > float64(best[0]) {
					best[0], best[1] = v, machine.Word(i)
				}
			}
			p.Compute(len(l.rows)) // comparison work
			global := p.AllReduce([]int{0}, best, maxAbsPairOp)
			piv := int(global[1])

			// 2. Row exchange between owner(k) and owner(piv).
			if piv != k {
				ok, op := ownerOf(k), ownerOf(piv)
				switch {
				case ok == op && p.Rank() == ok:
					pk, pp := l.rowPos[k], l.rowPos[piv]
					l.a[pk], l.a[pp] = l.a[pp], l.a[pk]
					l.l[pk], l.l[pp] = l.l[pp], l.l[pk]
					l.b[pk], l.b[pp] = l.b[pp], l.b[pk]
				case p.Rank() == ok:
					pk := l.rowPos[k]
					p.Send(op, append(append(append([]machine.Word{}, l.a[pk]...), l.l[pk]...), l.b[pk]))
					in := p.Recv(op)
					copy(l.a[pk], in[:l.m])
					copy(l.l[pk], in[l.m:2*l.m])
					l.b[pk] = in[2*l.m]
				case p.Rank() == op:
					pp := l.rowPos[piv]
					p.Send(ok, append(append(append([]machine.Word{}, l.a[pp]...), l.l[pp]...), l.b[pp]))
					in := p.Recv(ok)
					copy(l.a[pp], in[:l.m])
					copy(l.l[pp], in[l.m:2*l.m])
					l.b[pp] = in[2*l.m]
				}
			}

			// 3. Pipeline the pivot row and eliminate (Fig 8).
			owner := ownerOf(k)
			var pivA []machine.Word
			var pivB machine.Word
			if p.Rank() == owner {
				payload := l.pivotPayload(k)
				if n > 1 {
					p.Send(right, payload)
				}
				pivA, pivB = payload[:len(payload)-1], payload[len(payload)-1]
			} else {
				payload := p.Recv(left)
				if right != owner {
					p.Send(right, payload)
				}
				pivA, pivB = payload[:len(payload)-1], payload[len(payload)-1]
			}
			l.eliminate(p, k, pivA, pivB)
		}

		// Back substitution, unchanged.
		for j := m - 1; j >= 0; j-- {
			owner := ownerOf(j)
			var xj float64
			if p.Rank() == owner {
				pos := l.rowPos[j]
				xj = (l.b[pos] - l.v[pos]) / l.a[pos][j]
				p.Compute(2)
				l.x[pos] = xj
				if n > 1 {
					p.SendValue(left, xj)
				}
			} else {
				xj = p.RecvValue(right)
				if left != owner {
					p.SendValue(left, xj)
				}
			}
			l.backUpdate(p, j, xj)
		}
		for pos, i := range l.rows {
			w.put(i, l.x[pos])
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}
