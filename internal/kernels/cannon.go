// Cannon's matrix multiplication A = B * C on a q x q grid (N = q^2
// processors), the Section 2.1 example of dependent ("rotated") 2-D data
// distributions.
//
// Initial layouts follow Fig 1: A is plainly blocked (a); B's column
// blocks are rotated by its row block, fB(block b1,b2) = (b1,
// (-b1-b2) mod q) (b); C's row blocks are rotated by its column block,
// fC(c1,c2) = ((-c1-c2) mod q, c2) (c). Processor (i,j) therefore starts
// holding B block (i, k0) and C block (k0, j) with k0 = (-i-j) mod q, a
// multipliable pair; q multiply-shift steps (B one step along the row
// ring, C one step along the column ring) complete the product.
package kernels

import (
	"fmt"

	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// Cannon multiplies B * C on a q x q processor grid and returns the
// product plus machine statistics. The matrix size must be divisible by q.
func Cannon(cfg machine.Config, bMat, cMat *matrix.Dense, q int) (*matrix.Dense, machine.Stats, error) {
	m := bMat.Rows
	if err := checkDivisible(m, q, "cannon"); err != nil {
		return nil, machine.Stats{}, err
	}
	if bMat.Cols != m || cMat.Rows != m || cMat.Cols != m {
		return nil, machine.Stats{}, fmt.Errorf("kernels: cannon: matrices must be square and equal-sized")
	}
	blk := m / q
	g := grid.New(q, q)
	cfgAdj := cfg
	if cfgAdj.ChanCap < 4 {
		cfgAdj.ChanCap = 4
	}
	mach, err := machine.New(g, cfgAdj)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := matrix.NewDense(m, m)

	extract := func(src *matrix.Dense, bi, bj int) []machine.Word {
		buf := make([]machine.Word, 0, blk*blk)
		for i := bi * blk; i < (bi+1)*blk; i++ {
			buf = append(buf, src.Row(i)[bj*blk:(bj+1)*blk]...)
		}
		return buf
	}

	st, err := mach.Run(func(p *machine.Proc) {
		pi, pj := p.Coord(0), p.Coord(1)
		k0 := ((-pi-pj)%q + q) % q
		// Initial skewed blocks per Fig 1 (b) and (c).
		bBlk := extract(bMat, pi, k0)
		cBlk := extract(cMat, k0, pj)
		acc := make([]machine.Word, blk*blk)

		for step := 0; step < q; step++ {
			// Local block multiply-accumulate.
			for i := 0; i < blk; i++ {
				for k := 0; k < blk; k++ {
					bv := bBlk[i*blk+k]
					if bv == 0 {
						continue
					}
					crow := cBlk[k*blk:]
					arow := acc[i*blk:]
					for j := 0; j < blk; j++ {
						arow[j] += bv * crow[j]
					}
				}
			}
			p.Compute(2 * blk * blk * blk)
			if step == q-1 {
				break
			}
			// Rotate: B moves one step left along the row ring, C one
			// step up along the column ring, so the k blocks advance.
			bBlk = p.Shift(1, -1, bBlk)
			cBlk = p.Shift(0, -1, cBlk)
		}

		// Deposit my block of the product (disjoint ranges per processor).
		for i := 0; i < blk; i++ {
			copy(out.Row(pi*blk + i)[pj*blk:(pj+1)*blk], acc[i*blk:(i+1)*blk])
		}
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
