// Successive over-relaxation on a processor ring with the Section 5 /
// Table 4 column distribution: processor p holds the column block of A,
// the matching blocks of X and B, and a replicated V.
//
// Two implementations:
//
//   - SORNaive follows the "naive algorithm" of Section 5: at step i every
//     processor computes its partial inner product, a Reduction combines
//     the partials at the owner of X(i), which updates it. Every step
//     costs a reduction; processors idle while it runs.
//
//   - SORPipelined is the Fig 5 / Fig 6 wavefront: the partial sum V(i)
//     is seeded by the owner of row i's columns and circulates once
//     around the ring, accumulating each processor's contribution, so the
//     inner products of different rows overlap. Phase structure per
//     sweep (matching the generated code in Fig 6):
//
//     1. rows owned by processors to my left: receive V, add my
//     contribution (old X), forward;
//     2. my rows: seed V with my upper-triangle contribution (old X),
//     send right;
//     3. my rows: receive the completed V after its round trip, add my
//     lower-triangle contribution (new X), update X;
//     4. rows owned by processors to my right: receive V, add my
//     contribution (new X), forward.
package kernels

import (
	"fmt"

	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// sorLocal is the per-processor state of the column distribution.
type sorLocal struct {
	m, n, blk, me int
	lo, hi        int         // my global column range [lo, hi)
	a             [][]float64 // a[i] = row i restricted to my columns
	x, b          []float64   // my X and B blocks
}

func newSORLocal(p *machine.Proc, a *matrix.Dense, b, x0 []float64, n int) *sorLocal {
	m := a.Rows
	blk := m / n
	me := p.Rank()
	l := &sorLocal{m: m, n: n, blk: blk, me: me, lo: me * blk, hi: (me + 1) * blk}
	l.a = make([][]float64, m)
	for i := 0; i < m; i++ {
		l.a[i] = append([]float64(nil), a.Row(i)[l.lo:l.hi]...)
	}
	l.x = append([]float64(nil), x0[l.lo:l.hi]...)
	l.b = append([]float64(nil), b[l.lo:l.hi]...)
	return l
}

// partial computes sum over my columns of A(i,j) X(j) and charges flops.
func (l *sorLocal) partial(p *machine.Proc, i int) float64 {
	s := 0.0
	row := l.a[i]
	for j, xv := range l.x {
		s += row[j] * xv
	}
	p.Compute(2 * l.blk)
	return s
}

// SORNaive runs iters sweeps of the naive reduction-per-step SOR.
func SORNaive(cfg machine.Config, a *matrix.Dense, b, x0 []float64, omega float64, iters, n int) (Result, error) {
	m := a.Rows
	if err := checkDivisible(m, n, "sor"); err != nil {
		return Result{}, err
	}
	g := grid.New(n)
	mach, err := machine.New(g, cfg)
	if err != nil {
		return Result{}, err
	}
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		l := newSORLocal(p, a, b, x0, n)
		for it := 0; it < iters; it++ {
			for i := 0; i < m; i++ {
				owner := i / l.blk
				temp := l.partial(p, i)
				v := p.Reduction([]int{0}, owner, []machine.Word{temp}, machine.SumOp)
				if p.Rank() == owner {
					li := i - l.lo
					l.x[li] += omega * (l.b[li] - v[0]) / l.a[i][li]
					p.Compute(4)
				}
			}
		}
		for li, xv := range l.x {
			w.put(l.lo+li, xv)
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}

// SORPipelined runs iters sweeps of the Fig 6 ring-pipelined SOR.
func SORPipelined(cfg machine.Config, a *matrix.Dense, b, x0 []float64, omega float64, iters, n int) (Result, error) {
	m := a.Rows
	if err := checkDivisible(m, n, "sor"); err != nil {
		return Result{}, err
	}
	// The circulating V values require ring buffering; ensure channel
	// capacity covers a processor's full block of in-flight sends.
	if cfg.ChanCap < m {
		cfg.ChanCap = m
	}
	g := grid.New(n)
	mach, err := machine.New(g, cfg)
	if err != nil {
		return Result{}, err
	}
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		l := newSORLocal(p, a, b, x0, n)
		right := p.Grid().NeighbourPlus(p.Rank(), 0)
		left := p.Grid().NeighbourMinus(p.Rank(), 0)
		before := l.lo
		for it := 0; it < iters; it++ {
			// Phase 1: rows of processors to my left (their X entries are
			// larger-indexed than mine... no: their rows come before mine;
			// my columns are to the right of those rows' diagonal, so my
			// contribution uses OLD X — correct, since my block is not yet
			// updated this sweep).
			for i := 0; i < before; i++ {
				temp := l.partial(p, i)
				v := p.RecvValue(left) + temp
				p.Compute(1)
				p.SendValue(right, v)
			}
			// Phase 2: seed my rows with the upper-triangle part (old X).
			for li := 0; li < l.blk; li++ {
				i := before + li
				s := 0.0
				for j := li; j < l.blk; j++ {
					s += l.a[i][j] * l.x[j]
				}
				p.Compute(2 * (l.blk - li))
				p.SendValue(right, s)
			}
			// Phase 3: complete my rows (new X for the lower triangle)
			// and update X.
			for li := 0; li < l.blk; li++ {
				i := before + li
				temp := 0.0
				for j := 0; j < li; j++ {
					temp += l.a[i][j] * l.x[j]
				}
				if li > 0 {
					p.Compute(2 * li)
				}
				v := p.RecvValue(left) + temp
				l.x[li] += omega * (l.b[li] - v) / l.a[i][li]
				p.Compute(5)
			}
			// Phase 4: rows of processors to my right (their diagonal is
			// right of my columns, so my contribution uses NEW X).
			for i := l.hi; i < m; i++ {
				temp := l.partial(p, i)
				v := p.RecvValue(left) + temp
				p.Compute(1)
				p.SendValue(right, v)
			}
		}
		for li, xv := range l.x {
			w.put(l.lo+li, xv)
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}

// SORPipelinedChunked is SORPipelined with a coarser pipelining grain:
// the circulating partial sums travel in chunks of the given size instead
// of one value per message. Fewer, larger messages amortize the
// per-message startup cost Alpha at the price of a longer wavefront
// fill — the classic pipelining granularity trade-off, benchmarked by
// BenchmarkAblationChunkSize. chunk must divide the block size m/n;
// chunk = 1 is exactly SORPipelined's communication pattern.
func SORPipelinedChunked(cfg machine.Config, a *matrix.Dense, b, x0 []float64, omega float64, iters, n, chunk int) (Result, error) {
	m := a.Rows
	if err := checkDivisible(m, n, "sor"); err != nil {
		return Result{}, err
	}
	if chunk < 1 || (m/n)%chunk != 0 {
		return Result{}, fmt.Errorf("kernels: sor: chunk %d must divide the block size %d", chunk, m/n)
	}
	if cfg.ChanCap < m {
		cfg.ChanCap = m
	}
	g := grid.New(n)
	mach, err := machine.New(g, cfg)
	if err != nil {
		return Result{}, err
	}
	w := newDisjointWriter(m)

	st, err := mach.Run(func(p *machine.Proc) {
		l := newSORLocal(p, a, b, x0, n)
		right := p.Grid().NeighbourPlus(p.Rank(), 0)
		left := p.Grid().NeighbourMinus(p.Rank(), 0)
		before := l.lo
		for it := 0; it < iters; it++ {
			// Phase 1: rows of left processors, chunked. Temps are
			// computed before receiving so the wave's transit overlaps
			// with computation, as in the unchunked pipeline.
			temps := make([]machine.Word, chunk)
			for base := 0; base < before; base += chunk {
				for o := 0; o < chunk; o++ {
					temps[o] = l.partial(p, base+o)
				}
				vs := p.Recv(left)
				for o := 0; o < chunk; o++ {
					vs[o] += temps[o]
					p.Compute(1)
				}
				p.Send(right, vs)
			}
			// Phase 2: seed my rows, chunked.
			for base := 0; base < l.blk; base += chunk {
				vs := make([]machine.Word, chunk)
				for o := 0; o < chunk; o++ {
					li := base + o
					i := before + li
					s := 0.0
					for j := li; j < l.blk; j++ {
						s += l.a[i][j] * l.x[j]
					}
					p.Compute(2 * (l.blk - li))
					vs[o] = s
				}
				p.Send(right, vs)
			}
			// Phase 3: complete my rows, chunked; X updates stay in row
			// order inside the chunk so the SOR semantics are unchanged.
			// The first row's lower-triangle part depends only on earlier
			// chunks, so it is computed before the receive; later rows in
			// the chunk read X values updated inside the chunk.
			for base := 0; base < l.blk; base += chunk {
				first := 0.0
				for j := 0; j < base; j++ {
					first += l.a[before+base][j] * l.x[j]
				}
				if base > 0 {
					p.Compute(2 * base)
				}
				vs := p.Recv(left)
				for o := 0; o < chunk; o++ {
					li := base + o
					i := before + li
					temp := first
					if o > 0 {
						temp = 0.0
						for j := 0; j < li; j++ {
							temp += l.a[i][j] * l.x[j]
						}
						p.Compute(2 * li)
					}
					v := vs[o] + temp
					l.x[li] += omega * (l.b[li] - v) / l.a[i][li]
					p.Compute(5)
				}
			}
			// Phase 4: rows of right processors, chunked (compute before
			// receive, as in phase 1).
			for base := l.hi; base < m; base += chunk {
				for o := 0; o < chunk; o++ {
					temps[o] = l.partial(p, base+o)
				}
				vs := p.Recv(left)
				for o := 0; o < chunk; o++ {
					vs[o] += temps[o]
					p.Compute(1)
				}
				p.Send(right, vs)
			}
		}
		for li, xv := range l.x {
			w.put(l.lo+li, xv)
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{X: w.out, Stats: st}, nil
}
