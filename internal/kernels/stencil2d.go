// Five-point relaxation on a 2-D processor grid: the full
// "dependent data only influence neighboring data" case of Section 1,
// where the component-alignment distribution (U1 -> grid dim 1,
// U2 -> grid dim 2, both block-contiguous) makes all communication
// nearest-neighbour ghost exchanges along both grid dimensions.
//
//	DO k = 1, iters
//	  DO i = 2, m-1
//	    DO j = 2, m-1
//	      Unew(i,j) = (U(i-1,j) + U(i+1,j) + U(i,j-1) + U(i,j+1)) / 4
//	  U = Unew
//
// Per sweep each processor exchanges one halo row with each vertical
// neighbour and one halo column with each horizontal neighbour:
// 2(R + C) words, independent of the interior size.
package kernels

import (
	"fmt"

	"dmcc/internal/grid"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// Stencil2DSeq is the sequential reference.
func Stencil2DSeq(u0 *matrix.Dense, iters int) *matrix.Dense {
	m := u0.Rows
	u := u0.Clone()
	v := u0.Clone()
	for k := 0; k < iters; k++ {
		for i := 1; i < m-1; i++ {
			for j := 1; j < m-1; j++ {
				v.Set(i, j, (u.At(i-1, j)+u.At(i+1, j)+u.At(i, j-1)+u.At(i, j+1))/4)
			}
		}
		u, v = v, u
	}
	return u.Clone()
}

// Stencil2D runs iters sweeps of the five-point average on an n1 x n2
// grid with block distribution and halo exchange; the boundary of the
// global domain is held fixed.
func Stencil2D(cfg machine.Config, u0 *matrix.Dense, iters, n1, n2 int) (*matrix.Dense, machine.Stats, error) {
	m := u0.Rows
	if u0.Cols != m {
		return nil, machine.Stats{}, fmt.Errorf("kernels: stencil2d: domain must be square, got %dx%d", m, u0.Cols)
	}
	if err := checkDivisible(m, n1, "stencil2d rows"); err != nil {
		return nil, machine.Stats{}, err
	}
	if err := checkDivisible(m, n2, "stencil2d cols"); err != nil {
		return nil, machine.Stats{}, err
	}
	g := grid.New(n1, n2)
	mach, err := machine.New(g, cfg)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rP := m / n1 // rows per processor
	cP := m / n2
	out := matrix.NewDense(m, m)

	st, err := mach.Run(func(p *machine.Proc) {
		p1, p2 := p.Coord(0), p.Coord(1)
		rLo, cLo := p1*rP, p2*cP
		// Local block with a one-cell halo all around.
		u := matrix.NewDense(rP+2, cP+2)
		v := matrix.NewDense(rP+2, cP+2)
		for i := 0; i < rP; i++ {
			for j := 0; j < cP; j++ {
				u.Set(i+1, j+1, u0.At(rLo+i, cLo+j))
			}
		}
		up := g.NeighbourMinus(p.Rank(), 0)
		down := g.NeighbourPlus(p.Rank(), 0)
		left := g.NeighbourMinus(p.Rank(), 1)
		right := g.NeighbourPlus(p.Rank(), 1)

		rowOf := func(i int) []machine.Word {
			return append([]machine.Word(nil), u.Row(i)[1:cP+1]...)
		}
		colOf := func(j int) []machine.Word {
			c := make([]machine.Word, rP)
			for i := 0; i < rP; i++ {
				c[i] = u.At(i+1, j)
			}
			return c
		}

		for k := 0; k < iters; k++ {
			// Halo exchange. Ring sends are harmless at the global
			// boundary: the wrapped halo is never read there.
			if n1 > 1 {
				p.Send(up, rowOf(1))
				p.Send(down, rowOf(rP))
				// My bottom halo is down's first row (sent upward to me);
				// my top halo is up's last row (sent downward to me).
				// With n1=2 both neighbours coincide and FIFO order keeps
				// the two messages straight.
				bottomHalo := p.Recv(down)
				topHalo := p.Recv(up)
				copy(u.Row(rP + 1)[1:cP+1], bottomHalo)
				copy(u.Row(0)[1:cP+1], topHalo)
			}
			if n2 > 1 {
				p.Send(left, colOf(1))
				p.Send(right, colOf(cP))
				rightHalo := p.Recv(right)
				leftHalo := p.Recv(left)
				for i := 0; i < rP; i++ {
					u.Set(i+1, cP+1, rightHalo[i])
					u.Set(i+1, 0, leftHalo[i])
				}
			}
			// Relax interior points (global boundary fixed).
			flops := 0
			for i := 1; i <= rP; i++ {
				gi := rLo + i - 1
				for j := 1; j <= cP; j++ {
					gj := cLo + j - 1
					if gi == 0 || gi == m-1 || gj == 0 || gj == m-1 {
						v.Set(i, j, u.At(i, j))
						continue
					}
					v.Set(i, j, (u.At(i-1, j)+u.At(i+1, j)+u.At(i, j-1)+u.At(i, j+1))/4)
					flops += 4
				}
			}
			p.Compute(flops)
			u, v = v, u
		}
		// Deposit (disjoint blocks).
		for i := 0; i < rP; i++ {
			copy(out.Row(rLo + i)[cLo:cLo+cP], u.Row(i + 1)[1:cP+1])
		}
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
