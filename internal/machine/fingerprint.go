package machine

import "fmt"

// Fingerprint returns a canonical rendering of every Config field that
// affects simulated results — the machine half of an artifact cache
// key. The Tracer is excluded: it observes the run without changing
// clocks or counters.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("tf=%g;tc=%g;alpha=%g;overlap=%t;chancap=%d;synccoll=%t",
		c.Tf, c.Tc, c.Alpha, c.Overlap, c.ChanCap, c.SyncCollectives)
}
