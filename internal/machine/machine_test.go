package machine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dmcc/internal/grid"
)

func mustNew(t testing.TB, g *grid.Grid, cfg Config) *Machine {
	t.Helper()
	m, err := New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func run(t *testing.T, g *grid.Grid, cfg Config, body func(p *Proc)) Stats {
	t.Helper()
	st, err := mustNew(t, g, cfg).Run(body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func TestSendRecvDeliversCopy(t *testing.T) {
	g := grid.New(2)
	run(t, g, DefaultConfig(), func(p *Proc) {
		if p.Rank() == 0 {
			data := []Word{1, 2, 3}
			p.Send(1, data)
			data[0] = 99 // must not affect the receiver
		} else {
			got := p.Recv(0)
			if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestSendRecvClockModel(t *testing.T) {
	g := grid.New(2)
	cfg := Config{Tf: 2, Tc: 3, Alpha: 5, Overlap: false, ChanCap: 4}
	st := run(t, g, cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(10) // clock = 20
			p.Send(1, []Word{1, 2})
			// non-overlap: sender pays alpha + 2*Tc = 11; clock = 31
			if p.Clock() != 31 {
				t.Errorf("sender clock = %v, want 31", p.Clock())
			}
		} else {
			got := p.Recv(0)
			if len(got) != 2 {
				t.Errorf("len = %d", len(got))
			}
			// receiver waits until arrival at t=31
			if p.Clock() != 31 {
				t.Errorf("receiver clock = %v, want 31", p.Clock())
			}
		}
	})
	if st.ParallelTime != 31 {
		t.Errorf("ParallelTime = %v, want 31", st.ParallelTime)
	}
	if st.Messages != 1 || st.Words != 2 || st.Flops != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOverlapClockModel(t *testing.T) {
	g := grid.New(2)
	cfg := Config{Tf: 1, Tc: 10, Alpha: 1, Overlap: true, ChanCap: 4}
	run(t, g, cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []Word{1, 2, 3}) // pays alpha only: clock = 1
			if p.Clock() != 1 {
				t.Errorf("overlapped sender clock = %v, want 1", p.Clock())
			}
			p.Compute(5) // keeps computing while message is in flight
		} else {
			p.Recv(0)
			// arrival = 1 (send clock) + 30 (transfer) = 31
			if p.Clock() != 31 {
				t.Errorf("receiver clock = %v, want 31", p.Clock())
			}
		}
	})
}

func TestSelfSendIsFree(t *testing.T) {
	g := grid.New(1)
	st := run(t, g, DefaultConfig(), func(p *Proc) {
		p.Send(0, []Word{7})
		got := p.Recv(0)
		if got[0] != 7 {
			t.Errorf("got %v", got)
		}
		if p.Clock() != 0 {
			t.Errorf("clock = %v", p.Clock())
		}
	})
	if st.Messages != 0 || st.Words != 0 {
		t.Errorf("self-send counted: %+v", st)
	}
}

func TestSendRecvValue(t *testing.T) {
	g := grid.New(2)
	run(t, g, DefaultConfig(), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendValue(1, 3.5)
		} else if v := p.RecvValue(0); v != 3.5 {
			t.Errorf("got %v", v)
		}
	})
}

func TestFIFOOrderPerPair(t *testing.T) {
	g := grid.New(2)
	run(t, g, DefaultConfig(), func(p *Proc) {
		const n = 50
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.SendValue(1, Word(i))
			}
		} else {
			for i := 0; i < n; i++ {
				if v := p.RecvValue(0); v != Word(i) {
					t.Errorf("out of order: got %v at %d", v, i)
					return
				}
			}
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	g := grid.New(4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		p.Compute(p.Rank() * 10)
		p.Barrier()
		if p.Clock() != 30 {
			t.Errorf("proc %d clock after barrier = %v, want 30", p.Rank(), p.Clock())
		}
		// Reusable: second generation.
		p.Compute(5)
		p.Barrier()
		if p.Clock() != 35 {
			t.Errorf("proc %d clock after 2nd barrier = %v, want 35", p.Rank(), p.Clock())
		}
	})
}

func TestBarrierManyGenerations(t *testing.T) {
	g := grid.New(3)
	run(t, g, DefaultConfig(), func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Barrier()
		}
	})
}

func TestPanicIsReportedAsError(t *testing.T) {
	g := grid.New(2)
	_, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
		p.Barrier() // would deadlock without abort handling
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestComputeNegativePanics(t *testing.T) {
	g := grid.New(1)
	_, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) { p.Compute(-1) })
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestSendRecvRankValidation(t *testing.T) {
	g := grid.New(2)
	if _, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) { p.Send(2, nil) }); err == nil {
		t.Fatal("Send to bad rank should error")
	}
	if _, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) { p.Recv(-1) }); err == nil {
		t.Fatal("Recv from bad rank should error")
	}
}

func TestPeersOver(t *testing.T) {
	g := grid.New(2, 3)
	run(t, g, DefaultConfig(), func(p *Proc) {
		rowPeers := p.PeersOver(1)
		if len(rowPeers) != 3 {
			t.Errorf("row peers = %v", rowPeers)
		}
		colPeers := p.PeersOver(0)
		if len(colPeers) != 2 {
			t.Errorf("col peers = %v", colPeers)
		}
		all := p.PeersOver(0, 1)
		if len(all) != 6 {
			t.Errorf("all peers = %v", all)
		}
	})
}

func TestTransfer(t *testing.T) {
	g := grid.New(3)
	run(t, g, DefaultConfig(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Transfer(0, 2, []Word{4, 5})
		case 2:
			got := p.Transfer(0, 2, nil)
			if len(got) != 2 || got[0] != 4 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestShiftRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		for _, dist := range []int{0, 1, -1, 2, n, n + 1, -n - 2} {
			g := grid.New(n)
			run(t, g, DefaultConfig(), func(p *Proc) {
				got := p.Shift(0, dist, []Word{Word(p.Rank())})
				d := ((dist % n) + n) % n
				want := Word((p.Rank() - d + n*4) % n)
				if got[0] != want {
					t.Errorf("n=%d dist=%d proc %d: got %v want %v", n, dist, p.Rank(), got[0], want)
				}
			})
		}
	}
}

func TestShift2DGrid(t *testing.T) {
	g := grid.New(3, 4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		// Shift along dim 1: value moves +1 in the row ring.
		got := p.Shift(1, 1, []Word{Word(p.Coord(1))})
		want := Word((p.Coord(1) + 3) % 4)
		if got[0] != want {
			t.Errorf("proc %v: got %v want %v", p.Rank(), got[0], want)
		}
	})
}

func TestOneToManyMulticast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		g := grid.New(n)
		for root := 0; root < n; root += max(1, n/3) {
			root := root
			st := run(t, g, DefaultConfig(), func(p *Proc) {
				var data []Word
				if p.Rank() == root {
					data = []Word{42, 43}
				}
				got := p.OneToManyMulticast([]int{0}, root, data)
				if len(got) != 2 || got[0] != 42 || got[1] != 43 {
					t.Errorf("n=%d root=%d proc %d got %v", n, root, p.Rank(), got)
				}
			})
			if n > 1 && st.Messages != int64(n-1) {
				t.Errorf("n=%d: multicast used %d messages, want %d", n, st.Messages, n-1)
			}
		}
	}
}

func TestMulticastLogSteps(t *testing.T) {
	// Critical path of a binomial multicast over n procs is ceil(log2 n)
	// message hops: with Tc=1, Alpha=0 and 1-word messages the makespan
	// must equal ceil(log2 n).
	for _, n := range []int{2, 4, 8, 16, 32} {
		g := grid.New(n)
		st := run(t, g, DefaultConfig(), func(p *Proc) {
			var data []Word
			if p.Rank() == 0 {
				data = []Word{1}
			}
			p.OneToManyMulticast([]int{0}, 0, data)
		})
		want := math.Log2(float64(n))
		if st.ParallelTime != want {
			t.Errorf("n=%d: makespan %v, want %v", n, st.ParallelTime, want)
		}
	}
}

func TestReductionSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8, 9} {
		g := grid.New(n)
		run(t, g, DefaultConfig(), func(p *Proc) {
			data := []Word{Word(p.Rank()), 1}
			got := p.Reduction([]int{0}, 0, data, SumOp)
			if p.Rank() == 0 {
				wantSum := Word(n * (n - 1) / 2)
				if got == nil || got[0] != wantSum || got[1] != Word(n) {
					t.Errorf("n=%d root got %v, want [%v %v]", n, got, wantSum, n)
				}
			} else if got != nil {
				t.Errorf("n=%d non-root %d got %v", n, p.Rank(), got)
			}
		})
	}
}

func TestReductionNonzeroRoot(t *testing.T) {
	g := grid.New(5)
	run(t, g, DefaultConfig(), func(p *Proc) {
		got := p.Reduction([]int{0}, 3, []Word{1}, SumOp)
		if p.Rank() == 3 {
			if got == nil || got[0] != 5 {
				t.Errorf("root got %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestReductionMax(t *testing.T) {
	g := grid.New(4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		got := p.Reduction([]int{0}, 0, []Word{Word(10 - p.Rank())}, MaxOp)
		if p.Rank() == 0 && got[0] != 10 {
			t.Errorf("got %v", got)
		}
	})
}

func TestAllReduce(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8} {
		g := grid.New(n)
		run(t, g, DefaultConfig(), func(p *Proc) {
			got := p.AllReduce([]int{0}, []Word{Word(p.Rank() + 1)}, SumOp)
			want := Word(n * (n + 1) / 2)
			if got == nil || got[0] != want {
				t.Errorf("n=%d proc %d got %v want %v", n, p.Rank(), got, want)
			}
		})
	}
}

func TestReductionOverGridDimension(t *testing.T) {
	g := grid.New(2, 4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		// Reduce along dim 1: each row reduces to its column-0 processor.
		root := p.PeersOver(1)[0]
		got := p.Reduction([]int{1}, root, []Word{1}, SumOp)
		if p.Rank() == root {
			if got[0] != 4 {
				t.Errorf("row root %d got %v", p.Rank(), got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestScatterGather(t *testing.T) {
	g := grid.New(4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		var chunks [][]Word
		if p.Rank() == 1 {
			chunks = [][]Word{{0}, {10}, {20}, {30}}
		}
		mine := p.Scatter([]int{0}, 1, chunks)
		if mine[0] != Word(10*p.Rank()) {
			t.Errorf("proc %d scattered %v", p.Rank(), mine)
		}
		mine[0]++ // local update
		all := p.Gather([]int{0}, 2, mine)
		if p.Rank() == 2 {
			for i, c := range all {
				if c[0] != Word(10*i+1) {
					t.Errorf("gathered[%d] = %v", i, c)
				}
			}
		} else if all != nil {
			t.Errorf("non-root gather got %v", all)
		}
	})
}

func TestManyToManyMulticast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		g := grid.New(n)
		st := run(t, g, DefaultConfig(), func(p *Proc) {
			all := p.ManyToManyMulticast([]int{0}, []Word{Word(p.Rank() * 100)})
			if len(all) != n {
				t.Errorf("n=%d: got %d slots", n, len(all))
				return
			}
			for i, c := range all {
				if len(c) != 1 || c[0] != Word(i*100) {
					t.Errorf("n=%d proc %d slot %d = %v", n, p.Rank(), i, c)
				}
			}
		})
		// Ring all-gather: n*(n-1) messages total.
		if st.Messages != int64(n*(n-1)) {
			t.Errorf("n=%d messages = %d, want %d", n, st.Messages, n*(n-1))
		}
	}
}

func TestAffineTransform(t *testing.T) {
	g := grid.New(4)
	perm := []int{1, 2, 3, 0} // rotate by one
	run(t, g, DefaultConfig(), func(p *Proc) {
		got := p.AffineTransform([]int{0}, perm, []Word{Word(p.Rank())})
		want := Word((p.Rank() + 3) % 4)
		if got[0] != want {
			t.Errorf("proc %d got %v want %v", p.Rank(), got[0], want)
		}
	})
}

func TestAffineTransformIdentity(t *testing.T) {
	g := grid.New(3)
	st := run(t, g, DefaultConfig(), func(p *Proc) {
		got := p.AffineTransform([]int{0}, []int{0, 1, 2}, []Word{Word(p.Rank())})
		if got[0] != Word(p.Rank()) {
			t.Errorf("identity moved data")
		}
	})
	if st.Messages != 0 {
		t.Errorf("identity permutation sent %d messages", st.Messages)
	}
}

func TestAffineTransformValidation(t *testing.T) {
	g := grid.New(3)
	if _, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) {
		p.AffineTransform([]int{0}, []int{0, 0, 1}, nil)
	}); err == nil {
		t.Fatal("non-bijective perm should error")
	}
}

func TestCollectiveOn2DGridSubsets(t *testing.T) {
	// Multicast along rows of a 2x3 grid: roots are column 0 of each row.
	g := grid.New(2, 3)
	run(t, g, DefaultConfig(), func(p *Proc) {
		root := p.PeersOver(1)[0]
		var data []Word
		if p.Rank() == root {
			data = []Word{Word(p.Coord(0))}
		}
		got := p.OneToManyMulticast([]int{1}, root, data)
		if got[0] != Word(p.Coord(0)) {
			t.Errorf("proc %d got %v", p.Rank(), got)
		}
	})
}

func TestStatsPerProc(t *testing.T) {
	g := grid.New(2)
	st := run(t, g, DefaultConfig(), func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(7)
			p.Send(1, []Word{1, 2, 3})
		} else {
			p.Recv(0)
		}
	})
	if st.PerProc[0].Flops != 7 || st.PerProc[0].Messages != 1 || st.PerProc[0].Words != 3 {
		t.Errorf("proc0 stats %+v", st.PerProc[0])
	}
	if st.PerProc[1].Flops != 0 || st.PerProc[1].Messages != 0 {
		t.Errorf("proc1 stats %+v", st.PerProc[1])
	}
	if st.MaxFlops() != 7 {
		t.Errorf("MaxFlops = %d", st.MaxFlops())
	}
}

// Property: AllReduce(sum) equals the sequential sum for random vectors,
// on random ring sizes.
func TestAllReduceQuick(t *testing.T) {
	f := func(vals []float64, nn uint8) bool {
		n := int(nn)%6 + 1
		if len(vals) == 0 {
			vals = []float64{1}
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
		}
		m := len(vals)
		g := grid.New(n)
		want := make([]Word, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				want[j] += vals[j] * Word(i+1)
			}
		}
		ok := true
		st, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) {
			mine := make([]Word, m)
			for j := range mine {
				mine[j] = vals[j] * Word(p.Rank()+1)
			}
			got := p.AllReduce([]int{0}, mine, SumOp)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
					ok = false
				}
			}
		})
		_ = st
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestSyncCollectiveClockSemantics: in the default (paper) model every
// participant's clock advances to max(entry) + Table-1 cost.
func TestSyncCollectiveClockSemantics(t *testing.T) {
	g := grid.New(4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		p.Compute(p.Rank() * 10) // staggered entries: max = 30
		var d []Word
		if p.Rank() == 1 {
			d = make([]Word, 8)
		}
		p.OneToManyMulticast([]int{0}, 1, d)
		// cost = 8 words * log2(4) = 16; everyone lands at 30 + 16.
		if p.Clock() != 46 {
			t.Errorf("proc %d clock = %v, want 46", p.Rank(), p.Clock())
		}
	})
}

func TestSyncReductionClock(t *testing.T) {
	g := grid.New(8)
	run(t, g, DefaultConfig(), func(p *Proc) {
		p.Reduction([]int{0}, 0, make([]Word, 4), SumOp)
		// 4 words * log2(8) = 12.
		if p.Clock() != 12 {
			t.Errorf("proc %d clock = %v, want 12", p.Rank(), p.Clock())
		}
	})
}

func TestSyncManyToManyClock(t *testing.T) {
	g := grid.New(4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		p.ManyToManyMulticast([]int{0}, make([]Word, 3))
		// 3 words * 4 peers = 12.
		if p.Clock() != 12 {
			t.Errorf("proc %d clock = %v, want 12", p.Rank(), p.Clock())
		}
	})
}

func TestSyncScatterGatherClock(t *testing.T) {
	g := grid.New(4)
	run(t, g, DefaultConfig(), func(p *Proc) {
		var chunks [][]Word
		if p.Rank() == 0 {
			chunks = [][]Word{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
		}
		p.Scatter([]int{0}, 0, chunks)
		// 2 words * 4 peers = 8.
		if p.Clock() != 8 {
			t.Errorf("proc %d clock after scatter = %v, want 8", p.Rank(), p.Clock())
		}
		p.Gather([]int{0}, 2, []Word{1, 2, 3})
		// + 3 words * 4 = 12 -> 20.
		if p.Clock() != 20 {
			t.Errorf("proc %d clock after gather = %v, want 20", p.Rank(), p.Clock())
		}
	})
}

// TestAsyncCollectivesStillCorrect: results identical in both execution
// models; only clocks differ.
func TestAsyncVsSyncSameResults(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), AsyncConfig()} {
		g := grid.New(5)
		run(t, g, cfg, func(p *Proc) {
			got := p.AllReduce([]int{0}, []Word{Word(p.Rank() + 1)}, SumOp)
			if got[0] != 15 {
				t.Errorf("sync=%v: allreduce = %v", cfg.SyncCollectives, got[0])
			}
		})
	}
}

// TestAffineTransformSyncFixedPoint: a non-identity permutation with a
// fixed point must not deadlock in sync mode (every peer still
// participates in the clock synchronization).
func TestAffineTransformSyncFixedPoint(t *testing.T) {
	g := grid.New(3)
	run(t, g, DefaultConfig(), func(p *Proc) {
		perm := []int{0, 2, 1} // 0 fixed, 1<->2
		got := p.AffineTransform([]int{0}, perm, []Word{Word(p.Rank())})
		want := map[int]Word{0: 0, 1: 2, 2: 1}[p.Rank()]
		if got[0] != want {
			t.Errorf("proc %d got %v want %v", p.Rank(), got[0], want)
		}
	})
}

// TestCollectivesOn3DGrid: the Section 2 q-D grids work beyond 2-D —
// collectives over one or two dimensions of a 2x2x2 grid.
func TestCollectivesOn3DGrid(t *testing.T) {
	g := grid.New(2, 2, 2)
	run(t, g, DefaultConfig(), func(p *Proc) {
		// Reduce over dim 2 (pairs).
		root := p.PeersOver(2)[0]
		got := p.Reduction([]int{2}, root, []Word{1}, SumOp)
		if p.Rank() == root && got[0] != 2 {
			t.Errorf("dim-2 reduction = %v", got)
		}
		// All-gather over dims {0,1}: 4 peers.
		all := p.ManyToManyMulticast([]int{0, 1}, []Word{Word(p.Rank())})
		if len(all) != 4 {
			t.Errorf("peers over {0,1} = %d", len(all))
		}
		// Shift along dim 1.
		v := p.Shift(1, 1, []Word{Word(p.Coord(1))})
		if v[0] != Word((p.Coord(1)+1)%2) {
			t.Errorf("3-D shift wrong: %v", v[0])
		}
	})
}
