// The discrete-event runtime: the same simulated machine as Machine,
// executed by a sequential event scheduler instead of live goroutine
// blocking.
//
// The goroutine runtime (machine.go) allocates a P x P channel matrix
// and lets the Go scheduler interleave P concurrently-blocking
// processors — faithful, but at N=4096 that is 16.7M channels before
// the first message moves, and every simulated message costs a real
// context switch. The batched schedules of the exec backend are
// value-independent per-pair epoch streams, which is exactly the form a
// discrete-event simulator consumes: EventMachine keeps the processors
// as cooperatively-scheduled coroutines (one runnable at a time), a
// priority queue ordered by (simulated clock, rank) decides who runs
// next, and per-pair message queues exist only for pairs that actually
// exchange traffic.
//
// Equivalence to the goroutine runtime is structural, not accidental:
// a processor's values, clock and counters depend only on its own
// program order and on per-pair FIFO message order — both preserved
// here — and every clock advance goes through the same shared pricing
// (Config.SendTiming, Tf compute costs). The scheduler's priority
// order affects only wall-clock interleaving, never results, so
// Result.Stats and final values are bit-identical across engines; the
// goroutine runtime stays as the semantics oracle the same way
// RunExact backs the batched executor.
package machine

import (
	"container/heap"
	"fmt"

	"dmcc/internal/grid"
)

// EventMachine is a simulated q-D grid of processors driven by a
// discrete-event scheduler. Unlike Machine it allocates no per-pair
// channels up front: message queues appear on first use and grow
// unboundedly, so Send never blocks (ChanCap is ignored — the batched
// schedules this runtime executes are deadlock-free at any capacity,
// and simulated results are capacity-independent).
type EventMachine struct {
	grid *grid.Grid
	cfg  Config
	// queues holds the live per-pair FIFO queues, keyed by
	// src*P + dst. Sparse: nearest-neighbour kernels at N=4096 touch
	// O(N) pairs, not O(N^2).
	queues map[int64]*pairQueue
	ready  procHeap
	// direct is the fast path for the dominant scheduling pattern —
	// exactly one processor runnable (ping-pong pipelines, serial
	// chains): the sole runnable processor is held here instead of the
	// heap and resumed without a push/pop round trip. The invariant is
	// direct != nil => ready is empty; the moment a second processor
	// becomes runnable, direct migrates into the heap and ordinary
	// (clock, rank) ordering resumes.
	direct         *EventProc
	directHandoffs int64
	// yield is the coroutine handoff: the running processor signals the
	// scheduler here when it parks, finishes, or unwinds.
	yield chan yieldSignal
	// abortFlag mirrors Machine.dead: once set, parked processors are
	// resumed only to unwind with deadErr.
	abortFlag  bool
	deadlocked bool
}

// pairQueue is one ordered pair's FIFO message queue, with a head
// cursor so Pop is O(1) without reslicing the backing array away.
type pairQueue struct {
	buf  []pmsg
	head int
	// waiter is the processor parked in Recv on this queue, if any.
	waiter *EventProc
}

type pmsg struct {
	data    []Word
	arrival float64
}

func (q *pairQueue) empty() bool { return q.head == len(q.buf) }

func (q *pairQueue) push(m pmsg) { q.buf = append(q.buf, m) }

func (q *pairQueue) pop() pmsg {
	m := q.buf[q.head]
	q.buf[q.head] = pmsg{} // drop the payload reference
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

type yieldSignal struct {
	proc *EventProc
	done bool
}

// procHeap is the scheduler's priority queue of runnable processors,
// ordered by (resume clock, rank). The order is a fidelity choice —
// events fire in simulated-time order — not a correctness requirement;
// see the package comment.
type procHeap []*EventProc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].rank < h[j].rank
}
func (h procHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x any)        { *h = append(*h, x.(*EventProc)) }
func (h *procHeap) Pop() any          { old := *h; n := len(old); p := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return p }
func (m *EventMachine) wake(p *EventProc, key float64) {
	p.key = key
	if m.direct == nil && m.ready.Len() == 0 {
		m.direct = p
		return
	}
	if d := m.direct; d != nil {
		m.direct = nil
		heap.Push(&m.ready, d)
	}
	heap.Push(&m.ready, p)
}

// wakeWaiters deregisters and resumes every processor parked in Recv.
// Used to unwind after an abort or a detected deadlock: the woken
// processors observe abortFlag and panic with deadErr.
func (m *EventMachine) wakeWaiters() {
	for _, q := range m.queues {
		if w := q.waiter; w != nil {
			q.waiter = nil
			w.parked = false
			m.wake(w, w.clock)
		}
	}
}

// NewEvent creates a discrete-event machine over the given processor
// grid. It returns an error for invalid configurations (the same
// Config.Validate as New; ChanCap, though ignored here, is still
// checked so a config rejected by one runtime is rejected by both).
func NewEvent(g *grid.Grid, cfg Config) (*EventMachine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &EventMachine{
		grid:   g,
		cfg:    cfg,
		queues: make(map[int64]*pairQueue),
		yield:  make(chan yieldSignal),
	}, nil
}

// Grid returns the processor grid of the machine.
func (m *EventMachine) Grid() *grid.Grid { return m.grid }

// Config returns the machine configuration.
func (m *EventMachine) Config() Config { return m.cfg }

func (m *EventMachine) queue(src, dst int) *pairQueue {
	key := int64(src)*int64(m.grid.Size()) + int64(dst)
	q := m.queues[key]
	if q == nil {
		q = &pairQueue{}
		m.queues[key] = q
	}
	return q
}

// EventProc is the per-processor execution context of the event
// runtime. It implements Port, so the exec backend's SPMD bodies run
// on it unmodified. A EventProc must only be used from the body
// function it was handed to.
type EventProc struct {
	rank  int
	m     *EventMachine
	clock float64
	// key is the heap priority while runnable (the simulated time at
	// which the processor resumes).
	key float64
	// resume is the coroutine handoff: the scheduler signals it to let
	// this processor run.
	resume chan struct{}
	parked bool
	// counters — identical to Proc's.
	flops       int64
	messages    int64
	words       int64
	maxMsgWords int64
	pairs       PairTally
}

// Rank returns the linear rank of the processor.
func (p *EventProc) Rank() int { return p.rank }

// Coord returns the processor's coordinate in grid dimension d.
func (p *EventProc) Coord(d int) int { return p.m.grid.Coord(p.rank, d) }

// Grid returns the machine's processor grid.
func (p *EventProc) Grid() *grid.Grid { return p.m.grid }

// NumProcs returns the total number of processors.
func (p *EventProc) NumProcs() int { return p.m.grid.Size() }

// Clock returns the processor's current simulated time.
func (p *EventProc) Clock() float64 { return p.clock }

// noteSend records one counted outbound message, mirroring Proc.noteSend.
func (p *EventProc) noteSend(dst, words int) {
	p.messages++
	p.words += int64(words)
	if int64(words) > p.maxMsgWords {
		p.maxMsgWords = int64(words)
	}
	p.pairs.Note(dst, words)
}

// Compute advances the simulated clock by flops * Tf and counts the flops.
func (p *EventProc) Compute(flops int) {
	if flops < 0 {
		panic(fmt.Sprintf("machine: negative flop count %d on processor %d", flops, p.rank))
	}
	p.flops += int64(flops)
	before := p.clock
	p.clock += float64(flops) * p.m.cfg.Tf
	if tr := p.m.cfg.Tracer; tr != nil && p.clock > before {
		tr.Record(Event{Proc: p.rank, Kind: EvCompute, Start: before, End: p.clock, Peer: -1})
	}
}

// Send transmits a copy of data to the processor with the given rank.
// It never blocks: the pair queue is unbounded, and if the destination
// is parked waiting on this pair it becomes runnable at the arrival
// time. Clock pricing is the shared Config.SendTiming, identical to
// Proc.Send.
func (p *EventProc) Send(dst int, data []Word) {
	if dst < 0 || dst >= p.m.grid.Size() {
		panic(fmt.Sprintf("machine: Send to invalid rank %d", dst))
	}
	buf := append([]Word(nil), data...)
	var arrival float64
	if dst == p.rank {
		arrival = p.clock
	} else {
		before := p.clock
		p.clock, arrival = p.m.cfg.SendTiming(p.clock, len(data))
		p.noteSend(dst, len(data))
		if tr := p.m.cfg.Tracer; tr != nil && arrival > before {
			tr.Record(Event{Proc: p.rank, Kind: EvSend, Start: before, End: arrival, Peer: dst, Words: len(data)})
		}
	}
	q := p.m.queue(p.rank, dst)
	q.push(pmsg{data: buf, arrival: arrival})
	if w := q.waiter; w != nil {
		q.waiter = nil
		w.parked = false
		key := w.clock
		if arrival > key {
			key = arrival
		}
		p.m.wake(w, key)
	}
}

// Recv receives the next message from the processor with rank src. If
// the pair queue is empty the processor parks and the scheduler runs
// someone else; it resumes when a matching message is enqueued. The
// receiver's clock advances to at least the arrival time, exactly as
// in Proc.Recv.
func (p *EventProc) Recv(src int) []Word {
	if src < 0 || src >= p.m.grid.Size() {
		panic(fmt.Sprintf("machine: Recv from invalid rank %d", src))
	}
	q := p.m.queue(src, p.rank)
	for q.empty() {
		if p.m.abortFlag {
			panic(deadErr)
		}
		q.waiter = p
		p.park()
	}
	msg := q.pop()
	if msg.arrival > p.clock {
		if tr := p.m.cfg.Tracer; tr != nil {
			tr.Record(Event{Proc: p.rank, Kind: EvWait, Start: p.clock, End: msg.arrival, Peer: src})
		}
		p.clock = msg.arrival
	}
	return msg.data
}

// park hands control back to the scheduler and blocks until resumed.
func (p *EventProc) park() {
	p.parked = true
	p.m.yield <- yieldSignal{proc: p}
	<-p.resume
	if p.m.abortFlag {
		panic(deadErr)
	}
}

// SendValue sends a single word.
func (p *EventProc) SendValue(dst int, v Word) { p.Send(dst, []Word{v}) }

// RecvValue receives a single word, panicking if the message length is
// not 1 (a protocol error in the SPMD program).
func (p *EventProc) RecvValue(src int) Word {
	d := p.Recv(src)
	if len(d) != 1 {
		panic(fmt.Sprintf("machine: RecvValue got message of %d words", len(d)))
	}
	return d[0]
}

// Note records a custom trace event spanning [start, end] on this
// processor if a tracer is attached.
func (p *EventProc) Note(kind EventKind, start, end float64, peer, words int) {
	if tr := p.m.cfg.Tracer; tr != nil && end > start {
		tr.Record(Event{Proc: p.rank, Kind: kind, Start: start, End: end, Peer: peer, Words: words})
	}
}

// resumeOne hands the coroutine to p and blocks until it yields,
// reporting whether it finished.
func (m *EventMachine) resumeOne(p *EventProc) (done bool) {
	p.resume <- struct{}{}
	sig := <-m.yield
	if sig.done && m.abortFlag {
		// Unwind parked processors so their goroutines exit; any
		// still-runnable processor keeps running and fails when it
		// next needs a message, mirroring the dead-channel abort.
		m.wakeWaiters()
	}
	return sig.done
}

// DirectHandoffs reports how many scheduler steps took the
// single-runnable fast path instead of the heap. Meaningful after Run;
// purely observability.
func (m *EventMachine) DirectHandoffs() int64 { return m.directHandoffs }

// Run executes the SPMD body on all processors under the event
// scheduler and returns aggregate statistics, with the same error
// discipline as Machine.Run: the lowest-ranked root-cause error wins,
// processors unwound by a peer's failure are filtered. A machine must
// not be reused after Run returns.
//
// Processors are goroutines only as a coroutine mechanism — exactly
// one is runnable at any moment, chosen from the ready heap by
// smallest (resume time, rank). A processor runs until it parks in
// Recv on an empty queue or finishes; there is no preemption and no
// concurrent execution, which is what makes the runtime's memory
// profile flat and its wall-clock free of scheduling contention.
func (m *EventMachine) Run(body func(p *EventProc)) (Stats, error) {
	n := m.grid.Size()
	procs := make([]*EventProc, n)
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		p := &EventProc{rank: r, m: m, resume: make(chan struct{})}
		procs[r] = p
		go func() {
			<-p.resume
			defer func() {
				done := yieldSignal{proc: p, done: true}
				if rec := recover(); rec != nil {
					if !secondaryPanic(rec) {
						errs[p.rank] = fmt.Errorf("machine: processor %d panicked: %v", p.rank, rec)
					}
					m.abortFlag = true
				}
				m.yield <- done
			}()
			body(p)
		}()
		m.wake(p, 0)
	}
	live := n
	var batch []*EventProc
	for live > 0 {
		if m.ready.Len() == 0 && m.direct == nil {
			// Every live processor is parked in Recv and no message can
			// ever arrive: the schedule deadlocked. The goroutine runtime
			// would hang here; the event scheduler can see the whole
			// machine state, so it reports it. Resume everyone to unwind
			// (a parked processor is always registered as some queue's
			// waiter; clearing the registration here keeps the abort scan
			// below from waking it a second time after it has exited).
			m.abortFlag = true
			m.deadlocked = true
			m.wakeWaiters()
		}
		// One runnable processor: hand it the coroutine directly, no
		// heap traffic at all. This is every strictly-serial stretch of
		// a schedule — pipelined wavefronts, ping-pong exchanges — where
		// the heap would otherwise be a push immediately followed by a
		// pop of the same element.
		if p := m.direct; p != nil {
			m.direct = nil
			m.directHandoffs++
			if m.resumeOne(p) {
				live--
			}
			continue
		}
		// Drain every entry sharing the front's resume clock in one
		// batch — the heap's rank tie-break hands them out in ascending
		// rank — instead of one pop-resume round trip per message
		// arrival. Synchronized schedules (epoch flushes, collective
		// rounds) wake whole waves of processors at the same simulated
		// time, so batching removes most of the per-arrival heap churn.
		// A processor woken mid-batch at the same clock simply lands in
		// the next batch; the scheduler order is a fidelity choice, not
		// a correctness requirement (see the package comment).
		batch = batch[:0]
		front := heap.Pop(&m.ready).(*EventProc)
		batch = append(batch, front)
		for m.ready.Len() > 0 && m.ready[0].key == front.key {
			batch = append(batch, heap.Pop(&m.ready).(*EventProc))
		}
		for _, p := range batch {
			if m.resumeOne(p) {
				live--
			}
		}
	}
	var st Stats
	st.PerProc = make([]ProcStats, n)
	for r, p := range procs {
		st.PerProc[r] = ProcStats{Clock: p.clock, Flops: p.flops, Messages: p.messages, Words: p.words, MaxMsgWords: p.maxMsgWords,
			Peers: p.pairs.Snapshot()}
		st.AddProc(st.PerProc[r])
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	if m.deadlocked {
		return st, fmt.Errorf("machine: deadlock: all processors blocked in Recv")
	}
	if m.abortFlag {
		return st, fmt.Errorf("machine: run aborted")
	}
	return st, nil
}
