// The one pricing function of the point-to-point clock model. Both
// runtimes — the goroutine Machine (Proc.Send) and the discrete-event
// EventMachine (EventProc.Send) — and the exec backend's single-threaded
// naive-cost replay all advance clocks through SendTiming, so a message
// costs exactly the same no matter which engine moves it. The Table 1
// collective formulas build on the same Tc (collectives.go); keeping the
// per-message half here means a timing change cannot silently split the
// engines apart.

package machine

// SendTiming prices one counted point-to-point message of the given
// size sent at the sender's local time clock. It returns the sender's
// clock after the send and the arrival time at the receiver:
//
//	blocking (Overlap false): the sender is busy for Alpha + words*Tc
//	  and the message arrives when the sender finishes;
//	sender-overlap (Overlap true): the sender pays only the startup
//	  Alpha and keeps computing while the transfer is in flight, so the
//	  message arrives Alpha + words*Tc after the send began.
//
// Self-sends are free and never go through SendTiming.
func (c *Config) SendTiming(clock float64, words int) (sender, arrival float64) {
	transfer := c.Tc * float64(words)
	if c.Overlap {
		sender = clock + c.Alpha
		arrival = sender + transfer
		return sender, arrival
	}
	sender = clock + c.Alpha + transfer
	return sender, sender
}
