package machine

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dmcc/internal/grid"
)

func mustNewEvent(t testing.TB, g *grid.Grid, cfg Config) *EventMachine {
	t.Helper()
	m, err := NewEvent(g, cfg)
	if err != nil {
		t.Fatalf("NewEvent: %v", err)
	}
	return m
}

// runBothRuntimes executes the same Port body on the goroutine machine
// and the event machine and requires bit-identical Stats. The goroutine
// run gets a generous ChanCap so bodies that front-load sends cannot
// deadlock there (the event runtime's queues are unbounded by design).
func runBothRuntimes(t *testing.T, g *grid.Grid, cfg Config, body func(p Port)) Stats {
	t.Helper()
	gcfg := cfg
	if gcfg.ChanCap == 0 {
		gcfg.ChanCap = 4096
	}
	want, err := mustNew(t, g, gcfg).Run(func(p *Proc) { body(p) })
	if err != nil {
		t.Fatalf("goroutine run: %v", err)
	}
	got, err := mustNewEvent(t, g, cfg).Run(func(p *EventProc) { body(p) })
	if err != nil {
		t.Fatalf("event run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stats differ from goroutine stats:\n got %+v\nwant %+v", got, want)
	}
	return got
}

// TestEventMatchesGoroutineNeighbourExchange: the bread-and-butter
// pattern of every batched schedule — send to both neighbours, then
// receive from both — prices identically on both runtimes, including
// per-pair breakdowns, under blocking and overlapped sends.
func TestEventMatchesGoroutineNeighbourExchange(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		for _, alpha := range []float64{0, 3} {
			cfg := DefaultConfig()
			cfg.Overlap = overlap
			cfg.Alpha = alpha
			g := grid.New(5)
			runBothRuntimes(t, g, cfg, func(p Port) {
				n := p.NumProcs()
				right := (p.Rank() + 1) % n
				left := (p.Rank() + n - 1) % n
				for round := 0; round < 3; round++ {
					p.Compute(p.Rank() + 1)
					p.Send(right, []Word{float64(p.Rank()), float64(round)})
					p.Send(left, []Word{float64(round)})
					got := p.Recv(left)
					if int(got[0]) != left {
						panic("wrong neighbour payload")
					}
					p.Recv(right)
				}
			})
		}
	}
}

// TestEventMatchesGoroutineRandomTraffic: a deterministic pseudo-random
// traffic pattern — each round every processor sends a random-sized
// message to a random set of peers, then drains exactly what it is
// owed. Sends precede receives within a round, so the pattern is
// deadlock-free; the per-round structure is what the exec scheduler
// emits. Stats must match exactly across runtimes.
func TestEventMatchesGoroutineRandomTraffic(t *testing.T) {
	const n, rounds = 7, 5
	// Predraw the traffic matrix so both runtimes see identical work.
	rng := rand.New(rand.NewSource(99))
	sends := make([][][]int, rounds) // sends[r][src] = dst list
	sizes := make([][][]int, rounds)
	for r := 0; r < rounds; r++ {
		sends[r] = make([][]int, n)
		sizes[r] = make([][]int, n)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if dst != src && rng.Intn(3) == 0 {
					sends[r][src] = append(sends[r][src], dst)
					sizes[r][src] = append(sizes[r][src], 1+rng.Intn(9))
				}
			}
		}
	}
	g := grid.New(n)
	st := runBothRuntimes(t, g, DefaultConfig(), func(p Port) {
		me := p.Rank()
		for r := 0; r < rounds; r++ {
			p.Compute(me * r)
			for i, dst := range sends[r][me] {
				buf := make([]Word, sizes[r][me][i])
				for k := range buf {
					buf[k] = float64(me*100 + k)
				}
				p.Send(dst, buf)
			}
			for src := 0; src < n; src++ {
				for i, dst := range sends[r][src] {
					if dst == me {
						got := p.Recv(src)
						if len(got) != sizes[r][src][i] {
							panic("wrong message size")
						}
					}
				}
			}
		}
	})
	if st.Messages == 0 {
		t.Fatal("traffic pattern sent nothing")
	}
}

// TestEventSelfSendIsFree: self-sends cost nothing and are uncounted on
// both runtimes, like Proc.Send.
func TestEventSelfSendIsFree(t *testing.T) {
	g := grid.New(3)
	st := runBothRuntimes(t, g, DefaultConfig(), func(p Port) {
		p.SendValue(p.Rank(), 42)
		if v := p.RecvValue(p.Rank()); v != 42 {
			panic("self-send payload lost")
		}
	})
	if st.Messages != 0 || st.ParallelTime != 0 {
		t.Fatalf("self-sends were counted: %+v", st)
	}
}

// TestEventUnboundedSend: the event runtime never blocks a sender — a
// processor can front-load an arbitrarily deep queue before its peer
// drains any of it, regardless of ChanCap.
func TestEventUnboundedSend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChanCap = 1
	g := grid.New(2)
	st, err := mustNewEvent(t, g, cfg).Run(func(p *EventProc) {
		const burst = 500
		if p.Rank() == 0 {
			for i := 0; i < burst; i++ {
				p.SendValue(1, float64(i))
			}
		} else {
			for i := 0; i < burst; i++ {
				if v := p.RecvValue(0); v != float64(i) {
					panic("FIFO order violated")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 500 {
		t.Fatalf("messages = %d", st.Messages)
	}
}

// TestEventDeadlockDetected: where the goroutine runtime would hang,
// the event scheduler sees every live processor parked with no message
// in flight and reports a deadlock error.
func TestEventDeadlockDetected(t *testing.T) {
	g := grid.New(2)
	_, err := mustNewEvent(t, g, DefaultConfig()).Run(func(p *EventProc) {
		p.Recv(1 - p.Rank()) // both sides receive first: classic deadlock
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// TestEventPanicIsReportedAsError: a processor panic surfaces as the
// root-cause error; peers parked in Recv are unwound and filtered,
// mirroring the goroutine runtime's abort discipline.
func TestEventPanicIsReportedAsError(t *testing.T) {
	g := grid.New(3)
	_, err := mustNewEvent(t, g, DefaultConfig()).Run(func(p *EventProc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		p.Recv(2) // ranks 0 and 1 park forever; the abort must free them
	})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "processor 2") {
		t.Fatalf("root cause masked: got %v", err)
	}
}

// TestEventRankValidation: out-of-range ranks panic into errors exactly
// like the goroutine runtime.
func TestEventRankValidation(t *testing.T) {
	g := grid.New(2)
	if _, err := mustNewEvent(t, g, DefaultConfig()).Run(func(p *EventProc) { p.Send(2, nil) }); err == nil {
		t.Fatal("Send to bad rank should error")
	}
	if _, err := mustNewEvent(t, g, DefaultConfig()).Run(func(p *EventProc) { p.Recv(-1) }); err == nil {
		t.Fatal("Recv from bad rank should error")
	}
	if _, err := mustNewEvent(t, g, DefaultConfig()).Run(func(p *EventProc) { p.Compute(-1) }); err == nil {
		t.Fatal("negative flops should error")
	}
}

// TestEventTracer: trace events fire with the same kinds and windows as
// the goroutine runtime's (compute, send, wait).
func TestEventTracer(t *testing.T) {
	collect := func(run func(cfg Config) error) []Event {
		r := &lockedTracer{}
		cfg := DefaultConfig()
		cfg.Tracer = r
		if err := run(cfg); err != nil {
			t.Fatal(err)
		}
		return r.events
	}
	g := grid.New(2)
	body := func(p Port) {
		if p.Rank() == 0 {
			p.Compute(5)
			p.Send(1, []Word{1, 2, 3})
		} else {
			p.Recv(0)
		}
	}
	got := collect(func(cfg Config) error {
		_, err := mustNewEvent(t, g, cfg).Run(func(p *EventProc) { body(p) })
		return err
	})
	want := collect(func(cfg Config) error {
		_, err := mustNew(t, g, cfg).Run(func(p *Proc) { body(p) })
		return err
	})
	// Event order across processors may differ between runtimes; compare
	// per-processor streams.
	perProc := func(evs []Event) map[int][]Event {
		m := map[int][]Event{}
		for _, e := range evs {
			m[e.Proc] = append(m[e.Proc], e)
		}
		return m
	}
	if !reflect.DeepEqual(perProc(got), perProc(want)) {
		t.Fatalf("per-processor trace streams differ:\n got %+v\nwant %+v", got, want)
	}
}

// lockedTracer collects events under a mutex: the goroutine runtime
// invokes the tracer from concurrently-running processors.
type lockedTracer struct {
	mu     sync.Mutex
	events []Event
}

func (r *lockedTracer) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestConfigValidate: the ChanCap satellite — negative capacities are a
// configuration error from both constructors, zero means the default,
// and positive values are taken as-is.
func TestConfigValidate(t *testing.T) {
	g := grid.New(2)
	bad := DefaultConfig()
	bad.ChanCap = -1
	if _, err := New(g, bad); err == nil || !strings.Contains(err.Error(), "ChanCap") {
		t.Fatalf("New with negative ChanCap: err = %v", err)
	}
	if _, err := NewEvent(g, bad); err == nil || !strings.Contains(err.Error(), "ChanCap") {
		t.Fatalf("NewEvent with negative ChanCap: err = %v", err)
	}
	zero := DefaultConfig()
	zero.ChanCap = 0
	m, err := New(g, zero)
	if err != nil {
		t.Fatalf("New with zero ChanCap: %v", err)
	}
	if got := m.Config().ChanCap; got != DefaultChanCap {
		t.Fatalf("zero ChanCap resolved to %d, want default %d", got, DefaultChanCap)
	}
	if err := zero.Validate(); err != nil {
		t.Fatalf("Validate(0) = %v", err)
	}
}

// TestPairTally: sparse per-pair accounting — snapshots are sorted,
// nil when empty, and AddProc aggregates the hot-pair maxima.
func TestPairTally(t *testing.T) {
	var tl PairTally
	if tl.Snapshot() != nil {
		t.Fatal("empty tally should snapshot nil")
	}
	tl.Note(7, 3)
	tl.Note(2, 5)
	tl.Note(7, 1)
	got := tl.Snapshot()
	want := []PairStat{{Peer: 2, Messages: 1, Words: 5}, {Peer: 7, Messages: 2, Words: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
	var st Stats
	st.AddProc(ProcStats{Clock: 9, Flops: 4, Messages: 3, Words: 9, MaxMsgWords: 5, Peers: got})
	if st.MaxPairMessages != 2 || st.MaxPairWords != 5 || st.ParallelTime != 9 {
		t.Fatalf("AddProc aggregate wrong: %+v", st)
	}
}

// TestEventDirectHandoff: a strictly-serial ping-pong — at any moment
// exactly one processor is runnable — takes the scheduler's direct
// handoff path (no heap traffic) while producing stats bit-identical
// to the goroutine runtime.
func TestEventDirectHandoff(t *testing.T) {
	const rounds = 20
	body := func(p Port) {
		peer := 1 - p.Rank()
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				p.Send(peer, []Word{float64(r)})
				p.Recv(peer)
			} else {
				got := p.Recv(peer)
				if int(got[0]) != r {
					panic("wrong ping payload")
				}
				p.Send(peer, []Word{float64(-r)})
			}
		}
	}
	g := grid.New(2)
	runBothRuntimes(t, g, DefaultConfig(), body)

	m := mustNewEvent(t, g, DefaultConfig())
	if _, err := m.Run(func(p *EventProc) { body(p) }); err != nil {
		t.Fatalf("event run: %v", err)
	}
	// Every mid-run resume after the initial 2-proc wave is a lone
	// runnable processor: the fast path must carry the bulk of the
	// schedule, not a stray step or two.
	if h := m.DirectHandoffs(); h < rounds {
		t.Fatalf("DirectHandoffs = %d, want >= %d for a serial ping-pong", h, rounds)
	}
}

// TestEventDirectHandoffDeadlock: the deadlock detector still fires
// when the machine drains through the direct slot.
func TestEventDirectHandoffDeadlock(t *testing.T) {
	m := mustNewEvent(t, grid.New(2), DefaultConfig())
	_, err := m.Run(func(p *EventProc) {
		if p.Rank() == 0 {
			p.Send(1, []Word{1})
		}
		p.Recv(1 - p.Rank()) // rank 1 waits forever: rank 0 never sends again
		if p.Rank() == 0 {
			p.Recv(1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}
