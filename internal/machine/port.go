// Port is the processor-context surface the exec backend runs on, so
// one executor body drives both runtimes.
package machine

import "dmcc/internal/grid"

// Port is the per-processor interface a batched SPMD body needs:
// identity, the simulated clock, priced computation, and counted
// point-to-point exchange. Both *Proc (goroutine runtime) and
// *EventProc (discrete-event runtime) implement it.
//
// The collective primitives and Barrier are deliberately absent: the
// exec backend lowers every exchange to point-to-point epochs
// (schedule.go), and keeping Port minimal is what lets the event
// runtime skip implementing eight Table 1 collectives it would never
// see.
type Port interface {
	// Rank returns the linear rank of the processor.
	Rank() int
	// NumProcs returns the total number of processors.
	NumProcs() int
	// Grid returns the machine's processor grid.
	Grid() *grid.Grid
	// Clock returns the processor's current simulated time.
	Clock() float64
	// Compute advances the clock by flops*Tf and counts the flops.
	Compute(flops int)
	// Send transmits a copy of data to dst (counted, clock-priced).
	Send(dst int, data []Word)
	// Recv receives the next message from src, advancing the clock to
	// at least the arrival time.
	Recv(src int) []Word
	// SendValue sends a single word.
	SendValue(dst int, v Word)
	// RecvValue receives a single word.
	RecvValue(src int) Word
	// Note records a custom trace event if a tracer is attached.
	Note(kind EventKind, start, end float64, peer, words int)
}

var (
	_ Port = (*Proc)(nil)
	_ Port = (*EventProc)(nil)
)
