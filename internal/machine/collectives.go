// The eight communication primitives of Section 2.2, with the asymptotic
// costs of Table 1:
//
//	Transfer(m)                  O(m)            direct send
//	Shift(m)                     O(m)            ring neighbour exchange
//	OneToManyMulticast(m, seq)   O(m log num)    binomial tree
//	Reduction(m, seq)            O(m log num)    binomial tree, folded
//	AffineTransform(m, seq)      O(m log num)    permutation routing
//	Scatter(m, seq)              O(m num)        root sends distinct chunks
//	Gather(m, seq)               O(m num)        root receives all chunks
//	ManyToManyMulticast(m, seq)  O(m num)        ring all-gather
//
// Every collective operates over the set of processors that agree with
// the caller on all grid coordinates *outside* the listed dimensions
// ("the processors lying on the specified grid dimension(s)"); all of
// them must call it with consistent arguments, in the same order, as in
// any SPMD collective library.
//
// Two execution models (Config.SyncCollectives):
//
//   - synchronous (default, the paper's model): all participants are
//     engaged for the full Table 1 duration — every peer's clock advances
//     to max(entry clocks) + cost. Transfer and Shift remain asynchronous
//     point-to-point operations, which is exactly why Sections 5-6 can
//     beat multicasts by pipelining with Shifts.
//
//   - asynchronous: collectives are plain binomial-tree message
//     exchanges over the same Send/Recv used by user code; a leaf can
//     exit before the rest finish. The ablation benchmarks use this to
//     show how much of the pipelining advantage is due to collective
//     synchronization.
package machine

import (
	"fmt"
	"sort"
)

// PeersOver returns, in ascending rank order, the ranks of all processors
// that agree with p on every grid coordinate not in dims. The caller's own
// rank is included. It panics on an empty or out-of-range dims list.
func (p *Proc) PeersOver(dims ...int) []int {
	g := p.m.grid
	if len(dims) == 0 {
		panic("machine: collective over empty dimension list")
	}
	in := make(map[int]bool, len(dims))
	for _, d := range dims {
		if d < 0 || d >= g.Q() {
			panic(fmt.Sprintf("machine: dimension %d out of range for %s", d, g))
		}
		in[d] = true
	}
	var peers []int
	for r := 0; r < g.Size(); r++ {
		ok := true
		for d := 0; d < g.Q(); d++ {
			if !in[d] && g.Coord(r, d) != p.Coord(d) {
				ok = false
				break
			}
		}
		if ok {
			peers = append(peers, r)
		}
	}
	sort.Ints(peers)
	return peers
}

func indexOf(peers []int, rank int) int {
	for i, r := range peers {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("machine: rank %d not among collective peers %v", rank, peers))
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for p := 1; p < n; p <<= 1 {
		k++
	}
	return k
}

// syncStart synchronizes the peer group on entry: every peer's clock is
// raised to the maximum entry clock, which is returned. Implemented as a
// zero-cost max-reduce plus broadcast over the links (uncounted: a real
// collective synchronizes through its own payload messages).
func (p *Proc) syncStart(peers []int) float64 {
	n := len(peers)
	if n == 1 {
		return p.clock
	}
	rel := indexOf(peers, p.rank)
	clk := p.clock
	top := 1
	for top < n {
		top <<= 1
	}
	for k := top >> 1; k >= 1; k >>= 1 {
		if rel < k {
			if rel+k < n {
				v := p.rawRecv(peers[rel+k])
				if v[0] > clk {
					clk = v[0]
				}
			}
		} else if rel < 2*k {
			p.rawSend(peers[rel-k], []Word{clk}, false)
			break
		}
	}
	// Broadcast the max back down the tree.
	for k := 1; k < n; k <<= 1 {
		if rel < k {
			if rel+k < n {
				p.rawSend(peers[rel+k], []Word{clk}, false)
			}
		} else if rel < 2*k {
			clk = p.rawRecv(peers[rel-k])[0]
		}
	}
	if tr := p.m.cfg.Tracer; tr != nil && clk > p.clock {
		tr.Record(Event{Proc: p.rank, Kind: EvWait, Start: p.clock, End: clk, Peer: -1})
	}
	p.clock = clk
	return clk
}

// finishCollective advances the whole peer group's clock by the Table 1
// cost of the primitive.
func (p *Proc) finishCollective(start, cost float64) {
	p.clock = start + cost
	if tr := p.m.cfg.Tracer; tr != nil && cost > 0 {
		tr.Record(Event{Proc: p.rank, Kind: EvCollective, Start: start, End: p.clock, Peer: -1})
	}
}

// Transfer sends data from the processor with rank src to the processor
// with rank dst. Only those two processors may call it; src returns nil,
// dst returns the received data. A processor that is both src and dst
// gets the data back untouched at zero cost.
func (p *Proc) Transfer(src, dst int, data []Word) []Word {
	if src == dst {
		if p.rank == src {
			return append([]Word(nil), data...)
		}
		panic("machine: Transfer with src == dst called by a third processor")
	}
	switch p.rank {
	case src:
		p.Send(dst, data)
		return nil
	case dst:
		return p.Recv(src)
	default:
		panic(fmt.Sprintf("machine: Transfer(%d->%d) called by uninvolved processor %d", src, dst, p.rank))
	}
}

// Shift performs a circular shift by dist positions along grid dimension
// dim: every processor sends data to the processor dist steps in the +
// direction (negative dist shifts the other way) and returns what it
// receives. dist is taken modulo the extent; a zero net shift returns a
// copy of data untouched. Shift is always an asynchronous neighbour
// exchange — it is the primitive pipelined code is made of.
func (p *Proc) Shift(dim, dist int, data []Word) []Word {
	g := p.m.grid
	n := g.Extent(dim)
	d := ((dist % n) + n) % n
	if d == 0 {
		return append([]Word(nil), data...)
	}
	c := p.Coord(dim)
	peers := p.PeersOver(dim)
	dst := peers[(c+d)%n]
	src := peers[(c-d+n)%n]
	// Buffered channels make send-then-receive deadlock-free on a ring.
	p.Send(dst, data)
	return p.Recv(src)
}

// OneToManyMulticast broadcasts data from root (a rank in the caller's
// peer set over dims) to all processors on the specified grid
// dimension(s): a binomial tree, O(m log num). Every peer returns the
// data.
func (p *Proc) OneToManyMulticast(dims []int, root int, data []Word) []Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	if n == 1 {
		return append([]Word(nil), data...)
	}
	sync := p.m.cfg.SyncCollectives
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	rootPos := indexOf(peers, root)
	rel := (indexOf(peers, p.rank) - rootPos + n) % n
	var buf []Word
	if p.rank == root {
		buf = append([]Word(nil), data...)
	}
	for k := 1; k < n; k <<= 1 {
		if rel < k {
			if rel+k < n {
				dst := peers[(rel+k+rootPos)%n]
				if sync {
					p.rawSend(dst, buf, true)
				} else {
					p.Send(dst, buf)
				}
			}
		} else if rel < 2*k {
			src := peers[(rel-k+rootPos)%n]
			if sync {
				buf = p.rawRecv(src)
			} else {
				buf = p.Recv(src)
			}
		}
	}
	if sync {
		p.finishCollective(start, p.m.cfg.Tc*float64(len(buf))*float64(log2ceil(n)))
	}
	return buf
}

// ReduceOp combines an incoming message into an accumulator, element-wise;
// it must be associative and commutative as the paper requires.
type ReduceOp func(acc, in []Word)

// SumOp adds in to acc element-wise.
func SumOp(acc, in []Word) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// MaxOp keeps the element-wise maximum.
func MaxOp(acc, in []Word) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

// Reduction reduces the per-processor data vectors over all processors on
// the specified grid dimension(s) with a binomial-tree fold; the root
// returns the combined vector, everyone else returns nil. O(m log num).
// In the asynchronous model each combine also costs m flops on the
// combining processor.
func (p *Proc) Reduction(dims []int, root int, data []Word, op ReduceOp) []Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	acc := append([]Word(nil), data...)
	if n == 1 {
		return acc
	}
	sync := p.m.cfg.SyncCollectives
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	rootPos := indexOf(peers, root)
	rel := (indexOf(peers, p.rank) - rootPos + n) % n
	top := 1
	for top < n {
		top <<= 1
	}
	sent := false
	for k := top >> 1; k >= 1 && !sent; k >>= 1 {
		if rel < k {
			if rel+k < n {
				src := peers[(rel+k+rootPos)%n]
				var in []Word
				if sync {
					in = p.rawRecv(src)
				} else {
					in = p.Recv(src)
				}
				op(acc, in)
				if !sync {
					p.Compute(len(acc))
				}
			}
		} else if rel < 2*k {
			dst := peers[(rel-k+rootPos)%n]
			if sync {
				p.rawSend(dst, acc, true)
			} else {
				p.Send(dst, acc)
			}
			sent = true
		}
	}
	if sync {
		p.finishCollective(start, p.m.cfg.Tc*float64(len(acc))*float64(log2ceil(n)))
	}
	if rel == 0 {
		return acc
	}
	return nil
}

// AllReduce performs a Reduction to the lowest-ranked peer followed by a
// OneToManyMulticast of the result, so every peer returns the combined
// vector. Cost: O(2 m log num).
func (p *Proc) AllReduce(dims []int, data []Word, op ReduceOp) []Word {
	peers := p.PeersOver(dims...)
	root := peers[0]
	acc := p.Reduction(dims, root, data, op)
	if p.rank != root {
		acc = nil
	}
	return p.OneToManyMulticast(dims, root, acc)
}

// Scatter sends chunk i of chunks (indexed by peer position over dims)
// from root to peer i; every peer returns its own chunk. Only root's
// chunks argument is consulted. O(m num) with m the chunk size.
func (p *Proc) Scatter(dims []int, root int, chunks [][]Word) []Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	sync := p.m.cfg.SyncCollectives && n > 1
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	var own []Word
	maxLen := 0
	if p.rank == root {
		if len(chunks) != n {
			panic(fmt.Sprintf("machine: Scatter got %d chunks for %d peers", len(chunks), n))
		}
		for _, c := range chunks {
			if len(c) > maxLen {
				maxLen = len(c)
			}
		}
		for i, r := range peers {
			if r == root {
				own = append([]Word(nil), chunks[i]...)
				continue
			}
			// Prefix the chunk with its true size so the cost formula is
			// known at every peer in sync mode.
			payload := append([]Word{Word(maxLen)}, chunks[i]...)
			if sync {
				p.rawSend(r, payload, true)
			} else {
				p.Send(r, payload)
			}
		}
	} else {
		var payload []Word
		if sync {
			payload = p.rawRecv(root)
		} else {
			payload = p.Recv(root)
		}
		maxLen = int(payload[0])
		own = payload[1:]
	}
	if sync {
		p.finishCollective(start, p.m.cfg.Tc*float64(maxLen)*float64(n))
	}
	return own
}

// Gather collects every peer's data at root; root returns the chunks in
// peer order, everyone else returns nil. O(m num).
func (p *Proc) Gather(dims []int, root int, data []Word) [][]Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	sync := p.m.cfg.SyncCollectives && n > 1
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	var out [][]Word
	maxLen := len(data)
	if p.rank == root {
		out = make([][]Word, n)
		for i, r := range peers {
			if r == root {
				out[i] = append([]Word(nil), data...)
				continue
			}
			if sync {
				out[i] = p.rawRecv(r)
			} else {
				out[i] = p.Recv(r)
			}
			if len(out[i]) > maxLen {
				maxLen = len(out[i])
			}
		}
	} else {
		if sync {
			p.rawSend(root, data, true)
		} else {
			p.Send(root, data)
		}
	}
	if sync {
		// All peers advance by the same formula; non-roots use their own
		// chunk size, which matches when chunks are equal-sized (the
		// common case for the paper's kernels).
		p.finishCollective(start, p.m.cfg.Tc*float64(maxLen)*float64(n))
	}
	return out
}

// ManyToManyMulticast replicates every peer's data to all peers over the
// given dimension(s) (an all-gather) with num-1 ring steps: O(m num).
// The result is indexed by peer position.
func (p *Proc) ManyToManyMulticast(dims []int, data []Word) [][]Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	pos := indexOf(peers, p.rank)
	out := make([][]Word, n)
	out[pos] = append([]Word(nil), data...)
	if n == 1 {
		return out
	}
	sync := p.m.cfg.SyncCollectives
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	cur := out[pos]
	maxLen := len(cur)
	for step := 1; step < n; step++ {
		next := peers[(pos+1)%n]
		prev := peers[(pos-1+n)%n]
		if sync {
			p.rawSend(next, cur, true)
			cur = p.rawRecv(prev)
		} else {
			p.Send(next, cur)
			cur = p.Recv(prev)
		}
		out[(pos-step+n)%n] = cur
		if len(cur) > maxLen {
			maxLen = len(cur)
		}
	}
	if sync {
		p.finishCollective(start, p.m.cfg.Tc*float64(maxLen)*float64(n))
	}
	return out
}

// AllToAll performs a personalized exchange over the given dimension(s):
// chunks is indexed by peer position, chunk i travels to peer i, and the
// result (also indexed by peer position) holds what each peer sent to the
// caller. Chunks may be ragged or empty. The exchange runs as num-1
// balanced permutation steps (step s pairs position pos with pos+s and
// pos-s), so it is deadlock-free at any ChanCap like Shift. O(m num)
// with m the largest chunk, like Scatter/Gather.
func (p *Proc) AllToAll(dims []int, chunks [][]Word) [][]Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	if len(chunks) != n {
		panic(fmt.Sprintf("machine: AllToAll got %d chunks for %d peers", len(chunks), n))
	}
	pos := indexOf(peers, p.rank)
	out := make([][]Word, n)
	out[pos] = append([]Word(nil), chunks[pos]...)
	if n == 1 {
		return out
	}
	sync := p.m.cfg.SyncCollectives
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	maxLen := 0
	for _, c := range chunks {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	for s := 1; s < n; s++ {
		dst := (pos + s) % n
		src := (pos - s + n) % n
		if sync {
			p.rawSend(peers[dst], chunks[dst], true)
			out[src] = p.rawRecv(peers[src])
		} else {
			p.Send(peers[dst], chunks[dst])
			out[src] = p.Recv(peers[src])
		}
		if len(out[src]) > maxLen {
			maxLen = len(out[src])
		}
	}
	if sync {
		// All peers advance by the same formula; each uses the largest
		// chunk it sent or received, which matches across the group when
		// chunks are equal-sized (the common case for redistribution).
		p.finishCollective(start, p.m.cfg.Tc*float64(maxLen)*float64(n))
	}
	return out
}

// AffineTransform sends each peer's data to a distinct peer according to
// the permutation perm over peer positions (perm[i] = destination position
// of the data held at position i); every peer returns what it receives.
// perm must be a bijection. Cost on the hypercube is O(m log num) because
// a permutation routes in at most log num dimension-ordered hops; the
// simulation sends directly, preserving the message/word counts.
func (p *Proc) AffineTransform(dims []int, perm []int, data []Word) []Word {
	peers := p.PeersOver(dims...)
	n := len(peers)
	if len(perm) != n {
		panic(fmt.Sprintf("machine: AffineTransform perm has %d entries for %d peers", len(perm), n))
	}
	seen := make([]bool, n)
	identity := true
	for i, d := range perm {
		if d < 0 || d >= n || seen[d] {
			panic("machine: AffineTransform perm is not a bijection")
		}
		seen[d] = true
		if d != i {
			identity = false
		}
	}
	// The identity check is the same at every peer, so returning early
	// here cannot desynchronize the group (a per-peer fixed point could).
	if identity {
		return append([]Word(nil), data...)
	}
	pos := indexOf(peers, p.rank)
	dst := perm[pos]
	sync := p.m.cfg.SyncCollectives
	var start float64
	if sync {
		start = p.syncStart(peers)
	}
	src := -1
	for i, d := range perm {
		if d == pos {
			src = i
			break
		}
	}
	var got []Word
	switch {
	case dst == pos:
		got = append([]Word(nil), data...)
	case sync:
		p.rawSend(peers[dst], data, true)
		got = p.rawRecv(peers[src])
	default:
		p.Send(peers[dst], data)
		got = p.Recv(peers[src])
	}
	if sync {
		p.finishCollective(start, p.m.cfg.Tc*float64(len(got))*float64(log2ceil(n)))
	}
	return got
}
