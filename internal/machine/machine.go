// Package machine provides the simulated tightly-coupled distributed
// memory machine the compiled programs of the paper run on.
//
// The abstract target (Section 2 of Lee & Tsai) is a q-D grid of
// N1 x ... x Nq processors executing an SPMD program and exchanging
// messages. Here every processor is a goroutine; every ordered processor
// pair has a FIFO message channel, which gives the same blocking
// point-to-point semantics as the send/receive primitives in the paper's
// generated code (Figs 6 and 8).
//
// On top of point-to-point Send/Recv, the package implements the eight
// collective communication primitives of Section 2.2 (Transfer, Shift,
// OneToManyMulticast, Reduction, AffineTransform, Scatter, Gather,
// ManyToManyMulticast) with the hypercube algorithms whose costs appear
// in Table 1 (binomial trees for multicast/reduction, direct sends for
// scatter/gather, a ring pass for many-to-many).
//
// Every processor carries a simulated clock. Computation advances the
// local clock by flops*Tf; a message sent at local time t arrives at
// t + Alpha + words*Tc and the receiver's clock advances to at least the
// arrival time. This reproduces the paper's execution-time model and, when
// Overlap is true, models hardware that overlaps communication with
// computation (the sender only pays the startup cost and keeps computing
// while the message is in flight, cf. the end of Section 5).
package machine

import (
	"fmt"
	"sync"

	"dmcc/internal/grid"
)

// Word is the unit of data transferred between processors. The paper
// counts message sizes in words; we use float64 since all kernels are
// numerical.
type Word = float64

// Config parameterizes a simulated machine.
type Config struct {
	// Tf is the simulated time of one floating point operation.
	Tf float64
	// Tc is the simulated time to transfer one word.
	Tc float64
	// Alpha is the per-message startup time (the paper's model omits it;
	// it defaults to 0 and exists so sensitivity studies can include it).
	Alpha float64
	// Overlap, when true, lets a sender continue computing while its
	// message is in flight (it pays only Alpha locally). When false the
	// sender is busy for the whole transfer, as in a blocking send.
	Overlap bool
	// ChanCap is the buffer capacity of each point-to-point channel.
	// 0 means "use the default" (64); negative values are a
	// configuration error reported by Validate/New, not silently
	// clamped, so a sweep config typo cannot masquerade as the default.
	// Capacities of at least 1 keep the ring pipelines of Sections 5-6
	// (all processors send right before receiving from the left) from
	// deadlocking.
	ChanCap int
	// Tracer, when non-nil, receives an Event for every computation,
	// message, wait and collective with simulated start/end times. It
	// must be safe for concurrent use; package trace provides one.
	Tracer Tracer
	// SyncCollectives selects the paper's execution model for the
	// collective primitives of Section 2.2: every participant is engaged
	// for the full Table 1 duration (all clocks advance together to
	// max(entry) + cost). This is how 1993 message-passing runtimes
	// executed collectives and is what makes replacing a multicast by
	// pipelined Shifts profitable (Sections 5-6). When false, collectives
	// run as asynchronous binomial-tree message exchanges — the ablation
	// showing that on a fully asynchronous machine the gap narrows.
	SyncCollectives bool
}

// DefaultConfig returns the configuration used throughout the experiments:
// unit flop time, unit word-transfer time, no startup, no overlap,
// synchronous collectives (the paper's Table 1 model).
func DefaultConfig() Config {
	return Config{Tf: 1, Tc: 1, Alpha: 0, Overlap: false, ChanCap: 64, SyncCollectives: true}
}

// AsyncConfig is DefaultConfig with asynchronous collectives, used by the
// ablation benchmarks.
func AsyncConfig() Config {
	c := DefaultConfig()
	c.SyncCollectives = false
	return c
}

// EventKind classifies trace events.
type EventKind int

const (
	// EvCompute is local floating point work.
	EvCompute EventKind = iota
	// EvSend is a message's transfer window: Start is the moment the
	// sender initiated it, End is the arrival time at the receiver. When
	// Overlap is false the window equals the sender's busy time; when
	// Overlap is true the sender is only busy for Alpha of it and the
	// rest is in-flight time overlapped with the sender's computation.
	EvSend
	// EvWait is idle time spent blocked for a message, collective
	// partner, or barrier.
	EvWait
	// EvCollective is time inside a synchronous collective.
	EvCollective
	// EvGather marks the partial-gathering phase of a vectored
	// reduction exchange (exec backend): one vectored partials message
	// per contributing pair converging on each root.
	EvGather
	// EvFanout marks the total-distribution phase of a vectored
	// reduction exchange: one vectored totals message per live reader
	// pair.
	EvFanout
	// EvRing marks a Section 5 ring-pipelined reduction step: the
	// running totals travelling neighbor-to-neighbor instead of
	// converging on an owner.
	EvRing
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvWait:
		return "wait"
	case EvCollective:
		return "collective"
	case EvGather:
		return "gather"
	case EvFanout:
		return "fanout"
	case EvRing:
		return "ring"
	}
	return "event"
}

// Event is one traced activity of one processor.
type Event struct {
	Proc       int
	Kind       EventKind
	Start, End float64
	// Peer is the other processor for sends (-1 otherwise).
	Peer int
	// Words is the message size for sends.
	Words int
}

// Tracer receives events as they happen, from multiple goroutines.
type Tracer interface {
	Record(Event)
}

type message struct {
	data    []Word
	arrival float64 // simulated arrival time at the receiver
}

// Machine is a simulated q-D grid of processors.
type Machine struct {
	grid *grid.Grid
	cfg  Config
	// links[src*P+dst] is the FIFO channel from src to dst.
	links []chan message
	bar   *barrier
	// dead is closed when any processor panics, so peers blocked on
	// channel operations fail fast instead of deadlocking.
	dead      chan struct{}
	abortOnce sync.Once
}

// DefaultChanCap is the point-to-point channel capacity used when
// Config.ChanCap is 0.
const DefaultChanCap = 64

// Validate reports configuration errors. ChanCap must be non-negative
// (0 selects DefaultChanCap).
func (c *Config) Validate() error {
	if c.ChanCap < 0 {
		return fmt.Errorf("machine: Config.ChanCap must be >= 0 (0 means default %d), got %d", DefaultChanCap, c.ChanCap)
	}
	return nil
}

// New creates a machine over the given processor grid. It returns an
// error for invalid configurations (see Config.Validate).
func New(g *grid.Grid, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ChanCap == 0 {
		cfg.ChanCap = DefaultChanCap
	}
	p := g.Size()
	m := &Machine{grid: g, cfg: cfg, links: make([]chan message, p*p), bar: newBarrier(p), dead: make(chan struct{})}
	for i := range m.links {
		m.links[i] = make(chan message, cfg.ChanCap)
	}
	return m, nil
}

// Grid returns the processor grid of the machine.
func (m *Machine) Grid() *grid.Grid { return m.grid }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Proc is the per-processor execution context handed to the SPMD body.
// A Proc must only be used from the goroutine running that processor.
type Proc struct {
	rank  int
	m     *Machine
	clock float64
	// counters
	flops       int64
	messages    int64
	words       int64
	maxMsgWords int64
	// pairs counts outbound traffic per destination rank, sparsely keyed
	// by live pairs. Finalize traffic and operand ships go through the
	// same Send path, so the per-pair columns are comparable across
	// engines.
	pairs PairTally
}

// noteSend records one counted outbound message of the given size to
// dst on every counter.
func (p *Proc) noteSend(dst, words int) {
	p.messages++
	p.words += int64(words)
	if int64(words) > p.maxMsgWords {
		p.maxMsgWords = int64(words)
	}
	p.pairs.Note(dst, words)
}

// Rank returns the linear rank of the processor ("who_am_i" in Fig 6).
func (p *Proc) Rank() int { return p.rank }

// Coord returns the processor's coordinate in grid dimension d.
func (p *Proc) Coord(d int) int { return p.m.grid.Coord(p.rank, d) }

// Grid returns the machine's processor grid.
func (p *Proc) Grid() *grid.Grid { return p.m.grid }

// NumProcs returns the total number of processors.
func (p *Proc) NumProcs() int { return p.m.grid.Size() }

// Clock returns the processor's current simulated time.
func (p *Proc) Clock() float64 { return p.clock }

// Compute advances the simulated clock by flops * Tf and counts the flops.
// It panics on negative flop counts (a sign of a broken cost annotation).
func (p *Proc) Compute(flops int) {
	if flops < 0 {
		panic(fmt.Sprintf("machine: negative flop count %d on processor %d", flops, p.rank))
	}
	p.flops += int64(flops)
	before := p.clock
	p.clock += float64(flops) * p.m.cfg.Tf
	if tr := p.m.cfg.Tracer; tr != nil && p.clock > before {
		tr.Record(Event{Proc: p.rank, Kind: EvCompute, Start: before, End: p.clock, Peer: -1})
	}
}

// Send transmits a copy of data to the processor with the given rank.
// Sending to oneself is allowed (the copy goes through the local channel
// with zero cost), which simplifies collective algorithms.
func (p *Proc) Send(dst int, data []Word) {
	if dst < 0 || dst >= p.m.grid.Size() {
		panic(fmt.Sprintf("machine: Send to invalid rank %d", dst))
	}
	buf := append([]Word(nil), data...)
	var arrival float64
	if dst == p.rank {
		arrival = p.clock
	} else {
		cfg := &p.m.cfg
		before := p.clock
		p.clock, arrival = cfg.SendTiming(p.clock, len(data))
		p.noteSend(dst, len(data))
		// The event covers the message's true transfer window: Start is
		// when the sender initiated it, End is the arrival at the receiver.
		// Under Overlap the sender's own clock only advances by Alpha (it
		// keeps computing while the message is in flight), so guarding on
		// the sender clock would drop the event entirely when Alpha == 0;
		// guard on the arrival instead.
		if tr := cfg.Tracer; tr != nil && arrival > before {
			tr.Record(Event{Proc: p.rank, Kind: EvSend, Start: before, End: arrival, Peer: dst, Words: len(data)})
		}
	}
	select {
	case p.m.links[p.rank*p.m.grid.Size()+dst] <- message{data: buf, arrival: arrival}:
	case <-p.m.dead:
		panic(deadErr)
	}
}

// Recv receives the next message from the processor with rank src,
// blocking until it is available. The receiver's simulated clock advances
// to at least the message arrival time.
func (p *Proc) Recv(src int) []Word {
	if src < 0 || src >= p.m.grid.Size() {
		panic(fmt.Sprintf("machine: Recv from invalid rank %d", src))
	}
	select {
	case msg := <-p.m.links[src*p.m.grid.Size()+p.rank]:
		if msg.arrival > p.clock {
			if tr := p.m.cfg.Tracer; tr != nil {
				tr.Record(Event{Proc: p.rank, Kind: EvWait, Start: p.clock, End: msg.arrival, Peer: src})
			}
			p.clock = msg.arrival
		}
		return msg.data
	case <-p.m.dead:
		panic(deadErr)
	}
}

// rawSend transmits without advancing the simulated clock. Synchronous
// collectives use it: their time comes from the Table 1 formula, not from
// per-hop accounting. count selects whether the message enters the
// message/word statistics (true for payload, false for the internal
// clock-synchronization exchange, which on a real machine is implicit in
// the collective's own messages).
func (p *Proc) rawSend(dst int, data []Word, count bool) {
	buf := append([]Word(nil), data...)
	if dst != p.rank && count {
		p.noteSend(dst, len(data))
	}
	select {
	case p.m.links[p.rank*p.m.grid.Size()+dst] <- message{data: buf}:
	case <-p.m.dead:
		panic(deadErr)
	}
}

// rawRecv receives without advancing the simulated clock.
func (p *Proc) rawRecv(src int) []Word {
	select {
	case msg := <-p.m.links[src*p.m.grid.Size()+p.rank]:
		return msg.data
	case <-p.m.dead:
		panic(deadErr)
	}
}

// deadErr is the panic value used to unwind processors after a peer
// failure; Run filters it so only the root cause is reported.
const deadErr = "machine: aborted after peer failure"

// barrierAbortErr and barrierDeadErr are the panic values the barrier
// uses to unwind processors that were blocked in (or reached) a barrier
// after an abort. Like deadErr they are secondary casualties, not root
// causes, and Run must not let them mask the error of the processor
// that actually failed.
const (
	barrierAbortErr = "machine: barrier aborted while waiting"
	barrierDeadErr  = "machine: barrier used after abort"
)

// secondaryPanic reports whether a recovered panic value is one of the
// sentinel strings raised to unwind innocent processors after a peer
// failure, rather than a root-cause error.
func secondaryPanic(rec any) bool {
	str, ok := rec.(string)
	return ok && (str == deadErr || str == barrierAbortErr || str == barrierDeadErr)
}

// SendValue sends a single word.
func (p *Proc) SendValue(dst int, v Word) { p.Send(dst, []Word{v}) }

// RecvValue receives a single word, panicking if the message length is
// not 1 (a protocol error in the SPMD program).
func (p *Proc) RecvValue(src int) Word {
	d := p.Recv(src)
	if len(d) != 1 {
		panic(fmt.Sprintf("machine: RecvValue got message of %d words", len(d)))
	}
	return d[0]
}

// Note records a custom trace event spanning [start, end] on this
// processor if a tracer is attached. The exec backend uses it to mark
// the gather / fan-out / ring phases of its vectored reduction
// exchanges on the transport trace.
func (p *Proc) Note(kind EventKind, start, end float64, peer, words int) {
	if tr := p.m.cfg.Tracer; tr != nil && end > start {
		tr.Record(Event{Proc: p.rank, Kind: kind, Start: start, End: end, Peer: peer, Words: words})
	}
}

// Barrier synchronizes all processors of the machine and equalizes their
// simulated clocks to the maximum (everyone waits for the slowest).
func (p *Proc) Barrier() {
	before := p.clock
	p.clock = p.m.bar.wait(p.clock)
	if tr := p.m.cfg.Tracer; tr != nil && p.clock > before {
		tr.Record(Event{Proc: p.rank, Kind: EvWait, Start: before, End: p.clock, Peer: -1})
	}
}

// Run executes the SPMD body on all processors concurrently and returns
// aggregate statistics. If any processor panics, Run returns the
// lowest-ranked root-cause error after all goroutines have stopped
// (processors unwound by a peer's failure are filtered, so they cannot
// mask it); the generic "run aborted" error appears only when an abort
// happened with no recorded cause. The machine must not be reused after
// an error (channels may hold residue).
func (m *Machine) Run(body func(p *Proc)) (Stats, error) {
	n := m.grid.Size()
	procs := make([]*Proc, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		procs[r] = &Proc{rank: r, m: m}
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					// A processor unwound by a peer's failure (deadErr, or a
					// barrier abort) is a casualty, not a cause: recording it
					// would let a low-rank innocent processor's error mask
					// the real one in Run's first-error scan below.
					if !secondaryPanic(rec) {
						errs[p.rank] = fmt.Errorf("machine: processor %d panicked: %v", p.rank, rec)
					}
					// Unblock peers waiting at the barrier or on channels.
					m.bar.abort()
					m.abort()
				}
			}()
			body(p)
		}(procs[r])
	}
	wg.Wait()
	var st Stats
	st.PerProc = make([]ProcStats, n)
	for r, p := range procs {
		st.PerProc[r] = ProcStats{Clock: p.clock, Flops: p.flops, Messages: p.messages, Words: p.words, MaxMsgWords: p.maxMsgWords,
			Peers: p.pairs.Snapshot()}
		st.AddProc(st.PerProc[r])
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	if m.bar.aborted() {
		return st, fmt.Errorf("machine: run aborted")
	}
	return st, nil
}

// abort closes the dead channel exactly once.
func (m *Machine) abort() {
	m.abortOnce.Do(func() { close(m.dead) })
}

// barrier is a reusable clock-synchronizing barrier. Per-generation clock
// maxima live in a small map: a processor returning from generation g has
// necessarily read max[g], and no processor can reach generation g+2
// before every processor has returned from g, so entries two generations
// back are dead and are trimmed on return.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	max   map[int]float64
	dead  bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n, max: make(map[int]float64)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n processors have called it, then releases them
// all with the maximum clock seen in this generation.
func (b *barrier) wait(clock float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		panic(barrierDeadErr)
	}
	gen := b.gen
	if clock > b.max[gen] {
		b.max[gen] = clock
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for b.gen == gen && !b.dead {
			b.cond.Wait()
		}
		if b.dead {
			panic(barrierAbortErr)
		}
	}
	v := b.max[gen]
	delete(b.max, gen-2)
	return v
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.dead = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) aborted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}
