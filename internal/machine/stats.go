// Run statistics shared by both runtimes. The goroutine Machine, the
// discrete-event EventMachine, and the exec backend's naive-cost replay
// all tally per-pair traffic through PairTally and fold per-processor
// snapshots into Stats through AddProc, so "bit-identical Stats" across
// engines is a structural property rather than three copies of the same
// aggregation loop kept in sync by hand.
package machine

import "sort"

// PairStat is one ordered processor pair's outbound traffic, keyed by
// the destination rank.
type PairStat struct {
	Peer     int
	Messages int64
	Words    int64
}

// PairTally accumulates outbound per-destination counters sparsely: a
// processor that talks to k peers holds k entries, not one per rank.
// At N=4096 the dense per-peer slices this replaces cost
// O(N^2) = 16.7M int64s per run even for nearest-neighbour kernels.
// The zero value is ready to use.
type PairTally struct {
	pairs map[int]*PairStat
}

// Note records one counted message of the given size to dst.
func (t *PairTally) Note(dst, words int) {
	if t.pairs == nil {
		t.pairs = make(map[int]*PairStat, 8)
	}
	ps := t.pairs[dst]
	if ps == nil {
		ps = &PairStat{Peer: dst}
		t.pairs[dst] = ps
	}
	ps.Messages++
	ps.Words += int64(words)
}

// Snapshot returns the live pairs sorted by destination rank, or nil if
// nothing was counted. The deterministic order makes ProcStats values
// directly comparable with reflect.DeepEqual across engines.
func (t *PairTally) Snapshot() []PairStat {
	if len(t.pairs) == 0 {
		return nil
	}
	out := make([]PairStat, 0, len(t.pairs))
	for _, ps := range t.pairs {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Stats aggregates the outcome of a Run.
type Stats struct {
	// ParallelTime is the simulated makespan: the maximum clock over all
	// processors when the SPMD body finishes.
	ParallelTime float64
	// Flops is the total flop count over all processors.
	Flops int64
	// Messages is the total number of point-to-point messages
	// (self-sends excluded).
	Messages int64
	// Words is the total number of words carried by those messages.
	Words int64
	// MaxMsgWords is the size of the largest single message any processor
	// sent — 1 for a per-element engine, the largest vectored exchange
	// for a batching one.
	MaxMsgWords int64
	// MaxPairMessages / MaxPairWords are the heaviest ordered processor
	// pair's message and word counts — the hot-link load. Like
	// MaxMsgWords they count finalize traffic and operand ships
	// uniformly, so they compare across engines.
	MaxPairMessages int64
	MaxPairWords    int64
	// PerProc holds the final per-processor snapshots indexed by rank.
	PerProc []ProcStats
}

// ProcStats is one processor's final counters.
type ProcStats struct {
	Clock       float64
	Flops       int64
	Messages    int64
	Words       int64
	MaxMsgWords int64
	// Peers breaks the outbound counters down by destination rank,
	// sorted by rank (nil when this processor sent nothing).
	Peers []PairStat
}

// AddProc folds one processor's snapshot into the aggregate totals
// (everything except PerProc, which the caller owns).
func (s *Stats) AddProc(ps ProcStats) {
	if ps.Clock > s.ParallelTime {
		s.ParallelTime = ps.Clock
	}
	s.Flops += ps.Flops
	s.Messages += ps.Messages
	s.Words += ps.Words
	if ps.MaxMsgWords > s.MaxMsgWords {
		s.MaxMsgWords = ps.MaxMsgWords
	}
	for _, pr := range ps.Peers {
		if pr.Messages > s.MaxPairMessages {
			s.MaxPairMessages = pr.Messages
		}
		if pr.Words > s.MaxPairWords {
			s.MaxPairWords = pr.Words
		}
	}
}

// MaxFlops returns the largest per-processor flop count — the computation
// load of the most loaded processor, used in load-balance experiments.
func (s Stats) MaxFlops() int64 {
	var mx int64
	for _, ps := range s.PerProc {
		if ps.Flops > mx {
			mx = ps.Flops
		}
	}
	return mx
}
