package machine

import (
	"strings"
	"sync"
	"testing"

	"dmcc/internal/grid"
)

// listTracer is a minimal thread-safe Tracer for these tests (package
// trace would be an import cycle from here).
type listTracer struct {
	mu     sync.Mutex
	events []Event
}

func (l *listTracer) Record(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *listTracer) ofKind(k EventKind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestOverlapSendTraceWindow: the satellite fix — an overlapped send
// with Alpha == 0 leaves the sender's clock untouched, and the old
// `clock > before` guard dropped the event entirely. The send must now
// be recorded with its true transfer window [start, arrival].
func TestOverlapSendTraceWindow(t *testing.T) {
	g := grid.New(2)
	tr := &listTracer{}
	cfg := Config{Tf: 1, Tc: 10, Alpha: 0, Overlap: true, ChanCap: 4, Tracer: tr}
	run(t, g, cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []Word{1, 2, 3})
			if p.Clock() != 0 {
				t.Errorf("overlapped zero-alpha sender clock = %v, want 0", p.Clock())
			}
		} else {
			p.Recv(0)
		}
	})
	sends := tr.ofKind(EvSend)
	if len(sends) != 1 {
		t.Fatalf("recorded %d send events, want 1 (overlapped send lost)", len(sends))
	}
	e := sends[0]
	if e.Proc != 0 || e.Peer != 1 || e.Words != 3 || e.Start != 0 || e.End != 30 {
		t.Errorf("send event = %+v, want proc 0 -> 1, 3 words, window [0,30]", e)
	}
}

// TestBlockingSendTraceWindow: with Overlap off the transfer window is
// exactly the sender's busy interval, so the event shape is unchanged
// from the old semantics.
func TestBlockingSendTraceWindow(t *testing.T) {
	g := grid.New(2)
	tr := &listTracer{}
	cfg := Config{Tf: 1, Tc: 3, Alpha: 2, Overlap: false, ChanCap: 4, Tracer: tr}
	run(t, g, cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(4)
			p.Send(1, []Word{1, 2})
		} else {
			p.Recv(0)
		}
	})
	sends := tr.ofKind(EvSend)
	if len(sends) != 1 {
		t.Fatalf("recorded %d send events, want 1", len(sends))
	}
	if e := sends[0]; e.Start != 4 || e.End != 12 {
		t.Errorf("send window = [%v,%v], want [4,12]", e.Start, e.End)
	}
}

// TestAbortSurfacesRootCause: the satellite fix for masked aborts — a
// high-rank processor's real panic must not be hidden behind the
// barrier-abort panics of the lower-rank processors it takes down, nor
// behind the generic "machine: run aborted".
func TestAbortSurfacesRootCause(t *testing.T) {
	g := grid.New(3)
	_, err := mustNew(t, g, DefaultConfig()).Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		p.Barrier() // ranks 0 and 1 die in the aborted barrier
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "processor 2") {
		t.Errorf("root cause masked: got %q", err)
	}
}

// TestAbortWithoutCauseStaysGeneric: when no processor recorded a real
// error the generic message is still returned (the barrier can only be
// dead here via the explicit abort below).
func TestAbortWithoutCauseStaysGeneric(t *testing.T) {
	g := grid.New(2)
	m := mustNew(t, g, DefaultConfig())
	m.bar.abort()
	_, err := m.Run(func(p *Proc) {})
	if err == nil || !strings.Contains(err.Error(), "machine: run aborted") {
		t.Errorf("got %v, want generic run-aborted error", err)
	}
}

// TestMaxMsgWordsStat: the vectored-send statistic tracks the largest
// single message per processor and machine-wide.
func TestMaxMsgWordsStat(t *testing.T) {
	g := grid.New(2)
	st := run(t, g, DefaultConfig(), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []Word{1, 2, 3, 4})
			p.SendValue(1, 9)
		} else {
			p.Recv(0)
			p.Recv(0)
			p.SendValue(0, 1)
		}
	})
	if p := p0(t, st); p.MaxMsgWords != 4 {
		t.Errorf("proc 0 MaxMsgWords = %d, want 4", p.MaxMsgWords)
	}
	if st.PerProc[1].MaxMsgWords != 1 {
		t.Errorf("proc 1 MaxMsgWords = %d, want 1", st.PerProc[1].MaxMsgWords)
	}
	if st.MaxMsgWords != 4 {
		t.Errorf("machine MaxMsgWords = %d, want 4", st.MaxMsgWords)
	}
	// A proc 0 -> proc 0 self-send never counts.
	st2 := run(t, grid.New(1), DefaultConfig(), func(p *Proc) {
		p.Send(0, []Word{1, 2, 3})
		p.Recv(0)
	})
	if st2.MaxMsgWords != 0 {
		t.Errorf("self-send counted into MaxMsgWords: %d", st2.MaxMsgWords)
	}
}

func p0(t *testing.T, st Stats) ProcStats {
	t.Helper()
	if len(st.PerProc) == 0 {
		t.Fatal("no per-proc stats")
	}
	return st.PerProc[0]
}
