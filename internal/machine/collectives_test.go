// Collective coverage on the shapes the binomial-tree code paths find
// hardest: non-power-of-two peer groups carved out of 2-D grids (where
// the tree is ragged and peer ranks are non-contiguous) and degenerate
// 1xN / Nx1 grids (where one dimension's peer group is a singleton).

package machine

import (
	"math"
	"testing"

	"dmcc/internal/grid"
)

// TestCollectivesNonPow2PeerGroups: every collective returns correct
// values on ragged binomial trees over both dimensions of 3x5, 5x3 and
// 7x2 grids, for every root, in both execution models.
func TestCollectivesNonPow2PeerGroups(t *testing.T) {
	shapes := [][2]int{{3, 5}, {5, 3}, {7, 2}}
	for _, shape := range shapes {
		g := grid.New(shape[0], shape[1])
		for dim := 0; dim < 2; dim++ {
			for _, sync := range []bool{true, false} {
				cfg := DefaultConfig()
				cfg.SyncCollectives = sync
				run(t, g, cfg, func(p *Proc) {
					peers := p.PeersOver(dim)
					if len(peers) != shape[dim] {
						t.Errorf("%v dim %d: peer group size %d, want %d", shape, dim, len(peers), shape[dim])
					}
					pos := indexOf(peers, p.Rank())

					// Multicast from every peer position in turn.
					for rootPos, root := range peers {
						var data []Word
						if p.Rank() == root {
							data = []Word{Word(100 + rootPos), 7}
						}
						got := p.OneToManyMulticast([]int{dim}, root, data)
						if len(got) != 2 || got[0] != Word(100+rootPos) || got[1] != 7 {
							t.Errorf("%v dim %d root %d: proc %d multicast got %v", shape, dim, root, p.Rank(), got)
						}
					}

					// Reduction to a non-zero, non-last peer position.
					root := peers[len(peers)/2]
					sum := p.Reduction([]int{dim}, root, []Word{Word(pos), 1}, SumOp)
					n := len(peers)
					if p.Rank() == root {
						if sum == nil || sum[0] != Word(n*(n-1)/2) || sum[1] != Word(n) {
							t.Errorf("%v dim %d: reduction at %d got %v", shape, dim, root, sum)
						}
					} else if sum != nil {
						t.Errorf("%v dim %d: non-root %d got reduction value %v", shape, dim, p.Rank(), sum)
					}

					// AllReduce max: everyone learns the group maximum.
					mx := p.AllReduce([]int{dim}, []Word{Word(pos * pos)}, MaxOp)
					if len(mx) != 1 || mx[0] != Word((n-1)*(n-1)) {
						t.Errorf("%v dim %d: proc %d allreduce got %v", shape, dim, p.Rank(), mx)
					}

					// Scatter/Gather round trip through the middle peer.
					var chunks [][]Word
					if p.Rank() == root {
						chunks = make([][]Word, n)
						for i := range chunks {
							chunks[i] = []Word{Word(10 * i), Word(10*i + 1)}
						}
					}
					own := p.Scatter([]int{dim}, root, chunks)
					if len(own) != 2 || own[0] != Word(10*pos) || own[1] != Word(10*pos+1) {
						t.Errorf("%v dim %d: proc %d scatter got %v", shape, dim, p.Rank(), own)
					}
					back := p.Gather([]int{dim}, root, own)
					if p.Rank() == root {
						for i, c := range back {
							if len(c) != 2 || c[0] != Word(10*i) || c[1] != Word(10*i+1) {
								t.Errorf("%v dim %d: gather chunk %d = %v", shape, dim, i, c)
							}
						}
					} else if back != nil {
						t.Errorf("%v dim %d: non-root %d got gather result", shape, dim, p.Rank())
					}

					// Many-to-many: position-indexed all-gather.
					all := p.ManyToManyMulticast([]int{dim}, []Word{Word(pos)})
					if len(all) != n {
						t.Fatalf("%v dim %d: many-to-many returned %d chunks", shape, dim, len(all))
					}
					for i, c := range all {
						if len(c) != 1 || c[0] != Word(i) {
							t.Errorf("%v dim %d: many-to-many chunk %d = %v", shape, dim, i, c)
						}
					}

					// Affine rotate-by-one across the ragged group.
					perm := make([]int, n)
					for i := range perm {
						perm[i] = (i + 1) % n
					}
					rot := p.AffineTransform([]int{dim}, perm, []Word{Word(pos)})
					if len(rot) != 1 || rot[0] != Word((pos-1+n)%n) {
						t.Errorf("%v dim %d: proc %d affine got %v", shape, dim, p.Rank(), rot)
					}
				})
			}
		}
	}
}

// TestCollectivesDegenerate1xN: on 1xN and Nx1 grids, collectives over
// the singleton dimension are free local identities, while collectives
// over the long dimension behave exactly like a 1-D grid of N.
func TestCollectivesDegenerate1xN(t *testing.T) {
	for _, shape := range [][2]int{{1, 6}, {6, 1}, {1, 5}, {5, 1}} {
		g := grid.New(shape[0], shape[1])
		longDim, unitDim := 0, 1
		if shape[0] == 1 {
			longDim, unitDim = 1, 0
		}
		n := shape[longDim]

		// Singleton dimension: every collective is the identity at zero
		// cost and zero traffic.
		st := run(t, g, DefaultConfig(), func(p *Proc) {
			peers := p.PeersOver(unitDim)
			if len(peers) != 1 || peers[0] != p.Rank() {
				t.Errorf("%v: singleton peer group is %v for proc %d", shape, peers, p.Rank())
			}
			data := []Word{Word(p.Rank()), -3}
			if got := p.OneToManyMulticast([]int{unitDim}, p.Rank(), data); got[0] != data[0] || got[1] != data[1] {
				t.Errorf("%v: singleton multicast changed data: %v", shape, got)
			}
			if got := p.Reduction([]int{unitDim}, p.Rank(), data, SumOp); got[0] != data[0] {
				t.Errorf("%v: singleton reduction changed data: %v", shape, got)
			}
			if got := p.ManyToManyMulticast([]int{unitDim}, data); len(got) != 1 || got[0][0] != data[0] {
				t.Errorf("%v: singleton many-to-many wrong: %v", shape, got)
			}
			own := p.Scatter([]int{unitDim}, p.Rank(), [][]Word{data})
			if own[0] != data[0] {
				t.Errorf("%v: singleton scatter wrong: %v", shape, own)
			}
		})
		if st.Messages != 0 || st.Words != 0 || st.ParallelTime != 0 {
			t.Errorf("%v: singleton-dimension collectives were not free: %+v", shape, st)
		}

		// Long dimension: identical message count and makespan to the
		// 1-D machine of the same size running the same multicast.
		body1D := func(p *Proc, dims []int) {
			var data []Word
			if p.Rank() == 0 {
				data = []Word{5}
			}
			p.OneToManyMulticast(dims, 0, data)
		}
		st2 := run(t, g, DefaultConfig(), func(p *Proc) { body1D(p, []int{longDim}) })
		stRef := run(t, grid.New(n), DefaultConfig(), func(p *Proc) { body1D(p, []int{0}) })
		if st2.Messages != stRef.Messages || st2.ParallelTime != stRef.ParallelTime {
			t.Errorf("%v long-dim multicast (%d msgs, T=%v) differs from 1-D grid (%d msgs, T=%v)",
				shape, st2.Messages, st2.ParallelTime, stRef.Messages, stRef.ParallelTime)
		}
	}
}

// TestAllToAllNonPow2PeerGroups: the personalized exchange delivers the
// right chunk to the right peer on ragged non-power-of-two groups carved
// out of 2-D grids, for both dimensions and both execution models, with
// ragged (position-dependent) chunk sizes including empty chunks.
func TestAllToAllNonPow2PeerGroups(t *testing.T) {
	shapes := [][2]int{{3, 5}, {5, 3}, {7, 2}}
	for _, shape := range shapes {
		g := grid.New(shape[0], shape[1])
		for dim := 0; dim < 2; dim++ {
			for _, sync := range []bool{true, false} {
				cfg := DefaultConfig()
				cfg.SyncCollectives = sync
				run(t, g, cfg, func(p *Proc) {
					peers := p.PeersOver(dim)
					n := len(peers)
					pos := indexOf(peers, p.Rank())

					// Chunk for destination i encodes (sender, receiver) and
					// is (i mod 3) words long, so some chunks are empty and
					// the rest are ragged.
					chunks := make([][]Word, n)
					for i := range chunks {
						for w := 0; w < i%3; w++ {
							chunks[i] = append(chunks[i], Word(1000*pos+10*i+w))
						}
					}
					got := p.AllToAll([]int{dim}, chunks)
					if len(got) != n {
						t.Fatalf("%v dim %d: all-to-all returned %d chunks for %d peers", shape, dim, len(got), n)
					}
					for src, c := range got {
						if len(c) != pos%3 {
							t.Errorf("%v dim %d: proc %d chunk from pos %d has %d words, want %d",
								shape, dim, p.Rank(), src, len(c), pos%3)
							continue
						}
						for w, v := range c {
							if v != Word(1000*src+10*pos+w) {
								t.Errorf("%v dim %d: proc %d chunk from pos %d = %v", shape, dim, p.Rank(), src, c)
								break
							}
						}
					}
				})
			}
		}
	}
}

// TestAllToAllDegenerate1xN: over the singleton dimension of a 1xN/Nx1
// grid the exchange is a free local identity; over the long dimension it
// moves exactly the off-diagonal words, like a 1-D grid of N.
func TestAllToAllDegenerate1xN(t *testing.T) {
	for _, shape := range [][2]int{{1, 6}, {6, 1}, {1, 5}, {5, 1}} {
		g := grid.New(shape[0], shape[1])
		longDim, unitDim := 0, 1
		if shape[0] == 1 {
			longDim, unitDim = 1, 0
		}
		n := shape[longDim]

		st := run(t, g, DefaultConfig(), func(p *Proc) {
			data := []Word{Word(p.Rank()), 42}
			got := p.AllToAll([]int{unitDim}, [][]Word{data})
			if len(got) != 1 || len(got[0]) != 2 || got[0][0] != data[0] || got[0][1] != data[1] {
				t.Errorf("%v: singleton all-to-all changed data: %v", shape, got)
			}
		})
		if st.Messages != 0 || st.Words != 0 || st.ParallelTime != 0 {
			t.Errorf("%v: singleton-dimension all-to-all was not free: %+v", shape, st)
		}

		body1D := func(p *Proc, dims []int) {
			peers := p.PeersOver(dims...)
			pos := indexOf(peers, p.Rank())
			chunks := make([][]Word, len(peers))
			for i := range chunks {
				chunks[i] = []Word{Word(100*pos + i)}
			}
			got := p.AllToAll(dims, chunks)
			for src, c := range got {
				if len(c) != 1 || c[0] != Word(100*src+pos) {
					t.Errorf("chunk from pos %d = %v, want [%d]", src, c, 100*src+pos)
				}
			}
		}
		st2 := run(t, g, DefaultConfig(), func(p *Proc) { body1D(p, []int{longDim}) })
		stRef := run(t, grid.New(n), DefaultConfig(), func(p *Proc) { body1D(p, []int{0}) })
		if st2.Messages != stRef.Messages || st2.Words != stRef.Words || st2.ParallelTime != stRef.ParallelTime {
			t.Errorf("%v long-dim all-to-all (%d msgs, %d words, T=%v) differs from 1-D grid (%d msgs, %d words, T=%v)",
				shape, st2.Messages, st2.Words, st2.ParallelTime, stRef.Messages, stRef.Words, stRef.ParallelTime)
		}
		// n peers each send n-1 one-word off-diagonal chunks.
		if want := int64(n * (n - 1)); st2.Messages != want || st2.Words != want {
			t.Errorf("%v long-dim all-to-all: %d msgs / %d words, want %d / %d",
				shape, st2.Messages, st2.Words, want, want)
		}
	}
}

// TestSyncMulticastRaggedCost: the Table 1 clock cost on a
// non-power-of-two group uses ceil(log2 n) — n=5 peers advance by
// 3*m*Tc, not by a fractional log.
func TestSyncMulticastRaggedCost(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		g := grid.New(n)
		st := run(t, g, DefaultConfig(), func(p *Proc) {
			var data []Word
			if p.Rank() == 0 {
				data = []Word{1, 2}
			}
			p.OneToManyMulticast([]int{0}, 0, data)
		})
		want := 2 * float64(log2ceil(n))
		if st.ParallelTime != want {
			t.Errorf("n=%d: makespan %v, want %v", n, st.ParallelTime, want)
		}
		if st.Messages != int64(n-1) {
			t.Errorf("n=%d: %d messages, want %d", n, st.Messages, n-1)
		}
	}
	if got, want := log2ceil(5), int(math.Ceil(math.Log2(5))); got != want {
		t.Fatalf("log2ceil(5) = %d, want %d", got, want)
	}
}

// TestCollectivesOverBothDims: a collective over both dimensions of a
// ragged 2-D grid spans the whole machine; peer order is rank order.
func TestCollectivesOverBothDims(t *testing.T) {
	g := grid.New(3, 5)
	n := g.Size()
	run(t, g, DefaultConfig(), func(p *Proc) {
		peers := p.PeersOver(0, 1)
		if len(peers) != n {
			t.Fatalf("both-dims peer group has %d members, want %d", len(peers), n)
		}
		sum := p.AllReduce([]int{0, 1}, []Word{1}, SumOp)
		if sum[0] != Word(n) {
			t.Errorf("proc %d: whole-machine allreduce got %v, want %d", p.Rank(), sum[0], n)
		}
	})
}
