package sweep

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmcc/internal/artifact"
)

func openStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	st.Warnf = t.Logf
	return st
}

// A cold cached sweep, a warm cached sweep and an uncached sweep of the
// same grid must emit byte-identical JSON — the acceptance criterion
// that makes -cache transparent to consumers of -json.
func TestCompileSweepCachedJSONIdentical(t *testing.T) {
	mList, nList, sList := []int{16, 32}, []int{4}, []int{4}
	st := openStore(t)

	fresh, err := Compile(mList, nList, sList, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Compile(mList, nList, sList, Options{Cache: st, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Stats()
	if cs.Misses == 0 || cs.Puts == 0 {
		t.Fatalf("cold sweep should miss and populate, got %s", cs)
	}
	if cs.Hits != 0 {
		t.Fatalf("cold sweep on empty store reported hits: %s", cs)
	}
	warm, err := Compile(mList, nList, sList, Options{Cache: st, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ws := st.Stats()
	if ws.Misses != cs.Misses {
		t.Fatalf("warm sweep missed: cold %s, after warm %s", cs, ws)
	}
	if wantHits := int64(len(warm.Rows)); ws.Hits != wantHits {
		t.Fatalf("warm sweep hits = %d, want %d (%s)", ws.Hits, wantHits, ws)
	}

	fj, _ := fresh.JSON()
	cj, _ := cold.JSON()
	wj, _ := warm.JSON()
	if !bytes.Equal(fj, cj) {
		t.Errorf("uncached and cold-cached JSON differ:\n%s\n---\n%s", fj, cj)
	}
	if !bytes.Equal(cj, wj) {
		t.Errorf("cold and warm JSON differ:\n%s\n---\n%s", cj, wj)
	}
}

// The symbolic sweep's frozen-plan path: a warm run thaws the plan
// instead of recompiling and must price every m identically.
func TestSymbolicSweepCachedMatchesFresh(t *testing.T) {
	mList, nList := []int{16, 32, 64}, []int{4}
	st := openStore(t)
	fresh, err := Symbolic(mList, nList, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Symbolic(mList, nList, Options{Cache: st}); err != nil {
		t.Fatal(err) // cold: populates the store
	}
	warm, err := Symbolic(mList, nList, Options{Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Hits == 0 {
		t.Fatalf("warm symbolic sweep never hit the cache: %s", s)
	}
	fj, _ := fresh.JSON()
	wj, _ := warm.JSON()
	if !bytes.Equal(fj, wj) {
		t.Errorf("thawed symbolic sweep differs from fresh:\n%s\n---\n%s", fj, wj)
	}
	// Formula comments survive the thaw too (they come from the fits).
	if len(fresh.Comments) != len(warm.Comments) {
		t.Fatalf("comments: fresh %d, warm %d", len(fresh.Comments), len(warm.Comments))
	}
	for i := range fresh.Comments {
		if fresh.Comments[i] != warm.Comments[i] {
			t.Errorf("comment %d: fresh %q, warm %q", i, fresh.Comments[i], warm.Comments[i])
		}
	}
}

// Rows come back sorted regardless of worker interleaving.
func TestRowsCanonicallyOrdered(t *testing.T) {
	res, err := Compile([]int{32, 16}, []int{4}, []int{4}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a.Variant > b.Variant ||
			(a.Variant == b.Variant && a.M > b.M) ||
			(a.Variant == b.Variant && a.M == b.M && a.N > b.N) ||
			(a.Variant == b.Variant && a.M == b.M && a.N == b.N && a.S > b.S) {
			t.Fatalf("rows out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Compare against a baseline in dmsweep -json shape: identical metrics
// pass, inflated current metrics regress, and wall-clock columns are
// ignored even if present in the baseline.
func TestCompareSweepJSONBaseline(t *testing.T) {
	res := &Result{Kind: "compile", Rows: []Row{
		{Variant: "analytic", M: 16, N: 4, S: 4,
			Metrics: map[string]float64{"mincost": 28, "segments": 4}},
	}}
	base := `{"sweep":"compile","rows":[
	  {"variant":"analytic","m":16,"n":4,"s":4,
	   "metrics":{"mincost":28,"segments":4,"compile_ns":12345}},
	  {"variant":"analytic","m":999,"n":4,"s":4,"metrics":{"mincost":1}}
	]}`
	path := writeBaseline(t, base)

	regs, notes, err := Compare(path, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "m=999") {
		t.Fatalf("expected one skipped-row note for m=999, got %v", notes)
	}

	res.Rows[0].Metrics["mincost"] = 30 // worse than 28
	regs, _, err = Compare(path, res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "mincost" {
		t.Fatalf("expected one mincost regression, got %v", regs)
	}
	// A generous tolerance absorbs it.
	regs, _, _ = Compare(path, res, 0.10)
	if len(regs) != 0 {
		t.Fatalf("7%% increase flagged at 10%% tolerance: %v", regs)
	}
}

// Compare understands the committed BENCH_compile.json shape: synth/s=K
// entries gate the analytic engine's rows at the config's (m, n) on
// dpcost and segments; wall-clock fields and non-synth entries are
// ignored.
func TestCompareBenchCompileBaseline(t *testing.T) {
	base := `{
	  "bench": "BenchmarkCompileScaling",
	  "config": {"m": 64, "n": 16},
	  "results": [
	    {"name": "synth/s=4", "fast_ns": 100, "pr1_ns": 200, "prechange_ns": null,
	     "dpcost": 28, "segments": 4},
	    {"name": "gauss", "fast_ns": 999, "dpcost": 14024, "segments": 1}
	  ]
	}`
	path := writeBaseline(t, base)
	res := &Result{Kind: "compile", Rows: []Row{
		{Variant: "analytic", M: 64, N: 16, S: 4,
			Metrics: map[string]float64{"mincost": 28, "segments": 4}},
		{Variant: "exact", M: 64, N: 16, S: 4,
			Metrics: map[string]float64{"mincost": 9999, "segments": 9}},
	}}
	regs, notes, err := Compare(path, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("matching run flagged: %v", regs)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
	res.Rows[0].Metrics["segments"] = 5
	regs, _, _ = Compare(path, res, 0)
	if len(regs) != 1 || regs[0].Metric != "segments" {
		t.Fatalf("expected a segments regression, got %v", regs)
	}
}

// Compare understands the committed BENCH_exec.json shape: prog entries
// gate the batched arm, with naive_messages renamed to messages.
func TestCompareBenchExecBaseline(t *testing.T) {
	base := `{
	  "bench": "dmsweep -sweep exec (batched engine)",
	  "config": {"m": 64, "n": 16},
	  "results": [
	    {"prog": "jacobi", "wall_ns": 123, "simtime": 1634,
	     "naive_messages": 1536, "transport_messages": 810,
	     "words": 1536, "max_msg_words": 32}
	  ]
	}`
	path := writeBaseline(t, base)
	res := &Result{Kind: "exec", Rows: []Row{
		{Variant: "jacobi/batched", M: 64, N: 16,
			Metrics: map[string]float64{"simtime": 1634, "messages": 1536,
				"transport_messages": 810, "words": 1536, "max_msg_words": 32}},
		{Variant: "jacobi/exact", M: 64, N: 16,
			Metrics: map[string]float64{"simtime": 99999}},
	}}
	regs, _, err := Compare(path, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("matching run flagged: %v", regs)
	}
	res.Rows[0].Metrics["simtime"] = 2000
	regs, _, _ = Compare(path, res, 0.01)
	if len(regs) != 1 || regs[0].Metric != "simtime" {
		t.Fatalf("expected a simtime regression, got %v", regs)
	}
}

// A baseline whose grid shares nothing with the sweep is an error, not
// a silent pass.
func TestCompareRejectsDisjointBaseline(t *testing.T) {
	path := writeBaseline(t, `{"sweep":"compile","rows":[
	  {"variant":"analytic","m":999,"n":999,"metrics":{"mincost":1}}]}`)
	res := &Result{Kind: "compile", Rows: []Row{
		{Variant: "analytic", M: 16, N: 4, S: 4, Metrics: map[string]float64{"mincost": 28}},
	}}
	if _, _, err := Compare(path, res, 0); err == nil {
		t.Fatal("disjoint baseline should be an error")
	}
}

func TestCompareRejectsUnknownShape(t *testing.T) {
	path := writeBaseline(t, `{"something":"else"}`)
	res := &Result{Kind: "compile", Rows: []Row{{Variant: "x", M: 1, N: 1}}}
	if _, _, err := Compare(path, res, 0); err == nil {
		t.Fatal("unknown baseline shape should be an error")
	}
}

// Sharded sweeps partition the canonical point order; merging the
// shards' JSON outputs reproduces the unsharded document byte for byte.
func TestShardedCompileSweepMergesIdentical(t *testing.T) {
	mList, nList, sList := []int{16, 32}, []int{4}, []int{4}
	full, err := Compile(mList, nList, sList, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	total := 0
	for k := 0; k < 2; k++ {
		part, err := Compile(mList, nList, sList, Options{Shard: k, ShardCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Rows) == 0 || len(part.Rows) >= len(full.Rows) {
			t.Fatalf("shard %d has %d of %d rows — not a proper split", k, len(part.Rows), len(full.Rows))
		}
		total += len(part.Rows)
		pj, err := part.JSON()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "shard"+string(rune('0'+k))+".json")
		if err := os.WriteFile(path, pj, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	if total != len(full.Rows) {
		t.Fatalf("shards cover %d rows, full sweep has %d", total, len(full.Rows))
	}
	merged, err := MergeFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	fj, _ := full.JSON()
	mj, _ := merged.JSON()
	if !bytes.Equal(fj, mj) {
		t.Errorf("merged shards differ from unsharded sweep:\n%s\n---\n%s", fj, mj)
	}
}

// Symbolic sweeps shard over (program, N) units and merge identically.
func TestShardedSymbolicSweepMergesIdentical(t *testing.T) {
	mList, nList := []int{16, 32}, []int{4}
	full, err := Symbolic(mList, nList, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for k := 0; k < 2; k++ {
		part, err := Symbolic(mList, nList, Options{Shard: k, ShardCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Rows) == 0 {
			t.Fatalf("shard %d is empty", k)
		}
		pj, err := part.JSON()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "sym"+string(rune('0'+k))+".json")
		if err := os.WriteFile(path, pj, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	merged, err := MergeFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	fj, _ := full.JSON()
	mj, _ := merged.JSON()
	if !bytes.Equal(fj, mj) {
		t.Errorf("merged symbolic shards differ from unsharded sweep:\n%s\n---\n%s", fj, mj)
	}
}

// Overlapping inputs are not shards of one sweep: the merge refuses
// them instead of silently overwriting rows.
func TestMergeRejectsDuplicateRows(t *testing.T) {
	res, err := Compile([]int{16}, []int{4}, []int{4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rj, _ := res.JSON()
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, rj, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergeFiles([]string{a, b}); err == nil {
		t.Fatal("duplicate rows should fail the merge")
	}
}

// MergeFiles refuses mixed sweep kinds and empty input lists.
func TestMergeRejectsMixedKinds(t *testing.T) {
	if _, err := MergeFiles(nil); err == nil {
		t.Fatal("empty merge should fail")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(a, []byte(`{"sweep":"compile","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`{"sweep":"exec","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFiles([]string{a, b}); err == nil {
		t.Fatal("mixed-kind merge should fail")
	}
}

// A sweep through a tiered cache over a peer daemon's store behaves
// like a local cache: the second shard worker hits what the first
// computed, through the peer.
func TestSweepThroughTieredCache(t *testing.T) {
	upstream := openStore(t)
	ts := httptest.NewServer(artifact.Handler(upstream))
	defer ts.Close()

	mList, nList, sList := []int{16}, []int{4}, []int{4}
	// Worker A: cold, writes through to the peer.
	a := NewTieredCache(t, ts.URL)
	cold, err := Compile(mList, nList, sList, Options{Cache: a})
	if err != nil {
		t.Fatal(err)
	}
	if upstream.Stats().Puts == 0 {
		t.Fatal("worker A never wrote through to the peer store")
	}
	// Worker B: separate local dir, warm entirely from the peer.
	b := NewTieredCache(t, ts.URL)
	warm, err := Compile(mList, nList, sList, Options{Cache: b})
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.RemoteHits == 0 || st.Misses != 0 {
		t.Fatalf("worker B should warm from the peer: %s", st)
	}
	cj, _ := cold.JSON()
	wj, _ := warm.JSON()
	if !bytes.Equal(cj, wj) {
		t.Errorf("peer-warmed sweep differs from cold sweep:\n%s\n---\n%s", cj, wj)
	}
}

// NewTieredCache builds a tiered backend over a fresh local dir and the
// given peer URL (test helper).
func NewTieredCache(t *testing.T, peer string) *artifact.Tiered {
	t.Helper()
	local := openStore(t)
	tr := artifact.NewTiered(local, artifact.OpenRemote(peer, artifact.RemoteOptions{}))
	tr.Warnf = t.Logf
	return tr
}
