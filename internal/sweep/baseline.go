// Baseline regression gate: diff a finished sweep against a committed
// baseline file and report every deterministic metric that regressed
// beyond a tolerance — the step that turns a CI "bench smoke" into a
// real gate.
//
// Three baseline shapes are understood:
//
//   - dmsweep -json output ({"sweep": ..., "rows": [...]}) — rows match
//     on (variant, m, n, s);
//   - BENCH_compile.json ({"bench": "BenchmarkCompileScaling",
//     "results": [{"name": "synth/s=4", "dpcost": ..., "segments":
//     ...}]}) — synth rows match the production-engine compile rows at
//     the config's (m, n);
//   - BENCH_exec.json ({"bench": "dmsweep -sweep exec ...", "results":
//     [{"prog": ..., "simtime": ...}]}) — rows match the batched arm at
//     the config's (m, n).
//
// Wall-clock metrics (anything named *_ns, *wall*, or speedup/ratio)
// are never compared: they are machine-dependent. Everything else in
// the simulator is deterministic, so the default tolerance can be
// tight.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Regression is one metric that got worse than the baseline allows.
type Regression struct {
	Row    string // "variant m=.. n=.. [s=..]"
	Metric string
	Base   float64
	Cur    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g", r.Row, r.Metric, r.Base, r.Cur)
}

// baseRow is one normalized baseline row.
type baseRow struct {
	variant string
	m, n, s int
	metrics map[string]float64
}

// Compare diffs the result against the baseline file. It returns the
// regressions (current > baseline*(1+tol)), plus notes for baseline
// rows the sweep did not produce (grid mismatch — reported, not fatal).
func Compare(baselinePath string, res *Result, tol float64) (regs []Regression, notes []string, err error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: %w", err)
	}
	base, err := parseBaseline(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cur := map[string]map[string]float64{}
	for _, row := range res.Rows {
		cur[rowID(row.Variant, row.M, row.N, row.S)] = row.Metrics
	}
	matched := 0
	for _, b := range base {
		id := rowID(b.variant, b.m, b.n, b.s)
		got, ok := cur[id]
		if !ok {
			notes = append(notes, fmt.Sprintf("baseline row %s not in this sweep's grid; skipped", id))
			continue
		}
		matched++
		for metric, baseVal := range b.metrics {
			curVal, ok := got[metric]
			if !ok {
				continue
			}
			if curVal > baseVal*(1+tol)+1e-9 {
				regs = append(regs, Regression{Row: id, Metric: metric, Base: baseVal, Cur: curVal})
			}
		}
	}
	if matched == 0 {
		return nil, notes, fmt.Errorf("baseline %s: no baseline row matches this sweep (kinds or grids disagree)", baselinePath)
	}
	return regs, notes, nil
}

func rowID(variant string, m, n, s int) string {
	id := fmt.Sprintf("%s m=%d n=%d", variant, m, n)
	if s != 0 {
		id += fmt.Sprintf(" s=%d", s)
	}
	return id
}

// comparable reports whether a metric is deterministic (gateable).
func comparable(name string) bool {
	l := strings.ToLower(name)
	if strings.HasSuffix(l, "_ns") || strings.Contains(l, "wall") ||
		strings.Contains(l, "speedup") || strings.Contains(l, "ratio") {
		return false
	}
	return true
}

func parseBaseline(raw []byte) ([]baseRow, error) {
	var probe struct {
		Sweep   string           `json:"sweep"`
		Bench   string           `json:"bench"`
		Rows    []JSONRow        `json:"rows"`
		Results []map[string]any `json:"results"`
		Config  struct {
			M int `json:"m"`
			N int `json:"n"`
		} `json:"config"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("not a JSON baseline: %v", err)
	}
	switch {
	case probe.Rows != nil:
		var out []baseRow
		for _, r := range probe.Rows {
			metrics := map[string]float64{}
			for k, v := range r.Metrics {
				if comparable(k) {
					metrics[k] = v
				}
			}
			out = append(out, baseRow{variant: r.Variant, m: r.M, n: r.N, s: r.S, metrics: metrics})
		}
		return out, nil
	case strings.Contains(probe.Bench, "CompileScaling"):
		return parseBenchCompile(probe.Results, probe.Config.M, probe.Config.N)
	case strings.Contains(probe.Bench, "scale"):
		return parseBenchScale(probe.Results, probe.Config.M)
	case strings.Contains(probe.Bench, "exec"):
		return parseBenchExec(probe.Results, probe.Config.M, probe.Config.N)
	default:
		return nil, fmt.Errorf("unrecognized baseline shape (want dmsweep -json output, BENCH_compile.json, or BENCH_exec.json)")
	}
}

// parseBenchCompile maps BENCH_compile.json results onto compile-sweep
// rows: "synth/s=K" gates the production engine's (analytic) row at the
// config's (m, n) on dpcost (-> mincost) and segments. Non-synthetic
// entries (gauss/jacobi/sor compile timings) have no compile-sweep row
// and are dropped here; Compare never sees them.
func parseBenchCompile(results []map[string]any, m, n int) ([]baseRow, error) {
	var out []baseRow
	for _, r := range results {
		name, _ := r["name"].(string)
		var s int
		if _, err := fmt.Sscanf(name, "synth/s=%d", &s); err != nil {
			continue
		}
		metrics := map[string]float64{}
		if v, ok := num(r["dpcost"]); ok {
			metrics["mincost"] = v
		}
		if v, ok := num(r["segments"]); ok {
			metrics["segments"] = v
		}
		out = append(out, baseRow{variant: "analytic", m: m, n: n, s: s, metrics: metrics})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no synth/s=K entries in compile bench baseline")
	}
	return out, nil
}

// parseBenchExec maps BENCH_exec.json results onto the batched arm of
// the exec sweep at the config's (m, n).
func parseBenchExec(results []map[string]any, m, n int) ([]baseRow, error) {
	rename := map[string]string{
		"simtime":            "simtime",
		"naive_messages":     "messages",
		"words":              "words",
		"transport_messages": "transport_messages",
		"transport_words":    "transport_words",
		"max_msg_words":      "max_msg_words",
		"max_pair_messages":  "max_pair_messages",
		"max_pair_words":     "max_pair_words",
	}
	var out []baseRow
	for _, r := range results {
		prog, _ := r["prog"].(string)
		if prog == "" {
			continue
		}
		metrics := map[string]float64{}
		for from, to := range rename {
			if v, ok := num(r[from]); ok {
				metrics[to] = v
			}
		}
		out = append(out, baseRow{variant: prog + "/batched", m: m, n: n, metrics: metrics})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no prog entries in exec bench baseline")
	}
	return out, nil
}

// parseBenchScale maps BENCH_scale.json results onto scale-sweep rows:
// each result carries its own prog, engine and n (the family spans
// many processor counts); m comes from the config. Wall-clock fields
// (wall_ns, sim_ns, speedup) are in the file for documentation but are
// filtered by comparable() like every other ephemeral column.
func parseBenchScale(results []map[string]any, m int) ([]baseRow, error) {
	var out []baseRow
	for _, r := range results {
		prog, _ := r["prog"].(string)
		engine, _ := r["engine"].(string)
		nv, ok := num(r["n"])
		if prog == "" || engine == "" || !ok {
			continue
		}
		metrics := map[string]float64{}
		for k, v := range r {
			if k == "prog" || k == "engine" || k == "n" || !comparable(k) {
				continue
			}
			if f, ok := num(v); ok {
				metrics[k] = f
			}
		}
		out = append(out, baseRow{variant: prog + "/" + engine, m: m, n: int(nv), metrics: metrics})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no prog/engine/n entries in scale bench baseline")
	}
	return out, nil
}

func num(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}
