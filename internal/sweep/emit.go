// CSV and JSON emission. CSV keeps the historical per-kind column
// layouts (including wall-clock columns); JSON carries only the
// deterministic metrics, with rows in canonical (variant, m, N, s)
// order and map keys sorted by encoding/json — so two sweeps of the
// same grid emit byte-identical JSON whether their points were computed
// or read from the cache.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSONRow is the wire form of a Row.
type JSONRow struct {
	Variant string             `json:"variant"`
	M       int                `json:"m"`
	N       int                `json:"n"`
	S       int                `json:"s,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// JSONOutput is the -json document; it doubles as a baseline file
// format for -baseline.
type JSONOutput struct {
	Sweep string    `json:"sweep"`
	Rows  []JSONRow `json:"rows"`
}

// JSON returns the result's canonical JSON document.
func (r *Result) JSON() ([]byte, error) {
	out := JSONOutput{Sweep: r.Kind, Rows: make([]JSONRow, len(r.Rows))}
	for i, row := range r.Rows {
		out.Rows[i] = JSONRow{Variant: row.Variant, M: row.M, N: row.N, S: row.S, Metrics: row.Metrics}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON emits the canonical JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteCSV emits the historical CSV layout for the result's kind.
func (r *Result) WriteCSV(w io.Writer) error {
	for _, c := range r.Comments {
		if _, err := fmt.Fprintln(w, c); err != nil {
			return err
		}
	}
	switch r.Kind {
	case "compile":
		fmt.Fprintln(w, "engine,s,m,n,compile_ns,segments,mincost")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%.0f\n",
				row.Variant, row.S, row.M, row.N,
				int64(row.Wall["compile_ns"]),
				int64(row.Metrics["segments"]), row.Metrics["mincost"])
		}
	case "symbolic":
		fmt.Fprintln(w, "prog,n,m,total,exec,redist,loopcarried,eval_ns")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%s,%d,%d,%.0f,%.0f,%.0f,%.0f,%d\n",
				row.Variant, row.N, row.M,
				row.Metrics["total"], row.Metrics["exec"],
				row.Metrics["redist"], row.Metrics["loopcarried"],
				int64(row.Wall["eval_ns"]))
		}
	case "exec":
		fmt.Fprintln(w, "prog,engine,m,n,wall_ns,simtime,messages,words,transport_messages,transport_words,max_msg_words,max_pair_messages,max_pair_words")
		for _, row := range r.Rows {
			prog, engine := splitVariant(row.Variant)
			fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.0f,%d,%d,%d,%d,%d,%d,%d\n",
				prog, engine, row.M, row.N,
				int64(row.Wall["wall_ns"]), row.Metrics["simtime"],
				int64(row.Metrics["messages"]), int64(row.Metrics["words"]),
				int64(row.Metrics["transport_messages"]), int64(row.Metrics["transport_words"]),
				int64(row.Metrics["max_msg_words"]),
				int64(row.Metrics["max_pair_messages"]), int64(row.Metrics["max_pair_words"]))
		}
	case "scale":
		fmt.Fprintln(w, "prog,engine,m,n,wall_ns,sim_ns,simtime,messages,words,transport_messages,transport_words,max_pair_messages,max_pair_words")
		for _, row := range r.Rows {
			prog, engine := splitVariant(row.Variant)
			fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%.0f,%d,%d,%d,%d,%d,%d\n",
				prog, engine, row.M, row.N,
				int64(row.Wall["wall_ns"]), int64(row.Wall["sim_ns"]),
				row.Metrics["simtime"],
				int64(row.Metrics["messages"]), int64(row.Metrics["words"]),
				int64(row.Metrics["transport_messages"]), int64(row.Metrics["transport_words"]),
				int64(row.Metrics["max_pair_messages"]), int64(row.Metrics["max_pair_words"]))
		}
	default: // kernel sweeps
		fmt.Fprintln(w, "variant,m,n,simtime,words,maxflops")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%s,%d,%d,%.0f,%d,%d\n",
				row.Variant, row.M, row.N, row.Metrics["simtime"],
				int64(row.Metrics["words"]), int64(row.Metrics["maxflops"]))
		}
	}
	return nil
}

// splitVariant splits a "prog/engine" variant; the engine part is empty
// when there is no slash.
func splitVariant(v string) (prog, engine string) {
	if i := strings.IndexByte(v, '/'); i >= 0 {
		return v[:i], v[i+1:]
	}
	return v, ""
}
