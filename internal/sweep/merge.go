// Shard merging: reassembling one canonical sweep result from the JSON
// outputs of sharded runs (Options.Shard/ShardCount). Shards partition
// the canonical point order, so the merge is a disjoint union — any
// duplicate row identity means the inputs were not shards of one sweep
// and is an error, not a silent overwrite. The merged result re-sorts
// into canonical order and therefore emits JSON byte-identical to the
// unsharded run (JSON carries only deterministic metrics; wall-clock
// columns and CSV comments die with the shard that produced them).
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
)

// MergeFiles reads sharded -json outputs and reassembles the full
// sweep. All inputs must be the same sweep kind.
func MergeFiles(paths []string) (*Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("merge: no input files")
	}
	res := &Result{}
	type ident struct {
		variant string
		m, n, s int
	}
	seen := map[ident]string{} // row identity -> source path
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		var doc JSONOutput
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("merge: %s: %w", path, err)
		}
		if res.Kind == "" {
			res.Kind = doc.Sweep
		} else if doc.Sweep != res.Kind {
			return nil, fmt.Errorf("merge: %s is a %q sweep, want %q", path, doc.Sweep, res.Kind)
		}
		for _, row := range doc.Rows {
			id := ident{row.Variant, row.M, row.N, row.S}
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("merge: row %s m=%d n=%d s=%d appears in both %s and %s (inputs are not disjoint shards)",
					row.Variant, row.M, row.N, row.S, prev, path)
			}
			seen[id] = path
			res.Rows = append(res.Rows, Row{
				Variant: row.Variant, M: row.M, N: row.N, S: row.S, Metrics: row.Metrics,
			})
		}
	}
	SortRows(res.Rows)
	return res, nil
}
