// Package sweep is the engine behind cmd/dmsweep: it runs the four
// sweep families (kernel simulations, compile-time scaling, symbolic
// m-sweeps, exec-backend comparisons) as uniform lists of points, each
// producing one Row of deterministic metrics plus ephemeral wall-clock
// columns.
//
// Points are content-addressed: with a cache attached (Options.Cache),
// every point's deterministic metrics are stored in the artifact store
// under a key derived from the program hash, the parameter binding, the
// engine flags and the machine fingerprint, so a warm sweep re-reads
// results instead of recompiling or re-simulating. Concurrent workers
// (Options.Workers) computing the same key collapse to one computation
// through the store's single-flight layer. Rows are sorted by (variant,
// m, N, s), so cached and fresh sweeps emit byte-identical JSON and a
// committed baseline can be diffed row by row (see baseline.go).
package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"dmcc/internal/artifact"
	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/exec"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// Row is one sweep point. Metrics are deterministic (simulated costs
// and counts — what gets cached, emitted as JSON, and gated against
// baselines); Wall carries ephemeral wall-clock columns that appear
// only in CSV output.
type Row struct {
	Variant string
	M, N, S int
	Metrics map[string]float64
	Wall    map[string]float64
}

// Result is one finished sweep.
type Result struct {
	Kind string
	Rows []Row
	// Comments are CSV-only preamble lines (the symbolic sweep's fitted
	// formulas).
	Comments []string
}

// Options configures a sweep run.
type Options struct {
	// Cache, when non-nil, memoizes every point's metrics — on disk, or
	// through a tiered backend that also consults a peer daemon's store.
	Cache artifact.Backend
	// Jobs is the within-compile worker count (Compiler.Jobs).
	Jobs int
	// Workers is the point-level parallelism (1 = serial).
	Workers int
	// Warnf receives non-fatal diagnostics; nil silences them.
	Warnf func(format string, args ...any)
	// NoPipeline disables the vectored two-phase / ring reduction
	// exchange in the exec sweep's batched engine (exec.Options), for
	// A/B comparisons against the pre-pipelining transport. Part of the
	// cache key, so both variants coexist in the store.
	NoPipeline bool
	// Redist picks the batched engine's operand-ship lowering for the
	// exec and scale families (exec.Options.Redist): the collective
	// redistribution (the default) or the point-to-point exchange, for
	// A/B comparisons. The collective lowering is keyed explicitly in
	// the artifact store; the p2p key matches the pre-collective one,
	// whose cached transport numbers it reproduces.
	Redist exec.Redist
	// Shard/ShardCount split a sweep across processes: with ShardCount >
	// 1, only points whose index in the canonical (variant, m, n, s)
	// order satisfies i % ShardCount == Shard are run. Shards are
	// disjoint and cover the sweep, so merging their outputs (see
	// MergeFiles) reproduces the unsharded result byte-for-byte.
	Shard, ShardCount int
}

func (o Options) warnf(format string, args ...any) {
	if o.Warnf != nil {
		o.Warnf(format, args...)
	}
}

// point is one unit of sweep work: fixed row identity, a cache key, and
// the computation producing the row's metrics.
type point struct {
	variant string
	m, n, s int
	key     string // "" = never cached
	wallCol string // name of the wall-clock column, "" = none
	compute func() (map[string]float64, error)
	// moreWall, when non-nil, supplies extra ephemeral wall-clock
	// columns after compute ran (empty on a warm cache, where compute is
	// skipped — wall columns are never cached).
	moreWall func() map[string]float64
}

// runPoints executes points (concurrently when Options.Workers > 1),
// consulting the cache when attached, and returns rows sorted by
// (variant, m, n, s).
func runPoints(pts []point, opt Options) ([]Row, error) {
	pts = shardPoints(pts, opt)
	rows := make([]Row, len(pts))
	errs := make([]error, len(pts))
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idx {
				rows[i], errs[i] = runPoint(pts[i], opt)
			}
		}()
	}
	for i := range pts {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	SortRows(rows)
	return rows, nil
}

// shardPoints returns this process's share of the points. Assignment is
// by index in the canonical (variant, m, n, s) order — not generation
// order — so every shard of a sweep agrees on the split no matter how
// the point list was built.
func shardPoints(pts []point, opt Options) []point {
	if opt.ShardCount <= 1 {
		return pts
	}
	sorted := append([]point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.variant != b.variant {
			return a.variant < b.variant
		}
		if a.m != b.m {
			return a.m < b.m
		}
		if a.n != b.n {
			return a.n < b.n
		}
		return a.s < b.s
	})
	var mine []point
	for i, pt := range sorted {
		if i%opt.ShardCount == opt.Shard {
			mine = append(mine, pt)
		}
	}
	return mine
}

func runPoint(pt point, opt Options) (Row, error) {
	start := time.Now()
	metrics, err := cachedMetrics(pt, opt)
	if err != nil {
		return Row{}, err
	}
	row := Row{Variant: pt.variant, M: pt.m, N: pt.n, S: pt.s, Metrics: metrics}
	if pt.wallCol != "" {
		row.Wall = map[string]float64{pt.wallCol: float64(time.Since(start).Nanoseconds())}
	}
	if pt.moreWall != nil {
		for k, v := range pt.moreWall() {
			if row.Wall == nil {
				row.Wall = map[string]float64{}
			}
			row.Wall[k] = v
		}
	}
	return row, nil
}

func cachedMetrics(pt point, opt Options) (map[string]float64, error) {
	if opt.Cache == nil || pt.key == "" {
		return pt.compute()
	}
	payload, _, err := opt.Cache.GetOrCompute(pt.key, func() ([]byte, error) {
		m, err := pt.compute()
		if err != nil {
			return nil, err
		}
		return json.Marshal(m) // map keys marshal sorted: deterministic
	})
	if err != nil {
		return nil, err
	}
	var m map[string]float64
	if err := json.Unmarshal(payload, &m); err != nil {
		// The record passed its checksum but does not decode — a payload
		// schema change that slipped past SchemaVersion. Recompute.
		opt.warnf("sweep: undecodable cached metrics for %s (%v); recomputing", pt.variant, err)
		return pt.compute()
	}
	return m, nil
}

// SortRows orders rows by (variant, m, n, s) — the canonical emission
// order shared by CSV, JSON and baseline matching.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		if a.M != b.M {
			return a.M < b.M
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.S < b.S
	})
}

// ------------------------------------------------------------ kernels --

// Kernel runs the simulated-kernel sweeps (sor, gauss, jacobi, stencil,
// chunks) over the (m, n) grid.
func Kernel(kind string, mList, nList []int, opt Options) (*Result, error) {
	cfg := machine.DefaultConfig()
	var pts []point
	add := func(variant string, m, n int, c machine.Config, run func() (machine.Stats, error)) {
		pts = append(pts, point{
			variant: variant, m: m, n: n,
			key: artifact.KeyOf("kind=kernel", "variant="+variant,
				fmt.Sprintf("m=%d", m), fmt.Sprintf("n=%d", n), "machine="+c.Fingerprint()),
			compute: func() (map[string]float64, error) {
				st, err := run()
				if err != nil {
					return nil, err
				}
				return map[string]float64{
					"simtime":  st.ParallelTime,
					"words":    float64(st.Words),
					"maxflops": float64(st.MaxFlops()),
				}, nil
			},
		})
	}
	for _, m := range mList {
		for _, n := range nList {
			m, n := m, n
			switch kind {
			case "sor":
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				x0 := make([]float64, m)
				add("sor-naive", m, n, cfg, func() (machine.Stats, error) {
					r, err := kernels.SORNaive(cfg, a, b, x0, 1.2, 2, n)
					return r.Stats, err
				})
				add("sor-pipelined", m, n, cfg, func() (machine.Stats, error) {
					r, err := kernels.SORPipelined(cfg, a, b, x0, 1.2, 2, n)
					return r.Stats, err
				})
			case "gauss":
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				add("gauss-broadcast", m, n, cfg, func() (machine.Stats, error) {
					r, err := kernels.GaussBroadcast(cfg, a, b, n)
					return r.Stats, err
				})
				add("gauss-pipelined", m, n, cfg, func() (machine.Stats, error) {
					r, err := kernels.GaussPipelined(cfg, a, b, n)
					return r.Stats, err
				})
				add("gauss-pivoting", m, n, cfg, func() (machine.Stats, error) {
					r, err := kernels.GaussPartialPivot(cfg, a, b, n)
					return r.Stats, err
				})
			case "jacobi":
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				x0 := make([]float64, m)
				for _, shape := range [][2]int{{1, n}, {n, 1}} {
					shape := shape
					add(fmt.Sprintf("jacobi-%dx%d", shape[0], shape[1]), m, n, cfg, func() (machine.Stats, error) {
						r, err := kernels.JacobiGrid(cfg, a, b, x0, 2, shape[0], shape[1])
						return r.Stats, err
					})
				}
			case "stencil":
				u0 := matrix.RandomDense(m, m, 1)
				if sq := isqrt(n); sq*sq == n {
					add("stencil2d-square", m, n, cfg, func() (machine.Stats, error) {
						_, st, err := kernels.Stencil2D(cfg, u0, 4, sq, sq)
						return st, err
					})
				}
				add("stencil2d-strip", m, n, cfg, func() (machine.Stats, error) {
					_, st, err := kernels.Stencil2D(cfg, u0, 4, 1, n)
					return st, err
				})
			case "chunks":
				a, b, _ := matrix.DiagonallyDominant(m, 1)
				x0 := make([]float64, m)
				for _, alpha := range []float64{0, 16} {
					for chunk := 1; chunk <= m/n; chunk *= 2 {
						if (m/n)%chunk != 0 {
							continue
						}
						alpha, chunk := alpha, chunk
						c := cfg
						c.Alpha = alpha
						add(fmt.Sprintf("sor-chunk%d-alpha%.0f", chunk, alpha), m, n, c, func() (machine.Stats, error) {
							r, err := kernels.SORPipelinedChunked(c, a, b, x0, 1.2, 2, n, chunk)
							return r.Stats, err
						})
					}
				}
			default:
				return nil, fmt.Errorf("unknown sweep %q", kind)
			}
		}
	}
	rows, err := runPoints(pts, opt)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: kind, Rows: rows}, nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// ------------------------------------------------------------ compile --

// CompileEngines are the cost-engine configurations of the compile
// sweep, in emission order.
var CompileEngines = []string{"analytic", "pr1", "exact"}

// newCompileCompiler builds the compiler for one compile-sweep point.
func newCompileCompiler(engine string, s, m, n, jobs int) *core.Compiler {
	p := ir.Synthetic(s)
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	c.Jobs = jobs
	switch engine {
	case "pr1":
		c.ExactNestCount = true
	case "exact":
		c.ExactNestCount = true
		c.ExactChangeCost = true
		c.NoCache = true
	}
	return c
}

// Compile measures the compile pipeline on synthetic nest sequences of
// the given lengths, per engine.
func Compile(mList, nList, sList []int, opt Options) (*Result, error) {
	var pts []point
	for _, s := range sList {
		for _, m := range mList {
			for _, n := range nList {
				for _, engine := range CompileEngines {
					s, m, n, engine := s, m, n, engine
					pts = append(pts, point{
						variant: engine, m: m, n: n, s: s,
						key: artifact.KeyOf("kind=compile", "engine="+engine,
							newCompileCompiler(engine, s, m, n, opt.Jobs).CacheKey()),
						wallCol: "compile_ns",
						compute: func() (map[string]float64, error) {
							res, err := newCompileCompiler(engine, s, m, n, opt.Jobs).Compile()
							if err != nil {
								return nil, err
							}
							return map[string]float64{
								"segments": float64(len(res.DP.Segments)),
								"mincost":  res.DP.MinimumCost,
							}, nil
						},
					})
				}
			}
		}
	}
	rows, err := runPoints(pts, opt)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "compile", Rows: rows}, nil
}

// ----------------------------------------------------------- symbolic --

// symbolicBaseM places the base size in the asymptotic regime: below
// (n-1)^2 + n the last processor's block under ceil(m/n) partitioning
// is still empty, and counts only become piecewise polynomial once
// every block is populated.
func symbolicBaseM(n int) int {
	baseM := n * n
	if baseM < 4*n {
		baseM = 4 * n
	}
	return baseM
}

// Symbolic runs the closed-form m-sweep: compile once per (program, N)
// — or thaw the frozen plan from the cache — fit piecewise polynomials
// in m, and price every m by evaluating them. The frozen plan (plus
// fits) is the cached artifact; per-point evaluation is O(degree) and
// never cached.
func Symbolic(mList, nList []int, opt Options) (*Result, error) {
	res := &Result{Kind: "symbolic"}
	// The unit of symbolic work is one (program, N) compile+fit, so
	// sharding splits that list: per-m evaluations are microseconds and
	// ride with their plan.
	type unit struct {
		mk func() *ir.Program
		n  int
	}
	var units []unit
	for _, mk := range []func() *ir.Program{ir.Jacobi, ir.SOR, ir.Gauss} {
		for _, n := range nList {
			units = append(units, unit{mk, n})
		}
	}
	for i, u := range units {
		if opt.ShardCount > 1 && i%opt.ShardCount != opt.Shard {
			continue
		}
		{
			n := u.n
			p := u.mk()
			baseM := symbolicBaseM(n)
			c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": baseM}, n)
			c.Jobs = opt.Jobs
			pe, fitErr, _, err := PlanFor(c, baseM, opt)
			if err != nil {
				return nil, err
			}
			if fitErr != "" {
				res.Comments = append(res.Comments,
					fmt.Sprintf("# %s n=%d: %s; evaluating per point instead", p.Name, n, fitErr))
			}
			for _, f := range pe.Formulas() {
				res.Comments = append(res.Comments, fmt.Sprintf("# %s n=%d %s", p.Name, n, f))
			}
			for _, m := range mList {
				start := time.Now()
				pc, err := pe.EvalAt(m)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Row{
					Variant: p.Name, M: m, N: n,
					Metrics: map[string]float64{
						"total": pc.Total(), "exec": pc.Exec,
						"redist": pc.Redist, "loopcarried": pc.LoopCarried,
					},
					Wall: map[string]float64{"eval_ns": float64(time.Since(start).Nanoseconds())},
				})
			}
		}
	}
	SortRows(res.Rows)
	return res, nil
}

// PlanKey is the artifact-store key under which the compiler's frozen,
// fitted plan is cached. It is shared between the symbolic sweep and
// the dmccd daemon (internal/serve), so a plan compiled by either is a
// warm hit for the other.
func PlanKey(c *core.Compiler, baseM int) string {
	return artifact.KeyOf("kind=planfit", c.CacheKey(), fmt.Sprintf("fit=minM%d,deg3,val2", baseM))
}

// PlanFor returns a ready PlanEvaluator for the compiler — thawed from
// the artifact store when possible, otherwise compiled, fitted and
// frozen into the store under PlanKey. cached reports whether the plan
// came from the store rather than a fresh compile; fitErr records why
// symbolic fitting was declined (the evaluator then prices points
// through the analytic engine — still never the DP).
func PlanFor(c *core.Compiler, baseM int, opt Options) (pe *core.PlanEvaluator, fitErr string, cached bool, err error) {
	build := func() (*core.PlanEvaluator, string, error) {
		pe, err := core.NewPlanEvaluator(c)
		if err != nil {
			return nil, "", err
		}
		// Some plans have a pre-polynomial transient (counts settle into
		// a fixed polynomial only past some size); retry the fit from
		// higher floors before declining. EvalAt prices sizes below the
		// accepted floor numerically, so a raised floor stays exact.
		fitErr := ""
		for _, minM := range []int{baseM, 2 * baseM, 4 * baseM} {
			if err := pe.Fit(minM, 3, 2); err != nil {
				fitErr = err.Error()
				continue
			}
			fitErr = ""
			break
		}
		return pe, fitErr, nil
	}
	if opt.Cache == nil {
		pe, fitErr, err = build()
		return pe, fitErr, false, err
	}
	payload, cached, err := opt.Cache.GetOrCompute(PlanKey(c, baseM), func() ([]byte, error) {
		var err error
		pe, fitErr, err = build()
		if err != nil {
			return nil, err
		}
		fp := pe.Freeze()
		fp.FitErr = fitErr
		return json.Marshal(fp)
	})
	if err != nil {
		return nil, "", false, err
	}
	if pe != nil && !cached {
		return pe, fitErr, false, nil // we computed it in this flight
	}
	var fp core.FrozenPlan
	if err := json.Unmarshal(payload, &fp); err != nil {
		opt.warnf("sweep: undecodable frozen plan (%v); recompiling", err)
		pe, fitErr, err = build()
		return pe, fitErr, false, err
	}
	thawed, err := core.Thaw(c, &fp)
	if err != nil {
		opt.warnf("sweep: stale frozen plan (%v); recompiling", err)
		pe, fitErr, err = build()
		return pe, fitErr, false, err
	}
	return thawed, fp.FitErr, true, nil
}

// --------------------------------------------------------------- exec --

// execProgs are the exec-sweep workloads: the three paper programs with
// their scalar bindings and iteration counts.
var execProgs = []struct {
	name    string
	mk      func() *ir.Program
	scalars map[string]float64
	iters   int
	x0      bool
}{
	{"jacobi", ir.Jacobi, nil, 2, true},
	{"sor", ir.SOR, map[string]float64{"OMEGA": 1.2}, 2, true},
	{"gauss", ir.Gauss, nil, 1, false},
}

// Exec compares the batched exec backend against the per-element
// RunExact oracle on the three paper programs.
func Exec(mList, nList []int, opt Options) (*Result, error) {
	var pts []point
	for _, pr := range execProgs {
		for _, m := range mList {
			for _, n := range nList {
				pr, m, n := pr, m, n
				for _, engine := range []string{"batched", "exact"} {
					engine := engine
					cfg := machine.DefaultConfig()
					if engine == "exact" {
						// The per-element oracle needs its channel capacity
						// raised to the largest per-pair burst — the deadlock
						// crutch the batched engine removes.
						cfg.ChanCap = m * m
					}
					keyParts := []string{"kind=exec", "prog=" + core.ProgramHash(pr.mk()),
						"engine=" + engine, fmt.Sprintf("m=%d", m), fmt.Sprintf("n=%d", n),
						fmt.Sprintf("iters=%d;omega=%g", pr.iters, pr.scalars["OMEGA"]),
						"machine=" + cfg.Fingerprint()}
					if engine == "batched" && opt.NoPipeline {
						// The p2p/pipelined key stays byte-stable so
						// pre-existing cache entries remain valid.
						keyParts = append(keyParts, "pipeline=off")
					}
					if engine == "batched" && opt.Redist != exec.RedistP2P {
						// The collective lowering changes the transport
						// metrics, so it gets its own key; the p2p arm keeps
						// the pre-collective key whose numbers it reproduces.
						keyParts = append(keyParts, "redist=collective")
					}
					noPipe, redist := opt.NoPipeline, opt.Redist
					pts = append(pts, point{
						variant: pr.name + "/" + engine, m: m, n: n,
						key:     artifact.KeyOf(keyParts...),
						wallCol: "wall_ns",
						compute: func() (map[string]float64, error) {
							return execPoint(pr.mk(), pr.scalars, pr.iters, pr.x0, engine, m, n, cfg, noPipe, redist)
						},
					})
				}
			}
		}
	}
	rows, err := runPoints(pts, opt)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "exec", Rows: rows}, nil
}

// -------------------------------------------------------------- scale --

// ScaleGoroutineCapN is the largest processor count at which the scale
// sweep still runs the goroutine-runtime arm. Beyond it the P x P
// channel matrix alone (P^2 buffered channels) makes the live runtime
// pointless to measure — at N=1024 that is 1M channels before the first
// message moves — so only the event engine's arm is produced.
const ScaleGoroutineCapN = 256

// Scale runs the large-N engine-scaling family: the three exec programs
// on the batched backend, executed by the discrete-event runtime at
// every N and by the goroutine runtime up to ScaleGoroutineCapN. The
// two arms' deterministic metrics are identical (the engines are
// bit-equivalent); the point of the family is the ephemeral wall-clock
// columns — wall_ns for the whole point and sim_ns for the
// engine-dependent phase alone — which show the event engine's scaling
// advantage. The engine name is part of the artifact cache key, so both
// arms coexist in the store.
func Scale(mList, nList []int, opt Options) (*Result, error) {
	cfg := machine.DefaultConfig()
	var pts []point
	for _, pr := range execProgs {
		for _, m := range mList {
			for _, n := range nList {
				pr, m, n := pr, m, n
				for _, engine := range []exec.Engine{exec.EngineEvents, exec.EngineGoroutines} {
					engine := engine
					if engine == exec.EngineGoroutines && n > ScaleGoroutineCapN {
						opt.warnf("scale: skipping %s/goroutines at n=%d (> cap %d)", pr.name, n, ScaleGoroutineCapN)
						continue
					}
					keyParts := []string{"kind=scale", "prog=" + core.ProgramHash(pr.mk()),
						"engine=" + engine.String(), fmt.Sprintf("m=%d", m), fmt.Sprintf("n=%d", n),
						fmt.Sprintf("iters=%d;omega=%g", pr.iters, pr.scalars["OMEGA"]),
						"machine=" + cfg.Fingerprint()}
					if opt.Redist != exec.RedistP2P {
						keyParts = append(keyParts, "redist=collective")
					}
					redist := opt.Redist
					var simNS float64
					pts = append(pts, point{
						variant: pr.name + "/" + engine.String(), m: m, n: n,
						key:     artifact.KeyOf(keyParts...),
						wallCol: "wall_ns",
						compute: func() (map[string]float64, error) {
							return scalePoint(pr.mk(), pr.scalars, pr.iters, pr.x0, engine, m, n, cfg, redist, &simNS)
						},
						moreWall: func() map[string]float64 {
							if simNS == 0 {
								return nil
							}
							return map[string]float64{"sim_ns": simNS}
						},
					})
				}
			}
		}
	}
	rows, err := runPoints(pts, opt)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "scale", Rows: rows}, nil
}

func scalePoint(p *ir.Program, scalars map[string]float64, iters int, x0 bool, engine exec.Engine, m, n int, cfg machine.Config, redist exec.Redist, simNS *float64) (map[string]float64, error) {
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		return nil, err
	}
	a, b, _ := matrix.DiagonallyDominant(m, 1)
	input := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, b[i-1])
		if x0 {
			input.Store("X", []int{i}, 0)
		}
	}
	res, err := exec.RunOpts(p, ss, map[string]int{"m": m}, scalars, iters, cfg, input,
		exec.Options{Engine: engine, Redist: redist})
	if err != nil {
		return nil, err
	}
	*simNS = float64(res.SimWall.Nanoseconds())
	return map[string]float64{
		"simtime":            res.Stats.ParallelTime,
		"messages":           float64(res.Stats.Messages),
		"words":              float64(res.Stats.Words),
		"transport_messages": float64(res.Transport.Messages),
		"transport_words":    float64(res.Transport.Words),
		"max_msg_words":      float64(res.Transport.MaxMsgWords),
		"max_pair_messages":  float64(res.Transport.MaxPairMessages),
		"max_pair_words":     float64(res.Transport.MaxPairWords),
	}, nil
}

func execPoint(p *ir.Program, scalars map[string]float64, iters int, x0 bool, engine string, m, n int, cfg machine.Config, noPipe bool, redist exec.Redist) (map[string]float64, error) {
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		return nil, err
	}
	a, b, _ := matrix.DiagonallyDominant(m, 1)
	input := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, b[i-1])
		if x0 {
			input.Store("X", []int{i}, 0)
		}
	}
	bind := map[string]int{"m": m}
	var res exec.Result
	if engine == "exact" {
		res, err = exec.RunExact(p, ss, bind, scalars, iters, cfg, input)
	} else {
		res, err = exec.RunOpts(p, ss, bind, scalars, iters, cfg, input,
			exec.Options{NoPipeline: noPipe, Redist: redist})
	}
	if err != nil {
		return nil, err
	}
	return map[string]float64{
		"simtime":            res.Stats.ParallelTime,
		"messages":           float64(res.Stats.Messages),
		"words":              float64(res.Stats.Words),
		"transport_messages": float64(res.Transport.Messages),
		"transport_words":    float64(res.Transport.Words),
		"max_msg_words":      float64(res.Transport.MaxMsgWords),
		"max_pair_messages":  float64(res.Transport.MaxPairMessages),
		"max_pair_words":     float64(res.Transport.MaxPairWords),
	}, nil
}
