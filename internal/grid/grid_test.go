package grid

import (
	"testing"
	"testing/quick"
)

func TestNewAndBasicProps(t *testing.T) {
	g := New(4, 4)
	if g.Q() != 2 {
		t.Fatalf("Q = %d, want 2", g.Q())
	}
	if g.Size() != 16 {
		t.Fatalf("Size = %d, want 16", g.Size())
	}
	if g.Extent(0) != 4 || g.Extent(1) != 4 {
		t.Fatalf("Extent = %d,%d, want 4,4", g.Extent(0), g.Extent(1))
	}
	if got := g.String(); got != "4x4 grid (16 processors)" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, dims := range [][]int{{}, {0}, {4, -1}, {4, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", dims)
				}
			}()
			New(dims...)
		}()
	}
}

func TestRankTupleRoundTrip(t *testing.T) {
	shapes := [][]int{{1}, {7}, {4, 4}, {2, 3, 5}, {1, 8}, {8, 1}, {2, 2, 2, 2}}
	for _, shape := range shapes {
		g := New(shape...)
		for r := 0; r < g.Size(); r++ {
			tup := g.Tuple(r)
			if got := g.Rank(tup...); got != r {
				t.Fatalf("shape %v: Rank(Tuple(%d)) = %d", shape, r, got)
			}
			for d := range shape {
				if g.Coord(r, d) != tup[d] {
					t.Fatalf("shape %v rank %d: Coord(%d) = %d, want %d", shape, r, d, g.Coord(r, d), tup[d])
				}
			}
		}
	}
}

func TestRankRowMajorOrder(t *testing.T) {
	g := New(3, 4)
	// Row-major: rank = p1*4 + p2.
	if g.Rank(0, 0) != 0 || g.Rank(0, 3) != 3 || g.Rank(1, 0) != 4 || g.Rank(2, 3) != 11 {
		t.Fatalf("row-major ranks wrong: %d %d %d %d",
			g.Rank(0, 0), g.Rank(0, 3), g.Rank(1, 0), g.Rank(2, 3))
	}
}

func TestRankPanics(t *testing.T) {
	g := New(2, 2)
	for _, tup := range [][]int{{0}, {0, 0, 0}, {2, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rank(%v) did not panic", tup)
				}
			}()
			g.Rank(tup...)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Tuple(-1) did not panic")
			}
		}()
		g.Tuple(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Tuple(size) did not panic")
			}
		}()
		g.Tuple(4)
	}()
}

func TestNeighbours(t *testing.T) {
	g := New(4)
	if g.NeighbourPlus(0, 0) != 1 || g.NeighbourPlus(3, 0) != 0 {
		t.Fatal("ring + neighbours wrong")
	}
	if g.NeighbourMinus(0, 0) != 3 || g.NeighbourMinus(2, 0) != 1 {
		t.Fatal("ring - neighbours wrong")
	}
	g2 := New(3, 4)
	r := g2.Rank(1, 3)
	if g2.NeighbourPlus(r, 1) != g2.Rank(1, 0) {
		t.Fatal("2-D wraparound in dim 1 wrong")
	}
	if g2.NeighbourPlus(r, 0) != g2.Rank(2, 3) {
		t.Fatal("2-D + step in dim 0 wrong")
	}
	if g2.NeighbourMinus(g2.Rank(0, 0), 0) != g2.Rank(2, 0) {
		t.Fatal("2-D wraparound in dim 0 wrong")
	}
}

func TestNeighbourInverse(t *testing.T) {
	g := New(3, 5, 2)
	for r := 0; r < g.Size(); r++ {
		for d := 0; d < g.Q(); d++ {
			if g.NeighbourMinus(g.NeighbourPlus(r, d), d) != r {
				t.Fatalf("minus(plus(%d,%d)) != identity", r, d)
			}
		}
	}
}

func TestDimPeers(t *testing.T) {
	g := New(3, 4)
	peers := g.DimPeers(g.Rank(1, 2), 1)
	want := []int{g.Rank(1, 0), g.Rank(1, 1), g.Rank(1, 2), g.Rank(1, 3)}
	if len(peers) != len(want) {
		t.Fatalf("len = %d", len(peers))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peers[%d] = %d, want %d", i, peers[i], want[i])
		}
	}
	peers0 := g.DimPeers(g.Rank(1, 2), 0)
	want0 := []int{g.Rank(0, 2), g.Rank(1, 2), g.Rank(2, 2)}
	for i := range want0 {
		if peers0[i] != want0[i] {
			t.Fatalf("dim0 peers[%d] = %d, want %d", i, peers0[i], want0[i])
		}
	}
}

func TestAllRanks(t *testing.T) {
	g := New(2, 3)
	all := g.AllRanks()
	if len(all) != 6 {
		t.Fatalf("len = %d", len(all))
	}
	for i, r := range all {
		if r != i {
			t.Fatalf("AllRanks[%d] = %d", i, r)
		}
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	for i := 0; i < 255; i++ {
		if HammingDistance(Gray(i), Gray(i+1)) != 1 {
			t.Fatalf("Gray(%d) and Gray(%d) differ in != 1 bit", i, i+1)
		}
	}
}

func TestGrayInverseProperty(t *testing.T) {
	f := func(x uint16) bool {
		i := int(x)
		return GrayInverse(Gray(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayBijectionSmall(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < 1024; i++ {
		g := Gray(i)
		if seen[g] {
			t.Fatalf("Gray not injective at %d", i)
		}
		seen[g] = true
		if g >= 1024 {
			t.Fatalf("Gray(%d) = %d escapes range", i, g)
		}
	}
}

func TestLog2AndPow2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 1024: 10}
	for n, want := range cases {
		if !IsPowerOfTwo(n) {
			t.Fatalf("IsPowerOfTwo(%d) = false", n)
		}
		if got := Log2(n); got != want {
			t.Fatalf("Log2(%d) = %d, want %d", n, got, want)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12} {
		if IsPowerOfTwo(n) {
			t.Fatalf("IsPowerOfTwo(%d) = true", n)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Log2(3) did not panic")
			}
		}()
		Log2(3)
	}()
}

func TestHypercubeEmbeddingGridNeighbours(t *testing.T) {
	shapes := [][]int{{8}, {4, 4}, {2, 8}, {2, 2, 4}, {16}}
	for _, shape := range shapes {
		g := New(shape...)
		emb, err := g.HypercubeEmbedding()
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		// Labels must be a permutation of 0..size-1.
		seen := make(map[int]bool)
		for _, l := range emb {
			if l < 0 || l >= g.Size() || seen[l] {
				t.Fatalf("shape %v: labels not a permutation", shape)
			}
			seen[l] = true
		}
		// Non-wraparound grid neighbours are hypercube neighbours.
		for r := 0; r < g.Size(); r++ {
			for d := 0; d < g.Q(); d++ {
				if g.Coord(r, d) == g.Extent(d)-1 {
					continue // skip wraparound edge
				}
				nb := g.NeighbourPlus(r, d)
				if HammingDistance(emb[r], emb[nb]) != 1 {
					t.Fatalf("shape %v: grid neighbours %d,%d map to Hamming distance %d",
						shape, r, nb, HammingDistance(emb[r], emb[nb]))
				}
			}
		}
	}
}

func TestHypercubeEmbeddingRejectsNonPow2(t *testing.T) {
	g := New(3, 4)
	if _, err := g.HypercubeEmbedding(); err == nil {
		t.Fatal("expected error for 3x4 grid")
	}
	if _, err := New(6).HypercubeDim(); err == nil {
		t.Fatal("expected error for size 6")
	}
	if d, err := New(4, 4).HypercubeDim(); err != nil || d != 4 {
		t.Fatalf("HypercubeDim(4x4) = %d, %v", d, err)
	}
}

func TestHammingDistance(t *testing.T) {
	if HammingDistance(0, 0) != 0 || HammingDistance(0b1011, 0b0010) != 2 || HammingDistance(255, 0) != 8 {
		t.Fatal("HammingDistance wrong")
	}
}
