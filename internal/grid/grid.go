// Package grid models the abstract target machine of the paper: a q-D
// grid of N1 x N2 x ... x Nq processors (Section 2). A processor is a
// tuple (p1, ..., pq) with 0 <= pi < Ni. The grid can be embedded into a
// hypercube with a binary reflected Gray code, so that processors adjacent
// on the grid are adjacent (single-bit neighbours) on the hypercube.
package grid

import (
	"fmt"
	"strings"
)

// Grid describes a q-dimensional processor grid. The zero value is not
// usable; construct grids with New.
type Grid struct {
	dims []int // Ni per dimension, all >= 1
	size int   // product of dims
	// strides[d] is the rank stride of dimension d in row-major order.
	strides []int
}

// New returns a q-D grid with the given extents. It panics if no extents
// are given or any extent is < 1; grid shapes are compile-time decisions
// in this system and an invalid shape is a programming error.
func New(dims ...int) *Grid {
	if len(dims) == 0 {
		panic("grid: New requires at least one dimension")
	}
	g := &Grid{dims: append([]int(nil), dims...)}
	g.size = 1
	for _, n := range dims {
		if n < 1 {
			panic(fmt.Sprintf("grid: invalid extent %d", n))
		}
		g.size *= n
	}
	g.strides = make([]int, len(dims))
	s := 1
	for d := len(dims) - 1; d >= 0; d-- {
		g.strides[d] = s
		s *= dims[d]
	}
	return g
}

// Dims returns a copy of the per-dimension extents N1..Nq.
func (g *Grid) Dims() []int { return append([]int(nil), g.dims...) }

// Q returns the dimensionality q of the grid.
func (g *Grid) Q() int { return len(g.dims) }

// Size returns the total number of processors N1*...*Nq.
func (g *Grid) Size() int { return g.size }

// Extent returns Ni for dimension d (0-based d).
func (g *Grid) Extent(d int) int { return g.dims[d] }

// Rank maps a processor tuple to its linear rank in row-major order.
// It panics if the tuple has the wrong arity or is out of range.
func (g *Grid) Rank(tuple ...int) int {
	if len(tuple) != len(g.dims) {
		panic(fmt.Sprintf("grid: Rank arity %d, want %d", len(tuple), len(g.dims)))
	}
	r := 0
	for d, p := range tuple {
		if p < 0 || p >= g.dims[d] {
			panic(fmt.Sprintf("grid: coordinate %d out of range [0,%d) in dim %d", p, g.dims[d], d))
		}
		r += p * g.strides[d]
	}
	return r
}

// Tuple maps a linear rank back to the processor tuple.
func (g *Grid) Tuple(rank int) []int {
	if rank < 0 || rank >= g.size {
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, g.size))
	}
	t := make([]int, len(g.dims))
	for d := range g.dims {
		t[d] = rank / g.strides[d]
		rank %= g.strides[d]
	}
	return t
}

// Coord returns coordinate d of the processor with the given rank.
func (g *Grid) Coord(rank, d int) int {
	return (rank / g.strides[d]) % g.dims[d]
}

// NeighbourPlus returns the rank of the processor one step in the +
// direction along dimension d, wrapping around (torus/ring semantics, as
// used by the Shift primitive).
func (g *Grid) NeighbourPlus(rank, d int) int {
	c := g.Coord(rank, d)
	next := (c + 1) % g.dims[d]
	return rank + (next-c)*g.strides[d]
}

// NeighbourMinus returns the rank one step in the - direction along
// dimension d, wrapping around.
func (g *Grid) NeighbourMinus(rank, d int) int {
	c := g.Coord(rank, d)
	prev := (c - 1 + g.dims[d]) % g.dims[d]
	return rank + (prev-c)*g.strides[d]
}

// DimPeers returns the ranks of all processors that agree with rank on
// every coordinate except dimension d, ordered by their coordinate in d.
// This is the processor set over which per-dimension collectives
// (Reduction, OneToManyMulticast, ...) operate.
func (g *Grid) DimPeers(rank, d int) []int {
	base := rank - g.Coord(rank, d)*g.strides[d]
	peers := make([]int, g.dims[d])
	for i := 0; i < g.dims[d]; i++ {
		peers[i] = base + i*g.strides[d]
	}
	return peers
}

// AllRanks returns 0..Size-1.
func (g *Grid) AllRanks() []int {
	r := make([]int, g.size)
	for i := range r {
		r[i] = i
	}
	return r
}

// String renders the grid shape, e.g. "4x4 grid (16 processors)".
func (g *Grid) String() string {
	parts := make([]string, len(g.dims))
	for i, n := range g.dims {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%s grid (%d processors)", strings.Join(parts, "x"), g.size)
}
