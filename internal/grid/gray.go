// Binary reflected Gray codes and hypercube embedding (Section 2 of the
// paper, after Ho [10]): a q-D grid whose extents are powers of two embeds
// into a hypercube so that grid neighbours are hypercube neighbours.
package grid

import "fmt"

// Gray returns the i-th binary reflected Gray code.
func Gray(i int) int { return i ^ (i >> 1) }

// GrayInverse returns the index whose Gray code is g.
func GrayInverse(g int) int {
	n := 0
	for ; g != 0; g >>= 1 {
		n ^= g
	}
	return n
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns log2(n) for a positive power of two n; it panics otherwise.
func Log2(n int) int {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("grid: Log2 of non-power-of-two %d", n))
	}
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// HypercubeEmbedding maps every grid rank to a hypercube node label such
// that processors adjacent along any grid dimension (without wraparound;
// with wraparound too, when the extent is a power of two >= 2, except for
// extent 2 where wraparound equals the single step) differ in exactly one
// bit. It returns an error if any extent is not a power of two.
//
// The embedding concatenates per-dimension binary reflected Gray codes:
// dimension d with extent 2^kd contributes kd bits.
func (g *Grid) HypercubeEmbedding() ([]int, error) {
	bits := make([]int, len(g.dims))
	total := 0
	for d, n := range g.dims {
		if !IsPowerOfTwo(n) {
			return nil, fmt.Errorf("grid: extent %d of dim %d is not a power of two; cannot embed in hypercube", n, d)
		}
		bits[d] = Log2(n)
		total += bits[d]
	}
	_ = total
	emb := make([]int, g.size)
	for r := 0; r < g.size; r++ {
		t := g.Tuple(r)
		label := 0
		for d, c := range t {
			label = label<<bits[d] | Gray(c)
		}
		emb[r] = label
	}
	return emb, nil
}

// HammingDistance returns the number of differing bits between a and b.
func HammingDistance(a, b int) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// HypercubeDim returns the number of hypercube dimensions needed for the
// grid (log2 of the processor count), or an error if the size is not a
// power of two.
func (g *Grid) HypercubeDim() (int, error) {
	if !IsPowerOfTwo(g.size) {
		return 0, fmt.Errorf("grid: size %d is not a power of two", g.size)
	}
	return Log2(g.size), nil
}
