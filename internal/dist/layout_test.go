package dist

import (
	"strings"
	"testing"

	"dmcc/internal/grid"
)

// TestFig1Layouts verifies the owner maps of Fig 1 against the block
// labels printed in the paper. The paper shows a 16x16 array; each 4x4 (or
// coarser) block of equal owners is compared against the figure.
func TestFig1Layouts(t *testing.T) {
	cases := Fig1Cases(16)

	// Expected owner label of the block containing element (i,j), sampled
	// at block corners, transcribed from Fig 1.
	wantBlocks := map[string][][]string{
		// (a): plain 2-D blocks.
		"a": {
			{"00", "01", "02", "03"},
			{"10", "11", "12", "13"},
			{"20", "21", "22", "23"},
			{"30", "31", "32", "33"},
		},
		// (b): row r holds blocks (r, (c-r) mod 4): row 0: 00 03 02 01...
		// Paper prints: 00 03 02 01 / 13 12 11 10 / 22 21 20 23 / 31 30 33 32.
		"b": {
			{"00", "03", "02", "01"},
			{"13", "12", "11", "10"},
			{"22", "21", "20", "23"},
			{"31", "30", "33", "32"},
		},
		// (c): paper prints 00 31 22 13 / 30 21 12 03 / 20 11 02 33 / 10 01 32 23.
		"c": {
			{"00", "31", "22", "13"},
			{"30", "21", "12", "03"},
			{"20", "11", "02", "33"},
			{"10", "01", "32", "23"},
		},
	}

	for _, c := range cases {
		m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
		if err := c.Scheme.Validate(c.Grid, []int{16, 16}); err != nil {
			t.Fatalf("case (%s): %v", c.Name, err)
		}
		// Within any 4x4-aligned block the owner must be uniform for the
		// block-based cases.
		if want, ok := wantBlocks[c.Name]; ok {
			for bi := 0; bi < 4; bi++ {
				for bj := 0; bj < 4; bj++ {
					lbl := m[bi*4][bj*4]
					if lbl != want[bi][bj] {
						t.Errorf("case (%s): block (%d,%d) owner %s, want %s",
							c.Name, bi, bj, lbl, want[bi][bj])
					}
					for i := 0; i < 4; i++ {
						for j := 0; j < 4; j++ {
							if m[bi*4+i][bj*4+j] != lbl {
								t.Errorf("case (%s): block (%d,%d) not uniform", c.Name, bi, bj)
							}
						}
					}
				}
			}
		}
	}
}

func TestFig1CaseD_RowBlocksReplicated(t *testing.T) {
	c := Fig1Cases(16)[3]
	m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
	// Row block r is replicated along grid dim 1: label "r*".
	for i := 0; i < 16; i++ {
		want := string(rune('0'+i/4)) + "*"
		for j := 0; j < 16; j++ {
			if m[i][j] != want {
				t.Fatalf("(d) m[%d][%d] = %s, want %s", i, j, m[i][j], want)
			}
		}
	}
}

func TestFig1CaseE_DecreasingRowBlocks(t *testing.T) {
	c := Fig1Cases(16)[4]
	m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
	// First row block -> processor (0,3), last -> (0,0).
	if m[0][0] != "03" || m[15][15] != "00" || m[4][0] != "02" {
		t.Fatalf("(e) corners: %s %s %s", m[0][0], m[15][15], m[4][0])
	}
}

func TestFig1CaseF_BlockCyclicRows(t *testing.T) {
	c := Fig1Cases(16)[5]
	m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
	// f(i) = floor((i-1)/2) mod 4: rows 1,2 -> 0; 3,4 -> 1; ...; 9,10 -> 0 again.
	wants := []string{"00", "00", "10", "10", "20", "20", "30", "30", "00", "00", "10", "10", "20", "20", "30", "30"}
	for i := 0; i < 16; i++ {
		if m[i][0] != wants[i] {
			t.Fatalf("(f) row %d owner %s, want %s", i+1, m[i][0], wants[i])
		}
	}
}

func TestFig1CaseG_DecreasingBlockCyclicRows(t *testing.T) {
	c := Fig1Cases(16)[6]
	m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
	// f(i) = floor((-i+16)/2) mod 4: i=1 -> floor(15/2)=7 mod 4 = 3.
	if m[0][0] != "30" {
		t.Fatalf("(g) row 1 owner %s, want 30", m[0][0])
	}
	if m[15][0] != "00" { // i=16 -> 0
		t.Fatalf("(g) row 16 owner %s, want 00", m[15][0])
	}
}

func TestFig1CaseH_BlockCyclic2D(t *testing.T) {
	c := Fig1Cases(16)[7]
	m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
	// Paper prints the 2x2 block-cyclic checkerboard 00 01 00 01 / 10 11 10 11 ...
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			want := string(rune('0'+(i/4)%2)) + string(rune('0'+(j/4)%2))
			if m[i][j] != want {
				t.Fatalf("(h) m[%d][%d] = %s, want %s", i, j, m[i][j], want)
			}
		}
	}
}

func TestOwnerLabelReplication(t *testing.T) {
	if OwnerLabel([]int{All, 2}) != "*2" || OwnerLabel([]int{1, 0}) != "10" {
		t.Fatal("OwnerLabel wrong")
	}
}

func TestBlockLabels(t *testing.T) {
	m := [][]string{{"00", "00", "01", "01"}, {"10", "10", "11", "11"}}
	got := BlockLabels(m)
	if len(got) != 2 || got[0] != "00 01" || got[1] != "10 11" {
		t.Fatalf("BlockLabels = %v", got)
	}
}

func TestLayoutMatrixPanicsOn1D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LayoutMatrix(grid.New(2), []int{4}, Scheme1D(Cyclic(0), nil))
}

func TestFig1AllCasesRenderable(t *testing.T) {
	for _, c := range Fig1Cases(16) {
		m := LayoutMatrix(c.Grid, []int{16, 16}, c.Scheme)
		lines := BlockLabels(m)
		if len(lines) != 16 {
			t.Fatalf("case (%s): %d lines", c.Name, len(lines))
		}
		for _, l := range lines {
			if strings.TrimSpace(l) == "" {
				t.Fatalf("case (%s): empty label line", c.Name)
			}
		}
	}
}
