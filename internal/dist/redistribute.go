// Redistribution between schemes: when the dynamic programming algorithm
// of Section 4 switches the distribution scheme of an array between two
// Do-loops, data must move. This file computes the exact per-processor
// communication volume of such a change, which feeds the cost(P, P')
// term of Algorithm 1.
package dist

import (
	"dmcc/internal/grid"
)

// Move describes data an element transfer between two processors.
type Move struct {
	Src, Dst int
	Words    int
}

// Plan is a redistribution plan: the multiset of point-to-point moves
// needed to convert the layout of an array from one scheme to another.
type Plan struct {
	// Moves aggregates words per (src,dst) pair, src != dst.
	Moves []Move
	// TotalWords is the sum over Moves.
	TotalWords int
	// MaxInWords / MaxOutWords are the largest per-processor receive and
	// send volumes — the bottleneck of the redistribution step.
	MaxInWords  int
	MaxOutWords int
}

// NewPlan computes the redistribution plan from scheme src to scheme dst
// for an array of the given shape on grid g. For every element that a
// destination processor needs but does not already hold, one word moves
// from a canonical source owner (the lowest-ranked current owner). Both
// schemes must be valid for (g, shape); enumeration is exact.
func NewPlan(g *grid.Grid, shape []int, src, dst Scheme) Plan {
	vol := map[[2]int]int{}
	ForEachIndex(shape, func(idx []int) {
		srcOwners := src.Owners(g, idx...)
		dstOwners := dst.Owners(g, idx...)
		has := make(map[int]bool, len(srcOwners))
		for _, r := range srcOwners {
			has[r] = true
		}
		from := srcOwners[0]
		for _, d := range dstOwners {
			if !has[d] {
				vol[[2]int{from, d}]++
			}
		}
	})
	var p Plan
	in := map[int]int{}
	out := map[int]int{}
	for k, w := range vol {
		p.Moves = append(p.Moves, Move{Src: k[0], Dst: k[1], Words: w})
		p.TotalWords += w
		out[k[0]] += w
		in[k[1]] += w
	}
	for _, w := range in {
		if w > p.MaxInWords {
			p.MaxInWords = w
		}
	}
	for _, w := range out {
		if w > p.MaxOutWords {
			p.MaxOutWords = w
		}
	}
	return p
}

// Identical reports whether two schemes place every element of an array
// with the given shape on exactly the same processor set. (Schemes with
// different parameters can still be layout-identical, e.g. contiguous
// blocks on a 1-processor grid dimension.)
func Identical(g *grid.Grid, shape []int, a, b Scheme) bool {
	same := true
	ForEachIndex(shape, func(idx []int) {
		if !same {
			return
		}
		ao := a.Owners(g, idx...)
		bo := b.Owners(g, idx...)
		if len(ao) != len(bo) {
			same = false
			return
		}
		for i := range ao {
			if ao[i] != bo[i] {
				same = false
				return
			}
		}
	})
	return same
}

// ForEachIndex enumerates all 1-based multi-indices of the shape in
// row-major order. It is the canonical element iterator shared by the
// exact enumeration paths (redistribution plans, layout checks, cost
// oracles); the same idx slice is reused across calls.
func ForEachIndex(shape []int, f func(idx []int)) {
	idx := make([]int, len(shape))
	for i := range idx {
		idx[i] = 1
	}
	for {
		f(idx)
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] <= shape[k] {
				break
			}
			idx[k] = 1
			k--
		}
		if k < 0 {
			return
		}
	}
}
