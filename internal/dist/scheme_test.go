package dist

import (
	"reflect"
	"testing"
	"testing/quick"

	"dmcc/internal/grid"
)

func TestBlockContiguous1D(t *testing.T) {
	g := grid.New(4)
	s := Scheme1D(BlockContiguous(16, 4, 0), nil)
	if err := s.Validate(g, []int{16}); err != nil {
		t.Fatal(err)
	}
	// f(i) = floor((i-1)/4): 1..4 -> 0, 5..8 -> 1, ...
	for i := 1; i <= 16; i++ {
		want := (i - 1) / 4
		if got := s.GridCoords(g, i)[0]; got != want {
			t.Fatalf("f(%d) = %d, want %d", i, got, want)
		}
	}
	// Local index is the offset within the block.
	if s.LocalIndex(g, 0, 1) != 0 || s.LocalIndex(g, 0, 6) != 1 || s.LocalIndex(g, 0, 16) != 3 {
		t.Fatal("local indices wrong")
	}
}

func TestCyclic1D(t *testing.T) {
	g := grid.New(4)
	s := Scheme1D(Cyclic(0), nil)
	if err := s.Validate(g, []int{10}); err != nil {
		t.Fatal(err)
	}
	// f(i) = (i-1) mod 4.
	for i := 1; i <= 10; i++ {
		if got := s.GridCoords(g, i)[0]; got != (i-1)%4 {
			t.Fatalf("f(%d) = %d", i, got)
		}
	}
	// Local index: owned elements pack consecutively: i=1 -> 0, i=5 -> 1, i=9 -> 2 on proc 0.
	if s.LocalIndex(g, 0, 1) != 0 || s.LocalIndex(g, 0, 5) != 1 || s.LocalIndex(g, 0, 9) != 2 {
		t.Fatal("cyclic local indices wrong")
	}
	if s.LocalCount(g, 0, 10, 0) != 3 || s.LocalCount(g, 0, 10, 1) != 3 || s.LocalCount(g, 0, 10, 3) != 2 {
		t.Fatal("cyclic local counts wrong")
	}
}

func TestBlockCyclic1D(t *testing.T) {
	g := grid.New(2)
	s := Scheme1D(BlockCyclic(3, 0), nil)
	// blocks of 3, round robin on 2 procs: 1-3 ->0, 4-6 ->1, 7-9 ->0, ...
	wants := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}
	for i, w := range wants {
		if got := s.GridCoords(g, i+1)[0]; got != w {
			t.Fatalf("f(%d) = %d, want %d", i+1, got, w)
		}
	}
	// Local packing on proc 0: global 1,2,3,7,8,9 -> local 0..5.
	globals := []int{1, 2, 3, 7, 8, 9}
	for li, gi := range globals {
		if got := s.LocalIndex(g, 0, gi); got != li {
			t.Fatalf("local(%d) = %d, want %d", gi, got, li)
		}
	}
}

func TestDecreasing1D(t *testing.T) {
	g := grid.New(4)
	s := Scheme1D(BlockContiguousDecreasing(16, 4, 0), nil)
	if err := s.Validate(g, []int{16}); err != nil {
		t.Fatal(err)
	}
	// f(i) = floor((-i+16)/4): i=1 -> 3, i=16 -> 0.
	if s.GridCoords(g, 1)[0] != 3 || s.GridCoords(g, 16)[0] != 0 || s.GridCoords(g, 8)[0] != 2 {
		t.Fatal("decreasing map wrong")
	}
}

func TestReplicatedOwners(t *testing.T) {
	g := grid.New(2, 3)
	s := Scheme2D(BlockContiguous(4, 2, 0), Replicated(1), nil)
	if err := s.Validate(g, []int{4, 5}); err != nil {
		t.Fatal(err)
	}
	owners := s.Owners(g, 1, 1)
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	for _, r := range owners {
		if g.Coord(r, 0) != 0 {
			t.Fatalf("owner %d not in processor row 0", r)
		}
		if !s.IsOwner(g, r, 1, 1) {
			t.Fatalf("IsOwner disagrees for %d", r)
		}
	}
	if s.IsOwner(g, g.Rank(1, 0), 1, 1) {
		t.Fatal("row 1 should not own element (1,1)")
	}
}

func TestFixedDimensions(t *testing.T) {
	g := grid.New(2, 3)
	// 1-D array on a 2-D grid: rows to grid dim 0, grid dim 1 pinned to 2.
	s := Scheme1D(BlockContiguous(4, 2, 0), map[int]int{1: 2})
	if err := s.Validate(g, []int{4}); err != nil {
		t.Fatal(err)
	}
	owners := s.Owners(g, 3)
	if len(owners) != 1 || owners[0] != g.Rank(1, 2) {
		t.Fatalf("owners = %v", owners)
	}
	// Replicated along the unused dimension.
	s2 := Scheme1D(BlockContiguous(4, 2, 0), map[int]int{1: All})
	owners2 := s2.Owners(g, 3)
	if len(owners2) != 3 {
		t.Fatalf("owners2 = %v", owners2)
	}
}

func TestValidateErrors(t *testing.T) {
	g := grid.New(2, 2)
	cases := []struct {
		name  string
		s     Scheme
		shape []int
	}{
		{"wrong arity", Scheme1D(BlockContiguous(4, 2, 0), nil), []int{4, 4}},
		{"grid dim oob", Scheme1D(Dim{Sign: 1, Disp: -1, Block: 2, GridDim: 5}, map[int]int{1: 0}), []int{4}},
		{"dup grid dim", Scheme2D(BlockContiguous(4, 2, 0), BlockContiguous(4, 2, 0), nil), []int{4, 4}},
		{"bad sign", Scheme1D(Dim{Sign: 0, Disp: -1, Block: 2, GridDim: 0}, map[int]int{1: 0}), []int{4}},
		{"bad block", Scheme1D(Dim{Sign: 1, Disp: -1, Block: 0, GridDim: 0}, map[int]int{1: 0}), []int{4}},
		{"negative z", Scheme1D(Dim{Sign: -1, Disp: 0, Block: 2, GridDim: 0}, map[int]int{1: 0}), []int{4}},
		{"contiguous overflow", Scheme1D(Dim{Sign: 1, Disp: -1, Block: 1, GridDim: 0}, map[int]int{1: 0}), []int{4}},
		{"unmapped grid dim", Scheme1D(BlockContiguous(4, 2, 0), map[int]int{}), []int{4}},
		{"fixed oob", Scheme1D(BlockContiguous(4, 2, 0), map[int]int{1: 7}), []int{4}},
		{"rotation on 1-D", Scheme{Dims: []Dim{BlockContiguous(4, 2, 0)}, Rot: RotateDim2ByDim1, D1: 1, D2: 1, Fixed: map[int]int{1: 0}}, []int{4}},
		{"rotation bad coeff", Scheme2DRotated(BlockContiguous(4, 2, 0), BlockContiguous(4, 2, 1), RotateDim2ByDim1, 0, 1, nil), []int{4, 4}},
		{"rotation with replication", Scheme2DRotated(BlockContiguous(4, 2, 0), Replicated(1), RotateDim2ByDim1, 1, 1, nil), []int{4, 4}},
		{"mapped and fixed", Scheme1D(BlockContiguous(4, 2, 0), map[int]int{0: 0, 1: 0}), []int{4}},
	}
	for _, c := range cases {
		if err := c.s.Validate(g, c.shape); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestEquation1JacobiSchemes(t *testing.T) {
	// Equation (1), Section 3: fA(i,j) = (floor((i-1)/(m/N1)), floor((j-1)/(m/N2))),
	// fV(i) = floor((i-1)/(m/N1)), fX(j) = fB(j) = floor((j-1)/(m/N2)).
	m := 8
	g := grid.New(2, 4)
	a := Scheme2D(BlockContiguous(m, 2, 0), BlockContiguous(m, 4, 1), nil)
	v := Scheme1D(BlockContiguous(m, 2, 0), map[int]int{1: All})
	x := Scheme1D(BlockContiguous(m, 4, 1), map[int]int{0: All})
	if err := a.Validate(g, []int{m, m}); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(g, []int{m}); err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(g, []int{m}); err != nil {
		t.Fatal(err)
	}
	// A(3,7) lives on processor (floor(2/4), floor(6/2)) = (0, 3).
	if c := a.GridCoords(g, 3, 7); c[0] != 0 || c[1] != 3 {
		t.Fatalf("A(3,7) coords = %v", c)
	}
	// V(5) lives on processor row 1, all columns.
	if c := v.GridCoords(g, 5); c[0] != 1 || c[1] != All {
		t.Fatalf("V(5) coords = %v", c)
	}
}

func TestOwnedIndicesPartitionArray(t *testing.T) {
	// Every index owned by exactly one coordinate for partitioned dims.
	g := grid.New(4)
	schemes := []Scheme{
		Scheme1D(BlockContiguous(17, 4, 0), nil),
		Scheme1D(Cyclic(0), nil),
		Scheme1D(BlockCyclic(3, 0), nil),
		Scheme1D(BlockContiguousDecreasing(17, 4, 0), nil),
	}
	for _, s := range schemes {
		if err := s.Validate(g, []int{17}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		seen := map[int]int{}
		for c := 0; c < 4; c++ {
			for _, i := range s.OwnedIndices(g, 0, 17, c) {
				seen[i]++
			}
		}
		if len(seen) != 17 {
			t.Fatalf("%v: %d indices covered", s, len(seen))
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("%v: index %d owned %d times", s, i, n)
			}
		}
	}
}

// Property: for any partitioned 1-D scheme, the local indices of the
// owned elements of each processor are exactly 0..count-1 (dense packing).
func TestLocalIndexDensePackingQuick(t *testing.T) {
	f := func(blockRaw, sizeRaw uint8, cyclic, decreasing bool) bool {
		n := 4
		g := grid.New(n)
		size := int(sizeRaw)%40 + n
		block := int(blockRaw)%5 + 1
		if !cyclic {
			block = ceilDiv(size, n)
		}
		d := Dim{Sign: 1, Disp: -1, Block: block, Cyclic: cyclic, GridDim: 0}
		if decreasing {
			d.Sign, d.Disp = -1, size
		}
		s := Scheme1D(d, nil)
		if err := s.Validate(g, []int{size}); err != nil {
			return false
		}
		for c := 0; c < n; c++ {
			owned := s.OwnedIndices(g, 0, size, c)
			locals := map[int]bool{}
			for _, i := range owned {
				locals[s.LocalIndex(g, 0, i)] = true
			}
			if len(locals) != len(owned) {
				return false
			}
			for li := 0; li < len(owned); li++ {
				if !locals[li] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCannonRotatedSchemes(t *testing.T) {
	// Fig 1 (b): fA(i,j) = (b1, (-b1 - b2) mod 4) where bk = floor((idx-1)/4).
	g := grid.New(4, 4)
	s := Fig1Cases(16)[1].Scheme
	if err := s.Validate(g, []int{16, 16}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 16; j++ {
			b1 := (i - 1) / 4
			b2 := (j - 1) / 4
			want := []int{b1, (((-b1 - b2) % 4) + 4) % 4}
			if got := s.GridCoords(g, i, j); !reflect.DeepEqual(got, want) {
				t.Fatalf("(b) f(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	// Fig 1 (c): fA(i,j) = ((-b1 - b2) mod 4, b2).
	sc := Fig1Cases(16)[2].Scheme
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 16; j++ {
			b1 := (i - 1) / 4
			b2 := (j - 1) / 4
			want := []int{(((-b1 - b2) % 4) + 4) % 4, b2}
			if got := sc.GridCoords(g, i, j); !reflect.DeepEqual(got, want) {
				t.Fatalf("(c) f(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSchemeString(t *testing.T) {
	g := grid.New(4)
	_ = g
	s := Scheme2DRotated(BlockContiguous(16, 4, 0), Cyclic(1), RotateDim2ByDim1, -1, 1, nil)
	str := s.String()
	for _, want := range []string{"block(4)", "cyclic", "rotated"} {
		if !contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	sd := Scheme1D(BlockContiguousDecreasing(16, 4, 0), map[int]int{1: 0})
	if !contains(sd.String(), "block(4)-") {
		t.Errorf("decreasing String() = %q", sd.String())
	}
	sr := Scheme1D(Replicated(0), nil)
	if !contains(sr.String(), "repl") {
		t.Errorf("replicated String() = %q", sr.String())
	}
	sbc := Scheme1D(BlockCyclic(2, 0), nil)
	if !contains(sbc.String(), "blockcyclic(2)") {
		t.Errorf("block-cyclic String() = %q", sbc.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: GlobalIndex inverts LocalIndex on every owned element for all
// standard distribution kinds.
func TestGlobalIndexInvertsLocalIndexQuick(t *testing.T) {
	f := func(sizeRaw, blockRaw uint8, cyclic, decreasing bool) bool {
		n := 4
		g := grid.New(n)
		size := int(sizeRaw)%40 + n
		block := int(blockRaw)%5 + 1
		if !cyclic {
			block = ceilDiv(size, n)
		}
		d := Dim{Sign: 1, Disp: -1, Block: block, Cyclic: cyclic, GridDim: 0}
		if decreasing {
			d.Sign, d.Disp = -1, size
		}
		s := Scheme1D(d, nil)
		if s.Validate(g, []int{size}) != nil {
			return false
		}
		for c := 0; c < n; c++ {
			for _, i := range s.OwnedIndices(g, 0, size, c) {
				li := s.LocalIndex(g, 0, i)
				if s.GlobalIndex(g, 0, c, li) != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalIndexReplicated(t *testing.T) {
	g := grid.New(3)
	s := Scheme1D(Replicated(0), nil)
	if s.GlobalIndex(g, 0, 1, 4) != 5 {
		t.Fatal("replicated GlobalIndex wrong")
	}
}
