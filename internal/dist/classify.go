// Scheme-pair classification for collective redistribution lowering.
//
// A scheme change decomposes, per grid dimension, into one of four
// shapes: identity (same coordinate function on both sides), a
// partition remap (block<->cyclic, displacement/sign change, or a grid
// reshape — concrete coordinates on both sides), a replication widening
// (concrete -> All), or a replication narrowing (All -> concrete).
// Following Rink et al. ("Memory-efficient array redistribution through
// portable collective communication", PAPERS.md), any such change
// lowers to a short composed sequence of collective steps:
//
//	stage 1  AllToAll   personalized exchange delivering exactly one
//	                    copy of each element to a root inside every
//	                    widened destination group (free when a source
//	                    owner already sits in the group);
//	stage 2  Multicast  a binomial tree per widened group fanning the
//	                    payload out to the group's W members,
//	                    O(m log W) instead of the O(m (W-1)) star a
//	                    point-to-point transport pays.
//
// Narrowing is free (every destination already holds a copy), and a
// pure remap degenerates to the single AllToAll stage, whose bottleneck
// per-processor load is the same as the point-to-point transport's —
// the composed lowering is never priced worse, and is asymptotically
// cheaper whenever replication widens.
package dist

import (
	"fmt"

	"dmcc/internal/grid"
)

// ChangeKind classifies what happens to one grid dimension's coordinate
// function across a scheme change.
type ChangeKind int

const (
	// ChangeNone: identical coordinate function on both sides.
	ChangeNone ChangeKind = iota
	// ChangeRemap: concrete on both sides but different functions
	// (block<->cyclic, block size, displacement, sign, or reshape).
	ChangeRemap
	// ChangeWiden: concrete -> All; the destination replicates along
	// this grid dimension, so the lowering fans out over a multicast
	// tree of the dimension's extent.
	ChangeWiden
	// ChangeNarrow: All -> concrete; every destination already holds a
	// copy, no traffic.
	ChangeNarrow
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeNone:
		return "none"
	case ChangeRemap:
		return "remap"
	case ChangeWiden:
		return "widen"
	case ChangeNarrow:
		return "narrow"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// StepKind identifies one collective step of a redistribution plan.
type StepKind int

const (
	// StepAllToAll is the stage-1 personalized exchange.
	StepAllToAll StepKind = iota
	// StepMulticast is the stage-2 per-group broadcast tree.
	StepMulticast
)

func (k StepKind) String() string {
	if k == StepMulticast {
		return "multicast"
	}
	return "all-to-all"
}

// Step is one collective step of a redistribution plan.
type Step struct {
	Kind StepKind
	// Dims are the widened grid dimensions (multicast steps only).
	Dims []int
	// Words is the step's wire traffic: total exchanged words for
	// all-to-all, full-tree words (payload x (W-1) per group) for
	// multicast.
	Words float64
}

// RedistPlan is the composed collective lowering of one array's scheme change
// together with the quantities the cost engine prices.
type RedistPlan struct {
	// PerDim classifies each destination-grid dimension.
	PerDim []ChangeKind
	// WidenDims are the grid dimensions with ChangeWiden, ascending.
	WidenDims []int
	// WidenGroup is the multicast tree size W: the product of the
	// widened dimensions' extents (1 when nothing widens).
	WidenGroup int
	// Exchange holds the stage-1 per-processor loads; its MaxLoad is
	// the AllToAll bottleneck, identical to the point-to-point
	// transport's when nothing widens.
	Exchange Loads
	// MulticastWords is the largest per-group stage-2 payload: the
	// words the busiest widened group's roots push down their trees.
	MulticastWords float64
	// Steps is the short composed sequence, in execution order; empty
	// when the change moves no data.
	Steps []Step
}

// Time prices the plan under per-word cost tc: the AllToAll bottleneck
// load plus the busiest group's multicast tree depth.
func (pl RedistPlan) Time(tc float64) float64 {
	t := pl.Exchange.MaxLoad() * tc
	if pl.WidenGroup > 1 && pl.MulticastWords > 0 {
		t += pl.MulticastWords * float64(log2ceilDist(pl.WidenGroup)) * tc
	}
	return t
}

// allAlong reports whether scheme s replicates along grid dimension gd:
// either gd is fixed to All or a replicated array dimension maps to it.
func allAlong(s Scheme, gd int) bool {
	if c, ok := s.Fixed[gd]; ok {
		return c == All
	}
	for _, d := range s.Dims {
		if d.GridDim == gd && d.Replicated {
			return true
		}
	}
	return false
}

// sameCoordFn reports whether grid dimension gd computes the same
// coordinate under both schemes (a best-effort syntactic check: equal
// Fixed values, or the same array dimension mapped with an identical
// distribution and no rotation difference).
func sameCoordFn(gFrom, gTo *grid.Grid, from, to Scheme, gd int) bool {
	cF, okF := from.Fixed[gd]
	cT, okT := to.Fixed[gd]
	if okF || okT {
		return okF && okT && cF == cT
	}
	kF, kT := -1, -1
	for k, d := range from.Dims {
		if d.GridDim == gd {
			kF = k
		}
	}
	for k, d := range to.Dims {
		if d.GridDim == gd {
			kT = k
		}
	}
	if kF < 0 || kT < 0 || kF != kT {
		return false
	}
	if from.Dims[kF] != to.Dims[kT] {
		return false
	}
	if gFrom.Extent(gd) != gTo.Extent(gd) {
		return false
	}
	rotF := from.Rot != NoRotation
	rotT := to.Rot != NoRotation
	if rotF || rotT {
		return from.Rot == to.Rot && from.D1 == to.D1 && from.D2 == to.D2
	}
	return true
}

// ClassifyChange classifies the scheme change per grid dimension and
// builds the composed collective plan with its priced loads. The grids
// must have the same total processor count; widening is only detected
// when the grids have the same shape (a reshape degenerates to a pure
// AllToAll plan, priced like the point-to-point transport).
func ClassifyChange(gFrom, gTo *grid.Grid, shape []int, from, to Scheme) (RedistPlan, error) {
	if gFrom.Size() != gTo.Size() {
		return RedistPlan{}, fmt.Errorf("dist: classify between %s and %s: processor counts differ", gFrom, gTo)
	}
	if err := from.Validate(gFrom, shape); err != nil {
		return RedistPlan{}, fmt.Errorf("dist: source scheme: %v", err)
	}
	if err := to.Validate(gTo, shape); err != nil {
		return RedistPlan{}, fmt.Errorf("dist: destination scheme: %v", err)
	}

	sameShape := gFrom.Q() == gTo.Q()
	if sameShape {
		for gd := 0; gd < gTo.Q(); gd++ {
			if gFrom.Extent(gd) != gTo.Extent(gd) {
				sameShape = false
				break
			}
		}
	}

	pl := RedistPlan{PerDim: make([]ChangeKind, gTo.Q()), WidenGroup: 1, Exchange: NewLoads()}
	for gd := 0; gd < gTo.Q(); gd++ {
		switch {
		case !sameShape:
			pl.PerDim[gd] = ChangeRemap
		case sameCoordFn(gFrom, gTo, from, to, gd):
			pl.PerDim[gd] = ChangeNone
		case allAlong(to, gd) && !allAlong(from, gd):
			pl.PerDim[gd] = ChangeWiden
			pl.WidenDims = append(pl.WidenDims, gd)
			pl.WidenGroup *= gTo.Extent(gd)
		case allAlong(from, gd) && !allAlong(to, gd):
			pl.PerDim[gd] = ChangeNarrow
		default:
			pl.PerDim[gd] = ChangeRemap
		}
	}

	widened := make([]bool, gTo.Q())
	for _, gd := range pl.WidenDims {
		widened[gd] = true
	}

	// Walk the sparse joint coordinate cells exactly like RedistLoads,
	// but split each cell's traffic into the stage-1 exchange and the
	// stage-2 per-group multicast payload.
	perDim := make([][]coordPair, len(shape))
	for k := range shape {
		dF, dT := from.Dims[k], to.Dims[k]
		perDim[k] = dimJointCounts(dF, gFrom.Extent(dF.GridDim), dT, gTo.Extent(dT.GridDim), shape[k])
	}
	groupWords := map[int]float64{}
	var exchangeWords, mcastTreeWords float64
	rawF := make([]int, len(shape))
	rawT := make([]int, len(shape))
	emit := func(cnt int64) {
		coordsF := coordsFromRaw(from, gFrom, rawF)
		coordsT := coordsFromRaw(to, gTo, rawT)
		dstRanks := ranksFor(gTo, coordsT)
		owns := func(r int) bool {
			for gd, cf := range coordsF {
				if cf != All && gFrom.Coord(r, gd) != cf {
					return false
				}
			}
			return true
		}
		// Group destinations into widened-dimension cosets; the key is
		// the rank of the member with widened coordinates zeroed.
		groups := map[int][]int{}
		coords := make([]int, gTo.Q())
		for _, d := range dstRanks {
			for gd := range coords {
				coords[gd] = gTo.Coord(d, gd)
				if widened[gd] {
					coords[gd] = 0
				}
			}
			key := gTo.Rank(coords...)
			groups[key] = append(groups[key], d)
		}
		var srcRanks []int
		for key, members := range groups {
			root := -1
			needy := 0
			for _, m := range members {
				if owns(m) {
					if root < 0 {
						root = m
					}
				} else {
					needy++
				}
			}
			if needy == 0 {
				continue
			}
			rootOwned := root >= 0
			if root < 0 {
				root = members[0]
			}
			if !rootOwned {
				// Stage 1: ship one copy to the group root, the send
				// split evenly across the source owners as in
				// RedistLoads.
				if srcRanks == nil {
					srcRanks = ranksFor(gFrom, coordsF)
				}
				pl.Exchange.In[root] += float64(cnt)
				share := float64(cnt) / float64(len(srcRanks))
				for _, r := range srcRanks {
					pl.Exchange.Out[r] += share
				}
				pl.Exchange.Words += float64(cnt)
				exchangeWords += float64(cnt)
			}
			// Stage 2: the group's tree fans cnt words out to the
			// remaining members (skipped entirely when the root was the
			// only needy member).
			if needy-btoi(!rootOwned) > 0 {
				groupWords[key] += float64(cnt)
				mcastTreeWords += float64(cnt) * float64(len(members)-1)
			}
		}
	}
	switch len(shape) {
	case 1:
		for _, c0 := range perDim[0] {
			rawF[0], rawT[0] = c0.aF, c0.aT
			emit(c0.cnt)
		}
	case 2:
		for _, c0 := range perDim[0] {
			rawF[0], rawT[0] = c0.aF, c0.aT
			for _, c1 := range perDim[1] {
				rawF[1], rawT[1] = c1.aF, c1.aT
				emit(c0.cnt * c1.cnt)
			}
		}
	default:
		return RedistPlan{}, fmt.Errorf("dist: classify supports 1-D and 2-D arrays, got %d-D", len(shape))
	}

	for _, w := range groupWords {
		if w > pl.MulticastWords {
			pl.MulticastWords = w
		}
	}
	if pl.WidenGroup > 1 && pl.MulticastWords > 0 {
		// When the tree offers no advantage (a small widen group next to
		// a concurrent remap: depth log2(W) is not below star width W-1
		// once the stage-1 exchange serializes in front of it), the
		// better lowering is the flat personalized exchange; fall back
		// to it so the composed plan is never priced above the
		// point-to-point transport.
		ref, err := RedistLoads(gFrom, gTo, shape, from, to)
		if err != nil {
			return RedistPlan{}, err
		}
		if pl.Time(1) > ref.MaxLoad() {
			pl.MulticastWords = 0
			pl.Exchange = ref
			if ref.Words > 0 {
				pl.Steps = append(pl.Steps, Step{Kind: StepAllToAll, Words: ref.Words})
			}
			return pl, nil
		}
	}
	if exchangeWords > 0 {
		pl.Steps = append(pl.Steps, Step{Kind: StepAllToAll, Words: exchangeWords})
	}
	if pl.WidenGroup > 1 && mcastTreeWords > 0 {
		pl.Steps = append(pl.Steps, Step{Kind: StepMulticast, Dims: pl.WidenDims, Words: mcastTreeWords})
	}
	return pl, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// log2ceilDist mirrors machine.log2ceil / cost.Log2Ceil without the
// import.
func log2ceilDist(n int) int {
	k := 0
	for p := 1; p < n; p <<= 1 {
		k++
	}
	return k
}
