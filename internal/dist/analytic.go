// Analytic redistribution costing: closed-form per-processor word counts
// for converting an array from one distribution scheme to another,
// without enumerating elements.
//
// The key observation (cf. Rink et al., "Memory-efficient array
// redistribution through portable collective communication") is that the
// index sets owned by one grid coordinate under the Section 2.1
// distribution functions are intervals (contiguous blocks) or periodic
// unions of intervals ((block-)cyclic), so the number of indices mapped
// to a coordinate pair (a under the old scheme, b under the new scheme)
// is an interval-intersection count computable in O(1) arithmetic per
// pair — O(N_from * N_to) per array dimension in total, independent of
// the array extent. Joint counts factorize across array dimensions
// (rotation is a deterministic remap of the per-dimension coordinates),
// so the full per-processor in/out traffic follows from a product over
// the sparse per-dimension count tables.
//
// Sender-side load: when an element is replicated under the source
// scheme, every copy is an equally valid sender, so each source owner is
// charged an equal 1/|owners| share of the outgoing words — the cheapest
// static split of the send load (the element-wise planner NewPlan keeps
// the canonical lowest-rank sender, which is what an actual data-movement
// plan needs, but it overloads one replica when costing).
package dist

import (
	"fmt"

	"dmcc/internal/grid"
)

// Loads holds per-processor redistribution word loads for one array (or,
// after Add, an accumulated set of arrays). Loads are float64 because the
// send load of a replicated source element is split evenly across its
// owners.
type Loads struct {
	// In is words received per destination rank.
	In map[int]float64
	// Out is words sent per source rank.
	Out map[int]float64
	// Words is the total word count on the wire.
	Words float64
}

// NewLoads returns an empty Loads value ready for accumulation.
func NewLoads() Loads {
	return Loads{In: map[int]float64{}, Out: map[int]float64{}}
}

// Add accumulates other into l (multi-array redistribution).
func (l *Loads) Add(other Loads) {
	for r, w := range other.In {
		l.In[r] += w
	}
	for r, w := range other.Out {
		l.Out[r] += w
	}
	l.Words += other.Words
}

// MaxLoad returns the largest per-processor in or out load — the
// bottleneck traffic of the redistribution step.
func (l Loads) MaxLoad() float64 {
	var mx float64
	for _, w := range l.In {
		if w > mx {
			mx = w
		}
	}
	for _, w := range l.Out {
		if w > mx {
			mx = w
		}
	}
	return mx
}

// coordPair is one entry of a per-dimension joint count table: cnt
// indices of the dimension map to grid coordinate aF under the source
// dim and aT under the destination dim (All for replicated dims).
type coordPair struct {
	aF, aT int
	cnt    int64
}

// RedistLoads computes the per-processor redistribution loads from
// scheme `from` on grid gFrom to scheme `to` on grid gTo analytically.
// The grids may have different shapes but must have the same total
// processor count (rank r denotes the same physical processor on both).
// For every element a destination owner lacks, one word is received; the
// matching send is split evenly across the element's source owners.
// The result is exactly RedistLoadsExact's, computed without element
// enumeration.
func RedistLoads(gFrom, gTo *grid.Grid, shape []int, from, to Scheme) (Loads, error) {
	if gFrom.Size() != gTo.Size() {
		return Loads{}, fmt.Errorf("dist: redistribution between %s and %s: processor counts differ", gFrom, gTo)
	}
	if err := from.Validate(gFrom, shape); err != nil {
		return Loads{}, fmt.Errorf("dist: source scheme: %v", err)
	}
	if err := to.Validate(gTo, shape); err != nil {
		return Loads{}, fmt.Errorf("dist: destination scheme: %v", err)
	}
	perDim := make([][]coordPair, len(shape))
	for k := range shape {
		dF, dT := from.Dims[k], to.Dims[k]
		perDim[k] = dimJointCounts(dF, gFrom.Extent(dF.GridDim), dT, gTo.Extent(dT.GridDim), shape[k])
	}

	l := NewLoads()
	rawF := make([]int, len(shape))
	rawT := make([]int, len(shape))
	emit := func(cnt int64) {
		coordsF := coordsFromRaw(from, gFrom, rawF)
		coordsT := coordsFromRaw(to, gTo, rawT)
		dstRanks := ranksFor(gTo, coordsT)
		needy := 0
		for _, d := range dstRanks {
			owned := true
			for gd, cf := range coordsF {
				if cf != All && gFrom.Coord(d, gd) != cf {
					owned = false
					break
				}
			}
			if owned {
				continue
			}
			needy++
			l.In[d] += float64(cnt)
		}
		if needy == 0 {
			return
		}
		srcRanks := ranksFor(gFrom, coordsF)
		share := float64(cnt) * float64(needy) / float64(len(srcRanks))
		for _, r := range srcRanks {
			l.Out[r] += share
		}
		l.Words += float64(cnt) * float64(needy)
	}
	switch len(shape) {
	case 1:
		for _, c0 := range perDim[0] {
			rawF[0], rawT[0] = c0.aF, c0.aT
			emit(c0.cnt)
		}
	case 2:
		for _, c0 := range perDim[0] {
			rawF[0], rawT[0] = c0.aF, c0.aT
			for _, c1 := range perDim[1] {
				rawF[1], rawT[1] = c1.aF, c1.aT
				emit(c0.cnt * c1.cnt)
			}
		}
	default:
		return Loads{}, fmt.Errorf("dist: analytic redistribution supports 1-D and 2-D arrays, got %d-D", len(shape))
	}
	return l, nil
}

// ScaledLoads are redistribution loads as exact rationals: every
// per-processor value is Num/Den words under one common denominator.
// The denominator is the replica count of the source scheme (the even
// sender split of RedistLoads), so it depends only on the schemes —
// never on the array extent — which is what lets a plan evaluator fit
// the numerators as integer polynomials in the problem size.
type ScaledLoads struct {
	// In and Out are load numerators per rank, scaled by Den.
	In, Out map[int]int64
	// Den is the common denominator (a count of replica ranks).
	Den int64
	// Words is the total (integral) word count on the wire.
	Words int64
}

// Add accumulates other into l (multi-array redistribution), rescaling
// both sides to the least common denominator.
func (l *ScaledLoads) Add(other ScaledLoads) {
	if other.Den != l.Den {
		d := lcm64(l.Den, other.Den)
		if f := d / l.Den; f > 1 {
			for r := range l.In {
				l.In[r] *= f
			}
			for r := range l.Out {
				l.Out[r] *= f
			}
			l.Den = d
		}
	}
	f := l.Den / other.Den
	for r, v := range other.In {
		l.In[r] += v * f
	}
	for r, v := range other.Out {
		l.Out[r] += v * f
	}
	l.Words += other.Words
}

// MaxNum returns the largest in/out numerator: the bottleneck load is
// MaxNum/Den words.
func (l ScaledLoads) MaxNum() int64 {
	var mx int64
	for _, v := range l.In {
		if v > mx {
			mx = v
		}
	}
	for _, v := range l.Out {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// RedistLoadsScaled is RedistLoads in exact integer arithmetic: the same
// per-processor loads (including the fractional sender splits over
// replicated source owners) as numerators over a common denominator.
// float64(num)/float64(Den) reproduces the float accumulation exactly
// whenever the replica counts are powers of two (the splits are then
// dyadic); callers that need bit-equality with RedistLoads on other
// grids must validate it.
func RedistLoadsScaled(gFrom, gTo *grid.Grid, shape []int, from, to Scheme) (ScaledLoads, error) {
	if gFrom.Size() != gTo.Size() {
		return ScaledLoads{}, fmt.Errorf("dist: redistribution between %s and %s: processor counts differ", gFrom, gTo)
	}
	if err := from.Validate(gFrom, shape); err != nil {
		return ScaledLoads{}, fmt.Errorf("dist: source scheme: %v", err)
	}
	if err := to.Validate(gTo, shape); err != nil {
		return ScaledLoads{}, fmt.Errorf("dist: destination scheme: %v", err)
	}
	perDim := make([][]coordPair, len(shape))
	for k := range shape {
		dF, dT := from.Dims[k], to.Dims[k]
		perDim[k] = dimJointCounts(dF, gFrom.Extent(dF.GridDim), dT, gTo.Extent(dT.GridDim), shape[k])
	}

	sl := ScaledLoads{In: map[int]int64{}, Out: map[int]int64{}, Den: 1}
	rawF := make([]int, len(shape))
	rawT := make([]int, len(shape))
	emit := func(cnt int64) {
		coordsF := coordsFromRaw(from, gFrom, rawF)
		coordsT := coordsFromRaw(to, gTo, rawT)
		dstRanks := ranksFor(gTo, coordsT)
		needy := 0
		for _, d := range dstRanks {
			owned := true
			for gd, cf := range coordsF {
				if cf != All && gFrom.Coord(d, gd) != cf {
					owned = false
					break
				}
			}
			if owned {
				continue
			}
			needy++
			sl.In[d] += cnt * sl.Den
		}
		if needy == 0 {
			return
		}
		srcRanks := ranksFor(gFrom, coordsF)
		if w := int64(len(srcRanks)); w != sl.Den {
			// The replica structure of one scheme is uniform over its
			// elements, so this rescale fires at most once.
			l := lcm64(sl.Den, w)
			if f := l / sl.Den; f > 1 {
				for r := range sl.In {
					sl.In[r] *= f
				}
				for r := range sl.Out {
					sl.Out[r] *= f
				}
				sl.Den = l
			}
		}
		share := cnt * int64(needy) * (sl.Den / int64(len(srcRanks)))
		for _, r := range srcRanks {
			sl.Out[r] += share
		}
		sl.Words += cnt * int64(needy)
	}
	switch len(shape) {
	case 1:
		for _, c0 := range perDim[0] {
			rawF[0], rawT[0] = c0.aF, c0.aT
			emit(c0.cnt)
		}
	case 2:
		for _, c0 := range perDim[0] {
			rawF[0], rawT[0] = c0.aF, c0.aT
			for _, c1 := range perDim[1] {
				rawF[1], rawT[1] = c1.aF, c1.aT
				emit(c0.cnt * c1.cnt)
			}
		}
	default:
		return ScaledLoads{}, fmt.Errorf("dist: analytic redistribution supports 1-D and 2-D arrays, got %d-D", len(shape))
	}
	return sl, nil
}

// RedistLoadsExact is the element-enumeration reference oracle for
// RedistLoads: identical semantics (including the even sender-side
// spread over replicated source owners), computed by visiting every
// element. Kept for property testing and as the Compiler's reference
// cost engine.
func RedistLoadsExact(gFrom, gTo *grid.Grid, shape []int, from, to Scheme) Loads {
	l := NewLoads()
	ForEachIndex(shape, func(idx []int) {
		src := from.Owners(gFrom, idx...)
		dst := to.Owners(gTo, idx...)
		needy := 0
		for _, d := range dst {
			owned := false
			for _, r := range src {
				if r == d {
					owned = true
					break
				}
			}
			if !owned {
				needy++
				l.In[d]++
			}
		}
		if needy == 0 {
			return
		}
		share := float64(needy) / float64(len(src))
		for _, r := range src {
			l.Out[r] += share
		}
		l.Words += float64(needy)
	})
	return l
}

// coordsFromRaw turns per-array-dimension raw coordinates (mapDim
// results before rotation, All for replicated dims) into the full
// per-grid-dimension coordinate vector, applying Fixed entries and the
// scheme's rotation.
func coordsFromRaw(s Scheme, g *grid.Grid, raw []int) []int {
	coords := make([]int, g.Q())
	for gd := range coords {
		if c, ok := s.Fixed[gd]; ok {
			coords[gd] = c
		}
	}
	z0 := raw[0]
	z1 := 0
	if len(raw) > 1 {
		z1 = raw[1]
	}
	if s.Rot != NoRotation {
		// Validate guarantees two non-replicated dims, so z0, z1 are
		// concrete coordinates here.
		n1 := g.Extent(s.Dims[0].GridDim)
		n2 := g.Extent(s.Dims[1].GridDim)
		switch s.Rot {
		case RotateDim2ByDim1:
			z1 = (((s.D1*z0 + s.D2*z1) % n2) + n2) % n2
		case RotateDim1ByDim2:
			z0 = (((s.D1*z0 + s.D2*z1) % n1) + n1) % n1
		}
	}
	coords[s.Dims[0].GridDim] = z0
	if len(raw) > 1 {
		coords[s.Dims[1].GridDim] = z1
	}
	return coords
}

// dimJointCounts builds the sparse joint count table of one array
// dimension: for every coordinate pair (a under dF on nF processors, b
// under dT on nT processors) the number of indices i in 1..size with
// dF(i) = a and dT(i) = b, in (a, b) order. Entries with zero count are
// omitted. Replicated dims contribute the single coordinate All.
func dimJointCounts(dF Dim, nF int, dT Dim, nT int, size int) []coordPair {
	switch {
	case dF.Replicated && dT.Replicated:
		return []coordPair{{All, All, int64(size)}}
	case dF.Replicated:
		var out []coordPair
		for b := 0; b < nT; b++ {
			if c := ownCount(dT, nT, b, size); c > 0 {
				out = append(out, coordPair{All, b, c})
			}
		}
		return out
	case dT.Replicated:
		var out []coordPair
		for a := 0; a < nF; a++ {
			if c := ownCount(dF, nF, a, size); c > 0 {
				out = append(out, coordPair{a, All, c})
			}
		}
		return out
	}
	switch {
	case !dF.Cyclic && !dT.Cyclic:
		return jointBlockBlock(dF, nF, dT, nT, size)
	case !dF.Cyclic && dT.Cyclic:
		return jointBlockCyclic(dF, nF, dT, nT, size, false)
	case dF.Cyclic && !dT.Cyclic:
		return jointBlockCyclic(dT, nT, dF, nF, size, true)
	default:
		return jointCyclicCyclic(dF, nF, dT, nT, size)
	}
}

// indexInterval returns the (possibly empty) 1-based index interval
// owned by coordinate a of a contiguous dim, clamped to [1, size]:
// the solutions of floor((Sign*i+Disp)/Block) = a.
func indexInterval(d Dim, a, size int) (lo, hi int) {
	zlo, zhi := a*d.Block, (a+1)*d.Block-1
	if d.Sign == 1 {
		lo, hi = zlo-d.Disp, zhi-d.Disp
	} else {
		lo, hi = d.Disp-zhi, d.Disp-zlo
	}
	if lo < 1 {
		lo = 1
	}
	if hi > size {
		hi = size
	}
	return lo, hi
}

// zRange maps the index interval [lo, hi] through z = Sign*i + Disp,
// returning the z interval (always with zl <= zh).
func zRange(d Dim, lo, hi int) (zl, zh int) {
	if d.Sign == 1 {
		return lo + d.Disp, hi + d.Disp
	}
	return d.Disp - hi, d.Disp - lo
}

// countMod counts the integers z in [zl, zh] (zl >= 0) whose residue
// mod p lies in [rlo, rhi].
func countMod(zl, zh, p, rlo, rhi int) int64 {
	if zh < zl {
		return 0
	}
	upTo := func(y int) int64 { // count over [0, y]
		if y < 0 {
			return 0
		}
		q, r := (y+1)/p, (y+1)%p
		c := int64(q) * int64(rhi-rlo+1)
		if r > 0 {
			top := r - 1
			if top > rhi {
				top = rhi
			}
			if top >= rlo {
				c += int64(top - rlo + 1)
			}
		}
		return c
	}
	return upTo(zh) - upTo(zl-1)
}

// ownCount returns the number of indices in 1..size owned by coordinate
// a of a partitioned dim on n processors.
func ownCount(d Dim, n, a, size int) int64 {
	if !d.Cyclic {
		lo, hi := indexInterval(d, a, size)
		if hi < lo {
			return 0
		}
		return int64(hi - lo + 1)
	}
	zl, zh := zRange(d, 1, size)
	return countMod(zl, zh, n*d.Block, a*d.Block, (a+1)*d.Block-1)
}

// jointBlockBlock counts contiguous x contiguous pairs by interval
// intersection.
func jointBlockBlock(dF Dim, nF int, dT Dim, nT int, size int) []coordPair {
	var out []coordPair
	for a := 0; a < nF; a++ {
		fLo, fHi := indexInterval(dF, a, size)
		if fHi < fLo {
			continue
		}
		for b := 0; b < nT; b++ {
			tLo, tHi := indexInterval(dT, b, size)
			lo, hi := fLo, fHi
			if tLo > lo {
				lo = tLo
			}
			if tHi < hi {
				hi = tHi
			}
			if hi >= lo {
				out = append(out, coordPair{a, b, int64(hi - lo + 1)})
			}
		}
	}
	return out
}

// jointBlockCyclic counts contiguous (dB) x cyclic (dC) pairs: for each
// contiguous block's index interval, the cyclic side's count is a
// residue-interval count. swapped reports that dB is really the
// destination side, so emitted pairs are (cyclic, block).
func jointBlockCyclic(dB Dim, nB int, dC Dim, nC int, size int, swapped bool) []coordPair {
	var out []coordPair
	pC := nC * dC.Block
	for a := 0; a < nB; a++ {
		lo, hi := indexInterval(dB, a, size)
		if hi < lo {
			continue
		}
		zl, zh := zRange(dC, lo, hi)
		for b := 0; b < nC; b++ {
			c := countMod(zl, zh, pC, b*dC.Block, (b+1)*dC.Block-1)
			if c == 0 {
				continue
			}
			if swapped {
				out = append(out, coordPair{b, a, c})
			} else {
				out = append(out, coordPair{a, b, c})
			}
		}
	}
	if swapped {
		sortPairs(out)
	}
	return out
}

// jointCyclicCyclic counts cyclic x cyclic pairs. The coordinate pair of
// index i repeats with period lcm(pF, pT), so one period window is
// scanned and scaled; when the joint period exceeds the extent this
// degenerates to a plain scan of the dimension — never worse than
// enumerating the dimension once (and independent of the other
// dimensions of the array).
func jointCyclicCyclic(dF Dim, nF int, dT Dim, nT int, size int) []coordPair {
	pF, pT := nF*dF.Block, nT*dT.Block
	period := lcm(pF, pT)
	if period <= 0 || period > size {
		period = size
	}
	full := int64(size / period)
	rem := size % period
	counts := make([]int64, nF*nT)
	coordOf := func(d Dim, n, i int) int {
		z := d.Sign*i + d.Disp
		return (z / d.Block) % n
	}
	for i := 1; i <= period; i++ {
		a := coordOf(dF, nF, i)
		b := coordOf(dT, nT, i)
		c := full
		if i <= rem {
			c++
		}
		counts[a*nT+b] += c
	}
	var out []coordPair
	for a := 0; a < nF; a++ {
		for b := 0; b < nT; b++ {
			if c := counts[a*nT+b]; c > 0 {
				out = append(out, coordPair{a, b, c})
			}
		}
	}
	return out
}

// sortPairs orders a joint count table by (aF, aT).
func sortPairs(ps []coordPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].aF < ps[j-1].aF || (ps[j].aF == ps[j-1].aF && ps[j].aT < ps[j-1].aT)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func lcm64(a, b int64) int64 {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
