package dist

import (
	"testing"
	"testing/quick"

	"dmcc/internal/grid"
)

func TestPlanIdenticalSchemesIsEmpty(t *testing.T) {
	g := grid.New(4)
	s := Scheme1D(BlockContiguous(16, 4, 0), nil)
	p := NewPlan(g, []int{16}, s, s)
	if p.TotalWords != 0 || len(p.Moves) != 0 {
		t.Fatalf("plan = %+v", p)
	}
	if !Identical(g, []int{16}, s, s) {
		t.Fatal("Identical(s,s) = false")
	}
}

func TestPlanBlockToCyclic(t *testing.T) {
	g := grid.New(4)
	block := Scheme1D(BlockContiguous(16, 4, 0), nil)
	cyc := Scheme1D(Cyclic(0), nil)
	p := NewPlan(g, []int{16}, block, cyc)
	// Element i stays put iff floor((i-1)/4) == (i-1) mod 4: i = 1, 6, 11, 16.
	if p.TotalWords != 12 {
		t.Fatalf("TotalWords = %d, want 12", p.TotalWords)
	}
	if Identical(g, []int{16}, block, cyc) {
		t.Fatal("block and cyclic reported identical")
	}
}

func TestPlanPartitionedToReplicated(t *testing.T) {
	g := grid.New(4)
	part := Scheme1D(BlockContiguous(8, 4, 0), nil)
	repl := Scheme1D(Replicated(0), nil)
	p := NewPlan(g, []int{8}, part, repl)
	// Every element must reach the 3 processors that lack it: 8*3 = 24.
	if p.TotalWords != 24 {
		t.Fatalf("TotalWords = %d, want 24", p.TotalWords)
	}
	// Reverse direction is free: every target already holds the data.
	p2 := NewPlan(g, []int{8}, repl, part)
	if p2.TotalWords != 0 {
		t.Fatalf("replicated->partitioned moved %d words", p2.TotalWords)
	}
}

func TestPlanRowToColumnDistribution(t *testing.T) {
	// The Jacobi L1->L2 scheme change of Section 4 (Fig 4): a 2-D array
	// switching from row blocks to column blocks on a linear grid of 4.
	g := grid.New(4, 1)
	m := 8
	rows := Scheme2D(BlockContiguous(m, 4, 0), Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil)
	cols := Scheme2D(Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, BlockContiguous(m, 4, 0), nil)
	if err := rows.Validate(g, []int{m, m}); err != nil {
		t.Fatal(err)
	}
	if err := cols.Validate(g, []int{m, m}); err != nil {
		t.Fatal(err)
	}
	p := NewPlan(g, []int{m, m}, rows, cols)
	// All elements except the diagonal blocks move: 64 - 4*4 = 48.
	if p.TotalWords != 48 {
		t.Fatalf("TotalWords = %d, want 48", p.TotalWords)
	}
	// Perfect symmetry: every processor sends and receives 12 words.
	if p.MaxInWords != 12 || p.MaxOutWords != 12 {
		t.Fatalf("MaxIn/Out = %d/%d, want 12/12", p.MaxInWords, p.MaxOutWords)
	}
}

func TestPlanMovesAggregatePerPair(t *testing.T) {
	g := grid.New(2)
	a := Scheme1D(BlockContiguous(8, 2, 0), nil)
	b := Scheme1D(BlockContiguousDecreasing(8, 2, 0), nil)
	p := NewPlan(g, []int{8}, a, b)
	// Complete swap: 0 -> 1 (4 words) and 1 -> 0 (4 words).
	if len(p.Moves) != 2 || p.TotalWords != 8 {
		t.Fatalf("plan = %+v", p)
	}
	for _, mv := range p.Moves {
		if mv.Words != 4 || mv.Src == mv.Dst {
			t.Fatalf("move = %+v", mv)
		}
	}
}

// Property: a redistribution plan never moves more words than
// (number of elements) x (number of destination owners per element),
// and moving to a scheme and back costs the same in both directions for
// partitioned schemes (symmetric difference of the layouts).
func TestPlanSymmetryQuick(t *testing.T) {
	f := func(sizeRaw, blockRaw uint8) bool {
		n := 4
		size := int(sizeRaw)%30 + n
		block := int(blockRaw)%4 + 1
		g := grid.New(n)
		a := Scheme1D(BlockContiguous(size, n, 0), nil)
		b := Scheme1D(BlockCyclic(block, 0), nil)
		if a.Validate(g, []int{size}) != nil || b.Validate(g, []int{size}) != nil {
			return false
		}
		ab := NewPlan(g, []int{size}, a, b)
		ba := NewPlan(g, []int{size}, b, a)
		if ab.TotalWords != ba.TotalWords {
			return false
		}
		return ab.TotalWords <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachIndexCoversShape(t *testing.T) {
	var seen [][]int
	ForEachIndex([]int{2, 3}, func(idx []int) {
		seen = append(seen, append([]int(nil), idx...))
	})
	if len(seen) != 6 {
		t.Fatalf("visited %d", len(seen))
	}
	if seen[0][0] != 1 || seen[0][1] != 1 || seen[5][0] != 2 || seen[5][1] != 3 {
		t.Fatalf("order wrong: %v", seen)
	}
}
