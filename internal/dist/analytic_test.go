package dist

import (
	"math"
	"math/rand"
	"testing"

	"dmcc/internal/grid"
)

// randomDim builds a valid Dim for a dimension of the given size mapped
// to a grid dimension with extent n.
func randomDim(rng *rand.Rand, size, n, gridDim int) Dim {
	if rng.Intn(4) == 0 {
		return Dim{Replicated: true, GridDim: gridDim}
	}
	d := Dim{Sign: 1, Block: 1 + rng.Intn(4), Cyclic: rng.Intn(2) == 0, GridDim: gridDim}
	if rng.Intn(3) == 0 {
		d.Sign = -1
	}
	if d.Sign == 1 {
		d.Disp = -1 + rng.Intn(4) // z in [Disp+1, Disp+size]
	} else {
		d.Disp = size + rng.Intn(3) // z in [Disp-size, Disp-1]
	}
	if !d.Cyclic {
		// Pick the block size so the largest block index fits in n.
		zmax := d.Sign*size + d.Disp
		if d.Sign == -1 {
			zmax = d.Disp - 1
		}
		d.Block = ceilDiv(zmax+1, n)
		if d.Block < 1 {
			d.Block = 1
		}
		d.Block += rng.Intn(2) // occasionally leave slack
	}
	return d
}

// randomScheme builds a valid random Scheme for shape on g.
func randomScheme(rng *rand.Rand, g *grid.Grid, shape []int) Scheme {
	dims := rng.Perm(g.Q())[:len(shape)]
	s := Scheme{Fixed: map[int]int{}}
	for k, size := range shape {
		s.Dims = append(s.Dims, randomDim(rng, size, g.Extent(dims[k]), dims[k]))
	}
	if len(shape) == 2 && !s.Dims[0].Replicated && !s.Dims[1].Replicated && rng.Intn(3) == 0 {
		s.Rot = Rotation(1 + rng.Intn(2))
		s.D1 = 1 - 2*rng.Intn(2)
		s.D2 = 1 - 2*rng.Intn(2)
	}
	used := map[int]bool{}
	for _, d := range s.Dims {
		used[d.GridDim] = true
	}
	for gd := 0; gd < g.Q(); gd++ {
		if used[gd] {
			continue
		}
		if rng.Intn(2) == 0 {
			s.Fixed[gd] = All
		} else {
			s.Fixed[gd] = rng.Intn(g.Extent(gd))
		}
	}
	return s
}

func loadsEqual(t *testing.T, got, want Loads) {
	t.Helper()
	const eps = 1e-9
	if math.Abs(got.Words-want.Words) > eps {
		t.Errorf("Words: analytic %v, oracle %v", got.Words, want.Words)
	}
	cmp := func(name string, a, b map[int]float64) {
		for r, w := range b {
			if math.Abs(a[r]-w) > eps {
				t.Errorf("%s[%d]: analytic %v, oracle %v", name, r, a[r], w)
			}
		}
		for r, w := range a {
			if math.Abs(w) > eps && math.Abs(b[r]-w) > eps {
				t.Errorf("%s[%d]: analytic %v, oracle %v", name, r, w, b[r])
			}
		}
	}
	cmp("In", got.In, want.In)
	cmp("Out", got.Out, want.Out)
}

// TestRedistLoadsMatchesOracle is the randomized property test: the
// analytic per-processor loads must equal the element-enumeration
// oracle's over random scheme pairs covering block, cyclic,
// block-cyclic, replicated, displaced and reversed distributions, with
// rotations, on 1-D and 2-D arrays and across differently-shaped grids
// of equal size.
func TestRedistLoadsMatchesOracle(t *testing.T) {
	type gridPair struct{ f, t *grid.Grid }
	cases := []struct {
		name  string
		grids []gridPair
		shape []int
	}{
		{"1d-p4", []gridPair{{grid.New(4), grid.New(4)}}, []int{17}},
		{"1d-p6", []gridPair{{grid.New(6), grid.New(6)}}, []int{16}},
		{"2d-2x2", []gridPair{{grid.New(2, 2), grid.New(2, 2)}}, []int{8, 6}},
		{"2d-cross-grid", []gridPair{
			{grid.New(4, 1), grid.New(1, 4)},
			{grid.New(2, 2), grid.New(4, 1)},
		}, []int{7, 7}},
		{"1d-on-2d-grid", []gridPair{{grid.New(2, 3), grid.New(3, 2)}}, []int{13}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 60; trial++ {
				gp := tc.grids[trial%len(tc.grids)]
				from := randomScheme(rng, gp.f, tc.shape)
				to := randomScheme(rng, gp.t, tc.shape)
				if err := from.Validate(gp.f, tc.shape); err != nil {
					t.Fatalf("trial %d: invalid source scheme %s: %v", trial, from, err)
				}
				if err := to.Validate(gp.t, tc.shape); err != nil {
					t.Fatalf("trial %d: invalid destination scheme %s: %v", trial, to, err)
				}
				got, err := RedistLoads(gp.f, gp.t, tc.shape, from, to)
				if err != nil {
					t.Fatalf("trial %d: RedistLoads(%s -> %s): %v", trial, from, to, err)
				}
				want := RedistLoadsExact(gp.f, gp.t, tc.shape, from, to)
				if t.Failed() {
					return
				}
				loadsEqual(t, got, want)
				if t.Failed() {
					t.Fatalf("trial %d: %s on %s -> %s on %s", trial, from, gp.f, to, gp.t)
				}
			}
		})
	}
}

// TestRedistLoadsIdentity: no words move when the scheme does not change.
func TestRedistLoadsIdentity(t *testing.T) {
	g := grid.New(4)
	s := Scheme1D(BlockContiguous(16, 4, 0), nil)
	l, err := RedistLoads(g, g, []int{16}, s, s)
	if err != nil {
		t.Fatal(err)
	}
	if l.Words != 0 || l.MaxLoad() != 0 {
		t.Fatalf("identity redistribution moved %v words (max %v)", l.Words, l.MaxLoad())
	}
}

// TestRedistLoadsBlockToCyclic checks a hand-computed case: 8 elements,
// 2 processors, contiguous blocks -> cyclic. P0 holds 1..4, needs
// {1,3,5,7}; P1 holds 5..8, needs {2,4,6,8}. Each receives 2 foreign
// words and sends 2.
func TestRedistLoadsBlockToCyclic(t *testing.T) {
	g := grid.New(2)
	from := Scheme1D(BlockContiguous(8, 2, 0), nil)
	to := Scheme1D(Cyclic(0), nil)
	l, err := RedistLoads(g, g, []int{8}, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if l.Words != 4 {
		t.Fatalf("total words = %v, want 4", l.Words)
	}
	for r := 0; r < 2; r++ {
		if l.In[r] != 2 || l.Out[r] != 2 {
			t.Fatalf("rank %d: in=%v out=%v, want 2/2", r, l.In[r], l.Out[r])
		}
	}
}

// TestRedistLoadsReplicatedSender: a replicated source spreads its send
// load evenly across the copies. 1-D array of 8 on 2 procs, replicated
// -> cyclic: each processor already holds everything it needs, so no
// words move. Replicated -> fixed-on-p1: p0's 4 missing words must be
// billed half to each replica.
func TestRedistLoadsReplicatedSender(t *testing.T) {
	g := grid.New(2)
	repl := Scheme1D(Replicated(0), nil)
	l, err := RedistLoads(g, g, []int{8}, repl, Scheme1D(Cyclic(0), nil))
	if err != nil {
		t.Fatal(err)
	}
	if l.Words != 0 {
		t.Fatalf("replicated -> cyclic moved %v words, want 0", l.Words)
	}
	// Single-owner destination: one contiguous block covering everything
	// at coordinate 0.
	oneOwner := Scheme1D(Dim{Sign: 1, Disp: -1, Block: 8, GridDim: 0}, nil)
	l, err = RedistLoads(g, g, []int{8}, repl, oneOwner)
	if err != nil {
		t.Fatal(err)
	}
	// Destination p0 already owns a replica: nothing moves.
	if l.Words != 0 {
		t.Fatalf("replicated -> single owner moved %v words, want 0", l.Words)
	}
	// Reverse: single owner -> replicated. p1 needs all 8 words; the
	// only source owner is p0 (no spread possible).
	l, err = RedistLoads(g, g, []int{8}, oneOwner, repl)
	if err != nil {
		t.Fatal(err)
	}
	if l.Words != 8 || l.In[1] != 8 || l.Out[0] != 8 {
		t.Fatalf("single owner -> replicated: words=%v in[1]=%v out[0]=%v, want 8/8/8", l.Words, l.In[1], l.Out[0])
	}
	want := RedistLoadsExact(g, g, []int{8}, oneOwner, repl)
	loadsEqual(t, l, want)
}

// TestRedistLoadsScaledMatchesFloat: the integer-scaled loads are the
// same rationals the float calculator accumulates — exactly equal on
// power-of-two replica counts (dyadic splits), within one part in 1e12
// otherwise — with a scheme-constant denominator and integral receives.
func TestRedistLoadsScaledMatchesFloat(t *testing.T) {
	type gridPair struct{ f, t *grid.Grid }
	cases := []struct {
		name  string
		grids []gridPair
		shape []int
		pow2  bool
	}{
		{"1d-p4", []gridPair{{grid.New(4), grid.New(4)}}, []int{17}, true},
		{"1d-p6", []gridPair{{grid.New(6), grid.New(6)}}, []int{16}, false},
		{"2d-2x2", []gridPair{{grid.New(2, 2), grid.New(2, 2)}}, []int{8, 6}, true},
		{"2d-cross-grid", []gridPair{
			{grid.New(4, 1), grid.New(1, 4)},
			{grid.New(2, 2), grid.New(4, 1)},
		}, []int{7, 7}, true},
		{"1d-on-2d-grid", []gridPair{{grid.New(2, 3), grid.New(3, 2)}}, []int{13}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 60; trial++ {
				gp := tc.grids[trial%len(tc.grids)]
				from := randomScheme(rng, gp.f, tc.shape)
				to := randomScheme(rng, gp.t, tc.shape)
				want, err := RedistLoads(gp.f, gp.t, tc.shape, from, to)
				if err != nil {
					t.Fatalf("trial %d: RedistLoads: %v", trial, err)
				}
				got, err := RedistLoadsScaled(gp.f, gp.t, tc.shape, from, to)
				if err != nil {
					t.Fatalf("trial %d: RedistLoadsScaled: %v", trial, err)
				}
				if got.Den < 1 {
					t.Fatalf("trial %d: Den = %d", trial, got.Den)
				}
				if float64(got.Words) != want.Words {
					t.Fatalf("trial %d: Words = %d, want %g", trial, got.Words, want.Words)
				}
				check := func(side string, nums map[int]int64, floats map[int]float64) {
					for r := int64(0); r < int64(gp.f.Size()); r++ {
						g := float64(nums[int(r)]) / float64(got.Den)
						w := floats[int(r)]
						if tc.pow2 && isPow2(got.Den) {
							if g != w {
								t.Fatalf("trial %d: %s[%d] = %v, want %v exactly (den %d)", trial, side, r, g, w, got.Den)
							}
						} else if diff := g - w; diff > 1e-9 || diff < -1e-9 {
							t.Fatalf("trial %d: %s[%d] = %v, want %v (den %d)", trial, side, r, g, w, got.Den)
						}
					}
				}
				check("in", got.In, want.In)
				check("out", got.Out, want.Out)
				// Receives are always whole words.
				for r, v := range got.In {
					if v%got.Den != 0 {
						t.Fatalf("trial %d: in[%d] = %d/%d is fractional", trial, r, v, got.Den)
					}
				}
				// The bottleneck agrees with the float calculator's.
				if g, w := float64(got.MaxNum())/float64(got.Den), want.MaxLoad(); g-w > 1e-9 || w-g > 1e-9 {
					t.Fatalf("trial %d: MaxNum/Den = %v, MaxLoad = %v", trial, g, w)
				}
			}
		})
	}
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }
