// Package dist implements the generalized data distribution functions of
// Section 2.1 of the paper.
//
// The 1-D distribution function for an array entry A(i) is
//
//	fA(i) = floor((d*i + disp) / block) [mod N]      if A is partitioned
//	fA(i) = ALL                                      if A is replicated
//
// where d in {-1, +1} selects increasing or decreasing indexing, disp is
// the displacement applied to the subscript, block is the distribution
// block size, and the optional "mod N" makes the distribution cyclic
// (block size 1) or block-cyclic (block size > 1). fA(i) is a coordinate
// in the grid dimension the array dimension is mapped to.
//
// The 2-D function composes two 1-D functions and optionally makes one
// grid coordinate depend on the other ("rotation"), which expresses the
// skewed layouts of Cannon's matrix-multiplication algorithm (Fig 1 b,c):
//
//	fA(i,j) = (z1, z2)                               independent
//	fA(i,j) = (z1, (d1*z1 + d2*z2) mod N2)           dim 2 rotated by dim 1
//	fA(i,j) = ((d1*z1 + d2*z2) mod N1, z2)           dim 1 rotated by dim 2
//
// Arrays are 1-based (Fortran convention), matching the paper's examples.
package dist

import (
	"fmt"

	"dmcc/internal/grid"
)

// All is the owner coordinate reported for a replicated dimension: the
// element lives at every coordinate of that grid dimension.
const All = -1

// Dim describes how one array dimension is distributed.
type Dim struct {
	// Replicated marks the dimension as replicated on its grid dimension;
	// the remaining fields except GridDim are ignored.
	Replicated bool
	// Sign is the paper's d in {-1, +1}: increasing or decreasing indexing.
	Sign int
	// Disp is the displacement added to Sign*i before blocking.
	Disp int
	// Block is the distribution block size (>= 1).
	Block int
	// Cyclic applies the optional "mod N" wrap: Block==1 gives a cyclic
	// distribution, Block>1 block-cyclic. Without it the distribution is
	// contiguous.
	Cyclic bool
	// GridDim is the 0-based processor-grid dimension this array
	// dimension is mapped to (the paper's map(Ak)).
	GridDim int
}

// Rotation selects a dependent 2-D distribution.
type Rotation int

const (
	// NoRotation distributes the two array dimensions independently.
	NoRotation Rotation = iota
	// RotateDim2ByDim1 replaces z2 with (D1*z1 + D2*z2) mod N(map(A2)).
	RotateDim2ByDim1
	// RotateDim1ByDim2 replaces z1 with (D1*z1 + D2*z2) mod N(map(A1)).
	RotateDim1ByDim2
)

func (r Rotation) String() string {
	switch r {
	case NoRotation:
		return "independent"
	case RotateDim2ByDim1:
		return "dim2 rotated by dim1"
	case RotateDim1ByDim2:
		return "dim1 rotated by dim2"
	}
	return fmt.Sprintf("Rotation(%d)", int(r))
}

// Scheme is a full distribution scheme for a 1-D or 2-D array on a
// processor grid. If the grid has more dimensions than the array, Fixed
// pins each remaining grid dimension either to a specific coordinate or
// to All (replicated along it), as required at the end of Section 2.1.
type Scheme struct {
	// Dims holds one entry per array dimension (1 or 2 entries).
	Dims []Dim
	// Rot selects a dependent 2-D distribution; D1, D2 in {-1,+1} are its
	// coefficients. Ignored for 1-D arrays and NoRotation.
	Rot    Rotation
	D1, D2 int
	// Fixed maps every grid dimension not used by Dims to a coordinate,
	// or to All for replication. Keys are grid dimensions.
	Fixed map[int]int
}

// Validate checks the scheme against an array shape (per-dimension sizes,
// 1-based indexing so valid indices are 1..shape[k]) and a grid.
func (s Scheme) Validate(g *grid.Grid, shape []int) error {
	if len(s.Dims) != len(shape) {
		return fmt.Errorf("dist: scheme has %d dims for %d-D array", len(s.Dims), len(shape))
	}
	if len(s.Dims) < 1 || len(s.Dims) > 2 {
		return fmt.Errorf("dist: only 1-D and 2-D arrays are supported, got %d-D", len(s.Dims))
	}
	used := map[int]bool{}
	for k, d := range s.Dims {
		if d.GridDim < 0 || d.GridDim >= g.Q() {
			return fmt.Errorf("dist: dim %d mapped to grid dim %d, out of range for %s", k, d.GridDim, g)
		}
		if used[d.GridDim] {
			return fmt.Errorf("dist: two array dimensions mapped to grid dim %d", d.GridDim)
		}
		used[d.GridDim] = true
		if d.Replicated {
			continue
		}
		if d.Sign != 1 && d.Sign != -1 {
			return fmt.Errorf("dist: dim %d has sign %d, want -1 or +1", k, d.Sign)
		}
		if d.Block < 1 {
			return fmt.Errorf("dist: dim %d has block size %d", k, d.Block)
		}
		n := g.Extent(d.GridDim)
		for _, i := range []int{1, shape[k]} {
			z := d.Sign*i + d.Disp
			if z < 0 {
				return fmt.Errorf("dist: dim %d: d*i+disp = %d < 0 at i=%d", k, z, i)
			}
			if !d.Cyclic && z/d.Block >= n {
				return fmt.Errorf("dist: dim %d: contiguous block index %d >= N=%d at i=%d", k, z/d.Block, n, i)
			}
		}
	}
	if s.Rot != NoRotation {
		if len(s.Dims) != 2 {
			return fmt.Errorf("dist: rotation requires a 2-D array")
		}
		if s.Dims[0].Replicated || s.Dims[1].Replicated {
			return fmt.Errorf("dist: rotation with a replicated dimension is not supported")
		}
		if (s.D1 != 1 && s.D1 != -1) || (s.D2 != 1 && s.D2 != -1) {
			return fmt.Errorf("dist: rotation coefficients must be -1 or +1, got %d,%d", s.D1, s.D2)
		}
	}
	for gd := 0; gd < g.Q(); gd++ {
		if used[gd] {
			if _, ok := s.Fixed[gd]; ok {
				return fmt.Errorf("dist: grid dim %d both mapped and fixed", gd)
			}
			continue
		}
		c, ok := s.Fixed[gd]
		if !ok {
			return fmt.Errorf("dist: grid dim %d is neither mapped nor fixed", gd)
		}
		if c != All && (c < 0 || c >= g.Extent(gd)) {
			return fmt.Errorf("dist: grid dim %d fixed to %d, out of range", gd, c)
		}
	}
	return nil
}

// mapDim applies the 1-D distribution function of one dimension, returning
// the grid coordinate (All for replicated dimensions).
func (d Dim) mapDim(g *grid.Grid, i int) int {
	if d.Replicated {
		return All
	}
	n := g.Extent(d.GridDim)
	z := d.Sign*i + d.Disp
	if z < 0 {
		panic(fmt.Sprintf("dist: d*i+disp = %d < 0 at i=%d", z, i))
	}
	b := z / d.Block
	if d.Cyclic {
		return b % n
	}
	if b >= n {
		panic(fmt.Sprintf("dist: contiguous block index %d >= N=%d at i=%d", b, n, i))
	}
	return b
}

// GridCoords returns the per-grid-dimension owner coordinates of element
// idx (1-based, one subscript per array dimension). Entries equal to All
// mean the element is replicated along that grid dimension.
func (s Scheme) GridCoords(g *grid.Grid, idx ...int) []int {
	if len(idx) != len(s.Dims) {
		panic(fmt.Sprintf("dist: %d subscripts for %d-D scheme", len(idx), len(s.Dims)))
	}
	coords := make([]int, g.Q())
	for gd := range coords {
		if c, ok := s.Fixed[gd]; ok {
			coords[gd] = c
		}
	}
	z := make([]int, len(s.Dims))
	for k, d := range s.Dims {
		z[k] = d.mapDim(g, idx[k])
	}
	if s.Rot != NoRotation {
		n1 := g.Extent(s.Dims[0].GridDim)
		n2 := g.Extent(s.Dims[1].GridDim)
		switch s.Rot {
		case RotateDim2ByDim1:
			z[1] = (((s.D1*z[0] + s.D2*z[1]) % n2) + n2) % n2
		case RotateDim1ByDim2:
			z[0] = (((s.D1*z[0] + s.D2*z[1]) % n1) + n1) % n1
		}
	}
	for k, d := range s.Dims {
		coords[d.GridDim] = z[k]
	}
	return coords
}

// Owners returns the ranks of every processor holding element idx
// (several when any grid dimension is replicated), in ascending order.
func (s Scheme) Owners(g *grid.Grid, idx ...int) []int {
	return ranksFor(g, s.GridCoords(g, idx...))
}

// ranksFor expands a per-grid-dimension coordinate vector (entries may be
// All) into the ascending list of matching ranks.
func ranksFor(g *grid.Grid, coords []int) []int {
	// Expand dimension by dimension.
	acc := [][]int{make([]int, 0, g.Q())}
	for gd := 0; gd < g.Q(); gd++ {
		var choices []int
		if coords[gd] == All {
			for c := 0; c < g.Extent(gd); c++ {
				choices = append(choices, c)
			}
		} else {
			choices = []int{coords[gd]}
		}
		var next [][]int
		for _, pre := range acc {
			for _, c := range choices {
				t := append(append([]int(nil), pre...), c)
				next = append(next, t)
			}
		}
		acc = next
	}
	ranks := make([]int, 0, len(acc))
	for _, t := range acc {
		ranks = append(ranks, g.Rank(t...))
	}
	return ranks
}

// IsOwner reports whether the processor with the given rank holds element idx.
func (s Scheme) IsOwner(g *grid.Grid, rank int, idx ...int) bool {
	coords := s.GridCoords(g, idx...)
	for gd, c := range coords {
		if c == All {
			continue
		}
		if g.Coord(rank, gd) != c {
			return false
		}
	}
	return true
}

// LocalIndex returns the 0-based local index of element i within dimension
// k's local storage on an owning processor: contiguous distributions store
// z mod block; (block-)cyclic distributions store consecutive owned blocks
// consecutively. Replicated dimensions store the full index range (i-1).
func (s Scheme) LocalIndex(g *grid.Grid, k, i int) int {
	d := s.Dims[k]
	if d.Replicated {
		return i - 1
	}
	z := d.Sign*i + d.Disp
	b := z / d.Block
	off := z % d.Block
	if !d.Cyclic {
		return off
	}
	n := g.Extent(d.GridDim)
	return (b/n)*d.Block + off
}

// LocalCount returns how many indices of dimension k (1..size) the
// processor at grid coordinate c of the dimension's grid dim owns.
func (s Scheme) LocalCount(g *grid.Grid, k, size, c int) int {
	d := s.Dims[k]
	if d.Replicated {
		return size
	}
	count := 0
	for i := 1; i <= size; i++ {
		if d.mapDim(g, i) == c {
			count++
		}
	}
	return count
}

// OwnedIndices returns, in increasing order, the 1-based indices of
// dimension k (1..size) owned by grid coordinate c.
func (s Scheme) OwnedIndices(g *grid.Grid, k, size, c int) []int {
	d := s.Dims[k]
	var out []int
	for i := 1; i <= size; i++ {
		if d.Replicated || d.mapDim(g, i) == c {
			out = append(out, i)
		}
	}
	return out
}

// String gives a compact description, e.g.
// "[block(4)->g0, cyclic->g1] fixed{}".
func (s Scheme) String() string {
	out := "["
	for k, d := range s.Dims {
		if k > 0 {
			out += ", "
		}
		switch {
		case d.Replicated:
			out += fmt.Sprintf("repl->g%d", d.GridDim)
		case !d.Cyclic:
			out += fmt.Sprintf("block(%d)%s->g%d", d.Block, signStr(d.Sign), d.GridDim)
		case d.Block == 1:
			out += fmt.Sprintf("cyclic%s->g%d", signStr(d.Sign), d.GridDim)
		default:
			out += fmt.Sprintf("blockcyclic(%d)%s->g%d", d.Block, signStr(d.Sign), d.GridDim)
		}
	}
	out += "]"
	if s.Rot != NoRotation {
		out += fmt.Sprintf(" %s (d1=%d,d2=%d)", s.Rot, s.D1, s.D2)
	}
	if len(s.Fixed) > 0 {
		out += fmt.Sprintf(" fixed%v", s.Fixed)
	}
	return out
}

func signStr(s int) string {
	if s == -1 {
		return "-"
	}
	return ""
}

// GlobalIndex is the inverse of LocalIndex for partitioned dimensions: it
// returns the 1-based global index of local slot li of dimension k on the
// processor at grid coordinate c (and li itself plus one for replicated
// dimensions, which store the full range).
func (s Scheme) GlobalIndex(g *grid.Grid, k, c, li int) int {
	d := s.Dims[k]
	if d.Replicated {
		return li + 1
	}
	n := g.Extent(d.GridDim)
	var z int
	if !d.Cyclic {
		// Contiguous: z = c*Block + offset.
		z = c*d.Block + li
	} else {
		// (Block-)cyclic: local slot li sits in owned block li/Block at
		// offset li%Block; owned block q is global block q*n + c.
		q := li / d.Block
		off := li % d.Block
		z = (q*n+c)*d.Block + off
	}
	// Invert z = Sign*i + Disp.
	return (z - d.Disp) / d.Sign
}
