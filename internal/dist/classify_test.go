// Classification and composed-plan properties: the per-dimension kinds
// match the syntactic change, a pure remap prices exactly like the
// point-to-point loads, widening prices at tree depth instead of star
// width, and narrowing is free.

package dist

import (
	"math"
	"math/rand"
	"testing"

	"dmcc/internal/grid"
)

func part(gd, block int, cyclic bool) Dim {
	return Dim{Sign: 1, Disp: -1, Block: block, Cyclic: cyclic, GridDim: gd}
}

// TestClassifyPureRemap: block -> cyclic on the same grid is a single
// AllToAll step whose loads equal RedistLoads exactly.
func TestClassifyPureRemap(t *testing.T) {
	g := grid.New(4)
	shape := []int{32}
	from := Scheme{Dims: []Dim{part(0, 8, false)}}
	to := Scheme{Dims: []Dim{part(0, 1, true)}}
	pl, err := ClassifyChange(g, g, shape, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PerDim[0] != ChangeRemap {
		t.Fatalf("per-dim kind = %v, want remap", pl.PerDim[0])
	}
	if pl.WidenGroup != 1 || len(pl.WidenDims) != 0 {
		t.Fatalf("remap plan has widen group %d dims %v", pl.WidenGroup, pl.WidenDims)
	}
	if len(pl.Steps) != 1 || pl.Steps[0].Kind != StepAllToAll {
		t.Fatalf("remap plan steps = %+v, want one all-to-all", pl.Steps)
	}
	ref, err := RedistLoads(g, g, shape, from, to)
	if err != nil {
		t.Fatal(err)
	}
	requireLoadsEqual(t, pl.Exchange, ref)
	if got, want := pl.Time(1), ref.MaxLoad(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("remap Time = %v, want p2p MaxLoad %v", got, want)
	}
}

// TestClassifyWidening: pinning a grid dimension to All lowers to a
// multicast tree — stage 1 is free (a source owner sits in every
// group), and the priced time is payload*log2(W), strictly below the
// point-to-point star payload*(W-1).
func TestClassifyWidening(t *testing.T) {
	g := grid.New(4, 4)
	shape := []int{16}
	from := Scheme{Dims: []Dim{part(0, 1, true)}, Fixed: map[int]int{1: 2}}
	to := Scheme{Dims: []Dim{part(0, 1, true)}, Fixed: map[int]int{1: All}}
	pl, err := ClassifyChange(g, g, shape, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PerDim[0] != ChangeNone || pl.PerDim[1] != ChangeWiden {
		t.Fatalf("per-dim kinds = %v, want [none widen]", pl.PerDim)
	}
	if pl.WidenGroup != 4 {
		t.Fatalf("widen group = %d, want 4", pl.WidenGroup)
	}
	if pl.Exchange.Words != 0 {
		t.Fatalf("widening paid %v stage-1 words; the source owner roots every group", pl.Exchange.Words)
	}
	if len(pl.Steps) != 1 || pl.Steps[0].Kind != StepMulticast {
		t.Fatalf("widening plan steps = %+v, want one multicast", pl.Steps)
	}
	// Each of the 4 owners on column 2 holds 4 elements: tree payload 4,
	// depth log2(4) = 2 -> time 8. The p2p star pays 4*(4-1) = 12.
	if got := pl.Time(1); math.Abs(got-8) > 1e-9 {
		t.Fatalf("widening Time = %v, want 8", got)
	}
	ref, err := RedistLoads(g, g, shape, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if p2p := ref.MaxLoad(); pl.Time(1) >= p2p {
		t.Fatalf("widening collective time %v not below p2p %v", pl.Time(1), p2p)
	}
}

// TestClassifyNarrowing: All -> concrete moves nothing.
func TestClassifyNarrowing(t *testing.T) {
	g := grid.New(4, 4)
	shape := []int{16}
	from := Scheme{Dims: []Dim{part(0, 1, true)}, Fixed: map[int]int{1: All}}
	to := Scheme{Dims: []Dim{part(0, 1, true)}, Fixed: map[int]int{1: 1}}
	pl, err := ClassifyChange(g, g, shape, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PerDim[1] != ChangeNarrow {
		t.Fatalf("per-dim kind = %v, want narrow", pl.PerDim[1])
	}
	if len(pl.Steps) != 0 || pl.Time(1) != 0 {
		t.Fatalf("narrowing plan not free: steps %+v time %v", pl.Steps, pl.Time(1))
	}
}

// TestClassifyIdentity: the same scheme twice has no steps and all-None
// kinds.
func TestClassifyIdentity(t *testing.T) {
	g := grid.New(2, 8)
	shape := []int{12, 12}
	s := Scheme{Dims: []Dim{part(0, 6, false), part(1, 1, true)}}
	pl, err := ClassifyChange(g, g, shape, s, s)
	if err != nil {
		t.Fatal(err)
	}
	for gd, k := range pl.PerDim {
		if k != ChangeNone {
			t.Fatalf("dim %d kind = %v, want none", gd, k)
		}
	}
	if len(pl.Steps) != 0 || pl.Time(1) != 0 {
		t.Fatalf("identity plan not empty: %+v", pl)
	}
}

// TestClassifyMatchesRedistLoadsFuzz: whenever nothing widens, the
// composed plan's exchange loads must equal RedistLoads exactly, and
// with widening the priced time must never exceed the point-to-point
// bottleneck (the lowering is an optimization, not a penalty).
func TestClassifyMatchesRedistLoadsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := grid.New(3, 4)
	shape := []int{18}
	randScheme := func() Scheme {
		gd := rng.Intn(2)
		other := 1 - gd
		fixed := rng.Intn(g.Extent(other) + 1)
		if fixed == g.Extent(other) {
			fixed = All
		}
		d := Dim{Sign: 1, Disp: -1, Block: 1 + rng.Intn(3), Cyclic: rng.Intn(2) == 0, GridDim: gd}
		if !d.Cyclic {
			// Keep contiguous blocks large enough to cover the extent.
			for (shape[0]-1)/d.Block >= g.Extent(gd) {
				d.Block++
			}
		}
		return Scheme{Dims: []Dim{d}, Fixed: map[int]int{other: fixed}}
	}
	for trial := 0; trial < 200; trial++ {
		from, to := randScheme(), randScheme()
		pl, err := ClassifyChange(g, g, shape, from, to)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := RedistLoads(g, g, shape, from, to)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if pl.WidenGroup == 1 {
			requireLoadsEqual(t, pl.Exchange, ref)
		}
		if pl.Time(1) > ref.MaxLoad()+1e-9 {
			t.Fatalf("trial %d: collective time %v exceeds p2p bottleneck %v (from %v to %v)",
				trial, pl.Time(1), ref.MaxLoad(), from, to)
		}
	}
}

func requireLoadsEqual(t *testing.T, got, want Loads) {
	t.Helper()
	if math.Abs(got.Words-want.Words) > 1e-9 {
		t.Fatalf("exchange words %v, want %v", got.Words, want.Words)
	}
	for r, w := range want.In {
		if math.Abs(got.In[r]-w) > 1e-9 {
			t.Fatalf("In[%d] = %v, want %v", r, got.In[r], w)
		}
	}
	for r, w := range want.Out {
		if math.Abs(got.Out[r]-w) > 1e-9 {
			t.Fatalf("Out[%d] = %v, want %v", r, got.Out[r], w)
		}
	}
	if len(got.In) > len(want.In) || len(got.Out) > len(want.Out) {
		t.Fatalf("extra load entries: got %d/%d in/out, want %d/%d",
			len(got.In), len(got.Out), len(want.In), len(want.Out))
	}
}
