// Owned-index patterns: the per-coordinate index sets of the Section 2.1
// distribution functions, exposed in closed form. A contiguous dimension
// owns one interval of indices; a (block-)cyclic dimension owns a
// periodic residue set. Both are captured by OwnedPattern, the building
// block the analytic nest counter (package cost) intersects with
// iteration ranges — the same observation RedistLoads exploits for
// redistribution costing.
package dist

import "dmcc/internal/grid"

// OwnedPattern describes the 1-based indices of one array dimension owned
// by one grid coordinate: {i in [Lo, Hi] : i mod Period in Residues}.
// Contiguous dimensions have Period 1 (Residues[0] true) and carry all
// structure in the interval; cyclic dimensions have Period = N*Block and
// Lo, Hi spanning the whole dimension.
type OwnedPattern struct {
	Lo, Hi   int
	Period   int
	Residues []bool // len Period; Residues[i mod Period] => owned
}

// Count returns the number of owned indices.
func (p OwnedPattern) Count() int64 {
	if p.Hi < p.Lo {
		return 0
	}
	if p.Period == 1 {
		if len(p.Residues) == 0 || !p.Residues[0] {
			return 0
		}
		return int64(p.Hi - p.Lo + 1)
	}
	var c int64
	for r, ok := range p.Residues {
		if ok {
			c += countMod(p.Lo, p.Hi, p.Period, r, r)
		}
	}
	return c
}

// DimCoordOf returns the raw (pre-rotation) grid coordinate of index i
// under array dimension k of the scheme — the paper's fA applied to one
// subscript — or All for a replicated dimension. It panics exactly where
// element enumeration would: on indices a contiguous dimension does not
// map.
func (s Scheme) DimCoordOf(g *grid.Grid, k, i int) int {
	return s.Dims[k].mapDim(g, i)
}

// OwnedPatternOf returns the pattern of indices in 1..size owned by grid
// coordinate a of a partitioned dimension d on n processors. Replicated
// dimensions (which own everything) are the caller's concern; calling
// this on one returns the full range.
func OwnedPatternOf(d Dim, n, a, size int) OwnedPattern {
	if d.Replicated {
		return OwnedPattern{Lo: 1, Hi: size, Period: 1, Residues: []bool{true}}
	}
	if !d.Cyclic {
		lo, hi := indexInterval(d, a, size)
		return OwnedPattern{Lo: lo, Hi: hi, Period: 1, Residues: []bool{true}}
	}
	// Cyclic: i owned iff z = Sign*i + Disp has (z/Block) mod n == a,
	// i.e. z mod (n*Block) in [a*Block, (a+1)*Block-1]. z mod P depends
	// only on i mod P, so the owned set is periodic with period n*Block.
	p := n * d.Block
	res := make([]bool, p)
	zlo, zhi := a*d.Block, (a+1)*d.Block-1
	for r := 0; r < p; r++ {
		z := ((d.Sign*r+d.Disp)%p + p) % p
		if z >= zlo && z <= zhi {
			res[r] = true
		}
	}
	return OwnedPattern{Lo: 1, Hi: size, Period: p, Residues: res}
}
