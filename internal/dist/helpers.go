// Constructors for the standard distribution dimensions used throughout
// the paper's examples.
package dist

// BlockContiguous distributes size elements (1..size) in contiguous
// blocks of ceil(size/N) over the N processors of gridDim:
// f(i) = floor((i-1)/block), as in Equation (1) of Section 3.
func BlockContiguous(size, n, gridDim int) Dim {
	return Dim{Sign: 1, Disp: -1, Block: ceilDiv(size, n), Cyclic: false, GridDim: gridDim}
}

// BlockContiguousDecreasing is the decreasing-index variant:
// f(i) = floor((-i+size)/block), so index 1 lands on the last processor
// (Fig 1 (e)/(g) style layouts).
func BlockContiguousDecreasing(size, n, gridDim int) Dim {
	return Dim{Sign: -1, Disp: size, Block: ceilDiv(size, n), Cyclic: false, GridDim: gridDim}
}

// Cyclic distributes elements round-robin: f(i) = (i-1) mod N, the layout
// used for Gauss elimination in Section 6.
func Cyclic(gridDim int) Dim {
	return Dim{Sign: 1, Disp: -1, Block: 1, Cyclic: true, GridDim: gridDim}
}

// BlockCyclic distributes blocks of the given size round-robin:
// f(i) = floor((i-1)/block) mod N (Fig 1 (h)).
func BlockCyclic(block, gridDim int) Dim {
	return Dim{Sign: 1, Disp: -1, Block: block, Cyclic: true, GridDim: gridDim}
}

// Replicated marks the dimension replicated along gridDim.
func Replicated(gridDim int) Dim {
	return Dim{Replicated: true, GridDim: gridDim}
}

// Scheme1D wraps a single dimension into a Scheme with the given fixed
// coordinates for unused grid dimensions (pass nil when the grid is 1-D).
func Scheme1D(d Dim, fixed map[int]int) Scheme {
	if fixed == nil {
		fixed = map[int]int{}
	}
	return Scheme{Dims: []Dim{d}, Fixed: fixed}
}

// Scheme2D wraps two dimensions into an independent 2-D Scheme.
func Scheme2D(d1, d2 Dim, fixed map[int]int) Scheme {
	if fixed == nil {
		fixed = map[int]int{}
	}
	return Scheme{Dims: []Dim{d1, d2}, Fixed: fixed}
}

// Scheme2DRotated wraps two dimensions into a dependent 2-D Scheme with
// the given rotation and coefficients d1, d2 in {-1,+1}.
func Scheme2DRotated(d1, d2 Dim, rot Rotation, c1, c2 int, fixed map[int]int) Scheme {
	if fixed == nil {
		fixed = map[int]int{}
	}
	return Scheme{Dims: []Dim{d1, d2}, Rot: rot, D1: c1, D2: c2, Fixed: fixed}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
