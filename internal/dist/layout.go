// Layout rendering (Fig 1 of the paper): the owner map of a 2-D array
// under a distribution scheme, with each cell labelled by the grid
// coordinates of its owning processor.
package dist

import (
	"fmt"
	"strings"

	"dmcc/internal/grid"
)

// OwnerLabel formats the owner coordinates of one element the way Fig 1
// does: the concatenated grid coordinates, e.g. "02" for processor (0,2),
// or "*2" when the element is replicated along grid dimension 0.
func OwnerLabel(coords []int) string {
	var b strings.Builder
	for _, c := range coords {
		if c == All {
			b.WriteByte('*')
		} else {
			fmt.Fprintf(&b, "%d", c)
		}
	}
	return b.String()
}

// LayoutMatrix returns the shape[0] x shape[1] matrix of owner labels of
// a 2-D array under the scheme.
func LayoutMatrix(g *grid.Grid, shape []int, s Scheme) [][]string {
	if len(shape) != 2 {
		panic("dist: LayoutMatrix requires a 2-D shape")
	}
	m := make([][]string, shape[0])
	for i := 1; i <= shape[0]; i++ {
		row := make([]string, shape[1])
		for j := 1; j <= shape[1]; j++ {
			row[j-1] = OwnerLabel(s.GridCoords(g, i, j))
		}
		m[i-1] = row
	}
	return m
}

// BlockLabels compresses a layout matrix into its distinct blocks: it
// returns the owner labels of the array sampled at one representative per
// contiguous run, row by row — the compact form Fig 1 prints. In practice
// the tests compare full matrices; this is used for human-readable output.
func BlockLabels(m [][]string) []string {
	var out []string
	for _, row := range m {
		prev := ""
		var parts []string
		for _, c := range row {
			if c != prev {
				parts = append(parts, c)
				prev = c
			}
		}
		out = append(out, strings.Join(parts, " "))
	}
	return out
}

// Fig1Case identifies one of the eight layouts of Fig 1.
type Fig1Case struct {
	Name   string
	Grid   *grid.Grid
	Scheme Scheme
}

// Fig1Cases returns the eight distribution schemes of Fig 1 for a
// size x size array (the paper uses 16 x 16):
//
//	(a) 4x4 grid, contiguous blocks in both dimensions
//	(b) 4x4 grid, dim 2 rotated by dim 1 (Cannon layout of B)
//	(c) 4x4 grid, dim 1 rotated by dim 2 (Cannon layout of C)
//	(d) 4x4 grid, row blocks, replicated along grid dim 2
//	(e) 1x4 grid, decreasing contiguous column blocks
//	(f) 4x1 grid, block-cyclic rows (block 2)
//	(g) 4x1 grid, decreasing contiguous rows
//	(h) 2x2 grid, block-cyclic in both dimensions (block 4)
func Fig1Cases(size int) []Fig1Case {
	g44 := grid.New(4, 4)
	g14 := grid.New(1, 4)
	g41 := grid.New(4, 1)
	g22 := grid.New(2, 2)
	return []Fig1Case{
		{
			Name: "a", Grid: g44,
			Scheme: Scheme2D(BlockContiguous(size, 4, 0), BlockContiguous(size, 4, 1), nil),
		},
		{
			Name: "b", Grid: g44,
			Scheme: Scheme2DRotated(BlockContiguous(size, 4, 0), BlockContiguous(size, 4, 1),
				RotateDim2ByDim1, -1, -1, nil),
		},
		{
			Name: "c", Grid: g44,
			Scheme: Scheme2DRotated(BlockContiguous(size, 4, 0), BlockContiguous(size, 4, 1),
				RotateDim1ByDim2, -1, -1, nil),
		},
		{
			Name: "d", Grid: g44,
			Scheme: Scheme2D(BlockContiguous(size, 4, 0), Replicated(1), nil),
		},
		{
			// (e) f(i,j) = (0, floor((-i+size)/block)): decreasing row
			// blocks across the 4 processors of grid dim 1.
			Name: "e", Grid: g14,
			Scheme: Scheme2D(BlockContiguousDecreasing(size, 4, 1),
				Dim{Sign: 1, Disp: -1, Block: size, GridDim: 0}, nil),
		},
		{
			// (f) f(i,j) = (floor((i-1)/2) mod 4, 0): increasing
			// block-cyclic rows, block 2.
			Name: "f", Grid: g41,
			Scheme: Scheme2D(BlockCyclic(size/8, 0),
				Dim{Sign: 1, Disp: -1, Block: size, GridDim: 1}, nil),
		},
		{
			// (g) f(i,j) = (floor((-i+size)/2) mod 4, 0): the decreasing
			// counterpart of (f).
			Name: "g", Grid: g41,
			Scheme: Scheme2D(Dim{Sign: -1, Disp: size, Block: size / 8, Cyclic: true, GridDim: 0},
				Dim{Sign: 1, Disp: -1, Block: size, GridDim: 1}, nil),
		},
		{
			Name: "h", Grid: g22,
			Scheme: Scheme2D(BlockCyclic(size/4, 0), BlockCyclic(size/4, 1), nil),
		},
	}
}
