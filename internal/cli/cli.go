// Package cli holds the exit-code convention shared by every binary in
// cmd/: usage errors (bad flag values, unknown subcommand arguments)
// exit 2 — matching flag.ExitOnError — and runtime failures (compile
// errors, I/O, regressions, divergence) exit 1. Before ISSUE 8 the
// binaries disagreed (dmcc exited 2 on usage, dmrun/dmsweep exited 1,
// dmtables mixed both), which made scripted callers misclassify
// operator typos as system failures.
package cli

import (
	"fmt"
	"os"
)

// Exit codes of the cmd/ binaries.
const (
	ExitFailure = 1 // runtime failure: the requested work could not be done
	ExitUsage   = 2 // usage error: the request itself was malformed
)

// Usage reports a usage error for the named binary and exits 2.
func Usage(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(ExitUsage)
}

// Fail reports a runtime failure for the named binary and exits 1.
func Fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(ExitFailure)
}
