// The recursive-descent parser: tokens -> ir.Program.
package parse

import (
	"fmt"
	"strconv"
	"strings"

	"dmcc/internal/ir"
)

// Parse turns source text into a validated IR program.
func Parse(src string) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, lines: strings.Split(src, "\n")}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("parse: %v", err)
	}
	return prog, nil
}

type parser struct {
	toks  []token
	pos   int
	lines []string
	prog  *ir.Program
	// loop indices currently in scope, outermost first.
	scope []string
	// chainLabels holds the end labels of the open loop chain, parallel
	// to scope, for the paper's shared-label CONTINUE style.
	chainLabels []int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("parse: line %d: expected %v, got %q", t.line, k, t.text)
	}
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("parse: line %d: "+format, append([]interface{}{t.line}, args...)...)
}

// program := "PROGRAM" ident NL decls [iterate] nests "END"
func (p *parser) program() (*ir.Program, error) {
	p.skipNewlines()
	if !isKeyword(p.cur(), "PROGRAM") {
		return nil, p.errf(p.cur(), "expected PROGRAM, got %q", p.cur().text)
	}
	p.next()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	p.prog = &ir.Program{Name: name.text, Arrays: map[string]*ir.Array{}}
	p.skipNewlines()

	// Declarations.
	for {
		switch {
		case isKeyword(p.cur(), "PARAM"):
			p.next()
			for {
				id, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				p.prog.Params = append(p.prog.Params, id.text)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
			p.skipNewlines()
		case isKeyword(p.cur(), "REAL"):
			p.next()
			if err := p.arrayDecls(); err != nil {
				return nil, err
			}
			p.skipNewlines()
		default:
			goto body
		}
	}

body:
	if isKeyword(p.cur(), "ITERATE") {
		p.prog.Iterative = true
		p.next()
		p.skipNewlines()
	}
	for !isKeyword(p.cur(), "END") {
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur(), "missing END")
		}
		if err := p.topLevel(); err != nil {
			return nil, err
		}
		p.skipNewlines()
	}
	return p.prog, nil
}

// arrayDecls := arraydecl {"," arraydecl}
func (p *parser) arrayDecls() error {
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		var extents []ir.Affine
		for {
			a, err := p.affine()
			if err != nil {
				return err
			}
			extents = append(extents, a)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		if _, dup := p.prog.Arrays[id.text]; dup {
			return p.errf(id, "array %s declared twice", id.text)
		}
		p.prog.Arrays[id.text] = &ir.Array{Name: id.text, Extents: extents}
		if p.cur().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// topLevel parses one top-level DO, producing a nest — or, when the DO's
// upper bound is MAX_ITERATION, marks the program iterative and parses
// the loop's body as the sequence of nests.
func (p *parser) topLevel() error {
	label, hasLabel := p.optionalLabel()
	_ = label
	_ = hasLabel
	if !isKeyword(p.cur(), "DO") {
		return p.errf(p.cur(), "expected DO at top level, got %q", p.cur().text)
	}
	save := p.pos
	endLabel, loop, err := p.doHeader()
	if err != nil {
		return err
	}
	if hi, isIter := maxIteration(loop.Hi); isIter {
		p.prog.Iterative = true
		_ = hi
		p.skipNewlines()
		// Parse the wrapper's body as top-level nests until its CONTINUE.
		for {
			lbl, has := p.peekLabel()
			if has && lbl == endLabel && p.labelIsContinue() {
				p.consumeLabeledContinue()
				return nil
			}
			if p.cur().kind == tokEOF {
				return p.errf(p.cur(), "iterative loop not closed by %d CONTINUE", endLabel)
			}
			if err := p.topLevel(); err != nil {
				return err
			}
			p.skipNewlines()
		}
	}
	p.pos = save // reparse as a real nest loop
	nest := &ir.Nest{Label: fmt.Sprintf("L%d", len(p.prog.Nests)+1)}
	if err := p.nestLoop(nest); err != nil {
		return err
	}
	p.prog.Nests = append(p.prog.Nests, nest)
	return nil
}

// maxIteration reports whether an affine bound is the MAX_ITERATION
// sentinel.
func maxIteration(a ir.Affine) (string, bool) {
	vars := a.Vars()
	if len(vars) == 1 && strings.EqualFold(vars[0], "MAX_ITERATION") {
		return vars[0], true
	}
	return "", false
}

// doHeader parses "DO <label> idx = lo, hi [, step]"; the leading label
// token (if any) has already been consumed by the caller's optionalLabel.
func (p *parser) doHeader() (endLabel int, loop ir.Loop, err error) {
	if !isKeyword(p.cur(), "DO") {
		return 0, loop, p.errf(p.cur(), "expected DO")
	}
	p.next()
	lt, err := p.expect(tokNumber)
	if err != nil {
		return 0, loop, err
	}
	endLabel, err = strconv.Atoi(lt.text)
	if err != nil {
		return 0, loop, p.errf(lt, "bad loop label %q", lt.text)
	}
	idx, err := p.expect(tokIdent)
	if err != nil {
		return 0, loop, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return 0, loop, err
	}
	lo, err := p.affine()
	if err != nil {
		return 0, loop, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return 0, loop, err
	}
	hi, err := p.affine()
	if err != nil {
		return 0, loop, err
	}
	step := 1
	if p.cur().kind == tokComma {
		p.next()
		st, err := p.affine()
		if err != nil {
			return 0, loop, err
		}
		if !st.IsConst() || (st.Const != 1 && st.Const != -1) {
			return 0, loop, p.errf(p.cur(), "loop step must be 1 or -1")
		}
		step = st.Const
	}
	if _, err := p.expect(tokNewline); err != nil {
		return 0, loop, err
	}
	return endLabel, ir.Loop{Index: idx.text, Lo: lo, Hi: hi, Step: step}, nil
}

// nestLoop parses a DO and its body into nest, recursively for inner
// loops. A labeled CONTINUE closes every open loop that shares its label
// (the paper's shared-label style); ENDDO closes the innermost loop.
func (p *parser) nestLoop(nest *ir.Nest) error {
	p.optionalLabel()
	endLabel, loop, err := p.doHeader()
	if err != nil {
		return err
	}
	nest.Loops = append(nest.Loops, loop)
	p.scope = append(p.scope, loop.Index)
	p.chainLabels = append(p.chainLabels, endLabel)
	defer func() {
		p.scope = p.scope[:len(p.scope)-1]
		p.chainLabels = p.chainLabels[:len(p.chainLabels)-1]
	}()

	for {
		p.skipNewlines()
		if lbl, has := p.peekLabel(); has && lbl == endLabel && p.labelIsContinue() {
			// Shared label: leave the CONTINUE in place for outer loops
			// with the same label; consume it only at the outermost
			// matching level. We detect that by checking whether any
			// enclosing loop is still waiting on the same label — the
			// caller handles it, so consume only if we are the outermost
			// user of this label.
			if !p.outerSharesLabel(endLabel) {
				p.consumeLabeledContinue()
			}
			return nil
		}
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			return p.errf(t, "loop DO %d not closed", endLabel)
		case isKeyword(t, "ENDDO"):
			p.next()
			return nil
		default:
			// Either an inner DO or a statement, optionally labeled.
			savePos := p.pos
			stmtLabel, _ := p.optionalLabel()
			if isKeyword(p.cur(), "DO") {
				p.pos = savePos
				if len(nest.Stmts) > 0 && p.siblingLoopAfterStmts(nest) {
					// A second inner loop chain: unsupported shape.
					return p.errf(t, "multiple sibling inner loops in one nest are not supported; split them into separate top-level loops")
				}
				if err := p.nestLoop(nest); err != nil {
					return err
				}
				continue
			}
			if err := p.statement(nest, stmtLabel); err != nil {
				return err
			}
		}
	}
}

// siblingLoopAfterStmts reports whether the nest already has a loop
// deeper than the current scope (meaning a previous inner chain closed).
func (p *parser) siblingLoopAfterStmts(nest *ir.Nest) bool {
	return len(nest.Loops) > len(p.scope)
}

// optionalLabel consumes a leading statement label (a number at the
// start of a line) and returns it.
func (p *parser) optionalLabel() (int, bool) {
	if p.cur().kind == tokNumber && !strings.Contains(p.cur().text, ".") {
		if p.pos+1 < len(p.toks) {
			n := p.toks[p.pos+1]
			if n.kind == tokIdent { // "5  V(i) = ..." or "6 CONTINUE" or "8 DO ..."
				v, err := strconv.Atoi(p.cur().text)
				if err == nil {
					p.next()
					return v, true
				}
			}
		}
	}
	return 0, false
}

// peekLabel looks at a leading label without consuming it.
func (p *parser) peekLabel() (int, bool) {
	if p.cur().kind == tokNumber && !strings.Contains(p.cur().text, ".") {
		v, err := strconv.Atoi(p.cur().text)
		if err == nil && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokIdent {
			return v, true
		}
	}
	return 0, false
}

// labelIsContinue reports whether the token after the current label is
// CONTINUE.
func (p *parser) labelIsContinue() bool {
	return p.pos+1 < len(p.toks) && isKeyword(p.toks[p.pos+1], "CONTINUE")
}

func (p *parser) consumeLabeledContinue() {
	p.next() // label
	p.next() // CONTINUE
	if p.cur().kind == tokNewline {
		p.next()
	}
}

// outerSharesLabel reports whether an enclosing open loop also ends at
// the given label (the paper shares one label across a whole chain); if
// so, the labeled CONTINUE is left for the outermost sharer to consume.
func (p *parser) outerSharesLabel(label int) bool {
	for _, l := range p.chainLabels[:len(p.chainLabels)-1] {
		if l == label {
			return true
		}
	}
	return false
}

// statement parses "ref = expr".
func (p *parser) statement(nest *ir.Nest, label int) error {
	startTok := p.cur()
	lhs, err := p.ref()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	rhs, reads, flops, err := p.expr()
	if err != nil {
		return err
	}
	if p.cur().kind == tokNewline {
		p.next()
	}
	// Reduction detection: the statement accumulates into its own LHS
	// (a self-read with identical subscripts), there is a reduction loop
	// (an in-scope index absent from the LHS subscripts), and no *other*
	// reference to the LHS array appears — Gauss's
	// B(i) = B(i) - L(i,k)*B(k) is an order-dependent update, not a
	// commutative reduction, because of the B(k) read.
	selfRead, otherRead := false, false
	for _, r := range reads {
		if r.Array != lhs.Array {
			continue
		}
		if sameSubs(r, lhs) {
			selfRead = true
		} else {
			otherRead = true
		}
	}
	lhsVars := map[string]bool{}
	for _, s := range lhs.Subs {
		for _, v := range s.Vars() {
			lhsVars[v] = true
		}
	}
	redLoop := false
	for _, idx := range p.scope {
		if !lhsVars[idx] {
			redLoop = true
		}
	}
	reduce := selfRead && redLoop && !otherRead
	line := label
	if line == 0 {
		line = startTok.line
	}
	nest.Stmts = append(nest.Stmts, &ir.Stmt{
		Line:   line,
		Depth:  len(p.scope),
		LHS:    lhs,
		Reads:  reads,
		RHS:    rhs,
		Flops:  flops,
		Reduce: reduce,
		Text:   strings.TrimSpace(stripLabel(p.lines[startTok.line-1])),
	})
	return nil
}

func stripLabel(line string) string {
	s := strings.TrimSpace(line)
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i > 0 && i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		return strings.TrimSpace(s[i:])
	}
	return s
}

func sameSubs(a, b ir.Ref) bool {
	if len(a.Subs) != len(b.Subs) {
		return false
	}
	for i := range a.Subs {
		d, ok := a.Subs[i].ConstDiff(b.Subs[i])
		if !ok || d != 0 {
			return false
		}
	}
	return true
}

// ref := ident "(" affine {"," affine} ")"
func (p *parser) ref() (ir.Ref, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return ir.Ref{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return ir.Ref{}, err
	}
	var subs []ir.Affine
	for {
		a, err := p.affine()
		if err != nil {
			return ir.Ref{}, err
		}
		subs = append(subs, a)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ir.Ref{}, err
	}
	return ir.Ref{Array: id.text, Subs: subs}, nil
}

// expr parses the right-hand side: a standard precedence-climbing parser
// building an executable expression tree, recording array reads and
// counting one flop per arithmetic operation. Scalar identifiers (OMEGA,
// temp, ...) become ir.Scalar leaves; they are replicated per Section 2.
func (p *parser) expr() (ir.Expr, []ir.Ref, int, error) {
	e := &exprParser{p: p}
	tree, err := e.additive()
	if err != nil {
		return nil, nil, 0, err
	}
	return tree, ir.ExprReads(tree), ir.ExprFlops(tree), nil
}

type exprParser struct {
	p *parser
}

func (e *exprParser) additive() (ir.Expr, error) {
	l, err := e.multiplicative()
	if err != nil {
		return nil, err
	}
	for e.p.cur().kind == tokPlus || e.p.cur().kind == tokMinus {
		op := byte('+')
		if e.p.cur().kind == tokMinus {
			op = '-'
		}
		e.p.next()
		r, err := e.multiplicative()
		if err != nil {
			return nil, err
		}
		l = ir.BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (e *exprParser) multiplicative() (ir.Expr, error) {
	l, err := e.unary()
	if err != nil {
		return nil, err
	}
	for e.p.cur().kind == tokStar || e.p.cur().kind == tokSlash {
		op := byte('*')
		if e.p.cur().kind == tokSlash {
			op = '/'
		}
		e.p.next()
		r, err := e.unary()
		if err != nil {
			return nil, err
		}
		l = ir.BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (e *exprParser) unary() (ir.Expr, error) {
	if e.p.cur().kind == tokMinus {
		e.p.next()
		inner, err := e.unary()
		if err != nil {
			return nil, err
		}
		return ir.NegE{E: inner}, nil
	}
	return e.primary()
}

func (e *exprParser) primary() (ir.Expr, error) {
	t := e.p.cur()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, e.p.errf(t, "bad number %q", t.text)
		}
		e.p.next()
		return ir.Num(v), nil
	case tokLParen:
		e.p.next()
		inner, err := e.additive()
		if err != nil {
			return nil, err
		}
		if _, err := e.p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		// Array reference or scalar.
		if e.p.pos+1 < len(e.p.toks) && e.p.toks[e.p.pos+1].kind == tokLParen {
			if _, isArr := e.p.prog.Arrays[t.text]; isArr {
				r, err := e.p.ref()
				if err != nil {
					return nil, err
				}
				return ir.Rd(r), nil
			}
			return nil, e.p.errf(t, "call of undeclared array/function %q", t.text)
		}
		e.p.next() // scalar
		return ir.Scalar(t.text), nil
	default:
		return nil, e.p.errf(t, "unexpected %q in expression", t.text)
	}
}

// affine parses an affine expression over identifiers: term {(+|-) term},
// term := [int "*"] ident | int | ident ["*" int].
func (p *parser) affine() (ir.Affine, error) {
	acc := ir.Const(0)
	sign := 1
	if p.cur().kind == tokMinus {
		sign = -1
		p.next()
	} else if p.cur().kind == tokPlus {
		p.next()
	}
	for {
		term, err := p.affineTerm(sign)
		if err != nil {
			return acc, err
		}
		acc = acc.Plus(term)
		switch p.cur().kind {
		case tokPlus:
			sign = 1
			p.next()
		case tokMinus:
			sign = -1
			p.next()
		default:
			return acc, nil
		}
	}
}

func (p *parser) affineTerm(sign int) (ir.Affine, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return ir.Affine{}, p.errf(t, "subscripts must be integers, got %q", t.text)
		}
		p.next()
		if p.cur().kind == tokStar { // int * ident
			p.next()
			id, err := p.expect(tokIdent)
			if err != nil {
				return ir.Affine{}, err
			}
			return ir.NewAffine(0, ir.Term{Var: id.text, Coeff: sign * v}), nil
		}
		return ir.Const(sign * v), nil
	case tokIdent:
		p.next()
		if p.cur().kind == tokStar { // ident * int
			p.next()
			n, err := p.expect(tokNumber)
			if err != nil {
				return ir.Affine{}, err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil {
				return ir.Affine{}, p.errf(n, "bad coefficient %q", n.text)
			}
			return ir.NewAffine(0, ir.Term{Var: t.text, Coeff: sign * v}), nil
		}
		return ir.NewAffine(0, ir.Term{Var: t.text, Coeff: sign}), nil
	default:
		return ir.Affine{}, p.errf(t, "expected affine term, got %q", t.text)
	}
}
