// Package parse is the compiler frontend: it parses Fortran-style Do-loop
// programs — the notation of the paper's listings — into the affine IR of
// package ir, so the whole pipeline (alignment, Algorithm 1, dependence
// analysis, codegen) can be driven from program text.
//
// The accepted language is the fragment the paper's method applies to:
//
//	PROGRAM jacobi
//	PARAM m
//	REAL A(m,m), V(m), B(m), X(m)
//	ITERATE                          { optional outer convergence loop }
//	DO 6 i = 1, m
//	  V(i) = 0.0
//	  DO 6 j = 1, m
//	5   V(i) = V(i) + A(i,j) * X(j)
//	6 CONTINUE
//	DO 9 i = 1, m
//	8 X(i) = X(i) + (B(i) - V(i)) / A(i,i)
//	9 CONTINUE
//	END
//
// Loops close at the CONTINUE carrying their label (shared labels close
// several loops at once, as in the paper), or at an unlabeled ENDDO.
// Subscripts and loop bounds must be affine in the loop indices and size
// parameters; right-hand sides are arbitrary scalar expressions over
// array references, whose reads and flop counts the parser extracts.
package parse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokAssign
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	}
	return fmt.Sprintf("tokKind(%d)", int(k))
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexer splits source text into tokens. Comments run in { } braces or
// from "!" to end of line; case is preserved for identifiers (the IR is
// case-sensitive, matching the paper's mixed-case names).
type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.emit(tokNewline, "\n")
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '{':
			if err := l.skipBraceComment(); err != nil {
				return nil, err
			}
		case c == '!':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tokIdent, string(l.src[start:l.pos]))
		case unicode.IsDigit(c):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tokNumber, string(l.src[start:l.pos]))
		default:
			switch c {
			case '(':
				l.emit(tokLParen, "(")
			case ')':
				l.emit(tokRParen, ")")
			case ',':
				l.emit(tokComma, ",")
			case '=':
				l.emit(tokAssign, "=")
			case '+':
				l.emit(tokPlus, "+")
			case '-':
				l.emit(tokMinus, "-")
			case '*':
				l.emit(tokStar, "*")
			case '/':
				l.emit(tokSlash, "/")
			default:
				return nil, fmt.Errorf("parse: line %d: unexpected character %q", l.line, c)
			}
			l.pos++
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func (l *lexer) skipBraceComment() error {
	start := l.line
	for l.pos < len(l.src) {
		if l.src[l.pos] == '}' {
			l.pos++
			return nil
		}
		if l.src[l.pos] == '\n' {
			l.line++
		}
		l.pos++
	}
	return fmt.Errorf("parse: line %d: unterminated { comment", start)
}

// keyword matching is case-insensitive, as in Fortran.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
