package parse

import (
	"strings"
	"testing"

	"dmcc/internal/align"
	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/ir"
	"dmcc/internal/matrix"
)

// jacobiSrc is the Section 3 listing in the frontend syntax.
const jacobiSrc = `
PROGRAM jacobi
PARAM m
REAL A(m,m), V(m), B(m), X(m)
{ X(i) has been assigned an initial value before the computation. }
DO 10 k = 1, MAX_ITERATION
  DO 6 i = 1, m
3   V(i) = 0.0
    DO 6 j = 1, m
5     V(i) = V(i) + A(i,j) * X(j)
6 CONTINUE
  DO 9 i = 1, m
8   X(i) = X(i) + (B(i) - V(i)) / A(i,i)
9 CONTINUE
10 CONTINUE
END
`

const sorSrc = `
PROGRAM sor
PARAM m
REAL A(m,m), V(m), B(m), X(m)
DO 9 k = 1, MAX_ITERATION
  DO 8 i = 1, m
3   V(i) = 0.0
    DO 6 j = 1, m
5     V(i) = V(i) + A(i,j) * X(j)
6   CONTINUE
7   X(i) = X(i) + OMEGA * (B(i) - V(i)) / A(i,i)
8 CONTINUE
9 CONTINUE
END
`

const gaussSrc = `
PROGRAM gauss
PARAM m
REAL A(m,m), L(m,m), V(m), B(m), X(m)
{ Matrix triangularization. }
DO 8 k = 1, m
  DO 8 i = k + 1, m
4   L(i,k) = A(i,k) / A(k,k)
5   B(i) = B(i) - L(i,k) * B(k)
    DO 8 j = k + 1, m
7     A(i,j) = A(i,j) - L(i,k) * A(k,j)
8 CONTINUE
{ Triangular linear system UX = Y. }
DO 12 i = m, 1, -1
11  V(i) = 0.0
12 CONTINUE
DO 17 j = m, 1, -1
14  X(j) = (B(j) - V(j)) / A(j,j)
  DO 17 i = j - 1, 1, -1
16    V(i) = V(i) + A(i,j) * X(j)
17 CONTINUE
END
`

func TestParseJacobiMatchesBuiltin(t *testing.T) {
	got, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := ir.Jacobi()
	if got.Name != "jacobi" || !got.Iterative {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Nests) != len(want.Nests) {
		t.Fatalf("nests = %d, want %d", len(got.Nests), len(want.Nests))
	}
	// L1: loops i, j; statements at lines 3 and 5.
	l1 := got.Nests[0]
	if len(l1.Loops) != 2 || l1.Loops[0].Index != "i" || l1.Loops[1].Index != "j" {
		t.Fatalf("L1 loops: %+v", l1.Loops)
	}
	if len(l1.Stmts) != 2 {
		t.Fatalf("L1 stmts = %d", len(l1.Stmts))
	}
	if l1.Stmts[0].Line != 3 || l1.Stmts[0].Depth != 1 {
		t.Fatalf("line-3 stmt: %+v", l1.Stmts[0])
	}
	s5 := l1.Stmts[1]
	if s5.Line != 5 || s5.Depth != 2 || !s5.Reduce || s5.Flops != 2 {
		t.Fatalf("line-5 stmt: %+v", s5)
	}
	if s5.LHS.String() != "V(i)" {
		t.Fatalf("line-5 LHS: %s", s5.LHS)
	}
	if len(s5.Reads) != 3 {
		t.Fatalf("line-5 reads: %v", s5.Reads)
	}
	// L2: line 8 has 3 flops.
	s8 := got.Nests[1].Stmts[0]
	if s8.Line != 8 || s8.Flops != 3 || s8.Reduce {
		t.Fatalf("line-8 stmt: %+v", s8)
	}
	if s8.Text != "X(i) = X(i) + (B(i) - V(i)) / A(i,i)" {
		t.Fatalf("line-8 text: %q", s8.Text)
	}
}

func TestParseSOR(t *testing.T) {
	got, err := Parse(sorSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Iterative || len(got.Nests) != 1 {
		t.Fatalf("shape: iterative=%v nests=%d", got.Iterative, len(got.Nests))
	}
	nest := got.Nests[0]
	if len(nest.Loops) != 2 || len(nest.Stmts) != 3 {
		t.Fatalf("nest: %d loops, %d stmts", len(nest.Loops), len(nest.Stmts))
	}
	// Line 7 sits at depth 1 (after the inner loop closed at label 6).
	s7 := nest.Stmts[2]
	if s7.Line != 7 || s7.Depth != 1 || s7.Flops != 4 {
		t.Fatalf("line-7 stmt: %+v", s7)
	}
}

func TestParseGauss(t *testing.T) {
	got, err := Parse(gaussSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterative {
		t.Fatal("gauss must not be iterative")
	}
	if len(got.Nests) != 3 {
		t.Fatalf("nests = %d", len(got.Nests))
	}
	g1 := got.Nests[0]
	if len(g1.Loops) != 3 {
		t.Fatalf("G1 loops = %d", len(g1.Loops))
	}
	// Triangular bound i = k+1.
	if g1.Loops[1].Lo.CoeffOf("k") != 1 || g1.Loops[1].Lo.Const != 1 {
		t.Fatalf("G1 i bound: %s", g1.Loops[1].Lo)
	}
	if !core.Triangular(g1) {
		t.Fatal("G1 must be triangular")
	}
	// Downward loops.
	g2 := got.Nests[1]
	if g2.Loops[0].Step != -1 {
		t.Fatal("G2 must run downward")
	}
	g3 := got.Nests[2]
	if g3.Loops[1].Lo.CoeffOf("j") != 1 || g3.Loops[1].Lo.Const != -1 {
		t.Fatalf("G3 i bound: %s", g3.Loops[1].Lo)
	}
	// Statement depths: line 14 at depth 1, line 16 at depth 2.
	if g3.Stmts[0].Depth != 1 || g3.Stmts[1].Depth != 2 {
		t.Fatalf("G3 depths: %d %d", g3.Stmts[0].Depth, g3.Stmts[1].Depth)
	}
}

// TestParsedProgramsCompileLikeBuiltins: the parsed Jacobi must drive the
// whole pipeline to the same DP outcome as the hand-built IR.
func TestParsedProgramsCompileLikeBuiltins(t *testing.T) {
	parsed, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	cParsed := core.NewCompiler(parsed, cost.Unit(), map[string]int{"m": 32}, 4)
	rParsed, err := cParsed.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cBuiltin := core.NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": 32}, 4)
	rBuiltin, err := cBuiltin.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if rParsed.DP.MinimumCost != rBuiltin.DP.MinimumCost {
		t.Fatalf("parsed DP cost %v != builtin %v", rParsed.DP.MinimumCost, rBuiltin.DP.MinimumCost)
	}
}

// TestParsedAlignmentMatchesBuiltin: the affinity graph of the parsed
// source aligns identically.
func TestParsedAlignmentMatchesBuiltin(t *testing.T) {
	parsed, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := align.BuildGraph(parsed, parsed.Nests, align.DefaultWeightParams())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := align.ExactAlign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Assign[ir.DimID{Array: "V", Dim: 0}] != pt.Assign[ir.DimID{Array: "A", Dim: 0}] {
		t.Error("parsed V not aligned with A1")
	}
	if pt.Assign[ir.DimID{Array: "X", Dim: 0}] != pt.Assign[ir.DimID{Array: "A", Dim: 1}] {
		t.Error("parsed X not aligned with A2")
	}
}

func TestParseEnddoStyle(t *testing.T) {
	src := `
PROGRAM simple
PARAM n
REAL Y(n), Z(n)
DO 1 i = 1, n
  Y(i) = Z(i) + 1.0
ENDDO
END
`
	// ENDDO closes the loop; the label on DO is still required syntax.
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nests) != 1 || len(p.Nests[0].Stmts) != 1 {
		t.Fatalf("shape: %+v", p.Nests)
	}
	if p.Nests[0].Stmts[0].Flops != 1 {
		t.Fatalf("flops = %d", p.Nests[0].Stmts[0].Flops)
	}
}

func TestParseIterateKeyword(t *testing.T) {
	src := `
PROGRAM it
PARAM n
REAL Y(n)
ITERATE
DO 1 i = 1, n
  Y(i) = Y(i) * 2.0
1 CONTINUE
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Iterative {
		t.Fatal("ITERATE not honoured")
	}
}

func TestParseAffineForms(t *testing.T) {
	src := `
PROGRAM aff
PARAM n
REAL Y(n), Z(2*n)
DO 1 i = 2, n - 1
  Z(2*i) = Y(i - 1) + Y(i + 1)
1 CONTINUE
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Nests[0].Stmts[0]
	if st.LHS.Subs[0].CoeffOf("i") != 2 {
		t.Fatalf("LHS subscript: %s", st.LHS.Subs[0])
	}
	if d, ok := st.Reads[0].Subs[0].ConstDiff(st.Reads[1].Subs[0]); !ok || d != -2 {
		t.Fatalf("read subscripts: %s vs %s", st.Reads[0].Subs[0], st.Reads[1].Subs[0])
	}
	// Loop bound n-1.
	if p.Nests[0].Loops[0].Hi.Const != -1 || p.Nests[0].Loops[0].Hi.CoeffOf("n") != 1 {
		t.Fatalf("bound: %s", p.Nests[0].Loops[0].Hi)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no PROGRAM":       "PARAM m\nEND\n",
		"unterminated":     "PROGRAM x\nPARAM m\nREAL Y(m)\nDO 1 i = 1, m\n  Y(i) = 0.0\nEND\n",
		"bad char":         "PROGRAM x\nPARAM m\nREAL Y(m)\nDO 1 i = 1, m\n  Y(i) = 0.0 @\n1 CONTINUE\nEND\n",
		"undeclared array": "PROGRAM x\nPARAM m\nREAL Y(m)\nDO 1 i = 1, m\n  Y(i) = Q(i)\n1 CONTINUE\nEND\n",
		"bad step":         "PROGRAM x\nPARAM m\nREAL Y(m)\nDO 1 i = 1, m, 2\n  Y(i) = 0.0\n1 CONTINUE\nEND\n",
		"dup array":        "PROGRAM x\nPARAM m\nREAL Y(m), Y(m)\nEND\n",
		"missing END":      "PROGRAM x\nPARAM m\nREAL Y(m)\n",
		"stmt outside DO":  "PROGRAM x\nPARAM m\nREAL Y(m)\nY(1) = 0.0\nEND\n",
		"unterminated cmt": "PROGRAM x\nPARAM m { oops\nEND\n",
		"non-affine sub":   "PROGRAM x\nPARAM m\nREAL Y(m), Z(m)\nDO 1 i = 1, m\n  Y(i) = Z(i*i)\n1 CONTINUE\nEND\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseSiblingInnerLoopsRejected(t *testing.T) {
	src := `
PROGRAM sib
PARAM n
REAL Y(n), Z(n,n)
DO 9 i = 1, n
  DO 2 j = 1, n
    Y(i) = Y(i) + Z(i,j)
2 CONTINUE
  DO 3 j = 1, n
    Y(i) = Y(i) + Z(j,i)
3 CONTINUE
9 CONTINUE
END
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "sibling") {
		t.Fatalf("sibling loops not rejected: %v", err)
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	src := `
program mixed   ! trailing comment
param n
real Y(n)
{ a multi
  line comment }
do 1 i = 1, n
  Y(i) = 1.5
1 continue
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mixed" || len(p.Nests) != 1 {
		t.Fatalf("parsed: %+v", p)
	}
}

func TestStripLabel(t *testing.T) {
	if stripLabel("5     V(i) = 0.0") != "V(i) = 0.0" {
		t.Fatal("label not stripped")
	}
	if stripLabel("V(i) = 0.0") != "V(i) = 0.0" {
		t.Fatal("unlabeled changed")
	}
}

// TestParsedProgramExecutes: the RHS trees built by the parser make the
// parsed program executable — interpreting parsed SOR source matches the
// hand-written sequential solver exactly.
func TestParsedProgramExecutes(t *testing.T) {
	p, err := Parse(sorSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, iters, omega := 12, 5, 1.3
	a, b, _ := matrix.DiagonallyDominant(m, 201)
	x0 := make([]float64, m)
	st := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		st.Store("B", []int{i}, b[i-1])
		st.Store("X", []int{i}, x0[i-1])
	}
	if err := ir.EvalProgram(p, map[string]int{"m": m}, st, map[string]float64{"OMEGA": omega}, iters); err != nil {
		t.Fatal(err)
	}
	want := matrix.SORSeq(a, b, x0, omega, iters)
	for i := 1; i <= m; i++ {
		if got := st.Load(ir.R("X", ir.Const(i)), []int{i}); got != want[i-1] {
			t.Fatalf("X(%d) = %v, want %v", i, got, want[i-1])
		}
	}
}

// TestPrintParseRoundTrip: ir.Print output re-parses into a program that
// compiles and executes identically.
func TestPrintParseRoundTrip(t *testing.T) {
	for _, orig := range []*ir.Program{ir.Jacobi(), ir.SOR(), ir.Gauss()} {
		src := ir.Print(orig)
		got, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", orig.Name, err, src)
		}
		if len(got.Nests) != len(orig.Nests) {
			t.Fatalf("%s: %d nests after round trip, want %d", orig.Name, len(got.Nests), len(orig.Nests))
		}
		if got.Iterative != orig.Iterative {
			t.Fatalf("%s: iterative flag lost", orig.Name)
		}
		// Execute both on the same inputs and compare exactly.
		m := 10
		a, b, _ := matrix.DiagonallyDominant(m, 501)
		mk := func(p *ir.Program) ir.Storage {
			st := ir.NewStorage(p)
			for i := 1; i <= m; i++ {
				for j := 1; j <= m; j++ {
					st.Store("A", []int{i, j}, a.At(i-1, j-1))
				}
				st.Store("B", []int{i}, b[i-1])
				st.Store("X", []int{i}, 0)
			}
			return st
		}
		scalars := map[string]float64{"OMEGA": 1.2}
		s1, s2 := mk(orig), mk(got)
		if err := ir.EvalProgram(orig, map[string]int{"m": m}, s1, scalars, 3); err != nil {
			t.Fatal(err)
		}
		if err := ir.EvalProgram(got, map[string]int{"m": m}, s2, scalars, 3); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= m; i++ {
			v1 := s1.Load(ir.R("X", ir.Const(i)), []int{i})
			v2 := s2.Load(ir.R("X", ir.Const(i)), []int{i})
			if v1 != v2 {
				t.Fatalf("%s: X(%d) differs after round trip: %v vs %v", orig.Name, i, v1, v2)
			}
		}
	}
}
