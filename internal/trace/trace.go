// Package trace collects and renders execution timelines of the
// simulated machine. It quantifies the claim of Section 1 that "the
// reduction step normally uses a lot of communication time and results
// in the idleness of processors": the per-processor breakdown separates
// computation, sends, synchronous collectives and idle waiting, and the
// ASCII Gantt chart makes the SOR wavefront of Fig 5 visible on the real
// simulated timeline.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dmcc/internal/machine"
)

// Collector is a thread-safe machine.Tracer.
type Collector struct {
	mu     sync.Mutex
	events []machine.Event
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Record implements machine.Tracer.
func (c *Collector) Record(e machine.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by processor then
// start time.
func (c *Collector) Events() []machine.Event {
	c.mu.Lock()
	out := append([]machine.Event(nil), c.events...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// ProcBreakdown is one processor's time accounting.
//
// Send sums the transfer windows of EvSend events. With Overlap off a
// send window is exactly the sender's busy time; with Overlap on the
// window runs to the message's arrival (the fix for the lost
// zero-Alpha overlapped sends), so it can overlap the sender's own
// compute events — Send then reads as "time with a message in flight",
// not additional busy time, and Idle (clamped at zero) absorbs the
// double-counting.
type ProcBreakdown struct {
	Proc       int
	Compute    float64
	Send       float64
	Collective float64
	Wait       float64
	// Idle is makespan minus all recorded activity: time with nothing to
	// do at all (finished early or between untraced instants).
	Idle float64
}

// Busy returns time spent on computation.
func (b ProcBreakdown) Busy() float64 { return b.Compute }

// Summary aggregates a run's events against its makespan.
type Summary struct {
	Makespan float64
	Procs    []ProcBreakdown
}

// Summarize builds the per-processor accounting for nprocs processors.
func Summarize(events []machine.Event, nprocs int, makespan float64) Summary {
	s := Summary{Makespan: makespan, Procs: make([]ProcBreakdown, nprocs)}
	for p := range s.Procs {
		s.Procs[p].Proc = p
	}
	for _, e := range events {
		if e.Proc < 0 || e.Proc >= nprocs {
			continue
		}
		d := e.End - e.Start
		b := &s.Procs[e.Proc]
		switch e.Kind {
		case machine.EvCompute:
			b.Compute += d
		case machine.EvSend:
			b.Send += d
		case machine.EvCollective:
			b.Collective += d
		case machine.EvWait:
			b.Wait += d
		}
	}
	for p := range s.Procs {
		b := &s.Procs[p]
		accounted := b.Compute + b.Send + b.Collective + b.Wait
		b.Idle = makespan - accounted
		if b.Idle < 0 {
			b.Idle = 0
		}
	}
	return s
}

// IdleFraction returns the machine-wide fraction of processor-time spent
// waiting or idle — the paper's "idleness of processors".
func (s Summary) IdleFraction() float64 {
	if s.Makespan <= 0 || len(s.Procs) == 0 {
		return 0
	}
	total := s.Makespan * float64(len(s.Procs))
	idle := 0.0
	for _, b := range s.Procs {
		idle += b.Wait + b.Idle
	}
	return idle / total
}

// String renders the summary table.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.0f; idle fraction %.1f%%\n", s.Makespan, 100*s.IdleFraction())
	fmt.Fprintf(&b, "%-6s %-10s %-10s %-12s %-10s %s\n", "proc", "compute", "send", "collective", "wait", "idle")
	for _, p := range s.Procs {
		fmt.Fprintf(&b, "%-6d %-10.0f %-10.0f %-12.0f %-10.0f %.0f\n",
			p.Proc, p.Compute, p.Send, p.Collective, p.Wait, p.Idle)
	}
	return b.String()
}

// Gantt renders an ASCII timeline: one row per processor, width columns,
// with '#' compute, '>' send, '=' collective, '.' wait and ' ' idle.
// Later events overwrite earlier ones within a cell; with the machine's
// sequential per-processor execution that only matters at boundaries,
// except under Overlap, where a send's in-flight window can span later
// compute cells (the later compute glyph wins).
func Gantt(events []machine.Event, nprocs int, makespan float64, width int) string {
	if width < 10 {
		width = 10
	}
	if makespan <= 0 {
		return "(empty trace)\n"
	}
	rows := make([][]byte, nprocs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(" ", width))
	}
	glyph := map[machine.EventKind]byte{
		machine.EvCompute:    '#',
		machine.EvSend:       '>',
		machine.EvCollective: '=',
		machine.EvWait:       '.',
	}
	for _, e := range events {
		if e.Proc < 0 || e.Proc >= nprocs {
			continue
		}
		lo := int(e.Start / makespan * float64(width))
		hi := int(e.End / makespan * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		for c := lo; c < hi && c < width; c++ {
			rows[e.Proc][c] = glyph[e.Kind]
		}
	}
	var b strings.Builder
	dashes := width - 12
	if dashes < 1 {
		dashes = 1
	}
	fmt.Fprintf(&b, "time 0 %s %.0f\n", strings.Repeat("-", dashes), makespan)
	for p, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", p, string(row))
	}
	b.WriteString("legend: # compute  > send  = collective  . wait\n")
	return b.String()
}
