package trace

import (
	"strings"
	"testing"

	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

func TestCollectorRecordsMachineRun(t *testing.T) {
	col := New()
	cfg := machine.DefaultConfig()
	cfg.Tracer = col
	m := 16
	a, b, _ := matrix.DiagonallyDominant(m, 3)
	x0 := make([]float64, m)
	res, err := kernels.SORNaive(cfg, a, b, x0, 1.2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// Events sorted per processor, times within makespan, kinds known.
	lastStart := map[int]float64{}
	kinds := map[machine.EventKind]bool{}
	for _, e := range events {
		if e.Start < lastStart[e.Proc] {
			t.Fatalf("events not sorted for proc %d", e.Proc)
		}
		lastStart[e.Proc] = e.Start
		if e.End < e.Start {
			t.Fatalf("negative duration: %+v", e)
		}
		if e.End > res.Stats.ParallelTime+1e-9 {
			t.Fatalf("event past makespan: %+v", e)
		}
		kinds[e.Kind] = true
	}
	// A naive SOR run has computation and synchronous collectives.
	if !kinds[machine.EvCompute] || !kinds[machine.EvCollective] {
		t.Fatalf("missing kinds: %v", kinds)
	}
}

func TestSummaryAccounting(t *testing.T) {
	events := []machine.Event{
		{Proc: 0, Kind: machine.EvCompute, Start: 0, End: 10},
		{Proc: 0, Kind: machine.EvSend, Start: 10, End: 12},
		{Proc: 1, Kind: machine.EvWait, Start: 0, End: 8},
		{Proc: 1, Kind: machine.EvCollective, Start: 8, End: 12},
	}
	s := Summarize(events, 2, 12)
	if s.Procs[0].Compute != 10 || s.Procs[0].Send != 2 || s.Procs[0].Idle != 0 {
		t.Fatalf("proc0: %+v", s.Procs[0])
	}
	if s.Procs[1].Wait != 8 || s.Procs[1].Collective != 4 {
		t.Fatalf("proc1: %+v", s.Procs[1])
	}
	// Idle fraction: proc1 waits 8 of 12; total idle = 8 / 24.
	if got := s.IdleFraction(); got < 0.33 || got > 0.34 {
		t.Fatalf("idle fraction = %v", got)
	}
	if !strings.Contains(s.String(), "idle fraction") {
		t.Fatal("summary render")
	}
}

// TestNaiveSORIdlenessExceedsPipelined quantifies the Section 1 claim:
// the reduction-per-step implementation leaves processors idle; the
// pipeline removes most of that idleness.
func TestNaiveSORIdlenessExceedsPipelined(t *testing.T) {
	m, n := 32, 4
	a, b, _ := matrix.DiagonallyDominant(m, 5)
	x0 := make([]float64, m)

	runWith := func(pipelined bool) Summary {
		col := New()
		cfg := machine.DefaultConfig()
		cfg.Tracer = col
		var res kernels.Result
		var err error
		if pipelined {
			res, err = kernels.SORPipelined(cfg, a, b, x0, 1.2, 2, n)
		} else {
			res, err = kernels.SORNaive(cfg, a, b, x0, 1.2, 2, n)
		}
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(col.Events(), n, res.Stats.ParallelTime)
	}

	naive := runWith(false)
	pip := runWith(true)
	if naive.IdleFraction() <= pip.IdleFraction() {
		t.Errorf("naive idleness %.3f not above pipelined %.3f",
			naive.IdleFraction(), pip.IdleFraction())
	}
	t.Logf("idle fractions: naive %.1f%%, pipelined %.1f%%",
		100*naive.IdleFraction(), 100*pip.IdleFraction())
}

func TestGanttRender(t *testing.T) {
	events := []machine.Event{
		{Proc: 0, Kind: machine.EvCompute, Start: 0, End: 50},
		{Proc: 1, Kind: machine.EvWait, Start: 0, End: 25},
		{Proc: 1, Kind: machine.EvCompute, Start: 25, End: 100},
		{Proc: 0, Kind: machine.EvSend, Start: 50, End: 60},
	}
	g := Gantt(events, 2, 100, 40)
	if !strings.Contains(g, "P0") || !strings.Contains(g, "P1") {
		t.Fatalf("gantt:\n%s", g)
	}
	if !strings.Contains(g, "#") || !strings.Contains(g, ".") || !strings.Contains(g, ">") {
		t.Fatalf("glyphs missing:\n%s", g)
	}
	if Gantt(nil, 2, 0, 40) != "(empty trace)\n" {
		t.Fatal("empty trace render")
	}
	// Tiny width is clamped.
	if !strings.Contains(Gantt(events, 2, 100, 1), "P0") {
		t.Fatal("width clamp")
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := Summarize(nil, 0, 0)
	if s.IdleFraction() != 0 {
		t.Fatal("empty idle fraction")
	}
}

func TestEventsIgnoreOutOfRangeProcs(t *testing.T) {
	s := Summarize([]machine.Event{{Proc: 99, Kind: machine.EvCompute, Start: 0, End: 5}}, 2, 10)
	if s.Procs[0].Compute != 0 && s.Procs[1].Compute != 0 {
		t.Fatal("out-of-range proc counted")
	}
}
