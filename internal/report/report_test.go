package report

import (
	"strings"
	"testing"

	"dmcc/internal/align"
	"dmcc/internal/ir"
)

func TestTable1Renders(t *testing.T) {
	s := Table1(64, 8)
	for _, want := range []string{
		"Transfer(m)", "Shift(m)", "OneToManyMulticast", "Reduction",
		"AffineTransform", "Scatter", "Gather", "ManyToManyMulticast",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %s:\n%s", want, s)
		}
	}
	// Transfer of 64 words at tc=1: makespan 64. Multicast: 64*log2(8)=192.
	// Gather/Scatter/ManyToMany: 64*8 = 512.
	flat := strings.Join(strings.Fields(s), " ")
	for _, want := range []string{"O(m) 64", "O(m log num) 192", "O(m num) 512"} {
		if !strings.Contains(flat, want) {
			t.Errorf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestFig1Renders(t *testing.T) {
	s := Fig1(16)
	for _, want := range []string{"(a)", "(h)", "00 01 02 03", "00 03 02 01"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestAffinityGraphRenders(t *testing.T) {
	p := ir.Jacobi()
	s, err := AffinityGraph("Fig 2", p, p.Nests, align.DefaultWeightParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 2", "A1", "V1", "dim1 = {", "dim2 = {"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	// The Section 3 alignment: A1 and V1 together.
	if !strings.Contains(s, "dim1 = {A1, V1}") {
		t.Errorf("alignment wrong:\n%s", s)
	}
}

func TestTable2Renders(t *testing.T) {
	s := Table2(1024, 16)
	if !strings.Contains(s, "1 x 16") || !strings.Contains(s, "16 x 1") || !strings.Contains(s, "4 x 4") {
		t.Errorf("Table2 rows missing:\n%s", s)
	}
	if !strings.Contains(s, "DP scheme") {
		t.Errorf("DP row missing:\n%s", s)
	}
}

func TestFig3Renders(t *testing.T) {
	s, err := Fig3(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"L1", "L2", "loop-carried", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig3 missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	s := Table3()
	if !strings.Contains(s, "processor 0:") || !strings.Contains(s, "processor 3:") {
		t.Fatalf("Table3:\n%s", s)
	}
	// Processor 0 holds row 1 of A, V1, B1, X1.
	if !strings.Contains(s, "A[rows 1; cols 1,2,3,4] B1 V1 X1") {
		t.Errorf("Table3 processor 0 wrong:\n%s", s)
	}
}

func TestTable4Renders(t *testing.T) {
	s := Table4()
	// Processor 0 holds column 1 of A, B1, X1, and all of V (replicated).
	if !strings.Contains(s, "A[rows 1,2,3,4; cols 1]") {
		t.Errorf("Table4 processor 0 wrong:\n%s", s)
	}
	if !strings.Contains(s, "(V1 V2 V3 V4)") {
		t.Errorf("V replication missing:\n%s", s)
	}
}

func TestFig5Renders(t *testing.T) {
	s, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "A(1,1..4)") || !strings.Contains(s, "X(1)") {
		t.Fatalf("Fig5:\n%s", s)
	}
}

func TestFig6Renders(t *testing.T) {
	s, err := Fig6(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"receive_from_left( V(i) )", "naive", "pipelined", "speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig6 missing %q", want)
		}
	}
}

func TestTable5Renders(t *testing.T) {
	s, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"B(k)", "(k,0)+i(0,1)", "all PEs",
		"A(k,j)", "X(j)", "(i-1) mod N",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table5 missing %q:\n%s", want, s)
		}
	}
}

func TestFig8Renders(t *testing.T) {
	s, err := Fig8(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Apipeline", "Xpipeline", "broadcast", "pipelined", "speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig8 missing %q", want)
		}
	}
}

func TestAlgorithm1Renders(t *testing.T) {
	s, err := Algorithm1(ir.Jacobi(), 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"minimum cost", "whole-program", "loop-carried", "pipelinable"} {
		if !strings.Contains(s, want) {
			t.Errorf("Algorithm1 missing %q:\n%s", want, s)
		}
	}
}

func TestIdlenessRenders(t *testing.T) {
	s, err := Idleness(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"idle fraction", "naive", "pipelined"} {
		if !strings.Contains(s, want) {
			t.Errorf("Idleness missing %q", want)
		}
	}
}

func TestNaiveBackendRenders(t *testing.T) {
	s, err := NaiveBackend(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipelining gain", "per-element transfers"} {
		if !strings.Contains(s, want) {
			t.Errorf("NaiveBackend missing %q", want)
		}
	}
}
