// Package report regenerates every table and figure of the paper as text,
// from live analysis and simulation results — not from hard-coded data.
// The dmtables command prints them; EXPERIMENTS.md records them next to
// the paper's originals.
package report

import (
	"fmt"
	"sort"
	"strings"

	"dmcc/internal/align"
	"dmcc/internal/codegen"
	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/dep"
	"dmcc/internal/dist"
	"dmcc/internal/exec"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/sched"
	"dmcc/internal/trace"
)

// Table1 renders the communication-primitive cost table, with the
// asymptotic form and a measured makespan on the simulated hypercube for
// a concrete message size and processor count.
func Table1(m, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: costs of communication primitives (m=%d words, %d processors)\n", m, procs)
	fmt.Fprintf(&b, "%-28s %-16s %s\n", "Primitive", "Cost (model)", "Simulated makespan")
	g := grid.New(procs)
	cfg := machine.DefaultConfig()
	data := make([]machine.Word, m)

	row := func(name, model string, body func(p *machine.Proc)) {
		mach, err := machine.New(g, cfg)
		var st machine.Stats
		if err == nil {
			st, err = mach.Run(body)
		}
		if err != nil {
			fmt.Fprintf(&b, "%-28s %-16s error: %v\n", name, model, err)
			return
		}
		fmt.Fprintf(&b, "%-28s %-16s %.0f\n", name, model, st.ParallelTime)
	}
	row("Transfer(m)", "O(m)", func(p *machine.Proc) {
		switch p.Rank() {
		case 0:
			p.Transfer(0, 1, data)
		case 1:
			p.Transfer(0, 1, nil)
		}
	})
	row("Shift(m)", "O(m)", func(p *machine.Proc) { p.Shift(0, 1, data) })
	row("OneToManyMulticast(m,seq)", "O(m log num)", func(p *machine.Proc) {
		var d []machine.Word
		if p.Rank() == 0 {
			d = data
		}
		p.OneToManyMulticast([]int{0}, 0, d)
	})
	row("Reduction(m,seq)", "O(m log num)", func(p *machine.Proc) {
		p.Reduction([]int{0}, 0, data, machine.SumOp)
	})
	row("AffineTransform(m,seq)", "O(m log num)", func(p *machine.Proc) {
		perm := make([]int, procs)
		for i := range perm {
			perm[i] = (i + 1) % procs
		}
		p.AffineTransform([]int{0}, perm, data)
	})
	row("Scatter(m,seq)", "O(m num)", func(p *machine.Proc) {
		var chunks [][]machine.Word
		if p.Rank() == 0 {
			chunks = make([][]machine.Word, procs)
			for i := range chunks {
				chunks[i] = data
			}
		}
		p.Scatter([]int{0}, 0, chunks)
	})
	row("Gather(m,seq)", "O(m num)", func(p *machine.Proc) {
		p.Gather([]int{0}, 0, data)
	})
	row("ManyToManyMulticast(m,seq)", "O(m num)", func(p *machine.Proc) {
		p.ManyToManyMulticast([]int{0}, data)
	})
	return b.String()
}

// Fig1 renders the eight data layouts of Fig 1 for a size x size array.
func Fig1(size int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: data layouts for various distribution schema (%dx%d array)\n", size, size)
	for _, c := range dist.Fig1Cases(size) {
		fmt.Fprintf(&b, "\n(%s) %s on %s:\n", c.Name, c.Scheme, c.Grid)
		mtx := dist.LayoutMatrix(c.Grid, []int{size, size}, c.Scheme)
		for _, line := range dist.BlockLabels(mtx) {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// AffinityGraph renders a component affinity graph and its alignment
// (Figs 2, 4 and 7).
func AffinityGraph(title string, p *ir.Program, nests []*ir.Nest, wp align.WeightParams) (string, error) {
	g, err := align.BuildGraph(p, nests, wp)
	if err != nil {
		return "", err
	}
	pt, err := align.ExactAlign(g, 2)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s", title, g)
	fmt.Fprintf(&b, "alignment (cut %.0f): dim1 = {", pt.Cut)
	b.WriteString(dimList(pt.Subset(g, 0)))
	b.WriteString("}, dim2 = {")
	b.WriteString(dimList(pt.Subset(g, 1)))
	b.WriteString("}\n")
	return b.String(), nil
}

func dimList(dims []ir.DimID) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = d.String()
	}
	return strings.Join(parts, ", ")
}

// Table2 renders the Jacobi grid comparison, with the paper's symbolic
// formulas alongside the numeric evaluation.
func Table2(m, n int) string {
	c := cost.Unit()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Jacobi iteration time on three processor grids (m=%d, N=%d, tf=tc=1)\n", m, n)
	fmt.Fprintf(&b, "%-12s %-18s %-18s %-10s %s\n", "N1 x N2", "Computation", "Communication", "Total", "Formula")
	formulas := map[string]string{
		fmt.Sprintf("1 x %d", n): cost.SymbolicJacobiRow1().String(),
		fmt.Sprintf("%d x 1", n): cost.SymbolicJacobiRow2().String(),
	}
	for _, r := range c.Table2(m, n) {
		key := fmt.Sprintf("%d x %d", r.N1, r.N2)
		fmt.Fprintf(&b, "%-12s %-18.0f %-18.0f %-10.0f %s\n",
			key, r.Comp, r.Comm, r.Total(), formulas[key])
	}
	dp := c.JacobiDPIteration(m, n)
	fmt.Fprintf(&b, "%-12s %-18.0f %-18.0f %-10.0f %s   (Section 4 DP scheme)\n",
		fmt.Sprintf("%d x 1*", n), dp.Comp, dp.Comm, dp.Total(), cost.SymbolicJacobiDP())
	return b.String()
}

// Fig3 renders the cost structure of the two-segment Jacobi plan.
func Fig3(m, n int) (string, error) {
	c := core.NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": m}, n)
	m1, p1, err := c.SegmentCost(1, 1)
	if err != nil {
		return "", err
	}
	m2, p2, err := c.SegmentCost(2, 1)
	if err != nil {
		return "", err
	}
	chg, err := c.ChangeCost(p1, p2)
	if err != nil {
		return "", err
	}
	lc, err := c.LoopCarriedCost(p2)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: total execution time of two Do-loops in an iteration (m=%d, N=%d)\n", m, n)
	fmt.Fprintf(&b, "  execution time for L1                       %10.0f  (%s)\n", m1, p1)
	fmt.Fprintf(&b, "  communication: change layouts L1 -> L2      %10.0f\n", chg)
	fmt.Fprintf(&b, "  execution time for L2                       %10.0f  (%s)\n", m2, p2)
	fmt.Fprintf(&b, "  communication: loop-carried dependence      %10.0f\n", lc)
	fmt.Fprintf(&b, "  total                                       %10.0f\n", m1+chg+m2+lc)
	return b.String(), nil
}

// LayoutTable renders the Table 3 / Table 4 per-processor data layouts:
// which elements of each array every processor stores (replicated copies
// in parentheses).
func LayoutTable(title string, g *grid.Grid, shapes map[string][]int, schemes map[string]dist.Scheme, repl map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	names := make([]string, 0, len(schemes))
	for n := range schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	for r := 0; r < g.Size(); r++ {
		fmt.Fprintf(&b, "processor %d:", r)
		for _, name := range names {
			s := schemes[name]
			shape := shapes[name]
			var owned []string
			if len(shape) == 1 {
				for i := 1; i <= shape[0]; i++ {
					if s.IsOwner(g, r, i) {
						owned = append(owned, fmt.Sprintf("%s%d", name, i))
					}
				}
			} else {
				// 2-D arrays: summarize by owned rows/columns.
				rows := map[int]bool{}
				cols := map[int]bool{}
				for i := 1; i <= shape[0]; i++ {
					for j := 1; j <= shape[1]; j++ {
						if s.IsOwner(g, r, i, j) {
							rows[i] = true
							cols[j] = true
						}
					}
				}
				owned = append(owned, fmt.Sprintf("%s[rows %s; cols %s]", name, intSet(rows), intSet(cols)))
			}
			sep := " "
			if repl[name] {
				fmt.Fprintf(&b, "%s(%s)", sep, strings.Join(owned, " "))
			} else {
				fmt.Fprintf(&b, "%s%s", sep, strings.Join(owned, " "))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func intSet(s map[int]bool) string {
	var xs []int
	for x := range s {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

// Table3 renders the Jacobi row-distribution layout on a 4-processor
// linear array (A4x4 X4 = B4, Table 3 of the paper).
func Table3() string {
	m, n := 4, 4
	g := grid.New(n, 1)
	blockCol := dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}
	schemes := map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.BlockContiguous(m, n, 0), blockCol, nil),
		"V": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
	}
	shapes := map[string][]int{"A": {m, m}, "V": {m}, "B": {m}, "X": {m}}
	s := LayoutTable("Table 3: data layouts of the parallel Jacobi algorithm (A4x4, 4-processor linear array)",
		g, shapes, schemes, nil)
	return s + "(plus a replicated copy of the full X on every processor, refreshed by the per-iteration exchange)\n"
}

// Table4 renders the SOR column-distribution layout (Table 4).
func Table4() string {
	m, n := 4, 4
	g := grid.New(1, n)
	blockRow := dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 0}
	schemes := map[string]dist.Scheme{
		"A": dist.Scheme2D(blockRow, dist.BlockContiguous(m, n, 1), nil),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 1), map[int]int{0: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 1), map[int]int{0: 0}),
		"V": dist.Scheme1D(dist.Replicated(1), map[int]int{0: 0}),
	}
	shapes := map[string][]int{"A": {m, m}, "V": {m}, "B": {m}, "X": {m}}
	return LayoutTable("Table 4: data layouts of the parallel SOR algorithm (A4x4, 4-processor linear array; V replicated)",
		g, shapes, schemes, map[string]bool{"V": true})
}

// Fig5 renders the SOR pipeline wavefront schedule for m=16, N=4.
func Fig5() (string, error) {
	table, err := sched.Schedule(16, 4, 2)
	if err != nil {
		return "", err
	}
	head := "Fig 5: pipelined SOR schedule (A16x16 on a four-processor ring; sweep 2 begins at step 21)\n"
	// Show the paper's 24 steps.
	if len(table) > 24 {
		table = table[:24]
	}
	return head + sched.Render(table, 4), nil
}

// Fig6 renders the generated SOR code plus the measured naive/pipelined
// comparison.
func Fig6(m, n int) (string, error) {
	p := ir.SOR()
	mu := dep.Mapping{Nest: "S1", Coeff: map[string]int{"j": 1}}
	dec := dep.DecidePipelining(p, p.Nests[0], mu)
	code, err := codegen.Program(p, []codegen.NestPlan{{Nest: p.Nests[0], Decision: dec}})
	if err != nil {
		return "", err
	}
	a, bb, _ := matrix.DiagonallyDominant(m, 101)
	x0 := make([]float64, m)
	cfg := machine.DefaultConfig()
	naive, err := kernels.SORNaive(cfg, a, bb, x0, 1.2, 2, n)
	if err != nil {
		return "", err
	}
	pip, err := kernels.SORPipelined(cfg, a, bb, x0, 1.2, 2, n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: generated parallel code for the SOR iterative algorithm\n\n%s\n", code)
	fmt.Fprintf(&b, "measured on the simulated machine (m=%d, N=%d, 2 sweeps):\n", m, n)
	fmt.Fprintf(&b, "  naive (reduction per step): makespan %.0f, %d msgs, %d words\n",
		naive.Stats.ParallelTime, naive.Stats.Messages, naive.Stats.Words)
	fmt.Fprintf(&b, "  pipelined (Fig 6):          makespan %.0f, %d msgs, %d words\n",
		pip.Stats.ParallelTime, pip.Stats.Messages, pip.Stats.Words)
	fmt.Fprintf(&b, "  speedup: %.2fx\n", naive.Stats.ParallelTime/pip.Stats.ParallelTime)
	return b.String(), nil
}

// Table5 renders the dependence table of the Gauss elimination program.
func Table5() (string, error) {
	p := ir.Gauss()
	dd := map[string]int{"A": 0, "L": 0, "V": 0, "B": 0, "X": 0}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: data-dependence information and index-processor mapping (Gauss elimination)\n")
	fmt.Fprintf(&b, "%-8s %-5s %-22s %-10s %-8s %s\n", "token", "line", "used in indices", "mapping", "mu.d", "used in PEs")
	for _, nest := range []*ir.Nest{p.Nests[0], p.Nests[2]} {
		mu, err := dep.DeriveMapping(p, nest, dd)
		if err != nil {
			return "", err
		}
		for _, tok := range dep.Analyze(p, nest, mu) {
			if len(tok.ReuseDirs) == 0 {
				continue // fully anchored tokens are trivially local
			}
			muds := make([]string, len(tok.MuDotD))
			for i, v := range tok.MuDotD {
				muds[i] = fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(&b, "%-8s %-5d %-22s %-10s %-8s %s\n",
				tok.Ref, tok.Line, tok.UsedIn, mu.String(), strings.Join(muds, ","), tok.UsedInPEs)
		}
	}
	return b.String(), nil
}

// Fig8 renders the generated Gauss code plus the measured
// broadcast/pipelined comparison.
func Fig8(m, n int) (string, error) {
	p := ir.Gauss()
	dd := map[string]int{"A": 0, "L": 0, "V": 0, "B": 0, "X": 0}
	var plans []codegen.NestPlan
	for _, nest := range p.Nests {
		mu, err := dep.DeriveMapping(p, nest, dd)
		if err != nil {
			return "", err
		}
		plans = append(plans, codegen.NestPlan{Nest: nest, Decision: dep.DecidePipelining(p, nest, mu), Cyclic: true})
	}
	code, err := codegen.Program(p, plans)
	if err != nil {
		return "", err
	}
	a, bb, _ := matrix.DiagonallyDominant(m, 103)
	cfg := machine.DefaultConfig()
	bc, err := kernels.GaussBroadcast(cfg, a, bb, n)
	if err != nil {
		return "", err
	}
	pp, err := kernels.GaussPipelined(cfg, a, bb, n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: generated parallel code for the Gauss elimination algorithm\n\n%s\n", code)
	fmt.Fprintf(&b, "measured on the simulated machine (m=%d, N=%d):\n", m, n)
	fmt.Fprintf(&b, "  broadcast (naive multicasts): makespan %.0f, %d msgs, %d words\n",
		bc.Stats.ParallelTime, bc.Stats.Messages, bc.Stats.Words)
	fmt.Fprintf(&b, "  pipelined (Fig 8 shifts):     makespan %.0f, %d msgs, %d words\n",
		pp.Stats.ParallelTime, pp.Stats.Messages, pp.Stats.Words)
	fmt.Fprintf(&b, "  speedup: %.2fx\n", bc.Stats.ParallelTime/pp.Stats.ParallelTime)
	return b.String(), nil
}

// Algorithm1 renders the DP plan for a program.
func Algorithm1(p *ir.Program, m, n int) (string, error) {
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	res, err := c.Compile()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Algorithm 1: minimum-cost order of distribution schemes for %s (m=%d, N=%d)\n", p.Name, m, n)
	for _, seg := range res.DP.Segments {
		fmt.Fprintf(&b, "  loops L%d..L%d under %s: M = %.0f (entry redistribution %.0f)\n",
			seg.Start, seg.Start+seg.Len-1, seg.Schemes, seg.M, seg.ChangeIn)
	}
	fmt.Fprintf(&b, "  loop-carried dependence cost: %.0f\n", res.DP.LoopCarried)
	fmt.Fprintf(&b, "  minimum cost: %.0f   (whole-program single scheme: %.0f)\n",
		res.DP.MinimumCost, res.WholeProgramCost)
	for _, d := range res.Pipelining {
		fmt.Fprintf(&b, "  nest %s: mapping %s, pipelinable=%v, travelling tokens %v\n",
			d.Mapping.Nest, d.Mapping, d.CanPipeline, d.TravellingTokens)
	}
	return b.String(), nil
}

// Idleness quantifies the Section 1 claim that the reduction step
// "results in the idleness of processors": per-processor time breakdowns
// for the naive and pipelined SOR implementations.
func Idleness(m, n int) (string, error) {
	a, bb, _ := matrix.DiagonallyDominant(m, 131)
	x0 := make([]float64, m)
	runWith := func(pipelined bool) (trace.Summary, error) {
		col := trace.New()
		cfg := machine.DefaultConfig()
		cfg.Tracer = col
		var res kernels.Result
		var err error
		if pipelined {
			res, err = kernels.SORPipelined(cfg, a, bb, x0, 1.2, 2, n)
		} else {
			res, err = kernels.SORNaive(cfg, a, bb, x0, 1.2, 2, n)
		}
		if err != nil {
			return trace.Summary{}, err
		}
		return trace.Summarize(col.Events(), n, res.Stats.ParallelTime), nil
	}
	naive, err := runWith(false)
	if err != nil {
		return "", err
	}
	pip, err := runWith(true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Processor idleness (Section 1's motivation; m=%d, N=%d, 2 sweeps)\n\n", m, n)
	fmt.Fprintf(&b, "naive (reduction per step):\n%s\n", naive)
	fmt.Fprintf(&b, "pipelined (Fig 6):\n%s", pip)
	return b.String(), nil
}

// NaiveBackend compares the exec interpreter (the Section 6 "naive
// compiler" made executable) against the pipelined kernel for SOR.
func NaiveBackend(m, n int) (string, error) {
	p := ir.SOR()
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		return "", err
	}
	a, bb, _ := matrix.DiagonallyDominant(m, 137)
	x0 := make([]float64, m)
	input := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, bb[i-1])
		input.Store("X", []int{i}, 0)
	}
	res, err := exec.Run(p, ss, map[string]int{"m": m}, map[string]float64{"OMEGA": 1.2},
		2, machine.DefaultConfig(), input)
	if err != nil {
		return "", err
	}
	pip, err := kernels.SORPipelined(machine.DefaultConfig(), a, bb, x0, 1.2, 2, n)
	if err != nil {
		return "", err
	}
	want := matrix.SORSeq(a, bb, x0, 1.2, 2)
	got := make([]float64, m)
	for i := 1; i <= m; i++ {
		got[i-1] = res.Values.Load(ir.R("X", ir.Const(i)), []int{i})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Naive backend vs pipelined kernel (SOR, m=%d, N=%d, 2 sweeps)\n", m, n)
	fmt.Fprintf(&b, "  naive (exec, per-element transfers): makespan %.0f, %d msgs\n",
		res.Stats.ParallelTime, res.Stats.Messages)
	fmt.Fprintf(&b, "  pipelined (Fig 6 kernel):            makespan %.0f, %d msgs\n",
		pip.Stats.ParallelTime, pip.Stats.Messages)
	fmt.Fprintf(&b, "  pipelining gain: %.2fx; both match sequential SOR to %.3g / %.3g\n",
		res.Stats.ParallelTime/pip.Stats.ParallelTime,
		matrix.MaxAbsDiff(got, want), matrix.MaxAbsDiff(pip.X, want))
	return b.String(), nil
}
