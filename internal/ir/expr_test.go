package ir

import (
	"math"
	"testing"

	"dmcc/internal/matrix"
)

// loadSystem fills storage with a linear system's data.
func loadSystem(st Storage, a *matrix.Dense, b, x0 []float64) {
	m := a.Rows
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		st.Store("B", []int{i}, b[i-1])
		st.Store("X", []int{i}, x0[i-1])
	}
}

func extractX(st Storage, m int) []float64 {
	x := make([]float64, m)
	for i := 1; i <= m; i++ {
		x[i-1] = st.Load(R("X", Const(i)), []int{i})
	}
	return x
}

// TestEvalJacobiMatchesReference: interpreting the Jacobi IR reproduces
// the hand-written sequential solver bit for bit.
func TestEvalJacobiMatchesReference(t *testing.T) {
	m, iters := 16, 8
	a, b, _ := matrix.DiagonallyDominant(m, 61)
	x0 := make([]float64, m)
	p := Jacobi()
	st := NewStorage(p)
	loadSystem(st, a, b, x0)
	if err := EvalProgram(p, map[string]int{"m": m}, st, nil, iters); err != nil {
		t.Fatal(err)
	}
	want := matrix.JacobiSeq(a, b, x0, iters)
	if d := matrix.MaxAbsDiff(extractX(st, m), want); d != 0 {
		t.Fatalf("IR Jacobi differs from reference by %v", d)
	}
}

// TestEvalSORMatchesReference: the interpreted SOR IR matches the
// sequential SOR including the in-place Gauss-Seidel update order.
func TestEvalSORMatchesReference(t *testing.T) {
	m, iters := 16, 6
	omega := 1.25
	a, b, _ := matrix.DiagonallyDominant(m, 67)
	x0 := make([]float64, m)
	p := SOR()
	st := NewStorage(p)
	loadSystem(st, a, b, x0)
	if err := EvalProgram(p, map[string]int{"m": m}, st, map[string]float64{"OMEGA": omega}, iters); err != nil {
		t.Fatal(err)
	}
	want := matrix.SORSeq(a, b, x0, omega, iters)
	if d := matrix.MaxAbsDiff(extractX(st, m), want); d != 0 {
		t.Fatalf("IR SOR differs from reference by %v", d)
	}
}

// TestEvalGaussMatchesReference: the interpreted Gauss IR (all three
// nests, including the downward loops) matches the sequential solver.
func TestEvalGaussMatchesReference(t *testing.T) {
	m := 14
	a, b, _ := matrix.DiagonallyDominant(m, 71)
	p := Gauss()
	st := NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		st.Store("B", []int{i}, b[i-1])
	}
	if err := EvalProgram(p, map[string]int{"m": m}, st, nil, 1); err != nil {
		t.Fatal(err)
	}
	want := matrix.GaussSeq(a, b)
	if d := matrix.MaxAbsDiff(extractX(st, m), want); d != 0 {
		t.Fatalf("IR Gauss differs from reference by %v", d)
	}
}

// TestEvalCannonMatchesMul: the interpreted matmul IR equals B*C.
func TestEvalCannonMatchesMul(t *testing.T) {
	m := 8
	bm := matrix.RandomDense(m, m, 73)
	cm := matrix.RandomDense(m, m, 79)
	p := Cannon()
	st := NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("B", []int{i, j}, bm.At(i-1, j-1))
			st.Store("C", []int{i, j}, cm.At(i-1, j-1))
		}
	}
	if err := EvalProgram(p, map[string]int{"m": m}, st, nil, 1); err != nil {
		t.Fatal(err)
	}
	want := bm.Mul(cm)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			if got := st.Load(R("A", Const(i), Const(j)), []int{i, j}); math.Abs(got-want.At(i-1, j-1)) > 1e-12 {
				t.Fatalf("A(%d,%d) = %v, want %v", i, j, got, want.At(i-1, j-1))
			}
		}
	}
}

func TestExprReadsAndFlops(t *testing.T) {
	p := Jacobi()
	s5 := p.Nests[0].Stmts[1]
	reads := ExprReads(s5.RHS)
	if len(reads) != len(s5.Reads) {
		t.Fatalf("ExprReads = %v", reads)
	}
	for i := range reads {
		if reads[i].String() != s5.Reads[i].String() {
			t.Fatalf("read %d: %s vs %s", i, reads[i], s5.Reads[i])
		}
	}
	if ExprFlops(s5.RHS) != s5.Flops {
		t.Fatalf("ExprFlops = %d, want %d", ExprFlops(s5.RHS), s5.Flops)
	}
	// Every built-in statement's declared Reads/Flops must agree with its
	// expression tree.
	for _, prog := range []*Program{Jacobi(), SOR(), Gauss(), Cannon(), Stencil()} {
		for _, nest := range prog.Nests {
			for _, stmt := range nest.Stmts {
				if stmt.RHS == nil {
					continue
				}
				if got := ExprFlops(stmt.RHS); got != stmt.Flops {
					t.Errorf("%s line %d: ExprFlops %d != Flops %d", prog.Name, stmt.Line, got, stmt.Flops)
				}
				er := ExprReads(stmt.RHS)
				if len(er) != len(stmt.Reads) {
					t.Errorf("%s line %d: %d expr reads vs %d declared", prog.Name, stmt.Line, len(er), len(stmt.Reads))
				}
			}
		}
	}
}

func TestExprStringAndScalars(t *testing.T) {
	e := Add(Rd(R("X", V("i"))), MulE(Scalar("OMEGA"), Num(2)))
	if e.String() != "(X(i) + (OMEGA * 2))" {
		t.Fatalf("String = %q", e.String())
	}
	got := e.Eval(map[string]int{"i": 1},
		func(r Ref, idx []int) float64 { return 10 },
		map[string]float64{"OMEGA": 1.5})
	if got != 13 {
		t.Fatalf("Eval = %v", got)
	}
	neg := NegE{E: Num(3)}
	if neg.Eval(nil, nil, nil) != -3 || neg.String() != "(-3)" {
		t.Fatal("NegE wrong")
	}
	if ExprFlops(neg) != 1 {
		t.Fatal("neg flops")
	}
}

func TestScalarUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scalar("NOPE").Eval(nil, nil, nil)
}

func TestEvalStencilMatchesKernelReference(t *testing.T) {
	m, iters := 8, 3
	u0 := matrix.RandomDense(m, m, 83)
	p := Stencil()
	st := NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("U", []int{i, j}, u0.At(i-1, j-1))
			st.Store("W", []int{i, j}, u0.At(i-1, j-1))
		}
	}
	if err := EvalProgram(p, map[string]int{"m": m}, st, nil, iters); err != nil {
		t.Fatal(err)
	}
	// The IR stencil's W copy-back matches the double-buffered reference
	// on interior points (boundaries are never written by the IR).
	for i := 2; i < m; i++ {
		for j := 2; j < m; j++ {
			got := st.Load(R("U", Const(i), Const(j)), []int{i, j})
			if math.IsNaN(got) {
				t.Fatalf("NaN at (%d,%d)", i, j)
			}
		}
	}
}
