// The paper's example programs as IR values. Line numbers match the
// listings in Sections 3, 5 and 6 so reports can cite them.
package ir

import "fmt"

// Jacobi returns Jacobi's iterative algorithm for linear systems
// A x = b (Section 3):
//
//	1  DO 10 k = 1, MAX_ITERATION
//	2    DO 6 i = 1, m                 (nest L1)
//	3      V(i) = 0.0
//	4      DO 6 j = 1, m
//	5        V(i) = V(i) + A(i,j) * X(j)
//	6    CONTINUE
//	7    DO 9 i = 1, m                 (nest L2)
//	8      X(i) = X(i) + (B(i) - V(i)) / A(i,i)
//	9    CONTINUE
//	10 CONTINUE
func Jacobi() *Program {
	m := V("m")
	p := &Program{
		Name:      "jacobi",
		Iterative: true,
		Params:    []string{"m"},
		Arrays: map[string]*Array{
			"A": {Name: "A", Extents: []Affine{m, m}},
			"V": {Name: "V", Extents: []Affine{m}},
			"B": {Name: "B", Extents: []Affine{m}},
			"X": {Name: "X", Extents: []Affine{m}},
		},
	}
	l1 := &Nest{
		Label: "L1",
		Loops: []Loop{
			{Index: "i", Lo: Const(1), Hi: m, Step: 1},
			{Index: "j", Lo: Const(1), Hi: m, Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 3, Depth: 1, LHS: R("V", V("i")), Flops: 0,
				RHS:  Num(0),
				Text: "V(i) = 0.0"},
			{Line: 5, Depth: 2, LHS: R("V", V("i")),
				Reads:  []Ref{R("V", V("i")), R("A", V("i"), V("j")), R("X", V("j"))},
				RHS:    Add(Rd(R("V", V("i"))), MulE(Rd(R("A", V("i"), V("j"))), Rd(R("X", V("j"))))),
				Flops:  2,
				Reduce: true,
				Text:   "V(i) = V(i) + A(i,j) * X(j)"},
		},
	}
	l2 := &Nest{
		Label: "L2",
		Loops: []Loop{
			{Index: "i", Lo: Const(1), Hi: m, Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 8, Depth: 1, LHS: R("X", V("i")),
				Reads: []Ref{R("X", V("i")), R("B", V("i")), R("V", V("i")), R("A", V("i"), V("i"))},
				RHS: Add(Rd(R("X", V("i"))),
					DivE(Sub(Rd(R("B", V("i"))), Rd(R("V", V("i")))), Rd(R("A", V("i"), V("i"))))),
				Flops: 3,
				Text:  "X(i) = X(i) + (B(i) - V(i)) / A(i,i)"},
		},
	}
	p.Nests = []*Nest{l1, l2}
	return p
}

// SOR returns the successive over-relaxation algorithm (Section 5):
//
//	1  DO 9 k = 1, MAX_ITERATION
//	2    DO 8 i = 1, m
//	3      V(i) = 0.0
//	4      DO 6 j = 1, m
//	5        V(i) = V(i) + A(i,j) * X(j)
//	6      CONTINUE
//	7      X(i) = X(i) + OMEGA * (B(i) - V(i)) / A(i,i)
//	8    CONTINUE
//	9  CONTINUE
//
// Unlike Jacobi, the update of X(i) sits inside the i loop, so iteration
// i+1's inner product already sees the new X(1..i) — the data dependence
// that both forces sequentiality and enables pipelining.
func SOR() *Program {
	m := V("m")
	p := &Program{
		Name:      "sor",
		Iterative: true,
		Params:    []string{"m"},
		Arrays: map[string]*Array{
			"A": {Name: "A", Extents: []Affine{m, m}},
			"V": {Name: "V", Extents: []Affine{m}},
			"B": {Name: "B", Extents: []Affine{m}},
			"X": {Name: "X", Extents: []Affine{m}},
		},
	}
	nest := &Nest{
		Label: "S1",
		Loops: []Loop{
			{Index: "i", Lo: Const(1), Hi: m, Step: 1},
			{Index: "j", Lo: Const(1), Hi: m, Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 3, Depth: 1, LHS: R("V", V("i")), Flops: 0,
				RHS:  Num(0),
				Text: "V(i) = 0.0"},
			{Line: 5, Depth: 2, LHS: R("V", V("i")),
				Reads:  []Ref{R("V", V("i")), R("A", V("i"), V("j")), R("X", V("j"))},
				RHS:    Add(Rd(R("V", V("i"))), MulE(Rd(R("A", V("i"), V("j"))), Rd(R("X", V("j"))))),
				Flops:  2,
				Reduce: true,
				Text:   "V(i) = V(i) + A(i,j) * X(j)"},
			{Line: 7, Depth: 1, LHS: R("X", V("i")),
				Reads: []Ref{R("X", V("i")), R("B", V("i")), R("V", V("i")), R("A", V("i"), V("i"))},
				RHS: Add(Rd(R("X", V("i"))),
					DivE(MulE(Scalar("OMEGA"), Sub(Rd(R("B", V("i"))), Rd(R("V", V("i"))))),
						Rd(R("A", V("i"), V("i"))))),
				Flops: 4,
				Text:  "X(i) = X(i) + OMEGA * (B(i) - V(i)) / A(i,i)"},
		},
	}
	p.Nests = []*Nest{nest}
	return p
}

// Gauss returns the Gauss elimination algorithm (Section 6):
//
//	2   DO 8 k = 1, m                      (nest G1, triangularization)
//	3     DO 8 i = k+1, m
//	4       L(i,k) = A(i,k) / A(k,k)
//	5       B(i)   = B(i) - L(i,k) * B(k)
//	6       DO 8 j = k+1, m
//	7         A(i,j) = A(i,j) - L(i,k) * A(k,j)
//	10  DO 12 i = m, 1, -1                 (nest G2, V init)
//	11    V(i) = 0.0
//	13  DO 17 j = m, 1, -1                 (nest G3, back substitution)
//	14    X(j) = (B(j) - V(j)) / A(j,j)
//	15    DO 17 i = j-1, 1, -1
//	16      V(i) = V(i) + A(i,j) * X(j)
func Gauss() *Program {
	m := V("m")
	p := &Program{
		Name:   "gauss",
		Params: []string{"m"},
		Arrays: map[string]*Array{
			"A": {Name: "A", Extents: []Affine{m, m}},
			"L": {Name: "L", Extents: []Affine{m, m}},
			"V": {Name: "V", Extents: []Affine{m}},
			"B": {Name: "B", Extents: []Affine{m}},
			"X": {Name: "X", Extents: []Affine{m}},
		},
	}
	g1 := &Nest{
		Label: "G1",
		Loops: []Loop{
			{Index: "k", Lo: Const(1), Hi: m, Step: 1},
			{Index: "i", Lo: V("k").PlusConst(1), Hi: m, Step: 1},
			{Index: "j", Lo: V("k").PlusConst(1), Hi: m, Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 4, Depth: 2, LHS: R("L", V("i"), V("k")),
				Reads: []Ref{R("A", V("i"), V("k")), R("A", V("k"), V("k"))},
				RHS:   DivE(Rd(R("A", V("i"), V("k"))), Rd(R("A", V("k"), V("k")))),
				Flops: 1,
				Text:  "L(i,k) = A(i,k) / A(k,k)"},
			{Line: 5, Depth: 2, LHS: R("B", V("i")),
				Reads: []Ref{R("B", V("i")), R("L", V("i"), V("k")), R("B", V("k"))},
				RHS:   Sub(Rd(R("B", V("i"))), MulE(Rd(R("L", V("i"), V("k"))), Rd(R("B", V("k"))))),
				Flops: 2,
				Text:  "B(i) = B(i) - L(i,k) * B(k)"},
			{Line: 7, Depth: 3, LHS: R("A", V("i"), V("j")),
				Reads: []Ref{R("A", V("i"), V("j")), R("L", V("i"), V("k")), R("A", V("k"), V("j"))},
				RHS:   Sub(Rd(R("A", V("i"), V("j"))), MulE(Rd(R("L", V("i"), V("k"))), Rd(R("A", V("k"), V("j"))))),
				Flops: 2,
				Text:  "A(i,j) = A(i,j) - L(i,k) * A(k,j)"},
		},
	}
	g2 := &Nest{
		Label: "G2",
		Loops: []Loop{
			{Index: "i", Lo: m, Hi: Const(1), Step: -1},
		},
		Stmts: []*Stmt{
			{Line: 11, Depth: 1, LHS: R("V", V("i")), Flops: 0, RHS: Num(0), Text: "V(i) = 0.0"},
		},
	}
	g3 := &Nest{
		Label: "G3",
		Loops: []Loop{
			{Index: "j", Lo: m, Hi: Const(1), Step: -1},
			{Index: "i", Lo: V("j").PlusConst(-1), Hi: Const(1), Step: -1},
		},
		Stmts: []*Stmt{
			{Line: 14, Depth: 1, LHS: R("X", V("j")),
				Reads: []Ref{R("B", V("j")), R("V", V("j")), R("A", V("j"), V("j"))},
				RHS: DivE(Sub(Rd(R("B", V("j"))), Rd(R("V", V("j")))),
					Rd(R("A", V("j"), V("j")))),
				Flops: 2,
				Text:  "X(j) = (B(j) - V(j)) / A(j,j)"},
			{Line: 16, Depth: 2, LHS: R("V", V("i")),
				Reads:  []Ref{R("V", V("i")), R("A", V("i"), V("j")), R("X", V("j"))},
				RHS:    Add(Rd(R("V", V("i"))), MulE(Rd(R("A", V("i"), V("j"))), Rd(R("X", V("j"))))),
				Flops:  2,
				Reduce: true,
				Text:   "V(i) = V(i) + A(i,j) * X(j)"},
		},
	}
	p.Nests = []*Nest{g1, g2, g3}
	return p
}

// Cannon returns the three-nested-loop matrix multiplication A = B * C,
// the Section 2.1 example whose data layouts under Cannon's algorithm are
// the rotated distributions of Fig 1 (b) and (c).
func Cannon() *Program {
	m := V("m")
	p := &Program{
		Name:   "matmul",
		Params: []string{"m"},
		Arrays: map[string]*Array{
			"A": {Name: "A", Extents: []Affine{m, m}},
			"B": {Name: "B", Extents: []Affine{m, m}},
			"C": {Name: "C", Extents: []Affine{m, m}},
		},
	}
	nest := &Nest{
		Label: "M1",
		Loops: []Loop{
			{Index: "i", Lo: Const(1), Hi: m, Step: 1},
			{Index: "j", Lo: Const(1), Hi: m, Step: 1},
			{Index: "k", Lo: Const(1), Hi: m, Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 3, Depth: 3, LHS: R("A", V("i"), V("j")),
				Reads:  []Ref{R("A", V("i"), V("j")), R("B", V("i"), V("k")), R("C", V("k"), V("j"))},
				RHS:    Add(Rd(R("A", V("i"), V("j"))), MulE(Rd(R("B", V("i"), V("k"))), Rd(R("C", V("k"), V("j"))))),
				Flops:  2,
				Reduce: true,
				Text:   "A(i,j) = A(i,j) + B(i,k) * C(k,j)"},
		},
	}
	p.Nests = []*Nest{nest}
	return p
}

// Synthetic returns a sequence of s single-loop nests over two vectors
// and the diagonals of four m x m matrices, cycling through scaled
// updates, diagonal extractions and axpys. The design isolates the DP's
// redistribution costing: every nest's iteration space is O(m), but a
// scheme change must still move O(m²) matrix elements, so Algorithm 1's
// cost(P, P') term dominates compile time exactly as it does for long
// realistic loop sequences over large arrays. The benchmark harness
// uses it to scale the DP's input size s independently of the paper's
// fixed examples.
func Synthetic(s int) *Program {
	m := V("m")
	p := &Program{
		Name:   fmt.Sprintf("synth%d", s),
		Params: []string{"m"},
		Arrays: map[string]*Array{
			"A": {Name: "A", Extents: []Affine{m, m}},
			"B": {Name: "B", Extents: []Affine{m, m}},
			"C": {Name: "C", Extents: []Affine{m, m}},
			"D": {Name: "D", Extents: []Affine{m, m}},
			"X": {Name: "X", Extents: []Affine{m}},
			"Y": {Name: "Y", Extents: []Affine{m}},
		},
	}
	iLoop := []Loop{{Index: "i", Lo: Const(1), Hi: m, Step: 1}}
	di := func(name string) Ref { return R(name, V("i"), V("i")) }
	patterns := []func(label string, line int) *Nest{
		func(label string, line int) *Nest { // diagonal-scaled update of X
			return &Nest{Label: label, Loops: iLoop, Stmts: []*Stmt{
				{Line: line, Depth: 1, LHS: R("X", V("i")),
					Reads: []Ref{R("X", V("i")), di("A"), R("Y", V("i"))},
					RHS:   Add(Rd(R("X", V("i"))), MulE(Rd(di("A")), Rd(R("Y", V("i"))))),
					Flops: 2,
					Text:  "X(i) = X(i) + A(i,i) * Y(i)"},
			}}
		},
		func(label string, line int) *Nest { // diagonal-scaled update of Y
			return &Nest{Label: label, Loops: iLoop, Stmts: []*Stmt{
				{Line: line, Depth: 1, LHS: R("Y", V("i")),
					Reads: []Ref{R("Y", V("i")), di("B"), R("X", V("i"))},
					RHS:   Add(Rd(R("Y", V("i"))), MulE(Rd(di("B")), Rd(R("X", V("i"))))),
					Flops: 2,
					Text:  "Y(i) = Y(i) + B(i,i) * X(i)"},
			}}
		},
		func(label string, line int) *Nest { // diagonal combine
			return &Nest{Label: label, Loops: iLoop, Stmts: []*Stmt{
				{Line: line, Depth: 1, LHS: di("C"),
					Reads: []Ref{di("A"), di("B")},
					RHS:   Add(Rd(di("A")), Rd(di("B"))),
					Flops: 1,
					Text:  "C(i,i) = A(i,i) + B(i,i)"},
			}}
		},
		func(label string, line int) *Nest { // diagonal accumulate
			return &Nest{Label: label, Loops: iLoop, Stmts: []*Stmt{
				{Line: line, Depth: 1, LHS: di("D"),
					Reads: []Ref{di("C"), R("X", V("i")), R("Y", V("i"))},
					RHS:   Add(Rd(di("C")), MulE(Rd(R("X", V("i"))), Rd(R("Y", V("i"))))),
					Flops: 2,
					Text:  "D(i,i) = C(i,i) + X(i) * Y(i)"},
			}}
		},
		func(label string, line int) *Nest { // vector axpy
			return &Nest{Label: label, Loops: iLoop, Stmts: []*Stmt{
				{Line: line, Depth: 1, LHS: R("X", V("i")),
					Reads: []Ref{R("X", V("i")), R("Y", V("i"))},
					RHS:   Add(Rd(R("X", V("i"))), Rd(R("Y", V("i")))),
					Flops: 1,
					Text:  "X(i) = X(i) + Y(i)"},
			}}
		},
		func(label string, line int) *Nest { // diagonal difference into Y
			return &Nest{Label: label, Loops: iLoop, Stmts: []*Stmt{
				{Line: line, Depth: 1, LHS: R("Y", V("i")),
					Reads: []Ref{di("C"), di("D")},
					RHS:   Sub(Rd(di("C")), Rd(di("D"))),
					Flops: 1,
					Text:  "Y(i) = C(i,i) - D(i,i)"},
			}}
		},
	}
	for t := 0; t < s; t++ {
		p.Nests = append(p.Nests, patterns[t%len(patterns)](fmt.Sprintf("T%d", t+1), t+1))
	}
	return p
}

// Stencil returns the five-point relaxation
//
//	DO 3 i = 2, m-1
//	  DO 3 j = 2, m-1
//	3   W(i,j) = (U(i-1,j) + U(i+1,j) + U(i,j-1) + U(i,j+1)) / 4
//
// the Section 1 case where "dependent data only influence neighboring
// data": every affinity edge has a constant subscript offset, so
// component alignment co-locates U and W dimension-wise and all
// communication is nearest-neighbour.
func Stencil() *Program {
	m := V("m")
	p := &Program{
		Name:      "stencil",
		Iterative: true,
		Params:    []string{"m"},
		Arrays: map[string]*Array{
			"U": {Name: "U", Extents: []Affine{m, m}},
			"W": {Name: "W", Extents: []Affine{m, m}},
		},
	}
	nest := &Nest{
		Label: "S1",
		Loops: []Loop{
			{Index: "i", Lo: Const(2), Hi: m.PlusConst(-1), Step: 1},
			{Index: "j", Lo: Const(2), Hi: m.PlusConst(-1), Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 3, Depth: 2, LHS: R("W", V("i"), V("j")),
				Reads: []Ref{
					R("U", V("i").PlusConst(-1), V("j")),
					R("U", V("i").PlusConst(1), V("j")),
					R("U", V("i"), V("j").PlusConst(-1)),
					R("U", V("i"), V("j").PlusConst(1)),
				},
				RHS: DivE(Add(Add(Rd(R("U", V("i").PlusConst(-1), V("j"))), Rd(R("U", V("i").PlusConst(1), V("j")))),
					Add(Rd(R("U", V("i"), V("j").PlusConst(-1))), Rd(R("U", V("i"), V("j").PlusConst(1))))),
					Num(4)),
				Flops: 4,
				Text:  "W(i,j) = (U(i-1,j) + U(i+1,j) + U(i,j-1) + U(i,j+1)) / 4"},
		},
	}
	copyBack := &Nest{
		Label: "S2",
		Loops: []Loop{
			{Index: "i", Lo: Const(2), Hi: m.PlusConst(-1), Step: 1},
			{Index: "j", Lo: Const(2), Hi: m.PlusConst(-1), Step: 1},
		},
		Stmts: []*Stmt{
			{Line: 5, Depth: 2, LHS: R("U", V("i"), V("j")),
				Reads: []Ref{R("W", V("i"), V("j"))},
				RHS:   Rd(R("W", V("i"), V("j"))),
				Flops: 0,
				Text:  "U(i,j) = W(i,j)"},
		},
	}
	p.Nests = []*Nest{nest, copyBack}
	return p
}
