package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAffineArithmetic(t *testing.T) {
	a := V("i").PlusConst(-1) // i-1
	b := V("i").Plus(V("j"))  // i+j
	if a.Eval(map[string]int{"i": 5}) != 4 {
		t.Fatal("Eval wrong")
	}
	if b.Eval(map[string]int{"i": 2, "j": 3}) != 5 {
		t.Fatal("Eval wrong")
	}
	s := a.Plus(b) // 2i+j-1
	if s.CoeffOf("i") != 2 || s.CoeffOf("j") != 1 || s.Const != -1 {
		t.Fatalf("Plus: %s", s)
	}
	d := a.Minus(V("i")) // -1
	if !d.IsConst() || d.Const != -1 {
		t.Fatalf("Minus: %s", d)
	}
	n := b.Neg()
	if n.CoeffOf("i") != -1 || n.CoeffOf("j") != -1 {
		t.Fatalf("Neg: %s", n)
	}
}

func TestAffineCancellation(t *testing.T) {
	a := V("i").Plus(V("i").Neg())
	if !a.IsConst() || a.Const != 0 {
		t.Fatalf("i + (-i) = %s", a)
	}
	if len(a.Vars()) != 0 {
		t.Fatalf("vars not cancelled: %v", a.Vars())
	}
}

func TestAffineEvalUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	V("i").Eval(map[string]int{})
}

func TestConstDiff(t *testing.T) {
	a := V("i").PlusConst(2)
	b := V("i").PlusConst(-1)
	if d, ok := a.ConstDiff(b); !ok || d != 3 {
		t.Fatalf("ConstDiff = %d, %v", d, ok)
	}
	if _, ok := a.ConstDiff(V("j")); ok {
		t.Fatal("i+2 vs j should not have constant difference")
	}
	// Same variable, different coefficient.
	if _, ok := NewAffine(0, Term{"i", 2}).ConstDiff(V("i")); ok {
		t.Fatal("2i vs i should not have constant difference")
	}
}

func TestAffineString(t *testing.T) {
	cases := map[string]Affine{
		"i-1":  V("i").PlusConst(-1),
		"i+j":  V("i").Plus(V("j")),
		"-i+5": V("i").Neg().PlusConst(5),
		"0":    Const(0),
		"2i":   NewAffine(0, Term{"i", 2}),
		"i":    V("i"),
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

// Property: Eval is linear: eval(a+b) = eval(a)+eval(b).
func TestAffineEvalLinearQuick(t *testing.T) {
	f := func(c1, c2, k1, k2 int8, x int8) bool {
		a := NewAffine(int(k1), Term{"x", int(c1)})
		b := NewAffine(int(k2), Term{"x", int(c2)})
		bind := map[string]int{"x": int(x)}
		return a.Plus(b).Eval(bind) == a.Eval(bind)+b.Eval(bind)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefString(t *testing.T) {
	r := R("A", V("i"), V("j").PlusConst(-1))
	if r.String() != "A(i,j-1)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestProgramsValidate(t *testing.T) {
	for _, p := range []*Program{Jacobi(), SOR(), Gauss(), Cannon()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestJacobiShape(t *testing.T) {
	p := Jacobi()
	if len(p.Nests) != 2 {
		t.Fatalf("nests = %d", len(p.Nests))
	}
	if !p.Iterative {
		t.Fatal("Jacobi must be iterative")
	}
	l1 := p.Nests[0]
	if l1.Label != "L1" || len(l1.Loops) != 2 || len(l1.Stmts) != 2 {
		t.Fatalf("L1 shape wrong: %+v", l1)
	}
	if !l1.Stmts[1].Reduce {
		t.Fatal("line 5 must be a reduction")
	}
	if _, ok := l1.Loop("j"); !ok {
		t.Fatal("loop j missing")
	}
	if _, ok := l1.Loop("z"); ok {
		t.Fatal("phantom loop z")
	}
	dims := p.AllDims()
	// A(2) + B + V + X = 5 dims.
	if len(dims) != 5 {
		t.Fatalf("dims = %v", dims)
	}
	if dims[0].String() != "A1" || dims[1].String() != "A2" {
		t.Fatalf("dims order: %v", dims)
	}
}

func TestGaussShape(t *testing.T) {
	p := Gauss()
	if p.Iterative {
		t.Fatal("Gauss is not iterative")
	}
	if len(p.Nests) != 3 {
		t.Fatalf("nests = %d", len(p.Nests))
	}
	g1 := p.Nests[0]
	if len(g1.Loops) != 3 {
		t.Fatalf("G1 loops = %d", len(g1.Loops))
	}
	// Triangular bound: i runs from k+1.
	if g1.Loops[1].Lo.CoeffOf("k") != 1 || g1.Loops[1].Lo.Const != 1 {
		t.Fatalf("G1 i lower bound = %s", g1.Loops[1].Lo)
	}
	g3 := p.Nests[2]
	if g3.Loops[0].Step != -1 {
		t.Fatal("back substitution must run downward")
	}
	// 5 arrays: A,L 2-D; V,B,X 1-D -> 7 dims.
	if len(p.AllDims()) != 7 {
		t.Fatalf("dims = %v", p.AllDims())
	}
}

func TestValidateCatchesBrokenPrograms(t *testing.T) {
	p := Jacobi()
	// Undeclared array.
	p.Nests[0].Stmts = append(p.Nests[0].Stmts, &Stmt{
		Line: 99, Depth: 1, LHS: R("Z", V("i")),
	})
	if err := p.Validate(); err == nil {
		t.Fatal("undeclared array not caught")
	}

	p2 := Jacobi()
	// Wrong rank.
	p2.Nests[0].Stmts[0].LHS = R("A", V("i"))
	if err := p2.Validate(); err == nil {
		t.Fatal("rank mismatch not caught")
	}

	p3 := Jacobi()
	// Out-of-scope index: j used at depth 1.
	p3.Nests[0].Stmts[0].LHS = R("V", V("j"))
	if err := p3.Validate(); err == nil {
		t.Fatal("out-of-scope index not caught")
	}

	p4 := Jacobi()
	p4.Nests[0].Stmts[0].Depth = 7
	if err := p4.Validate(); err == nil {
		t.Fatal("bad depth not caught")
	}
}

func TestArrayLookupPanics(t *testing.T) {
	p := Jacobi()
	if p.Array("A").Rank() != 2 {
		t.Fatal("A rank")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Array("nope")
}

func TestPrintRendersAllPrograms(t *testing.T) {
	for _, p := range []*Program{Jacobi(), SOR(), Gauss(), Cannon(), Stencil()} {
		src := Print(p)
		for _, want := range []string{"PROGRAM " + p.Name, "PARAM m", "REAL", "END"} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: printed source missing %q\n%s", p.Name, want, src)
			}
		}
		if p.Iterative && !strings.Contains(src, "MAX_ITERATION") {
			t.Errorf("%s: iterative wrapper missing", p.Name)
		}
	}
}

func TestPrintPreservesStatementPositions(t *testing.T) {
	// SOR's line 7 must print after the inner loop's CONTINUE.
	src := Print(SOR())
	i5 := strings.Index(src, "V(i) + (A(i,j) * X(j))")
	i7 := strings.Index(src, "OMEGA")
	cont := strings.Index(src[i5:], "CONTINUE")
	if !(i5 >= 0 && i7 > i5 && i5+cont < i7) {
		t.Fatalf("statement order wrong:\n%s", src)
	}
}
