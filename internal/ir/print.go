// Pretty-printing: render an IR program back to the frontend source
// syntax (package parse), so compiled or generated programs can be
// dumped, diffed, and re-parsed. Print and parse.Parse round-trip.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the program in the frontend syntax accepted by
// package parse.
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", p.Name)
	if len(p.Params) > 0 {
		fmt.Fprintf(&b, "PARAM %s\n", strings.Join(p.Params, ", "))
	}
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	var decls []string
	for _, n := range names {
		arr := p.Arrays[n]
		ext := make([]string, arr.Rank())
		for i, e := range arr.Extents {
			ext[i] = e.String()
		}
		decls = append(decls, fmt.Sprintf("%s(%s)", n, strings.Join(ext, ",")))
	}
	fmt.Fprintf(&b, "REAL %s\n", strings.Join(decls, ", "))

	label := 100 // generated loop-end labels, clear of paper line numbers
	if p.Iterative {
		fmt.Fprintf(&b, "DO %d k0 = 1, MAX_ITERATION\n", label)
	}
	for _, nest := range p.Nests {
		emit(&b, nest, &label)
	}
	if p.Iterative {
		fmt.Fprintf(&b, "100 CONTINUE\n")
	}
	b.WriteString("END\n")
	return b.String()
}

func printStmt(b *strings.Builder, st *Stmt, indent string) {
	rhs := "0.0"
	if st.RHS != nil {
		rhs = exprSrc(st.RHS)
	}
	if st.Line > 0 {
		fmt.Fprintf(b, "%d %s%s = %s\n", st.Line, indent, st.LHS, rhs)
	} else {
		fmt.Fprintf(b, "%s%s = %s\n", indent, st.LHS, rhs)
	}
}

// exprSrc renders an expression in the frontend's infix syntax (fully
// parenthesized, which the parser accepts).
func exprSrc(e Expr) string {
	switch v := e.(type) {
	case Num:
		return fmt.Sprintf("%g", float64(v))
	case Scalar:
		return string(v)
	case RefE:
		return v.Ref.String()
	case NegE:
		return fmt.Sprintf("(-%s)", exprSrc(v.E))
	case BinOp:
		return fmt.Sprintf("(%s %c %s)", exprSrc(v.L), v.Op, exprSrc(v.R))
	}
	return "0.0"
}

// emit renders a nest with one distinct label per loop, closing each loop
// with its own CONTINUE so pre/post statement positions are preserved.
func emit(b *strings.Builder, nest *Nest, label *int) {
	ind := func(d int) string { return strings.Repeat("  ", d) }
	labels := make([]int, len(nest.Loops))
	for i := range labels {
		*label++
		labels[i] = *label
	}
	var walk func(level int)
	walk = func(level int) {
		for _, st := range nest.Stmts {
			if st.Depth == level && !nest.IsPost(st) {
				printStmt(b, st, ind(level))
			}
		}
		if level < len(nest.Loops) {
			l := nest.Loops[level]
			if l.Step == -1 {
				fmt.Fprintf(b, "%sDO %d %s = %s, %s, -1\n", ind(level), labels[level], l.Index, l.Lo, l.Hi)
			} else {
				fmt.Fprintf(b, "%sDO %d %s = %s, %s\n", ind(level), labels[level], l.Index, l.Lo, l.Hi)
			}
			walk(level + 1)
			fmt.Fprintf(b, "%s%d CONTINUE\n", ind(level), labels[level])
		}
		for _, st := range nest.Stmts {
			if st.Depth == level && nest.IsPost(st) {
				printStmt(b, st, ind(level))
			}
		}
	}
	walk(0)
}
