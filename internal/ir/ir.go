// Package ir is the compiler's intermediate representation: sequential
// Fortran-style Do-loop programs with affine loop bounds and affine array
// subscripts — the program class the paper's method applies to.
//
// A Program is an optional outer iterative loop (DO k = 1, MAX_ITERATION)
// whose body is a sequence of loop nests; each nest is a list of loops
// (outermost first) and statements at given nesting depths. Loop bounds
// and subscripts are affine expressions over loop indices and symbolic
// size parameters (typically "m"), so both alignment analysis (Section 3)
// and dependence analysis (Section 6) are exact.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Affine is an affine expression: Const + sum(Coeff[v] * v) where the
// variables v are loop indices or size parameters.
type Affine struct {
	Coeff map[string]int
	Const int
}

// NewAffine builds an affine expression from variable/coefficient pairs.
func NewAffine(c int, terms ...Term) Affine {
	a := Affine{Coeff: map[string]int{}, Const: c}
	for _, t := range terms {
		if t.Coeff != 0 {
			a.Coeff[t.Var] += t.Coeff
		}
	}
	return a
}

// Term is one linear term of an affine expression.
type Term struct {
	Var   string
	Coeff int
}

// V is shorthand for a unit term: the bare variable v.
func V(v string) Affine { return NewAffine(0, Term{Var: v, Coeff: 1}) }

// Const is shorthand for a constant affine expression.
func Const(c int) Affine { return NewAffine(c) }

// Plus returns a + b.
func (a Affine) Plus(b Affine) Affine {
	out := NewAffine(a.Const + b.Const)
	for v, c := range a.Coeff {
		out.Coeff[v] += c
	}
	for v, c := range b.Coeff {
		out.Coeff[v] += c
	}
	for v, c := range out.Coeff {
		if c == 0 {
			delete(out.Coeff, v)
		}
	}
	return out
}

// PlusConst returns a + c.
func (a Affine) PlusConst(c int) Affine { return a.Plus(Const(c)) }

// Neg returns -a.
func (a Affine) Neg() Affine {
	out := NewAffine(-a.Const)
	for v, c := range a.Coeff {
		out.Coeff[v] = -c
	}
	return out
}

// Minus returns a - b.
func (a Affine) Minus(b Affine) Affine { return a.Plus(b.Neg()) }

// Eval evaluates the expression under a variable binding; it panics on
// unbound variables with nonzero coefficients (an analysis bug).
func (a Affine) Eval(bind map[string]int) int {
	v := a.Const
	for name, c := range a.Coeff {
		if c == 0 {
			continue
		}
		val, ok := bind[name]
		if !ok {
			panic(fmt.Sprintf("ir: unbound variable %q in %s", name, a))
		}
		v += c * val
	}
	return v
}

// CoeffOf returns the coefficient of variable v (0 if absent).
func (a Affine) CoeffOf(v string) int { return a.Coeff[v] }

// Vars returns the variables with nonzero coefficients, sorted.
func (a Affine) Vars() []string {
	var out []string
	for v, c := range a.Coeff {
		if c != 0 {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// DependsOn reports whether the expression has a nonzero coefficient on v.
func (a Affine) DependsOn(v string) bool { return a.Coeff[v] != 0 }

// IsConst reports whether the expression has no variable terms.
func (a Affine) IsConst() bool { return len(a.Vars()) == 0 }

// ConstDiff returns (a-b).Const and true when a-b is a constant, i.e.
// the two expressions have identical variable parts — the paper's
// affinity-relation condition ("the difference of the two subscripts ...
// is a constant value", Section 3).
func (a Affine) ConstDiff(b Affine) (int, bool) {
	d := a.Minus(b)
	if !d.IsConst() {
		return 0, false
	}
	return d.Const, true
}

// String renders the expression, e.g. "i-1" or "m-j+2".
func (a Affine) String() string {
	var b strings.Builder
	vars := a.Vars()
	for _, v := range vars {
		c := a.Coeff[v]
		switch {
		case c == 1:
			if b.Len() > 0 {
				b.WriteByte('+')
			}
			b.WriteString(v)
		case c == -1:
			b.WriteByte('-')
			b.WriteString(v)
		case c > 0:
			if b.Len() > 0 {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%d%s", c, v)
		default:
			fmt.Fprintf(&b, "%d%s", c, v)
		}
	}
	if a.Const != 0 || b.Len() == 0 {
		if a.Const >= 0 && b.Len() > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", a.Const)
	}
	return b.String()
}

// Array declares a data array with symbolic per-dimension extents.
type Array struct {
	Name string
	// Extents holds one affine expression per dimension, typically V("m").
	Extents []Affine
}

// Rank returns the array's dimensionality.
func (a *Array) Rank() int { return len(a.Extents) }

// Ref is an array reference with one affine subscript per dimension.
type Ref struct {
	Array string
	Subs  []Affine
}

// R builds a reference.
func R(array string, subs ...Affine) Ref { return Ref{Array: array, Subs: subs} }

func (r Ref) String() string {
	parts := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("%s(%s)", r.Array, strings.Join(parts, ","))
}

// Stmt is an assignment statement inside a loop nest.
type Stmt struct {
	// Line is the source line number in the paper's listing, used in
	// reports (the affinity-graph edge annotations cite lines).
	Line int
	// Depth is the number of enclosing loops of the nest the statement
	// sits under (1 = directly under the outermost loop).
	Depth int
	// LHS is the written reference; Reads are the array references read.
	// Scalar reads/writes are omitted — scalars are replicated (Section 2).
	LHS   Ref
	Reads []Ref
	// RHS is the executable right-hand side (nil means "assign 0"). The
	// analyses use Reads/Flops; the interpreters use RHS.
	RHS Expr
	// Flops is the floating point operation count per execution.
	Flops int
	// Reduce marks a reduction statement (LHS appears among Reads with
	// identical subscripts, combined with an associative operator).
	Reduce bool
	// Text is the statement's source text for listings.
	Text string
}

// Loop is one Do loop: DO Index = Lo, Hi (unit step; Step=-1 for
// downward loops like the back-substitution in Gauss elimination).
type Loop struct {
	Index string
	Lo    Affine
	Hi    Affine
	Step  int
}

// Nest is a perfect or imperfect loop nest: Loops outermost-first, with
// statements at arbitrary depths.
type Nest struct {
	Label string
	Loops []Loop
	Stmts []*Stmt
}

// LoopIndices returns the nest's loop index names, outermost first.
func (n *Nest) LoopIndices() []string {
	out := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		out[i] = l.Index
	}
	return out
}

// IsPost reports whether a statement at depth d executes after the
// deeper inner loop rather than before it: true when some deeper
// statement precedes it in source order (SOR's X update at line 7 runs
// after the inner product loop).
func (n *Nest) IsPost(stmt *Stmt) bool {
	for _, other := range n.Stmts {
		if other == stmt {
			return false
		}
		if other.Depth > stmt.Depth {
			return true
		}
	}
	return false
}

// Loop returns the loop with the given index name.
func (n *Nest) Loop(index string) (Loop, bool) {
	for _, l := range n.Loops {
		if l.Index == index {
			return l, true
		}
	}
	return Loop{}, false
}

// Program is a sequence of loop nests, optionally wrapped in an outer
// iterative (convergence) loop.
type Program struct {
	Name   string
	Arrays map[string]*Array
	Nests  []*Nest
	// Iterative marks programs wrapped in DO k = 1, MAX_ITERATION; the
	// loop-carried dependences across its iterations contribute the
	// CTime2 term of Section 4.
	Iterative bool
	// Params are the symbolic size parameters (e.g. "m").
	Params []string
}

// Array returns the named array, panicking if it is undeclared (an IR
// construction bug).
func (p *Program) Array(name string) *Array {
	a, ok := p.Arrays[name]
	if !ok {
		panic(fmt.Sprintf("ir: undeclared array %q in program %s", name, p.Name))
	}
	return a
}

// Validate checks that every reference matches its array's rank and uses
// only loop indices visible at its statement's depth (or size parameters).
func (p *Program) Validate() error {
	params := map[string]bool{}
	for _, s := range p.Params {
		params[s] = true
	}
	for _, nest := range p.Nests {
		vis := map[string]bool{}
		for _, l := range nest.Loops {
			vis[l.Index] = true
		}
		for _, st := range p.StmtsOf(nest) {
			if st.Depth < 1 || st.Depth > len(nest.Loops) {
				return fmt.Errorf("ir: %s stmt line %d depth %d outside nest of %d loops",
					nest.Label, st.Line, st.Depth, len(nest.Loops))
			}
			inScope := map[string]bool{}
			for i := 0; i < st.Depth; i++ {
				inScope[nest.Loops[i].Index] = true
			}
			refs := append([]Ref{st.LHS}, st.Reads...)
			for _, r := range refs {
				arr, ok := p.Arrays[r.Array]
				if !ok {
					return fmt.Errorf("ir: %s line %d references undeclared array %q", nest.Label, st.Line, r.Array)
				}
				if len(r.Subs) != arr.Rank() {
					return fmt.Errorf("ir: %s line %d: %s has %d subscripts, array is %d-D",
						nest.Label, st.Line, r, len(r.Subs), arr.Rank())
				}
				for _, sub := range r.Subs {
					for _, v := range sub.Vars() {
						if !inScope[v] && !params[v] {
							return fmt.Errorf("ir: %s line %d: subscript %s uses out-of-scope variable %q",
								nest.Label, st.Line, sub, v)
						}
					}
				}
			}
		}
	}
	return nil
}

// StmtsOf returns a nest's statements (helper so Program methods read
// uniformly).
func (p *Program) StmtsOf(n *Nest) []*Stmt { return n.Stmts }

// DimID identifies one dimension of one array — a node of the component
// affinity graph.
type DimID struct {
	Array string
	Dim   int // 0-based
}

func (d DimID) String() string { return fmt.Sprintf("%s%d", d.Array, d.Dim+1) }

// AllDims lists every (array, dimension) pair of the program, sorted by
// array name then dimension.
func (p *Program) AllDims() []DimID {
	var out []DimID
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for d := 0; d < p.Arrays[n].Rank(); d++ {
			out = append(out, DimID{Array: n, Dim: d})
		}
	}
	return out
}
