// Expression trees: the executable right-hand sides of statements. The
// analyses (alignment, dependence, cost) only need the Reads list, but
// the interpreters — the sequential reference evaluator below and the
// parallel executor in package exec — need real semantics.
package ir

import (
	"fmt"
	"math"
)

// Expr is an evaluable right-hand-side expression.
type Expr interface {
	// Eval computes the expression's value. env binds loop indices and
	// parameters; load resolves array references at the current indices;
	// scalars binds free scalar names (OMEGA and friends).
	Eval(env map[string]int, load func(Ref, []int) float64, scalars map[string]float64) float64
	String() string
}

// Num is a literal constant.
type Num float64

// Eval returns the literal.
func (n Num) Eval(map[string]int, func(Ref, []int) float64, map[string]float64) float64 {
	return float64(n)
}

func (n Num) String() string { return fmt.Sprintf("%g", float64(n)) }

// Scalar is a free scalar variable (replicated on all processors per
// Section 2).
type Scalar string

// Eval looks the scalar up, panicking on unbound names (an IR
// construction or parse bug).
func (s Scalar) Eval(env map[string]int, load func(Ref, []int) float64, scalars map[string]float64) float64 {
	v, ok := scalars[string(s)]
	if !ok {
		panic(fmt.Sprintf("ir: unbound scalar %q", string(s)))
	}
	return v
}

func (s Scalar) String() string { return string(s) }

// RefE is an array reference expression.
type RefE struct{ Ref Ref }

// Eval resolves the subscripts under env and loads the element.
func (r RefE) Eval(env map[string]int, load func(Ref, []int) float64, scalars map[string]float64) float64 {
	idx := make([]int, len(r.Ref.Subs))
	for k, s := range r.Ref.Subs {
		idx[k] = s.Eval(env)
	}
	return load(r.Ref, idx)
}

func (r RefE) String() string { return r.Ref.String() }

// BinOp is a binary arithmetic expression.
type BinOp struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Eval applies the operator.
func (b BinOp) Eval(env map[string]int, load func(Ref, []int) float64, scalars map[string]float64) float64 {
	l := b.L.Eval(env, load, scalars)
	r := b.R.Eval(env, load, scalars)
	switch b.Op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		return l / r
	}
	panic(fmt.Sprintf("ir: unknown operator %q", b.Op))
}

func (b BinOp) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// NegE is unary negation.
type NegE struct{ E Expr }

// Eval negates.
func (n NegE) Eval(env map[string]int, load func(Ref, []int) float64, scalars map[string]float64) float64 {
	return -n.E.Eval(env, load, scalars)
}

func (n NegE) String() string { return fmt.Sprintf("(-%s)", n.E) }

// Convenience constructors for hand-built programs.

// Add returns l + r.
func Add(l, r Expr) Expr { return BinOp{Op: '+', L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return BinOp{Op: '-', L: l, R: r} }

// MulE returns l * r.
func MulE(l, r Expr) Expr { return BinOp{Op: '*', L: l, R: r} }

// DivE returns l / r.
func DivE(l, r Expr) Expr { return BinOp{Op: '/', L: l, R: r} }

// Rd wraps a reference as an expression.
func Rd(r Ref) Expr { return RefE{Ref: r} }

// ExprReads collects the array references of an expression tree in
// left-to-right order (the canonical Reads list of a statement).
func ExprReads(e Expr) []Ref {
	var out []Ref
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case RefE:
			out = append(out, v.Ref)
		case BinOp:
			walk(v.L)
			walk(v.R)
		case NegE:
			walk(v.E)
		}
	}
	walk(e)
	return out
}

// ExprFlops counts the arithmetic operations of an expression tree.
func ExprFlops(e Expr) int {
	switch v := e.(type) {
	case BinOp:
		return 1 + ExprFlops(v.L) + ExprFlops(v.R)
	case NegE:
		return 1 + ExprFlops(v.E)
	default:
		return 0
	}
}

// Storage holds a program's array values during interpretation, indexed
// by 1-based subscripts.
type Storage map[string]map[string]float64

// skey encodes a subscript tuple.
func skey(idx []int) string {
	s := ""
	for i, v := range idx {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", v)
	}
	return s
}

// NewStorage allocates zeroed storage for every array of the program.
func NewStorage(p *Program) Storage {
	st := Storage{}
	for name := range p.Arrays {
		st[name] = map[string]float64{}
	}
	return st
}

// Load reads an element (zero if never written).
func (st Storage) Load(r Ref, idx []int) float64 {
	return st[r.Array][skey(idx)]
}

// Store writes an element.
func (st Storage) Store(arr string, idx []int, v float64) {
	st[arr][skey(idx)] = v
}

// EvalProgram interprets the whole program sequentially: the reference
// semantics for any IR program with RHS expressions. iters is the trip
// count of the implicit outer iterative loop (1 for non-iterative
// programs). Statements without an RHS default to assigning 0 (the
// "V(i) = 0.0" initializers can also carry Num(0) explicitly).
func EvalProgram(p *Program, bind map[string]int, st Storage, scalars map[string]float64, iters int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if !p.Iterative {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		for _, nest := range p.Nests {
			if err := evalNest(nest, bind, st, scalars); err != nil {
				return err
			}
		}
	}
	return nil
}

func evalNest(nest *Nest, bind map[string]int, st Storage, scalars map[string]float64) error {
	env := map[string]int{}
	for k, v := range bind {
		env[k] = v
	}
	exec := func(stmt *Stmt) error {
		idx := make([]int, len(stmt.LHS.Subs))
		for k, s := range stmt.LHS.Subs {
			idx[k] = s.Eval(env)
		}
		v := 0.0
		if stmt.RHS != nil {
			v = stmt.RHS.Eval(env, st.Load, scalars)
		}
		if math.IsNaN(v) {
			return fmt.Errorf("ir: NaN at %s line %d", stmt.LHS, stmt.Line)
		}
		st.Store(stmt.LHS.Array, idx, v)
		return nil
	}
	var walk func(level int) error
	walk = func(level int) error {
		// Statements at this depth run before or after the inner loop
		// depending on their source position (IsPost): SOR's line 7 comes
		// after the inner j loop.
		for _, stmt := range nest.Stmts {
			if stmt.Depth == level && !nest.IsPost(stmt) {
				if err := exec(stmt); err != nil {
					return err
				}
			}
		}
		if level < len(nest.Loops) {
			l := nest.Loops[level]
			lo, hi := l.Lo.Eval(env), l.Hi.Eval(env)
			if l.Step >= 0 {
				for v := lo; v <= hi; v++ {
					env[l.Index] = v
					if err := walk(level + 1); err != nil {
						return err
					}
				}
			} else {
				for v := lo; v >= hi; v-- {
					env[l.Index] = v
					if err := walk(level + 1); err != nil {
						return err
					}
				}
			}
			delete(env, l.Index)
		}
		for _, stmt := range nest.Stmts {
			if stmt.Depth == level && nest.IsPost(stmt) {
				if err := exec(stmt); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(0)
}
