// Package cost implements the paper's execution-time model: the
// communication-primitive costs of Table 1, the closed-form per-iteration
// times of Sections 3-5 (Table 2 and the SOR formulas), and an exact
// enumeration-based communication counter used by the dynamic programming
// algorithm of Section 4 to price candidate distribution schemes.
package cost

import "math"

// Model carries the machine parameters: tf is the average time of a
// floating point operation, tc the average time of transferring one word
// (Section 3).
type Model struct {
	Tf float64
	Tc float64
}

// Unit is the model with tf = tc = 1 used throughout the experiments.
func Unit() Model { return Model{Tf: 1, Tc: 1} }

// Log2Ceil returns ceil(log2(n)) with Log2Ceil(n<=1) = 0, the step count
// of binomial-tree collectives.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for p := 1; p < n; p <<= 1 {
		k++
	}
	return k
}

// The communication primitives of Table 1, returning simulated time for a
// message of m words over num processors on the hypercube.

// Transfer sends m words between two processors: O(m).
func (c Model) Transfer(m int) float64 { return c.Tc * float64(m) }

// Shift circularly shifts m words between neighbours: O(m).
func (c Model) Shift(m int) float64 { return c.Tc * float64(m) }

// OneToManyMulticast broadcasts m words to num processors: O(m log num).
func (c Model) OneToManyMulticast(m, num int) float64 {
	return c.Tc * float64(m) * float64(Log2Ceil(num))
}

// Reduction combines m words over num processors: O(m log num).
func (c Model) Reduction(m, num int) float64 {
	return c.Tc * float64(m) * float64(Log2Ceil(num))
}

// AffineTransform routes m words per processor along a permutation of num
// processors: O(m log num) on the hypercube.
func (c Model) AffineTransform(m, num int) float64 {
	return c.Tc * float64(m) * float64(Log2Ceil(num))
}

// Scatter sends a distinct m-word message to each of num processors:
// O(m num).
func (c Model) Scatter(m, num int) float64 {
	return c.Tc * float64(m) * float64(num)
}

// Gather receives an m-word message from each of num processors: O(m num).
func (c Model) Gather(m, num int) float64 {
	return c.Tc * float64(m) * float64(num)
}

// ManyToManyMulticast replicates m words from each of num processors to
// all of them: O(m num).
func (c Model) ManyToManyMulticast(m, num int) float64 {
	return c.Tc * float64(m) * float64(num)
}

// Breakdown splits an execution-time estimate the way Table 2 does.
type Breakdown struct {
	Comp float64
	Comm float64
}

// Total returns Comp + Comm.
func (b Breakdown) Total() float64 { return b.Comp + b.Comm }

// JacobiIteration returns the per-iteration time of Jacobi's algorithm
// under the Section 3 distribution (Equation 1: A blocked N1 x N2, V
// aligned with A1, X and B aligned with A2) on an N1 x N2 grid:
//
//	Time = 2*m^2/(N1*N2)*tf + Reduction(m/N1, N2)             (line 5)
//	     + 3*m/N2*tf
//	     + N1*OneToManyMulticast(m/N1, N2)                    (line 8)
//	       (or N1*Transfer(m/N1) if N2 = 1)
//	     + OneToManyMulticast(m, N1)                          (loop-carried X)
func (c Model) JacobiIteration(m, n1, n2 int) Breakdown {
	var b Breakdown
	b.Comp = 2*float64(m*m)/float64(n1*n2)*c.Tf + 3*float64(m)/float64(n2)*c.Tf
	b.Comm = c.Reduction(m/n1, n2)
	if n2 == 1 {
		b.Comm += float64(n1) * c.Transfer(m/n1)
	} else {
		b.Comm += float64(n1) * c.OneToManyMulticast(m/n1, n2)
	}
	b.Comm += c.OneToManyMulticast(m, n1)
	return b
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	N1, N2 int
	Breakdown
}

// Table2 evaluates the Jacobi iteration time on the paper's three grids:
// 1 x N, N x 1, and sqrt(N) x sqrt(N) (N must be a perfect square for the
// third row; otherwise the row is skipped).
func (c Model) Table2(m, n int) []Table2Row {
	rows := []Table2Row{
		{N1: 1, N2: n, Breakdown: c.JacobiIteration(m, 1, n)},
		{N1: n, N2: 1, Breakdown: c.JacobiIteration(m, n, 1)},
	}
	r := int(math.Round(math.Sqrt(float64(n))))
	if r*r == n && r > 1 {
		rows = append(rows, Table2Row{N1: r, N2: r, Breakdown: c.JacobiIteration(m, r, r)})
	}
	return rows
}

// JacobiDPIteration returns the per-iteration time of the Section 4
// scheme chosen by the dynamic programming algorithm: both loops row
// distributed on an N x 1 grid (Table 3 layout), X replicated after each
// iteration by a ManyToManyMulticast:
//
//	Time = (2*m^2/N + 3*m/N)*tf + m*tc
func (c Model) JacobiDPIteration(m, n int) Breakdown {
	return Breakdown{
		Comp: (2*float64(m*m)/float64(n) + 3*float64(m)/float64(n)) * c.Tf,
		Comm: c.ManyToManyMulticast(m/n, n),
	}
}

// SORNaiveIteration returns the per-iteration time of the naive SOR
// implementation of Section 5 (column distribution, per-step Reduction
// and broadcast):
//
//	Time = (2*m^2/N + 4*m)*tf + m*(log N + 1)*tc
func (c Model) SORNaiveIteration(m, n int) Breakdown {
	return Breakdown{
		Comp: (2*float64(m*m)/float64(n) + 4*float64(m)) * c.Tf,
		Comm: float64(m) * (c.Reduction(1, n) + c.Transfer(1)),
	}
}

// SORPipelinedIteration returns the Section 5 bound for the pipelined SOR
// implementation:
//
//	Time <= (m+N) * (2*(m/N)*tf + 2*tc) = (2*m^2/N + 2*m)*tf + 2*(m+N)*tc
func (c Model) SORPipelinedIteration(m, n int) Breakdown {
	steps := float64(m + n)
	return Breakdown{
		Comp: steps * 2 * float64(m) / float64(n) * c.Tf,
		Comm: steps * 2 * c.Tc,
	}
}
