// Symbolic redistribution pricing: a scheme change's bottleneck load as
// a piecewise polynomial in the size parameter.
//
// dist.RedistLoadsScaled reports the per-processor redistribution bill
// in exact rationals — integer numerators over one common replica
// denominator. For a frozen plan the denominator is a product of grid
// extents and thus independent of m, so the bottleneck numerator is an
// integer function of m with the same piecewise-polynomial structure as
// the nest counts, and the same forward-difference fit applies. After
// RedistLoadsPoly, pricing a scheme change at any m is O(degree)
// arithmetic — no element enumeration, no numeric RedistLoads call.
package cost

import (
	"fmt"

	"dmcc/internal/dist"
)

// SymbolicLoads is one scheme change's redistribution bill as
// polynomials in m: the bottleneck per-processor numerator and the
// total word count over the m-independent replica denominator Den.
type SymbolicLoads struct {
	MaxNum *PiecewisePoly `json:"maxNum"`
	Words  *PiecewisePoly `json:"words"`
	Den    int64          `json:"den"`
}

// MaxLoadAt is the bottleneck per-processor load at size m, in words —
// the dist.Loads.MaxLoad counterpart, computed as one float division so
// it reproduces the numeric accumulation bit for bit whenever the
// fitting-time validation accepted the fit.
func (sl *SymbolicLoads) MaxLoadAt(m int) (float64, error) {
	n, err := sl.MaxNum.Eval(m)
	if err != nil {
		return 0, err
	}
	return float64(n) / float64(sl.Den), nil
}

// WordsAt is the total redistributed word count at size m.
func (sl *SymbolicLoads) WordsAt(m int) (int64, error) {
	return sl.Words.Eval(m)
}

// RedistLoadsPoly fits a redistribution's bottleneck numerator and
// total words as piecewise polynomials in m. sample must price the
// (possibly multi-array) scheme change at one size via
// dist.RedistLoadsScaled; the replica denominator must not vary with m
// — it cannot, for schemes re-derived from one frozen plan, so a drift
// marks misuse and fails the fit.
func RedistLoadsPoly(sample func(m int) (dist.ScaledLoads, error), minM, period, maxDeg, validate int) (*SymbolicLoads, error) {
	out := &SymbolicLoads{}
	cache := map[int]dist.ScaledLoads{}
	at := func(m int) (dist.ScaledLoads, error) {
		if sl, ok := cache[m]; ok {
			return sl, nil
		}
		sl, err := sample(m)
		if err != nil {
			return dist.ScaledLoads{}, err
		}
		if out.Den == 0 {
			out.Den = sl.Den
		} else if sl.Den != out.Den {
			return dist.ScaledLoads{}, fmt.Errorf("cost: replica denominator varies with m (%d vs %d) — loads are not polynomial", out.Den, sl.Den)
		}
		cache[m] = sl
		return sl, nil
	}
	var err error
	out.MaxNum, err = FitPiecewise(func(m int) (int64, error) {
		sl, err := at(m)
		return sl.MaxNum(), err
	}, minM, period, maxDeg, validate)
	if err != nil {
		return nil, err
	}
	out.Words, err = FitPiecewise(func(m int) (int64, error) {
		sl, err := at(m)
		return sl.Words, err
	}, minM, period, maxDeg, validate)
	if err != nil {
		return nil, err
	}
	return out, nil
}
