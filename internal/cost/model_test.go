package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTable1PrimitiveCosts(t *testing.T) {
	c := Model{Tf: 1, Tc: 2}
	if c.Transfer(10) != 20 || c.Shift(10) != 20 {
		t.Error("O(m) primitives wrong")
	}
	if c.OneToManyMulticast(10, 8) != 60 { // 10*3*2
		t.Errorf("OneToMany = %v", c.OneToManyMulticast(10, 8))
	}
	if c.Reduction(10, 8) != 60 || c.AffineTransform(10, 8) != 60 {
		t.Error("O(m log num) primitives wrong")
	}
	if c.Scatter(10, 8) != 160 || c.Gather(10, 8) != 160 || c.ManyToManyMulticast(10, 8) != 160 {
		t.Error("O(m num) primitives wrong")
	}
	// Degenerate single-processor collectives are free.
	if c.OneToManyMulticast(10, 1) != 0 || c.Reduction(10, 1) != 0 {
		t.Error("single-processor collectives must cost 0")
	}
}

// TestTable2JacobiGrids reproduces Table 2: computation and communication
// time of a Jacobi iteration on the three grids, for m=1024, N=16.
func TestTable2JacobiGrids(t *testing.T) {
	c := Unit()
	m, n := 1024, 16
	rows := c.Table2(m, n)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	logN := float64(Log2Ceil(n))

	// Row 1: N1=1, N2=N: comp (2m^2/N + 3m/N), comm 2m logN.
	r := rows[0]
	wantComp := 2*float64(m*m)/float64(n) + 3*float64(m)/float64(n)
	if math.Abs(r.Comp-wantComp) > 1e-9 {
		t.Errorf("row1 comp = %v, want %v", r.Comp, wantComp)
	}
	if math.Abs(r.Comm-2*float64(m)*logN) > 1e-9 {
		t.Errorf("row1 comm = %v, want %v", r.Comm, 2*float64(m)*logN)
	}

	// Row 2: N1=N, N2=1: comp (2m^2/N + 3m), comm (m + m logN).
	r = rows[1]
	wantComp = 2*float64(m*m)/float64(n) + 3*float64(m)
	if math.Abs(r.Comp-wantComp) > 1e-9 {
		t.Errorf("row2 comp = %v, want %v", r.Comp, wantComp)
	}
	if math.Abs(r.Comm-(float64(m)+float64(m)*logN)) > 1e-9 {
		t.Errorf("row2 comm = %v, want %v", r.Comm, float64(m)+float64(m)*logN)
	}

	// Row 3: sqrt(N) x sqrt(N): comp (2m^2/N + 3m/sqrt(N)).
	r = rows[2]
	rt := 4
	wantComp = 2*float64(m*m)/float64(n) + 3*float64(m)/float64(rt)
	if math.Abs(r.Comp-wantComp) > 1e-9 {
		t.Errorf("row3 comp = %v, want %v", r.Comp, wantComp)
	}

	// The paper's observation: row 1 has the best computation time but
	// worse communication than row 2.
	if !(rows[0].Comp < rows[1].Comp && rows[0].Comp < rows[2].Comp) {
		t.Error("row 1 must have the best computation time")
	}
	if !(rows[0].Comm > rows[1].Comm) {
		t.Error("row 1 must have worse communication than row 2")
	}
}

func TestTable2SkipsNonSquare(t *testing.T) {
	c := Unit()
	rows := c.Table2(64, 6)
	if len(rows) != 2 {
		t.Fatalf("rows = %d for N=6", len(rows))
	}
}

// TestSection4DPBeatsSection3: the DP scheme's per-iteration time
// (2m^2/N + 3m/N)tf + m tc must beat all three Table 2 variants.
func TestSection4DPBeatsSection3(t *testing.T) {
	c := Unit()
	for _, mn := range [][2]int{{256, 4}, {1024, 16}, {4096, 64}} {
		m, n := mn[0], mn[1]
		dp := c.JacobiDPIteration(m, n)
		wantComp := (2*float64(m*m)/float64(n) + 3*float64(m)/float64(n))
		if math.Abs(dp.Comp-wantComp) > 1e-9 {
			t.Errorf("m=%d N=%d: DP comp = %v, want %v", m, n, dp.Comp, wantComp)
		}
		if math.Abs(dp.Comm-float64(m)) > 1e-9 {
			t.Errorf("m=%d N=%d: DP comm = %v, want m=%d", m, n, dp.Comm, m)
		}
		for _, row := range c.Table2(m, n) {
			if dp.Total() >= row.Total() {
				t.Errorf("m=%d N=%d: DP total %v not better than %dx%d total %v",
					m, n, dp.Total(), row.N1, row.N2, row.Total())
			}
		}
	}
}

// TestSection5SORFormulas checks the naive and pipelined SOR iteration
// times and the paper's claim that pipelining wins for large m.
func TestSection5SORFormulas(t *testing.T) {
	c := Unit()
	m, n := 1024, 16
	naive := c.SORNaiveIteration(m, n)
	wantComp := 2*float64(m*m)/float64(n) + 4*float64(m)
	if math.Abs(naive.Comp-wantComp) > 1e-9 {
		t.Errorf("naive comp = %v, want %v", naive.Comp, wantComp)
	}
	logN := float64(Log2Ceil(n))
	if math.Abs(naive.Comm-float64(m)*(logN+1)) > 1e-9 {
		t.Errorf("naive comm = %v, want %v", naive.Comm, float64(m)*(logN+1))
	}
	pip := c.SORPipelinedIteration(m, n)
	wantPipComp := (2*float64(m*m)/float64(n) + 2*float64(m))
	if math.Abs(pip.Comp-wantPipComp) > 1e-9 {
		t.Errorf("pipelined comp = %v, want %v", pip.Comp, wantPipComp)
	}
	if math.Abs(pip.Comm-2*float64(m+n)) > 1e-9 {
		t.Errorf("pipelined comm = %v, want %v", pip.Comm, 2*float64(m+n))
	}
	if pip.Total() >= naive.Total() {
		t.Errorf("pipelined %v must beat naive %v at m=%d", pip.Total(), naive.Total(), m)
	}
}

// Property: pipelined SOR beats naive whenever m >= N >= 2 and tc
// dominates or equals tf (the regime the paper discusses); both formulas
// are monotone in m.
func TestSORPipelinedWinsQuick(t *testing.T) {
	f := func(mRaw, nRaw uint8) bool {
		n := 2 << (uint(nRaw) % 5) // 2..32
		m := n * (int(mRaw)%64 + 2)
		c := Unit()
		return c.SORPipelinedIteration(m, n).Total() < c.SORNaiveIteration(m, n).Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Comp: 3, Comm: 4}
	if b.Total() != 7 {
		t.Fatal("Total wrong")
	}
}

func TestSymbolicFormulasMatchNumeric(t *testing.T) {
	c := Unit()
	for _, mn := range [][2]int{{64, 4}, {256, 16}, {1024, 64}} {
		m, n := mn[0], mn[1]
		if got, want := SymbolicJacobiRow1().Eval(c, m, n), c.JacobiIteration(m, 1, n).Total(); math.Abs(got-want) > 1e-9 {
			t.Errorf("row1 m=%d n=%d: symbolic %v != numeric %v", m, n, got, want)
		}
		if got, want := SymbolicJacobiRow2().Eval(c, m, n), c.JacobiIteration(m, n, 1).Total(); math.Abs(got-want) > 1e-9 {
			t.Errorf("row2 m=%d n=%d: symbolic %v != numeric %v", m, n, got, want)
		}
		if got, want := SymbolicJacobiDP().Eval(c, m, n), c.JacobiDPIteration(m, n).Total(); math.Abs(got-want) > 1e-9 {
			t.Errorf("dp m=%d n=%d: symbolic %v != numeric %v", m, n, got, want)
		}
		if got, want := SymbolicSORNaive().Eval(c, m, n), c.SORNaiveIteration(m, n).Total(); math.Abs(got-want) > 1e-9 {
			t.Errorf("sor naive m=%d n=%d: symbolic %v != numeric %v", m, n, got, want)
		}
		// Pipelined: symbolic omits the 2N tc tail.
		want := c.SORPipelinedIteration(m, n).Total() - 2*float64(n)
		if got := SymbolicSORPipelined().Eval(c, m, n); math.Abs(got-want) > 1e-9 {
			t.Errorf("sor pipelined m=%d n=%d: symbolic %v != numeric-2N %v", m, n, got, want)
		}
	}
}

func TestSymbolicStrings(t *testing.T) {
	cases := map[string]SymbolicFormula{
		"2*m^2/N*tf + 3*m/N*tf + m*tc": SymbolicJacobiDP(),
		"0":                            {},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if s := SymbolicJacobiRow1().String(); !strings.Contains(s, "logN*tc") {
		t.Errorf("row1 string missing log term: %s", s)
	}
	one := SymbolicTerm{Coef: 2, Flop: false}
	if one.String() != "2*tc" {
		t.Errorf("constant term = %q", one.String())
	}
}
