// Optimized exact enumeration: the fallback counting engine for nests the
// analytic calculator cannot cover (triangular bounds, rotated schemes,
// non-unit subscript coefficients). Semantically identical to
// CountNestOptsExact — it walks the same iteration space and applies the
// same owner-computes accounting — but with the per-instance overheads
// compiled away: loop bounds and subscripts become slot-indexed affine
// code (no map lookups), owner sets and first owners are cached per array
// element in flat tables, and ownership tests compare precomputed grid
// coordinates instead of materializing owner lists.
package cost

import (
	"fmt"
	"sort"

	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

// affCode is an affine expression compiled against loop-variable slots,
// with bound size parameters folded into the constant.
type affCode struct {
	c    int
	idx  []int
	coef []int
}

func (a affCode) eval(env []int) int {
	v := a.c
	for k, id := range a.idx {
		v += a.coef[k] * env[id]
	}
	return v
}

func compileAff(a ir.Affine, bind map[string]int, slotOf map[string]int) (affCode, error) {
	out := affCode{c: a.Const}
	for v, c := range a.Coeff {
		if c == 0 {
			continue
		}
		if slot, ok := slotOf[v]; ok {
			out.idx = append(out.idx, slot)
			out.coef = append(out.coef, c)
			continue
		}
		if bv, ok := bind[v]; ok {
			out.c += c * bv
			continue
		}
		return affCode{}, fmt.Errorf("cost: unbound variable %q in %s", v, a)
	}
	return out, nil
}

// fwArray caches the coordinate structure of one referenced array: raw
// per-dimension grid coordinates for every index, plus lazily filled
// per-element owner lists and first owners.
type fwArray struct {
	scheme dist.Scheme
	rank   int
	n0, n1 int
	// raw per-dimension coordinates, 1-based (entry 0 unused); All for
	// replicated dims.
	raw0, raw1 []int
	gd0, gd1   int
	rot        bool
	// template holds the Fixed coordinates; mapped grid dims are
	// overwritten per element in scratch.
	template []int
	scratch  []int
	owners   [][]int32 // per flat element, lazy
	first    []int32   // per flat element, lazy (-1 = unset)
}

func newFWArray(p *ir.Program, name string, s dist.Scheme, g *grid.Grid, bind map[string]int) (*fwArray, error) {
	shape, err := arrayShape(p, name, bind)
	if err != nil {
		return nil, err
	}
	a := &fwArray{scheme: s, rank: len(shape), n0: shape[0], n1: 1}
	if a.rank == 2 {
		a.n1 = shape[1]
	}
	a.raw0 = make([]int, a.n0+1)
	for i := 1; i <= a.n0; i++ {
		a.raw0[i] = s.DimCoordOf(g, 0, i)
	}
	a.gd0 = s.Dims[0].GridDim
	if a.rank == 2 {
		a.raw1 = make([]int, a.n1+1)
		for j := 1; j <= a.n1; j++ {
			a.raw1[j] = s.DimCoordOf(g, 1, j)
		}
		a.gd1 = s.Dims[1].GridDim
	}
	a.rot = a.rank == 2 && s.Rot != dist.NoRotation
	a.template = make([]int, g.Q())
	for gd := range a.template {
		if c, ok := s.Fixed[gd]; ok {
			a.template[gd] = c
		}
	}
	a.scratch = make([]int, g.Q())
	flat := a.n0 * a.n1
	a.owners = make([][]int32, flat)
	a.first = make([]int32, flat)
	for k := range a.first {
		a.first[k] = -1
	}
	return a, nil
}

// coords fills the per-grid-dim owner coordinates of element (i, j) into
// the array's scratch slice and returns it (valid until the next call).
func (a *fwArray) coords(g *grid.Grid, i, j int) []int {
	copy(a.scratch, a.template)
	z0 := a.raw0[i]
	if a.rank == 1 {
		a.scratch[a.gd0] = z0
		return a.scratch
	}
	z1 := a.raw1[j]
	if a.rot {
		// Validate guarantees both dims are partitioned under rotation.
		s := a.scheme
		n1 := g.Extent(a.gd0)
		n2 := g.Extent(a.gd1)
		switch s.Rot {
		case dist.RotateDim2ByDim1:
			z1 = (((s.D1*z0 + s.D2*z1) % n2) + n2) % n2
		case dist.RotateDim1ByDim2:
			z0 = (((s.D1*z0 + s.D2*z1) % n1) + n1) % n1
		}
	}
	a.scratch[a.gd0] = z0
	a.scratch[a.gd1] = z1
	return a.scratch
}

func (a *fwArray) flat(i, j int) int { return (i-1)*a.n1 + (j - 1) }

// ownersAt returns the ascending owner ranks of element (i, j), cached.
func (a *fwArray) ownersAt(w *fastWalker, i, j int) []int32 {
	f := a.flat(i, j)
	if o := a.owners[f]; o != nil {
		return o
	}
	coords := a.coords(w.g, i, j)
	total := 1
	for gd, c := range coords {
		if c == dist.All {
			total *= w.g.Extent(gd)
		}
	}
	out := make([]int32, 0, total)
	// Expand All coordinates lexicographically; row-major ranks make the
	// result ascending, matching Scheme.Owners.
	var rec func(gd, partial int)
	rec = func(gd, partial int) {
		if gd == len(coords) {
			out = append(out, int32(partial))
			return
		}
		ext := w.g.Extent(gd)
		stride := w.strides[gd]
		if coords[gd] == dist.All {
			for c := 0; c < ext; c++ {
				rec(gd+1, partial+c*stride)
			}
			return
		}
		rec(gd+1, partial+coords[gd]*stride)
	}
	rec(0, 0)
	a.owners[f] = out
	a.first[f] = out[0]
	return out
}

// firstAt returns the canonical (lowest-rank) owner of element (i, j).
func (a *fwArray) firstAt(w *fastWalker, i, j int) int32 {
	f := a.flat(i, j)
	if a.first[f] >= 0 {
		return a.first[f]
	}
	coords := a.coords(w.g, i, j)
	r := 0
	for gd, c := range coords {
		if c != dist.All {
			r += c * w.strides[gd]
		}
	}
	a.first[f] = int32(r)
	return int32(r)
}

// isOwner reports whether rank holds element (i, j).
func (a *fwArray) isOwner(w *fastWalker, rank int32, i, j int) bool {
	coords := a.coords(w.g, i, j)
	base := int(rank) * len(coords)
	for gd, c := range coords {
		if c != dist.All && w.rankCoord[base+gd] != int32(c) {
			return false
		}
	}
	return true
}

type fwRef struct {
	arr        *fwArray
	arrIdx     int
	sub0, sub1 affCode
}

func (r fwRef) elem(env []int) (int, int) {
	i := r.sub0.eval(env)
	j := 1
	if r.arr.rank == 2 {
		j = r.sub1.eval(env)
	}
	return i, j
}

type fwStmt struct {
	depth     int
	flops     int64
	reduce    bool
	hasAnchor bool
	lhs       fwRef
	anchor    fwRef
	reads     []fwRef
}

type fwPartial struct {
	root  int32
	procs map[int32]struct{}
}

type fastWalker struct {
	g         *grid.Grid
	strides   []int   // rank stride per grid dim (row-major)
	rankCoord []int32 // rank*Q + gd -> coordinate
	arrays    []*fwArray
	stmts     [][]*fwStmt // by depth
	loops     []struct {
		lo, hi affCode
		step   int
	}
	skipFlops bool

	flops    []int64
	needed   map[uint64]struct{}
	partials map[uint64]*fwPartial
}

// countNestFast runs the optimized exact enumeration. The caller has
// already validated the nest.
func countNestFast(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, opts CountOptions) (ct Counts, err error) {
	// Out-of-range subscripts surface as distribution-function panics in
	// the reference walker; keep that contract.
	w := &fastWalker{
		g:         g,
		skipFlops: opts.SkipFlops,
		flops:     make([]int64, g.Size()),
		needed:    map[uint64]struct{}{},
		partials:  map[uint64]*fwPartial{},
	}
	w.strides = make([]int, g.Q())
	stride := 1
	for gd := g.Q() - 1; gd >= 0; gd-- {
		w.strides[gd] = stride
		stride *= g.Extent(gd)
	}
	w.rankCoord = make([]int32, g.Size()*g.Q())
	for r := 0; r < g.Size(); r++ {
		for gd := 0; gd < g.Q(); gd++ {
			w.rankCoord[r*g.Q()+gd] = int32(g.Coord(r, gd))
		}
	}

	slotOf := map[string]int{}
	for s, l := range nest.Loops {
		slotOf[l.Index] = s
	}
	arrIdx := map[string]int{}
	arrayOf := func(name string) (*fwArray, int, error) {
		if k, ok := arrIdx[name]; ok {
			return w.arrays[k], k, nil
		}
		a, err := newFWArray(p, name, schemes[name], g, bind)
		if err != nil {
			return nil, 0, err
		}
		arrIdx[name] = len(w.arrays)
		w.arrays = append(w.arrays, a)
		return a, len(w.arrays) - 1, nil
	}
	compileRef := func(r ir.Ref) (fwRef, error) {
		a, k, err := arrayOf(r.Array)
		if err != nil {
			return fwRef{}, err
		}
		if len(r.Subs) != a.rank || a.rank > 2 {
			return fwRef{}, fmt.Errorf("cost: reference %s has unsupported rank %d", r, len(r.Subs))
		}
		out := fwRef{arr: a, arrIdx: k}
		if out.sub0, err = compileAff(r.Subs[0], bind, slotOf); err != nil {
			return fwRef{}, err
		}
		if a.rank == 2 {
			if out.sub1, err = compileAff(r.Subs[1], bind, slotOf); err != nil {
				return fwRef{}, err
			}
		}
		return out, nil
	}

	w.stmts = make([][]*fwStmt, len(nest.Loops)+1)
	for _, st := range nest.Stmts {
		fs := &fwStmt{depth: st.Depth, flops: int64(st.Flops), reduce: st.Reduce}
		if fs.lhs, err = compileRef(st.LHS); err != nil {
			return Counts{}, err
		}
		if st.Reduce {
			if anchor := anchorRead(st); anchor != nil {
				fs.hasAnchor = true
				if fs.anchor, err = compileRef(*anchor); err != nil {
					return Counts{}, err
				}
			}
		}
		for _, rd := range st.Reads {
			if st.Reduce && rd.Array == st.LHS.Array {
				continue // the accumulator is handled by the combining tree
			}
			if opts.IncludeRead != nil && !opts.IncludeRead(rd.Array) {
				continue
			}
			ref, err := compileRef(rd)
			if err != nil {
				return Counts{}, err
			}
			fs.reads = append(fs.reads, ref)
		}
		w.stmts[st.Depth] = append(w.stmts[st.Depth], fs)
	}
	w.loops = make([]struct {
		lo, hi affCode
		step   int
	}, len(nest.Loops))
	for s, l := range nest.Loops {
		if w.loops[s].lo, err = compileAff(l.Lo, bind, slotOf); err != nil {
			return Counts{}, err
		}
		if w.loops[s].hi, err = compileAff(l.Hi, bind, slotOf); err != nil {
			return Counts{}, err
		}
		w.loops[s].step = l.Step
	}

	env := make([]int, len(nest.Loops))
	var walk func(level int)
	walk = func(level int) {
		for _, fs := range w.stmts[level] {
			w.exec(fs, env)
		}
		if level == len(nest.Loops) {
			return
		}
		l := w.loops[level]
		lo := l.lo.eval(env)
		hi := l.hi.eval(env)
		if l.step >= 0 {
			for v := lo; v <= hi; v++ {
				env[level] = v
				walk(level + 1)
			}
		} else {
			for v := lo; v >= hi; v-- {
				env[level] = v
				walk(level + 1)
			}
		}
	}
	walk(0)

	return w.bill(opts)
}

func (w *fastWalker) exec(fs *fwStmt, env []int) {
	li, lj := fs.lhs.elem(env)
	var executors []int32
	if fs.reduce && fs.hasAnchor {
		ai, aj := fs.anchor.elem(env)
		executors = fs.anchor.arr.ownersAt(w, ai, aj)
		ek := uint64(fs.lhs.arrIdx)<<48 | uint64(fs.lhs.arr.flat(li, lj))
		pe := w.partials[ek]
		if pe == nil {
			pe = &fwPartial{root: fs.lhs.arr.firstAt(w, li, lj), procs: map[int32]struct{}{}}
			w.partials[ek] = pe
		}
		for _, ex := range executors {
			pe.procs[ex] = struct{}{}
		}
	} else {
		executors = fs.lhs.arr.ownersAt(w, li, lj)
	}
	if !w.skipFlops {
		for _, ex := range executors {
			w.flops[ex] += fs.flops
		}
	}
	for _, rd := range fs.reads {
		ri, rj := rd.elem(env)
		a := rd.arr
		// Key layout: arrIdx in the top 16 bits, flat element index in the
		// middle 32, rank in the low 16.
		key := uint64(rd.arrIdx)<<48 | uint64(a.flat(ri, rj))<<16
		for _, ex := range executors {
			if !a.isOwner(w, ex, ri, rj) {
				w.needed[key|uint64(ex)] = struct{}{}
			}
		}
	}
}

// bill converts the accumulated state into Counts with exactly the
// reference walker's accounting.
func (w *fastWalker) bill(opts CountOptions) (Counts, error) {
	var ct Counts
	in := make([]int64, w.g.Size())
	out := make([]int64, w.g.Size())
	for _, f := range w.flops {
		ct.TotalFlops += f
		if f > ct.MaxProcFlops {
			ct.MaxProcFlops = f
		}
	}
	for key := range w.needed {
		ct.RemoteWords++
		proc := int(key & 0xffff)
		flat := int((key >> 16) & (1<<32 - 1))
		arr := w.arrays[int(key>>48)]
		in[proc]++
		i := flat/arr.n1 + 1
		j := flat%arr.n1 + 1
		out[arr.firstAt(w, i, j)]++
	}
	if opts.SkipReduction {
		w.partials = nil
	}
	for _, pe := range w.partials {
		n := len(pe.procs)
		if n <= 1 {
			if n == 1 {
				if _, onRoot := pe.procs[pe.root]; !onRoot {
					ct.ReduceWords++
					for pr := range pe.procs {
						out[pr]++
					}
					in[pe.root]++
				}
			}
			continue
		}
		if opts.PipelinedReduction {
			// Section 5 ring accounting, mirroring the reference
			// walker's PipelinedReduction branch.
			chain := make([]int32, 0, n)
			for pr := range pe.procs {
				chain = append(chain, pr)
			}
			sort.Slice(chain, func(i, j int) bool { return chain[i] < chain[j] })
			for i := 1; i < n; i++ {
				ct.ReduceWords++
				out[chain[i-1]]++
				in[chain[i]]++
			}
			if last := chain[n-1]; last != pe.root {
				ct.ReduceWords++
				out[last]++
				in[pe.root]++
			}
			continue
		}
		for pr := range pe.procs {
			if pr != pe.root {
				ct.ReduceWords++
				out[pr]++
			}
		}
		in[pe.root] += int64(Log2Ceil(n))
	}
	for _, v := range in {
		if v > ct.MaxProcIn {
			ct.MaxProcIn = v
		}
	}
	for _, v := range out {
		if v > ct.MaxProcOut {
			ct.MaxProcOut = v
		}
	}
	return ct, nil
}
