package cost

import (
	"math/rand"
	"testing"

	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// randDim mirrors the dist package's property-test generator: a valid Dim
// for a dimension of the given size on a grid dimension of extent n.
func randDim(rng *rand.Rand, size, n, gridDim int) dist.Dim {
	if rng.Intn(4) == 0 {
		return dist.Dim{Replicated: true, GridDim: gridDim}
	}
	d := dist.Dim{Sign: 1, Block: 1 + rng.Intn(4), Cyclic: rng.Intn(2) == 0, GridDim: gridDim}
	if rng.Intn(3) == 0 {
		d.Sign = -1
	}
	if d.Sign == 1 {
		d.Disp = -1 + rng.Intn(4)
	} else {
		d.Disp = size + rng.Intn(3)
	}
	if !d.Cyclic {
		zmax := d.Sign*size + d.Disp
		if d.Sign == -1 {
			zmax = d.Disp - 1
		}
		d.Block = ceilDiv(zmax+1, n)
		if d.Block < 1 {
			d.Block = 1
		}
		d.Block += rng.Intn(2)
	}
	return d
}

func randScheme(rng *rand.Rand, g *grid.Grid, shape []int) dist.Scheme {
	dims := rng.Perm(g.Q())[:len(shape)]
	s := dist.Scheme{Fixed: map[int]int{}}
	for k, size := range shape {
		s.Dims = append(s.Dims, randDim(rng, size, g.Extent(dims[k]), dims[k]))
	}
	if len(shape) == 2 && !s.Dims[0].Replicated && !s.Dims[1].Replicated && rng.Intn(5) == 0 {
		s.Rot = dist.Rotation(1 + rng.Intn(2))
		s.D1 = 1 - 2*rng.Intn(2)
		s.D2 = 1 - 2*rng.Intn(2)
	}
	used := map[int]bool{}
	for _, d := range s.Dims {
		used[d.GridDim] = true
	}
	for gd := 0; gd < g.Q(); gd++ {
		if used[gd] {
			continue
		}
		if rng.Intn(2) == 0 {
			s.Fixed[gd] = dist.All
		} else {
			s.Fixed[gd] = rng.Intn(g.Extent(gd))
		}
	}
	return s
}

// randNestProgram builds a random affine nest over a fixed set of arrays:
// 1-3 loops (occasionally triangular, empty, or downward), statements at
// random depths with random affine references (offsets, reversed
// subscripts, diagonals), and occasional reductions — the program class
// the counting engines must agree on.
func randNestProgram(rng *rand.Rand, m int) *ir.Program {
	p := &ir.Program{
		Name: "rand",
		Arrays: map[string]*ir.Array{
			"A": {Name: "A", Extents: []ir.Affine{ir.V("m"), ir.V("m")}},
			"C": {Name: "C", Extents: []ir.Affine{ir.V("m"), ir.V("m")}},
			"B": {Name: "B", Extents: []ir.Affine{ir.V("m")}},
			"X": {Name: "X", Extents: []ir.Affine{ir.V("m")}},
		},
		Params: []string{"m"},
	}
	depth := 1 + rng.Intn(3)
	vars := []string{"i", "j", "k"}[:depth]
	nest := &ir.Nest{Label: "R1"}
	// Conservative per-level value bounds for in-range subscript offsets.
	loMin := make([]int, depth)
	hiMax := make([]int, depth)
	for l := 0; l < depth; l++ {
		lo := 1 + rng.Intn(2)
		hi := m - rng.Intn(2)
		loA, hiA := ir.Const(lo), ir.Const(hi)
		loMin[l], hiMax[l] = lo, hi
		if l > 0 && rng.Intn(6) == 0 {
			// Triangular: lower bound follows an outer index.
			loA = ir.V(vars[rng.Intn(l)])
			loMin[l] = 1
		} else if rng.Intn(12) == 0 {
			loA, hiA = ir.Const(3), ir.Const(2) // empty range
			loMin[l], hiMax[l] = 3, 2
		}
		step := 1
		if rng.Intn(4) == 0 {
			step = -1
			loA, hiA = hiA, loA
		}
		nest.Loops = append(nest.Loops, ir.Loop{Index: vars[l], Lo: loA, Hi: hiA, Step: step})
	}
	randSub := func(scope int) ir.Affine {
		if rng.Intn(4) == 0 {
			return ir.Const(1 + rng.Intn(m))
		}
		l := rng.Intn(scope)
		if rng.Intn(4) == 0 {
			// Reversed: c - v with c keeping values in [1, m].
			c := hiMax[l] + 1
			if c+loMin[l] <= m+loMin[l] && rng.Intn(2) == 0 && c+1 <= m+loMin[l] {
				c++
			}
			return ir.NewAffine(c, ir.Term{Var: vars[l], Coeff: -1})
		}
		cLo, cHi := 1-loMin[l], m-hiMax[l]
		c := 0
		switch {
		case cLo <= -1 && rng.Intn(3) == 0:
			c = -1
		case cHi >= 1 && rng.Intn(3) == 0:
			c = 1
		}
		return ir.NewAffine(c, ir.Term{Var: vars[l], Coeff: 1})
	}
	names := []string{"A", "C", "B", "X"}
	randRef := func(scope int) ir.Ref {
		name := names[rng.Intn(len(names))]
		arr := p.Arrays[name]
		if arr.Rank() == 1 {
			return ir.R(name, randSub(scope))
		}
		if rng.Intn(4) == 0 && scope > 0 {
			// Diagonal: both subscripts driven by the same variable.
			return ir.R(name, randSub(scope), randSub(scope))
		}
		return ir.R(name, randSub(scope), randSub(scope))
	}
	diagRef := func(scope int) ir.Ref {
		l := rng.Intn(scope)
		v := ir.NewAffine(0, ir.Term{Var: vars[l], Coeff: 1})
		w := v
		if hiMax[l] < m {
			w = ir.NewAffine(1, ir.Term{Var: vars[l], Coeff: 1})
		}
		return ir.R("A", v, w)
	}
	nStmts := 1 + rng.Intn(2)
	for si := 0; si < nStmts; si++ {
		d := 1 + rng.Intn(depth)
		st := &ir.Stmt{Line: si + 1, Depth: d, Flops: 1 + rng.Intn(3)}
		st.LHS = randRef(d)
		nr := 1 + rng.Intn(2)
		for r := 0; r < nr; r++ {
			if rng.Intn(5) == 0 && d > 0 {
				st.Reads = append(st.Reads, diagRef(d))
			} else {
				st.Reads = append(st.Reads, randRef(d))
			}
		}
		if rng.Intn(3) == 0 {
			st.Reduce = true
			// Reductions read their accumulator.
			st.Reads = append(st.Reads, st.LHS)
		}
		nest.Stmts = append(nest.Stmts, st)
	}
	p.Nests = []*ir.Nest{nest}
	return p
}

func countsEqual(t *testing.T, label string, got, want Counts) {
	t.Helper()
	if got != want {
		t.Errorf("%s: got %+v, want %+v", label, got, want)
	}
}

// TestCountNestMatchesOracle is the randomized property test of the
// tentpole: the analytic closed forms and the optimized walker must
// reproduce the reference enumeration word for word across random affine
// nests, schemes, grid shapes, both loop-step signs, reductions,
// diagonals, filters and skip options.
func TestCountNestMatchesOracle(t *testing.T) {
	grids := []*grid.Grid{
		grid.New(4, 1), grid.New(1, 4), grid.New(2, 2), grid.New(2, 3), grid.New(6, 1),
	}
	rng := rand.New(rand.NewSource(42))
	analyticHits := 0
	const trials = 250
	for trial := 0; trial < trials; trial++ {
		g := grids[trial%len(grids)]
		m := 8 + rng.Intn(4)
		bind := map[string]int{"m": m}
		p := randNestProgram(rng, m)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		nest := p.Nests[0]
		schemes := map[string]dist.Scheme{}
		for name, arr := range p.Arrays {
			shape := make([]int, arr.Rank())
			for k := range shape {
				shape[k] = m
			}
			schemes[name] = randScheme(rng, g, shape)
			if err := schemes[name].Validate(g, shape); err != nil {
				t.Fatalf("trial %d: invalid scheme for %s: %v", trial, name, err)
			}
		}
		var opts CountOptions
		switch trial % 4 {
		case 1:
			excl := []string{"A", "C", "B", "X"}[rng.Intn(4)]
			opts.IncludeRead = func(a string) bool { return a != excl }
		case 2:
			opts.SkipReduction = true
			opts.SkipFlops = true
		case 3:
			opts.SkipReduction = true
		}

		want, err := CountNestOptsExact(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		gotFast, err := countNestFast(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: fast walker: %v", trial, err)
		}
		countsEqual(t, "fast walker", gotFast, want)
		gotAn, ok, err := countNestAnalytic(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: analytic: %v", trial, err)
		}
		if ok {
			analyticHits++
			countsEqual(t, "analytic", gotAn, want)
		}
		got, err := CountNestOpts(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: dispatcher: %v", trial, err)
		}
		countsEqual(t, "dispatcher", got, want)
		if t.Failed() {
			t.Fatalf("trial %d: m=%d grid=%s nest=%+v", trial, m, g, nest)
		}
	}
	// The generator produces mostly eligible nests; if the analytic path
	// stops engaging, the closed forms silently stop being tested (and
	// the compiler silently loses its speedup).
	if analyticHits < trials/4 {
		t.Fatalf("analytic path engaged on only %d/%d trials", analyticHits, trials)
	}
}

// TestCountNestAnalyticJacobi pins the analytic engine to the paper's
// Jacobi nests under both Table 2 schemes: the closed forms must engage
// (ok=true) and agree with the oracle.
func TestCountNestAnalyticJacobi(t *testing.T) {
	p := ir.Jacobi()
	m, n := 16, 4
	bind := map[string]int{"m": m}
	for _, tc := range []struct {
		name    string
		g       *grid.Grid
		schemes map[string]dist.Scheme
	}{
		{"rows", grid.New(n, 1), jacobiRowSchemes(m, n)},
		{"cols", grid.New(1, n), jacobiColSchemes(m, n)},
	} {
		g := tc.g
		for _, nest := range p.Nests {
			want, err := CountNestOptsExact(p, nest, tc.schemes, g, bind, CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := countNestAnalytic(p, nest, tc.schemes, g, bind, CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s/%s: analytic engine declined an eligible nest", tc.name, nest.Label)
			}
			countsEqual(t, tc.name+"/"+nest.Label, got, want)
		}
	}
}

// randTriangularProgram builds a random nest whose inner loops carry
// bounds dependent on the outermost (root) variable — gauss's i = k+1..m
// and back-substitution's i = j-1..1 — mixed with constant-bounded
// slots, diagonals, reversed subscripts and reductions. The class the
// triangular extension of the analytic engine must price exactly.
func randTriangularProgram(rng *rand.Rand, m, depth int) *ir.Program {
	p := &ir.Program{
		Name: "tri",
		Arrays: map[string]*ir.Array{
			"A": {Name: "A", Extents: []ir.Affine{ir.V("m"), ir.V("m")}},
			"C": {Name: "C", Extents: []ir.Affine{ir.V("m"), ir.V("m")}},
			"B": {Name: "B", Extents: []ir.Affine{ir.V("m")}},
			"X": {Name: "X", Extents: []ir.Affine{ir.V("m")}},
		},
		Params: []string{"m"},
	}
	vars := []string{"k", "i", "j"}[:depth]
	nest := &ir.Nest{Label: "T1"}
	loMin := make([]int, depth)
	hiMax := make([]int, depth)
	lo0 := 1 + rng.Intn(2)
	hi0 := m - rng.Intn(2)
	loMin[0], hiMax[0] = lo0, hi0
	rootLoop := ir.Loop{Index: vars[0], Lo: ir.Const(lo0), Hi: ir.Const(hi0), Step: 1}
	if rng.Intn(3) == 0 {
		rootLoop = ir.Loop{Index: vars[0], Lo: ir.Const(hi0), Hi: ir.Const(lo0), Step: -1}
	}
	nest.Loops = append(nest.Loops, rootLoop)
	for l := 1; l < depth; l++ {
		if rng.Intn(3) == 0 {
			// Constant-bounded slot alongside the triangular ones.
			lo := 1 + rng.Intn(2)
			hi := m - rng.Intn(2)
			loMin[l], hiMax[l] = lo, hi
			nest.Loops = append(nest.Loops, ir.Loop{Index: vars[l], Lo: ir.Const(lo), Hi: ir.Const(hi), Step: 1})
			continue
		}
		var loA, hiA ir.Affine
		if rng.Intn(2) == 0 {
			// Lower bound follows the root: v = root+c .. hi.
			c := rng.Intn(3)
			hi := m - rng.Intn(2)
			loA = ir.NewAffine(c, ir.Term{Var: vars[0], Coeff: 1})
			hiA = ir.Const(hi)
			loMin[l], hiMax[l] = lo0+c, hi
		} else {
			// Upper bound follows the root: v = lo .. root+c.
			c := -rng.Intn(2)
			lo := 1 + rng.Intn(2)
			loA = ir.NewAffine(c, ir.Term{Var: vars[0], Coeff: 1})
			hiA = ir.Const(lo)
			loA, hiA = hiA, loA
			loMin[l], hiMax[l] = lo, hi0+c
		}
		step := 1
		if rng.Intn(3) == 0 {
			step = -1
			loA, hiA = hiA, loA
		}
		nest.Loops = append(nest.Loops, ir.Loop{Index: vars[l], Lo: loA, Hi: hiA, Step: step})
	}
	randSub := func(scope int) ir.Affine {
		if rng.Intn(5) == 0 {
			return ir.Const(1 + rng.Intn(m))
		}
		l := rng.Intn(scope)
		if loMin[l] > hiMax[l] {
			return ir.Const(1 + rng.Intn(m))
		}
		if rng.Intn(5) == 0 {
			// Reversed: c - v staying in [1, m] over the hull.
			return ir.NewAffine(hiMax[l]+1, ir.Term{Var: vars[l], Coeff: -1})
		}
		cLo, cHi := 1-loMin[l], m-hiMax[l]
		c := 0
		switch {
		case cLo <= -1 && rng.Intn(3) == 0:
			c = -1
		case cHi >= 1 && rng.Intn(3) == 0:
			c = 1
		}
		return ir.NewAffine(c, ir.Term{Var: vars[l], Coeff: 1})
	}
	names := []string{"A", "C", "B", "X"}
	randRef := func(scope int) ir.Ref {
		name := names[rng.Intn(len(names))]
		if p.Arrays[name].Rank() == 1 {
			return ir.R(name, randSub(scope))
		}
		return ir.R(name, randSub(scope), randSub(scope))
	}
	nStmts := 1 + rng.Intn(2)
	for si := 0; si < nStmts; si++ {
		d := 1 + rng.Intn(depth)
		st := &ir.Stmt{Line: si + 1, Depth: d, Flops: 1 + rng.Intn(3)}
		st.LHS = randRef(d)
		nr := 1 + rng.Intn(2)
		for r := 0; r < nr; r++ {
			st.Reads = append(st.Reads, randRef(d))
		}
		if rng.Intn(3) == 0 {
			st.Reduce = true
			st.Reads = append(st.Reads, st.LHS)
		}
		nest.Stmts = append(nest.Stmts, st)
	}
	p.Nests = []*ir.Nest{nest}
	return p
}

// TestCountNestTriangularMatchesOracle is the randomized property test of
// the triangular extension: dependent-bound nests under random schemes
// must price word-for-word like the reference enumeration, through both
// production engines, with and without the Section 5 ring pricing.
func TestCountNestTriangularMatchesOracle(t *testing.T) {
	grids := []*grid.Grid{
		grid.New(4, 1), grid.New(1, 4), grid.New(2, 2), grid.New(2, 3), grid.New(6, 1),
	}
	rng := rand.New(rand.NewSource(1993))
	analyticHits := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		g := grids[trial%len(grids)]
		m := 8 + rng.Intn(5)
		bind := map[string]int{"m": m}
		p := randTriangularProgram(rng, m, 2+rng.Intn(2))
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		nest := p.Nests[0]
		schemes := map[string]dist.Scheme{}
		for name, arr := range p.Arrays {
			shape := make([]int, arr.Rank())
			for k := range shape {
				shape[k] = m
			}
			schemes[name] = randScheme(rng, g, shape)
			if err := schemes[name].Validate(g, shape); err != nil {
				t.Fatalf("trial %d: invalid scheme for %s: %v", trial, name, err)
			}
		}
		var opts CountOptions
		switch trial % 5 {
		case 1:
			excl := []string{"A", "C", "B", "X"}[rng.Intn(4)]
			opts.IncludeRead = func(a string) bool { return a != excl }
		case 2:
			opts.SkipReduction = true
			opts.SkipFlops = true
		case 3:
			opts.PipelinedReduction = true
		}

		want, err := CountNestOptsExact(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		gotFast, err := countNestFast(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: fast walker: %v", trial, err)
		}
		countsEqual(t, "fast walker", gotFast, want)
		gotAn, ok, err := countNestAnalytic(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: analytic: %v", trial, err)
		}
		if ok {
			analyticHits++
			countsEqual(t, "analytic", gotAn, want)
		}
		if t.Failed() {
			t.Fatalf("trial %d: m=%d grid=%s nest=%+v", trial, m, g, nest)
		}
	}
	if analyticHits < trials/4 {
		t.Fatalf("analytic path engaged on only %d/%d trials", analyticHits, trials)
	}
}

// TestCountNestTriangularLargeM drives the closed-form windowed-sum path:
// at m well past the direct-summation cap the per-residue polynomial
// interpolation answers, and must still match the enumeration exactly.
func TestCountNestTriangularLargeM(t *testing.T) {
	grids := []*grid.Grid{grid.New(4, 1), grid.New(2, 2), grid.New(6, 1)}
	rng := rand.New(rand.NewSource(7))
	analyticHits := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		g := grids[trial%len(grids)]
		m := 150 + rng.Intn(120)
		bind := map[string]int{"m": m}
		p := randTriangularProgram(rng, m, 2)
		nest := p.Nests[0]
		schemes := map[string]dist.Scheme{}
		for name, arr := range p.Arrays {
			shape := make([]int, arr.Rank())
			for k := range shape {
				shape[k] = m
			}
			schemes[name] = randScheme(rng, g, shape)
		}
		opts := CountOptions{PipelinedReduction: trial%2 == 0}
		want, err := CountNestOptsExact(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		gotAn, ok, err := countNestAnalytic(p, nest, schemes, g, bind, opts)
		if err != nil {
			t.Fatalf("trial %d: analytic: %v", trial, err)
		}
		if ok {
			analyticHits++
			countsEqual(t, "analytic", gotAn, want)
		}
		if t.Failed() {
			t.Fatalf("trial %d: m=%d grid=%s nest=%+v", trial, m, g, nest)
		}
	}
	if analyticHits < trials/3 {
		t.Fatalf("analytic path engaged on only %d/%d trials", analyticHits, trials)
	}
}

// gaussSchemes is the Section 6 layout family: cyclic rows for the
// elimination arrays on a linear grid.
func gaussSchemes(m, n int) map[string]dist.Scheme {
	return map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.Cyclic(0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"L": dist.Scheme2D(dist.Cyclic(0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"V": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
	}
}

// gaussSchemes2D maps A/L over a 2-D grid (cyclic rows x block columns)
// with the vectors replicated along the column dimension.
func gaussSchemes2D(m, n1, n2 int) map[string]dist.Scheme {
	return map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.Cyclic(0), dist.BlockContiguous(m, n2, 1), nil),
		"L": dist.Scheme2D(dist.Cyclic(0), dist.BlockContiguous(m, n2, 1), nil),
		"V": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: dist.All}),
		"B": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: dist.All}),
	}
}

// TestCountNestAnalyticGauss pins the triangular engine to the paper's
// flagship kernel: every gauss nest — the k+1..m elimination updates with
// their below-diagonal L(i,k) band and the j-1..1 back-substitution with
// its anchored reduction — must engage the closed forms (ok=true) and
// agree with the oracle under both reduction pricings.
func TestCountNestAnalyticGauss(t *testing.T) {
	p := ir.Gauss()
	m := 19
	bind := map[string]int{"m": m}
	for _, tc := range []struct {
		name    string
		g       *grid.Grid
		schemes map[string]dist.Scheme
	}{
		{"cyclic-rows", grid.New(4, 1), gaussSchemes(m, 4)},
		{"cyclic-2d", grid.New(2, 2), gaussSchemes2D(m, 2, 2)},
	} {
		for _, pipelined := range []bool{false, true} {
			opts := CountOptions{PipelinedReduction: pipelined}
			for _, nest := range p.Nests {
				want, err := CountNestOptsExact(p, nest, tc.schemes, tc.g, bind, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, ok, err := countNestAnalytic(p, nest, tc.schemes, tc.g, bind, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("%s/%s pipelined=%v: analytic engine declined a triangular nest", tc.name, nest.Label, pipelined)
				}
				countsEqual(t, tc.name+"/"+nest.Label, got, want)
			}
		}
	}
}
