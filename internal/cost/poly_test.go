package cost

import (
	"testing"

	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

func TestFitPiecewiseExactPolynomial(t *testing.T) {
	f := func(m int) (int64, error) {
		v := int64(m)
		return 3*v*v - 7*v + 2, nil
	}
	pp, err := FitPiecewise(f, 4, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", pp.Degree())
	}
	for _, m := range []int{4, 17, 100, 4096} {
		want, _ := f(m)
		got, err := pp.Eval(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Eval(%d) = %d, want %d", m, got, want)
		}
	}
	if s := pp.String(); s != "3*m^2 - 7*m + 2" {
		t.Fatalf("String() = %q", s)
	}
}

func TestFitPiecewiseDetectsNonPolynomial(t *testing.T) {
	f := func(m int) (int64, error) {
		v := int64(1)
		for i := 0; i < m; i++ {
			v *= 2
		}
		return v, nil // 2^m: no polynomial of degree <= 4
	}
	if _, err := FitPiecewise(f, 2, 1, 4, 2); err == nil {
		t.Fatal("expected a non-polynomial error for 2^m")
	}
}

func TestFitPiecewiseResidueClasses(t *testing.T) {
	// floor(m/4)*m is polynomial on each residue class of m mod 4 but not
	// globally.
	f := func(m int) (int64, error) { return int64(m/4) * int64(m), nil }
	pp, err := FitPiecewise(f, 8, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for m := 8; m < 80; m++ {
		want, _ := f(m)
		got, err := pp.Eval(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Eval(%d) = %d, want %d", m, got, want)
		}
	}
}

// TestFitCountsJacobi is the tentpole's symbolic claim end to end: the
// per-nest Counts of Jacobi under the Table 2 row scheme, as a function
// of m for fixed N, fit degree-2 piecewise polynomials that extrapolate
// exactly to sizes never counted.
func TestFitCountsJacobi(t *testing.T) {
	p := ir.Jacobi()
	n := 4
	g := grid.New(n, 1)
	for _, nestIdx := range []int{0, 1} {
		nest := p.Nests[nestIdx]
		f := func(m int) (Counts, error) {
			return CountNestOpts(p, nest, jacobiRowSchemes(m, n), g, map[string]int{"m": m}, CountOptions{})
		}
		sc, err := FitCounts(f, 3*n, n, 2, 2)
		if err != nil {
			t.Fatalf("nest %d: %v", nestIdx, err)
		}
		for _, m := range []int{16, 20, 33, 50, 127} {
			want, err := f(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.EvalAt(m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("nest %d m=%d: symbolic %+v, counted %+v", nestIdx, m, got, want)
			}
		}
	}
}
