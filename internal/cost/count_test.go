package cost

import (
	"testing"

	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

// jacobiRowSchemes is the Section 4 / Table 3 distribution on an N-proc
// linear array: A by row blocks, V/B/X by matching blocks.
func jacobiRowSchemes(m, n int) map[string]dist.Scheme {
	return map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.BlockContiguous(m, n, 0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"V": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
	}
}

// jacobiColSchemes is the Section 3 scheme with N1=1, N2=N: A by column
// blocks, X/B aligned with columns, V replicated.
func jacobiColSchemes(m, n int) map[string]dist.Scheme {
	return map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 0}, dist.BlockContiguous(m, n, 1), nil),
		"V": dist.Scheme1D(dist.Replicated(1), map[int]int{0: 0}),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 1), map[int]int{0: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 1), map[int]int{0: 0}),
	}
}

func TestCountJacobiL1RowDistribution(t *testing.T) {
	m, n := 16, 4
	p := ir.Jacobi()
	g := grid.New(n, 1)
	bind := map[string]int{"m": m}
	ct, err := CountNest(p, p.Nests[0], jacobiRowSchemes(m, n), g, bind)
	if err != nil {
		t.Fatal(err)
	}
	// Row distribution: A(i,j) local to owner of V(i); X(j) must reach
	// all other processors: m elements x (n-1) destinations.
	if ct.ReduceWords != 0 {
		t.Errorf("row-distributed L1 must have no reduction traffic, got %d", ct.ReduceWords)
	}
	wantRemote := int64(m * (n - 1))
	if ct.RemoteWords != wantRemote {
		t.Errorf("RemoteWords = %d, want %d", ct.RemoteWords, wantRemote)
	}
	// 2 flops per inner iteration, m^2/n per processor (perfect balance).
	if ct.TotalFlops != int64(2*m*m) {
		t.Errorf("TotalFlops = %d, want %d", ct.TotalFlops, 2*m*m)
	}
	if ct.MaxProcFlops != int64(2*m*m/n) {
		t.Errorf("MaxProcFlops = %d, want %d", ct.MaxProcFlops, 2*m*m/n)
	}
}

func TestCountJacobiL2RowDistributionIsLocal(t *testing.T) {
	m, n := 16, 4
	p := ir.Jacobi()
	g := grid.New(n, 1)
	ct, err := CountNest(p, p.Nests[1], jacobiRowSchemes(m, n), g, map[string]int{"m": m})
	if err != nil {
		t.Fatal(err)
	}
	// Under row distribution X(i), B(i), V(i), A(i,i) are all local.
	if ct.Words() != 0 {
		t.Errorf("L2 must be communication-free under row distribution, moved %d", ct.Words())
	}
	if ct.MaxProcFlops != int64(3*m/n) {
		t.Errorf("MaxProcFlops = %d, want %d", ct.MaxProcFlops, 3*m/n)
	}
}

func TestCountJacobiL1ColumnDistributionHasReduction(t *testing.T) {
	m, n := 16, 4
	p := ir.Jacobi()
	g := grid.New(1, n)
	ct, err := CountNest(p, p.Nests[0], jacobiColSchemes(m, n), g, map[string]int{"m": m})
	if err != nil {
		t.Fatal(err)
	}
	// Column distribution: partial sums for every V(i) live on all n
	// processors; V is replicated so the reduction result must reach the
	// root of each element's combining tree: (n-1) partial words per
	// element at least.
	if ct.ReduceWords < int64(m*(n-1)) {
		t.Errorf("ReduceWords = %d, want >= %d", ct.ReduceWords, m*(n-1))
	}
	// X(j) and A(i,j) are aligned: no remote reads for line 5. Line 8
	// reads V(i) which is replicated: owners include everyone, so local.
	if ct.RemoteWords != 0 {
		t.Errorf("RemoteWords = %d, want 0", ct.RemoteWords)
	}
}

func TestCountRelativeOrderMatchesClosedForm(t *testing.T) {
	// The counted cost of the row scheme must beat the column scheme for
	// a full Jacobi iteration (L1+L2), matching Section 4's conclusion.
	m, n := 32, 4
	p := ir.Jacobi()
	bind := map[string]int{"m": m}
	c := Unit()

	gRow := grid.New(n, 1)
	rowTotal := 0.0
	for _, nest := range p.Nests {
		ct, err := CountNest(p, nest, jacobiRowSchemes(m, n), gRow, bind)
		if err != nil {
			t.Fatal(err)
		}
		rowTotal += ct.Time(c).Total()
	}
	gCol := grid.New(1, n)
	colTotal := 0.0
	for _, nest := range p.Nests {
		ct, err := CountNest(p, nest, jacobiColSchemes(m, n), gCol, bind)
		if err != nil {
			t.Fatal(err)
		}
		colTotal += ct.Time(c).Total()
	}
	if rowTotal >= colTotal {
		t.Errorf("row scheme %v must beat column scheme %v", rowTotal, colTotal)
	}
}

func TestCountGaussCyclicVsBlockLoadBalance(t *testing.T) {
	// Section 6 chooses a cyclic distribution because the triangular
	// iteration space starves leading processors under block
	// distribution: cyclic must have a lower max-processor flop count.
	m, n := 24, 4
	p := ir.Gauss()
	bind := map[string]int{"m": m}
	// 2-D arrays need both dims mapped to distinct grid dims, so the ring
	// is modelled as an (n,1) grid.
	g := grid.New(n, 1)
	cyclic := map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.Cyclic(0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"L": dist.Scheme2D(dist.Cyclic(0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"V": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.Cyclic(0), map[int]int{1: 0}),
	}
	block := map[string]dist.Scheme{
		"A": dist.Scheme2D(dist.BlockContiguous(m, n, 0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"L": dist.Scheme2D(dist.BlockContiguous(m, n, 0), dist.Dim{Sign: 1, Disp: -1, Block: m, GridDim: 1}, nil),
		"V": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"B": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
		"X": dist.Scheme1D(dist.BlockContiguous(m, n, 0), map[int]int{1: 0}),
	}
	g1 := p.Nests[0]
	ctCyc, err := CountNest(p, g1, cyclic, g, bind)
	if err != nil {
		t.Fatal(err)
	}
	ctBlk, err := CountNest(p, g1, block, g, bind)
	if err != nil {
		t.Fatal(err)
	}
	if ctCyc.TotalFlops != ctBlk.TotalFlops {
		t.Fatalf("total flops differ: %d vs %d", ctCyc.TotalFlops, ctBlk.TotalFlops)
	}
	if ctCyc.MaxProcFlops >= ctBlk.MaxProcFlops {
		t.Errorf("cyclic max flops %d must beat block %d", ctCyc.MaxProcFlops, ctBlk.MaxProcFlops)
	}
}

func TestCountErrors(t *testing.T) {
	p := ir.Jacobi()
	g := grid.New(4, 1)
	bind := map[string]int{"m": 8}
	// Missing scheme.
	sch := jacobiRowSchemes(8, 4)
	delete(sch, "X")
	if _, err := CountNest(p, p.Nests[0], sch, g, bind); err == nil {
		t.Fatal("missing scheme not caught")
	}
	// Invalid scheme (wrong grid).
	if _, err := CountNest(p, p.Nests[0], jacobiColSchemes(8, 4), g, bind); err == nil {
		t.Fatal("invalid scheme not caught")
	}
	// Unbound parameter.
	if _, err := CountNest(p, p.Nests[0], jacobiRowSchemes(8, 4), g, map[string]int{}); err == nil {
		t.Fatal("unbound parameter not caught")
	}
}

func TestCountsTime(t *testing.T) {
	ct := Counts{MaxProcFlops: 100, MaxProcIn: 30, MaxProcOut: 50}
	b := ct.Time(Model{Tf: 2, Tc: 3})
	if b.Comp != 200 || b.Comm != 150 {
		t.Fatalf("Time = %+v", b)
	}
	if ct.Words() != 0 {
		t.Fatal("Words nonzero")
	}
	ct2 := Counts{RemoteWords: 5, ReduceWords: 7}
	if ct2.Words() != 12 {
		t.Fatal("Words wrong")
	}
}

// TestPipelinedReductionPricing: under the Section 5 ring pricing the
// same column-distributed Jacobi reduction costs at most one extra word
// per element (the closing hop) but spreads the receives along the
// chain, so the root's inbound load — the term that dominated the tree
// pricing — drops from log2(n) to 1 per element. The compiled walker
// must agree with the reference walker bit for bit; the analytic engine
// declines pipelined pricing, so CountNestOpts exercises the fastwalk
// fallback here.
func TestPipelinedReductionPricing(t *testing.T) {
	m, n := 16, 4
	p := ir.Jacobi()
	g := grid.New(1, n)
	bind := map[string]int{"m": m}
	schemes := jacobiColSchemes(m, n)

	tree, err := CountNestOpts(p, p.Nests[0], schemes, g, bind, CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := CountOptions{PipelinedReduction: true}
	pipe, err := CountNestOpts(p, p.Nests[0], schemes, g, bind, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := CountNestOptsExact(p, p.Nests[0], schemes, g, bind, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pipe != exact {
		t.Errorf("fastwalk pipelined counts differ from reference:\n got %+v\nwant %+v", pipe, exact)
	}
	if pipe.MaxProcIn >= tree.MaxProcIn {
		t.Errorf("pipelined MaxProcIn = %d, want < tree's %d", pipe.MaxProcIn, tree.MaxProcIn)
	}
	// The chain moves each partial exactly once plus at most one closing
	// hop per element; it can never move fewer words than the tree.
	if pipe.ReduceWords < tree.ReduceWords || pipe.ReduceWords > tree.ReduceWords+int64(m) {
		t.Errorf("pipelined ReduceWords = %d, want in [%d, %d]",
			pipe.ReduceWords, tree.ReduceWords, tree.ReduceWords+int64(m))
	}
	if pipe.TotalFlops != tree.TotalFlops || pipe.RemoteWords != tree.RemoteWords {
		t.Errorf("pipelined pricing changed non-reduction terms: %+v vs %+v", pipe, tree)
	}
}
