// Piecewise polynomial counts: the symbolic side of the analytic nest
// counter. For a fixed program, plan and grid, the exact communication
// and flop counts of an affine nest are piecewise polynomial in the size
// parameter m — the pieces are residue classes of m modulo the block
// structure's period. Poly stores one piece in Newton forward-difference
// form (exact int64 arithmetic, no floating point); PiecewisePoly stitches
// the residue classes; FitCounts fits all six Counts fields at once by
// sampling a counting function and validating the fit on held-out points.
package cost

import (
	"fmt"
	"math/big"
	"strings"
)

// Poly is a polynomial along the arithmetic progression m = M0 + t*Step,
// stored as Newton forward differences: value(m) = sum_k Diffs[k]*C(t,k)
// with t = (m-M0)/Step. All arithmetic is exact int64.
type Poly struct {
	M0, Step int
	Diffs    []int64
}

// Degree is the polynomial degree in m (index of the last nonzero
// difference).
func (p Poly) Degree() int {
	for k := len(p.Diffs) - 1; k >= 0; k-- {
		if p.Diffs[k] != 0 {
			return k
		}
	}
	return 0
}

// Eval evaluates the polynomial at m, which must lie on the progression.
func (p Poly) Eval(m int) int64 {
	t := int64(m-p.M0) / int64(p.Step)
	var total int64
	binom := int64(1) // C(t, k), built incrementally (exact: the running
	// product of j+1 consecutive integers is divisible by (j+1)!).
	for k, d := range p.Diffs {
		if k > 0 {
			binom = binom * (t - int64(k-1)) / int64(k)
		}
		total += d * binom
	}
	return total
}

// String renders the polynomial in the monomial basis over m with exact
// rational coefficients, e.g. "(m^2 + 6*m - 16)/4".
func (p Poly) String() string {
	// Expand sum_k Diffs[k] * C((m-M0)/Step, k) in powers of m.
	coeffs := []*big.Rat{big.NewRat(0, 1)} // coeffs[i] multiplies m^i
	// tPoly = (m - M0)/Step as a degree-1 polynomial in m.
	tConst := big.NewRat(int64(-p.M0), int64(p.Step))
	tLin := big.NewRat(1, int64(p.Step))
	// falling = C(t, k) * k! = t(t-1)...(t-k+1) as a polynomial in m.
	falling := []*big.Rat{big.NewRat(1, 1)}
	fact := big.NewRat(1, 1)
	for k, d := range p.Diffs {
		if k > 0 {
			// falling *= (t - (k-1))
			shift := new(big.Rat).Sub(tConst, big.NewRat(int64(k-1), 1))
			next := make([]*big.Rat, len(falling)+1)
			for i := range next {
				next[i] = big.NewRat(0, 1)
			}
			for i, c := range falling {
				next[i].Add(next[i], new(big.Rat).Mul(c, shift))
				next[i+1].Add(next[i+1], new(big.Rat).Mul(c, tLin))
			}
			falling = next
			fact.Mul(fact, big.NewRat(int64(k), 1))
		}
		if d == 0 {
			continue
		}
		scale := new(big.Rat).Quo(big.NewRat(d, 1), fact)
		for i, c := range falling {
			for len(coeffs) <= i {
				coeffs = append(coeffs, big.NewRat(0, 1))
			}
			coeffs[i].Add(coeffs[i], new(big.Rat).Mul(c, scale))
		}
	}
	// Common denominator for a compact "(...)/(den)" rendering.
	den := big.NewInt(1)
	for _, c := range coeffs {
		den.Mul(den, new(big.Int).Div(c.Denom(), new(big.Int).GCD(nil, nil, den, c.Denom())))
	}
	var terms []string
	for i := len(coeffs) - 1; i >= 0; i-- {
		n := new(big.Int).Mul(coeffs[i].Num(), new(big.Int).Div(den, coeffs[i].Denom()))
		if n.Sign() == 0 {
			continue
		}
		mono := ""
		switch i {
		case 0:
		case 1:
			mono = "m"
		default:
			mono = fmt.Sprintf("m^%d", i)
		}
		s := n.String()
		if mono != "" {
			switch s {
			case "1":
				s = mono
			case "-1":
				s = "-" + mono
			default:
				s += "*" + mono
			}
		}
		if len(terms) > 0 && !strings.HasPrefix(s, "-") {
			s = "+ " + s
		} else if strings.HasPrefix(s, "-") && len(terms) > 0 {
			s = "- " + s[1:]
		}
		terms = append(terms, s)
	}
	if len(terms) == 0 {
		return "0"
	}
	body := strings.Join(terms, " ")
	if den.Cmp(big.NewInt(1)) == 0 {
		if len(terms) == 1 {
			return body
		}
		return body
	}
	return "(" + body + ")/" + den.String()
}

// PiecewisePoly is a family of polynomials indexed by residue class of
// the size parameter: Eval(m) uses Pieces[m mod Period]. Valid for
// m >= MinM.
type PiecewisePoly struct {
	Period int
	MinM   int
	Pieces []Poly // indexed by m mod Period
}

// Eval evaluates the piecewise polynomial at m.
func (pp *PiecewisePoly) Eval(m int) (int64, error) {
	if m < pp.MinM {
		return 0, fmt.Errorf("cost: piecewise poly valid for m >= %d, got %d", pp.MinM, m)
	}
	return pp.Pieces[m%pp.Period].Eval(m), nil
}

// Degree is the maximum degree across pieces.
func (pp *PiecewisePoly) Degree() int {
	d := 0
	for _, p := range pp.Pieces {
		if pd := p.Degree(); pd > d {
			d = pd
		}
	}
	return d
}

// String renders the piecewise polynomial; uniform pieces collapse to a
// single formula, otherwise each residue class is listed.
func (pp *PiecewisePoly) String() string {
	first := pp.Pieces[0].String()
	uniform := true
	for _, p := range pp.Pieces[1:] {
		if p.String() != first {
			uniform = false
			break
		}
	}
	if uniform {
		return first
	}
	var parts []string
	for r, p := range pp.Pieces {
		parts = append(parts, fmt.Sprintf("m≡%d (mod %d): %s", r, pp.Period, p.String()))
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// FitPiecewise samples f along each residue class of m mod period
// (starting at minM) and fits a polynomial of degree at most maxDeg by
// forward differences, validating the fit on `validate` extra held-out
// samples per class. A non-polynomial f (within the sampled window) is
// reported as an error rather than silently misfitted.
func FitPiecewise(f func(m int) (int64, error), minM, period, maxDeg, validate int) (*PiecewisePoly, error) {
	if period < 1 || maxDeg < 0 || validate < 1 {
		return nil, fmt.Errorf("cost: bad fit parameters (period=%d, maxDeg=%d, validate=%d)", period, maxDeg, validate)
	}
	pp := &PiecewisePoly{Period: period, MinM: minM, Pieces: make([]Poly, period)}
	for r := 0; r < period; r++ {
		m0 := minM + ((r-minM)%period+period)%period
		nSamples := maxDeg + 1 + validate
		y := make([]int64, nSamples)
		for t := 0; t < nSamples; t++ {
			v, err := f(m0 + t*period)
			if err != nil {
				return nil, err
			}
			y[t] = v
		}
		// Forward-difference triangle; rows past maxDeg must vanish
		// everywhere or f is not a degree-<=maxDeg polynomial here.
		diffs := make([]int64, 0, maxDeg+1)
		row := append([]int64(nil), y...)
		for k := 0; k < nSamples; k++ {
			if k <= maxDeg {
				diffs = append(diffs, row[0])
			} else {
				for _, v := range row {
					if v != 0 {
						return nil, fmt.Errorf("cost: counts on residue %d (mod %d) are not polynomial of degree <= %d in m", r, period, maxDeg)
					}
				}
				break
			}
			for i := 0; i+1 < len(row); i++ {
				row[i] = row[i+1] - row[i]
			}
			row = row[:len(row)-1]
		}
		pp.Pieces[r] = Poly{M0: m0, Step: period, Diffs: diffs}
	}
	return pp, nil
}

// SymbolicCounts carries all six Counts fields as piecewise polynomials
// in the size parameter — the closed-form cost of one nest under one
// plan, evaluable at any m without re-counting.
type SymbolicCounts struct {
	TotalFlops, MaxProcFlops *PiecewisePoly
	RemoteWords, ReduceWords *PiecewisePoly
	MaxProcIn, MaxProcOut    *PiecewisePoly
}

// FitCounts fits piecewise polynomials for every Counts field of the
// given counting function, sampling each m once.
func FitCounts(f func(m int) (Counts, error), minM, period, maxDeg, validate int) (*SymbolicCounts, error) {
	cache := map[int]Counts{}
	sample := func(m int) (Counts, error) {
		if ct, ok := cache[m]; ok {
			return ct, nil
		}
		ct, err := f(m)
		if err != nil {
			return Counts{}, err
		}
		cache[m] = ct
		return ct, nil
	}
	fit := func(sel func(Counts) int64) (*PiecewisePoly, error) {
		return FitPiecewise(func(m int) (int64, error) {
			ct, err := sample(m)
			return sel(ct), err
		}, minM, period, maxDeg, validate)
	}
	sc := &SymbolicCounts{}
	var err error
	if sc.TotalFlops, err = fit(func(c Counts) int64 { return c.TotalFlops }); err != nil {
		return nil, err
	}
	if sc.MaxProcFlops, err = fit(func(c Counts) int64 { return c.MaxProcFlops }); err != nil {
		return nil, err
	}
	if sc.RemoteWords, err = fit(func(c Counts) int64 { return c.RemoteWords }); err != nil {
		return nil, err
	}
	if sc.ReduceWords, err = fit(func(c Counts) int64 { return c.ReduceWords }); err != nil {
		return nil, err
	}
	if sc.MaxProcIn, err = fit(func(c Counts) int64 { return c.MaxProcIn }); err != nil {
		return nil, err
	}
	if sc.MaxProcOut, err = fit(func(c Counts) int64 { return c.MaxProcOut }); err != nil {
		return nil, err
	}
	return sc, nil
}

// EvalAt reconstructs the Counts at size m from the fitted polynomials.
func (sc *SymbolicCounts) EvalAt(m int) (Counts, error) {
	var ct Counts
	var err error
	if ct.TotalFlops, err = sc.TotalFlops.Eval(m); err != nil {
		return Counts{}, err
	}
	if ct.MaxProcFlops, err = sc.MaxProcFlops.Eval(m); err != nil {
		return Counts{}, err
	}
	if ct.RemoteWords, err = sc.RemoteWords.Eval(m); err != nil {
		return Counts{}, err
	}
	if ct.ReduceWords, err = sc.ReduceWords.Eval(m); err != nil {
		return Counts{}, err
	}
	if ct.MaxProcIn, err = sc.MaxProcIn.Eval(m); err != nil {
		return Counts{}, err
	}
	if ct.MaxProcOut, err = sc.MaxProcOut.Eval(m); err != nil {
		return Counts{}, err
	}
	return ct, nil
}

// String renders the dominant fields the way the paper's Table 2 reads:
// flops and communication words as closed forms in m.
func (sc *SymbolicCounts) String() string {
	return fmt.Sprintf("maxflops=%s, remote=%s, reduce=%s",
		sc.MaxProcFlops, sc.RemoteWords, sc.ReduceWords)
}
