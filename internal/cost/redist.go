// Pricing for collective redistribution lowerings (dist.ClassifyChange):
// the Table 1 counterpart of the exec backend's composed
// AllToAll + multicast-tree schedule kind.
package cost

import "dmcc/internal/dist"

// CollectiveChangeTime prices a multi-array scheme change lowered to
// composed collectives. The arrays' stage-1 personalized exchanges merge
// into one AllToAll whose time is the joint bottleneck per-processor
// load — exactly what the point-to-point transport pays — while each
// array's stage-2 multicast trees serialize behind it at the Table 1
// tree cost, O(m log W) instead of the O(m (W-1)) replication star.
// With no widening plans this equals the point-to-point change time, so
// the collective pricing is never an over-estimate of the p2p one.
func (c Model) CollectiveChangeTime(plans []dist.RedistPlan) float64 {
	ex := dist.NewLoads()
	var trees float64
	for _, pl := range plans {
		ex.Add(pl.Exchange)
		if pl.WidenGroup > 1 && pl.MulticastWords > 0 {
			trees += c.Tc * pl.MulticastWords * float64(Log2Ceil(pl.WidenGroup))
		}
	}
	return c.Tc*ex.MaxLoad() + trees
}
