// Exact communication counting under the owner-computes rule. The
// reference implementation (CountNestOptsExact) enumerates a nest's
// iteration space, executes every statement at the owners of its
// left-hand side (or, for reductions, at the owners of the anchoring
// operand, with a combining tree afterwards), and counts every word that
// must cross processors. The production entry point (CountNestOpts)
// computes the same Counts in closed form when the nest and schemes are
// eligible (see analytic.go) and otherwise falls back to an optimized
// enumeration (fastwalk.go); both are tested word-for-word against the
// reference. The dynamic programming algorithm of Section 4 prices
// candidate distribution schemes with these counts; they are also
// cross-checked against the words actually sent by the executable kernels
// on the simulated machine.
package cost

import (
	"fmt"
	"sort"

	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

// Counts aggregates the exact work and communication of one nest under
// one set of distribution schemes.
type Counts struct {
	// TotalFlops and MaxProcFlops measure computation and its balance.
	TotalFlops   int64
	MaxProcFlops int64
	// RemoteWords is the number of (element, destination) pairs where the
	// destination executes an iteration needing an element it does not
	// own — each is one word on the wire (after perfect message
	// aggregation and multicast dedup).
	RemoteWords int64
	// ReduceWords counts the partial-sum words of reduction combining
	// trees (one per non-root partial per reduced element).
	ReduceWords int64
	// MaxProcIn / MaxProcOut are the largest per-processor receive and
	// send volumes; the communication-time estimate uses their max.
	MaxProcIn  int64
	MaxProcOut int64
}

// Words returns all words moved.
func (ct Counts) Words() int64 { return ct.RemoteWords + ct.ReduceWords }

// Time converts counts to a Breakdown: computation is the most-loaded
// processor's flops, communication the most-loaded processor's traffic.
func (ct Counts) Time(c Model) Breakdown {
	comm := ct.MaxProcIn
	if ct.MaxProcOut > comm {
		comm = ct.MaxProcOut
	}
	return Breakdown{
		Comp: float64(ct.MaxProcFlops) * c.Tf,
		Comm: float64(comm) * c.Tc,
	}
}

type elemKey struct {
	arr  string
	i, j int
}

type needKey struct {
	elem elemKey
	proc int
}

// CountNest exactly counts the computation and communication of one nest
// under the given per-array schemes on grid g, with size parameters bound
// by bind. Every array referenced by the nest must have a scheme valid
// for its shape.
func CountNest(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int) (Counts, error) {
	return CountNestOpts(p, nest, schemes, g, bind, CountOptions{})
}

// CountNestFiltered is CountNest restricted to the read references for
// which includeRead returns true (nil means all reads). The dynamic
// programming driver uses it to split a nest's communication into the
// within-segment part (M of Algorithm 1) and the loop-carried part (the
// CTime2 term of Fig 3): reads of arrays written later in the iteration
// body are priced separately.
func CountNestFiltered(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, includeRead func(array string) bool) (Counts, error) {
	return CountNestOpts(p, nest, schemes, g, bind, CountOptions{IncludeRead: includeRead})
}

// CountOptions tailor a counting pass.
type CountOptions struct {
	// IncludeRead filters read references by array (nil = all).
	IncludeRead func(array string) bool
	// SkipReduction omits reduction combining-tree traffic — used by the
	// loop-carried pass, whose reduction words were already priced in the
	// segment pass.
	SkipReduction bool
	// SkipFlops omits computation accounting (communication-only passes).
	SkipFlops bool
	// PipelinedReduction prices reduction combining with the Section 5
	// ring pipeline instead of the converge-on-the-root tree: the
	// running total travels the partial holders in rank order (one word
	// in and one word out per interior hop) and the last holder returns
	// the total to the root, so the root receives O(1) words per
	// reduced element instead of Log2Ceil(n). Word totals are
	// unchanged apart from the closing hop; what moves is the
	// per-processor in/out balance — which is exactly what Counts.Time
	// prices — letting the DP keep layouts whose reductions the exec
	// backend now runs as pipelined exchanges.
	PipelinedReduction bool
}

// Engine identifies which counting engine priced a nest.
type Engine int

const (
	// EngineAnalytic is the closed-form engine (analytic.go).
	EngineAnalytic Engine = iota
	// EngineFastwalk is the optimized iteration-space walker the
	// analytic engine falls back to (fastwalk.go).
	EngineFastwalk
	// EngineExact is the reference enumerator (CountNestOptsExact),
	// selected only by explicit ablation.
	EngineExact
)

// CountNestOpts is the general counting entry point. It produces exactly
// the Counts of CountNestOptsExact: in closed form, independent of the
// loop extents, when the nest and schemes are analytic-eligible, and via
// an optimized iteration-space enumeration otherwise.
func CountNestOpts(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, opts CountOptions) (Counts, error) {
	ct, _, err := CountNestOptsEngine(p, nest, schemes, g, bind, opts)
	return ct, err
}

// CountNestOptsEngine is CountNestOpts, additionally reporting which
// engine produced the counts — the hook behind the compiler's
// analytic_hits / fastwalk_fallbacks telemetry.
func CountNestOptsEngine(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, opts CountOptions) (Counts, Engine, error) {
	if err := validateNest(p, nest, schemes, g, bind); err != nil {
		return Counts{}, EngineFastwalk, err
	}
	if ct, ok, err := countNestAnalytic(p, nest, schemes, g, bind, opts); err != nil {
		return Counts{}, EngineAnalytic, err
	} else if ok {
		return ct, EngineAnalytic, nil
	}
	ct, err := countNestFast(p, nest, schemes, g, bind, opts)
	return ct, EngineFastwalk, err
}

// validateNest checks the program, and that every referenced array has a
// scheme valid for its shape on g.
func validateNest(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, st := range nest.Stmts {
		for _, r := range append([]ir.Ref{st.LHS}, st.Reads...) {
			s, ok := schemes[r.Array]
			if !ok {
				return fmt.Errorf("cost: no scheme for array %s", r.Array)
			}
			shape, err := arrayShape(p, r.Array, bind)
			if err != nil {
				return err
			}
			if err := s.Validate(g, shape); err != nil {
				return fmt.Errorf("cost: scheme for %s: %v", r.Array, err)
			}
		}
	}
	return nil
}

// ownerCache memoizes Scheme.Owners per (array, element) so the billing
// loop and repeated statement instances do not recompute (and reallocate)
// the owner set for every word.
type ownerCache struct {
	p       *ir.Program
	g       *grid.Grid
	schemes map[string]dist.Scheme
	m       map[elemKey][]int
}

func newOwnerCache(p *ir.Program, g *grid.Grid, schemes map[string]dist.Scheme) *ownerCache {
	return &ownerCache{p: p, g: g, schemes: schemes, m: map[elemKey][]int{}}
}

func (c *ownerCache) owners(e elemKey) []int {
	if o, ok := c.m[e]; ok {
		return o
	}
	o := ownersOf(c.p, c.schemes[e.arr], c.g, e)
	c.m[e] = o
	return o
}

// CountNestOptsExact is the reference counting engine: a direct walk of
// the iteration space. It is the oracle the analytic engine and the
// optimized walker are verified against, and the ablation engine behind
// core.Compiler.ExactNestCount.
func CountNestOptsExact(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, opts CountOptions) (Counts, error) {
	includeRead := opts.IncludeRead
	if err := validateNest(p, nest, schemes, g, bind); err != nil {
		return Counts{}, err
	}

	flops := map[int]int64{}
	needed := map[needKey]bool{}
	// partials[lhs element] = set of processors holding a partial sum.
	partials := map[elemKey]map[int]bool{}
	partialRoot := map[elemKey]int{}
	owners := newOwnerCache(p, g, schemes)

	var walk func(level int, env map[string]int) error
	walk = func(level int, env map[string]int) error {
		if level > len(nest.Loops) {
			return nil
		}
		for _, st := range nest.Stmts {
			if st.Depth != level {
				continue
			}
			if err := execStmt(p, st, schemes, g, owners, env, flops, needed, partials, partialRoot, includeRead, opts.SkipFlops); err != nil {
				return err
			}
		}
		if level == len(nest.Loops) {
			return nil
		}
		l := nest.Loops[level]
		lo := l.Lo.Eval(env)
		hi := l.Hi.Eval(env)
		if l.Step >= 0 {
			for v := lo; v <= hi; v++ {
				env[l.Index] = v
				if err := walk(level+1, env); err != nil {
					return err
				}
			}
		} else {
			for v := lo; v >= hi; v-- {
				env[l.Index] = v
				if err := walk(level+1, env); err != nil {
					return err
				}
			}
		}
		delete(env, l.Index)
		return nil
	}
	env := map[string]int{}
	for k, v := range bind {
		env[k] = v
	}
	if err := walk(0, env); err != nil {
		return Counts{}, err
	}

	var ct Counts
	in := map[int]int64{}
	out := map[int]int64{}
	for p2, f := range flops {
		ct.TotalFlops += f
		if f > ct.MaxProcFlops {
			ct.MaxProcFlops = f
		}
		_ = p2
	}
	for nk := range needed {
		ct.RemoteWords++
		in[nk.proc]++
		// Each word leaves one canonical source: the element's first owner.
		out[owners.owners(nk.elem)[0]]++
	}
	// Reduction combining trees.
	if opts.SkipReduction {
		partials = nil
	}
	for e, procs := range partials {
		root := partialRoot[e]
		n := len(procs)
		if n <= 1 {
			if n == 1 && !procs[root] {
				// Single partial on a non-owner: one transfer.
				ct.ReduceWords++
				for pr := range procs {
					out[pr]++
				}
				in[root]++
			}
			continue
		}
		if opts.PipelinedReduction {
			// Section 5 ring: the running total visits the partial
			// holders in rank order, one word per hop, and the last
			// holder closes the ring back to the root.
			chain := make([]int, 0, n)
			for pr := range procs {
				chain = append(chain, pr)
			}
			sort.Ints(chain)
			for i := 1; i < n; i++ {
				ct.ReduceWords++
				out[chain[i-1]]++
				in[chain[i]]++
			}
			if last := chain[n-1]; last != root {
				ct.ReduceWords++
				out[last]++
				in[root]++
			}
			continue
		}
		for pr := range procs {
			if pr != root {
				ct.ReduceWords++
				out[pr]++
			}
		}
		in[root] += int64(Log2Ceil(n))
	}
	for _, w := range in {
		if w > ct.MaxProcIn {
			ct.MaxProcIn = w
		}
	}
	for _, w := range out {
		if w > ct.MaxProcOut {
			ct.MaxProcOut = w
		}
	}
	return ct, nil
}

// execStmt records the computation and data needs of one dynamic
// statement instance.
func execStmt(p *ir.Program, st *ir.Stmt, schemes map[string]dist.Scheme, g *grid.Grid,
	owners *ownerCache, env map[string]int, flops map[int]int64, needed map[needKey]bool,
	partials map[elemKey]map[int]bool, partialRoot map[elemKey]int,
	includeRead func(array string) bool, skipFlops bool) error {

	lhsElem, err := evalRef(p, st.LHS, env)
	if err != nil {
		return err
	}
	lhsOwners := owners.owners(lhsElem)

	var executors []int
	if st.Reduce {
		// Partial sums are computed where the anchoring operand (the
		// read touching the most loop indices — A(i,j) in line 5) lives;
		// the partials are then combined at the LHS owner.
		anchor := anchorRead(st)
		if anchor == nil {
			executors = lhsOwners
		} else {
			ae, err := evalRef(p, *anchor, env)
			if err != nil {
				return err
			}
			executors = owners.owners(ae)
			if partials[lhsElem] == nil {
				partials[lhsElem] = map[int]bool{}
				partialRoot[lhsElem] = lhsOwners[0]
			}
			for _, ex := range executors {
				partials[lhsElem][ex] = true
			}
		}
	} else {
		executors = lhsOwners
	}

	if !skipFlops {
		for _, ex := range executors {
			flops[ex] += int64(st.Flops)
		}
	}

	for _, rd := range st.Reads {
		if st.Reduce && rd.Array == st.LHS.Array {
			continue // the accumulator itself is handled by the combining tree
		}
		if includeRead != nil && !includeRead(rd.Array) {
			continue
		}
		re, err := evalRef(p, rd, env)
		if err != nil {
			return err
		}
		s := schemes[rd.Array]
		for _, ex := range executors {
			if !isOwnerOf(p, s, g, ex, re) {
				needed[needKey{elem: re, proc: ex}] = true
			}
		}
	}
	return nil
}

// anchorRead picks the reduction anchor: the non-accumulator read with
// the most distinct subscript variables.
func anchorRead(st *ir.Stmt) *ir.Ref {
	var best *ir.Ref
	bestVars := -1
	for i := range st.Reads {
		rd := &st.Reads[i]
		if rd.Array == st.LHS.Array {
			continue
		}
		vars := map[string]bool{}
		for _, s := range rd.Subs {
			for _, v := range s.Vars() {
				vars[v] = true
			}
		}
		if len(vars) > bestVars {
			bestVars = len(vars)
			best = rd
		}
	}
	return best
}

func evalRef(p *ir.Program, r ir.Ref, env map[string]int) (elemKey, error) {
	e := elemKey{arr: r.Array}
	switch len(r.Subs) {
	case 1:
		e.i = r.Subs[0].Eval(env)
	case 2:
		e.i = r.Subs[0].Eval(env)
		e.j = r.Subs[1].Eval(env)
	default:
		return e, fmt.Errorf("cost: reference %s has unsupported rank %d", r, len(r.Subs))
	}
	return e, nil
}

func ownersOf(p *ir.Program, s dist.Scheme, g *grid.Grid, e elemKey) []int {
	if p.Array(e.arr).Rank() == 1 {
		return s.Owners(g, e.i)
	}
	return s.Owners(g, e.i, e.j)
}

func isOwnerOf(p *ir.Program, s dist.Scheme, g *grid.Grid, rank int, e elemKey) bool {
	if p.Array(e.arr).Rank() == 1 {
		return s.IsOwner(g, rank, e.i)
	}
	return s.IsOwner(g, rank, e.i, e.j)
}

// arrayShape evaluates an array's symbolic extents under bind.
func arrayShape(p *ir.Program, name string, bind map[string]int) ([]int, error) {
	arr := p.Array(name)
	shape := make([]int, arr.Rank())
	for k, e := range arr.Extents {
		for _, v := range e.Vars() {
			if _, ok := bind[v]; !ok {
				return nil, fmt.Errorf("cost: array %s extent %s unbound", name, e)
			}
		}
		shape[k] = e.Eval(bind)
		if shape[k] < 1 {
			return nil, fmt.Errorf("cost: array %s has extent %d", name, shape[k])
		}
	}
	return shape, nil
}
