// Periodic index sets and 2-D element rectangles: the set algebra behind
// the analytic nest counter. An iset is a union of residue classes
// clipped to an interval — exactly the shape of the index sets owned by
// one grid coordinate under the Section 2.1 distribution functions
// (dist.OwnedPattern) and closed under intersection and unit-slope affine
// maps. A rect lifts isets to 2-D element sets: a box product of two
// isets further cut by difference and sum bands
//
//	dlo <= e1 - e0 <= dhi   and   slo <= e1 + e0 <= shi
//
// which is the closure, under intersection, of the three shapes affine
// nests produce: plain products, diagonals (one variable driving both
// subscripts, a band of width zero), and the triangular half-planes of
// loop-variable-dependent bounds (i = k+1..m reads A(i,k) below the
// diagonal). Counting is exact integer arithmetic throughout; band
// counts reduce to sums of arithmetic-progression counts evaluated in
// closed form, so the cost stays independent of the interval widths.
package cost

import "dmcc/internal/dist"

// iset is {x in [lo, hi] : res[x mod p]} with p >= 1 and len(res) == p.
type iset struct {
	lo, hi int
	p      int
	res    []bool
}

func fullSet(lo, hi int) iset { return iset{lo: lo, hi: hi, p: 1, res: []bool{true}} }

func singletonSet(v int) iset { return fullSet(v, v) }

func setFromPattern(pt dist.OwnedPattern) iset {
	return iset{lo: pt.Lo, hi: pt.Hi, p: pt.Period, res: pt.Residues}
}

func mod(x, p int) int { return ((x % p) + p) % p }

// countResidue counts x in [lo, hi] with x mod p == r.
func countResidue(lo, hi, p, r int) int64 {
	if hi < lo {
		return 0
	}
	// Shift so the range starts at a multiple of p.
	span := hi - lo + 1
	off := mod(r-lo, p)
	if off >= span {
		return 0
	}
	return int64((span-off-1)/p) + 1
}

func (s iset) count() int64 {
	if s.hi < s.lo {
		return 0
	}
	var c int64
	for r, ok := range s.res {
		if ok {
			c += countResidue(s.lo, s.hi, s.p, r)
		}
	}
	return c
}

// countIn counts members of s inside [l, h].
func (s iset) countIn(l, h int) int64 {
	if l < s.lo {
		l = s.lo
	}
	if h > s.hi {
		h = s.hi
	}
	if h < l {
		return 0
	}
	var c int64
	for r, ok := range s.res {
		if ok {
			c += countResidue(l, h, s.p, r)
		}
	}
	return c
}

func (s iset) empty() bool { return s.count() == 0 }

func (s iset) contains(v int) bool {
	return v >= s.lo && v <= s.hi && s.res[mod(v, s.p)]
}

// minElem returns the smallest member. Any nonempty set has a member in
// the first p positions of its interval, so the scan is O(p).
func (s iset) minElem() (int, bool) {
	end := s.lo + s.p - 1
	if end > s.hi {
		end = s.hi
	}
	for v := s.lo; v <= end; v++ {
		if s.res[mod(v, s.p)] {
			return v, true
		}
	}
	return 0, false
}

func (s iset) maxElem() (int, bool) {
	end := s.hi - s.p + 1
	if end < s.lo {
		end = s.lo
	}
	for v := s.hi; v >= end; v-- {
		if s.res[mod(v, s.p)] {
			return v, true
		}
	}
	return 0, false
}

// clip restricts the interval to [l, h].
func (s iset) clip(l, h int) iset {
	out := s
	if l > out.lo {
		out.lo = l
	}
	if h < out.hi {
		out.hi = h
	}
	return out
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcmInt(a, b int) int { return a / gcdInt(a, b) * b }

func intersectSets(a, b iset) iset {
	p := lcmInt(a.p, b.p)
	res := make([]bool, p)
	for r := 0; r < p; r++ {
		res[r] = a.res[r%a.p] && b.res[r%b.p]
	}
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	return iset{lo: lo, hi: hi, p: p, res: res}
}

// affineImage returns {s*x + c : x in set}, s in {-1, +1}.
func (st iset) affineImage(s, c int) iset {
	var lo, hi int
	if s == 1 {
		lo, hi = st.lo+c, st.hi+c
	} else {
		lo, hi = c-st.hi, c-st.lo
	}
	res := make([]bool, st.p)
	for r, ok := range st.res {
		if ok {
			res[mod(s*r+c, st.p)] = true
		}
	}
	return iset{lo: lo, hi: hi, p: st.p, res: res}
}

// affinePreimage returns {x : s*x + c in set}; since s*s == 1 this is the
// image under the inverse map x = s*y - s*c.
func (st iset) affinePreimage(s, c int) iset {
	return st.affineImage(s, -s*c)
}

// Band sentinels: far enough from any index to never clamp, near enough
// that band arithmetic (sums and differences of two bounds) cannot
// overflow.
const (
	bandMin = -1 << 40
	bandMax = 1 << 40
)

// rect is a set of (e0, e1) element pairs: e0 in a, e1 in b, cut by a
// difference band dlo <= e1-e0 <= dhi and a sum band slo <= e1+e0 <= shi.
// Products leave both bands open; a diagonal pins one band to width
// zero; triangular reads close one side only. 1-D arrays use product
// form with b pinned to the singleton {0}, matching the walker's
// elemKey.
type rect struct {
	a, b     iset
	dlo, dhi int
	slo, shi int
}

func prodRect(a, b iset) rect {
	return rect{a: a, b: b, dlo: bandMin, dhi: bandMax, slo: bandMin, shi: bandMax}
}

// diagRect is {(s0*v+c0, s1*v+c1) : v in s}: the box of the two images
// with the line itself expressed as a zero-width band. The unit slopes
// make v recoverable from either coordinate, so the band form is the
// same point set, not an approximation.
func diagRect(s iset, s0, c0, s1, c1 int) rect {
	r := prodRect(s.affineImage(s0, c0), s.affineImage(s1, c1))
	if s0 == s1 {
		r.dlo, r.dhi = c1-c0, c1-c0
	} else {
		r.slo, r.shi = c0+c1, c0+c1
	}
	return r
}

// halfPlane cuts r by sgn0*e0 + sgn1*e1 >= g (or <= g when ge is false),
// with sgn0, sgn1 in {-1, +1} — the constraint shape a dependent loop
// bound induces between two subscript images.
func (r rect) halfPlane(sgn0, sgn1, g int, ge bool) rect {
	if sgn0 == sgn1 {
		// sgn*(e0+e1) >= g  <=>  e0+e1 >= sgn*g (sgn=+1) / <= -g (sgn=-1).
		if (sgn0 == 1) == ge {
			if v := sgn0 * g; v > r.slo {
				r.slo = v
			}
		} else {
			if v := sgn0 * g; v < r.shi {
				r.shi = v
			}
		}
		return r
	}
	// sgn1*(e1-e0) >= g.
	if (sgn1 == 1) == ge {
		if v := sgn1 * g; v > r.dlo {
			r.dlo = v
		}
	} else {
		if v := sgn1 * g; v < r.dhi {
			r.dhi = v
		}
	}
	return r
}

func (r rect) count() int64 {
	a, b := r.a, r.b
	if a.hi < a.lo || b.hi < b.lo {
		return 0
	}
	dOpen := r.dlo <= b.lo-a.hi && r.dhi >= b.hi-a.lo
	sOpen := r.slo <= a.lo+b.lo && r.shi >= a.hi+b.hi
	switch {
	case dOpen && sOpen:
		return a.count() * b.count()
	case r.dlo == r.dhi && sOpen:
		// One line e1 = e0 + d: members of a whose partner lies in b.
		return intersectSets(a, b.affinePreimage(1, r.dlo)).count()
	case r.slo == r.shi && dOpen:
		// One line e1 = s - e0.
		return intersectSets(a, b.affinePreimage(-1, r.slo)).count()
	case r.dlo == r.dhi && r.slo == r.shi:
		// Two crossing lines: at most one point.
		if (r.slo-r.dlo)%2 != 0 {
			return 0
		}
		e0 := (r.slo - r.dlo) / 2
		e1 := e0 + r.dlo
		if e0+e1 >= r.slo && e0+e1 <= r.shi && a.contains(e0) && b.contains(e1) {
			return 1
		}
		return 0
	}
	if r.dlo > r.dhi || r.slo > r.shi {
		return 0
	}
	// General band: sum the windowed count of b over the members of a.
	t := winTerm{set: b}
	if r.dlo > bandMin {
		t.los = append(t.los, affBound{c: r.dlo, k: 1})
	}
	if r.slo > bandMin {
		t.los = append(t.los, affBound{c: r.slo, k: -1})
	}
	if r.dhi < bandMax {
		t.his = append(t.his, affBound{c: r.dhi, k: 1})
	}
	if r.shi < bandMax {
		t.his = append(t.his, affBound{c: r.shi, k: -1})
	}
	return sumWindowed(a, []winTerm{t})
}

// rectEq reports structural equality — same sets, same bands. Used to
// dedup footprint rects before inclusion-exclusion, whose cost is
// exponential in the rect count.
func rectEq(x, y rect) bool {
	if x.dlo != y.dlo || x.dhi != y.dhi || x.slo != y.slo || x.shi != y.shi {
		return false
	}
	return isetEq(x.a, y.a) && isetEq(x.b, y.b)
}

func isetEq(x, y iset) bool {
	if x.p != y.p || x.lo != y.lo || x.hi != y.hi || len(x.res) != len(y.res) {
		return false
	}
	for i := range x.res {
		if x.res[i] != y.res[i] {
			return false
		}
	}
	return true
}

// intersectRect intersects two rects. ok == false means provably empty;
// a true result may still count to zero.
func intersectRect(x, y rect) (rect, bool) {
	r := rect{a: intersectSets(x.a, y.a), b: intersectSets(x.b, y.b)}
	r.dlo, r.dhi = maxInt(x.dlo, y.dlo), minInt(x.dhi, y.dhi)
	r.slo, r.shi = maxInt(x.slo, y.slo), minInt(x.shi, y.shi)
	if r.a.hi < r.a.lo || r.b.hi < r.b.lo || r.dlo > r.dhi || r.slo > r.shi {
		return rect{}, false
	}
	return r, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// unionCount returns |union of rects| by inclusion-exclusion. The rect
// count per (array, processor) is bounded by the nest's read references,
// so the 2^k term stays tiny; callers cap k (see maxFootprintRects).
func unionCount(rs []rect) int64 {
	var rec func(i int, acc *rect, depth int) int64
	rec = func(i int, acc *rect, depth int) int64 {
		var sum int64
		for j := i; j < len(rs); j++ {
			cur := rs[j]
			if acc != nil {
				var ok bool
				cur, ok = intersectRect(*acc, rs[j])
				if !ok {
					continue
				}
			}
			c := cur.count()
			if c == 0 {
				continue
			}
			if depth%2 == 0 {
				sum += c
			} else {
				sum -= c
			}
			sum += rec(j+1, &cur, depth+1)
		}
		return sum
	}
	return rec(0, nil, 0)
}

// ------------------------------------------------- windowed AP sums --

// affBound is a window endpoint affine in the outer variable v:
// value(v) = c + k*v with k in {-1, 0, +1}.
type affBound struct{ c, k int }

// winTerm is one factor of a windowed product: the count of set members
// inside [max of los, min of his] (either side open when empty).
type winTerm struct {
	set      iset
	los, his []affBound
}

func (t winTerm) eval(v int) int64 {
	lo, hi := t.set.lo, t.set.hi
	for _, b := range t.los {
		if x := b.c + b.k*v; x > lo {
			lo = x
		}
	}
	for _, b := range t.his {
		if x := b.c + b.k*v; x < hi {
			hi = x
		}
	}
	return t.set.countIn(lo, hi)
}

// sumWindowedDirectCap: spans at most this wide are summed by direct
// enumeration of v; the closed form takes over beyond it.
const sumWindowedDirectCap = 64

// sumWindowed returns sum over v in xs of the product over terms of
// |term.set ∩ [max(term.los(v)), min(term.his(v))]|, in closed form.
//
// On any interval of v where no window endpoint crosses another or
// crosses its set's hull, and restricted to one residue class of the
// combined period, each factor is affine in v (shifting a window by the
// period over a periodic set changes the count linearly), so the product
// is a polynomial of degree <= len(terms). The sum is then recovered
// from len(terms)+1 samples per (interval, class) by Newton forward
// differences and hockey-stick binomial sums — exactly the
// "sums of arithmetic-progression counts" closed form.
func sumWindowed(xs iset, terms []winTerm) int64 {
	if xs.hi < xs.lo {
		return 0
	}
	prodAt := func(v int) int64 {
		if !xs.res[mod(v, xs.p)] {
			return 0
		}
		acc := int64(1)
		for _, t := range terms {
			acc *= t.eval(v)
			if acc == 0 {
				return 0
			}
		}
		return acc
	}
	if xs.hi-xs.lo < sumWindowedDirectCap {
		var sum int64
		for v := xs.lo; v <= xs.hi; v++ {
			sum += prodAt(v)
		}
		return sum
	}

	period := xs.p
	for _, t := range terms {
		period = lcmInt(period, t.set.p)
	}

	// Interval starts: v values where some endpoint ordering can change.
	starts := []int{xs.lo}
	addCross := func(v int) {
		for _, d := range [3]int{-1, 0, 1} {
			if x := v + d; x > xs.lo && x <= xs.hi {
				starts = append(starts, x)
			}
		}
	}
	for _, t := range terms {
		bounds := append(append([]affBound{}, t.los...), t.his...)
		for i, b1 := range bounds {
			if b1.k != 0 {
				// Crossing the set hull (clamp side changes).
				addCross(b1.k * (t.set.lo - b1.c))
				addCross(b1.k * (t.set.hi - b1.c))
			}
			for _, b2 := range bounds[i+1:] {
				if b1.k == b2.k {
					continue
				}
				// c1 + k1 v = c2 + k2 v at v = (c2-c1)/(k1-k2).
				num, den := b2.c-b1.c, b1.k-b2.k
				addCross(floorDiv(num, den))
			}
		}
	}
	sortInts(starts)
	starts = dedupInts(starts)

	deg := len(terms)
	var sum int64
	samples := make([]int64, deg+1)
	for i, l := range starts {
		h := xs.hi
		if i+1 < len(starts) {
			h = starts[i+1] - 1
		}
		for rho := 0; rho < period; rho++ {
			if !xs.res[rho%xs.p] {
				continue
			}
			v0 := l + mod(rho-l, period)
			if v0 > h {
				continue
			}
			n := int64((h-v0)/period) + 1
			if n <= int64(deg)+1 {
				for t := int64(0); t < n; t++ {
					sum += prodAt(v0 + int(t)*period)
				}
				continue
			}
			for t := 0; t <= deg; t++ {
				samples[t] = prodAt(v0 + t*period)
			}
			// Forward differences in place, then the hockey-stick sum:
			// sum over t < n of C(t,k) equals C(n, k+1).
			for k := 1; k <= deg; k++ {
				for j := deg; j >= k; j-- {
					samples[j] -= samples[j-1]
				}
			}
			for k := 0; k <= deg; k++ {
				sum += samples[k] * binom(n, int64(k)+1)
			}
		}
	}
	return sum
}

// floorDiv returns floor(a/b) for b != 0.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// binom returns C(n, k) exactly; the running product is divisible by i
// at each step.
func binom(n, k int64) int64 {
	if k < 0 || k > n {
		return 0
	}
	b := int64(1)
	for i := int64(1); i <= k; i++ {
		b = b * (n - i + 1) / i
	}
	return b
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
