// Periodic index sets and 2-D element rectangles: the set algebra behind
// the analytic nest counter. An iset is a union of residue classes
// clipped to an interval — exactly the shape of the index sets owned by
// one grid coordinate under the Section 2.1 distribution functions
// (dist.OwnedPattern) and closed under intersection and unit-slope affine
// maps. A rect lifts isets to 2-D element sets, either as a product of
// two isets or as a "diagonal" (the image of one iset under a pair of
// affine maps, which is what correlated subscripts like A(i,i) produce).
// Counting is exact integer arithmetic throughout, independent of the
// interval widths — the property that makes nest counting O(1) in the
// problem size.
package cost

import "dmcc/internal/dist"

// iset is {x in [lo, hi] : res[x mod p]} with p >= 1 and len(res) == p.
type iset struct {
	lo, hi int
	p      int
	res    []bool
}

func fullSet(lo, hi int) iset { return iset{lo: lo, hi: hi, p: 1, res: []bool{true}} }

func singletonSet(v int) iset { return fullSet(v, v) }

func setFromPattern(pt dist.OwnedPattern) iset {
	return iset{lo: pt.Lo, hi: pt.Hi, p: pt.Period, res: pt.Residues}
}

func mod(x, p int) int { return ((x % p) + p) % p }

// countResidue counts x in [lo, hi] with x mod p == r.
func countResidue(lo, hi, p, r int) int64 {
	if hi < lo {
		return 0
	}
	// Shift so the range starts at a multiple of p.
	span := hi - lo + 1
	off := mod(r-lo, p)
	if off >= span {
		return 0
	}
	return int64((span-off-1)/p) + 1
}

func (s iset) count() int64 {
	if s.hi < s.lo {
		return 0
	}
	var c int64
	for r, ok := range s.res {
		if ok {
			c += countResidue(s.lo, s.hi, s.p, r)
		}
	}
	return c
}

func (s iset) empty() bool { return s.count() == 0 }

func (s iset) contains(v int) bool {
	return v >= s.lo && v <= s.hi && s.res[mod(v, s.p)]
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcmInt(a, b int) int { return a / gcdInt(a, b) * b }

func intersectSets(a, b iset) iset {
	p := lcmInt(a.p, b.p)
	res := make([]bool, p)
	for r := 0; r < p; r++ {
		res[r] = a.res[r%a.p] && b.res[r%b.p]
	}
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	return iset{lo: lo, hi: hi, p: p, res: res}
}

// affineImage returns {s*x + c : x in set}, s in {-1, +1}.
func (st iset) affineImage(s, c int) iset {
	var lo, hi int
	if s == 1 {
		lo, hi = st.lo+c, st.hi+c
	} else {
		lo, hi = c-st.hi, c-st.lo
	}
	res := make([]bool, st.p)
	for r, ok := range st.res {
		if ok {
			res[mod(s*r+c, st.p)] = true
		}
	}
	return iset{lo: lo, hi: hi, p: st.p, res: res}
}

// affinePreimage returns {x : s*x + c in set}; since s*s == 1 this is the
// image under the inverse map x = s*y - s*c.
func (st iset) affinePreimage(s, c int) iset {
	return st.affineImage(s, -s*c)
}

// rect is a set of (e0, e1) element pairs. 1-D arrays use product form
// with b pinned to the singleton {0}, matching the walker's elemKey.
type rect struct {
	diag bool
	// Product form: a x b.
	a, b iset
	// Diagonal form: {(s0*v+c0, s1*v+c1) : v in s}.
	s      iset
	s0, c0 int
	s1, c1 int
}

func prodRect(a, b iset) rect { return rect{a: a, b: b} }

func diagRect(s iset, s0, c0, s1, c1 int) rect {
	return rect{diag: true, s: s, s0: s0, c0: c0, s1: s1, c1: c1}
}

func (r rect) count() int64 {
	if r.diag {
		return r.s.count()
	}
	return r.a.count() * r.b.count()
}

// intersectRect intersects two rects. ok == false means provably empty.
func intersectRect(x, y rect) (rect, bool) {
	switch {
	case !x.diag && !y.diag:
		return prodRect(intersectSets(x.a, y.a), intersectSets(x.b, y.b)), true
	case x.diag && !y.diag:
		base := intersectSets(x.s, y.a.affinePreimage(x.s0, x.c0))
		base = intersectSets(base, y.b.affinePreimage(x.s1, x.c1))
		return diagRect(base, x.s0, x.c0, x.s1, x.c1), true
	case !x.diag && y.diag:
		return intersectRect(y, x)
	}
	// diag x diag: points (x.s0*v+x.c0, x.s1*v+x.c1) that also lie on y.
	// The first coordinates match at w = y.s0*(e0 - y.c0), a unit-slope
	// affine function of v; the second coordinates then match iff
	// x.s1*v + x.c1 == y.s1*w + y.c1.
	alpha := y.s0 * x.s0         // dw/dv
	beta := y.s0 * (x.c0 - y.c0) // w = alpha*v + beta
	sigma := y.s1 * alpha        // second-coordinate slope via w
	delta := y.s1*beta + y.c1    // second coordinate via w at v = 0
	if x.s1 == sigma {
		if x.c1 != delta {
			return rect{}, false
		}
		// Same line: restrict v to values whose w lands in y.s.
		base := intersectSets(x.s, y.s.affinePreimage(alpha, beta))
		return diagRect(base, x.s0, x.c0, x.s1, x.c1), true
	}
	// Crossing lines: a single candidate v.
	num := delta - x.c1
	den := x.s1 - sigma // +-2
	if num%den != 0 {
		return rect{}, false
	}
	v := num / den
	if !x.s.contains(v) || !y.s.contains(alpha*v+beta) {
		return rect{}, false
	}
	return diagRect(singletonSet(v), x.s0, x.c0, x.s1, x.c1), true
}

// unionCount returns |union of rects| by inclusion-exclusion. The rect
// count per (array, processor) is bounded by the nest's read references,
// so the 2^k term stays tiny; callers cap k (see maxFootprintRects).
func unionCount(rs []rect) int64 {
	var rec func(i int, acc *rect, depth int) int64
	rec = func(i int, acc *rect, depth int) int64 {
		var sum int64
		for j := i; j < len(rs); j++ {
			cur := rs[j]
			if acc != nil {
				var ok bool
				cur, ok = intersectRect(*acc, rs[j])
				if !ok {
					continue
				}
			}
			c := cur.count()
			if c == 0 {
				continue
			}
			if depth%2 == 0 {
				sum += c
			} else {
				sum -= c
			}
			sum += rec(j+1, &cur, depth+1)
		}
		return sum
	}
	return rec(0, nil, 0)
}
