// Symbolic renderings of the paper's cost formulas, so reports can print
// Table 2 the way the paper does (in m, N, tf, tc) next to the numeric
// evaluation.
package cost

import (
	"fmt"
	"strings"
)

// SymbolicTerm is one additive term of a cost formula: Coef * m^MPow /
// N^NDiv * (log N)^LogPow, multiplied by tf or tc.
type SymbolicTerm struct {
	Coef   float64
	MPow   int
	NDiv   int
	LogPow int
	Flop   bool // tf term if true, tc term otherwise
}

// String renders the term in the paper's notation.
func (t SymbolicTerm) String() string {
	var parts []string
	if t.Coef != 1 || (t.MPow == 0 && t.NDiv == 0 && t.LogPow == 0) {
		parts = append(parts, trimFloat(t.Coef))
	}
	switch t.MPow {
	case 0:
	case 1:
		parts = append(parts, "m")
	default:
		parts = append(parts, fmt.Sprintf("m^%d", t.MPow))
	}
	num := strings.Join(parts, "*")
	if num == "" {
		num = "1"
	}
	if t.NDiv > 0 {
		if t.NDiv == 1 {
			num += "/N"
		} else {
			num += fmt.Sprintf("/N^%d", t.NDiv)
		}
	}
	for i := 0; i < t.LogPow; i++ {
		num += "*logN"
	}
	unit := "tc"
	if t.Flop {
		unit = "tf"
	}
	return num + "*" + unit
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// SymbolicFormula is a sum of terms.
type SymbolicFormula []SymbolicTerm

// String joins the terms with " + ".
func (f SymbolicFormula) String() string {
	if len(f) == 0 {
		return "0"
	}
	parts := make([]string, len(f))
	for i, t := range f {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// Eval evaluates the formula at concrete m, N under the model.
func (f SymbolicFormula) Eval(c Model, m, n int) float64 {
	total := 0.0
	logN := float64(Log2Ceil(n))
	for _, t := range f {
		v := t.Coef
		for i := 0; i < t.MPow; i++ {
			v *= float64(m)
		}
		for i := 0; i < t.NDiv; i++ {
			v /= float64(n)
		}
		for i := 0; i < t.LogPow; i++ {
			v *= logN
		}
		if t.Flop {
			v *= c.Tf
		} else {
			v *= c.Tc
		}
		total += v
	}
	return total
}

// The Table 2 rows and the Section 4/5 formulas in symbolic form. The
// numeric methods on Model (JacobiIteration etc.) are the ground truth;
// tests assert the symbolic forms evaluate identically on the paper's
// grid shapes.

// SymbolicJacobiRow1 is the 1 x N row of Table 2:
// (2m^2/N + 3m/N)tf + 2m logN tc.
func SymbolicJacobiRow1() SymbolicFormula {
	return SymbolicFormula{
		{Coef: 2, MPow: 2, NDiv: 1, Flop: true},
		{Coef: 3, MPow: 1, NDiv: 1, Flop: true},
		{Coef: 2, MPow: 1, LogPow: 1},
	}
}

// SymbolicJacobiRow2 is the N x 1 row: (2m^2/N + 3m)tf + (m + m logN)tc.
func SymbolicJacobiRow2() SymbolicFormula {
	return SymbolicFormula{
		{Coef: 2, MPow: 2, NDiv: 1, Flop: true},
		{Coef: 3, MPow: 1, Flop: true},
		{Coef: 1, MPow: 1},
		{Coef: 1, MPow: 1, LogPow: 1},
	}
}

// SymbolicJacobiDP is the Section 4 scheme: (2m^2/N + 3m/N)tf + m tc.
func SymbolicJacobiDP() SymbolicFormula {
	return SymbolicFormula{
		{Coef: 2, MPow: 2, NDiv: 1, Flop: true},
		{Coef: 3, MPow: 1, NDiv: 1, Flop: true},
		{Coef: 1, MPow: 1},
	}
}

// SymbolicSORNaive is the Section 5 naive time:
// (2m^2/N + 4m)tf + m(logN + 1)tc.
func SymbolicSORNaive() SymbolicFormula {
	return SymbolicFormula{
		{Coef: 2, MPow: 2, NDiv: 1, Flop: true},
		{Coef: 4, MPow: 1, Flop: true},
		{Coef: 1, MPow: 1, LogPow: 1},
		{Coef: 1, MPow: 1},
	}
}

// SymbolicSORPipelined is the Section 5 pipelined bound without the
// N-proportional tail: (2m^2/N + 2m)tf + 2m tc (+ 2N tc, carried
// separately since it has no m factor).
func SymbolicSORPipelined() SymbolicFormula {
	return SymbolicFormula{
		{Coef: 2, MPow: 2, NDiv: 1, Flop: true},
		{Coef: 2, MPow: 1, Flop: true},
		{Coef: 2, MPow: 1},
	}
}
