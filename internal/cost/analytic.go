// Closed-form nest counting: the RedistLoads treatment applied to
// CountNestOptsExact. For affine nests under block / cyclic /
// replicated / displaced schemes, every quantity the exact walker tallies
// by enumerating the iteration space is a function of per-dimension index
// sets:
//
//   - the instances a processor executes are, per loop variable, the loop
//     range intersected with the affine preimage of the owner-coordinate's
//     owned pattern (an iset), so instance counts factorize across loop
//     variables — and when an inner bound depends on an outer variable
//     (gauss's i = k+1..m) the product becomes a windowed sum over the
//     outer variable, a sum of arithmetic-progression counts evaluated in
//     closed form (sumWindowed);
//   - the elements a processor reads are images of those per-variable
//     sets under the read subscripts — products of isets, diagonals when
//     one variable drives two subscripts, and half-plane bands when a
//     dependent variable and its bound variable drive the two subscripts
//     of one array (L(i,k) below the diagonal) — and the globally deduped
//     (element, processor) "needed" pairs of the walker are counts of
//     unions of such rects, by inclusion-exclusion, minus the part the
//     processor owns;
//   - send attribution and reduction combining trees partition the
//     element space into owner-coordinate cells, exactly like
//     RedistLoads' per-dimension joint count tables; a dependent bound
//     between a reduced variable and a free variable cuts those cells at
//     per-coordinate reach thresholds, and the Section 5 ring is priced
//     by walking each cell's sorted member chain.
//
// Everything is exact int64 arithmetic, so the Counts returned here are
// identical — not approximately, but word for word — to the enumeration's,
// while the cost is independent of the loop extents. Nests or schemes
// outside the eligible class (bounds depending on more than one outer
// variable, rotation, non-unit subscript coefficients, out-of-range
// subscripts) report ok=false and fall back to the optimized walker.
package cost

import (
	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

const (
	// maxAnalyticPeriod bounds the residue-set periods (lcm of N*Block
	// over cyclic dims) the closed forms will carry before bailing out.
	maxAnalyticPeriod = 4096
	// maxFootprintRects bounds the per-(array, processor) rect-union size;
	// inclusion-exclusion is exponential in it.
	maxFootprintRects = 10
	// maxReduceCombos bounds the owner-coordinate cell enumeration of one
	// reduction statement.
	maxReduceCombos = 1 << 14
)

// anSub is a compiled subscript: sign*var + c, or the constant c when
// slot < 0. Bound size parameters are folded into c.
type anSub struct {
	slot int
	sign int
	c    int
}

// anDep records a loop whose normalized lower or upper bound is
// root_var + c: the range of slot s at root value v is [v+c, hi] when
// low, [lo, v+c] otherwise. e.ranges[s] holds the hull over the root's
// full range.
type anDep struct {
	root int
	c    int
	low  bool
}

// anDim is the ownership structure of one array dimension.
type anDim struct {
	replicated bool
	gd         int    // mapped grid dimension
	n          int    // its extent
	pats       []iset // owned index pattern per grid coordinate (nil when replicated)
}

type anArray struct {
	name  string
	idx   int
	rank  int
	s     dist.Scheme
	sizes [2]int
	dims  [2]anDim
}

// ownedRect returns the element set rank coordinates q own, and whether
// the scheme's Fixed entries admit this rank at all.
func (a *anArray) ownedRect(q []int) (rect, bool) {
	for gd, c := range a.s.Fixed {
		if c != dist.All && c != q[gd] {
			return rect{}, false
		}
	}
	var sets [2]iset
	for k := 0; k < a.rank; k++ {
		d := a.dims[k]
		if d.replicated {
			sets[k] = fullSet(1, a.sizes[k])
		} else {
			sets[k] = d.pats[q[d.gd]]
		}
	}
	if a.rank == 1 {
		sets[1] = singletonSet(1)
	}
	return prodRect(sets[0], sets[1]), true
}

type anRef struct {
	arr  *anArray
	subs [2]anSub
}

// anGate pins one grid coordinate of an executing rank.
type anGate struct{ gd, coord int }

// anConstraint restricts one loop variable per owner grid coordinate:
// sets[a] = loop range ∩ preimage of coordinate a's owned pattern.
type anConstraint struct {
	slot int
	gd   int
	sets []iset
}

type anStmt struct {
	depth       int
	flops       int64
	reduce      bool
	hasAnchor   bool
	lhs, anchor anRef
	owner       anRef
	reads       []anRef
	gates       []anGate
	constraints []anConstraint
}

type anEngine struct {
	g          *grid.Grid
	nprocs     int
	q          int
	strides    []int
	rankCoords [][]int
	ranges     []iset   // per loop slot (the constant hull for dependent slots)
	deps       []*anDep // per loop slot, nil for constant bounds
	depRoot    int      // the single root every dependent slot references, or -1
	arrays     []*anArray
	stmts      []*anStmt
	opts       CountOptions

	flops []int64
	in    []int64
	out   []int64
	// footprints[arrayIdx][rank] accumulates read rects.
	footprints [][][]rect
	remote     int64
	reduceW    int64
}

// countNestAnalytic computes CountNestOptsExact's Counts in closed form.
// ok=false means the nest or schemes are outside the eligible class and
// the caller must fall back to enumeration. The caller has already
// validated the nest.
func countNestAnalytic(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, opts CountOptions) (Counts, bool, error) {
	e := &anEngine{g: g, nprocs: g.Size(), q: g.Q(), opts: opts}
	e.strides = make([]int, e.q)
	stride := 1
	for gd := e.q - 1; gd >= 0; gd-- {
		e.strides[gd] = stride
		stride *= g.Extent(gd)
	}
	e.rankCoords = make([][]int, e.nprocs)
	for r := 0; r < e.nprocs; r++ {
		e.rankCoords[r] = make([]int, e.q)
		for gd := 0; gd < e.q; gd++ {
			e.rankCoords[r][gd] = g.Coord(r, gd)
		}
	}

	// Loop ranges: constant bounds once parameters are bound, or one
	// dependent bound of the form outer_var + c. The walker's range
	// semantics: an upward loop covers [lo, hi], a downward loop
	// [hi, lo]; either may be empty. A downward loop's raw Lo is the
	// upper end of the normalized range, so gauss's back-substitution
	// i = j-1..1 step -1 becomes the upper-dependent window [1, j-1].
	slotOf := map[string]int{}
	for s, l := range nest.Loops {
		slotOf[l.Index] = s
	}
	e.ranges = make([]iset, len(nest.Loops))
	e.deps = make([]*anDep, len(nest.Loops))
	e.depRoot = -1
	isConst := make([]bool, len(nest.Loops))
	type pendLoop struct {
		s        int
		loA, hiA ir.Affine
	}
	var pends []pendLoop
	for s, l := range nest.Loops {
		loA, hiA := l.Lo, l.Hi
		if l.Step < 0 {
			loA, hiA = hiA, loA
		}
		lo, okLo := constAff(loA, bind)
		hi, okHi := constAff(hiA, bind)
		if okLo && okHi {
			e.ranges[s] = fullSet(lo, hi)
			isConst[s] = true
			continue
		}
		pends = append(pends, pendLoop{s: s, loA: loA, hiA: hiA})
	}
	for _, pd := range pends {
		lo, okLo := constAff(pd.loA, bind)
		hi, okHi := constAff(pd.hiA, bind)
		var dp anDep
		switch {
		case okHi && !okLo:
			root, c, ok := depAff(pd.loA, bind, slotOf)
			if !ok {
				return Counts{}, false, nil
			}
			dp = anDep{root: root, c: c, low: true}
		case okLo && !okHi:
			root, c, ok := depAff(pd.hiA, bind, slotOf)
			if !ok {
				return Counts{}, false, nil
			}
			dp = anDep{root: root, c: c, low: false}
		default:
			return Counts{}, false, nil // both bounds dependent
		}
		if dp.root >= pd.s || !isConst[dp.root] {
			return Counts{}, false, nil // chained or inward dependence
		}
		if e.depRoot >= 0 && e.depRoot != dp.root {
			return Counts{}, false, nil // two distinct roots
		}
		e.depRoot = dp.root
		e.deps[pd.s] = &dp
		rr := e.ranges[dp.root]
		if dp.low {
			e.ranges[pd.s] = fullSet(rr.lo+dp.c, hi)
		} else {
			e.ranges[pd.s] = fullSet(lo, rr.hi+dp.c)
		}
	}

	arrIdx := map[string]*anArray{}
	periodLCM := 1
	arrayOf := func(name string) (*anArray, bool) {
		if a, ok := arrIdx[name]; ok {
			return a, true
		}
		s := schemes[name]
		if s.Rot != dist.NoRotation {
			return nil, false
		}
		shape, err := arrayShape(p, name, bind)
		if err != nil {
			return nil, false
		}
		a := &anArray{name: name, idx: len(e.arrays), rank: len(shape), s: s}
		for k := 0; k < a.rank; k++ {
			a.sizes[k] = shape[k]
			d := s.Dims[k]
			if d.Replicated {
				a.dims[k] = anDim{replicated: true, gd: d.GridDim}
				continue
			}
			n := g.Extent(d.GridDim)
			pats := make([]iset, n)
			for c := 0; c < n; c++ {
				pats[c] = setFromPattern(dist.OwnedPatternOf(d, n, c, shape[k]))
				periodLCM = lcmInt(periodLCM, pats[c].p)
				if periodLCM > maxAnalyticPeriod {
					return nil, false
				}
			}
			a.dims[k] = anDim{gd: d.GridDim, n: n, pats: pats}
		}
		arrIdx[name] = a
		e.arrays = append(e.arrays, a)
		return a, true
	}

	compileRef := func(r ir.Ref, needInRange bool) (anRef, bool) {
		a, ok := arrayOf(r.Array)
		if !ok {
			return anRef{}, false
		}
		out := anRef{arr: a}
		for k, sub := range r.Subs {
			sp, ok := compileSub(sub, bind, slotOf)
			if !ok {
				return anRef{}, false
			}
			if needInRange && !subInRange(sp, e.ranges, a.sizes[k]) {
				return anRef{}, false
			}
			out.subs[k] = sp
		}
		return out, true
	}

	for _, st := range nest.Stmts {
		executes := true
		for s := 0; s < st.Depth; s++ {
			if e.ranges[s].empty() {
				executes = false
			}
		}
		if !executes {
			continue
		}
		as := &anStmt{depth: st.Depth, flops: int64(st.Flops), reduce: st.Reduce}
		var ok bool
		if as.lhs, ok = compileRef(st.LHS, true); !ok {
			return Counts{}, false, nil
		}
		as.owner = as.lhs
		if st.Reduce {
			if anchor := anchorRead(st); anchor != nil {
				as.hasAnchor = true
				if as.anchor, ok = compileRef(*anchor, true); !ok {
					return Counts{}, false, nil
				}
				as.owner = as.anchor
			}
		}
		for _, rd := range st.Reads {
			if st.Reduce && rd.Array == st.LHS.Array {
				continue
			}
			if opts.IncludeRead != nil && !opts.IncludeRead(rd.Array) {
				continue
			}
			ref, ok := compileRef(rd, true)
			if !ok {
				return Counts{}, false, nil
			}
			as.reads = append(as.reads, ref)
		}
		// Compile the executor condition: per grid dim of the owner
		// scheme, either a pinned coordinate (gate) or a per-coordinate
		// restriction of one loop variable (constraint).
		oa := as.owner.arr
		for gd, c := range oa.s.Fixed {
			if c != dist.All {
				as.gates = append(as.gates, anGate{gd: gd, coord: c})
			}
		}
		for k := 0; k < oa.rank; k++ {
			d := oa.dims[k]
			if d.replicated {
				continue
			}
			sp := as.owner.subs[k]
			if sp.slot < 0 {
				as.gates = append(as.gates, anGate{gd: d.gd, coord: oa.s.DimCoordOf(g, k, sp.c)})
				continue
			}
			sets := make([]iset, d.n)
			for a := 0; a < d.n; a++ {
				sets[a] = intersectSets(e.ranges[sp.slot], d.pats[a].affinePreimage(sp.sign, sp.c))
			}
			as.constraints = append(as.constraints, anConstraint{slot: sp.slot, gd: d.gd, sets: sets})
		}
		e.stmts = append(e.stmts, as)
	}

	// Reduction eligibility: at most one anchored reduction per LHS array,
	// so partial-sum sets never merge across statements.
	reduceLHS := map[string]int{}
	for _, as := range e.stmts {
		if as.reduce && as.hasAnchor {
			reduceLHS[as.lhs.arr.name]++
			if reduceLHS[as.lhs.arr.name] > 1 {
				return Counts{}, false, nil
			}
		}
	}

	e.flops = make([]int64, e.nprocs)
	e.in = make([]int64, e.nprocs)
	e.out = make([]int64, e.nprocs)
	e.footprints = make([][][]rect, len(e.arrays))
	for i := range e.footprints {
		e.footprints[i] = make([][]rect, e.nprocs)
	}

	// Per-rank pass: instance counts (flops) and read footprints.
	allowed := make([]iset, len(nest.Loops))
	constrained := make([]bool, len(nest.Loops))
	for pr := 0; pr < e.nprocs; pr++ {
		q := e.rankCoords[pr]
		for _, as := range e.stmts {
			if !e.rankExecutes(as, q, allowed, constrained) {
				continue
			}
			iter, reff, hasDep := e.stmtSpace(as, allowed)
			if iter == 0 {
				continue
			}
			if !opts.SkipFlops {
				e.flops[pr] += as.flops * iter
			}
			for _, rd := range as.reads {
				r, ok, fallback := e.readRect(rd, allowed, reff, hasDep)
				if fallback {
					return Counts{}, false, nil
				}
				if !ok {
					continue
				}
				fp := e.footprints[rd.arr.idx][pr]
				dup := false
				for _, x := range fp {
					if rectEq(x, r) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				fp = append(fp, r)
				if len(fp) > maxFootprintRects {
					return Counts{}, false, nil
				}
				e.footprints[rd.arr.idx][pr] = fp
			}
		}
	}

	// Needed words: per (array, rank), the union of read footprints minus
	// the owned part; sends bill to the element's first owner, found by
	// partitioning into owner-coordinate cells.
	for _, a := range e.arrays {
		for pr := 0; pr < e.nprocs; pr++ {
			fp := e.footprints[a.idx][pr]
			if len(fp) == 0 {
				continue
			}
			total := unionCount(fp)
			owned, okOwned := a.ownedRect(e.rankCoords[pr])
			var ownedPart int64
			var fpOwned []rect
			if okOwned {
				fpOwned = intersectAll(fp, owned)
				ownedPart = unionCount(fpOwned)
			}
			need := total - ownedPart
			if need == 0 {
				continue
			}
			e.remote += need
			e.in[pr] += need
			e.forEachOwnerCell(a, func(cell rect, firstRank int) {
				c := unionCount(intersectAll(fp, cell))
				if okOwned {
					c -= unionCount(intersectAll(fpOwned, cell))
				}
				if c != 0 {
					e.out[firstRank] += c
				}
			})
		}
	}

	// Reduction combining trees.
	if !opts.SkipReduction {
		for _, as := range e.stmts {
			if !as.reduce || !as.hasAnchor {
				continue
			}
			if !e.reduceStmt(as) {
				return Counts{}, false, nil
			}
		}
	}

	var ct Counts
	ct.RemoteWords = e.remote
	ct.ReduceWords = e.reduceW
	for _, f := range e.flops {
		ct.TotalFlops += f
		if f > ct.MaxProcFlops {
			ct.MaxProcFlops = f
		}
	}
	for _, v := range e.in {
		if v > ct.MaxProcIn {
			ct.MaxProcIn = v
		}
	}
	for _, v := range e.out {
		if v > ct.MaxProcOut {
			ct.MaxProcOut = v
		}
	}
	return ct, true, nil
}

// rankExecutes fills allowed[0:depth] with the per-variable instance sets
// of rank q for stmt as, reporting false when a gate already excludes the
// rank. For dependent slots the set is the hull-range restriction; the
// per-root-value window is applied by stmtSpace.
func (e *anEngine) rankExecutes(as *anStmt, q []int, allowed []iset, constrained []bool) bool {
	for _, gt := range as.gates {
		if q[gt.gd] != gt.coord {
			return false
		}
	}
	for s := 0; s < as.depth; s++ {
		allowed[s] = e.ranges[s]
		constrained[s] = false
	}
	for _, c := range as.constraints {
		set := c.sets[q[c.gd]]
		if constrained[c.slot] {
			allowed[c.slot] = intersectSets(allowed[c.slot], set)
		} else {
			allowed[c.slot] = set
			constrained[c.slot] = true
		}
	}
	return true
}

// stmtSpace computes the rank's instance count for as over allowed[],
// together with reff — the root values carrying at least one full
// instance, which is the exact projection every root-subscript footprint
// reads from. hasDep reports whether any dependent slot lies below the
// statement's depth; when it does, the instance count is the windowed
// product sum over the root instead of a plain product.
func (e *anEngine) stmtSpace(as *anStmt, allowed []iset) (int64, iset, bool) {
	hasDep := false
	for s := 0; s < as.depth; s++ {
		if e.deps[s] != nil {
			hasDep = true
			break
		}
	}
	if !hasDep {
		iter := int64(1)
		for s := 0; s < as.depth; s++ {
			iter *= allowed[s].count()
		}
		return iter, iset{}, false
	}
	root := e.depRoot
	cons := int64(1)
	var terms []winTerm
	reff := allowed[root]
	for s := 0; s < as.depth; s++ {
		if s == root {
			continue
		}
		d := e.deps[s]
		if d == nil {
			cons *= allowed[s].count()
			continue
		}
		t := winTerm{set: allowed[s]}
		if d.low {
			t.los = append(t.los, affBound{c: d.c, k: 1})
			if mx, ok := allowed[s].maxElem(); ok {
				reff = reff.clip(bandMin, mx-d.c)
			} else {
				reff = reff.clip(1, 0)
			}
		} else {
			t.his = append(t.his, affBound{c: d.c, k: 1})
			if mn, ok := allowed[s].minElem(); ok {
				reff = reff.clip(mn-d.c, bandMax)
			} else {
				reff = reff.clip(1, 0)
			}
		}
		terms = append(terms, t)
	}
	if cons == 0 {
		return 0, reff, true
	}
	return cons * sumWindowed(allowed[root], terms), reff, true
}

// Subscript-variable kinds for footprint construction.
const (
	kConst = iota // constant subscript
	kPlain        // constant-bounded loop variable
	kRoot         // the variable dependent bounds reference
	kDep          // a variable with a dependent bound
)

// window returns the dependent slot's instance set at root value v.
func (e *anEngine) window(allowed []iset, slot, v int) iset {
	d := e.deps[slot]
	if d.low {
		return allowed[slot].clip(v+d.c, bandMax)
	}
	return allowed[slot].clip(bandMin, v+d.c)
}

// readRect builds the element rect a read touches over the instance
// sets. ok=false means the footprint is empty; fallback=true means the
// reference couples dependent variables in a shape the rect algebra
// cannot express, so the whole nest must fall back to enumeration.
//
// With dependent bounds the touched set per reference shape is:
//
//   - root-subscript sides project to reff (root values with a full
//     instance);
//   - a dependent and the root driving the two dims of one array is the
//     half-plane band  sgn_d*e_d - sgn_r*e_r >= c  (or <=) over the box
//     of the two images — exact because unit slopes make the pairing
//     per-element;
//   - dependent sides without the root collapse to the widest window,
//     reached at the extreme root value of reff (windows are nested in
//     the root), provided every dependent side of the reference opens in
//     the same direction.
func (e *anEngine) readRect(rd anRef, allowed []iset, reff iset, hasDep bool) (rect, bool, bool) {
	a := rd.arr
	kind := func(sp anSub) int {
		if sp.slot < 0 {
			return kConst
		}
		if !hasDep {
			return kPlain
		}
		if sp.slot == e.depRoot {
			return kRoot
		}
		if e.deps[sp.slot] != nil {
			return kDep
		}
		return kPlain
	}
	vStar := func(low bool) (int, bool) {
		if low {
			return reff.minElem()
		}
		return reff.maxElem()
	}
	side := func(sp anSub, k int) (iset, bool, bool) {
		switch k {
		case kConst:
			return singletonSet(sp.c), true, false
		case kPlain:
			img := allowed[sp.slot].affineImage(sp.sign, sp.c)
			return img, !img.empty(), false
		case kRoot:
			img := reff.affineImage(sp.sign, sp.c)
			return img, !img.empty(), false
		default: // kDep
			v, ok := vStar(e.deps[sp.slot].low)
			if !ok {
				return iset{}, false, false
			}
			img := e.window(allowed, sp.slot, v).affineImage(sp.sign, sp.c)
			return img, !img.empty(), false
		}
	}
	if a.rank == 1 {
		s0, ok, _ := side(rd.subs[0], kind(rd.subs[0]))
		if !ok {
			return rect{}, false, false
		}
		return prodRect(s0, singletonSet(1)), true, false
	}
	sp0, sp1 := rd.subs[0], rd.subs[1]
	k0, k1 := kind(sp0), kind(sp1)
	if sp0.slot >= 0 && sp0.slot == sp1.slot {
		// One variable drives both subscripts: a diagonal of its set.
		var base iset
		switch k0 {
		case kRoot:
			base = reff
		case kDep:
			v, ok := vStar(e.deps[sp0.slot].low)
			if !ok {
				return rect{}, false, false
			}
			base = e.window(allowed, sp0.slot, v)
		default:
			base = allowed[sp0.slot]
		}
		if base.empty() {
			return rect{}, false, false
		}
		return diagRect(base, sp0.sign, sp0.c, sp1.sign, sp1.c), true, false
	}
	if (k0 == kDep && k1 == kRoot) || (k0 == kRoot && k1 == kDep) {
		// The dependent variable and its root drive the two dims: the
		// band  sgn_d*e_d - sgn_r*e_r >= gamma  over the image box.
		dsp, rsp, ddim := sp0, sp1, 0
		if k0 == kRoot {
			dsp, rsp, ddim = sp1, sp0, 1
		}
		d := e.deps[dsp.slot]
		dImg := allowed[dsp.slot].affineImage(dsp.sign, dsp.c)
		rImg := reff.affineImage(rsp.sign, rsp.c)
		var r rect
		if ddim == 0 {
			r = prodRect(dImg, rImg)
		} else {
			r = prodRect(rImg, dImg)
		}
		gamma := d.c + dsp.sign*dsp.c - rsp.sign*rsp.c
		if ddim == 0 {
			r = r.halfPlane(dsp.sign, -rsp.sign, gamma, d.low)
		} else {
			r = r.halfPlane(-rsp.sign, dsp.sign, gamma, d.low)
		}
		if r.count() == 0 {
			return rect{}, false, false
		}
		return r, true, false
	}
	if k0 == kDep && k1 == kDep && e.deps[sp0.slot].low != e.deps[sp1.slot].low {
		// Two dependent variables whose windows open in opposite
		// directions: their union over the root is not one box.
		return rect{}, false, true
	}
	s0, ok0, _ := side(sp0, k0)
	s1, ok1, _ := side(sp1, k1)
	if !ok0 || !ok1 {
		return rect{}, false, false
	}
	return prodRect(s0, s1), true, false
}

// intersectAll intersects every rect with r, dropping provably empty
// results.
func intersectAll(rs []rect, r rect) []rect {
	out := make([]rect, 0, len(rs))
	for _, x := range rs {
		if y, ok := intersectRect(x, r); ok {
			out = append(out, y)
		}
	}
	return out
}

// forEachOwnerCell partitions array a's element space by first-owner rank:
// one cell per combination of owner coordinates of the mapped dims, with
// replicated dims, Fixed=All dims, and All coordinates contributing the
// canonical coordinate 0, exactly as Scheme.Owners' first entry does.
func (e *anEngine) forEachOwnerCell(a *anArray, visit func(cell rect, firstRank int)) {
	base := 0
	for gd, c := range a.s.Fixed {
		if c != dist.All {
			base += c * e.strides[gd]
		}
	}
	dimChoices := func(k int) ([]iset, []int) {
		if k >= a.rank {
			return []iset{singletonSet(1)}, []int{0}
		}
		d := a.dims[k]
		if d.replicated {
			return []iset{fullSet(1, a.sizes[k])}, []int{0}
		}
		adds := make([]int, d.n)
		for c := 0; c < d.n; c++ {
			adds[c] = c * e.strides[d.gd]
		}
		return d.pats, adds
	}
	sets0, adds0 := dimChoices(0)
	sets1, adds1 := dimChoices(1)
	for c0, s0 := range sets0 {
		if s0.empty() {
			continue
		}
		for c1, s1 := range sets1 {
			if s1.empty() {
				continue
			}
			visit(prodRect(s0, s1), base+adds0[c0]+adds1[c1])
		}
	}
}

// uMask gates one grid dimension's coordinates for the elements of one
// reduction cell: the per-coordinate reach of a dependent bound between
// the reduced variable and a free variable.
type uMask struct {
	gd int
	ok []bool
}

// varCombo is one cell of a reduction variable's value space: cnt values
// sharing the same anchor-owner coordinates (pins), the same first-owner
// contribution to the combining root (rootAdd), and the same
// dependent-reach masks.
type varCombo struct {
	cnt     int64
	pins    []anGate
	rootAdd int
	masks   []uMask
}

// uCut cuts a reduction variable's value space at per-coordinate reach
// thresholds: coordinate a of grid dim gd holds partials of element u
// iff u <= thr[a] (upper) or u >= thr[a] (lower).
type uCut struct {
	gd    int
	upper bool
	thr   []int
}

// redC is one per-coordinate constraint on a reduction variable: an
// anchor dim (pinning a grid coordinate of the partial holders) or an LHS
// dim (selecting the root's coordinate, worth a*stride of rank).
type redC struct {
	gd     int
	stride int
	anchor bool
	sets   []iset
}

// pairCond couples two grid coordinates through one free variable that
// drives both anchor subscripts (a diagonal anchor reference).
type pairCond struct {
	gd0, gd1 int
	n1       int
	ok       []bool
}

func (as *anStmt) constraintSets(slot, gd int) []iset {
	for _, c := range as.constraints {
		if c.slot == slot && c.gd == gd {
			return c.sets
		}
	}
	return nil
}

// reduceStmt prices the combining tree of one anchored reduction in
// closed form. The walker's semantics: the partial-sum holders of one LHS
// element are the anchor owners over every instance writing it; all
// non-root holders send one word, and the root receives Log2Ceil(n)
// tree-level words (or a single transfer when the only holder is not the
// root); under PipelinedReduction the holders instead form the Section 5
// ring in rank order. Both the holder set and the root are constant on
// cells of the LHS-variable value space cut by the anchor and LHS owner
// patterns — plus, when a dependent bound ties the reduced variable to a
// free variable, at the per-coordinate reach thresholds of that bound.
// Reports false to request fallback when the cell enumeration would blow
// up or the dependence shape is outside the supported couplings.
func (e *anEngine) reduceStmt(as *anStmt) bool {
	la := as.lhs.arr
	aa := as.anchor.arr

	// Root rank contributions that do not depend on the reduced element:
	// the LHS scheme's Fixed coordinates (All acts as 0 in a first owner)
	// plus mapped dims with constant subscripts; replicated dims
	// contribute 0.
	rootBase := 0
	for gd, c := range la.s.Fixed {
		if c != dist.All {
			rootBase += c * e.strides[gd]
		}
	}
	inU := map[int]bool{}
	for k := 0; k < la.rank; k++ {
		sp := as.lhs.subs[k]
		if sp.slot >= 0 {
			inU[sp.slot] = true
		}
		d := la.dims[k]
		if d.replicated {
			continue
		}
		if sp.slot < 0 {
			rootBase += la.s.DimCoordOf(e.g, k, sp.c) * e.strides[d.gd]
		}
	}

	// Holder-set conditions that do not depend on the reduced element:
	// anchor Fixed pins, constant-subscript pins, and for free variables
	// the coordinates their loop range can reach.
	pinBase := make([]int, e.q)
	for gd := range pinBase {
		pinBase[gd] = -1
	}
	for gd, c := range aa.s.Fixed {
		if c != dist.All {
			pinBase[gd] = c
		}
	}
	coordAllowed := map[int][]bool{}
	var pairs []pairCond
	freeDims := map[int][]int{}
	for k := 0; k < aa.rank; k++ {
		d := aa.dims[k]
		if d.replicated {
			continue
		}
		sp := as.anchor.subs[k]
		if sp.slot < 0 {
			pinBase[d.gd] = aa.s.DimCoordOf(e.g, k, sp.c)
			continue
		}
		if !inU[sp.slot] {
			freeDims[sp.slot] = append(freeDims[sp.slot], k)
		}
	}

	// Dependent-bound coupling: when the reduced variable and a free
	// variable share a dependent bound, holder membership varies with the
	// element — a per-coordinate threshold on the reduced value.
	root := e.depRoot
	coupled := map[int]bool{}
	uCuts := map[int][]uCut{}
	for s := 0; s < as.depth; s++ {
		d := e.deps[s]
		if d == nil {
			continue
		}
		switch {
		case inU[s] && !inU[root] && len(freeDims[root]) > 0:
			// Reduced variable bounded by the free root (gauss back
			// substitution): coordinate a holds u iff the root's owned
			// values reach past u.
			if len(freeDims[root]) != 1 {
				return false
			}
			gd := aa.dims[freeDims[root][0]].gd
			sets := as.constraintSets(root, gd)
			thr := make([]int, len(sets))
			for a2, S := range sets {
				if d.low {
					// u >= v + c: holds iff min(S) + c <= u.
					if mn, ok := S.minElem(); ok {
						thr[a2] = mn + d.c
					} else {
						thr[a2] = bandMax
					}
				} else {
					// u <= v + c: holds iff u <= max(S) + c.
					if mx, ok := S.maxElem(); ok {
						thr[a2] = mx + d.c
					} else {
						thr[a2] = bandMin
					}
				}
			}
			uCuts[s] = append(uCuts[s], uCut{gd: gd, upper: !d.low, thr: thr})
			coupled[root] = true
		case inU[root] && !inU[s] && len(freeDims[s]) > 0:
			// Free variable bounded by the reduced root: coordinate a
			// holds u iff its owned values intersect [u+c, hi] / [lo, u+c].
			if len(freeDims[s]) != 1 {
				return false
			}
			gd := aa.dims[freeDims[s][0]].gd
			sets := as.constraintSets(s, gd)
			thr := make([]int, len(sets))
			for a2, S := range sets {
				if d.low {
					if mx, ok := S.maxElem(); ok {
						thr[a2] = mx - d.c
					} else {
						thr[a2] = bandMin
					}
				} else {
					if mn, ok := S.minElem(); ok {
						thr[a2] = mn - d.c
					} else {
						thr[a2] = bandMax
					}
				}
			}
			uCuts[root] = append(uCuts[root], uCut{gd: gd, upper: d.low, thr: thr})
			coupled[s] = true
		case inU[s] && !inU[root] && len(freeDims[root]) == 0:
			// Spectator root: every hull value of u executes for some
			// root value, and the root drives no holder coordinate.
		case !inU[s] && len(freeDims[s]) == 0:
			// Spectator dependent slot: it neither shapes elements nor
			// holders, but its window can empty out part of the root's
			// value space — only safe when the root is also a spectator
			// (the constraint sets below already carry the hull).
			return false
		default:
			return false
		}
	}
	if len(uCuts) > 0 && len(pairs) > 0 {
		return false
	}

	for slot, ks := range freeDims {
		if coupled[slot] {
			continue // superseded by the reach thresholds
		}
		if len(ks) == 1 {
			d := aa.dims[ks[0]]
			sets := as.constraintSets(slot, d.gd)
			all := make([]bool, d.n)
			for a := range sets {
				all[a] = !sets[a].empty()
			}
			coordAllowed[d.gd] = all
			continue
		}
		d0, d1 := aa.dims[ks[0]], aa.dims[ks[1]]
		s0 := as.constraintSets(slot, d0.gd)
		s1 := as.constraintSets(slot, d1.gd)
		ok := make([]bool, d0.n*d1.n)
		for a0 := range s0 {
			for a1 := range s1 {
				if !intersectSets(s0[a0], s1[a1]).empty() {
					ok[a0*d1.n+a1] = true
				}
			}
		}
		pairs = append(pairs, pairCond{gd0: d0.gd, gd1: d1.gd, n1: d1.n, ok: ok})
	}
	if len(uCuts) > 0 && len(pairs) > 0 {
		return false
	}

	// Per-LHS-variable cells.
	var uSlots []int
	for s := 0; s < as.depth; s++ {
		if inU[s] {
			uSlots = append(uSlots, s)
		}
	}
	perVar := make([][]varCombo, len(uSlots))
	totalCombos := 1
	for vi, slot := range uSlots {
		var cs []redC
		for k := 0; k < aa.rank; k++ {
			d := aa.dims[k]
			sp := as.anchor.subs[k]
			if !d.replicated && sp.slot == slot {
				cs = append(cs, redC{gd: d.gd, anchor: true, sets: as.constraintSets(slot, d.gd)})
			}
		}
		for k := 0; k < la.rank; k++ {
			d := la.dims[k]
			sp := as.lhs.subs[k]
			if d.replicated || sp.slot != slot {
				continue
			}
			sets := make([]iset, d.n)
			for a := 0; a < d.n; a++ {
				sets[a] = intersectSets(e.ranges[slot], d.pats[a].affinePreimage(sp.sign, sp.c))
			}
			cs = append(cs, redC{gd: d.gd, stride: e.strides[d.gd], sets: sets})
		}
		cuts := uCuts[slot]
		var combos []varCombo
		leaf := func(acc iset, pins []anGate, rootAdd int) {
			if len(cuts) == 0 {
				if c := acc.count(); c > 0 {
					combos = append(combos, varCombo{cnt: c, pins: append([]anGate(nil), pins...), rootAdd: rootAdd})
				}
				return
			}
			// Split the cell at every reach boundary so membership is
			// uniform per piece.
			var bs []int
			for _, ct := range cuts {
				for _, t := range ct.thr {
					b := t
					if ct.upper {
						b = t + 1
					}
					if b > acc.lo && b <= acc.hi {
						bs = append(bs, b)
					}
				}
			}
			sortInts(bs)
			bs = dedupInts(bs)
			l := acc.lo
			for i := 0; i <= len(bs); i++ {
				h := acc.hi
				if i < len(bs) {
					h = bs[i] - 1
				}
				if h >= l {
					if c := acc.countIn(l, h); c > 0 {
						masks := make([]uMask, len(cuts))
						for ci, ct := range cuts {
							okc := make([]bool, len(ct.thr))
							for a2, t := range ct.thr {
								if ct.upper {
									okc[a2] = h <= t
								} else {
									okc[a2] = l >= t
								}
							}
							masks[ci] = uMask{gd: ct.gd, ok: okc}
						}
						combos = append(combos, varCombo{cnt: c, pins: append([]anGate(nil), pins...), rootAdd: rootAdd, masks: masks})
					}
				}
				if i < len(bs) {
					l = bs[i]
				}
			}
		}
		var rec func(ci int, acc iset, pins []anGate, rootAdd int)
		rec = func(ci int, acc iset, pins []anGate, rootAdd int) {
			if ci == len(cs) {
				leaf(acc, pins, rootAdd)
				return
			}
			c := cs[ci]
			for a, set := range c.sets {
				x := intersectSets(acc, set)
				if x.empty() {
					continue
				}
				if c.anchor {
					rec(ci+1, x, append(pins, anGate{gd: c.gd, coord: a}), rootAdd)
				} else {
					rec(ci+1, x, pins, rootAdd+a*c.stride)
				}
			}
		}
		rec(0, e.ranges[slot], nil, 0)
		perVar[vi] = combos
		totalCombos *= len(combos)
		if totalCombos > maxReduceCombos {
			return false
		}
	}

	// Walk the cross product of per-variable cells; each cell holds cnt
	// reduced elements with identical holder set and root.
	pins := make([]int, e.q)
	var members []int
	var emit func(vi int, cnt int64, rootAdd int, varPins []anGate, varMasks []uMask)
	emit = func(vi int, cnt int64, rootAdd int, varPins []anGate, varMasks []uMask) {
		if vi < len(uSlots) {
			for _, cb := range perVar[vi] {
				emit(vi+1, cnt*cb.cnt, rootAdd+cb.rootAdd,
					append(varPins, cb.pins...), append(varMasks, cb.masks...))
			}
			return
		}
		root := rootBase + rootAdd
		copy(pins, pinBase)
		for _, g := range varPins {
			pins[g.gd] = g.coord
		}
		// members stays in increasing rank order — the chain order the
		// walker sorts into for the ring.
		members = members[:0]
		for pr := 0; pr < e.nprocs; pr++ {
			q := e.rankCoords[pr]
			ok := true
			for gd := 0; gd < e.q; gd++ {
				if pins[gd] >= 0 && q[gd] != pins[gd] {
					ok = false
					break
				}
				if ca := coordAllowed[gd]; ok && ca != nil && !ca[q[gd]] {
					ok = false
					break
				}
			}
			if ok {
				for _, mk := range varMasks {
					if !mk.ok[q[mk.gd]] {
						ok = false
						break
					}
				}
			}
			if ok {
				for _, pc := range pairs {
					if !pc.ok[q[pc.gd0]*pc.n1+q[pc.gd1]] {
						ok = false
						break
					}
				}
			}
			if ok {
				members = append(members, pr)
			}
		}
		n := len(members)
		switch {
		case n == 0:
		case n == 1:
			if pr := members[0]; pr != root {
				e.reduceW += cnt
				e.out[pr] += cnt
				e.in[root] += cnt
			}
		case e.opts.PipelinedReduction:
			// Section 5 ring: the running total visits the holders in
			// rank order, one word per hop; the last holder closes the
			// ring back to the root.
			for i := 1; i < n; i++ {
				e.out[members[i-1]] += cnt
				e.in[members[i]] += cnt
			}
			e.reduceW += int64(n-1) * cnt
			if last := members[n-1]; last != root {
				e.reduceW += cnt
				e.out[last] += cnt
				e.in[root] += cnt
			}
		default:
			rootIn := false
			for _, pr := range members {
				if pr == root {
					rootIn = true
				} else {
					e.out[pr] += cnt
				}
			}
			nonRoot := int64(n)
			if rootIn {
				nonRoot--
			}
			e.reduceW += nonRoot * cnt
			e.in[root] += int64(Log2Ceil(n)) * cnt
		}
	}
	emit(0, 1, 0, []anGate{}, []uMask{})
	return true
}

// constAff evaluates an affine expression that must be constant under
// bind.
func constAff(a ir.Affine, bind map[string]int) (int, bool) {
	v := a.Const
	for name, c := range a.Coeff {
		if c == 0 {
			continue
		}
		bv, ok := bind[name]
		if !ok {
			return 0, false
		}
		v += c * bv
	}
	return v, true
}

// depAff recognizes a bound of the form outer_var + c: exactly one loop
// variable, unit coefficient, all other terms constant under bind.
func depAff(a ir.Affine, bind map[string]int, slotOf map[string]int) (slot, c int, ok bool) {
	slot = -1
	c = a.Const
	for v, cf := range a.Coeff {
		if cf == 0 {
			continue
		}
		if s, isVar := slotOf[v]; isVar {
			if slot >= 0 || cf != 1 {
				return 0, 0, false
			}
			slot = s
			continue
		}
		bv, okB := bind[v]
		if !okB {
			return 0, 0, false
		}
		c += cf * bv
	}
	if slot < 0 {
		return 0, 0, false
	}
	return slot, c, true
}

// compileSub compiles a subscript into sign*var + c form; ok=false when
// it has more than one loop variable or a non-unit coefficient.
func compileSub(a ir.Affine, bind map[string]int, slotOf map[string]int) (anSub, bool) {
	out := anSub{slot: -1, c: a.Const}
	for v, c := range a.Coeff {
		if c == 0 {
			continue
		}
		if slot, ok := slotOf[v]; ok {
			if out.slot >= 0 {
				return anSub{}, false
			}
			if c != 1 && c != -1 {
				return anSub{}, false
			}
			out.slot = slot
			out.sign = c
			continue
		}
		bv, ok := bind[v]
		if !ok {
			return anSub{}, false
		}
		out.c += c * bv
	}
	return out, true
}

// subInRange checks that the subscript stays inside [1, size] over its
// variable's full loop range (the walker would panic outside the array).
func subInRange(sp anSub, ranges []iset, size int) bool {
	if sp.slot < 0 {
		return sp.c >= 1 && sp.c <= size
	}
	r := ranges[sp.slot]
	if r.hi < r.lo {
		return true // never evaluated
	}
	img := r.affineImage(sp.sign, sp.c)
	return img.lo >= 1 && img.hi <= size
}
