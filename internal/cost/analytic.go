// Closed-form nest counting: the RedistLoads treatment applied to
// CountNestOptsExact. For rectangular affine nests under block / cyclic /
// replicated / displaced schemes, every quantity the exact walker tallies
// by enumerating the iteration space is a function of per-dimension index
// sets:
//
//   - the instances a processor executes are, per loop variable, the loop
//     range intersected with the affine preimage of the owner-coordinate's
//     owned pattern (an iset), so instance counts factorize across loop
//     variables;
//   - the elements a processor reads are images of those per-variable
//     sets under the read subscripts — products of isets, or diagonals
//     when one variable drives two subscripts — and the globally deduped
//     (element, processor) "needed" pairs of the walker are counts of
//     unions of such rects, by inclusion-exclusion, minus the part the
//     processor owns;
//   - send attribution and reduction combining trees partition the
//     element space into owner-coordinate cells, exactly like
//     RedistLoads' per-dimension joint count tables.
//
// Everything is exact int64 arithmetic, so the Counts returned here are
// identical — not approximately, but word for word — to the enumeration's,
// while the cost is independent of the loop extents. Nests or schemes
// outside the eligible class (triangular bounds, rotation, non-unit
// subscript coefficients, out-of-range subscripts) report ok=false and
// fall back to the optimized walker.
package cost

import (
	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

const (
	// maxAnalyticPeriod bounds the residue-set periods (lcm of N*Block
	// over cyclic dims) the closed forms will carry before bailing out.
	maxAnalyticPeriod = 4096
	// maxFootprintRects bounds the per-(array, processor) rect-union size;
	// inclusion-exclusion is exponential in it.
	maxFootprintRects = 10
	// maxReduceCombos bounds the owner-coordinate cell enumeration of one
	// reduction statement.
	maxReduceCombos = 1 << 14
)

// anSub is a compiled subscript: sign*var + c, or the constant c when
// slot < 0. Bound size parameters are folded into c.
type anSub struct {
	slot int
	sign int
	c    int
}

// anDim is the ownership structure of one array dimension.
type anDim struct {
	replicated bool
	gd         int    // mapped grid dimension
	n          int    // its extent
	pats       []iset // owned index pattern per grid coordinate (nil when replicated)
}

type anArray struct {
	name  string
	idx   int
	rank  int
	s     dist.Scheme
	sizes [2]int
	dims  [2]anDim
}

// ownedRect returns the element set rank coordinates q own, and whether
// the scheme's Fixed entries admit this rank at all.
func (a *anArray) ownedRect(q []int) (rect, bool) {
	for gd, c := range a.s.Fixed {
		if c != dist.All && c != q[gd] {
			return rect{}, false
		}
	}
	var sets [2]iset
	for k := 0; k < a.rank; k++ {
		d := a.dims[k]
		if d.replicated {
			sets[k] = fullSet(1, a.sizes[k])
		} else {
			sets[k] = d.pats[q[d.gd]]
		}
	}
	if a.rank == 1 {
		sets[1] = singletonSet(1)
	}
	return prodRect(sets[0], sets[1]), true
}

type anRef struct {
	arr  *anArray
	subs [2]anSub
}

// anGate pins one grid coordinate of an executing rank.
type anGate struct{ gd, coord int }

// anConstraint restricts one loop variable per owner grid coordinate:
// sets[a] = loop range ∩ preimage of coordinate a's owned pattern.
type anConstraint struct {
	slot int
	gd   int
	sets []iset
}

type anStmt struct {
	depth       int
	flops       int64
	reduce      bool
	hasAnchor   bool
	lhs, anchor anRef
	owner       anRef
	reads       []anRef
	gates       []anGate
	constraints []anConstraint
}

type anEngine struct {
	g          *grid.Grid
	nprocs     int
	q          int
	strides    []int
	rankCoords [][]int
	ranges     []iset // per loop slot
	arrays     []*anArray
	stmts      []*anStmt
	opts       CountOptions

	flops []int64
	in    []int64
	out   []int64
	// footprints[arrayIdx][rank] accumulates read rects.
	footprints [][][]rect
	remote     int64
	reduceW    int64
}

// countNestAnalytic computes CountNestOptsExact's Counts in closed form.
// ok=false means the nest or schemes are outside the eligible class and
// the caller must fall back to enumeration. The caller has already
// validated the nest.
func countNestAnalytic(p *ir.Program, nest *ir.Nest, schemes map[string]dist.Scheme, g *grid.Grid, bind map[string]int, opts CountOptions) (Counts, bool, error) {
	// The closed forms price reduction cells with the converge-on-root
	// tree; the Section 5 ring's per-processor in/out chain accounting
	// has no closed form here yet (ROADMAP: rotated-scheme follow-up),
	// so pipelined pricing falls back to the compiled walker.
	if opts.PipelinedReduction {
		return Counts{}, false, nil
	}
	e := &anEngine{g: g, nprocs: g.Size(), q: g.Q(), opts: opts}
	e.strides = make([]int, e.q)
	stride := 1
	for gd := e.q - 1; gd >= 0; gd-- {
		e.strides[gd] = stride
		stride *= g.Extent(gd)
	}
	e.rankCoords = make([][]int, e.nprocs)
	for r := 0; r < e.nprocs; r++ {
		e.rankCoords[r] = make([]int, e.q)
		for gd := 0; gd < e.q; gd++ {
			e.rankCoords[r][gd] = g.Coord(r, gd)
		}
	}

	// Loop ranges must be rectangular: constant bounds once parameters are
	// bound. The walker's range semantics: an upward loop covers [lo, hi],
	// a downward loop [hi, lo]; either may be empty.
	slotOf := map[string]int{}
	for s, l := range nest.Loops {
		slotOf[l.Index] = s
	}
	e.ranges = make([]iset, len(nest.Loops))
	for s, l := range nest.Loops {
		lo, okLo := constAff(l.Lo, bind)
		hi, okHi := constAff(l.Hi, bind)
		if !okLo || !okHi {
			return Counts{}, false, nil
		}
		if l.Step >= 0 {
			e.ranges[s] = fullSet(lo, hi)
		} else {
			e.ranges[s] = fullSet(hi, lo)
		}
	}

	arrIdx := map[string]*anArray{}
	periodLCM := 1
	arrayOf := func(name string) (*anArray, bool) {
		if a, ok := arrIdx[name]; ok {
			return a, true
		}
		s := schemes[name]
		if s.Rot != dist.NoRotation {
			return nil, false
		}
		shape, err := arrayShape(p, name, bind)
		if err != nil {
			return nil, false
		}
		a := &anArray{name: name, idx: len(e.arrays), rank: len(shape), s: s}
		for k := 0; k < a.rank; k++ {
			a.sizes[k] = shape[k]
			d := s.Dims[k]
			if d.Replicated {
				a.dims[k] = anDim{replicated: true, gd: d.GridDim}
				continue
			}
			n := g.Extent(d.GridDim)
			pats := make([]iset, n)
			for c := 0; c < n; c++ {
				pats[c] = setFromPattern(dist.OwnedPatternOf(d, n, c, shape[k]))
				periodLCM = lcmInt(periodLCM, pats[c].p)
				if periodLCM > maxAnalyticPeriod {
					return nil, false
				}
			}
			a.dims[k] = anDim{gd: d.GridDim, n: n, pats: pats}
		}
		arrIdx[name] = a
		e.arrays = append(e.arrays, a)
		return a, true
	}

	compileRef := func(r ir.Ref, needInRange bool) (anRef, bool) {
		a, ok := arrayOf(r.Array)
		if !ok {
			return anRef{}, false
		}
		out := anRef{arr: a}
		for k, sub := range r.Subs {
			sp, ok := compileSub(sub, bind, slotOf)
			if !ok {
				return anRef{}, false
			}
			if needInRange && !subInRange(sp, e.ranges, a.sizes[k]) {
				return anRef{}, false
			}
			out.subs[k] = sp
		}
		return out, true
	}

	for _, st := range nest.Stmts {
		executes := true
		for s := 0; s < st.Depth; s++ {
			if e.ranges[s].empty() {
				executes = false
			}
		}
		if !executes {
			continue
		}
		as := &anStmt{depth: st.Depth, flops: int64(st.Flops), reduce: st.Reduce}
		var ok bool
		if as.lhs, ok = compileRef(st.LHS, true); !ok {
			return Counts{}, false, nil
		}
		as.owner = as.lhs
		if st.Reduce {
			if anchor := anchorRead(st); anchor != nil {
				as.hasAnchor = true
				if as.anchor, ok = compileRef(*anchor, true); !ok {
					return Counts{}, false, nil
				}
				as.owner = as.anchor
			}
		}
		for _, rd := range st.Reads {
			if st.Reduce && rd.Array == st.LHS.Array {
				continue
			}
			if opts.IncludeRead != nil && !opts.IncludeRead(rd.Array) {
				continue
			}
			ref, ok := compileRef(rd, true)
			if !ok {
				return Counts{}, false, nil
			}
			as.reads = append(as.reads, ref)
		}
		// Compile the executor condition: per grid dim of the owner
		// scheme, either a pinned coordinate (gate) or a per-coordinate
		// restriction of one loop variable (constraint).
		oa := as.owner.arr
		for gd, c := range oa.s.Fixed {
			if c != dist.All {
				as.gates = append(as.gates, anGate{gd: gd, coord: c})
			}
		}
		for k := 0; k < oa.rank; k++ {
			d := oa.dims[k]
			if d.replicated {
				continue
			}
			sp := as.owner.subs[k]
			if sp.slot < 0 {
				as.gates = append(as.gates, anGate{gd: d.gd, coord: oa.s.DimCoordOf(g, k, sp.c)})
				continue
			}
			sets := make([]iset, d.n)
			for a := 0; a < d.n; a++ {
				sets[a] = intersectSets(e.ranges[sp.slot], d.pats[a].affinePreimage(sp.sign, sp.c))
			}
			as.constraints = append(as.constraints, anConstraint{slot: sp.slot, gd: d.gd, sets: sets})
		}
		e.stmts = append(e.stmts, as)
	}

	// Reduction eligibility: at most one anchored reduction per LHS array,
	// so partial-sum sets never merge across statements.
	reduceLHS := map[string]int{}
	for _, as := range e.stmts {
		if as.reduce && as.hasAnchor {
			reduceLHS[as.lhs.arr.name]++
			if reduceLHS[as.lhs.arr.name] > 1 {
				return Counts{}, false, nil
			}
		}
	}

	e.flops = make([]int64, e.nprocs)
	e.in = make([]int64, e.nprocs)
	e.out = make([]int64, e.nprocs)
	e.footprints = make([][][]rect, len(e.arrays))
	for i := range e.footprints {
		e.footprints[i] = make([][]rect, e.nprocs)
	}

	// Per-rank pass: instance counts (flops) and read footprints.
	allowed := make([]iset, len(nest.Loops))
	constrained := make([]bool, len(nest.Loops))
	for pr := 0; pr < e.nprocs; pr++ {
		q := e.rankCoords[pr]
		for _, as := range e.stmts {
			if !e.rankExecutes(as, q, allowed, constrained) {
				continue
			}
			iter := int64(1)
			for s := 0; s < as.depth; s++ {
				iter *= allowed[s].count()
			}
			if iter == 0 {
				continue
			}
			if !opts.SkipFlops {
				e.flops[pr] += as.flops * iter
			}
			for _, rd := range as.reads {
				r, ok := e.readRect(rd, allowed)
				if !ok {
					continue
				}
				fp := append(e.footprints[rd.arr.idx][pr], r)
				if len(fp) > maxFootprintRects {
					return Counts{}, false, nil
				}
				e.footprints[rd.arr.idx][pr] = fp
			}
		}
	}

	// Needed words: per (array, rank), the union of read footprints minus
	// the owned part; sends bill to the element's first owner, found by
	// partitioning into owner-coordinate cells.
	for _, a := range e.arrays {
		for pr := 0; pr < e.nprocs; pr++ {
			fp := e.footprints[a.idx][pr]
			if len(fp) == 0 {
				continue
			}
			total := unionCount(fp)
			owned, okOwned := a.ownedRect(e.rankCoords[pr])
			var ownedPart int64
			var fpOwned []rect
			if okOwned {
				fpOwned = intersectAll(fp, owned)
				ownedPart = unionCount(fpOwned)
			}
			need := total - ownedPart
			if need == 0 {
				continue
			}
			e.remote += need
			e.in[pr] += need
			e.forEachOwnerCell(a, func(cell rect, firstRank int) {
				c := unionCount(intersectAll(fp, cell))
				if okOwned {
					c -= unionCount(intersectAll(fpOwned, cell))
				}
				if c != 0 {
					e.out[firstRank] += c
				}
			})
		}
	}

	// Reduction combining trees.
	if !opts.SkipReduction {
		for _, as := range e.stmts {
			if !as.reduce || !as.hasAnchor {
				continue
			}
			if !e.reduceStmt(as) {
				return Counts{}, false, nil
			}
		}
	}

	var ct Counts
	ct.RemoteWords = e.remote
	ct.ReduceWords = e.reduceW
	for _, f := range e.flops {
		ct.TotalFlops += f
		if f > ct.MaxProcFlops {
			ct.MaxProcFlops = f
		}
	}
	for _, v := range e.in {
		if v > ct.MaxProcIn {
			ct.MaxProcIn = v
		}
	}
	for _, v := range e.out {
		if v > ct.MaxProcOut {
			ct.MaxProcOut = v
		}
	}
	return ct, true, nil
}

// rankExecutes fills allowed[0:depth] with the per-variable instance sets
// of rank q for stmt as, reporting false when a gate already excludes the
// rank.
func (e *anEngine) rankExecutes(as *anStmt, q []int, allowed []iset, constrained []bool) bool {
	for _, gt := range as.gates {
		if q[gt.gd] != gt.coord {
			return false
		}
	}
	for s := 0; s < as.depth; s++ {
		allowed[s] = e.ranges[s]
		constrained[s] = false
	}
	for _, c := range as.constraints {
		set := c.sets[q[c.gd]]
		if constrained[c.slot] {
			allowed[c.slot] = intersectSets(allowed[c.slot], set)
		} else {
			allowed[c.slot] = set
			constrained[c.slot] = true
		}
	}
	return true
}

// readRect builds the element rect a read touches over the instance sets.
// ok=false means the footprint is empty.
func (e *anEngine) readRect(rd anRef, allowed []iset) (rect, bool) {
	a := rd.arr
	if a.rank == 1 {
		s0, ok := subImage(rd.subs[0], allowed)
		if !ok {
			return rect{}, false
		}
		return prodRect(s0, singletonSet(1)), true
	}
	sp0, sp1 := rd.subs[0], rd.subs[1]
	if sp0.slot >= 0 && sp0.slot == sp1.slot {
		base := allowed[sp0.slot]
		if base.empty() {
			return rect{}, false
		}
		return diagRect(base, sp0.sign, sp0.c, sp1.sign, sp1.c), true
	}
	s0, ok0 := subImage(sp0, allowed)
	s1, ok1 := subImage(sp1, allowed)
	if !ok0 || !ok1 {
		return rect{}, false
	}
	return prodRect(s0, s1), true
}

func subImage(sp anSub, allowed []iset) (iset, bool) {
	if sp.slot < 0 {
		return singletonSet(sp.c), true
	}
	img := allowed[sp.slot].affineImage(sp.sign, sp.c)
	return img, !img.empty()
}

// intersectAll intersects every rect with r, dropping provably empty
// results.
func intersectAll(rs []rect, r rect) []rect {
	out := make([]rect, 0, len(rs))
	for _, x := range rs {
		if y, ok := intersectRect(x, r); ok {
			out = append(out, y)
		}
	}
	return out
}

// forEachOwnerCell partitions array a's element space by first-owner rank:
// one cell per combination of owner coordinates of the mapped dims, with
// replicated dims, Fixed=All dims, and All coordinates contributing the
// canonical coordinate 0, exactly as Scheme.Owners' first entry does.
func (e *anEngine) forEachOwnerCell(a *anArray, visit func(cell rect, firstRank int)) {
	base := 0
	for gd, c := range a.s.Fixed {
		if c != dist.All {
			base += c * e.strides[gd]
		}
	}
	dimChoices := func(k int) ([]iset, []int) {
		if k >= a.rank {
			return []iset{singletonSet(1)}, []int{0}
		}
		d := a.dims[k]
		if d.replicated {
			return []iset{fullSet(1, a.sizes[k])}, []int{0}
		}
		adds := make([]int, d.n)
		for c := 0; c < d.n; c++ {
			adds[c] = c * e.strides[d.gd]
		}
		return d.pats, adds
	}
	sets0, adds0 := dimChoices(0)
	sets1, adds1 := dimChoices(1)
	for c0, s0 := range sets0 {
		if s0.empty() {
			continue
		}
		for c1, s1 := range sets1 {
			if s1.empty() {
				continue
			}
			visit(prodRect(s0, s1), base+adds0[c0]+adds1[c1])
		}
	}
}

// varCombo is one cell of a reduction variable's value space: cnt values
// sharing the same anchor-owner coordinates (pins) and the same
// first-owner contribution to the combining root (rootAdd).
type varCombo struct {
	cnt     int64
	pins    []anGate
	rootAdd int
}

// redC is one per-coordinate constraint on a reduction variable: an
// anchor dim (pinning a grid coordinate of the partial holders) or an LHS
// dim (selecting the root's coordinate, worth a*stride of rank).
type redC struct {
	gd     int
	stride int
	anchor bool
	sets   []iset
}

// pairCond couples two grid coordinates through one free variable that
// drives both anchor subscripts (a diagonal anchor reference).
type pairCond struct {
	gd0, gd1 int
	n1       int
	ok       []bool
}

func (as *anStmt) constraintSets(slot, gd int) []iset {
	for _, c := range as.constraints {
		if c.slot == slot && c.gd == gd {
			return c.sets
		}
	}
	return nil
}

// reduceStmt prices the combining tree of one anchored reduction in
// closed form. The walker's semantics: the partial-sum holders of one LHS
// element are the anchor owners over every instance writing it; all
// non-root holders send one word, and the root receives Log2Ceil(n)
// tree-level words (or a single transfer when the only holder is not the
// root). Both the holder set and the root are constant on cells of the
// LHS-variable value space cut by the anchor and LHS owner patterns, so
// the accounting is a sum over those cells. Reports false to request
// fallback when the cell enumeration would blow up.
func (e *anEngine) reduceStmt(as *anStmt) bool {
	la := as.lhs.arr
	aa := as.anchor.arr

	// Root rank contributions that do not depend on the reduced element:
	// the LHS scheme's Fixed coordinates (All acts as 0 in a first owner)
	// plus mapped dims with constant subscripts; replicated dims
	// contribute 0.
	rootBase := 0
	for gd, c := range la.s.Fixed {
		if c != dist.All {
			rootBase += c * e.strides[gd]
		}
	}
	inU := map[int]bool{}
	for k := 0; k < la.rank; k++ {
		sp := as.lhs.subs[k]
		if sp.slot >= 0 {
			inU[sp.slot] = true
		}
		d := la.dims[k]
		if d.replicated {
			continue
		}
		if sp.slot < 0 {
			rootBase += la.s.DimCoordOf(e.g, k, sp.c) * e.strides[d.gd]
		}
	}

	// Holder-set conditions that do not depend on the reduced element:
	// anchor Fixed pins, constant-subscript pins, and for free variables
	// the coordinates their loop range can reach.
	pinBase := make([]int, e.q)
	for gd := range pinBase {
		pinBase[gd] = -1
	}
	for gd, c := range aa.s.Fixed {
		if c != dist.All {
			pinBase[gd] = c
		}
	}
	coordAllowed := map[int][]bool{}
	var pairs []pairCond
	freeDims := map[int][]int{}
	for k := 0; k < aa.rank; k++ {
		d := aa.dims[k]
		if d.replicated {
			continue
		}
		sp := as.anchor.subs[k]
		if sp.slot < 0 {
			pinBase[d.gd] = aa.s.DimCoordOf(e.g, k, sp.c)
			continue
		}
		if !inU[sp.slot] {
			freeDims[sp.slot] = append(freeDims[sp.slot], k)
		}
	}
	for slot, ks := range freeDims {
		if len(ks) == 1 {
			d := aa.dims[ks[0]]
			sets := as.constraintSets(slot, d.gd)
			all := make([]bool, d.n)
			for a := range sets {
				all[a] = !sets[a].empty()
			}
			coordAllowed[d.gd] = all
			continue
		}
		d0, d1 := aa.dims[ks[0]], aa.dims[ks[1]]
		s0 := as.constraintSets(slot, d0.gd)
		s1 := as.constraintSets(slot, d1.gd)
		ok := make([]bool, d0.n*d1.n)
		for a0 := range s0 {
			for a1 := range s1 {
				if !intersectSets(s0[a0], s1[a1]).empty() {
					ok[a0*d1.n+a1] = true
				}
			}
		}
		pairs = append(pairs, pairCond{gd0: d0.gd, gd1: d1.gd, n1: d1.n, ok: ok})
	}

	// Per-LHS-variable cells.
	var uSlots []int
	for s := 0; s < as.depth; s++ {
		if inU[s] {
			uSlots = append(uSlots, s)
		}
	}
	perVar := make([][]varCombo, len(uSlots))
	totalCombos := 1
	for vi, slot := range uSlots {
		var cs []redC
		for k := 0; k < aa.rank; k++ {
			d := aa.dims[k]
			sp := as.anchor.subs[k]
			if !d.replicated && sp.slot == slot {
				cs = append(cs, redC{gd: d.gd, anchor: true, sets: as.constraintSets(slot, d.gd)})
			}
		}
		for k := 0; k < la.rank; k++ {
			d := la.dims[k]
			sp := as.lhs.subs[k]
			if d.replicated || sp.slot != slot {
				continue
			}
			sets := make([]iset, d.n)
			for a := 0; a < d.n; a++ {
				sets[a] = intersectSets(e.ranges[slot], d.pats[a].affinePreimage(sp.sign, sp.c))
			}
			cs = append(cs, redC{gd: d.gd, stride: e.strides[d.gd], sets: sets})
		}
		var combos []varCombo
		var rec func(ci int, acc iset, pins []anGate, rootAdd int)
		rec = func(ci int, acc iset, pins []anGate, rootAdd int) {
			if ci == len(cs) {
				if c := acc.count(); c > 0 {
					combos = append(combos, varCombo{cnt: c, pins: append([]anGate(nil), pins...), rootAdd: rootAdd})
				}
				return
			}
			c := cs[ci]
			for a, set := range c.sets {
				x := intersectSets(acc, set)
				if x.empty() {
					continue
				}
				if c.anchor {
					rec(ci+1, x, append(pins, anGate{gd: c.gd, coord: a}), rootAdd)
				} else {
					rec(ci+1, x, pins, rootAdd+a*c.stride)
				}
			}
		}
		rec(0, e.ranges[slot], nil, 0)
		perVar[vi] = combos
		totalCombos *= len(combos)
		if totalCombos > maxReduceCombos {
			return false
		}
	}

	// Walk the cross product of per-variable cells; each cell holds cnt
	// reduced elements with identical holder set and root.
	pins := make([]int, e.q)
	var members []int
	var emit func(vi int, cnt int64, rootAdd int, varPins []anGate)
	allPins := []anGate{}
	emit = func(vi int, cnt int64, rootAdd int, varPins []anGate) {
		if vi < len(uSlots) {
			for _, cb := range perVar[vi] {
				emit(vi+1, cnt*cb.cnt, rootAdd+cb.rootAdd, append(varPins, cb.pins...))
			}
			return
		}
		root := rootBase + rootAdd
		copy(pins, pinBase)
		for _, g := range varPins {
			pins[g.gd] = g.coord
		}
		members = members[:0]
		for pr := 0; pr < e.nprocs; pr++ {
			q := e.rankCoords[pr]
			ok := true
			for gd := 0; gd < e.q; gd++ {
				if pins[gd] >= 0 && q[gd] != pins[gd] {
					ok = false
					break
				}
				if ca := coordAllowed[gd]; ok && ca != nil && !ca[q[gd]] {
					ok = false
					break
				}
			}
			if ok {
				for _, pc := range pairs {
					if !pc.ok[q[pc.gd0]*pc.n1+q[pc.gd1]] {
						ok = false
						break
					}
				}
			}
			if ok {
				members = append(members, pr)
			}
		}
		n := len(members)
		switch {
		case n == 0:
		case n == 1:
			if pr := members[0]; pr != root {
				e.reduceW += cnt
				e.out[pr] += cnt
				e.in[root] += cnt
			}
		default:
			rootIn := false
			for _, pr := range members {
				if pr == root {
					rootIn = true
				} else {
					e.out[pr] += cnt
				}
			}
			nonRoot := int64(n)
			if rootIn {
				nonRoot--
			}
			e.reduceW += nonRoot * cnt
			e.in[root] += int64(Log2Ceil(n)) * cnt
		}
	}
	emit(0, 1, 0, allPins)
	return true
}

// constAff evaluates an affine expression that must be constant under
// bind.
func constAff(a ir.Affine, bind map[string]int) (int, bool) {
	v := a.Const
	for name, c := range a.Coeff {
		if c == 0 {
			continue
		}
		bv, ok := bind[name]
		if !ok {
			return 0, false
		}
		v += c * bv
	}
	return v, true
}

// compileSub compiles a subscript into sign*var + c form; ok=false when
// it has more than one loop variable or a non-unit coefficient.
func compileSub(a ir.Affine, bind map[string]int, slotOf map[string]int) (anSub, bool) {
	out := anSub{slot: -1, c: a.Const}
	for v, c := range a.Coeff {
		if c == 0 {
			continue
		}
		if slot, ok := slotOf[v]; ok {
			if out.slot >= 0 {
				return anSub{}, false
			}
			if c != 1 && c != -1 {
				return anSub{}, false
			}
			out.slot = slot
			out.sign = c
			continue
		}
		bv, ok := bind[v]
		if !ok {
			return anSub{}, false
		}
		out.c += c * bv
	}
	return out, true
}

// subInRange checks that the subscript stays inside [1, size] over its
// variable's full loop range (the walker would panic outside the array).
func subInRange(sp anSub, ranges []iset, size int) bool {
	if sp.slot < 0 {
		return sp.c >= 1 && sp.c <= size
	}
	r := ranges[sp.slot]
	if r.hi < r.lo {
		return true // never evaluated
	}
	img := r.affineImage(sp.sign, sp.c)
	return img.lo >= 1 && img.hi <= size
}
