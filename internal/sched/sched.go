// Package sched reproduces Fig 5 of the paper: the step-by-step wavefront
// schedule of the pipelined SOR implementation on a processor ring.
//
// Each processor executes the task list of the Fig 6 program — phase 1
// (contribute to the rows of left processors), phase 2 (seed the partial
// sums of its own rows), phase 3 (complete its own rows and update X),
// phase 4 (contribute to the rows of right processors) — one task per
// step. A task that consumes the circulating partial sum V(i) can only
// run after the left neighbour produced it in an earlier step. The
// greedy step-synchronous simulation of those precedences yields exactly
// the diagonal wavefront printed in Fig 5, including the (m + N)-step
// iteration period.
package sched

import (
	"fmt"
	"strings"
)

// Kind classifies a schedule cell.
type Kind int

const (
	// Idle: the processor had no runnable task this step.
	Idle Kind = iota
	// Partial: the processor computed its column-block contribution to a
	// row's inner product (an "A(i, lo..hi)" cell of Fig 5).
	Partial
	// Update: the processor completed V(i) and updated X(i) (an "X(i)"
	// cell of Fig 5; the paper notes the completion and update share one
	// computation step).
	Update
)

// Cell is one processor's activity in one step.
type Cell struct {
	Kind Kind
	// Row is the 1-based row index i the task works on.
	Row int
	// Lo, Hi are the 1-based column range of a Partial cell.
	Lo, Hi int
	// Iter is the 0-based sweep the task belongs to.
	Iter int
}

// String renders the cell the way Fig 5 labels it.
func (c Cell) String() string {
	switch c.Kind {
	case Partial:
		return fmt.Sprintf("A(%d,%d..%d)", c.Row, c.Lo, c.Hi)
	case Update:
		return fmt.Sprintf("X(%d)", c.Row)
	}
	return "-"
}

// Step is one row of the Fig 5 table.
type Step struct {
	Step  int
	Cells []Cell
}

// task is one unit of work in a processor's program order.
type task struct {
	kind     Kind
	row      int // 0-based global row
	iter     int
	consumes bool // needs V(row) from the left neighbour
	produces bool // makes V(row) available to the right neighbour
}

// Schedule simulates iters sweeps of the pipelined SOR program for an
// m x m system on an n-processor ring (m divisible by n) and returns the
// step table plus the per-iteration period actually achieved.
func Schedule(m, n, iters int) ([]Step, error) {
	if n < 1 || m%n != 0 {
		return nil, fmt.Errorf("sched: m=%d not divisible by n=%d", m, n)
	}
	blk := m / n

	// Build each processor's task list in Fig 6 program order.
	tasks := make([][]task, n)
	for p := 0; p < n; p++ {
		before := p * blk
		for it := 0; it < iters; it++ {
			for i := 0; i < before; i++ { // phase 1
				tasks[p] = append(tasks[p], task{kind: Partial, row: i, iter: it, consumes: true, produces: true})
			}
			for i := before; i < before+blk; i++ { // phase 2 (seed)
				tasks[p] = append(tasks[p], task{kind: Partial, row: i, iter: it, produces: true})
			}
			for i := before; i < before+blk; i++ { // phase 3 (complete + X)
				tasks[p] = append(tasks[p], task{kind: Update, row: i, iter: it, consumes: true})
			}
			for i := before + blk; i < m; i++ { // phase 4
				tasks[p] = append(tasks[p], task{kind: Partial, row: i, iter: it, consumes: true, produces: true})
			}
		}
	}

	// producedAt[p][iter*m+row] = step at which processor p made V(row)
	// available (0 = not yet).
	producedAt := make([][]int, n)
	for p := range producedAt {
		producedAt[p] = make([]int, iters*m)
	}
	next := make([]int, n)

	var table []Step
	for step := 1; ; step++ {
		done := true
		var cells []Cell
		ran := make([]bool, n)
		produced := make([]struct {
			key  int
			step int
		}, 0, n)
		for p := 0; p < n; p++ {
			if next[p] >= len(tasks[p]) {
				cells = append(cells, Cell{Kind: Idle})
				continue
			}
			done = false
			t := tasks[p][next[p]]
			key := t.iter*m + t.row
			if t.consumes {
				left := (p - 1 + n) % n
				at := producedAt[left][key]
				if at == 0 || at >= step {
					cells = append(cells, Cell{Kind: Idle})
					continue
				}
			}
			ran[p] = true
			next[p]++
			lo := p*blk + 1
			cells = append(cells, Cell{Kind: t.kind, Row: t.row + 1, Lo: lo, Hi: lo + blk - 1, Iter: t.iter})
			if t.produces {
				produced = append(produced, struct {
					key  int
					step int
				}{key, step})
			}
			_ = ran
		}
		if done {
			break
		}
		// Commit productions after the step so same-step consumption is
		// impossible (the value travels during the step).
		for p := 0; p < n; p++ {
			if cells[p].Kind != Idle {
				t := tasks[p][next[p]-1]
				if t.produces {
					producedAt[p][t.iter*m+t.row] = step
				}
			}
		}
		table = append(table, Step{Step: step, Cells: cells})
		if step > 4*(m+n)*iters+16 {
			return nil, fmt.Errorf("sched: schedule did not terminate (deadlock in task precedences)")
		}
	}
	return table, nil
}

// IterationPeriod returns the number of steps between processor 0
// starting sweep 0 and starting sweep 1 (the paper's average iteration
// time is (m + N) steps). It returns 0 if the table has fewer than two
// sweeps.
func IterationPeriod(table []Step) int {
	first, second := 0, 0
	for _, st := range table {
		c := st.Cells[0]
		if c.Kind == Idle {
			continue
		}
		if c.Iter == 0 && first == 0 {
			first = st.Step
		}
		if c.Iter == 1 && second == 0 {
			second = st.Step
		}
	}
	if first == 0 || second == 0 {
		return 0
	}
	return second - first
}

// Render prints the table in the Fig 5 layout.
func Render(table []Step, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s", "step")
	for p := 0; p < n; p++ {
		fmt.Fprintf(&b, " | %-14s", fmt.Sprintf("PROCESSOR %d", p))
	}
	b.WriteByte('\n')
	for _, st := range table {
		fmt.Fprintf(&b, "%5d", st.Step)
		for _, c := range st.Cells {
			fmt.Fprintf(&b, " | %-14s", c.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
