package sched

import (
	"strings"
	"testing"
)

func mustSchedule(t *testing.T, m, n, iters int) []Step {
	t.Helper()
	table, err := Schedule(m, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func cellAt(table []Step, step, proc int) Cell {
	for _, st := range table {
		if st.Step == step {
			return st.Cells[proc]
		}
	}
	return Cell{}
}

// TestFig5Anchors checks the cells of Fig 5 that are legible in the
// paper: the first wavefront diagonal and the first X updates for
// m=16, N=4.
func TestFig5Anchors(t *testing.T) {
	table := mustSchedule(t, 16, 4, 2)

	anchors := []struct {
		step, proc int
		want       string
	}{
		{1, 0, "A(1,1..4)"},
		{2, 0, "A(2,1..4)"},
		{2, 1, "A(1,5..8)"},
		{3, 0, "A(3,1..4)"},
		{3, 1, "A(2,5..8)"},
		{3, 2, "A(1,9..12)"},
		{4, 0, "A(4,1..4)"},
		{4, 3, "A(1,13..16)"},
		{5, 0, "X(1)"},      // V(1) completed its round trip
		{5, 1, "A(4,5..8)"}, // P1 finishing its phase-1 contributions
		{6, 0, "X(2)"},
		{7, 0, "X(3)"},
		{8, 0, "X(4)"},
	}
	for _, a := range anchors {
		got := cellAt(table, a.step, a.proc).String()
		if got != a.want {
			t.Errorf("step %d proc %d: got %s, want %s", a.step, a.proc, got, a.want)
		}
	}
}

// TestFig5IterationPeriod: the schedule's step period is m + m/N (each
// processor runs m - m/N contribution tasks plus m/N seed and m/N update
// tasks per sweep). In Fig 5's instance m = N^2 = 16, so this coincides
// with the paper's (m + N)-step period; the *time* bound
// (m+N)(2(m/N)tf + 2tc) holds because the seed/update step pairs share
// one row's worth of flops, and is verified on the simulated machine in
// package kernels.
func TestFig5IterationPeriod(t *testing.T) {
	for _, mn := range [][2]int{{16, 4}, {32, 4}, {64, 8}} {
		m, n := mn[0], mn[1]
		table := mustSchedule(t, m, n, 3)
		period := IterationPeriod(table)
		if period == 0 {
			t.Fatalf("m=%d n=%d: period not found", m, n)
		}
		if period > m+m/n {
			t.Errorf("m=%d n=%d: period %d exceeds m+m/N=%d", m, n, period, m+m/n)
		}
	}
	// Fig 5's instance: period exactly 20 = m + N.
	table := mustSchedule(t, 16, 4, 2)
	if p := IterationPeriod(table); p != 20 {
		t.Errorf("m=16 N=4 period = %d, Fig 5 shows 20", p)
	}
}

// TestFig5NextIterationStart: in Fig 5 processor 0 begins the next
// iteration at step 21 for m=16, N=4 (the table prints "The next
// iteration" there): period m + N = 20 puts sweep 1's first task of
// processor 0 at step 21.
func TestFig5NextIterationStart(t *testing.T) {
	table := mustSchedule(t, 16, 4, 2)
	for _, st := range table {
		c := st.Cells[0]
		if c.Kind != Idle && c.Iter == 1 {
			if st.Step != 21 {
				t.Errorf("processor 0 starts sweep 1 at step %d, Fig 5 shows 21", st.Step)
			}
			return
		}
	}
	t.Fatal("sweep 1 never starts on processor 0")
}

func TestEveryRowCompletedOncePerSweep(t *testing.T) {
	m, n, iters := 16, 4, 2
	table := mustSchedule(t, m, n, iters)
	counts := map[[2]int]int{} // (iter, row) -> updates
	for _, st := range table {
		for _, c := range st.Cells {
			if c.Kind == Update {
				counts[[2]int{c.Iter, c.Row}]++
			}
		}
	}
	if len(counts) != m*iters {
		t.Fatalf("updates = %d, want %d", len(counts), m*iters)
	}
	for k, v := range counts {
		if v != 1 {
			t.Fatalf("row %v updated %d times", k, v)
		}
	}
}

func TestEveryProcessorTouchesEveryRow(t *testing.T) {
	m, n := 12, 3
	table := mustSchedule(t, m, n, 1)
	touch := map[[2]int]bool{}
	for _, st := range table {
		for p, c := range st.Cells {
			if c.Kind != Idle {
				touch[[2]int{p, c.Row}] = true
			}
		}
	}
	// Every (processor, row) pair appears exactly once: each processor
	// contributes its column block to every row.
	if len(touch) != m*n {
		t.Fatalf("touched %d pairs, want %d", len(touch), m*n)
	}
}

func TestUpdateOnlyAtOwner(t *testing.T) {
	m, n := 16, 4
	blk := m / n
	table := mustSchedule(t, m, n, 1)
	for _, st := range table {
		for p, c := range st.Cells {
			if c.Kind == Update && (c.Row-1)/blk != p {
				t.Fatalf("X(%d) updated at processor %d", c.Row, p)
			}
		}
	}
}

func TestPrecedencesRespected(t *testing.T) {
	// A partial for row i at processor p (not the seeder) must appear
	// strictly after the left neighbour's cell for the same row and sweep.
	m, n := 16, 4
	blk := m / n
	table := mustSchedule(t, m, n, 2)
	partialAt := map[[3]int]int{} // (proc, iter, row) -> step of the Partial cell
	updateAt := map[[3]int]int{}
	for _, st := range table {
		for p, c := range st.Cells {
			key := [3]int{p, c.Iter, c.Row}
			switch c.Kind {
			case Partial:
				partialAt[key] = st.Step
			case Update:
				updateAt[key] = st.Step
			}
		}
	}
	check := func(p, it, row, step int) {
		t.Helper()
		left := (p - 1 + n) % n
		prev, ok := partialAt[[3]int{left, it, row}]
		if !ok {
			t.Fatalf("no producer for proc %d row %d", p, row)
		}
		if prev >= step {
			t.Fatalf("proc %d row %d at step %d not after left at %d", p, row, step, prev)
		}
	}
	for key, step := range partialAt {
		p, it, row := key[0], key[1], key[2]
		if p == (row-1)/blk {
			continue // the seed has no predecessor
		}
		check(p, it, row, step)
	}
	for key, step := range updateAt {
		check(key[0], key[1], key[2], step)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(10, 3, 1); err == nil {
		t.Fatal("indivisible size accepted")
	}
	if _, err := Schedule(8, 0, 1); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestRender(t *testing.T) {
	table := mustSchedule(t, 8, 2, 1)
	s := Render(table, 2)
	if !strings.Contains(s, "PROCESSOR 0") || !strings.Contains(s, "A(1,1..4)") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestCellString(t *testing.T) {
	if (Cell{}).String() != "-" {
		t.Fatal("idle cell")
	}
	c := Cell{Kind: Partial, Row: 3, Lo: 5, Hi: 8}
	if c.String() != "A(3,5..8)" {
		t.Fatalf("partial = %s", c.String())
	}
	u := Cell{Kind: Update, Row: 7}
	if u.String() != "X(7)" {
		t.Fatalf("update = %s", u.String())
	}
}

func TestSingleProcessorSchedule(t *testing.T) {
	table := mustSchedule(t, 8, 1, 1)
	// One processor: seed then complete each row; 16 busy steps.
	busy := 0
	for _, st := range table {
		if st.Cells[0].Kind != Idle {
			busy++
		}
	}
	if busy != 16 {
		t.Fatalf("busy steps = %d, want 16", busy)
	}
}
