package core

import (
	"math"
	"testing"

	"dmcc/internal/cost"
	"dmcc/internal/ir"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestPlanEvaluatorMatchesCompileAtBase: re-pricing the frozen plan at
// the size it was compiled for must reproduce the DP's minimum cost —
// the evaluator prices exactly the plan the DP chose.
func TestPlanEvaluatorMatchesCompileAtBase(t *testing.T) {
	for _, p := range []*ir.Program{ir.Jacobi(), ir.Gauss(), ir.SOR(), ir.Synthetic(5)} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const m, n = 16, 4
			c := NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
			pe, err := NewPlanEvaluator(c)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := pe.EvalAt(m)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(pc.Total(), pe.Base.DP.MinimumCost) {
				t.Errorf("EvalAt(base) = %v (total %.6f), DP minimum %.6f",
					pc, pc.Total(), pe.Base.DP.MinimumCost)
			}
		})
	}
}

// TestPlanEvaluatorFit: after fitting, the m-sweep runs on piecewise
// polynomials alone and must agree exactly with per-size analytic
// counting — including sizes far beyond any sampled during the fit.
// Gauss runs at N=16 so its plan keeps two segments: the boundary
// exercises the symbolic ChangeCost fit, whose one-division evaluation
// must be bit-identical to the numeric redistribution calculator.
func TestPlanEvaluatorFit(t *testing.T) {
	cases := []struct {
		mk               func() *ir.Program
		n, baseM         int
		minM, deg        int
		evalMs           []int
		wantMultipleSegs bool
	}{
		{mk: ir.Jacobi, n: 4, baseM: 16, minM: 12, deg: 2, evalMs: []int{16, 24, 37, 64, 200, 1001}},
		{mk: ir.SOR, n: 4, baseM: 16, minM: 12, deg: 2, evalMs: []int{16, 24, 37, 64, 200, 1001}},
		{mk: ir.Gauss, n: 16, baseM: 64, minM: 64, deg: 3, evalMs: []int{64, 100, 131, 256, 1024}, wantMultipleSegs: true},
	}
	for _, tc := range cases {
		tc := tc
		p := tc.mk()
		t.Run(p.Name, func(t *testing.T) {
			mk := func() *PlanEvaluator {
				c := NewCompiler(tc.mk(), cost.Unit(), map[string]int{"m": tc.baseM}, tc.n)
				pe, err := NewPlanEvaluator(c)
				if err != nil {
					t.Fatal(err)
				}
				return pe
			}
			fitted, direct := mk(), mk()
			if tc.wantMultipleSegs && len(fitted.segs) < 2 {
				t.Fatalf("plan has %d segments, want >= 2 to exercise the change fit", len(fitted.segs))
			}
			if err := fitted.Fit(tc.minM, tc.deg, 2); err != nil {
				t.Fatal(err)
			}
			if !fitted.fittedAt(tc.minM) {
				t.Fatal("Fit succeeded but the evaluator still needs numeric pricing")
			}
			if fitted.fittedAt(tc.minM - 1) {
				t.Fatal("evaluator claims polynomial pricing below the fitted floor")
			}
			for _, m := range tc.evalMs {
				got, err := fitted.EvalAt(m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := direct.EvalAt(m)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("m=%d: fitted %+v, direct %+v", m, got, want)
				}
			}
			if f := fitted.Formulas(); len(f) != len(p.Nests) {
				t.Errorf("Formulas() returned %d entries for %d nests", len(f), len(p.Nests))
			}
		})
	}
}
