package core

import (
	"math"
	"testing"

	"dmcc/internal/cost"
	"dmcc/internal/ir"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestPlanEvaluatorMatchesCompileAtBase: re-pricing the frozen plan at
// the size it was compiled for must reproduce the DP's minimum cost —
// the evaluator prices exactly the plan the DP chose.
func TestPlanEvaluatorMatchesCompileAtBase(t *testing.T) {
	for _, p := range []*ir.Program{ir.Jacobi(), ir.Gauss(), ir.SOR(), ir.Synthetic(5)} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const m, n = 16, 4
			c := NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
			pe, err := NewPlanEvaluator(c)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := pe.EvalAt(m)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(pc.Total(), pe.Base.DP.MinimumCost) {
				t.Errorf("EvalAt(base) = %v (total %.6f), DP minimum %.6f",
					pc, pc.Total(), pe.Base.DP.MinimumCost)
			}
		})
	}
}

// TestPlanEvaluatorFit: after fitting, the m-sweep runs on piecewise
// polynomials alone and must agree exactly with per-size analytic
// counting — including sizes far beyond any sampled during the fit.
func TestPlanEvaluatorFit(t *testing.T) {
	for _, p := range []*ir.Program{ir.Jacobi(), ir.SOR()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const n = 4
			mk := func() *PlanEvaluator {
				c := NewCompiler(p, cost.Unit(), map[string]int{"m": 16}, n)
				pe, err := NewPlanEvaluator(c)
				if err != nil {
					t.Fatal(err)
				}
				return pe
			}
			fitted, direct := mk(), mk()
			if err := fitted.Fit(3*n, 2, 2); err != nil {
				t.Fatal(err)
			}
			for _, m := range []int{16, 24, 37, 64, 200, 1001} {
				got, err := fitted.EvalAt(m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := direct.EvalAt(m)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("m=%d: fitted %+v, direct %+v", m, got, want)
				}
			}
			if f := fitted.Formulas(); len(f) != len(p.Nests) {
				t.Errorf("Formulas() returned %d entries for %d nests", len(f), len(p.Nests))
			}
		})
	}
}
