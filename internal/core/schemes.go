// Package core is the paper's primary contribution: the compile pipeline
// that turns a sequential Do-loop program into distribution schemes and an
// execution plan for a distributed memory machine. It combines
//
//   - per-loop component alignment (Section 3, package align),
//   - the dynamic programming algorithm over loop sequences that picks
//     the minimum-cost order of distribution schemes (Section 4,
//     Algorithm 1),
//   - communication pipelining decisions driven by data-dependence
//     information (Sections 5-6, package dep).
package core

import (
	"fmt"
	"sort"
	"strings"

	"dmcc/internal/align"
	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

// SchemeSet is a complete data-distribution decision for one segment of
// the program: a processor-grid shape plus one distribution scheme per
// array.
type SchemeSet struct {
	Grid      *grid.Grid
	Schemes   map[string]dist.Scheme
	Partition align.Partition
	// Cyclic records whether the segment used cyclic distributions
	// (triangular iteration spaces, Section 6).
	Cyclic bool
	Label  string
}

// String summarizes the scheme set.
func (ss *SchemeSet) String() string {
	if ss == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s on %s", ss.Label, ss.Grid)
}

// Signature returns a canonical, order-stable encoding of everything
// that determines element placement: the grid shape and, per array (in
// sorted name order), each dimension's sign, displacement, block size,
// cyclic/replication flags and grid mapping, plus rotation coefficients
// and fixed coordinates. Two scheme sets with equal signatures place
// every element of every array identically, so signatures (and
// signature pairs) are safe memoization keys for redistribution and
// loop-carried costs. Labels and partitions are deliberately excluded.
func (ss *SchemeSet) Signature() string {
	if ss == nil {
		return "<nil>"
	}
	var b strings.Builder
	if ss.Grid != nil {
		b.WriteByte('g')
		for d := 0; d < ss.Grid.Q(); d++ {
			fmt.Fprintf(&b, "x%d", ss.Grid.Extent(d))
		}
	}
	names := make([]string, 0, len(ss.Schemes))
	for n := range ss.Schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := ss.Schemes[n]
		fmt.Fprintf(&b, ";%s:", n)
		for _, d := range s.Dims {
			if d.Replicated {
				fmt.Fprintf(&b, "[R g%d]", d.GridDim)
				continue
			}
			fmt.Fprintf(&b, "[%+d %d %d c%t g%d]", d.Sign, d.Disp, d.Block, d.Cyclic, d.GridDim)
		}
		if s.Rot != dist.NoRotation {
			fmt.Fprintf(&b, "rot%d(%d,%d)", s.Rot, s.D1, s.D2)
		}
		if len(s.Fixed) > 0 {
			gds := make([]int, 0, len(s.Fixed))
			for gd := range s.Fixed {
				gds = append(gds, gd)
			}
			sort.Ints(gds)
			for _, gd := range gds {
				fmt.Fprintf(&b, "f%d=%d", gd, s.Fixed[gd])
			}
		}
	}
	return b.String()
}

// Triangular reports whether any loop bound of the nest depends on an
// enclosing loop index — the paper's criterion for switching from
// contiguous to cyclic distribution ("Because the index space includes an
// oblique pyramid and a triangle, cyclical data distribution schema will
// be used", Section 6).
func Triangular(nest *ir.Nest) bool {
	for li, l := range nest.Loops {
		for _, b := range []ir.Affine{l.Lo, l.Hi} {
			for _, v := range b.Vars() {
				for _, outer := range nest.Loops[:li] {
					if outer.Index == v {
						return true
					}
				}
			}
		}
	}
	return false
}

// GridShapes returns the candidate 2-D grid shapes for n processors the
// way Section 3 evaluates them: (n,1), (1,n), and (sqrt(n), sqrt(n)) when
// n is a perfect square.
func GridShapes(n int) [][2]int {
	shapes := [][2]int{{n, 1}, {1, n}}
	r := 1
	for r*r < n {
		r++
	}
	if r*r == n && r > 1 {
		shapes = append(shapes, [2]int{r, r})
	}
	return shapes
}

// DeriveSchemes turns an alignment partition into concrete distribution
// schemes on a 2-D grid of the given shape: each array dimension maps to
// the grid dimension of its subset with a contiguous block distribution
// (rectangular iteration spaces) or a cyclic distribution (triangular
// ones); remaining grid dimensions of lower-rank arrays are replicated,
// following the end of Section 2.1.
func DeriveSchemes(p *ir.Program, pt align.Partition, shape [2]int, bind map[string]int, cyclic bool) (*SchemeSet, error) {
	g := grid.New(shape[0], shape[1])
	ss := &SchemeSet{
		Grid:      g,
		Schemes:   map[string]dist.Scheme{},
		Partition: pt,
		Cyclic:    cyclic,
		Label:     fmt.Sprintf("%dx%d/%s", shape[0], shape[1], map[bool]string{true: "cyclic", false: "block"}[cyclic]),
	}
	for name, arr := range p.Arrays {
		dims := make([]dist.Dim, arr.Rank())
		used := map[int]bool{}
		for k := range dims {
			sub, ok := pt.Assign[ir.DimID{Array: name, Dim: k}]
			if !ok {
				return nil, fmt.Errorf("core: no alignment for %s dim %d", name, k+1)
			}
			size, err := extentOf(arr, k, bind)
			if err != nil {
				return nil, err
			}
			n := g.Extent(sub)
			switch {
			case n == 1:
				// Degenerate grid dimension: one block holds everything.
				dims[k] = dist.Dim{Sign: 1, Disp: -1, Block: size, GridDim: sub}
			case cyclic:
				dims[k] = dist.Cyclic(sub)
			default:
				dims[k] = dist.BlockContiguous(size, n, sub)
			}
			used[sub] = true
		}
		fixed := map[int]int{}
		for gd := 0; gd < g.Q(); gd++ {
			if !used[gd] {
				fixed[gd] = dist.All // replicate along unused grid dims
			}
		}
		s := dist.Scheme{Dims: dims, Fixed: fixed}
		shapeInts, err := shapeOf(p, name, bind)
		if err != nil {
			return nil, err
		}
		if err := s.Validate(g, shapeInts); err != nil {
			return nil, fmt.Errorf("core: derived scheme for %s invalid: %v", name, err)
		}
		ss.Schemes[name] = s
	}
	return ss, nil
}

func extentOf(arr *ir.Array, k int, bind map[string]int) (int, error) {
	e := arr.Extents[k]
	for _, v := range e.Vars() {
		if _, ok := bind[v]; !ok {
			return 0, fmt.Errorf("core: array %s extent %s unbound", arr.Name, e)
		}
	}
	size := e.Eval(bind)
	if size < 1 {
		return 0, fmt.Errorf("core: array %s extent %d", arr.Name, size)
	}
	return size, nil
}

func shapeOf(p *ir.Program, name string, bind map[string]int) ([]int, error) {
	arr := p.Array(name)
	shape := make([]int, arr.Rank())
	for k := range shape {
		s, err := extentOf(arr, k, bind)
		if err != nil {
			return nil, err
		}
		shape[k] = s
	}
	return shape, nil
}
