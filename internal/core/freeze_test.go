package core

import (
	"encoding/json"
	"testing"

	"dmcc/internal/cost"
	"dmcc/internal/ir"
)

// A frozen-then-thawed evaluator must price the plan exactly like the
// evaluator it came from, at every size — with and without fits, and
// across a JSON roundtrip (the artifact store's wire format).
func TestFreezeThawRoundtrip(t *testing.T) {
	for _, mk := range []func() *ir.Program{ir.Jacobi, ir.SOR} {
		p := mk()
		const n, baseM = 4, 16
		c := NewCompiler(p, cost.Unit(), map[string]int{"m": baseM}, n)
		pe, err := NewPlanEvaluator(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := pe.Fit(baseM, 3, 2); err != nil {
			t.Fatalf("%s: Fit: %v", p.Name, err)
		}
		fp := pe.Freeze()
		raw, err := json.Marshal(fp)
		if err != nil {
			t.Fatal(err)
		}
		var back FrozenPlan
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}

		c2 := NewCompiler(mk(), cost.Unit(), map[string]int{"m": baseM}, n)
		thawed, err := Thaw(c2, &back)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{16, 24, 32, 64, 128} {
			want, err := pe.EvalAt(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := thawed.EvalAt(m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s m=%d: thawed %+v != fresh %+v", p.Name, m, got, want)
			}
		}
		// Formula rendering survives the roundtrip (fits included).
		wantF, gotF := pe.Formulas(), thawed.Formulas()
		if len(wantF) != len(gotF) {
			t.Fatalf("%s: formulas %d != %d", p.Name, len(gotF), len(wantF))
		}
		for i := range wantF {
			if wantF[i] != gotF[i] {
				t.Fatalf("%s formula %d: %q != %q", p.Name, i, gotF[i], wantF[i])
			}
		}
	}
}

// Thaw without fits still evaluates (via the analytic engine), matching
// an unfitted fresh evaluator.
func TestThawUnfitted(t *testing.T) {
	c := NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": 16}, 4)
	pe, err := NewPlanEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	fp := pe.Freeze()
	if fp.ExecFits != nil {
		t.Fatal("unfitted evaluator froze with fits")
	}
	c2 := NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": 16}, 4)
	thawed, err := Thaw(c2, fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{16, 32, 48} {
		want, _ := pe.EvalAt(m)
		got, err := thawed.EvalAt(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("m=%d: %+v != %+v", m, got, want)
		}
	}
}

// Thaw rejects plans that do not tile the program's nest sequence.
func TestThawValidates(t *testing.T) {
	c := NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": 16}, 4)
	pe, err := NewPlanEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	fp := pe.Freeze()
	fp.Segments = fp.Segments[:len(fp.Segments)-1]
	if _, err := Thaw(c, fp); err == nil {
		t.Fatal("Thaw accepted a plan that does not cover every nest")
	}
}

// CacheKey must separate everything that changes results and nothing
// that does not (Jobs).
func TestCacheKeyDiscriminates(t *testing.T) {
	base := func() *Compiler {
		return NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": 16}, 4)
	}
	k0 := base().CacheKey()
	if k1 := base().CacheKey(); k1 != k0 {
		t.Fatalf("same config, different keys:\n%s\n%s", k0, k1)
	}
	c := base()
	c.Jobs = 7
	if c.CacheKey() != k0 {
		t.Fatal("Jobs leaked into the cache key")
	}
	mut := map[string]func(*Compiler){
		"bind":        func(c *Compiler) { c.Bind = map[string]int{"m": 32} },
		"nprocs":      func(c *Compiler) { c.NProcs = 8 },
		"model":       func(c *Compiler) { c.Model = cost.Model{Tf: 2, Tc: 1} },
		"greedy":      func(c *Compiler) { c.UseGreedyAlign = true },
		"exactnest":   func(c *Compiler) { c.ExactNestCount = true },
		"exactchange": func(c *Compiler) { c.ExactChangeCost = true },
		"nocache":     func(c *Compiler) { c.NoCache = true },
	}
	for name, f := range mut {
		c := base()
		f(c)
		if c.CacheKey() == k0 {
			t.Errorf("%s not reflected in CacheKey", name)
		}
	}
	c2 := NewCompiler(ir.SOR(), cost.Unit(), map[string]int{"m": 16}, 4)
	if c2.CacheKey() == k0 {
		t.Error("different programs share a CacheKey")
	}
}
