// Cache-key derivation: the canonical key text that makes compile
// artifacts content-addressable. Everything that can change a Compile()
// result is folded in — the program (hashed through its printed source,
// which ir.Print renders deterministically), the parameter binding, the
// processor count, the cost model, the alignment weights, and every
// engine flag. Jobs is deliberately excluded: parallel runs are
// bit-identical to serial ones (TestParallelCompileDeterministic), so
// worker count must not split the cache.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"dmcc/internal/ir"
)

// ProgramHash returns the sha-256 (hex) of the program's canonical
// printed form — a stable content address for the IR.
func ProgramHash(p *ir.Program) string {
	h := sha256.Sum256([]byte(ir.Print(p)))
	return hex.EncodeToString(h[:])
}

// CacheKey returns the canonical cache key text for this compiler
// configuration. Two compilers with equal CacheKeys produce identical
// Compile() results; the artifact store hashes this text to address the
// cached result.
func (c *Compiler) CacheKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prog=%s", ProgramHash(c.Program))
	names := make([]string, 0, len(c.Bind))
	for k := range c.Bind {
		names = append(names, k)
	}
	sort.Strings(names)
	b.WriteString(";bind=")
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, c.Bind[k])
	}
	fmt.Fprintf(&b, ";n=%d;tf=%g;tc=%g", c.NProcs, c.Model.Tf, c.Model.Tc)
	fmt.Fprintf(&b, ";wN=%d;wTc=%g;wBind=", c.Weights.N, c.Weights.Tc)
	wnames := make([]string, 0, len(c.Weights.Bind))
	for k := range c.Weights.Bind {
		wnames = append(wnames, k)
	}
	sort.Strings(wnames)
	for i, k := range wnames {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, c.Weights.Bind[k])
	}
	fmt.Fprintf(&b, ";greedy=%t;exactnest=%t;exactchange=%t;nocache=%t;pipered=%t;collredist=%t",
		c.UseGreedyAlign, c.ExactNestCount, c.ExactChangeCost, c.NoCache, c.PipelinedReductions, c.CollectiveRedist)
	return b.String()
}
