package core

import (
	"fmt"
	"strings"
	"testing"

	"dmcc/internal/cost"
	"dmcc/internal/ir"
)

// renderResult serializes everything observable about a compile result —
// the T table, every segment's costs and scheme signatures, and the
// pipelining decisions — so two results can be compared byte for byte.
func renderResult(res *CompileResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "min=%.6f segtotal=%.6f lc=%.6f whole=%.6f\n",
		res.DP.MinimumCost, res.DP.SegmentTotal, res.DP.LoopCarried, res.WholeProgramCost)
	for _, seg := range res.DP.Segments {
		fmt.Fprintf(&b, "seg %d+%d m=%.6f chg=%.6f label=%s sig=%s\n",
			seg.Start, seg.Len, seg.M, seg.ChangeIn, seg.Schemes.Label, seg.Schemes.Signature())
	}
	for i := 1; i < len(res.DP.T); i++ {
		for j, t := range res.DP.T[i] {
			if t != 0 {
				fmt.Fprintf(&b, "T[%d][%d]=%.6f\n", i, j, t)
			}
		}
	}
	for _, d := range res.Pipelining {
		fmt.Fprintf(&b, "pipe %s canPipeline=%v travelling=%d\n",
			d.Mapping.Nest, d.CanPipeline, len(d.TravellingTokens))
	}
	return b.String()
}

// TestParallelCompileDeterministic: Compile() with a parallel worker
// pool must produce byte-identical results to the serial path — the
// parallel phase only warms the memoization caches; the DP itself runs
// serially either way.
func TestParallelCompileDeterministic(t *testing.T) {
	programs := []*ir.Program{ir.Jacobi(), ir.Gauss(), ir.Synthetic(6)}
	for _, p := range programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			render := func(jobs int) string {
				c := NewCompiler(p, cost.Unit(), map[string]int{"m": 16}, 4)
				c.Jobs = jobs
				res, err := c.Compile()
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				return renderResult(res)
			}
			serial := render(1)
			for _, jobs := range []int{2, 8} {
				if got := render(jobs); got != serial {
					t.Errorf("jobs=%d output differs from serial:\n--- serial ---\n%s--- jobs=%d ---\n%s",
						jobs, serial, jobs, got)
				}
			}
		})
	}
}

// TestAnalyticEngineMatchesExact: the production engine (analytic
// ChangeCost + analytic/compiled nest counting + caches) must price
// every program identically — byte for byte — to the element- and
// iteration-enumeration reference engine end to end.
func TestAnalyticEngineMatchesExact(t *testing.T) {
	programs := []*ir.Program{ir.Jacobi(), ir.Gauss(), ir.SOR(), ir.Synthetic(5)}
	for _, p := range programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			render := func(exact bool) string {
				c := NewCompiler(p, cost.Unit(), map[string]int{"m": 12}, 4)
				c.Jobs = 1
				c.ExactChangeCost = exact
				c.ExactNestCount = exact
				c.NoCache = exact
				res, err := c.Compile()
				if err != nil {
					t.Fatalf("exact=%v: %v", exact, err)
				}
				return renderResult(res)
			}
			if fast, ref := render(false), render(true); fast != ref {
				t.Errorf("analytic engine differs from exact reference:\n--- exact ---\n%s--- analytic ---\n%s", ref, fast)
			}
		})
	}
}

// TestSchemeSetSignature checks the memoization key: stable across
// calls, nil-safe, insensitive to labels, and sensitive to anything
// that moves data — grid shape or a distribution parameter.
func TestSchemeSetSignature(t *testing.T) {
	var nilSet *SchemeSet
	if nilSet.Signature() != "<nil>" {
		t.Errorf("nil signature = %q", nilSet.Signature())
	}
	// Bare sets (as tests construct them) must not panic.
	if (&SchemeSet{Label: "a"}).Signature() != "" {
		t.Errorf("empty set signature = %q", (&SchemeSet{Label: "a"}).Signature())
	}
	p := ir.Jacobi()
	c := NewCompiler(p, cost.Unit(), map[string]int{"m": 16}, 4)
	derive := func(shape [2]int) *SchemeSet {
		pt, err := c.alignNests(p.Nests)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := DeriveSchemes(p, pt, shape, c.Bind, false)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	row := derive([2]int{4, 1})
	row2 := derive([2]int{4, 1})
	col := derive([2]int{1, 4})
	if row.Signature() != row2.Signature() {
		t.Errorf("same derivation, different signatures:\n%s\n%s", row.Signature(), row2.Signature())
	}
	if row.Signature() != row2.Signature() || row.Signature() == col.Signature() {
		t.Errorf("4x1 and 1x4 share a signature: %s", row.Signature())
	}
	row2.Label = "renamed"
	if row.Signature() != row2.Signature() {
		t.Error("label change altered the signature")
	}
}
