// FrozenPlan: the serializable form of a PlanEvaluator — the discrete
// decisions of one Compile() run (segmentation, grid shapes, alignment
// partitions, cyclic flags) plus the fitted symbolic counts, as plain
// data. Freeze/Thaw are the artifact cache's view of "compile once,
// reuse everywhere": a thawed evaluator re-prices the plan at any
// problem size without re-running alignment, the shape search, or the
// DP.
package core

import (
	"fmt"
	"sort"

	"dmcc/internal/align"
	"dmcc/internal/cost"
	"dmcc/internal/ir"
)

// FrozenAssign is one alignment decision: array dimension -> grid
// dimension (a map entry of align.Partition.Assign, flattened because
// struct-keyed maps do not serialize to JSON).
type FrozenAssign struct {
	Array  string `json:"array"`
	Dim    int    `json:"dim"`
	Subset int    `json:"subset"`
}

// FrozenSegment is one segment of the frozen plan.
type FrozenSegment struct {
	Start  int            `json:"start"` // 1-based first nest
	Len    int            `json:"len"`
	Shape  [2]int         `json:"shape"`
	Cyclic bool           `json:"cyclic"`
	Assign []FrozenAssign `json:"assign"`
	M      float64        `json:"m"`        // segment cost at the base size
	Change float64        `json:"changeIn"` // redistribution paid entering
}

// FrozenPlanSchema is the current frozen-plan format. Version 2 added
// the symbolic scheme-change fits (ChgFits); older payloads priced
// segment boundaries numerically at thaw time and are rejected rather
// than silently served with different query-path behavior.
const FrozenPlanSchema = 2

// FrozenPlan is a complete, serializable compilation plan.
type FrozenPlan struct {
	Schema      int             `json:"schema"`
	BaseM       int             `json:"baseM"`
	MinimumCost float64         `json:"minimumCost"` // at the base size
	WholeCost   float64         `json:"wholeCost"`
	LoopCarried float64         `json:"loopCarried"`
	Segments    []FrozenSegment `json:"segments"`
	// ExecFits / LCFits are the per-nest piecewise-polynomial fits in m
	// (nil when Fit has not run or declined the program).
	ExecFits []*cost.SymbolicCounts `json:"execFits,omitempty"`
	LCFits   []*cost.SymbolicCounts `json:"lcFits,omitempty"`
	// ChgFits holds one symbolic scheme-change bill per segment
	// (entry 0 unused — no boundary enters the first segment).
	ChgFits []*cost.SymbolicLoads `json:"chgFits,omitempty"`
	// FitMinM is the smallest size the fits cover; below it a thawed
	// evaluator prices numerically (some plans have a pre-polynomial
	// transient and are fitted from a higher floor).
	FitMinM int `json:"fitMinM,omitempty"`
	// FitErr records why fitting was skipped, so a thawed evaluator
	// reports the same diagnostics as the one that was frozen.
	FitErr string `json:"fitErr,omitempty"`
}

// Freeze captures the evaluator's plan and fits as plain data.
func (pe *PlanEvaluator) Freeze() *FrozenPlan {
	fp := &FrozenPlan{
		Schema:   FrozenPlanSchema,
		BaseM:    pe.BaseM,
		ExecFits: pe.execSym,
		LCFits:   pe.lcSym,
		ChgFits:  pe.chgSym,
		FitMinM:  pe.fitMinM,
	}
	if pe.Base != nil {
		fp.MinimumCost = pe.Base.DP.MinimumCost
		fp.WholeCost = pe.Base.WholeProgramCost
		fp.LoopCarried = pe.Base.DP.LoopCarried
	}
	for _, fs := range pe.segs {
		seg := FrozenSegment{
			Start:  fs.start,
			Len:    fs.n,
			Shape:  fs.shape,
			Cyclic: fs.set.Cyclic,
		}
		for id, sub := range fs.set.Partition.Assign {
			seg.Assign = append(seg.Assign, FrozenAssign{Array: id.Array, Dim: id.Dim, Subset: sub})
		}
		sort.Slice(seg.Assign, func(i, j int) bool {
			a, b := seg.Assign[i], seg.Assign[j]
			if a.Array != b.Array {
				return a.Array < b.Array
			}
			return a.Dim < b.Dim
		})
		fp.Segments = append(fp.Segments, seg)
	}
	// Segment costs, for reporting parity with a fresh compile.
	if pe.Base != nil {
		for i, seg := range pe.Base.DP.Segments {
			if i < len(fp.Segments) {
				fp.Segments[i].M = seg.M
				fp.Segments[i].Change = seg.ChangeIn
			}
		}
	}
	return fp
}

// Validate checks the plan against a program: segments must tile the
// nest sequence exactly and fits (when present) must cover every nest.
func (fp *FrozenPlan) Validate(p *ir.Program) error {
	if fp.Schema != FrozenPlanSchema {
		return fmt.Errorf("core: frozen plan schema %d, this build reads schema %d", fp.Schema, FrozenPlanSchema)
	}
	want := 1
	for _, seg := range fp.Segments {
		if seg.Start != want || seg.Len < 1 {
			return fmt.Errorf("core: frozen plan segment (%d,%d) does not tile the sequence at nest %d", seg.Start, seg.Len, want)
		}
		want += seg.Len
	}
	if want != len(p.Nests)+1 {
		return fmt.Errorf("core: frozen plan covers %d nests, program has %d", want-1, len(p.Nests))
	}
	if fp.ExecFits != nil && len(fp.ExecFits) != len(p.Nests) {
		return fmt.Errorf("core: frozen plan has %d exec fits for %d nests", len(fp.ExecFits), len(p.Nests))
	}
	if fp.LCFits != nil && len(fp.LCFits) != len(p.Nests) {
		return fmt.Errorf("core: frozen plan has %d loop-carried fits for %d nests", len(fp.LCFits), len(p.Nests))
	}
	if fp.ChgFits != nil && len(fp.ChgFits) != len(fp.Segments) {
		return fmt.Errorf("core: frozen plan has %d change fits for %d segments", len(fp.ChgFits), len(fp.Segments))
	}
	return nil
}

// Thaw reconstructs a PlanEvaluator for the compiler's program from a
// frozen plan, without compiling: alignment partitions and scheme sets
// are re-derived from the recorded decisions, and any recorded fits are
// reinstated. The compiler must be configured identically to the one
// that produced the plan (same CacheKey) for the evaluator to be
// meaningful — the artifact store enforces that by keying on it.
func Thaw(c *Compiler, fp *FrozenPlan) (*PlanEvaluator, error) {
	if len(c.Program.Params) != 1 {
		return nil, fmt.Errorf("core: PlanEvaluator sweeps exactly one size parameter, program %s has %d", c.Program.Name, len(c.Program.Params))
	}
	if err := fp.Validate(c.Program); err != nil {
		return nil, err
	}
	pe := &PlanEvaluator{c: c, BaseM: fp.BaseM, execSym: fp.ExecFits, lcSym: fp.LCFits, chgSym: fp.ChgFits, fitMinM: fp.FitMinM}
	bind := map[string]int{c.Program.Params[0]: fp.BaseM}
	for _, seg := range fp.Segments {
		pt := align.Partition{Assign: map[ir.DimID]int{}, Method: "thawed"}
		for _, a := range seg.Assign {
			pt.Assign[ir.DimID{Array: a.Array, Dim: a.Dim}] = a.Subset
		}
		set, err := DeriveSchemes(c.Program, pt, seg.Shape, bind, seg.Cyclic)
		if err != nil {
			return nil, fmt.Errorf("core: thawing segment (%d,%d): %w", seg.Start, seg.Len, err)
		}
		pe.segs = append(pe.segs, frozenSeg{start: seg.Start, n: seg.Len, shape: seg.Shape, set: set})
	}
	return pe, nil
}
