package core

import (
	"testing"

	"dmcc/internal/artifact"
	"dmcc/internal/cost"
	"dmcc/internal/ir"
)

// TestSignatureGolden pins SchemeSet.Signature() for the paper's three
// programs to committed golden strings. Signatures are cache-key
// material (ChangeCost/LoopCarriedCost memoization and, through
// Compiler.CacheKey, the on-disk artifact store), so they must not
// drift silently across refactors: a signature that changes for an
// unchanged placement would split caches; one that changes because
// placement semantics changed would make stale artifacts read as
// current.
//
// If this test fails because Signature() legitimately changed (new
// scheme fields, different canonical encoding), update the golden
// strings AND bump artifact.SchemaVersion in the same commit, so every
// previously written artifact reads as a miss instead of as a wrong
// hit.
func TestSignatureGolden(t *testing.T) {
	// Guard the pairing described above: the goldens below were
	// committed for schema version 2 (the FrozenPlan payload gained
	// symbolic scheme-change fits; the signatures themselves did not
	// change). Whoever bumps one must revisit the other.
	if artifact.SchemaVersion != 2 {
		t.Fatalf("artifact.SchemaVersion = %d: re-verify the golden signatures below were updated with it", artifact.SchemaVersion)
	}

	const m, n = 16, 4
	golden := map[string]struct {
		mk       func() *ir.Program
		segments []string // DP segments, in order
		whole    string   // SegmentCost(1, s) whole-program set
	}{
		"jacobi": {
			mk: ir.Jacobi,
			segments: []string{
				"gx4x1;A:[+1 -1 4 cfalse g0][+1 -1 16 cfalse g1];B:[+1 -1 4 cfalse g0]f1=-1;V:[+1 -1 4 cfalse g0]f1=-1;X:[+1 -1 16 cfalse g1]f0=-1",
				"gx4x1;A:[+1 -1 4 cfalse g0][+1 -1 16 cfalse g1];B:[+1 -1 4 cfalse g0]f1=-1;V:[+1 -1 4 cfalse g0]f1=-1;X:[+1 -1 4 cfalse g0]f1=-1",
			},
			whole: "gx1x4;A:[+1 -1 16 cfalse g0][+1 -1 4 cfalse g1];B:[+1 -1 4 cfalse g1]f0=-1;V:[+1 -1 16 cfalse g0]f1=-1;X:[+1 -1 4 cfalse g1]f0=-1",
		},
		"sor": {
			mk: ir.SOR,
			segments: []string{
				"gx1x4;A:[+1 -1 16 cfalse g0][+1 -1 4 cfalse g1];B:[+1 -1 4 cfalse g1]f0=-1;V:[+1 -1 16 cfalse g0]f1=-1;X:[+1 -1 4 cfalse g1]f0=-1",
			},
			whole: "gx1x4;A:[+1 -1 16 cfalse g0][+1 -1 4 cfalse g1];B:[+1 -1 4 cfalse g1]f0=-1;V:[+1 -1 16 cfalse g0]f1=-1;X:[+1 -1 4 cfalse g1]f0=-1",
		},
		"gauss": {
			mk: ir.Gauss,
			segments: []string{
				"gx2x2;A:[+1 -1 1 ctrue g0][+1 -1 1 ctrue g1];B:[+1 -1 1 ctrue g0]f1=-1;L:[+1 -1 1 ctrue g0][+1 -1 1 ctrue g1];V:[+1 -1 1 ctrue g0]f1=-1;X:[+1 -1 1 ctrue g1]f0=-1",
			},
			whole: "gx2x2;A:[+1 -1 1 ctrue g0][+1 -1 1 ctrue g1];B:[+1 -1 1 ctrue g0]f1=-1;L:[+1 -1 1 ctrue g0][+1 -1 1 ctrue g1];V:[+1 -1 1 ctrue g0]f1=-1;X:[+1 -1 1 ctrue g1]f0=-1",
		},
	}
	for name, g := range golden {
		g := g
		t.Run(name, func(t *testing.T) {
			p := g.mk()
			c := NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
			res, err := c.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.DP.Segments) != len(g.segments) {
				t.Fatalf("DP found %d segments, golden has %d — plan drift; update goldens and bump artifact.SchemaVersion",
					len(res.DP.Segments), len(g.segments))
			}
			for i, seg := range res.DP.Segments {
				if got := seg.Schemes.Signature(); got != g.segments[i] {
					t.Errorf("segment %d signature drift:\n got  %s\n want %s\nupdate the golden and bump artifact.SchemaVersion", i, got, g.segments[i])
				}
			}
			_, ss, err := c.SegmentCost(1, len(p.Nests))
			if err != nil {
				t.Fatal(err)
			}
			if got := ss.Signature(); got != g.whole {
				t.Errorf("whole-program signature drift:\n got  %s\n want %s\nupdate the golden and bump artifact.SchemaVersion", got, g.whole)
			}
		})
	}
}
