// PlanEvaluator: compile once, sweep the problem size symbolically.
//
// A Compile() run makes three kinds of decisions — component alignment,
// the grid-shape choice per segment, and the DP segmentation — and then
// prices the plan. The decisions are discrete and, for the paper's
// programs, stable across problem sizes; only the prices change with m.
// PlanEvaluator freezes the decisions at a base size and re-prices the
// frozen plan at any other size: schemes are re-derived per size (block
// sizes track ceil(m/N)), nest counts come from the analytic engine, and
// after Fit() from piecewise polynomials in m, so an m-sweep costs one
// compile plus O(degree) arithmetic per point instead of one compile per
// point.
package core

import (
	"fmt"

	"dmcc/internal/cost"
	"dmcc/internal/dist"
)

// frozenSeg is one segment of the frozen plan: which nests, on which
// grid shape, under which alignment partition.
type frozenSeg struct {
	start, n int // 1-based nest range [start, start+n-1]
	shape    [2]int
	set      *SchemeSet // schemes at the base size (partition carrier)
}

// PlanEvaluator re-prices one frozen compilation plan across problem
// sizes. Create with NewPlanEvaluator, optionally call Fit, then EvalAt.
type PlanEvaluator struct {
	c       *Compiler
	Base    *CompileResult
	BaseM   int
	segs    []frozenSeg
	execSym []*cost.SymbolicCounts // per nest (0-based), after Fit
	lcSym   []*cost.SymbolicCounts // loop-carried words per nest, after Fit
	chgSym  []*cost.SymbolicLoads  // boundary into segment i (chgSym[0] unused), after Fit
	fitMinM int                    // smallest size the fits cover; below it EvalAt prices numerically
}

// fittedAt reports whether size m is priced entirely from polynomials,
// so pricing needs no scheme derivation and no counting or
// redistribution calculator at all. Sizes below the fitted floor (a
// plan whose counts only become polynomial past a transient) fall back
// to the numeric path.
func (pe *PlanEvaluator) fittedAt(m int) bool {
	if pe.execSym == nil || pe.chgSym == nil || m < pe.fitMinM {
		return false
	}
	return !pe.c.Program.Iterative || pe.lcSym != nil
}

// PlanCost is the re-priced plan at one size, split the way DPResult
// splits it.
type PlanCost struct {
	Exec, Redist, LoopCarried float64
}

// Total is the full plan cost.
func (pc PlanCost) Total() float64 { return pc.Exec + pc.Redist + pc.LoopCarried }

// NewPlanEvaluator compiles the program at the compiler's bound size and
// freezes the resulting plan. The program must bind exactly one size
// parameter — the one the evaluator sweeps.
func NewPlanEvaluator(c *Compiler) (*PlanEvaluator, error) {
	if len(c.Program.Params) != 1 {
		return nil, fmt.Errorf("core: PlanEvaluator sweeps exactly one size parameter, program %s has %d", c.Program.Name, len(c.Program.Params))
	}
	res, err := c.Compile()
	if err != nil {
		return nil, err
	}
	pe := &PlanEvaluator{c: c, Base: res, BaseM: c.Bind[c.Program.Params[0]]}
	for _, seg := range res.DP.Segments {
		g := seg.Schemes.Grid
		pe.segs = append(pe.segs, frozenSeg{
			start: seg.Start, n: seg.Len,
			shape: [2]int{g.Extent(0), g.Extent(1)},
			set:   seg.Schemes,
		})
	}
	return pe, nil
}

// bindAt is the parameter binding for size m.
func (pe *PlanEvaluator) bindAt(m int) map[string]int {
	return map[string]int{pe.c.Program.Params[0]: m}
}

// setsAt re-derives every segment's schemes at size m under the frozen
// alignment and grid shape.
func (pe *PlanEvaluator) setsAt(m int) ([]*SchemeSet, error) {
	bind := pe.bindAt(m)
	sets := make([]*SchemeSet, len(pe.segs))
	for i, fs := range pe.segs {
		ss, err := DeriveSchemes(pe.c.Program, fs.set.Partition, fs.shape, bind, fs.set.Cyclic)
		if err != nil {
			return nil, err
		}
		sets[i] = ss
	}
	return sets, nil
}

// evalCompiler is a throwaway compiler bound at m, sharing the frozen
// plan's program and model; used for the redistribution and loop-carried
// terms, which the analytic calculators already answer in closed form.
func (pe *PlanEvaluator) evalCompiler(m int) *Compiler {
	return &Compiler{
		Program: pe.c.Program, Model: pe.c.Model, Bind: pe.bindAt(m),
		NProcs: pe.c.NProcs, Weights: pe.c.Weights, Jobs: 1,
		ExactNestCount:      pe.c.ExactNestCount,
		PipelinedReductions: pe.c.PipelinedReductions,
		Engines:             pe.c.Engines,
	}
}

// nestCountsAt prices nest t (0-based) of segment seg at size m: from
// the fitted polynomial when Fit has run, otherwise from the analytic
// counting engine.
func (pe *PlanEvaluator) nestCountsAt(t, m int, ss *SchemeSet, ec *Compiler) (cost.Counts, error) {
	if pe.execSym != nil && m >= pe.fitMinM {
		return pe.execSym[t].EvalAt(m)
	}
	nest := pe.c.Program.Nests[t]
	return ec.countNest(nest, ss, cost.CountOptions{
		IncludeRead: func(a string) bool { return !ec.isLoopCarriedRead(t, a) },
	})
}

// lcCountsAt prices the loop-carried words of nest t at size m.
func (pe *PlanEvaluator) lcCountsAt(t, m int, final *SchemeSet, ec *Compiler) (cost.Counts, error) {
	if pe.lcSym != nil && m >= pe.fitMinM {
		return pe.lcSym[t].EvalAt(m)
	}
	nest := pe.c.Program.Nests[t]
	return ec.countNest(nest, final, cost.CountOptions{
		IncludeRead:   func(a string) bool { return ec.isLoopCarriedRead(t, a) },
		SkipReduction: true,
		SkipFlops:     true,
	})
}

// EvalAt prices the frozen plan at size m. Execution and loop-carried
// counts come from fitted polynomials (after Fit) or the analytic
// engine; redistribution between segments comes from fitted load
// polynomials (after Fit) or the closed-form calculator. Nothing
// re-runs alignment, the shape search, or the DP — and once Fit has
// accepted the plan, nothing derives schemes or enumerates elements
// either: the whole price is O(degree) arithmetic.
func (pe *PlanEvaluator) EvalAt(m int) (PlanCost, error) {
	var sets []*SchemeSet
	var ec *Compiler
	if !pe.fittedAt(m) {
		var err error
		sets, err = pe.setsAt(m)
		if err != nil {
			return PlanCost{}, err
		}
		ec = pe.evalCompiler(m)
	}
	var pc PlanCost
	for i, fs := range pe.segs {
		var set *SchemeSet
		if sets != nil {
			set = sets[i]
		}
		for t := fs.start - 1; t < fs.start-1+fs.n; t++ {
			ct, err := pe.nestCountsAt(t, m, set, ec)
			if err != nil {
				return PlanCost{}, err
			}
			pc.Exec += ct.Time(pe.c.Model).Total()
		}
		if i > 0 {
			if pe.chgSym != nil && m >= pe.fitMinM {
				ml, err := pe.chgSym[i].MaxLoadAt(m)
				if err != nil {
					return PlanCost{}, err
				}
				pc.Redist += ml * pe.c.Model.Tc
			} else {
				chg, err := ec.ChangeCost(sets[i-1], sets[i])
				if err != nil {
					return PlanCost{}, err
				}
				pc.Redist += chg
			}
		}
	}
	if pe.c.Program.Iterative {
		var final *SchemeSet
		if sets != nil {
			final = sets[len(sets)-1]
		}
		for t := range pe.c.Program.Nests {
			ct, err := pe.lcCountsAt(t, m, final, ec)
			if err != nil {
				return PlanCost{}, err
			}
			pc.LoopCarried += ct.Time(pe.c.Model).Comm
		}
	}
	return pc, nil
}

// Fit replaces per-size counting with piecewise polynomials in m: every
// nest's execution counts (and loop-carried words, for iterative
// programs) are sampled along each residue class of m modulo the grid
// period and fitted by forward differences, validated on held-out sizes.
// After a successful Fit, EvalAt no longer invokes the counting engine
// at all. Counts that are not piecewise polynomial (a plan that changes
// character with m) return an error and leave the evaluator unfitted.
func (pe *PlanEvaluator) Fit(minM, maxDeg, validate int) error {
	period := 1
	for _, fs := range pe.segs {
		period = lcm(period, lcm(fs.shape[0], fs.shape[1]))
	}
	segOf := make([]int, len(pe.c.Program.Nests))
	for i, fs := range pe.segs {
		for t := fs.start - 1; t < fs.start-1+fs.n; t++ {
			segOf[t] = i
		}
	}
	// One derived scheme set list and one throwaway compiler per sampled
	// size, shared across all nests' fits.
	type sampleCtx struct {
		sets []*SchemeSet
		ec   *Compiler
	}
	cache := map[int]*sampleCtx{}
	at := func(m int) (*sampleCtx, error) {
		if sc, ok := cache[m]; ok {
			return sc, nil
		}
		sets, err := pe.setsAt(m)
		if err != nil {
			return nil, err
		}
		sc := &sampleCtx{sets: sets, ec: pe.evalCompiler(m)}
		cache[m] = sc
		return sc, nil
	}
	execSym := make([]*cost.SymbolicCounts, len(pe.c.Program.Nests))
	var lcSym []*cost.SymbolicCounts
	for t := range pe.c.Program.Nests {
		t := t
		sym, err := cost.FitCounts(func(m int) (cost.Counts, error) {
			sc, err := at(m)
			if err != nil {
				return cost.Counts{}, err
			}
			return pe.nestCountsAt(t, m, sc.sets[segOf[t]], sc.ec)
		}, minM, period, maxDeg, validate)
		if err != nil {
			return fmt.Errorf("core: fitting nest %d: %w", t+1, err)
		}
		execSym[t] = sym
	}
	if pe.c.Program.Iterative {
		lcSym = make([]*cost.SymbolicCounts, len(pe.c.Program.Nests))
		for t := range pe.c.Program.Nests {
			t := t
			sym, err := cost.FitCounts(func(m int) (cost.Counts, error) {
				sc, err := at(m)
				if err != nil {
					return cost.Counts{}, err
				}
				return pe.lcCountsAt(t, m, sc.sets[len(sc.sets)-1], sc.ec)
			}, minM, period, maxDeg, validate)
			if err != nil {
				return fmt.Errorf("core: fitting loop-carried words of nest %d: %w", t+1, err)
			}
			lcSym[t] = sym
		}
	}
	// Segment boundaries: fit each scheme change's scaled loads. The
	// guard demands that the one-division evaluation MaxNum/Den*Tc
	// reproduce the numeric float accumulation bit for bit at every
	// sample; a plan whose replica splits don't round-trip exactly
	// (possible only for non-power-of-two replica counts) fails the
	// whole fit and keeps the numeric path.
	chgSym := make([]*cost.SymbolicLoads, len(pe.segs))
	for i := 1; i < len(pe.segs); i++ {
		i := i
		sym, err := cost.RedistLoadsPoly(func(m int) (dist.ScaledLoads, error) {
			sc, err := at(m)
			if err != nil {
				return dist.ScaledLoads{}, err
			}
			sl, err := sc.ec.changeLoadsScaled(sc.sets[i-1], sc.sets[i])
			if err != nil {
				return dist.ScaledLoads{}, err
			}
			numeric, err := sc.ec.ChangeCost(sc.sets[i-1], sc.sets[i])
			if err != nil {
				return dist.ScaledLoads{}, err
			}
			if float64(sl.MaxNum())/float64(sl.Den)*pe.c.Model.Tc != numeric {
				return dist.ScaledLoads{}, fmt.Errorf("core: scaled change loads drift from the float accumulation (denominator %d)", sl.Den)
			}
			return sl, nil
		}, minM, period, maxDeg, validate)
		if err != nil {
			return fmt.Errorf("core: fitting scheme change into segment %d: %w", i+1, err)
		}
		chgSym[i] = sym
	}
	pe.execSym, pe.lcSym, pe.chgSym = execSym, lcSym, chgSym
	pe.fitMinM = minM
	return nil
}

// Formulas renders the fitted per-nest counts; empty before Fit.
func (pe *PlanEvaluator) Formulas() []string {
	if pe.execSym == nil {
		return nil
	}
	out := make([]string, len(pe.execSym))
	for t, sym := range pe.execSym {
		label := pe.c.Program.Nests[t].Label
		if label == "" {
			label = fmt.Sprintf("L%d", t+1)
		}
		out[t] = fmt.Sprintf("%s: %s", label, sym)
	}
	return out
}

func lcm(a, b int) int {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}
