package core

import (
	"math"
	"testing"

	"dmcc/internal/cost"
	"dmcc/internal/dist"
	"dmcc/internal/grid"
	"dmcc/internal/ir"
)

func jacobiCompiler(m, n int) *Compiler {
	return NewCompiler(ir.Jacobi(), cost.Unit(), map[string]int{"m": m}, n)
}

func TestGridShapes(t *testing.T) {
	s := GridShapes(16)
	if len(s) != 3 || s[0] != [2]int{16, 1} || s[1] != [2]int{1, 16} || s[2] != [2]int{4, 4} {
		t.Fatalf("shapes = %v", s)
	}
	if len(GridShapes(6)) != 2 {
		t.Fatal("non-square N must yield 2 shapes")
	}
	if len(GridShapes(1)) != 2 {
		t.Fatalf("N=1 shapes = %v", GridShapes(1))
	}
}

func TestTriangular(t *testing.T) {
	j := ir.Jacobi()
	if Triangular(j.Nests[0]) || Triangular(j.Nests[1]) {
		t.Fatal("Jacobi nests are rectangular")
	}
	g := ir.Gauss()
	if !Triangular(g.Nests[0]) {
		t.Fatal("Gauss G1 is triangular")
	}
	if Triangular(g.Nests[1]) {
		t.Fatal("Gauss G2 is rectangular")
	}
	if !Triangular(g.Nests[2]) {
		t.Fatal("Gauss G3 is triangular")
	}
}

func TestDeriveSchemesJacobiRow(t *testing.T) {
	c := jacobiCompiler(16, 4)
	pt, err := c.alignNests(c.Program.Nests[1:]) // L2: everything with A1
	if err != nil {
		t.Fatal(err)
	}
	ss, err := DeriveSchemes(c.Program, pt, [2]int{4, 1}, c.Bind, false)
	if err != nil {
		t.Fatal(err)
	}
	// A row-blocked: A(5,3) on processor (1,0).
	coords := ss.Schemes["A"].GridCoords(ss.Grid, 5, 3)
	if coords[0] != 1 || coords[1] != 0 {
		t.Fatalf("A(5,3) coords = %v", coords)
	}
	// X blocked along the same dimension: X(5) on rank of (1,0).
	xo := ss.Schemes["X"].Owners(ss.Grid, 5)
	if len(xo) != 1 || xo[0] != ss.Grid.Rank(1, 0) {
		t.Fatalf("X(5) owners = %v", xo)
	}
}

// TestAlgorithm1JacobiMatchesSection4: the DP must find the row scheme
// with total per-iteration cost (2m^2/N + 3m/N)tf + ~m tc and beat the
// whole-program Section 3 baseline.
func TestAlgorithm1JacobiMatchesSection4(t *testing.T) {
	m, n := 32, 4
	c := jacobiCompiler(m, n)
	res, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fm, fn := float64(m), float64(n)
	wantComp := 2*fm*fm/fn + 3*fm/fn
	// Loop-carried X broadcast: every processor needs the m - m/N
	// elements it does not own.
	wantLC := fm - fm/fn

	segTotal := res.DP.SegmentTotal
	if math.Abs(segTotal-wantComp) > 1e-9 {
		t.Errorf("segment total = %v, want computation-only %v (schemes should make L1+L2 local)", segTotal, wantComp)
	}
	if math.Abs(res.DP.LoopCarried-wantLC) > 1e-9 {
		t.Errorf("loop-carried = %v, want %v", res.DP.LoopCarried, wantLC)
	}
	if res.DP.MinimumCost >= res.WholeProgramCost {
		t.Errorf("DP cost %v must beat whole-program cost %v", res.DP.MinimumCost, res.WholeProgramCost)
	}
	// The chosen final segment must be on an Nx1 grid (row distribution).
	last := res.DP.Segments[len(res.DP.Segments)-1]
	if last.Schemes.Grid.Extent(0) != n || last.Schemes.Grid.Extent(1) != 1 {
		t.Errorf("final grid = %v, want %dx1", last.Schemes.Grid, n)
	}
	// Segments must cover loops 1..2 contiguously.
	covered := 0
	for _, s := range res.DP.Segments {
		if s.Start != covered+1 {
			t.Errorf("segment %v does not continue coverage at %d", s, covered+1)
		}
		covered += s.Len
	}
	if covered != 2 {
		t.Errorf("covered %d loops", covered)
	}
}

// TestFig3CostStructure: the two-segment decomposition of Fig 3 — L1 cost,
// change cost, L2 cost, loop-carried cost — evaluated explicitly.
func TestFig3CostStructure(t *testing.T) {
	m, n := 32, 4
	c := jacobiCompiler(m, n)
	m1, p1, err := c.SegmentCost(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, p2, err := c.SegmentCost(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	chg, err := c.ChangeCost(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := c.LoopCarriedCost(p2)
	if err != nil {
		t.Fatal(err)
	}
	fm, fn := float64(m), float64(n)
	if math.Abs(m1-2*fm*fm/fn) > 1e-9 {
		t.Errorf("Time1 = %v, want %v", m1, 2*fm*fm/fn)
	}
	if math.Abs(m2-3*fm/fn) > 1e-9 {
		t.Errorf("Time2 = %v, want %v", m2, 3*fm/fn)
	}
	if chg != 0 {
		t.Errorf("CTime1 = %v, want 0 (paper: no data movement L1->L2)", chg)
	}
	if math.Abs(lc-(fm-fm/fn)) > 1e-9 {
		t.Errorf("CTime2 = %v, want %v", lc, fm-fm/fn)
	}
	total := m1 + m2 + chg + lc
	res, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if res.DP.MinimumCost > total+1e-9 {
		t.Errorf("DP cost %v exceeds explicit two-segment cost %v", res.DP.MinimumCost, total)
	}
}

func TestChangeCostSymmetricSchemes(t *testing.T) {
	c := jacobiCompiler(16, 4)
	_, p1, err := c.SegmentCost(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chg, err := c.ChangeCost(p1, p1); err != nil || chg != 0 {
		t.Fatalf("self change cost = %v, %v", chg, err)
	}
	if _, err := c.ChangeCost(nil, p1); err == nil {
		t.Fatal("nil scheme set not rejected")
	}
}

func TestChangeCostRowToColumn(t *testing.T) {
	// Forcing a row->column switch must cost roughly the off-diagonal
	// blocks of A: m^2 (1 - 1/N) words spread over N processors.
	m, n := 16, 4
	c := jacobiCompiler(m, n)
	pt1, err := c.alignNests(c.Program.Nests[:1])
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DeriveSchemes(c.Program, pt1, [2]int{n, 1}, c.Bind, false)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := DeriveSchemes(c.Program, pt1, [2]int{1, n}, c.Bind, false)
	if err != nil {
		t.Fatal(err)
	}
	chg, err := c.ChangeCost(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if chg <= 0 {
		t.Fatalf("row->column change cost = %v, want > 0", chg)
	}
}

func TestCompileGaussPicksCyclicRing(t *testing.T) {
	m, n := 12, 4
	c := NewCompiler(ir.Gauss(), cost.Unit(), map[string]int{"m": m}, n)
	res, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Triangular nests force cyclic distributions.
	for _, seg := range res.DP.Segments {
		hasTri := false
		for t2 := seg.Start - 1; t2 < seg.Start-1+seg.Len; t2++ {
			if Triangular(c.Program.Nests[t2]) {
				hasTri = true
			}
		}
		if hasTri && !seg.Schemes.Cyclic {
			t.Errorf("triangular segment %+v not cyclic", seg)
		}
	}
	// Every analysed nest must be pipelinable (Section 6's conclusion).
	if len(res.Pipelining) == 0 {
		t.Fatal("no pipelining analysis produced")
	}
	for _, d := range res.Pipelining {
		if !d.CanPipeline {
			t.Errorf("nest %s not pipelinable under mapping %v", d.Mapping.Nest, d.Mapping)
		}
	}
}

func TestCompileSOR(t *testing.T) {
	c := NewCompiler(ir.SOR(), cost.Unit(), map[string]int{"m": 16}, 4)
	res, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DP.Segments) != 1 {
		t.Fatalf("SOR has one nest; segments = %d", len(res.DP.Segments))
	}
	if len(res.Pipelining) != 1 || !res.Pipelining[0].CanPipeline {
		t.Fatalf("SOR must be pipelinable: %+v", res.Pipelining)
	}
}

// TestCompileSORPipelinedPicksNewLayout: the Algorithm 1 consequence of
// the Section 5 pricing — at m=64 on 16 processors the tree-priced DP
// settles on a 4x4 grid, but once reductions are priced as the ring
// pipeline the inner-product column layout stops being penalised for
// its combining traffic and the DP selects a 1x16 grid it previously
// rejected, at a strictly lower minimum cost.
func TestCompileSORPipelinedPicksNewLayout(t *testing.T) {
	m, n := 64, 16
	tree := NewCompiler(ir.SOR(), cost.Unit(), map[string]int{"m": m}, n)
	rtree, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewCompiler(ir.SOR(), cost.Unit(), map[string]int{"m": m}, n)
	pipe.PipelinedReductions = true
	rpipe, err := pipe.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if rpipe.DP.MinimumCost >= rtree.DP.MinimumCost {
		t.Errorf("pipelined minimum %v, want < tree minimum %v",
			rpipe.DP.MinimumCost, rtree.DP.MinimumCost)
	}
	gp := rpipe.DP.Segments[0].Schemes.Grid
	gt := rtree.DP.Segments[0].Schemes.Grid
	if gp.Extent(0) != 1 || gp.Extent(1) != n {
		t.Errorf("pipelined DP picked grid %v, want 1x%d column layout", gp, n)
	}
	if gt.Extent(0) == gp.Extent(0) && gt.Extent(1) == gp.Extent(1) {
		t.Errorf("tree and pipelined DP picked the same grid %v — layout did not change", gt)
	}
}

func TestCompileWithGreedyAlign(t *testing.T) {
	c := jacobiCompiler(16, 4)
	c.UseGreedyAlign = true
	res, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cExact := jacobiCompiler(16, 4)
	resExact, err := cExact.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if res.DP.MinimumCost < resExact.DP.MinimumCost-1e-9 {
		t.Errorf("greedy alignment cost %v beats exact %v", res.DP.MinimumCost, resExact.DP.MinimumCost)
	}
}

func TestSegmentCostErrors(t *testing.T) {
	c := jacobiCompiler(8, 4)
	if _, _, err := c.SegmentCost(0, 1); err == nil {
		t.Fatal("segment (0,1) accepted")
	}
	if _, _, err := c.SegmentCost(1, 3); err == nil {
		t.Fatal("segment past end accepted")
	}
}

func TestRunDPWithSyntheticCosts(t *testing.T) {
	// Three loops: loops 1 and 2 share a cheap common scheme, loop 3
	// prefers a different one; switching costs 5.
	mk := func(label string) *SchemeSet { return &SchemeSet{Label: label} }
	pa, pb := mk("a"), mk("b")
	coster := &fakeCoster{
		m: map[[2]int]struct {
			c  float64
			ss *SchemeSet
		}{
			{1, 1}: {10, pa}, {1, 2}: {15, pa}, {1, 3}: {100, pa},
			{2, 1}: {10, pa}, {2, 2}: {80, pa},
			{3, 1}: {20, pb},
		},
		change: func(f, t *SchemeSet) float64 {
			if f == t {
				return 0
			}
			return 5
		},
	}
	res, err := RunDP(3, coster, false)
	if err != nil {
		t.Fatal(err)
	}
	// Best: [1,2] as one segment (15) + [3] (20) + change 5 = 40.
	if math.Abs(res.MinimumCost-40) > 1e-9 {
		t.Fatalf("min cost = %v, want 40", res.MinimumCost)
	}
	if len(res.Segments) != 2 || res.Segments[0].Len != 2 || res.Segments[1].Start != 3 {
		t.Fatalf("segments = %+v", res.Segments)
	}
}

func TestRunDPSingleLoop(t *testing.T) {
	pa := &SchemeSet{Label: "a"}
	coster := &fakeCoster{
		m: map[[2]int]struct {
			c  float64
			ss *SchemeSet
		}{{1, 1}: {7, pa}},
		change: func(f, t *SchemeSet) float64 { return 0 },
		lc:     3,
	}
	res, err := RunDP(1, coster, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinimumCost != 10 || res.LoopCarried != 3 {
		t.Fatalf("res = %+v", res)
	}
	if _, err := RunDP(0, coster, false); err == nil {
		t.Fatal("s=0 accepted")
	}
}

type fakeCoster struct {
	m map[[2]int]struct {
		c  float64
		ss *SchemeSet
	}
	change func(f, t *SchemeSet) float64
	lc     float64
}

func (f *fakeCoster) SegmentCost(i, j int) (float64, *SchemeSet, error) {
	v, ok := f.m[[2]int{i, j}]
	if !ok {
		return math.Inf(1), &SchemeSet{Label: "inf"}, nil
	}
	return v.c, v.ss, nil
}
func (f *fakeCoster) ChangeCost(a, b *SchemeSet) (float64, error) { return f.change(a, b), nil }
func (f *fakeCoster) LoopCarriedCost(s *SchemeSet) (float64, error) {
	return f.lc, nil
}

func TestDistributedDim(t *testing.T) {
	c := jacobiCompiler(16, 4)
	_, ss, err := c.SegmentCost(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := distributedDim(ss, "A"); d != 0 {
		t.Fatalf("A distributed dim = %d under %v", d, ss)
	}
	if d := distributedDim(ss, "nope"); d != -1 {
		t.Fatal("missing array must report -1")
	}
}

func TestSchemeSetString(t *testing.T) {
	var ss *SchemeSet
	if ss.String() != "<nil>" {
		t.Fatal("nil String wrong")
	}
	c := jacobiCompiler(8, 4)
	_, p1, err := c.SegmentCost(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDeriveSchemesValidatesAll(t *testing.T) {
	// All schemes in a derived set must be valid for their arrays.
	m, n := 10, 4
	c := NewCompiler(ir.Gauss(), cost.Unit(), map[string]int{"m": m}, n)
	pt, err := c.alignNests(c.Program.Nests)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range GridShapes(n) {
		for _, cyc := range []bool{false, true} {
			ss, err := DeriveSchemes(c.Program, pt, shape, c.Bind, cyc)
			if err != nil {
				t.Fatalf("shape %v cyclic %v: %v", shape, cyc, err)
			}
			for name := range c.Program.Arrays {
				if _, ok := ss.Schemes[name]; !ok {
					t.Fatalf("array %s missing", name)
				}
			}
		}
	}
	_ = dist.All
}

// redistCoster drives Algorithm 1 with fixed segment costs while the
// change term comes from the real Compiler.ChangeCost, so the DP's
// merge-or-redistribute decision hinges purely on how the scheme change
// is priced.
type redistCoster struct {
	c     *Compiler
	a, b  *SchemeSet
	merge float64
}

func (r *redistCoster) SegmentCost(i, j int) (float64, *SchemeSet, error) {
	switch {
	case j == 2:
		return r.merge, r.a, nil
	case i == 1:
		return 10, r.a, nil
	default:
		return 10, r.b, nil
	}
}

func (r *redistCoster) ChangeCost(from, to *SchemeSet) (float64, error) {
	return r.c.ChangeCost(from, to)
}

func (r *redistCoster) LoopCarriedCost(*SchemeSet) (float64, error) { return 0, nil }

// TestDPSelectsCollectiveRedistribution: the Algorithm 1 consequence of
// the CollectiveRedist pricing, the ChangeCost analogue of the SOR ring
// flip. Nest 1 wants X pinned to one grid column, nest 2 wants X
// replicated across columns — a replication widening. Point-to-point
// pricing charges the widening as a star on the sending column
// (payload x (W-1) = 48 at m=64 on 4x4), making the redistribution dearer
// than a compromise single-layout segment, so the DP stays in the worse
// layout. The collective pricing lowers the same change to per-group
// multicast trees (payload x log2 W = 32), and the DP flips to two
// segments, buying the redistribution it previously rejected.
func TestDPSelectsCollectiveRedistribution(t *testing.T) {
	m, n := 64, 16
	prog := &ir.Program{
		Name: "redistflip", Params: []string{"m"},
		Arrays: map[string]*ir.Array{"X": {Name: "X", Extents: []ir.Affine{ir.V("m")}}},
	}
	g := grid.New(4, 4)
	colLayout := &SchemeSet{Grid: g, Label: "col2", Schemes: map[string]dist.Scheme{
		"X": {Dims: []dist.Dim{dist.Cyclic(0)}, Fixed: map[int]int{1: 2}},
	}}
	replLayout := &SchemeSet{Grid: g, Label: "repl", Schemes: map[string]dist.Scheme{
		"X": {Dims: []dist.Dim{dist.Cyclic(0)}, Fixed: map[int]int{1: dist.All}},
	}}

	p2p := NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
	p2p.NoCache = true
	coll := NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
	coll.NoCache = true
	coll.CollectiveRedist = true

	chgP2P, err := p2p.ChangeCost(colLayout, replLayout)
	if err != nil {
		t.Fatal(err)
	}
	chgColl, err := coll.ChangeCost(colLayout, replLayout)
	if err != nil {
		t.Fatal(err)
	}
	if chgP2P != 48 || chgColl != 32 {
		t.Fatalf("change costs p2p=%v collective=%v, want 48 and 32", chgP2P, chgColl)
	}

	// The compromise single-layout cost sits between the two split
	// totals (10+10+32 = 52 and 10+10+48 = 68).
	const merge = 60
	rp2p, err := RunDP(2, &redistCoster{c: p2p, a: colLayout, b: replLayout, merge: merge}, false)
	if err != nil {
		t.Fatal(err)
	}
	rcoll, err := RunDP(2, &redistCoster{c: coll, a: colLayout, b: replLayout, merge: merge}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp2p.Segments) != 1 || rp2p.MinimumCost != merge {
		t.Fatalf("p2p DP = %d segments cost %v, want the single merged segment at %v",
			len(rp2p.Segments), rp2p.MinimumCost, float64(merge))
	}
	if len(rcoll.Segments) != 2 {
		t.Fatalf("collective DP kept %d segment(s); want it to buy the redistribution", len(rcoll.Segments))
	}
	if rcoll.Segments[1].ChangeIn != chgColl {
		t.Fatalf("collective DP paid ChangeIn %v, want %v", rcoll.Segments[1].ChangeIn, chgColl)
	}
	if rcoll.MinimumCost >= rp2p.MinimumCost {
		t.Fatalf("collective minimum %v not below p2p minimum %v", rcoll.MinimumCost, rp2p.MinimumCost)
	}

	// The pricing option is part of the compile cache identity.
	if p2p.CacheKey() == coll.CacheKey() {
		t.Fatal("CollectiveRedist does not change the cache key")
	}
}

// TestCollectiveChangeCostNeverWorse: on compiler-derived candidate
// scheme sets the collective pricing never exceeds the point-to-point
// pricing — the composed lowering falls back to the flat exchange
// whenever the trees offer no advantage.
func TestCollectiveChangeCostNeverWorse(t *testing.T) {
	for _, prog := range []*ir.Program{ir.Jacobi(), ir.SOR(), ir.Gauss()} {
		m, n := 16, 16
		c := NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
		pt, err := c.alignNests(c.Program.Nests)
		if err != nil {
			t.Fatal(err)
		}
		var sets []*SchemeSet
		for _, shape := range GridShapes(n) {
			for _, cyc := range []bool{false, true} {
				ss, err := DeriveSchemes(c.Program, pt, shape, c.Bind, cyc)
				if err != nil {
					t.Fatalf("%s shape %v: %v", prog.Name, shape, err)
				}
				sets = append(sets, ss)
			}
		}
		coll := NewCompiler(prog, cost.Unit(), map[string]int{"m": m}, n)
		coll.CollectiveRedist = true
		for _, from := range sets {
			for _, to := range sets {
				a, err := c.ChangeCost(from, to)
				if err != nil {
					t.Fatal(err)
				}
				b, err := coll.ChangeCost(from, to)
				if err != nil {
					t.Fatal(err)
				}
				if b > a+1e-9 {
					t.Fatalf("%s: collective change %v exceeds p2p %v (%s -> %s)",
						prog.Name, b, a, from.Label, to.Label)
				}
			}
		}
	}
}
