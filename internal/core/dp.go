// Algorithm 1 of Section 4: a dynamic programming algorithm computing the
// minimum cost order of data distribution schemes for executing a
// sequence of s Do-loops on the distributed memory computer.
//
// Let M[i][j] be the cost of computing loops L_i .. L_{i+j-1} under the
// single scheme P[i][j] found by component alignment of that subsequence,
// and T[i][j] the minimum cost of computing L_1 .. L_{i+j-1} such that the
// final segment is exactly (i, j). Then
//
//	T[1][j] = M[1][j]
//	T[i][j] = min over 1 <= k < i of
//	          T[i-k][k] + M[i][j] + cost(P[i-k][k] -> P[i][j])
//
// and the answer is min over k of T[s-k+1][k] plus, for iterative
// programs, the loop-carried-dependence cost of the final scheme.
package core

import (
	"fmt"
	"math"
)

// SegmentCoster abstracts the cost queries Algorithm 1 needs, so the DP
// can be driven either by the exact enumeration counter (package cost) or
// by closed-form models in tests.
type SegmentCoster interface {
	// SegmentCost returns M[i][j] and P[i][j] for loops L_i..L_{i+j-1}
	// (1-based i, j >= 1).
	SegmentCost(i, j int) (float64, *SchemeSet, error)
	// ChangeCost prices the redistribution from one scheme set to the
	// next between consecutive segments (the cost(P,P') term).
	ChangeCost(from, to *SchemeSet) (float64, error)
	// LoopCarriedCost prices the loop-carried dependences of an iterative
	// program under the final segment's schemes (the CTime2 term).
	LoopCarriedCost(final *SchemeSet) (float64, error)
}

// Segment is one run of consecutive loops executed under one scheme set.
type Segment struct {
	Start, Len int // 1-based loop range [Start, Start+Len-1]
	Schemes    *SchemeSet
	M          float64 // segment execution cost
	ChangeIn   float64 // redistribution cost paid entering this segment
}

// DPResult is the outcome of Algorithm 1.
type DPResult struct {
	Segments []Segment
	// SegmentTotal is the sum of M and redistribution costs.
	SegmentTotal float64
	// LoopCarried is the final loop-carried term (0 for non-iterative).
	LoopCarried float64
	// MinimumCost = SegmentTotal + LoopCarried.
	MinimumCost float64
	// T holds the DP table for reports: T[i][j], 1-based, 0 unused.
	T [][]float64
}

// RunDP executes Algorithm 1 for a sequence of s loops.
func RunDP(s int, coster SegmentCoster, iterative bool) (*DPResult, error) {
	if s < 1 {
		return nil, fmt.Errorf("core: DP over %d loops", s)
	}
	type cell struct {
		t       float64
		prevK   int // length of the previous segment (0 for first)
		m       float64
		changed float64
		schemes *SchemeSet
	}
	// M and P are memoized via coster; T indexed [i][j].
	table := make([][]cell, s+1)
	for i := range table {
		table[i] = make([]cell, s+2)
		for j := range table[i] {
			table[i][j].t = math.Inf(1)
		}
	}
	mCache := map[[2]int]struct {
		m  float64
		ss *SchemeSet
	}{}
	getM := func(i, j int) (float64, *SchemeSet, error) {
		if v, ok := mCache[[2]int{i, j}]; ok {
			return v.m, v.ss, nil
		}
		m, ss, err := coster.SegmentCost(i, j)
		if err != nil {
			return 0, nil, err
		}
		mCache[[2]int{i, j}] = struct {
			m  float64
			ss *SchemeSet
		}{m, ss}
		return m, ss, nil
	}

	for j := 1; j <= s; j++ {
		m, ss, err := getM(1, j)
		if err != nil {
			return nil, err
		}
		table[1][j] = cell{t: m, prevK: 0, m: m, schemes: ss}
	}
	for i := 2; i <= s; i++ {
		for j := 1; j <= s-i+1; j++ {
			m, ss, err := getM(i, j)
			if err != nil {
				return nil, err
			}
			bestT := math.Inf(1)
			bestK := 0
			bestChange := 0.0
			for k := 1; k < i; k++ {
				prev := table[i-k][k]
				if math.IsInf(prev.t, 1) {
					continue
				}
				chg, err := coster.ChangeCost(prev.schemes, ss)
				if err != nil {
					return nil, err
				}
				if t := prev.t + m + chg; t < bestT {
					bestT, bestK, bestChange = t, k, chg
				}
			}
			table[i][j] = cell{t: bestT, prevK: bestK, m: m, changed: bestChange, schemes: ss}
		}
	}

	// Final minimization over the last segment's length.
	bestCost := math.Inf(1)
	bestK := 0
	bestLC := 0.0
	for k := 1; k <= s; k++ {
		c := table[s-k+1][k]
		if math.IsInf(c.t, 1) {
			continue
		}
		lc := 0.0
		if iterative {
			var err error
			lc, err = coster.LoopCarriedCost(c.schemes)
			if err != nil {
				return nil, err
			}
		}
		if t := c.t + lc; t < bestCost {
			bestCost, bestK, bestLC = t, k, lc
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("core: DP found no feasible segmentation")
	}

	// Trace back the chosen segmentation.
	var segs []Segment
	i, j := s-bestK+1, bestK
	for {
		c := table[i][j]
		segs = append([]Segment{{Start: i, Len: j, Schemes: c.schemes, M: c.m, ChangeIn: c.changed}}, segs...)
		if c.prevK == 0 {
			break
		}
		i, j = i-c.prevK, c.prevK
	}

	res := &DPResult{
		Segments:    segs,
		LoopCarried: bestLC,
		MinimumCost: bestCost,
	}
	res.SegmentTotal = bestCost - bestLC
	res.T = make([][]float64, s+1)
	for ii := 1; ii <= s; ii++ {
		res.T[ii] = make([]float64, s+2)
		for jj := 1; jj <= s-ii+1; jj++ {
			res.T[ii][jj] = table[ii][jj].t
		}
	}
	return res, nil
}
