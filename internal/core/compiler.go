// The compile driver: wires component alignment, exact cost counting, the
// dynamic programming algorithm, and the dependence-driven pipelining
// decision into the pipeline of the paper.
//
// The cost engine behind Algorithm 1 is built for speed:
//
//   - ChangeCost is computed analytically (dist.RedistLoads) from
//     per-dimension interval intersections instead of enumerating array
//     elements; the element-wise oracle remains available behind
//     ExactChangeCost for ablation and property testing.
//   - Nest execution counts go through cost.CountNestOpts, which answers
//     in closed form (owner-interval/residue intersections per dimension,
//     factorized across dimensions) for affine nests and falls back to a
//     compiled iteration walker otherwise; the reference enumerator stays
//     behind ExactNestCount for ablation and equivalence testing.
//   - SegmentCost, ChangeCost and LoopCarriedCost results are memoized
//     (segment costs by (i,j), redistribution costs by canonical
//     SchemeSet signature pairs), collapsing the DP's O(s³) cost-engine
//     invocations to O(distinct inputs).
//   - Candidate grid shapes inside a segment and the DP's M[i][j] table
//     are evaluated on a NumCPU-bounded worker pool. Parallel runs only
//     warm the memoization caches; the DP itself then runs serially over
//     cached values, so results are bit-identical to Jobs=1.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dmcc/internal/align"
	"dmcc/internal/cost"
	"dmcc/internal/dep"
	"dmcc/internal/dist"
	"dmcc/internal/ir"
)

// Compiler compiles one program for a machine with NProcs processors.
type Compiler struct {
	Program *ir.Program
	Model   cost.Model
	// Bind gives values to the program's size parameters, e.g. {"m": 64}.
	Bind map[string]int
	// NProcs is the total processor count.
	NProcs int
	// Weights parameterizes affinity-graph edge weights.
	Weights align.WeightParams
	// UseGreedyAlign switches the alignment heuristic (ablation).
	UseGreedyAlign bool
	// Jobs bounds the cost-engine worker pool; 0 means runtime.NumCPU(),
	// 1 forces the serial path.
	Jobs int
	// ExactChangeCost prices redistribution with the element-enumeration
	// oracle instead of the analytic calculator (ablation/reference).
	ExactChangeCost bool
	// ExactNestCount prices nest execution with the reference
	// iteration-space walker (cost.CountNestOptsExact) instead of the
	// analytic/compiled-walker dispatcher — the PR 1 engine, kept for
	// ablation and byte-identical-result testing.
	ExactNestCount bool
	// NoCache disables cost memoization (ablation).
	NoCache bool
	// PipelinedReductions prices multi-processor reductions as the §5
	// ring pipeline the exec backend lowers them to (a neighbour chain
	// of partial folds) instead of the naive log-depth combining tree.
	// The chain moves the same number of words but serialises them one
	// hop per processor, so no processor — the root in particular —
	// receives more than O(1) reduction messages per element, which
	// lets the DP keep layouts the tree pricing rejected.
	PipelinedReductions bool
	// CollectiveRedist prices inter-segment scheme changes as the
	// composed collective lowering (dist.ClassifyChange: an AllToAll
	// personalized exchange plus per-group multicast trees) instead of
	// the point-to-point bottleneck load. Replication widenings then
	// cost O(m log W) rather than the O(m (W-1)) star, which can let
	// Algorithm 1 buy a cheap redistribution into a better layout that
	// the p2p pricing rejects — the ChangeCost analogue of what
	// PipelinedReductions does for SegmentCost.
	CollectiveRedist bool

	// Engines counts which counting engine answered each nest-pricing
	// call, so fast-path regressions (an eligible nest silently falling
	// back to the walker) are observable. Safe for concurrent use; the
	// pointer is shared when an evaluator clones the compiler.
	Engines *EngineStats

	mu       sync.Mutex
	poolOnce sync.Once
	sem      chan struct{}
	segCache map[[2]int]*segEntry
	chgCache map[string]*costEntry
	lcCache  map[string]*costEntry
}

// EngineStats are cumulative counting-engine telemetry counters. All
// fields are updated atomically.
type EngineStats struct {
	// AnalyticHits counts nests priced in closed form.
	AnalyticHits atomic.Int64
	// FastwalkFallbacks counts nests that fell back to the compiled
	// walker.
	FastwalkFallbacks atomic.Int64
	// ExactFallbacks counts nests priced by the reference enumerator
	// (only under the ExactNestCount ablation).
	ExactFallbacks atomic.Int64
}

// Snapshot returns the current counter values as a map keyed the way the
// dmcc report and the daemon /metrics endpoint expose them.
func (s *EngineStats) Snapshot() map[string]int64 {
	if s == nil {
		return map[string]int64{"analytic_hits": 0, "fastwalk_fallbacks": 0, "exact_fallbacks": 0}
	}
	return map[string]int64{
		"analytic_hits":      s.AnalyticHits.Load(),
		"fastwalk_fallbacks": s.FastwalkFallbacks.Load(),
		"exact_fallbacks":    s.ExactFallbacks.Load(),
	}
}

type segEntry struct {
	once sync.Once
	cost float64
	ss   *SchemeSet
	err  error
}

type costEntry struct {
	once sync.Once
	cost float64
	err  error
}

// NewCompiler returns a compiler with the standard configuration.
func NewCompiler(p *ir.Program, model cost.Model, bind map[string]int, nprocs int) *Compiler {
	wp := align.WeightParams{Bind: bind, N: nprocs, Tc: model.Tc}
	return &Compiler{Program: p, Model: model, Bind: bind, NProcs: nprocs, Weights: wp}
}

// jobs is the effective worker budget.
func (c *Compiler) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.NumCPU()
}

// fanOut runs fn(k) for k in [0, n) using at most jobs() concurrent
// workers drawn from a shared pool; calls run inline when the pool is
// saturated (so nested fan-outs never deadlock). fn must be safe to run
// concurrently with other indices.
func (c *Compiler) fanOut(n int, fn func(k int)) {
	if n <= 1 || c.jobs() == 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	c.poolOnce.Do(func() { c.sem = make(chan struct{}, c.jobs()) })
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		select {
		case c.sem <- struct{}{}:
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				defer func() { <-c.sem }()
				fn(k)
			}(k)
		default:
			fn(k)
		}
	}
	wg.Wait()
}

// countNest dispatches nest counting to the engine the configuration
// selects: the analytic/compiled-walker dispatcher by default, the
// reference walker under ExactNestCount.
func (c *Compiler) countNest(nest *ir.Nest, ss *SchemeSet, opts cost.CountOptions) (cost.Counts, error) {
	opts.PipelinedReduction = c.PipelinedReductions
	if c.ExactNestCount {
		if c.Engines != nil {
			c.Engines.ExactFallbacks.Add(1)
		}
		return cost.CountNestOptsExact(c.Program, nest, ss.Schemes, ss.Grid, c.Bind, opts)
	}
	ct, eng, err := cost.CountNestOptsEngine(c.Program, nest, ss.Schemes, ss.Grid, c.Bind, opts)
	if c.Engines != nil && err == nil {
		switch eng {
		case cost.EngineAnalytic:
			c.Engines.AnalyticHits.Add(1)
		default:
			c.Engines.FastwalkFallbacks.Add(1)
		}
	}
	return ct, err
}

// writtenAtOrAfter reports the arrays written by nests with (0-based)
// index >= t — the loop-carried candidates for reads in nest t of an
// iterative program.
func (c *Compiler) writtenAtOrAfter(t int) map[string]bool {
	out := map[string]bool{}
	for _, nest := range c.Program.Nests[t:] {
		for _, st := range nest.Stmts {
			out[st.LHS.Array] = true
		}
	}
	return out
}

// isLoopCarriedRead reports whether a read of array a in nest t (0-based)
// takes its value from a later write of the same iteration-body pass,
// i.e. crosses the iterative loop's back edge.
func (c *Compiler) isLoopCarriedRead(t int, a string) bool {
	if !c.Program.Iterative {
		return false
	}
	return c.writtenAtOrAfter(t)[a]
}

// align partitions the affinity graph of the given nests.
func (c *Compiler) alignNests(nests []*ir.Nest) (align.Partition, error) {
	g, err := align.BuildGraph(c.Program, nests, c.Weights)
	if err != nil {
		return align.Partition{}, err
	}
	if c.UseGreedyAlign {
		return align.GreedyAlign(g, 2)
	}
	return align.ExactAlign(g, 2)
}

// SegmentCost implements SegmentCoster: M[i][j] is the cheapest execution
// cost of nests L_i..L_{i+j-1} under a single scheme set derived from the
// subsequence's own component alignment, minimized over the candidate
// grid shapes of Section 3. Loop-carried reads are excluded here and
// priced by LoopCarriedCost. Results are memoized by (i,j).
func (c *Compiler) SegmentCost(i, j int) (float64, *SchemeSet, error) {
	if c.NoCache {
		return c.segmentCost(i, j)
	}
	key := [2]int{i, j}
	c.mu.Lock()
	if c.segCache == nil {
		c.segCache = map[[2]int]*segEntry{}
	}
	e, ok := c.segCache[key]
	if !ok {
		e = &segEntry{}
		c.segCache[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.cost, e.ss, e.err = c.segmentCost(i, j) })
	return e.cost, e.ss, e.err
}

func (c *Compiler) segmentCost(i, j int) (float64, *SchemeSet, error) {
	if i < 1 || j < 1 || i+j-1 > len(c.Program.Nests) {
		return 0, nil, fmt.Errorf("core: segment (%d,%d) out of range", i, j)
	}
	nests := c.Program.Nests[i-1 : i-1+j]
	pt, err := c.alignNests(nests)
	if err != nil {
		return 0, nil, err
	}
	cyclic := false
	for _, n := range nests {
		if Triangular(n) {
			cyclic = true
		}
	}
	shapes := GridShapes(c.NProcs)
	sets := make([]*SchemeSet, len(shapes))
	costs := make([]float64, len(shapes))
	errs := make([]error, len(shapes))
	c.fanOut(len(shapes), func(k int) {
		ss, err := DeriveSchemes(c.Program, pt, shapes[k], c.Bind, cyclic)
		if err != nil {
			errs[k] = err
			return
		}
		total := 0.0
		for t, nest := range nests {
			globalT := i - 1 + t
			ct, err := c.countNest(nest, ss, cost.CountOptions{
				IncludeRead: func(a string) bool { return !c.isLoopCarriedRead(globalT, a) },
			})
			if err != nil {
				errs[k] = err
				return
			}
			total += ct.Time(c.Model).Total()
		}
		sets[k], costs[k] = ss, total
	})
	// Serial reduce in shape order with a strict < keeps the winning
	// shape identical to the historical serial loop on ties.
	var best *SchemeSet
	bestCost := 0.0
	for k := range shapes {
		if errs[k] != nil {
			return 0, nil, errs[k]
		}
		if best == nil || costs[k] < bestCost {
			best, bestCost = sets[k], costs[k]
		}
	}
	return bestCost, best, nil
}

// ChangeCost prices redistributing every array from one scheme set to
// the next: for each element a destination owner lacks, one word is
// received, and the matching send is split evenly across the element's
// current owners (a replicated array's copies share the send load
// instead of overloading one canonical replica — the cheapest static
// split, and the one the analytic calculator models; see
// dist.RedistLoads). The time estimate is the most-loaded processor's
// traffic, like Counts.Time. Results are memoized by signature pair.
func (c *Compiler) ChangeCost(from, to *SchemeSet) (float64, error) {
	if from == nil || to == nil {
		return 0, fmt.Errorf("core: ChangeCost on nil scheme set")
	}
	if c.NoCache {
		return c.changeCost(from, to)
	}
	key := from.Signature() + "=>" + to.Signature()
	c.mu.Lock()
	if c.chgCache == nil {
		c.chgCache = map[string]*costEntry{}
	}
	e, ok := c.chgCache[key]
	if !ok {
		e = &costEntry{}
		c.chgCache[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.cost, e.err = c.changeCost(from, to) })
	return e.cost, e.err
}

func (c *Compiler) changeCost(from, to *SchemeSet) (float64, error) {
	names := make([]string, 0, len(c.Program.Arrays))
	for n := range c.Program.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	loads := dist.NewLoads()
	var plans []dist.RedistPlan
	for _, name := range names {
		sFrom, ok1 := from.Schemes[name]
		sTo, ok2 := to.Schemes[name]
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("core: array %s missing from a scheme set", name)
		}
		shape, err := shapeOf(c.Program, name, c.Bind)
		if err != nil {
			return 0, err
		}
		if c.CollectiveRedist && !c.ExactChangeCost {
			pl, err := dist.ClassifyChange(from.Grid, to.Grid, shape, sFrom, sTo)
			if err != nil {
				return 0, err
			}
			plans = append(plans, pl)
			continue
		}
		if c.ExactChangeCost {
			loads.Add(dist.RedistLoadsExact(from.Grid, to.Grid, shape, sFrom, sTo))
			continue
		}
		l, err := dist.RedistLoads(from.Grid, to.Grid, shape, sFrom, sTo)
		if err != nil {
			return 0, err
		}
		loads.Add(l)
	}
	if plans != nil {
		return c.Model.CollectiveChangeTime(plans), nil
	}
	return loads.MaxLoad() * c.Model.Tc, nil
}

// changeLoadsScaled is changeCost's load accumulation in exact integer
// arithmetic: every array's dist.RedistLoadsScaled bill merged over a
// common replica denominator. Only the plain point-to-point pricing has
// a scaled form; collective and exact-transport configurations report
// an error so callers fall back to the numeric path.
func (c *Compiler) changeLoadsScaled(from, to *SchemeSet) (dist.ScaledLoads, error) {
	if c.CollectiveRedist || c.ExactChangeCost {
		return dist.ScaledLoads{}, fmt.Errorf("core: scaled change loads cover only the point-to-point pricing")
	}
	names := make([]string, 0, len(c.Program.Arrays))
	for n := range c.Program.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	acc := dist.ScaledLoads{In: map[int]int64{}, Out: map[int]int64{}, Den: 1}
	for _, name := range names {
		sFrom, ok1 := from.Schemes[name]
		sTo, ok2 := to.Schemes[name]
		if !ok1 || !ok2 {
			return dist.ScaledLoads{}, fmt.Errorf("core: array %s missing from a scheme set", name)
		}
		shape, err := shapeOf(c.Program, name, c.Bind)
		if err != nil {
			return dist.ScaledLoads{}, err
		}
		sl, err := dist.RedistLoadsScaled(from.Grid, to.Grid, shape, sFrom, sTo)
		if err != nil {
			return dist.ScaledLoads{}, err
		}
		acc.Add(sl)
	}
	return acc, nil
}

// LoopCarriedCost prices the loop-carried reads (the CTime2 term of
// Fig 3) under the final segment's schemes: the words needed to bring
// each updated array from its owners to the processors that read it at
// the top of the next iteration. Results are memoized by signature.
func (c *Compiler) LoopCarriedCost(final *SchemeSet) (float64, error) {
	if !c.Program.Iterative {
		return 0, nil
	}
	if c.NoCache {
		return c.loopCarriedCost(final)
	}
	key := final.Signature()
	c.mu.Lock()
	if c.lcCache == nil {
		c.lcCache = map[string]*costEntry{}
	}
	e, ok := c.lcCache[key]
	if !ok {
		e = &costEntry{}
		c.lcCache[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.cost, e.err = c.loopCarriedCost(final) })
	return e.cost, e.err
}

func (c *Compiler) loopCarriedCost(final *SchemeSet) (float64, error) {
	total := 0.0
	for t, nest := range c.Program.Nests {
		ct, err := c.countNest(nest, final, cost.CountOptions{
			IncludeRead:   func(a string) bool { return c.isLoopCarriedRead(t, a) },
			SkipReduction: true,
			SkipFlops:     true,
		})
		if err != nil {
			return 0, err
		}
		total += ct.Time(c.Model).Comm
	}
	return total, nil
}

// precompute fills the cost caches on the worker pool: every segment
// cost M[i][j], then every redistribution cost between the distinct
// scheme sets those segments produced (plus the loop-carried cost of
// each candidate final scheme). The subsequent serial DP is then pure
// cache lookups, which is what keeps parallel output bit-identical to
// the serial path.
func (c *Compiler) precompute(s int) {
	if c.NoCache || c.jobs() == 1 {
		return
	}
	type ij struct{ i, j int }
	var keys []ij
	for j := 1; j <= s; j++ {
		for i := 1; i+j-1 <= s; i++ {
			keys = append(keys, ij{i, j})
		}
	}
	c.fanOut(len(keys), func(k int) {
		c.SegmentCost(keys[k].i, keys[k].j) //nolint:errcheck — errors resurface from the cache in RunDP
	})
	// Distinct scheme sets, in a deterministic order.
	bySig := map[string]*SchemeSet{}
	var sigs []string
	for _, key := range keys {
		_, ss, err := c.SegmentCost(key.i, key.j)
		if err != nil || ss == nil {
			continue
		}
		sig := ss.Signature()
		if _, ok := bySig[sig]; !ok {
			bySig[sig] = ss
			sigs = append(sigs, sig)
		}
	}
	sort.Strings(sigs)
	type pair struct{ from, to *SchemeSet }
	var pairs []pair
	for _, a := range sigs {
		for _, b := range sigs {
			if a != b {
				pairs = append(pairs, pair{bySig[a], bySig[b]})
			}
		}
	}
	c.fanOut(len(pairs), func(k int) {
		c.ChangeCost(pairs[k].from, pairs[k].to) //nolint:errcheck — cache warm-up only
	})
	if c.Program.Iterative {
		c.fanOut(len(sigs), func(k int) {
			c.LoopCarriedCost(bySig[sigs[k]]) //nolint:errcheck — cache warm-up only
		})
	}
}

// CompileResult is the full outcome of the pipeline for one program.
type CompileResult struct {
	DP *DPResult
	// WholeProgram is the single-scheme baseline M[1][s] (+ loop-carried),
	// i.e. the Section 3 method, for comparison with the DP plan.
	WholeProgramCost float64
	// Pipelining holds the per-nest dependence analysis and decision
	// under the final scheme's distribution (Sections 5-6).
	Pipelining []dep.PipelineDecision
}

// Compile runs the full pipeline: per-segment alignment + Algorithm 1 +
// pipelining analysis. With Jobs != 1 the cost tables are precomputed in
// parallel first; the DP itself always runs serially over the caches, so
// the result does not depend on Jobs.
func (c *Compiler) Compile() (*CompileResult, error) {
	if err := c.Program.Validate(); err != nil {
		return nil, err
	}
	s := len(c.Program.Nests)
	c.precompute(s)
	res, err := RunDP(s, c, c.Program.Iterative)
	if err != nil {
		return nil, err
	}
	whole, wholeSS, err := c.SegmentCost(1, s)
	if err != nil {
		return nil, err
	}
	if c.Program.Iterative {
		lc, err := c.LoopCarriedCost(wholeSS)
		if err != nil {
			return nil, err
		}
		whole += lc
	}
	out := &CompileResult{DP: res, WholeProgramCost: whole}

	// Pipelining analysis per nest under its chosen segment's schemes.
	for _, seg := range res.Segments {
		for t := seg.Start - 1; t < seg.Start-1+seg.Len; t++ {
			nest := c.Program.Nests[t]
			distDim := map[string]int{}
			for name := range c.Program.Arrays {
				distDim[name] = distributedDim(seg.Schemes, name)
			}
			mu, err := dep.DeriveMapping(c.Program, nest, distDim)
			if err != nil {
				// Nests with no distributed LHS (fully replicated) have
				// nothing to pipeline.
				continue
			}
			out.Pipelining = append(out.Pipelining, dep.DecidePipelining(c.Program, nest, mu))
		}
	}
	return out, nil
}

// distributedDim returns the first array dimension mapped to a grid
// dimension with more than one processor, or -1 if the array is
// effectively replicated or serial.
func distributedDim(ss *SchemeSet, array string) int {
	s, ok := ss.Schemes[array]
	if !ok {
		return -1
	}
	for k, d := range s.Dims {
		if d.Replicated {
			continue
		}
		if ss.Grid.Extent(d.GridDim) > 1 {
			return k
		}
	}
	return -1
}
