// The compile driver: wires component alignment, exact cost counting, the
// dynamic programming algorithm, and the dependence-driven pipelining
// decision into the pipeline of the paper.
package core

import (
	"fmt"
	"sort"

	"dmcc/internal/align"
	"dmcc/internal/cost"
	"dmcc/internal/dep"
	"dmcc/internal/ir"
)

// Compiler compiles one program for a machine with NProcs processors.
type Compiler struct {
	Program *ir.Program
	Model   cost.Model
	// Bind gives values to the program's size parameters, e.g. {"m": 64}.
	Bind map[string]int
	// NProcs is the total processor count.
	NProcs int
	// Weights parameterizes affinity-graph edge weights.
	Weights align.WeightParams
	// UseGreedyAlign switches the alignment heuristic (ablation).
	UseGreedyAlign bool
}

// NewCompiler returns a compiler with the standard configuration.
func NewCompiler(p *ir.Program, model cost.Model, bind map[string]int, nprocs int) *Compiler {
	wp := align.WeightParams{Bind: bind, N: nprocs, Tc: model.Tc}
	return &Compiler{Program: p, Model: model, Bind: bind, NProcs: nprocs, Weights: wp}
}

// writtenAtOrAfter reports the arrays written by nests with (0-based)
// index >= t — the loop-carried candidates for reads in nest t of an
// iterative program.
func (c *Compiler) writtenAtOrAfter(t int) map[string]bool {
	out := map[string]bool{}
	for _, nest := range c.Program.Nests[t:] {
		for _, st := range nest.Stmts {
			out[st.LHS.Array] = true
		}
	}
	return out
}

// isLoopCarriedRead reports whether a read of array a in nest t (0-based)
// takes its value from a later write of the same iteration-body pass,
// i.e. crosses the iterative loop's back edge.
func (c *Compiler) isLoopCarriedRead(t int, a string) bool {
	if !c.Program.Iterative {
		return false
	}
	return c.writtenAtOrAfter(t)[a]
}

// align partitions the affinity graph of the given nests.
func (c *Compiler) alignNests(nests []*ir.Nest) (align.Partition, error) {
	g, err := align.BuildGraph(c.Program, nests, c.Weights)
	if err != nil {
		return align.Partition{}, err
	}
	if c.UseGreedyAlign {
		return align.GreedyAlign(g, 2)
	}
	return align.ExactAlign(g, 2)
}

// SegmentCost implements SegmentCoster: M[i][j] is the cheapest execution
// cost of nests L_i..L_{i+j-1} under a single scheme set derived from the
// subsequence's own component alignment, minimized over the candidate
// grid shapes of Section 3. Loop-carried reads are excluded here and
// priced by LoopCarriedCost.
func (c *Compiler) SegmentCost(i, j int) (float64, *SchemeSet, error) {
	if i < 1 || j < 1 || i+j-1 > len(c.Program.Nests) {
		return 0, nil, fmt.Errorf("core: segment (%d,%d) out of range", i, j)
	}
	nests := c.Program.Nests[i-1 : i-1+j]
	pt, err := c.alignNests(nests)
	if err != nil {
		return 0, nil, err
	}
	cyclic := false
	for _, n := range nests {
		if Triangular(n) {
			cyclic = true
		}
	}
	var best *SchemeSet
	bestCost := 0.0
	for _, shape := range GridShapes(c.NProcs) {
		ss, err := DeriveSchemes(c.Program, pt, shape, c.Bind, cyclic)
		if err != nil {
			return 0, nil, err
		}
		total := 0.0
		for t, nest := range nests {
			globalT := i - 1 + t
			ct, err := cost.CountNestOpts(c.Program, nest, ss.Schemes, ss.Grid, c.Bind, cost.CountOptions{
				IncludeRead: func(a string) bool { return !c.isLoopCarriedRead(globalT, a) },
			})
			if err != nil {
				return 0, nil, err
			}
			total += ct.Time(c.Model).Total()
		}
		if best == nil || total < bestCost {
			best, bestCost = ss, total
		}
	}
	return bestCost, best, nil
}

// ChangeCost prices redistributing every array from one scheme set to the
// next: for each element a destination owner lacks, one word moves from a
// current owner; the time estimate is the most-loaded processor's traffic,
// like Counts.Time.
func (c *Compiler) ChangeCost(from, to *SchemeSet) (float64, error) {
	if from == nil || to == nil {
		return 0, fmt.Errorf("core: ChangeCost on nil scheme set")
	}
	in := map[int]int64{}
	out := map[int]int64{}
	names := make([]string, 0, len(c.Program.Arrays))
	for n := range c.Program.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		sFrom, ok1 := from.Schemes[name]
		sTo, ok2 := to.Schemes[name]
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("core: array %s missing from a scheme set", name)
		}
		shape, err := shapeOf(c.Program, name, c.Bind)
		if err != nil {
			return 0, err
		}
		forEachIndex(shape, func(idx []int) {
			fromOwners := sFrom.Owners(from.Grid, idx...)
			has := map[int]bool{}
			for _, r := range fromOwners {
				has[r] = true
			}
			for _, d := range sTo.Owners(to.Grid, idx...) {
				if !has[d] {
					in[d]++
					out[fromOwners[0]]++
				}
			}
		})
	}
	var mx int64
	for _, w := range in {
		if w > mx {
			mx = w
		}
	}
	for _, w := range out {
		if w > mx {
			mx = w
		}
	}
	return float64(mx) * c.Model.Tc, nil
}

// LoopCarriedCost prices the loop-carried reads (the CTime2 term of
// Fig 3) under the final segment's schemes: the words needed to bring
// each updated array from its owners to the processors that read it at
// the top of the next iteration.
func (c *Compiler) LoopCarriedCost(final *SchemeSet) (float64, error) {
	if !c.Program.Iterative {
		return 0, nil
	}
	total := 0.0
	for t, nest := range c.Program.Nests {
		ct, err := cost.CountNestOpts(c.Program, nest, final.Schemes, final.Grid, c.Bind, cost.CountOptions{
			IncludeRead:   func(a string) bool { return c.isLoopCarriedRead(t, a) },
			SkipReduction: true,
			SkipFlops:     true,
		})
		if err != nil {
			return 0, err
		}
		total += ct.Time(c.Model).Comm
	}
	return total, nil
}

// forEachIndex enumerates 1-based multi-indices in row-major order
// (duplicated from dist to avoid exporting an iteration helper).
func forEachIndex(shape []int, f func(idx []int)) {
	idx := make([]int, len(shape))
	for i := range idx {
		idx[i] = 1
	}
	for {
		f(idx)
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] <= shape[k] {
				break
			}
			idx[k] = 1
			k--
		}
		if k < 0 {
			return
		}
	}
}

// CompileResult is the full outcome of the pipeline for one program.
type CompileResult struct {
	DP *DPResult
	// WholeProgram is the single-scheme baseline M[1][s] (+ loop-carried),
	// i.e. the Section 3 method, for comparison with the DP plan.
	WholeProgramCost float64
	// Pipelining holds the per-nest dependence analysis and decision
	// under the final scheme's distribution (Sections 5-6).
	Pipelining []dep.PipelineDecision
}

// Compile runs the full pipeline: per-segment alignment + Algorithm 1 +
// pipelining analysis.
func (c *Compiler) Compile() (*CompileResult, error) {
	if err := c.Program.Validate(); err != nil {
		return nil, err
	}
	s := len(c.Program.Nests)
	res, err := RunDP(s, c, c.Program.Iterative)
	if err != nil {
		return nil, err
	}
	whole, wholeSS, err := c.SegmentCost(1, s)
	if err != nil {
		return nil, err
	}
	if c.Program.Iterative {
		lc, err := c.LoopCarriedCost(wholeSS)
		if err != nil {
			return nil, err
		}
		whole += lc
	}
	out := &CompileResult{DP: res, WholeProgramCost: whole}

	// Pipelining analysis per nest under its chosen segment's schemes.
	for _, seg := range res.Segments {
		for t := seg.Start - 1; t < seg.Start-1+seg.Len; t++ {
			nest := c.Program.Nests[t]
			distDim := map[string]int{}
			for name := range c.Program.Arrays {
				distDim[name] = distributedDim(seg.Schemes, name)
			}
			mu, err := dep.DeriveMapping(c.Program, nest, distDim)
			if err != nil {
				// Nests with no distributed LHS (fully replicated) have
				// nothing to pipeline.
				continue
			}
			out.Pipelining = append(out.Pipelining, dep.DecidePipelining(c.Program, nest, mu))
		}
	}
	return out, nil
}

// distributedDim returns the first array dimension mapped to a grid
// dimension with more than one processor, or -1 if the array is
// effectively replicated or serial.
func distributedDim(ss *SchemeSet, array string) int {
	s, ok := ss.Schemes[array]
	if !ok {
		return -1
	}
	for k, d := range s.Dims {
		if d.Replicated {
			continue
		}
		if ss.Grid.Extent(d.GridDim) > 1 {
			return k
		}
	}
	return -1
}
