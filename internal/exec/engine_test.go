// Cross-engine parity: the discrete-event runtime must reproduce the
// goroutine runtime bit for bit — values, naive Stats, and the batched
// transport's own Stats — on every kernel shape and on the fuzz corpus,
// in both pipeline modes and both redistribution lowerings (collective
// and point-to-point). This is the property that lets exec.Run default
// to the event engine while the goroutine runtime remains the
// semantics oracle.

package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"dmcc/internal/ir"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// stencilProgram is a 5-point Jacobi-style stencil over a 2-D array —
// the IR counterpart of the kernels stencil, exercising four-neighbour
// ghost exchange in both grid dimensions.
func stencilProgram() *ir.Program {
	m := ir.V("m")
	p := &ir.Program{
		Name: "stencil5", Iterative: true, Params: []string{"m"},
		Arrays: map[string]*ir.Array{
			"A": {Name: "A", Extents: []ir.Affine{m, m}},
			"B": {Name: "B", Extents: []ir.Affine{m, m}},
		},
	}
	i, j := ir.V("i"), ir.V("j")
	ref := func(arr string, si, sj ir.Affine) ir.Ref {
		return ir.Ref{Array: arr, Subs: []ir.Affine{si, sj}}
	}
	loops := func() []ir.Loop {
		return []ir.Loop{
			{Index: "i", Lo: ir.Const(2), Hi: m.PlusConst(-1), Step: 1},
			{Index: "j", Lo: ir.Const(2), Hi: m.PlusConst(-1), Step: 1},
		}
	}
	avg := ir.MulE(ir.Num(0.25), ir.Add(
		ir.Add(ir.Rd(ref("A", i.PlusConst(-1), j)), ir.Rd(ref("A", i.PlusConst(1), j))),
		ir.Add(ir.Rd(ref("A", i, j.PlusConst(-1))), ir.Rd(ref("A", i, j.PlusConst(1))))))
	copyBack := ir.Rd(ref("B", i, j))
	p.Nests = []*ir.Nest{
		{Label: "L1", Loops: loops(), Stmts: []*ir.Stmt{{
			Line: 1, Depth: 2, LHS: ref("B", i, j), Reads: ir.ExprReads(avg),
			RHS: avg, Flops: ir.ExprFlops(avg), Text: "B(i,j) = 0.25*(A(i-1,j)+A(i+1,j)+A(i,j-1)+A(i,j+1))",
		}}},
		{Label: "L2", Loops: loops(), Stmts: []*ir.Stmt{{
			Line: 2, Depth: 2, LHS: ref("A", i, j), Reads: ir.ExprReads(copyBack),
			RHS: copyBack, Flops: 0, Text: "A(i,j) = B(i,j)",
		}}},
	}
	return p
}

// matmulProgram is a triple-loop matrix multiply with a travelling
// accumulator — the IR counterpart of the Cannon kernel's data motion:
// C(i,j) accumulates A(i,k)*B(k,j) under reduce semantics.
func matmulProgram() *ir.Program {
	m := ir.V("m")
	p := &ir.Program{
		Name: "matmul", Params: []string{"m"},
		Arrays: map[string]*ir.Array{
			"A": {Name: "A", Extents: []ir.Affine{m, m}},
			"B": {Name: "B", Extents: []ir.Affine{m, m}},
			"C": {Name: "C", Extents: []ir.Affine{m, m}},
		},
	}
	i, j, k := ir.V("i"), ir.V("j"), ir.V("k")
	lhs := ir.Ref{Array: "C", Subs: []ir.Affine{i, j}}
	rhs := ir.Add(ir.Rd(lhs), ir.MulE(
		ir.Rd(ir.Ref{Array: "A", Subs: []ir.Affine{i, k}}),
		ir.Rd(ir.Ref{Array: "B", Subs: []ir.Affine{k, j}})))
	p.Nests = []*ir.Nest{{
		Label: "L1",
		Loops: []ir.Loop{
			{Index: "i", Lo: ir.Const(1), Hi: m, Step: 1},
			{Index: "j", Lo: ir.Const(1), Hi: m, Step: 1},
			{Index: "k", Lo: ir.Const(1), Hi: m, Step: 1},
		},
		Stmts: []*ir.Stmt{{
			Line: 1, Depth: 3, LHS: lhs, Reads: ir.ExprReads(rhs), RHS: rhs,
			Flops: ir.ExprFlops(rhs), Reduce: true, Text: "C(i,j) = C(i,j) + A(i,k)*B(k,j) [reduce]",
		}},
	}}
	return p
}

// randomInput fills every array of p with deterministic pseudo-random
// values in [-1, 1).
func randomInput(p *ir.Program, m int, rng *rand.Rand) ir.Storage {
	input := ir.NewStorage(p)
	for name, arr := range p.Arrays {
		if arr.Rank() == 1 {
			for i := 1; i <= m; i++ {
				input.Store(name, []int{i}, rng.Float64()*2-1)
			}
		} else {
			for i := 1; i <= m; i++ {
				for j := 1; j <= m; j++ {
					input.Store(name, []int{i, j}, rng.Float64()*2-1)
				}
			}
		}
	}
	return input
}

// TestEngineParityKernels: every kernel program — the linear-system
// three plus the stencil and matmul IR counterparts of the
// stencil/Cannon kernels — produces identical results on both engines,
// in both pipeline modes, across processor counts.
func TestEngineParityKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	type kase struct {
		name    string
		p       *ir.Program
		m       int
		iters   int
		ns      []int
		scalars map[string]float64
		derive  bool // fuzzSchemes (alignment-derived) vs compiler schemes
	}
	cases := []kase{
		{name: "jacobi", p: ir.Jacobi(), m: 12, iters: 3, ns: []int{1, 2, 4}},
		{name: "sor", p: ir.SOR(), m: 12, iters: 3, ns: []int{1, 2, 4},
			scalars: map[string]float64{"OMEGA": 1.2}},
		{name: "gauss", p: ir.Gauss(), m: 9, iters: 1, ns: []int{1, 3}},
		{name: "stencil", p: stencilProgram(), m: 12, iters: 2, ns: []int{1, 2, 4}, derive: true},
		{name: "matmul", p: matmulProgram(), m: 6, iters: 1, ns: []int{1, 2, 3}, derive: true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", c.name, err)
		}
		input := randomInput(c.p, c.m, rng)
		for _, n := range c.ns {
			var ss = wholeProgramSchemes(t, c.p, c.m, n)
			if c.derive {
				ss = fuzzSchemes(t, c.p, c.m, n)
				if ss == nil {
					t.Fatalf("%s n=%d: no derived schemes", c.name, n)
				}
			}
			bind := map[string]int{"m": c.m}
			for _, noPipe := range []bool{false, true} {
				for _, redist := range []Redist{RedistCollective, RedistP2P} {
					label := fmt.Sprintf("%s m=%d n=%d noPipe=%v redist=%v", c.name, c.m, n, noPipe, redist)
					ev, err := RunOpts(c.p, ss, bind, c.scalars, c.iters, machine.DefaultConfig(), input,
						Options{Engine: EngineEvents, NoPipeline: noPipe, Redist: redist})
					if err != nil {
						t.Fatalf("%s: events engine: %v", label, err)
					}
					gr, err := RunOpts(c.p, ss, bind, c.scalars, c.iters, machine.DefaultConfig(), input,
						Options{Engine: EngineGoroutines, NoPipeline: noPipe, Redist: redist})
					if err != nil {
						t.Fatalf("%s: goroutine engine: %v", label, err)
					}
					requireEngineEqual(t, label, ev, gr)
				}
			}
		}
	}
}

// requireEngineEqual asserts bit-identical Values, Stats and Transport
// between the two engines' results.
func requireEngineEqual(t *testing.T, label string, ev, gr Result) {
	t.Helper()
	if !reflect.DeepEqual(ev.Values, gr.Values) {
		t.Fatalf("%s: event engine values differ from goroutine engine", label)
	}
	if !reflect.DeepEqual(ev.Stats, gr.Stats) {
		t.Fatalf("%s: event engine stats differ from goroutine engine:\n got %+v\nwant %+v", label, ev.Stats, gr.Stats)
	}
	if !reflect.DeepEqual(ev.Transport, gr.Transport) {
		t.Fatalf("%s: event engine transport differs from goroutine engine:\n got %+v\nwant %+v",
			label, ev.Transport, gr.Transport)
	}
}

// TestEngineParityFuzz: the randomized property kept in CI — random
// reduce-bearing programs, random schemes, random inputs, ChanCap=1,
// both pipeline modes: the two engines agree exactly.
func TestEngineParityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	const m = 8
	tight := machine.DefaultConfig()
	tight.ChanCap = 1
	for trial := 0; trial < 25; trial++ {
		p := randomReduceProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		input := randomInput(p, m, rng)
		iters := 1 + rng.Intn(2)
		for _, n := range []int{1, 2, 4} {
			ss := fuzzSchemes(t, p, m, n)
			if ss == nil {
				continue
			}
			bind := map[string]int{"m": m}
			for _, noPipe := range []bool{false, true} {
				for _, redist := range []Redist{RedistCollective, RedistP2P} {
					label := fmt.Sprintf("trial %d n=%d noPipe=%v redist=%v", trial, n, noPipe, redist)
					ev, err := RunOpts(p, ss, bind, nil, iters, tight, input,
						Options{Engine: EngineEvents, NoPipeline: noPipe, Redist: redist})
					if err != nil {
						t.Fatalf("%s: events engine: %v", label, err)
					}
					gr, err := RunOpts(p, ss, bind, nil, iters, tight, input,
						Options{Engine: EngineGoroutines, NoPipeline: noPipe, Redist: redist})
					if err != nil {
						t.Fatalf("%s: goroutine engine: %v", label, err)
					}
					requireEngineEqual(t, label, ev, gr)
				}
			}
		}
	}
}

// TestEngineAutoSelection: EngineAuto resolves to events unless a
// transport tracer is attached (trace consumers keep the goroutine
// runtime), and the explicit names round-trip through String.
func TestEngineAutoSelection(t *testing.T) {
	if got := EngineAuto.String(); got != "auto" {
		t.Errorf("EngineAuto.String() = %q", got)
	}
	if got := EngineEvents.String(); got != "events" {
		t.Errorf("EngineEvents.String() = %q", got)
	}
	if got := EngineGoroutines.String(); got != "goroutines" {
		t.Errorf("EngineGoroutines.String() = %q", got)
	}

	// A traced run on the auto engine must still satisfy the oracle —
	// it silently uses the goroutine runtime, and the sequence of trace
	// events it produces must be the live interleaving's.
	p := ir.Jacobi()
	m := 8
	a, b, _ := matrix.DiagonallyDominant(m, 811)
	input := loadLinearSystem(p, a, b, make([]float64, m))
	ss := wholeProgramSchemes(t, p, m, 2)
	bind := map[string]int{"m": m}
	tr := &countingTracer{}
	res, err := RunOpts(p, ss, bind, nil, 2, machine.DefaultConfig(), input, Options{TransportTracer: tr})
	if err != nil {
		t.Fatalf("traced auto run: %v", err)
	}
	if tr.n.Load() == 0 {
		t.Fatal("transport tracer saw no events")
	}
	want, err := RunExact(p, ss, bind, nil, 2, exactCfg(machine.DefaultConfig(), m), input)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	requireIdentical(t, "traced auto", res, want)
}

// countingTracer counts events; the goroutine runtime records from
// concurrent processors, so the counter is atomic.
type countingTracer struct{ n atomic.Int64 }

func (c *countingTracer) Record(machine.Event) { c.n.Add(1) }
