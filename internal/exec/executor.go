// The executor half of the batched engine: each processor runs its
// precomputed instruction stream (schedule.go) against dense per-array
// stores, exchanging each epoch's traffic as one vectored machine.Send
// per processor pair. All per-instance map and slice state of the old
// engine is pooled here: the stream is allocated once by the inspector
// and the executor reuses its scratch buffers across instances.

package exec

import (
	"fmt"
	"math"

	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// valExec is one processor's value-pass state.
type valExec struct {
	s       *progSchedule
	proc    *machine.Proc
	me      int
	scalars map[string]float64
	// store/has are the dense per-array local stores; has marks
	// elements this processor actually wrote or received, for the
	// first-owner result assembly.
	store [][]float64
	has   [][]bool
	// partials holds running partial sums of reduce statements.
	partials map[elemID]float64
	// bufs[src] is the current epoch's vectored buffer from src, with a
	// consumption cursor.
	bufs []vbuf
	// env is the reusable loop binding for RHS evaluation.
	env    map[string]int
	loadFn func(ir.Ref, []int) float64
	// current eval context for loadFn.
	curSlots  []slot
	curVals   []float64
	curReduce bool
	curAcc    elemID
	// gather is the vectored-send scratch (machine.Send copies).
	gather []machine.Word
}

type vbuf struct {
	data []machine.Word
	pos  int
}

func newValExec(s *progSchedule, proc *machine.Proc, scalars map[string]float64) *valExec {
	x := &valExec{
		s: s, proc: proc, me: proc.Rank(), scalars: scalars,
		store:    make([][]float64, len(s.arrays)),
		has:      make([][]bool, len(s.arrays)),
		partials: make(map[elemID]float64),
		bufs:     make([]vbuf, s.nprocs),
		env:      bindEnv(s.bind),
		curVals:  make([]float64, 0, 8),
	}
	for a, am := range s.arrays {
		x.store[a] = make([]float64, am.size)
		x.has[a] = make([]bool, am.size)
	}
	x.loadFn = x.load
	return x
}

// loadInput installs the owned (and replicated) slice of the initial
// array contents, free of charge (input distribution cost is measured
// separately by package data).
func (x *valExec) loadInput(input ir.Storage) {
	for name, elems := range input {
		sch, ok := x.s.ss.Schemes[name]
		if !ok {
			continue
		}
		for key, v := range elems {
			idx := parseKey(key)
			if sch.IsOwner(x.s.ss.Grid, x.me, idx...) {
				e := x.s.elemOf(name, idx)
				x.store[e.arr()][e.off()] = v
				x.has[e.arr()][e.off()] = true
			}
		}
	}
}

func (x *valExec) loadElem(e elemID) float64 { return x.store[e.arr()][e.off()] }

func (x *valExec) storeElem(e elemID, v float64) {
	x.store[e.arr()][e.off()] = v
	x.has[e.arr()][e.off()] = true
}

// load resolves one RHS operand: the redirected reduce accumulator,
// then received remote slots (matched by element, like the old values
// map), then the local dense store (zero for never-written elements,
// matching the old map's default).
func (x *valExec) load(r ir.Ref, idx []int) float64 {
	e := x.s.elemOf(r.Array, idx)
	if x.curReduce && e == x.curAcc {
		return x.partials[e]
	}
	for i := range x.curSlots {
		if x.curSlots[i].elem == e {
			return x.curVals[i]
		}
	}
	return x.loadElem(e)
}

// runNest executes this processor's instruction stream for one nest.
func (x *valExec) runNest(ns *nestSchedule) {
	stream := ns.procs[x.me]
	for i := range stream {
		in := &stream[i]
		switch in.op {
		case opFlush:
			f := in.flush
			for _, snd := range f.sends {
				x.gather = x.gather[:0]
				for _, e := range snd.elems {
					x.gather = append(x.gather, x.loadElem(e))
				}
				x.proc.Send(int(snd.dst), x.gather)
			}
			for _, rcv := range f.recvs {
				b := &x.bufs[rcv.src]
				if b.pos != len(b.data) {
					panic(fmt.Sprintf("exec: vectored buffer from %d not drained (%d of %d words)", rcv.src, b.pos, len(b.data)))
				}
				data := x.proc.Recv(int(rcv.src))
				if len(data) != rcv.n {
					panic(fmt.Sprintf("exec: vectored exchange from %d expected %d words, got %d", rcv.src, rcv.n, len(data)))
				}
				b.data, b.pos = data, 0
			}
		case opSendDirect:
			x.proc.SendValue(int(in.dst), x.loadElem(in.elem))
		case opFin:
			x.finalize(in.fin)
		case opEval:
			x.eval(ns, in)
		}
	}
}

// eval receives the instance's remote operands (buffer pops and direct
// one-word messages, in the shared global order) and, unless this
// processor is a receive-only replica of a reduction, evaluates the
// statement.
func (x *valExec) eval(ns *nestSchedule, in *pinstr) {
	x.curVals = x.curVals[:0]
	for _, sl := range in.slots {
		var v float64
		if sl.direct {
			v = x.proc.RecvValue(int(sl.src))
		} else {
			b := &x.bufs[sl.src]
			if b.pos >= len(b.data) {
				panic(fmt.Sprintf("exec: vectored buffer from %d underflow", sl.src))
			}
			v = b.data[b.pos]
			b.pos++
		}
		x.curVals = append(x.curVals, v)
	}
	if in.role == roleRecvOnly {
		return
	}
	stmt := ns.nest.Stmts[in.stmt]
	for k := 0; k < len(in.env); k++ {
		x.env[ns.loopIdx[k]] = int(in.env[k])
	}
	x.curSlots = in.slots
	x.curReduce = in.role == roleReduce
	x.curAcc = in.elem
	v := stmt.RHS.Eval(x.env, x.loadFn, x.scalars)
	if in.role == roleReduce {
		x.partials[in.elem] = v
	} else {
		if math.IsNaN(v) {
			panic(fmt.Sprintf("exec: NaN at %s line %d", stmt.LHS, stmt.Line))
		}
		x.storeElem(in.elem, v)
	}
	x.proc.Compute(stmt.Flops)
}

// finalize mirrors engine.finalize on the batched transport: the
// contributors' partials fold into the root owner's stored value in
// contributor order, and the total fans out to the remaining owners.
func (x *valExec) finalize(f *finOp) {
	if x.me == f.root {
		total := x.loadElem(f.elem)
		for _, c := range f.contribs {
			var part float64
			if c == f.root {
				part = x.partials[f.elem]
			} else {
				part = x.proc.RecvValue(c)
			}
			total += part
			x.proc.Compute(1)
		}
		x.storeElem(f.elem, total)
		for _, o := range f.owners {
			if o != f.root {
				x.proc.SendValue(o, total)
			}
		}
	} else {
		if contains(f.contribs, x.me) {
			x.proc.SendValue(f.root, x.partials[f.elem])
		}
		if contains(f.owners, x.me) {
			x.storeElem(f.elem, x.proc.RecvValue(f.root))
		}
	}
	delete(x.partials, f.elem)
}
