// The executor half of the batched engine: each processor runs its
// precomputed instruction stream (schedule.go) against dense per-array
// stores, exchanging each epoch's traffic as one vectored machine.Send
// per processor pair. All per-instance map and slice state of the old
// engine is pooled here: the stream is allocated once by the inspector
// and the executor reuses its scratch buffers across instances.

package exec

import (
	"fmt"
	"math"
	"sort"

	"dmcc/internal/dist"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// valExec is one processor's value-pass state. proc is a machine.Port,
// so the same executor body runs on the goroutine runtime and the
// discrete-event runtime. All per-peer state is sparse (maps keyed by
// live peers) and the dense per-array stores materialize on first
// touch: at N=4096 a processor typically owns a handful of elements
// and talks to a handful of neighbours, and pre-sizing any of this by
// nprocs would make the executor itself the memory bottleneck the
// event runtime exists to remove.
type valExec struct {
	s       *progSchedule
	proc    machine.Port
	me      int
	scalars map[string]float64
	// store/has are the per-array local stores, nil until the processor
	// first writes or receives an element of that array; has marks
	// elements this processor actually wrote or received, for the
	// first-owner result assembly.
	store [][]float64
	has   [][]bool
	// partials holds running partial sums of reduce statements.
	partials map[elemID]float64
	// bufs holds the current epoch's vectored buffer per live source,
	// with a consumption cursor.
	bufs map[int]*vbuf
	// cbuf holds collectively-redistributed operand values keyed by the
	// origin (first-owner) rank and element: filled by opRedist rounds,
	// forwarded by tree relays, and read by eval's non-direct slots in
	// collective mode. Entries are overwritten in place — every epoch
	// re-ships what its slots read, so a stale value is never visible.
	cbuf map[int32]map[elemID]machine.Word
	// env is the reusable loop binding for RHS evaluation.
	env    map[string]int
	loadFn func(ir.Ref, []int) float64
	// current eval context for loadFn.
	curSlots  []slot
	curVals   []float64
	curReduce bool
	curAcc    elemID
	// gather is the vectored-send scratch (machine.Send copies).
	gather []machine.Word
	// Vectored-reduction scratch: per-destination build buffers,
	// per-source receive buffers with cursors and expected counts, and
	// the ring hop vector.
	rsend map[int][]machine.Word
	rrecv map[int]*vbuf
	rneed map[int]int
	rvec  []machine.Word
	// keys is the sorted-peer iteration scratch of flushSends and
	// drainRecvs (map order is random; the wire order must not be).
	keys []int
}

type vbuf struct {
	data []machine.Word
	pos  int
}

func newValExec(s *progSchedule, proc machine.Port, scalars map[string]float64) *valExec {
	x := &valExec{
		s: s, proc: proc, me: proc.Rank(), scalars: scalars,
		store:    make([][]float64, len(s.arrays)),
		has:      make([][]bool, len(s.arrays)),
		partials: make(map[elemID]float64),
		bufs:     make(map[int]*vbuf),
		cbuf:     make(map[int32]map[elemID]machine.Word),
		env:      bindEnv(s.bind),
		curVals:  make([]float64, 0, 8),
		rsend:    make(map[int][]machine.Word),
		rrecv:    make(map[int]*vbuf),
		rneed:    make(map[int]int),
	}
	x.loadFn = x.load
	return x
}

// ensure materializes array a's dense store on first touch.
func (x *valExec) ensure(a int) {
	if x.store[a] == nil {
		x.store[a] = make([]float64, x.s.arrays[a].size)
		x.has[a] = make([]bool, x.s.arrays[a].size)
	}
}

// buf returns the (created-on-demand) epoch buffer for source src.
func (x *valExec) buf(src int) *vbuf {
	b := x.bufs[src]
	if b == nil {
		b = &vbuf{}
		x.bufs[src] = b
	}
	return b
}

// rbuf returns the (created-on-demand) reduction receive buffer for src.
func (x *valExec) rbuf(src int) *vbuf {
	b := x.rrecv[src]
	if b == nil {
		b = &vbuf{}
		x.rrecv[src] = b
	}
	return b
}

// inputLoads is the pre-decoded initial state, bucketed by owner
// coordinates: one shared structure per run, read by every processor.
// The old per-processor loadInput re-parsed every input key and asked
// IsOwner per (processor, element) — an O(nprocs * elements) scan with
// string parsing inside, which at N=256 already dominated whole-run
// profiles and at N=4096 dwarfs the simulation itself. Here the input
// is decoded once: each element's owner coordinates fold (over the grid
// dimensions the scheme does not replicate along) into an integer
// bucket key, and a processor installs exactly the buckets matching its
// own coordinates.
type inputLoads struct {
	arrays []arrayLoads
}

// arrayLoads buckets one array's initial elements. allDim[d] marks grid
// dimensions the scheme replicates along (owner coordinate All): those
// are skipped by the fold, so every processor along them reads the same
// bucket. The mask is per-scheme constant — All entries come from
// Replicated dims and Fixed[d]=All, never from the subscripts.
type arrayLoads struct {
	allDim []bool
	bucket map[int][]elemVal
}

type elemVal struct {
	elem elemID
	val  float64
}

// buildLoads decodes and buckets the initial array contents. Arrays
// without a scheme are skipped, like the old loadInput.
func buildLoads(s *progSchedule, input ir.Storage) *inputLoads {
	g := s.ss.Grid
	loads := &inputLoads{arrays: make([]arrayLoads, len(s.arrays))}
	for a, am := range s.arrays {
		elems := input[am.name]
		sch, ok := s.ss.Schemes[am.name]
		if !ok || len(elems) == 0 {
			continue
		}
		al := arrayLoads{bucket: make(map[int][]elemVal)}
		for key, v := range elems {
			idx := parseKey(key)
			coords := sch.GridCoords(g, idx...)
			if al.allDim == nil {
				al.allDim = make([]bool, g.Q())
				for d, c := range coords {
					al.allDim[d] = c == dist.All
				}
			}
			k := 0
			for d, c := range coords {
				if al.allDim[d] {
					continue
				}
				k = k*g.Extent(d) + c
			}
			al.bucket[k] = append(al.bucket[k], elemVal{s.elemOf(am.name, idx), v})
		}
		loads.arrays[a] = al
	}
	return loads
}

// installInput installs this processor's slice of the pre-bucketed
// initial state, free of charge (input distribution cost is measured
// separately by package data).
func (x *valExec) installInput(loads *inputLoads) {
	g := x.s.ss.Grid
	for a := range loads.arrays {
		al := &loads.arrays[a]
		if al.bucket == nil {
			continue
		}
		k := 0
		for d := 0; d < g.Q(); d++ {
			if al.allDim[d] {
				continue
			}
			k = k*g.Extent(d) + g.Coord(x.me, d)
		}
		for _, ev := range al.bucket[k] {
			x.storeElem(ev.elem, ev.val)
		}
	}
}

// loadElem reads an element of the local store; never-touched arrays
// read as zero, matching the dense store's (and the old engine map's)
// default.
func (x *valExec) loadElem(e elemID) float64 {
	if s := x.store[e.arr()]; s != nil {
		return s[e.off()]
	}
	return 0
}

func (x *valExec) storeElem(e elemID, v float64) {
	x.ensure(e.arr())
	x.store[e.arr()][e.off()] = v
	x.has[e.arr()][e.off()] = true
}

// load resolves one RHS operand: the redirected reduce accumulator,
// then received remote slots (matched by element, like the old values
// map), then the local dense store (zero for never-written elements,
// matching the old map's default).
func (x *valExec) load(r ir.Ref, idx []int) float64 {
	e := x.s.elemOf(r.Array, idx)
	if x.curReduce && e == x.curAcc {
		return x.partials[e]
	}
	for i := range x.curSlots {
		if x.curSlots[i].elem == e {
			return x.curVals[i]
		}
	}
	return x.loadElem(e)
}

// runNest executes this processor's instruction stream for one nest.
func (x *valExec) runNest(ns *nestSchedule) {
	stream := ns.procs[x.me]
	for i := range stream {
		in := &stream[i]
		switch in.op {
		case opFlush:
			f := in.flush
			for _, snd := range f.sends {
				x.gather = x.gather[:0]
				for _, e := range snd.elems {
					x.gather = append(x.gather, x.loadElem(e))
				}
				x.proc.Send(int(snd.dst), x.gather)
			}
			for _, rcv := range f.recvs {
				b := x.buf(int(rcv.src))
				if b.pos != len(b.data) {
					panic(fmt.Sprintf("exec: vectored buffer from %d not drained (%d of %d words)", rcv.src, b.pos, len(b.data)))
				}
				data := x.proc.Recv(int(rcv.src))
				if len(data) != rcv.n {
					panic(fmt.Sprintf("exec: vectored exchange from %d expected %d words, got %d", rcv.src, rcv.n, len(data)))
				}
				b.data, b.pos = data, 0
			}
		case opRedist:
			x.runRedist(in.redist)
		case opSendDirect:
			x.proc.SendValue(int(in.dst), x.loadElem(in.elem))
		case opFin:
			x.finalize(in.fin)
		case opRed:
			x.reduceBatch(in.red)
		case opEval:
			x.eval(ns, in)
		}
	}
}

// runRedist executes one epoch's collective redistribution. Each round
// sends its merged messages in ascending destination order, then
// receives in ascending source order — one message per ordered pair
// per round, the same shape that keeps the point-to-point flush
// deadlock-free at ChanCap=1. A segment whose origin is this processor
// gathers from the local store; a relayed segment forwards the words
// buffered (under the origin's rank) in an earlier round.
func (x *valExec) runRedist(op *redistOp) {
	for r := range op.rounds {
		rd := &op.rounds[r]
		for i := range rd.sends {
			msg := &rd.sends[i]
			x.gather = x.gather[:0]
			for _, seg := range msg.segs {
				if int(seg.origin) == x.me {
					for _, e := range seg.elems {
						x.gather = append(x.gather, x.loadElem(e))
					}
				} else {
					cb := x.cbuf[seg.origin]
					for _, e := range seg.elems {
						w, ok := cb[e]
						if !ok {
							panic(fmt.Sprintf("exec: collective relay at %d missing element %d of origin %d", x.me, e, seg.origin))
						}
						x.gather = append(x.gather, w)
					}
				}
			}
			x.proc.Send(int(msg.peer), x.gather)
		}
		for i := range rd.recvs {
			msg := &rd.recvs[i]
			data := x.proc.Recv(int(msg.peer))
			pos := 0
			for _, seg := range msg.segs {
				cb := x.cbuf[seg.origin]
				if cb == nil {
					cb = make(map[elemID]machine.Word)
					x.cbuf[seg.origin] = cb
				}
				for _, e := range seg.elems {
					if pos >= len(data) {
						panic(fmt.Sprintf("exec: collective round from %d short by %d words", msg.peer, pos-len(data)+1))
					}
					cb[e] = data[pos]
					pos++
				}
			}
			if pos != len(data) {
				panic(fmt.Sprintf("exec: collective round from %d expected %d words, got %d", msg.peer, pos, len(data)))
			}
		}
	}
}

// eval receives the instance's remote operands (buffer pops and direct
// one-word messages, in the shared global order) and, unless this
// processor is a receive-only replica of a reduction, evaluates the
// statement.
func (x *valExec) eval(ns *nestSchedule, in *pinstr) {
	x.curVals = x.curVals[:0]
	for _, sl := range in.slots {
		var v float64
		switch {
		case sl.direct:
			v = x.proc.RecvValue(int(sl.src))
		case x.s.collective:
			w, ok := x.cbuf[sl.src][sl.elem]
			if !ok {
				panic(fmt.Sprintf("exec: collective buffer at %d missing element %d of origin %d", x.me, sl.elem, sl.src))
			}
			v = w
		default:
			b := x.buf(int(sl.src))
			if b.pos >= len(b.data) {
				panic(fmt.Sprintf("exec: vectored buffer from %d underflow", sl.src))
			}
			v = b.data[b.pos]
			b.pos++
		}
		x.curVals = append(x.curVals, v)
	}
	if in.role == roleRecvOnly {
		return
	}
	stmt := ns.nest.Stmts[in.stmt]
	for k := 0; k < len(in.env); k++ {
		x.env[ns.loopIdx[k]] = int(in.env[k])
	}
	x.curSlots = in.slots
	x.curReduce = in.role == roleReduce
	x.curAcc = in.elem
	v := stmt.RHS.Eval(x.env, x.loadFn, x.scalars)
	if in.role == roleReduce {
		x.partials[in.elem] = v
	} else {
		if math.IsNaN(v) {
			panic(fmt.Sprintf("exec: NaN at %s line %d", stmt.LHS, stmt.Line))
		}
		x.storeElem(in.elem, v)
	}
	x.proc.Compute(stmt.Flops)
}

// finalize mirrors engine.finalize on the batched transport: the
// contributors' partials fold into the root owner's stored value in
// contributor order, and the total fans out to the remaining owners.
func (x *valExec) finalize(f *finOp) {
	if x.me == f.root {
		total := x.loadElem(f.elem)
		for _, c := range f.contribs {
			var part float64
			if c == f.root {
				part = x.partials[f.elem]
			} else {
				part = x.proc.RecvValue(c)
			}
			total += part
			x.proc.Compute(1)
		}
		x.storeElem(f.elem, total)
		for _, o := range f.owners {
			if o != f.root {
				x.proc.SendValue(o, total)
			}
		}
	} else {
		if contains(f.contribs, x.me) {
			x.proc.SendValue(f.root, x.partials[f.elem])
		}
		if contains(f.owners, x.me) {
			x.storeElem(f.elem, x.proc.RecvValue(f.root))
		}
	}
	delete(x.partials, f.elem)
}

// flushSends transmits every non-empty per-destination build buffer in
// ascending destination order and returns the words sent.
func (x *valExec) flushSends() int {
	sent := 0
	x.keys = x.keys[:0]
	for dst, b := range x.rsend {
		if len(b) > 0 {
			x.keys = append(x.keys, dst)
		}
	}
	sort.Ints(x.keys)
	for _, dst := range x.keys {
		b := x.rsend[dst]
		x.proc.Send(dst, b)
		sent += len(b)
		x.rsend[dst] = b[:0]
	}
	return sent
}

// drainRecvs receives one vectored message per source with a nonzero
// expected count, in ascending source order, resetting the counts.
func (x *valExec) drainRecvs(what string) {
	x.keys = x.keys[:0]
	for src, need := range x.rneed {
		if need > 0 {
			x.keys = append(x.keys, src)
		}
	}
	sort.Ints(x.keys)
	for _, src := range x.keys {
		b := x.rbuf(src)
		if b.pos != len(b.data) {
			panic(fmt.Sprintf("exec: %s buffer from %d not drained (%d of %d words)", what, src, b.pos, len(b.data)))
		}
		data := x.proc.Recv(src)
		if len(data) != x.rneed[src] {
			panic(fmt.Sprintf("exec: %s exchange from %d expected %d words, got %d", what, src, x.rneed[src], len(data)))
		}
		b.data, b.pos = data, 0
		x.rneed[src] = 0
	}
}

func (x *valExec) popRecv(src int) machine.Word {
	b := x.rrecv[src]
	v := b.data[b.pos]
	b.pos++
	return v
}

// reduceBatch runs one vectored reduction exchange (opRed): the
// two-phase gather + fan-out lowering, or the Section 5 ring when the
// inspector marked the batch ring-eligible. Both fold each element
// exactly like finalize — stored value first, then contributors in
// ascending order — so values stay bit-identical to the oracle.
func (x *valExec) reduceBatch(r *redOp) {
	if r.ring {
		x.reduceRing(r)
		return
	}

	// Gather phase: one vectored partials message per (contributor,
	// root) pair, items in batch order on both ends so cursors align.
	start := x.proc.Clock()
	for _, f := range r.items {
		if x.me != f.root && contains(f.contribs, x.me) {
			x.rsend[f.root] = append(x.rsend[f.root], x.partials[f.elem])
		}
	}
	sent := x.flushSends()
	for _, f := range r.items {
		if x.me == f.root {
			for _, c := range f.contribs {
				if c != x.me {
					x.rneed[c]++
				}
			}
		}
	}
	x.drainRecvs("gather")
	for _, f := range r.items {
		if x.me == f.root {
			total := x.loadElem(f.elem)
			for _, c := range f.contribs {
				var part machine.Word
				if c == f.root {
					part = x.partials[f.elem]
				} else {
					part = x.popRecv(c)
				}
				total += part
				x.proc.Compute(1)
			}
			x.storeElem(f.elem, total)
		}
		delete(x.partials, f.elem)
	}
	x.proc.Note(machine.EvGather, start, x.proc.Clock(), -1, sent)

	// Fan-out phase: one vectored totals message per (root, live
	// reader) pair. Owners outside the fan-out were proven by the
	// liveness scan not to read the total before its next write.
	start = x.proc.Clock()
	for _, f := range r.items {
		if x.me == f.root {
			for _, o := range f.fanout {
				x.rsend[o] = append(x.rsend[o], x.loadElem(f.elem))
			}
		}
	}
	sent = x.flushSends()
	for _, f := range r.items {
		if x.me != f.root && contains(f.fanout, x.me) {
			x.rneed[f.root]++
		}
	}
	x.drainRecvs("fanout")
	for _, f := range r.items {
		if x.me != f.root && contains(f.fanout, x.me) {
			x.storeElem(f.elem, x.popRecv(f.root))
		}
	}
	x.proc.Note(machine.EvFanout, start, x.proc.Clock(), -1, sent)
}

// reduceRing runs a ring-lowered batch (Section 5): the running totals
// travel the shared contributor chain neighbor-to-neighbor — each hop
// folds its partials into the vector — and the last contributor
// delivers the totals to the root (which always stores) and the live
// readers. The root receives one message instead of len(contribs)-1,
// de-serializing the reduction hot-spot the paper's pipelined SOR
// removes.
func (x *valExec) reduceRing(r *redOp) {
	start := x.proc.Clock()
	sent := 0
	order := r.items[0].contribs
	k := len(order)
	last := order[k-1]
	switch pos := indexOf(order, x.me); {
	case pos == 0: // root: fold stored values + own partials, start the ring
		x.rvec = x.rvec[:0]
		for _, f := range r.items {
			x.rvec = append(x.rvec, x.loadElem(f.elem)+x.partials[f.elem])
			x.proc.Compute(1)
		}
		x.proc.Send(order[1], x.rvec)
		sent += len(x.rvec)
		data := x.proc.Recv(last)
		if len(data) != len(r.items) {
			panic(fmt.Sprintf("exec: ring totals expected %d words, got %d", len(r.items), len(data)))
		}
		for i, f := range r.items {
			x.storeElem(f.elem, data[i])
		}
	case pos > 0 && pos < k-1: // interior hop: fold and forward
		data := x.proc.Recv(order[pos-1])
		x.rvec = x.rvec[:0]
		for i, f := range r.items {
			x.rvec = append(x.rvec, data[i]+x.partials[f.elem])
			x.proc.Compute(1)
		}
		x.proc.Send(order[pos+1], x.rvec)
		sent += len(x.rvec)
		x.ringStoreTotals(r, last)
	case pos == k-1: // last hop: fold, then deliver the totals
		data := x.proc.Recv(order[k-2])
		x.rvec = x.rvec[:0]
		for i, f := range r.items {
			total := data[i] + x.partials[f.elem]
			x.proc.Compute(1)
			x.rvec = append(x.rvec, total)
			if contains(f.owners, x.me) {
				x.storeElem(f.elem, total)
			}
		}
		// The root always gets the full vector; live readers get their
		// items. Root = min(owners) < every fan-out rank, so sending it
		// first keeps the destinations ascending.
		x.proc.Send(r.items[0].root, x.rvec)
		sent += len(x.rvec)
		for i, f := range r.items {
			for _, o := range f.fanout {
				if o != x.me {
					x.rsend[o] = append(x.rsend[o], x.rvec[i])
				}
			}
		}
		sent += x.flushSends()
	default: // pure reader
		x.ringStoreTotals(r, last)
	}
	for _, f := range r.items {
		delete(x.partials, f.elem)
	}
	x.proc.Note(machine.EvRing, start, x.proc.Clock(), -1, sent)
}

// ringStoreTotals receives the delivery vector from the ring's last
// contributor and stores the items this processor is a live reader of.
func (x *valExec) ringStoreTotals(r *redOp, last int) {
	for _, f := range r.items {
		if x.me != last && contains(f.fanout, x.me) {
			x.rneed[last]++
		}
	}
	if x.rneed[last] == 0 {
		return
	}
	x.drainRecvs("ring")
	for _, f := range r.items {
		if x.me != last && contains(f.fanout, x.me) {
			x.storeElem(f.elem, x.popRecv(last))
		}
	}
}
