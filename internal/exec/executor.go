// The executor half of the batched engine: each processor runs its
// precomputed instruction stream (schedule.go) against dense per-array
// stores, exchanging each epoch's traffic as one vectored machine.Send
// per processor pair. All per-instance map and slice state of the old
// engine is pooled here: the stream is allocated once by the inspector
// and the executor reuses its scratch buffers across instances.

package exec

import (
	"fmt"
	"math"

	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// valExec is one processor's value-pass state.
type valExec struct {
	s       *progSchedule
	proc    *machine.Proc
	me      int
	scalars map[string]float64
	// store/has are the dense per-array local stores; has marks
	// elements this processor actually wrote or received, for the
	// first-owner result assembly.
	store [][]float64
	has   [][]bool
	// partials holds running partial sums of reduce statements.
	partials map[elemID]float64
	// bufs[src] is the current epoch's vectored buffer from src, with a
	// consumption cursor.
	bufs []vbuf
	// env is the reusable loop binding for RHS evaluation.
	env    map[string]int
	loadFn func(ir.Ref, []int) float64
	// current eval context for loadFn.
	curSlots  []slot
	curVals   []float64
	curReduce bool
	curAcc    elemID
	// gather is the vectored-send scratch (machine.Send copies).
	gather []machine.Word
	// Vectored-reduction scratch: per-destination build buffers,
	// per-source receive buffers with cursors and expected counts, and
	// the ring hop vector.
	rsend [][]machine.Word
	rrecv [][]machine.Word
	rpos  []int
	rneed []int
	rvec  []machine.Word
}

type vbuf struct {
	data []machine.Word
	pos  int
}

func newValExec(s *progSchedule, proc *machine.Proc, scalars map[string]float64) *valExec {
	x := &valExec{
		s: s, proc: proc, me: proc.Rank(), scalars: scalars,
		store:    make([][]float64, len(s.arrays)),
		has:      make([][]bool, len(s.arrays)),
		partials: make(map[elemID]float64),
		bufs:     make([]vbuf, s.nprocs),
		env:      bindEnv(s.bind),
		curVals:  make([]float64, 0, 8),
		rsend:    make([][]machine.Word, s.nprocs),
		rrecv:    make([][]machine.Word, s.nprocs),
		rpos:     make([]int, s.nprocs),
		rneed:    make([]int, s.nprocs),
	}
	for a, am := range s.arrays {
		x.store[a] = make([]float64, am.size)
		x.has[a] = make([]bool, am.size)
	}
	x.loadFn = x.load
	return x
}

// loadInput installs the owned (and replicated) slice of the initial
// array contents, free of charge (input distribution cost is measured
// separately by package data).
func (x *valExec) loadInput(input ir.Storage) {
	for name, elems := range input {
		sch, ok := x.s.ss.Schemes[name]
		if !ok {
			continue
		}
		for key, v := range elems {
			idx := parseKey(key)
			if sch.IsOwner(x.s.ss.Grid, x.me, idx...) {
				e := x.s.elemOf(name, idx)
				x.store[e.arr()][e.off()] = v
				x.has[e.arr()][e.off()] = true
			}
		}
	}
}

func (x *valExec) loadElem(e elemID) float64 { return x.store[e.arr()][e.off()] }

func (x *valExec) storeElem(e elemID, v float64) {
	x.store[e.arr()][e.off()] = v
	x.has[e.arr()][e.off()] = true
}

// load resolves one RHS operand: the redirected reduce accumulator,
// then received remote slots (matched by element, like the old values
// map), then the local dense store (zero for never-written elements,
// matching the old map's default).
func (x *valExec) load(r ir.Ref, idx []int) float64 {
	e := x.s.elemOf(r.Array, idx)
	if x.curReduce && e == x.curAcc {
		return x.partials[e]
	}
	for i := range x.curSlots {
		if x.curSlots[i].elem == e {
			return x.curVals[i]
		}
	}
	return x.loadElem(e)
}

// runNest executes this processor's instruction stream for one nest.
func (x *valExec) runNest(ns *nestSchedule) {
	stream := ns.procs[x.me]
	for i := range stream {
		in := &stream[i]
		switch in.op {
		case opFlush:
			f := in.flush
			for _, snd := range f.sends {
				x.gather = x.gather[:0]
				for _, e := range snd.elems {
					x.gather = append(x.gather, x.loadElem(e))
				}
				x.proc.Send(int(snd.dst), x.gather)
			}
			for _, rcv := range f.recvs {
				b := &x.bufs[rcv.src]
				if b.pos != len(b.data) {
					panic(fmt.Sprintf("exec: vectored buffer from %d not drained (%d of %d words)", rcv.src, b.pos, len(b.data)))
				}
				data := x.proc.Recv(int(rcv.src))
				if len(data) != rcv.n {
					panic(fmt.Sprintf("exec: vectored exchange from %d expected %d words, got %d", rcv.src, rcv.n, len(data)))
				}
				b.data, b.pos = data, 0
			}
		case opSendDirect:
			x.proc.SendValue(int(in.dst), x.loadElem(in.elem))
		case opFin:
			x.finalize(in.fin)
		case opRed:
			x.reduceBatch(in.red)
		case opEval:
			x.eval(ns, in)
		}
	}
}

// eval receives the instance's remote operands (buffer pops and direct
// one-word messages, in the shared global order) and, unless this
// processor is a receive-only replica of a reduction, evaluates the
// statement.
func (x *valExec) eval(ns *nestSchedule, in *pinstr) {
	x.curVals = x.curVals[:0]
	for _, sl := range in.slots {
		var v float64
		if sl.direct {
			v = x.proc.RecvValue(int(sl.src))
		} else {
			b := &x.bufs[sl.src]
			if b.pos >= len(b.data) {
				panic(fmt.Sprintf("exec: vectored buffer from %d underflow", sl.src))
			}
			v = b.data[b.pos]
			b.pos++
		}
		x.curVals = append(x.curVals, v)
	}
	if in.role == roleRecvOnly {
		return
	}
	stmt := ns.nest.Stmts[in.stmt]
	for k := 0; k < len(in.env); k++ {
		x.env[ns.loopIdx[k]] = int(in.env[k])
	}
	x.curSlots = in.slots
	x.curReduce = in.role == roleReduce
	x.curAcc = in.elem
	v := stmt.RHS.Eval(x.env, x.loadFn, x.scalars)
	if in.role == roleReduce {
		x.partials[in.elem] = v
	} else {
		if math.IsNaN(v) {
			panic(fmt.Sprintf("exec: NaN at %s line %d", stmt.LHS, stmt.Line))
		}
		x.storeElem(in.elem, v)
	}
	x.proc.Compute(stmt.Flops)
}

// finalize mirrors engine.finalize on the batched transport: the
// contributors' partials fold into the root owner's stored value in
// contributor order, and the total fans out to the remaining owners.
func (x *valExec) finalize(f *finOp) {
	if x.me == f.root {
		total := x.loadElem(f.elem)
		for _, c := range f.contribs {
			var part float64
			if c == f.root {
				part = x.partials[f.elem]
			} else {
				part = x.proc.RecvValue(c)
			}
			total += part
			x.proc.Compute(1)
		}
		x.storeElem(f.elem, total)
		for _, o := range f.owners {
			if o != f.root {
				x.proc.SendValue(o, total)
			}
		}
	} else {
		if contains(f.contribs, x.me) {
			x.proc.SendValue(f.root, x.partials[f.elem])
		}
		if contains(f.owners, x.me) {
			x.storeElem(f.elem, x.proc.RecvValue(f.root))
		}
	}
	delete(x.partials, f.elem)
}

// flushSends transmits every non-empty per-destination build buffer in
// ascending destination order and returns the words sent.
func (x *valExec) flushSends() int {
	sent := 0
	for dst := range x.rsend {
		if len(x.rsend[dst]) > 0 {
			x.proc.Send(dst, x.rsend[dst])
			sent += len(x.rsend[dst])
			x.rsend[dst] = x.rsend[dst][:0]
		}
	}
	return sent
}

// drainRecvs receives one vectored message per source with a nonzero
// expected count, in ascending source order, resetting the counts.
func (x *valExec) drainRecvs(what string) {
	for src := range x.rneed {
		if x.rneed[src] == 0 {
			continue
		}
		if x.rpos[src] != len(x.rrecv[src]) {
			panic(fmt.Sprintf("exec: %s buffer from %d not drained (%d of %d words)", what, src, x.rpos[src], len(x.rrecv[src])))
		}
		data := x.proc.Recv(src)
		if len(data) != x.rneed[src] {
			panic(fmt.Sprintf("exec: %s exchange from %d expected %d words, got %d", what, src, x.rneed[src], len(data)))
		}
		x.rrecv[src], x.rpos[src] = data, 0
		x.rneed[src] = 0
	}
}

func (x *valExec) popRecv(src int) machine.Word {
	v := x.rrecv[src][x.rpos[src]]
	x.rpos[src]++
	return v
}

// reduceBatch runs one vectored reduction exchange (opRed): the
// two-phase gather + fan-out lowering, or the Section 5 ring when the
// inspector marked the batch ring-eligible. Both fold each element
// exactly like finalize — stored value first, then contributors in
// ascending order — so values stay bit-identical to the oracle.
func (x *valExec) reduceBatch(r *redOp) {
	if r.ring {
		x.reduceRing(r)
		return
	}

	// Gather phase: one vectored partials message per (contributor,
	// root) pair, items in batch order on both ends so cursors align.
	start := x.proc.Clock()
	for _, f := range r.items {
		if x.me != f.root && contains(f.contribs, x.me) {
			x.rsend[f.root] = append(x.rsend[f.root], x.partials[f.elem])
		}
	}
	sent := x.flushSends()
	for _, f := range r.items {
		if x.me == f.root {
			for _, c := range f.contribs {
				if c != x.me {
					x.rneed[c]++
				}
			}
		}
	}
	x.drainRecvs("gather")
	for _, f := range r.items {
		if x.me == f.root {
			total := x.loadElem(f.elem)
			for _, c := range f.contribs {
				var part machine.Word
				if c == f.root {
					part = x.partials[f.elem]
				} else {
					part = x.popRecv(c)
				}
				total += part
				x.proc.Compute(1)
			}
			x.storeElem(f.elem, total)
		}
		delete(x.partials, f.elem)
	}
	x.proc.Note(machine.EvGather, start, x.proc.Clock(), -1, sent)

	// Fan-out phase: one vectored totals message per (root, live
	// reader) pair. Owners outside the fan-out were proven by the
	// liveness scan not to read the total before its next write.
	start = x.proc.Clock()
	for _, f := range r.items {
		if x.me == f.root {
			for _, o := range f.fanout {
				x.rsend[o] = append(x.rsend[o], x.loadElem(f.elem))
			}
		}
	}
	sent = x.flushSends()
	for _, f := range r.items {
		if x.me != f.root && contains(f.fanout, x.me) {
			x.rneed[f.root]++
		}
	}
	x.drainRecvs("fanout")
	for _, f := range r.items {
		if x.me != f.root && contains(f.fanout, x.me) {
			x.storeElem(f.elem, x.popRecv(f.root))
		}
	}
	x.proc.Note(machine.EvFanout, start, x.proc.Clock(), -1, sent)
}

// reduceRing runs a ring-lowered batch (Section 5): the running totals
// travel the shared contributor chain neighbor-to-neighbor — each hop
// folds its partials into the vector — and the last contributor
// delivers the totals to the root (which always stores) and the live
// readers. The root receives one message instead of len(contribs)-1,
// de-serializing the reduction hot-spot the paper's pipelined SOR
// removes.
func (x *valExec) reduceRing(r *redOp) {
	start := x.proc.Clock()
	sent := 0
	order := r.items[0].contribs
	k := len(order)
	last := order[k-1]
	switch pos := indexOf(order, x.me); {
	case pos == 0: // root: fold stored values + own partials, start the ring
		x.rvec = x.rvec[:0]
		for _, f := range r.items {
			x.rvec = append(x.rvec, x.loadElem(f.elem)+x.partials[f.elem])
			x.proc.Compute(1)
		}
		x.proc.Send(order[1], x.rvec)
		sent += len(x.rvec)
		data := x.proc.Recv(last)
		if len(data) != len(r.items) {
			panic(fmt.Sprintf("exec: ring totals expected %d words, got %d", len(r.items), len(data)))
		}
		for i, f := range r.items {
			x.storeElem(f.elem, data[i])
		}
	case pos > 0 && pos < k-1: // interior hop: fold and forward
		data := x.proc.Recv(order[pos-1])
		x.rvec = x.rvec[:0]
		for i, f := range r.items {
			x.rvec = append(x.rvec, data[i]+x.partials[f.elem])
			x.proc.Compute(1)
		}
		x.proc.Send(order[pos+1], x.rvec)
		sent += len(x.rvec)
		x.ringStoreTotals(r, last)
	case pos == k-1: // last hop: fold, then deliver the totals
		data := x.proc.Recv(order[k-2])
		x.rvec = x.rvec[:0]
		for i, f := range r.items {
			total := data[i] + x.partials[f.elem]
			x.proc.Compute(1)
			x.rvec = append(x.rvec, total)
			if contains(f.owners, x.me) {
				x.storeElem(f.elem, total)
			}
		}
		// The root always gets the full vector; live readers get their
		// items. Root = min(owners) < every fan-out rank, so sending it
		// first keeps the destinations ascending.
		x.proc.Send(r.items[0].root, x.rvec)
		sent += len(x.rvec)
		for i, f := range r.items {
			for _, o := range f.fanout {
				if o != x.me {
					x.rsend[o] = append(x.rsend[o], x.rvec[i])
				}
			}
		}
		sent += x.flushSends()
	default: // pure reader
		x.ringStoreTotals(r, last)
	}
	for _, f := range r.items {
		delete(x.partials, f.elem)
	}
	x.proc.Note(machine.EvRing, start, x.proc.Clock(), -1, sent)
}

// ringStoreTotals receives the delivery vector from the ring's last
// contributor and stores the items this processor is a live reader of.
func (x *valExec) ringStoreTotals(r *redOp, last int) {
	for _, f := range r.items {
		if x.me != last && contains(f.fanout, x.me) {
			x.rneed[last]++
		}
	}
	if x.rneed[last] == 0 {
		return
	}
	x.drainRecvs("ring")
	for _, f := range r.items {
		if x.me != last && contains(f.fanout, x.me) {
			x.storeElem(f.elem, x.popRecv(last))
		}
	}
}
