package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dmcc/internal/ir"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// exactCfg returns cfg sized for the per-element oracle: RunExact has
// no batching, so its channels must absorb the largest per-pair burst
// (bounded by m*m one-word messages) or the machine deadlocks — the
// very crutch the batched engine removes.
func exactCfg(cfg machine.Config, m int) machine.Config {
	cfg.ChanCap = m * m
	return cfg
}

// requireIdentical asserts the batched engine reproduced the oracle's
// values and simulated statistics bit for bit.
func requireIdentical(t *testing.T, label string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Fatalf("%s: batched values differ from RunExact", label)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("%s: batched stats differ from RunExact:\n got %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	// The batched transport may only ever shed traffic: vectoring
	// merges messages, and the liveness-pruned reduction fan-out drops
	// words a non-reader owner would have received.
	if got.Transport.Words > want.Stats.Words {
		t.Fatalf("%s: batched transport carried %d words, per-element engine only %d",
			label, got.Transport.Words, want.Stats.Words)
	}
	if got.Transport.Messages > want.Stats.Messages {
		t.Fatalf("%s: batching did not reduce messages: %d > %d",
			label, got.Transport.Messages, want.Stats.Messages)
	}
}

// TestBatchedMatchesExactKernels: on every kernel program the batched
// engine's Result.Values are byte-identical to RunExact and the
// simulated Stats (clocks, flops, messages, words, per-proc) are
// exactly equal, while the transport itself moves far fewer messages.
func TestBatchedMatchesExactKernels(t *testing.T) {
	type kase struct {
		name    string
		p       *ir.Program
		m       int
		iters   int
		ns      []int
		scalars map[string]float64
		x0      bool
	}
	cases := []kase{
		{name: "jacobi", p: ir.Jacobi(), m: 16, iters: 5, ns: []int{1, 2, 4}, x0: true},
		{name: "sor", p: ir.SOR(), m: 12, iters: 4, ns: []int{1, 2, 4},
			scalars: map[string]float64{"OMEGA": 1.2}, x0: true},
		{name: "gauss", p: ir.Gauss(), m: 12, iters: 1, ns: []int{1, 2, 3}},
	}
	for _, c := range cases {
		a, b, _ := matrix.DiagonallyDominant(c.m, 401)
		var x0 []float64
		if c.x0 {
			x0 = make([]float64, c.m)
		}
		input := loadLinearSystem(c.p, a, b, x0)
		for _, n := range c.ns {
			label := fmt.Sprintf("%s m=%d n=%d", c.name, c.m, n)
			ss := wholeProgramSchemes(t, c.p, c.m, n)
			bind := map[string]int{"m": c.m}
			got, err := Run(c.p, ss, bind, c.scalars, c.iters, machine.DefaultConfig(), input)
			if err != nil {
				t.Fatalf("%s: batched: %v", label, err)
			}
			want, err := RunExact(c.p, ss, bind, c.scalars, c.iters, exactCfg(machine.DefaultConfig(), c.m), input)
			if err != nil {
				t.Fatalf("%s: exact: %v", label, err)
			}
			requireIdentical(t, label, got, want)
			// Every kernel batches now: Gauss vectors its operand ships,
			// and since the two-phase/ring reduction exchange Jacobi and
			// SOR coalesce their finalize traffic too.
			if n > 1 && got.Transport.Messages >= want.Stats.Messages {
				t.Errorf("%s: expected vectored transport to batch messages (%d vs %d)",
					label, got.Transport.Messages, want.Stats.Messages)
			}
		}
	}
}

// TestExecChanCap1 is the regression the old engine could not pass
// without its minExecChanCap crutch: jacobi, SOR and Gauss complete at
// ChanCap=1 — every channel holding a single message — and still
// produce the right answers. Batched exchanges are deadlock-free at
// minimum capacity by construction.
func TestExecChanCap1(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.ChanCap = 1

	m := 12
	a, b, _ := matrix.DiagonallyDominant(m, 409)
	x0 := make([]float64, m)

	pj := ir.Jacobi()
	want := matrix.JacobiSeq(a, b, x0, 4)
	for _, n := range []int{2, 4} {
		ss := wholeProgramSchemes(t, pj, m, n)
		res, err := Run(pj, ss, map[string]int{"m": m}, nil, 4, cfg, loadLinearSystem(pj, a, b, x0))
		if err != nil {
			t.Fatalf("jacobi n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(extractX(res.Values, m), want); d > 1e-9 {
			t.Errorf("jacobi n=%d: max diff %v", n, d)
		}
	}

	ps := ir.SOR()
	want = matrix.SORSeq(a, b, x0, 1.2, 3)
	for _, n := range []int{2, 4} {
		ss := wholeProgramSchemes(t, ps, m, n)
		res, err := Run(ps, ss, map[string]int{"m": m}, map[string]float64{"OMEGA": 1.2}, 3, cfg,
			loadLinearSystem(ps, a, b, x0))
		if err != nil {
			t.Fatalf("sor n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(extractX(res.Values, m), want); d > 1e-9 {
			t.Errorf("sor n=%d: max diff %v", n, d)
		}
	}

	pg := ir.Gauss()
	want = matrix.GaussSeq(a, b)
	for _, n := range []int{2, 3} {
		ss := wholeProgramSchemes(t, pg, m, n)
		res, err := Run(pg, ss, map[string]int{"m": m}, nil, 1, cfg, loadLinearSystem(pg, a, b, nil))
		if err != nil {
			t.Fatalf("gauss n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(extractX(res.Values, m), want); d > 1e-9 {
			t.Errorf("gauss n=%d: max diff %v", n, d)
		}
	}
}

// randomReduceProgram extends randomProgram with reduction statements:
// depth-2 nests accumulate into a rank-1 array under Reduce semantics
// (the travelling-accumulator pattern of Jacobi's inner product), and
// later statements read the accumulator, exercising finalize-on-read,
// nest-end finalizes, and the residual direct-send path.
func randomReduceProgram(rng *rand.Rand) *ir.Program {
	p := randomProgram(rng)
	// Find a rank-1 array for the accumulator and a rank-2 array for
	// the anchor; fall back to plain programs when the draw lacks them.
	var acc, anchor string
	for name, arr := range p.Arrays {
		if arr.Rank() == 1 && acc == "" {
			acc = name
		}
		if arr.Rank() == 2 && anchor == "" {
			anchor = name
		}
	}
	if acc == "" || anchor == "" {
		return p
	}
	for t := range p.Nests {
		nest := p.Nests[t]
		if len(nest.Loops) != 2 || rng.Intn(2) == 0 {
			continue
		}
		lhs := ir.Ref{Array: acc, Subs: []ir.Affine{ir.V("i")}}
		rd := ir.Ref{Array: anchor, Subs: []ir.Affine{ir.V("i"), ir.V("j")}}
		rhs := ir.Add(ir.Rd(lhs), ir.MulE(ir.Num(0.25), ir.Rd(rd)))
		nest.Stmts = append(nest.Stmts, &ir.Stmt{
			Line:   100 + t,
			Depth:  2,
			LHS:    lhs,
			Reads:  ir.ExprReads(rhs),
			RHS:    rhs,
			Flops:  ir.ExprFlops(rhs),
			Reduce: true,
			Text:   fmt.Sprintf("%s = %s [reduce]", lhs, rhs),
		})
		if rng.Intn(2) == 0 {
			// Read the accumulator back mid-epoch, SOR-style: every (i,j)
			// instance of this statement forces the pending partials of
			// acc(i) to combine the moment they are read, exercising the
			// ordered finalize-on-read path (and the ring lowering when
			// the partial holders form a uniform chain).
			rlhs := ir.Ref{Array: anchor, Subs: []ir.Affine{ir.V("i"), ir.V("j")}}
			rrhs := ir.Add(ir.Rd(rlhs), ir.MulE(ir.Num(0.5), ir.Rd(lhs)))
			nest.Stmts = append(nest.Stmts, &ir.Stmt{
				Line:  200 + t,
				Depth: 2,
				LHS:   rlhs,
				Reads: ir.ExprReads(rrhs),
				RHS:   rrhs,
				Flops: ir.ExprFlops(rrhs),
				Text:  fmt.Sprintf("%s = %s", rlhs, rrhs),
			})
		}
	}
	return p
}

// TestBatchedMatchesExactFuzz: the randomized property behind the whole
// refactor — on synthetic programs (with reductions), random schemes
// and random inputs, the batched engine at ChanCap=1 produces values
// and stats exactly equal to the per-element oracle on generously
// sized channels.
func TestBatchedMatchesExactFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	const m = 8
	tight := machine.DefaultConfig()
	tight.ChanCap = 1
	for trial := 0; trial < 30; trial++ {
		p := randomReduceProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		input := ir.NewStorage(p)
		for name, arr := range p.Arrays {
			if arr.Rank() == 1 {
				for i := 1; i <= m; i++ {
					input.Store(name, []int{i}, rng.Float64()*2-1)
				}
			} else {
				for i := 1; i <= m; i++ {
					for j := 1; j <= m; j++ {
						input.Store(name, []int{i, j}, rng.Float64()*2-1)
					}
				}
			}
		}
		iters := 1 + rng.Intn(2)
		for _, n := range []int{1, 2, 4} {
			ss := fuzzSchemes(t, p, m, n)
			if ss == nil {
				continue
			}
			bind := map[string]int{"m": m}
			got, err := Run(p, ss, bind, nil, iters, tight, input)
			if err != nil {
				t.Fatalf("trial %d n=%d: batched: %v", trial, n, err)
			}
			want, err := RunExact(p, ss, bind, nil, iters, exactCfg(machine.DefaultConfig(), m), input)
			if err != nil {
				t.Fatalf("trial %d n=%d: exact: %v", trial, n, err)
			}
			requireIdentical(t, fmt.Sprintf("trial %d n=%d", trial, n), got, want)
			// The per-element-finalize fallback must satisfy the same
			// oracle with the pipelined exchange disabled.
			noPipe, err := RunOpts(p, ss, bind, nil, iters, tight, input, Options{NoPipeline: true})
			if err != nil {
				t.Fatalf("trial %d n=%d: no-pipeline: %v", trial, n, err)
			}
			requireIdentical(t, fmt.Sprintf("trial %d n=%d (no pipeline)", trial, n), noPipe, want)
			// And the point-to-point redistribution (the default Run above
			// already exercises the collective lowering).
			p2p, err := RunOpts(p, ss, bind, nil, iters, tight, input, Options{Redist: RedistP2P})
			if err != nil {
				t.Fatalf("trial %d n=%d: p2p: %v", trial, n, err)
			}
			requireIdentical(t, fmt.Sprintf("trial %d n=%d (p2p)", trial, n), p2p, want)
		}
	}
}

// TestParseKeyMalformed: the satellite fix — parseKey used to fold any
// stray byte into the subscript digits (e.g. "a!1x2" parsed); it now
// panics naming the malformed key.
func TestParseKeyMalformed(t *testing.T) {
	for _, key := range []string{"1x2", "a!1", " 1", "1,", ",1", "1,,2", "--3", "+5", "007", "1.5"} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("parseKey(%q) accepted a malformed key", key)
					return
				}
				if s, ok := r.(string); !ok || !containsStr(s, key) {
					t.Errorf("parseKey(%q) panic %v does not name the key", key, r)
				}
			}()
			parseKey(key)
		}()
	}
	// splitKey rejects keys without an array part.
	for _, key := range []string{"", "!1,2", "noseparator"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("splitKey(%q) accepted a malformed key", key)
				}
			}()
			splitKey(key)
		}()
	}
}

// TestKeyRoundTripProperty: subKey/parseKey and pkey/splitKey round-trip
// on random subscript vectors.
func TestKeyRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		idx := make([]int, 1+rng.Intn(3))
		for i := range idx {
			idx[i] = rng.Intn(2001) - 1000
		}
		if got := parseKey(subKey(idx)); !reflect.DeepEqual(got, idx) {
			t.Fatalf("parseKey(subKey(%v)) = %v", idx, got)
		}
		arr, got := splitKey(pkey("Arr", idx))
		if arr != "Arr" || !reflect.DeepEqual(got, idx) {
			t.Fatalf("splitKey(pkey(%v)) = %s, %v", idx, arr, got)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
