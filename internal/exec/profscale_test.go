package exec

import (
	"testing"

	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// BenchmarkEventsN256 is the profiling anchor for the event runtime at
// the largest grid the goroutine runtime is also swept at: jacobi,
// m=64, N=256, compile excluded. Pair with -cpuprofile to find what
// limits the engine-phase gap (loadInput's per-processor ownership
// scan was found and removed this way).
func BenchmarkEventsN256(b *testing.B) {
	m, n := 64, 256
	p := ir.Jacobi()
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		b.Fatal(err)
	}
	a, bb, _ := matrix.DiagonallyDominant(m, 1)
	input := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			input.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		input.Store("B", []int{i}, bb[i-1])
		input.Store("X", []int{i}, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunOpts(p, ss, map[string]int{"m": m}, nil, 2, machine.DefaultConfig(), input, Options{Engine: EngineEvents}); err != nil {
			b.Fatal(err)
		}
	}
}
