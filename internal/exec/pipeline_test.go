package exec

import (
	"fmt"
	"reflect"
	"testing"

	"dmcc/internal/ir"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
	"dmcc/internal/trace"
)

// phaseLines runs the batched engine with a transport tracer attached
// and returns the reduction-phase events (gather/fanout/ring) as
// deterministic "p<proc> <kind> w=<words>" lines in collector order —
// per-processor, in each processor's own program order.
func phaseLines(t *testing.T, p *ir.Program, scalars map[string]float64, m, n, iters int, opt Options) ([]string, Result) {
	t.Helper()
	a, b, _ := matrix.DiagonallyDominant(m, 401)
	x0 := make([]float64, m)
	input := loadLinearSystem(p, a, b, x0)
	ss := wholeProgramSchemes(t, p, m, n)
	col := trace.New()
	opt.TransportTracer = col
	res, err := RunOpts(p, ss, map[string]int{"m": m}, scalars, iters, machine.DefaultConfig(), input, opt)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range col.Events() {
		switch e.Kind {
		case machine.EvGather, machine.EvFanout, machine.EvRing:
			lines = append(lines, fmt.Sprintf("p%d %s w=%d", e.Proc, e.Kind, e.Words))
		}
	}
	return lines, res
}

// TestSORGoldenRingTrace pins the Section 5 ring lowering on SOR at
// m=8, n=4 (the compiler picks a 1x4 grid): every V(i) finalize is a
// mid-epoch ring over the four column processors — one ring step per
// processor per element, the running total travelling neighbor to
// neighbor. The last chain processor's step carries 2 words when it
// both closes the ring to the root and feeds a fan-out reader. The
// trace is fully deterministic, so any change to the lowering shows up
// as a diff against this golden sequence.
func TestSORGoldenRingTrace(t *testing.T) {
	lines, res := phaseLines(t, ir.SOR(), map[string]float64{"OMEGA": 1.2}, 8, 4, 1, Options{})
	var want []string
	for proc := 0; proc < 4; proc++ {
		for elem := 0; elem < 8; elem++ {
			w := 1
			// p3 closes the ring: for V(3..6) the root is an interior
			// processor and a fan-out reader needs the total too, so the
			// closing step ships 2 one-word vectors.
			if proc == 3 && elem >= 2 && elem <= 5 {
				w = 2
			}
			want = append(want, fmt.Sprintf("p%d ring w=%d", proc, w))
		}
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("SOR ring trace diverged:\n got %v\nwant %v", lines, want)
	}
	if res.Transport.Messages >= res.Stats.Messages {
		t.Errorf("ring transport must beat the naive star: %d >= %d",
			res.Transport.Messages, res.Stats.Messages)
	}

	// With pipelining off, no phase events exist and the transport
	// reverts to one message per finalize hop.
	off, resOff := phaseLines(t, ir.SOR(), map[string]float64{"OMEGA": 1.2}, 8, 4, 1, Options{NoPipeline: true})
	if len(off) != 0 {
		t.Errorf("NoPipeline run still emitted %d phase events", len(off))
	}
	if !reflect.DeepEqual(resOff.Values, res.Values) {
		t.Errorf("pipelined and per-element values differ")
	}
	if resOff.Transport.Messages <= res.Transport.Messages {
		t.Errorf("per-element transport (%d msgs) should exceed ring transport (%d)",
			resOff.Transport.Messages, res.Transport.Messages)
	}
}

// TestJacobiGoldenTwoPhaseTrace pins the gather/fan-out lowering on
// Jacobi at m=8, n=4: all inner-product finalizes are hoisted to nest
// end and exchanged in two vectored phases — each non-root column
// processor sends its 8 partials as one gather message to the root,
// and the root fans the 6 off-root totals out as one message per live
// reader. 30 transported words replace the oracle's per-element stars.
func TestJacobiGoldenTwoPhaseTrace(t *testing.T) {
	lines, res := phaseLines(t, ir.Jacobi(), nil, 8, 4, 1, Options{})
	want := []string{
		"p0 gather w=0", "p0 fanout w=6",
		"p1 gather w=8", "p1 fanout w=0",
		"p2 gather w=8", "p2 fanout w=0",
		"p3 gather w=8", "p3 fanout w=0",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("jacobi two-phase trace diverged:\n got %v\nwant %v", lines, want)
	}
	if res.Transport.Messages >= res.Stats.Messages {
		t.Errorf("two-phase transport must beat the naive star: %d >= %d",
			res.Transport.Messages, res.Stats.Messages)
	}
}
