// The inspector half of the batched execution engine.
//
// buildSchedule walks each nest's iteration space exactly once per
// (nest, env-binding) — not once per processor per iteration like the
// per-element engine — and precomputes, for every ordered processor
// pair, the element list crossing the wire. The walk is cut into
// epochs: within an epoch no shipped element is written, so all of an
// epoch's pair traffic can be hoisted to the epoch boundary and sent as
// one vectored machine.Send per pair (the inspector/executor move of
// Li & Chen's communication-set generation; message vectorization in
// the Gupta & Banerjee lineage). Two artifacts come out of the walk:
//
//   - per-processor instruction streams (flush / direct-send /
//     finalize / eval) that the value executor (executor.go) runs with
//     batched communication, deadlock-free at ChanCap=1: every epoch
//     exchanges at most one vectored message per ordered pair, every
//     processor sends its vectors before receiving any, and all
//     per-element residual traffic follows one global order shared by
//     all processors;
//
//   - a timeline of the per-element engine's communication and
//     computation events, in its exact global lockstep order. The
//     naive cost model is value-independent — simulated clocks depend
//     only on the event schedule, never on the data — so replayStats
//     re-derives the per-element engine's Stats (clocks, messages,
//     words, flops, trace events) bit for bit without moving a single
//     per-element message.
//
// The hot path works on elemID integers (array id + row-major offset);
// the "arr!i,j" strings survive only at the ir.Storage boundary and in
// the nest-end finalize ordering, which sorts by the legacy string key
// to stay byte-identical with RunExact.

package exec

import (
	"fmt"
	"sort"

	"dmcc/internal/core"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// elemID packs (array id, 0-based row-major element offset) into one
// integer — the hot-path replacement for pkey strings.
type elemID int64

const elemOffBits = 40

func mkElem(a, off int) elemID { return elemID(int64(a)<<elemOffBits | int64(off)) }
func (e elemID) arr() int      { return int(int64(e) >> elemOffBits) }
func (e elemID) off() int      { return int(int64(e) & (1<<elemOffBits - 1)) }

// arrayMeta is one array's dense layout: extents evaluated under the
// binding, row-major, subscripts 1-based.
type arrayMeta struct {
	name string
	ext  []int
	size int
}

// progSchedule is the complete precomputed schedule of one Run call.
type progSchedule struct {
	p      *ir.Program
	ss     *core.SchemeSet
	bind   map[string]int
	nprocs int
	arrays []arrayMeta
	aid    map[string]int
	// ocache memoizes dist.Scheme.Owners per element: the per-element
	// engine recomputed it for every (instance, read, executor) visit.
	ocache map[elemID][]int
	nests  []*nestSchedule
	// pipeline enables the vectored two-phase / ring finalize lowering;
	// when false every finalize stays a per-element star (the PR 3
	// transport), which is what the -pipeline=false knob compares
	// against.
	pipeline bool
	// collective enables the composed collective lowering of operand
	// ships (RedistCollective): per-pair duplicates dedup at insertion,
	// shared-destination-set traffic travels binomial multicast trees,
	// and eval slots resolve against origin-keyed buffers instead of
	// positional pair cursors.
	collective bool
	// Liveness state for fan-out pruning (pipeline mode): redArrs marks
	// arrays that appear as a reduction LHS; acc records, per element of
	// those arrays, the program-order sequence of local-read and write
	// events; sites lists every finalize with its position in that
	// sequence. computeFanouts scans forward (cyclically, because the
	// program body repeats each outer iteration) from each site to the
	// element's next write and keeps only the owners that actually read
	// the total in between.
	redArrs map[int]bool
	seq     int
	acc     map[elemID][]accEvent
	sites   []finSite
}

// accEvent is one liveness event of a reduction-accumulator element:
// either a write (finalize or plain overwrite) or a local read by the
// listed ranks.
type accEvent struct {
	seq     int
	write   bool
	readers []int
}

// finSite is one finalize's position in the liveness sequence.
type finSite struct {
	e   elemID
	seq int
	f   *finOp
}

func (s *progSchedule) noteRead(e elemID, readers []int) {
	s.seq++
	s.acc[e] = append(s.acc[e], accEvent{seq: s.seq, readers: append([]int(nil), readers...)})
}

func (s *progSchedule) noteWrite(e elemID) {
	s.seq++
	s.acc[e] = append(s.acc[e], accEvent{seq: s.seq, write: true})
}

func (s *progSchedule) noteFinalize(e elemID, f *finOp) {
	s.seq++
	s.acc[e] = append(s.acc[e], accEvent{seq: s.seq, write: true})
	s.sites = append(s.sites, finSite{e: e, seq: s.seq, f: f})
}

// computeFanouts prunes every finalize's fan-out to the owners that are
// live readers of the total: ranks that locally read the element after
// this finalize and before its next write. The scan is cyclic — the
// program body repeats each outer iteration, so events before the site
// replay after it — and therefore conservative for the final iteration.
// The root is never in the fan-out: it always folds and stores the
// total, which keeps the ship source (owners[0]) and the first-owner
// result assembly correct even when every other owner is pruned.
func (s *progSchedule) computeFanouts() {
	live := map[int]bool{}
	for _, site := range s.sites {
		f := site.f
		events := s.acc[site.e]
		start := sort.Search(len(events), func(k int) bool { return events[k].seq > site.seq })
		for k := range live {
			delete(live, k)
		}
		n := len(events)
		for k := 0; k < n; k++ {
			ev := &events[(start+k)%n]
			if ev.write {
				break
			}
			for _, r := range ev.readers {
				live[r] = true
			}
		}
		for _, o := range f.owners {
			if o != f.root && live[o] {
				f.fanout = append(f.fanout, o)
			}
		}
	}
}

// nestSchedule is one nest's schedule, built once and replayed for
// every outer iteration (the binding, and hence the walk, is identical
// across iterations).
type nestSchedule struct {
	nest    *ir.Nest
	loopIdx []string
	// timeline is the per-element engine's global event order.
	timeline []top
	// procs[r] is processor r's value-pass instruction stream.
	procs [][]pinstr
}

// top is one timeline event of the naive model: a one-word transfer or
// a local computation.
type top struct {
	kind uint8
	a, b int32 // xfer: src, dst; compute: proc, flops
}

const (
	tXfer uint8 = iota
	tCompute
)

// pinstr is one value-pass instruction of one processor.
type pinstr struct {
	op    uint8
	role  uint8
	stmt  int32
	dst   int32 // opSendDirect: receiver rank
	elem  elemID
	env    []int32
	slots  []slot
	flush  *flushOp
	fin    *finOp
	red    *redOp
	redist *redistOp
}

const (
	// opFlush exchanges the epoch's vectored messages (sends first,
	// then receives).
	opFlush uint8 = iota
	// opSendDirect ships one element that was finalized earlier in the
	// same epoch, so its value postdates the epoch-boundary gather.
	opSendDirect
	// opFin combines a pending reduction (finalize).
	opFin
	// opEval receives this processor's remote operands and, unless the
	// role is roleRecvOnly, evaluates the statement instance.
	opEval
	// opRed runs a vectored reduction exchange (two-phase or ring) for a
	// batch of finalizes; pipeline mode's replacement for opFin.
	opRed
	// opRedist runs one epoch's collective redistribution rounds;
	// collective mode's replacement for opFlush.
	opRedist
)

const (
	roleWrite uint8 = iota
	roleReduce
	roleRecvOnly
)

// slot is one remote operand of an eval: either the next word of the
// vectored buffer from src, or (direct) a dedicated one-word message.
type slot struct {
	src    int32
	elem   elemID
	direct bool
}

type flushOp struct {
	sends []flushSend
	recvs []flushRecv
}

type flushSend struct {
	dst   int32
	elems []elemID
}

type flushRecv struct {
	src int32
	n   int
}

// redistOp is one processor's materialized schedule for an epoch's
// collective redistribution. Each round exchanges at most one merged
// vectored message per ordered processor pair, and every processor
// sends its round messages before receiving any — the same shape that
// makes the point-to-point flush deadlock-free at ChanCap=1. Binomial
// multicast-tree rounds come first (round r moves tree edges of stride
// 2^r, so a relay always receives a step's payload in an earlier round
// than it forwards it), and the residual single-destination traffic is
// the final round, one vectored message per pair like the flush.
type redistOp struct {
	rounds []redistRound
}

type redistRound struct {
	sends []redistMsg // ascending peer (destination) order
	recvs []redistMsg // ascending peer (source) order
}

// redistMsg is one merged round message: the segments of every tree
// step (and residual pair list) crossing this ordered pair this round,
// concatenated in step order. Both endpoints hold the same segment
// list, so the wire layout needs no header.
type redistMsg struct {
	peer int32
	segs []redistSeg
}

// redistSeg is one origin's element run inside a merged message. The
// sender gathers it from its local store when it is the origin, or
// forwards the words it received (and buffered by origin) in an
// earlier round; the receiver files the words under the origin's rank
// for eval's slot lookups.
type redistSeg struct {
	origin int32
	elems  []elemID
}

type finOp struct {
	elem     elemID
	contribs []int
	owners   []int
	root     int
	// fanout is the liveness-pruned total-delivery set (pipeline mode):
	// owners other than the root that locally read the total before the
	// element's next write, ascending. Filled by computeFanouts after
	// the walk; the legacy per-element star (pipeline off) ignores it
	// and delivers to all owners.
	fanout []int
}

// redOp is one vectored reduction exchange covering a batch of
// finalizes: all reductions forced by one statement instance
// (mid-epoch, ordered) or all reductions still pending at nest end
// (hoistable). Two lowerings share the type:
//
//   - two-phase: a gather phase (one vectored partials message per
//     (contributor, root) pair, items in batch order) and a fan-out
//     phase (one vectored totals message per (root, live reader) pair);
//
//   - ring (Section 5), when ring is true: the running totals travel
//     the contributor chain neighbor-to-neighbor — each hop adds its
//     partials and forwards the vector — and the last contributor
//     delivers the totals to the root and the live readers. This
//     de-serializes the root hot-spot: the root receives one message
//     instead of len(contribs)-1.
//
// Both phases and the ring keep the oracle's left-associative fold
// order (stored value, then contributors ascending), so values stay
// bit-identical to RunExact.
type redOp struct {
	items []*finOp
	ring  bool
}

// ringEligible reports whether a mid-epoch batch can be ring-lowered:
// every item must share one contributor chain of length >= 3 that
// starts at the shared root (so the chain's first hop has the stored
// value to fold first and the fold order matches the star's).
func ringEligible(items []*finOp) bool {
	f0 := items[0]
	if len(f0.contribs) < 3 || f0.contribs[0] != f0.root {
		return false
	}
	for _, f := range items[1:] {
		if f.root != f0.root || len(f.contribs) != len(f0.contribs) {
			return false
		}
		for i, c := range f.contribs {
			if c != f0.contribs[i] {
				return false
			}
		}
	}
	return true
}

// buildSchedule runs the inspector over the whole program. pipeline
// selects the vectored two-phase / ring finalize lowering; off, every
// finalize stays a per-element star. collective selects the composed
// collective lowering of the epoch operand exchanges; off, each epoch
// is one point-to-point vectored message per pair, duplicates and all.
func buildSchedule(p *ir.Program, ss *core.SchemeSet, bind map[string]int, pipeline, collective bool) *progSchedule {
	s := &progSchedule{
		p: p, ss: ss, bind: bind,
		nprocs:     ss.Grid.Size(),
		aid:        make(map[string]int, len(p.Arrays)),
		ocache:     make(map[elemID][]int),
		pipeline:   pipeline,
		collective: collective,
		redArrs:    make(map[int]bool),
		acc:        make(map[elemID][]accEvent),
	}
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	env := bindEnv(bind)
	for _, name := range names {
		arr := p.Arrays[name]
		am := arrayMeta{name: name, ext: make([]int, arr.Rank()), size: 1}
		for d, e := range arr.Extents {
			am.ext[d] = e.Eval(env)
			am.size *= am.ext[d]
		}
		s.aid[name] = len(s.arrays)
		s.arrays = append(s.arrays, am)
	}
	for _, nest := range p.Nests {
		for _, st := range nest.Stmts {
			if st.Reduce {
				s.redArrs[s.aid[st.LHS.Array]] = true
			}
		}
	}
	s.nests = make([]*nestSchedule, len(p.Nests))
	for i, nest := range p.Nests {
		s.nests[i] = s.buildNest(nest)
	}
	if pipeline {
		s.computeFanouts()
	}
	return s
}

func bindEnv(bind map[string]int) map[string]int {
	env := make(map[string]int, len(bind)+4)
	for k, v := range bind {
		env[k] = v
	}
	return env
}

// elemOf maps a subscripted reference to its element id, with the
// 1-based subscripts checked against the declared extents (the dense
// stores cannot absorb out-of-range elements the way the old string
// maps silently did).
func (s *progSchedule) elemOf(name string, idx []int) elemID {
	a, ok := s.aid[name]
	if !ok {
		panic(fmt.Sprintf("exec: reference to undeclared array %s", name))
	}
	am := &s.arrays[a]
	off := 0
	for d, v := range idx {
		if v < 1 || v > am.ext[d] {
			panic(fmt.Sprintf("exec: %s subscript %v outside extents %v", name, idx, am.ext))
		}
		off = off*am.ext[d] + (v - 1)
	}
	return mkElem(a, off)
}

// decode is elemOf's inverse, used only at the ir.Storage boundary and
// for the nest-end finalize ordering.
func (s *progSchedule) decode(e elemID) (string, []int) {
	am := &s.arrays[e.arr()]
	idx := make([]int, len(am.ext))
	off := e.off()
	for d := len(am.ext) - 1; d >= 0; d-- {
		idx[d] = off%am.ext[d] + 1
		off /= am.ext[d]
	}
	return am.name, idx
}

// ownersOf memoizes the owner set of an element.
func (s *progSchedule) ownersOf(e elemID, name string, idx []int) []int {
	if o, ok := s.ocache[e]; ok {
		return o
	}
	o := s.ss.Schemes[name].Owners(s.ss.Grid, idx...)
	s.ocache[e] = o
	return o
}

// nestBuilder is the inspector's per-nest state.
type nestBuilder struct {
	s  *progSchedule
	ns *nestSchedule
	// env is the inspector's loop binding, maintained exactly like the
	// per-element engine's.
	env map[string]int
	// pending maps a reduction accumulator to its sorted contributor
	// ranks, mirroring engine.pending (globally, not per processor).
	pending map[elemID][]int
	pendIdx map[elemID][]int
	// written marks elements written earlier in the current epoch; a
	// batched ship of such an element would gather a stale value at the
	// epoch boundary, so it either cuts the epoch (write from an
	// earlier instance) or degrades to a direct send (write by this
	// instance's own finalizes, which no cut can hoist past).
	written map[elemID]bool
	// cur accumulates the current epoch's per-processor instructions;
	// pairs the epoch's per-pair vectored element lists.
	cur   [][]pinstr
	pairs map[int64][]elemID
	// seen dedups batched ships in collective mode: seen[e][pair] marks
	// that the pair's destination holds a live buffered copy of e, so a
	// repeat ship would carry the same value and one copy suffices. A
	// write of e invalidates its entry (the buffered copies go stale),
	// which makes the dedup window every ship since the element's last
	// write — spanning epoch cuts, not reset by them: the surviving
	// ship's value is gathered at its own epoch boundary, before any
	// write that could invalidate it. The timeline still records every
	// ship — the naive model prices them all — and eval slots still
	// reference every operand; they resolve by (origin, element)
	// against the buffered copy.
	seen map[elemID]map[int64]bool
	// scratch
	lhsIdx  []int
	readIdx [][]int
	ships   []shipT
	exSlots [][]slot
	forced  []elemID
	readers []int
}

type shipT struct {
	ri  int
	src int32
	ex  int32
	e   elemID
}

func pairKey(src, dst int32) int64 { return int64(src)<<32 | int64(dst) }

func (s *progSchedule) buildNest(nest *ir.Nest) *nestSchedule {
	ns := &nestSchedule{
		nest:    nest,
		loopIdx: nest.LoopIndices(),
		procs:   make([][]pinstr, s.nprocs),
	}
	b := &nestBuilder{
		s: s, ns: ns,
		env:     bindEnv(s.bind),
		pending: make(map[elemID][]int),
		pendIdx: make(map[elemID][]int),
		written: make(map[elemID]bool),
		cur:     make([][]pinstr, s.nprocs),
		pairs:   make(map[int64][]elemID),
		seen:    make(map[elemID]map[int64]bool),
	}
	var walk func(level int)
	walk = func(level int) {
		for si, stmt := range nest.Stmts {
			if stmt.Depth == level && !nest.IsPost(stmt) {
				b.instance(si, stmt)
			}
		}
		if level < len(nest.Loops) {
			l := nest.Loops[level]
			lo, hi := l.Lo.Eval(b.env), l.Hi.Eval(b.env)
			if l.Step >= 0 {
				for v := lo; v <= hi; v++ {
					b.env[l.Index] = v
					walk(level + 1)
				}
			} else {
				for v := lo; v >= hi; v-- {
					b.env[l.Index] = v
					walk(level + 1)
				}
			}
			delete(b.env, l.Index)
		}
		for si, stmt := range nest.Stmts {
			if stmt.Depth == level && nest.IsPost(stmt) {
				b.instance(si, stmt)
			}
		}
	}
	walk(0)
	// Combine reductions still pending at nest end, in the legacy
	// string-key order the per-element engine uses (sort.Strings over
	// pkeys), so the event sequence stays byte-identical.
	type pend struct {
		key string
		e   elemID
	}
	var keys []pend
	for e := range b.pending {
		name, idx := s.decode(e)
		keys = append(keys, pend{pkey(name, idx), e})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	// Nest-end finalizes are hoistable: no later statement of the nest
	// reads them, so the whole set coalesces into one vectored exchange.
	elems := make([]elemID, len(keys))
	for i, k := range keys {
		elems[i] = k.e
	}
	b.emitBatch(elems, false)
	b.closeEpoch()
	return ns
}

// instance inspects one dynamic statement instance, appending its
// events to the timeline and its work to the per-processor streams.
// The decomposition (forced finalizes, executor set, ship list,
// pending bookkeeping, evaluation) replicates engine.instance exactly.
func (b *nestBuilder) instance(si int, stmt *ir.Stmt) {
	s := b.s

	// Resolve the written element and the read elements.
	b.lhsIdx = evalSubs(b.lhsIdx[:0], stmt.LHS.Subs, b.env)
	lhsElem := s.elemOf(stmt.LHS.Array, b.lhsIdx)
	for len(b.readIdx) < len(stmt.Reads) {
		b.readIdx = append(b.readIdx, nil)
	}
	readElem := make([]elemID, len(stmt.Reads))
	for ri, rd := range stmt.Reads {
		b.readIdx[ri] = evalSubs(b.readIdx[ri][:0], rd.Subs, b.env)
		readElem[ri] = s.elemOf(rd.Array, b.readIdx[ri])
	}

	// Executor set: anchor owners for reductions, LHS owners otherwise.
	var executors []int
	if stmt.Reduce {
		if anchor := anchorOf(stmt); anchor >= 0 {
			executors = s.ownersOf(readElem[anchor], stmt.Reads[anchor].Array, b.readIdx[anchor])
		} else {
			executors = s.ownersOf(lhsElem, stmt.LHS.Array, b.lhsIdx)
		}
	} else {
		executors = s.ownersOf(lhsElem, stmt.LHS.Array, b.lhsIdx)
	}

	// Ship list: one word from the element's first owner to every
	// executor that lacks it. (The reduce accumulator is never shipped;
	// executors that own the element read their local copy.)
	b.ships = b.ships[:0]
	for ri, rd := range stmt.Reads {
		e := readElem[ri]
		if stmt.Reduce && e == lhsElem {
			continue
		}
		owners := s.ownersOf(e, rd.Array, b.readIdx[ri])
		src := owners[0]
		for _, ex := range executors {
			if contains(owners, ex) {
				continue
			}
			b.ships = append(b.ships, shipT{ri: ri, src: int32(src), ex: int32(ex), e: e})
		}
	}

	// Epoch cut: a shipped element written by an earlier instance of
	// this epoch would be gathered stale at the epoch boundary, so the
	// boundary moves here, before this whole instance.
	for _, sh := range b.ships {
		if b.written[sh.e] {
			b.closeEpoch()
			break
		}
	}

	// Forced finalizes: any pending reduction read by this instance
	// (other than its own accumulator), then a non-reduce write to a
	// pending element. They are mid-epoch — ordered before this
	// instance's reads — so the batch covers exactly this instance's
	// set (pipeline mode folds them into one vectored exchange; the
	// classification of ISSUE 5's inspector).
	b.forced = b.forced[:0]
	for ri := range stmt.Reads {
		e := readElem[ri]
		if stmt.Reduce && e == lhsElem {
			continue
		}
		if _, pend := b.pending[e]; pend && !containsElem(b.forced, e) {
			b.forced = append(b.forced, e)
		}
	}
	if _, pend := b.pending[lhsElem]; pend && !stmt.Reduce && !containsElem(b.forced, lhsElem) {
		b.forced = append(b.forced, lhsElem)
	}
	b.emitBatch(b.forced, true)

	// Liveness events for fan-out pruning: local reads of
	// reduction-accumulator elements (reads satisfied by ships are the
	// root's job, not the reader's copy), and overwrites.
	if b.s.pipeline {
		for ri, rd := range stmt.Reads {
			e := readElem[ri]
			if !b.s.redArrs[e.arr()] || (stmt.Reduce && e == lhsElem) {
				continue
			}
			owners := b.s.ownersOf(e, rd.Array, b.readIdx[ri])
			b.readers = b.readers[:0]
			if stmt.Reduce {
				// Only the contributor evaluates; replicas just drain
				// their shipped slots.
				if contains(owners, executors[0]) {
					b.readers = append(b.readers, executors[0])
				}
			} else {
				for _, ex := range executors {
					if contains(owners, ex) {
						b.readers = append(b.readers, ex)
					}
				}
			}
			if len(b.readers) > 0 {
				b.s.noteRead(e, b.readers)
			}
		}
		if !stmt.Reduce && b.s.redArrs[lhsElem.arr()] {
			b.s.noteWrite(lhsElem)
		}
	}

	// Emit the ships: timeline events in the global lockstep order, and
	// either an epoch-batched pair entry or — for elements this
	// instance's own finalizes just wrote — a residual direct send.
	for len(b.exSlots) < len(executors) {
		b.exSlots = append(b.exSlots, nil)
	}
	for xi := range executors {
		b.exSlots[xi] = b.exSlots[xi][:0]
	}
	for _, sh := range b.ships {
		b.ns.timeline = append(b.ns.timeline, top{kind: tXfer, a: sh.src, b: sh.ex})
		xi := indexOf(executors, int(sh.ex))
		if b.written[sh.e] {
			b.cur[sh.src] = append(b.cur[sh.src], pinstr{op: opSendDirect, dst: sh.ex, elem: sh.e})
			b.exSlots[xi] = append(b.exSlots[xi], slot{src: sh.src, elem: sh.e, direct: true})
		} else {
			k := pairKey(sh.src, sh.ex)
			if b.s.collective {
				m := b.seen[sh.e]
				if m == nil {
					m = make(map[int64]bool)
					b.seen[sh.e] = m
				}
				if !m[k] {
					m[k] = true
					b.pairs[k] = append(b.pairs[k], sh.e)
				}
			} else {
				b.pairs[k] = append(b.pairs[k], sh.e)
			}
			b.exSlots[xi] = append(b.exSlots[xi], slot{src: sh.src, elem: sh.e})
		}
	}

	env := make([]int32, stmt.Depth)
	for k := 0; k < stmt.Depth; k++ {
		env[k] = int32(b.env[b.ns.loopIdx[k]])
	}

	if stmt.Reduce {
		// Record the contributor; only it evaluates (into its partial
		// store), but every executor still receives its shipped
		// operands, exactly like the per-element engine.
		contrib := executors[0]
		list := b.pending[lhsElem]
		if len(list) == 0 || !contains(list, contrib) {
			b.pending[lhsElem] = insertSorted(list, contrib)
			b.pendIdx[lhsElem] = append([]int(nil), b.lhsIdx...)
		}
		for xi, ex := range executors {
			if ex == contrib {
				b.cur[ex] = append(b.cur[ex], pinstr{
					op: opEval, role: roleReduce, stmt: int32(si), elem: lhsElem,
					env: env, slots: copySlots(b.exSlots[xi]),
				})
			} else if len(b.exSlots[xi]) > 0 {
				b.cur[ex] = append(b.cur[ex], pinstr{
					op: opEval, role: roleRecvOnly, slots: copySlots(b.exSlots[xi]),
				})
			}
		}
		b.ns.timeline = append(b.ns.timeline, top{kind: tCompute, a: int32(contrib), b: int32(stmt.Flops)})
		return
	}

	for xi, ex := range executors {
		b.cur[ex] = append(b.cur[ex], pinstr{
			op: opEval, role: roleWrite, stmt: int32(si), elem: lhsElem,
			env: env, slots: copySlots(b.exSlots[xi]),
		})
		b.ns.timeline = append(b.ns.timeline, top{kind: tCompute, a: int32(ex), b: int32(stmt.Flops)})
	}
	b.written[lhsElem] = true
	delete(b.seen, lhsElem)
}

// recordFinalize pops a pending reduction and records everything the
// combine means for the NAIVE model — the per-element star's timeline
// events (contributors send partials to the accumulator's first owner,
// which folds them in contributor order and redistributes the total to
// the other owners), the liveness site, and the written mark — without
// choosing a transport lowering. replayStats stays bit-identical to
// RunExact no matter how the value pass actually moves the partials.
func (b *nestBuilder) recordFinalize(e elemID) *finOp {
	contribs := b.pending[e]
	idx := b.pendIdx[e]
	delete(b.pending, e)
	delete(b.pendIdx, e)
	name, _ := b.s.decode(e)
	owners := b.s.ownersOf(e, name, idx)
	root := owners[0]

	for _, c := range contribs {
		if c != root {
			b.ns.timeline = append(b.ns.timeline, top{kind: tXfer, a: int32(c), b: int32(root)})
		}
		b.ns.timeline = append(b.ns.timeline, top{kind: tCompute, a: int32(root), b: 1})
	}
	for _, o := range owners {
		if o != root {
			b.ns.timeline = append(b.ns.timeline, top{kind: tXfer, a: int32(root), b: int32(o)})
		}
	}

	f := &finOp{elem: e, contribs: contribs, owners: owners, root: root}
	if b.s.pipeline {
		b.s.noteFinalize(e, f)
	}
	b.written[e] = true
	delete(b.seen, e)
	return f
}

// emitFinalize lowers one finalize as the legacy per-element star
// (pipeline off): partials converge on the root one message each, the
// total fans out to every other owner.
func (b *nestBuilder) emitFinalize(e elemID) {
	f := b.recordFinalize(e)
	in := pinstr{op: opFin, fin: f}
	b.cur[f.root] = append(b.cur[f.root], in)
	for _, c := range f.contribs {
		if c != f.root {
			b.cur[c] = append(b.cur[c], in)
		}
	}
	for _, o := range f.owners {
		if o != f.root && !contains(f.contribs, o) {
			b.cur[o] = append(b.cur[o], in)
		}
	}
}

// emitBatch lowers a batch of finalizes. Pipeline off, each is a
// per-element star. Pipeline on, the batch becomes one vectored
// exchange: ring-lowered when mid-epoch and the items share one
// root-anchored contributor chain (the Section 5 accumulate-then-sweep
// shape — SOR), two-phase gather + fan-out otherwise. The opRed
// instruction goes to every processor that could participate (roots,
// contributors, owners); runtime roles are derived from the items, so
// non-participants fall through without touching the wire.
func (b *nestBuilder) emitBatch(elems []elemID, mid bool) {
	if len(elems) == 0 {
		return
	}
	if !b.s.pipeline {
		for _, e := range elems {
			b.emitFinalize(e)
		}
		return
	}
	items := make([]*finOp, len(elems))
	for i, e := range elems {
		items[i] = b.recordFinalize(e)
	}
	r := &redOp{items: items, ring: mid && ringEligible(items)}
	var parts []int
	for _, f := range items {
		for _, p := range f.contribs {
			if !contains(parts, p) {
				parts = insertSorted(parts, p)
			}
		}
		for _, p := range f.owners {
			if !contains(parts, p) {
				parts = insertSorted(parts, p)
			}
		}
	}
	in := pinstr{op: opRed, red: r}
	for _, p := range parts {
		b.cur[p] = append(b.cur[p], in)
	}
}

func containsElem(xs []elemID, v elemID) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// closeEpoch freezes the current epoch: the accumulated pair traffic
// is lowered to its transport (the point-to-point vectored flush, or
// the composed collective redistribution) and prepended to the epoch
// instructions, and the written set resets.
func (b *nestBuilder) closeEpoch() {
	if len(b.pairs) > 0 {
		if b.s.collective {
			b.lowerCollective()
		} else {
			b.lowerPairFlush()
		}
		b.pairs = make(map[int64][]elemID)
	}
	for p := range b.cur {
		b.ns.procs[p] = append(b.ns.procs[p], b.cur[p]...)
		b.cur[p] = nil
	}
	for e := range b.written {
		delete(b.written, e)
	}
}

// lowerPairFlush is the point-to-point lowering: every processor's
// vectored exchange (sends in ascending destination order, then
// receives in ascending source order). At most one message crosses
// each ordered pair per epoch and every processor sends before it
// receives, which is what makes the value pass deadlock-free at
// ChanCap=1.
func (b *nestBuilder) lowerPairFlush() {
	keys := make([]int64, 0, len(b.pairs))
	for k := range b.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	flushes := make(map[int32]*flushOp)
	get := func(p int32) *flushOp {
		f := flushes[p]
		if f == nil {
			f = &flushOp{}
			flushes[p] = f
		}
		return f
	}
	// keys sorted by (src, dst): per-src send lists come out in
	// ascending destination order.
	for _, k := range keys {
		src, dst := int32(k>>32), int32(k&0xffffffff)
		get(src).sends = append(get(src).sends, flushSend{dst: dst, elems: b.pairs[k]})
	}
	// Receive lists in ascending source order.
	sort.Slice(keys, func(i, j int) bool {
		di, dj := keys[i]&0xffffffff, keys[j]&0xffffffff
		if di != dj {
			return di < dj
		}
		return keys[i]>>32 < keys[j]>>32
	})
	for _, k := range keys {
		src, dst := int32(k>>32), int32(k&0xffffffff)
		get(dst).recvs = append(get(dst).recvs, flushRecv{src: src, n: len(b.pairs[k])})
	}
	for p, f := range flushes {
		b.cur[p] = append([]pinstr{{op: opFlush, flush: f}}, b.cur[p]...)
	}
}

// lowerCollective composes the epoch's traffic into a collective
// redistribution plan. Per source, each (already deduped) element's
// destination set is classified: multi-destination elements group by
// identical destination set and each group becomes a binomial
// multicast-tree step rooted at the source (the tree moves the group
// in log2(W+1) rounds and every edge carries the group once — the
// same total words as the deduped star, with the source's send load
// spread over the relays); single-destination elements remain a
// vectored pair exchange, appended as the final round. Tree edges of
// all steps with the same stride execute in the same round, merged
// into one message per ordered pair, so every round keeps the
// one-message-per-pair sends-before-receives shape that the
// point-to-point flush relies on for ChanCap=1 deadlock freedom.
func (b *nestBuilder) lowerCollective() {
	keys := make([]int64, 0, len(b.pairs))
	for k := range b.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Per source (ascending): each element's destination set, destinations
	// ascending, elements in first-ship order.
	type stepT struct {
		origin  int32
		members []int32 // origin + destinations, ascending
		rootPos int     // origin's index in members
		elems   []elemID
	}
	var steps []stepT
	residual := make(map[int64][]elemID)
	destsOf := make(map[elemID][]int32)
	var order []elemID
	var sig []byte
	for i := 0; i < len(keys); {
		src := int32(keys[i] >> 32)
		for e := range destsOf {
			delete(destsOf, e)
		}
		order = order[:0]
		for ; i < len(keys) && int32(keys[i]>>32) == src; i++ {
			dst := int32(keys[i] & 0xffffffff)
			for _, e := range b.pairs[keys[i]] {
				if destsOf[e] == nil {
					order = append(order, e)
				}
				destsOf[e] = append(destsOf[e], dst)
			}
		}
		groupIdx := make(map[string]int)
		for _, e := range order {
			dests := destsOf[e]
			if len(dests) == 1 {
				k := pairKey(src, dests[0])
				residual[k] = append(residual[k], e)
				continue
			}
			sig = sig[:0]
			for _, d := range dests {
				sig = append(sig, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
			}
			gi, ok := groupIdx[string(sig)]
			if !ok {
				members := make([]int32, len(dests), len(dests)+1)
				copy(members, dests)
				pos := len(members)
				for j, m := range members {
					if src < m {
						pos = j
						break
					}
				}
				members = append(members, 0)
				copy(members[pos+1:], members[pos:])
				members[pos] = src
				gi = len(steps)
				groupIdx[string(sig)] = gi
				steps = append(steps, stepT{origin: src, members: members, rootPos: pos})
			}
			steps[gi].elems = append(steps[gi].elems, e)
		}
	}

	// Round r moves every step's tree edges of stride 2^r, merged into
	// one message per ordered pair (segments in step order, identically
	// derived on both endpoints); the residual traffic is the last round.
	maxRounds := 0
	for _, st := range steps {
		d := 0
		for 1<<d < len(st.members) {
			d++
		}
		if d > maxRounds {
			maxRounds = d
		}
	}
	rounds := make([]map[int64][]redistSeg, 0, maxRounds+1)
	for r := 0; r < maxRounds; r++ {
		stride := 1 << r
		m := make(map[int64][]redistSeg)
		for si := range steps {
			st := &steps[si]
			n := len(st.members)
			for rel := 0; rel < stride && rel+stride < n; rel++ {
				snd := st.members[(st.rootPos+rel)%n]
				rcv := st.members[(st.rootPos+rel+stride)%n]
				k := pairKey(snd, rcv)
				m[k] = append(m[k], redistSeg{origin: st.origin, elems: st.elems})
			}
		}
		rounds = append(rounds, m)
	}
	if len(residual) > 0 {
		m := make(map[int64][]redistSeg)
		for k, elems := range residual {
			m[k] = []redistSeg{{origin: int32(k >> 32), elems: elems}}
		}
		rounds = append(rounds, m)
	}

	// Materialize per-processor round schedules: sends in ascending
	// destination order, then receives in ascending source order.
	ops := make(map[int32]*redistOp)
	get := func(p int32) *redistOp {
		op := ops[p]
		if op == nil {
			op = &redistOp{rounds: make([]redistRound, len(rounds))}
			ops[p] = op
		}
		return op
	}
	ks := make([]int64, 0, 16)
	for r, m := range rounds {
		ks = ks[:0]
		for k := range m {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for _, k := range ks {
			snd, rcv := int32(k>>32), int32(k&0xffffffff)
			op := get(snd)
			op.rounds[r].sends = append(op.rounds[r].sends, redistMsg{peer: rcv, segs: m[k]})
		}
		sort.Slice(ks, func(i, j int) bool {
			di, dj := ks[i]&0xffffffff, ks[j]&0xffffffff
			if di != dj {
				return di < dj
			}
			return ks[i]>>32 < ks[j]>>32
		})
		for _, k := range ks {
			snd, rcv := int32(k>>32), int32(k&0xffffffff)
			op := get(rcv)
			op.rounds[r].recvs = append(op.rounds[r].recvs, redistMsg{peer: snd, segs: m[k]})
		}
	}
	for p, op := range ops {
		b.cur[p] = append([]pinstr{{op: opRedist, redist: op}}, b.cur[p]...)
	}
}

// replayStats re-derives the per-element engine's Stats by replaying
// the timeline single-threadedly. Every clock update mirrors
// machine.Compute / machine.Send / machine.Recv expression for
// expression (one-word messages), so the result — including trace
// events — is bit-identical to what RunExact's machine produces.
func (s *progSchedule) replayStats(iters int, cfg machine.Config) machine.Stats {
	n := s.nprocs
	clock := make([]float64, n)
	flops := make([]int64, n)
	msgs := make([]int64, n)
	words := make([]int64, n)
	maxw := make([]int64, n)
	// Per-pair counters use the same sparse machine.PairTally as both
	// runtimes, so the ProcStats snapshots DeepEqual the oracle's.
	pairs := make([]machine.PairTally, n)
	tr := cfg.Tracer
	for it := 0; it < iters; it++ {
		for _, ns := range s.nests {
			for _, op := range ns.timeline {
				switch op.kind {
				case tCompute:
					p, f := op.a, op.b
					flops[p] += int64(f)
					before := clock[p]
					clock[p] += float64(f) * cfg.Tf
					if tr != nil && clock[p] > before {
						tr.Record(machine.Event{Proc: int(p), Kind: machine.EvCompute, Start: before, End: clock[p], Peer: -1})
					}
				case tXfer:
					src, dst := op.a, op.b
					before := clock[src]
					var arrival float64
					clock[src], arrival = cfg.SendTiming(clock[src], 1)
					msgs[src]++
					words[src]++
					if maxw[src] < 1 {
						maxw[src] = 1
					}
					pairs[src].Note(int(dst), 1)
					if tr != nil && arrival > before {
						tr.Record(machine.Event{Proc: int(src), Kind: machine.EvSend, Start: before, End: arrival, Peer: int(dst), Words: 1})
					}
					if arrival > clock[dst] {
						if tr != nil {
							tr.Record(machine.Event{Proc: int(dst), Kind: machine.EvWait, Start: clock[dst], End: arrival, Peer: int(src)})
						}
						clock[dst] = arrival
					}
				}
			}
		}
	}
	var st machine.Stats
	st.PerProc = make([]machine.ProcStats, n)
	for r := 0; r < n; r++ {
		st.PerProc[r] = machine.ProcStats{Clock: clock[r], Flops: flops[r], Messages: msgs[r], Words: words[r], MaxMsgWords: maxw[r],
			Peers: pairs[r].Snapshot()}
		st.AddProc(st.PerProc[r])
	}
	return st
}

func evalSubs(dst []int, subs []ir.Affine, env map[string]int) []int {
	for _, su := range subs {
		dst = append(dst, su.Eval(env))
	}
	return dst
}

func copySlots(s []slot) []slot {
	if len(s) == 0 {
		return nil
	}
	return append([]slot(nil), s...)
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
