package exec

import (
	"testing"

	"dmcc/internal/core"
	"dmcc/internal/cost"
	"dmcc/internal/ir"
	"dmcc/internal/kernels"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// wholeProgramSchemes compiles the program and returns the single-scheme
// set for the full nest sequence.
func wholeProgramSchemes(t *testing.T, p *ir.Program, m, n int) *core.SchemeSet {
	t.Helper()
	c := core.NewCompiler(p, cost.Unit(), map[string]int{"m": m}, n)
	_, ss, err := c.SegmentCost(1, len(p.Nests))
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func loadLinearSystem(p *ir.Program, a *matrix.Dense, b, x0 []float64) ir.Storage {
	st := ir.NewStorage(p)
	m := a.Rows
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("A", []int{i, j}, a.At(i-1, j-1))
		}
		st.Store("B", []int{i}, b[i-1])
		if x0 != nil {
			st.Store("X", []int{i}, x0[i-1])
		}
	}
	return st
}

func extractX(st ir.Storage, m int) []float64 {
	x := make([]float64, m)
	for i := 1; i <= m; i++ {
		x[i-1] = st.Load(ir.R("X", ir.Const(i)), []int{i})
	}
	return x
}

// TestExecJacobi: the executed program matches the sequential reference
// under the compiler-chosen schemes, for several processor counts.
func TestExecJacobi(t *testing.T) {
	m, iters := 16, 5
	a, b, _ := matrix.DiagonallyDominant(m, 301)
	x0 := make([]float64, m)
	p := ir.Jacobi()
	want := matrix.JacobiSeq(a, b, x0, iters)
	for _, n := range []int{1, 2, 4} {
		ss := wholeProgramSchemes(t, p, m, n)
		res, err := Run(p, ss, map[string]int{"m": m}, nil, iters, machine.DefaultConfig(),
			loadLinearSystem(p, a, b, x0))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(extractX(res.Values, m), want); d > 1e-9 {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

// TestExecSOR: the interleaved reduce/update semantics survive parallel
// execution — SOR's Gauss-Seidel ordering is preserved by the
// finalize-on-read rule.
func TestExecSOR(t *testing.T) {
	m, iters, omega := 12, 4, 1.2
	a, b, _ := matrix.DiagonallyDominant(m, 307)
	x0 := make([]float64, m)
	p := ir.SOR()
	want := matrix.SORSeq(a, b, x0, omega, iters)
	for _, n := range []int{1, 2, 4} {
		ss := wholeProgramSchemes(t, p, m, n)
		res, err := Run(p, ss, map[string]int{"m": m}, map[string]float64{"OMEGA": omega},
			iters, machine.DefaultConfig(), loadLinearSystem(p, a, b, x0))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(extractX(res.Values, m), want); d > 1e-9 {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

// TestExecGauss: the full three-nest Gauss program — including the
// in-nest pivot-row flow handled by per-element transfers — matches the
// sequential solver.
func TestExecGauss(t *testing.T) {
	m := 12
	a, b, _ := matrix.DiagonallyDominant(m, 311)
	p := ir.Gauss()
	want := matrix.GaussSeq(a, b)
	for _, n := range []int{1, 2, 3} {
		ss := wholeProgramSchemes(t, p, m, n)
		res, err := Run(p, ss, map[string]int{"m": m}, nil, 1, machine.DefaultConfig(),
			loadLinearSystem(p, a, b, nil))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := matrix.MaxAbsDiff(extractX(res.Values, m), want); d > 1e-9 {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

// TestExecNaiveCostExceedsPipelinedKernel: the point of Sections 5-6,
// measured end to end — the naive backend's simulated makespan is far
// above the hand-pipelined kernel computing the same values.
func TestExecNaiveCostExceedsPipelinedKernel(t *testing.T) {
	m, n := 32, 4
	a, b, _ := matrix.DiagonallyDominant(m, 313)
	p := ir.Gauss()
	ss := wholeProgramSchemes(t, p, m, n)
	res, err := Run(p, ss, map[string]int{"m": m}, nil, 1, machine.DefaultConfig(),
		loadLinearSystem(p, a, b, nil))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := kernels.GaussPipelined(machine.DefaultConfig(), a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(extractX(res.Values, m), pp.X); d > 1e-9 {
		t.Fatalf("naive and pipelined disagree by %v", d)
	}
	if res.Stats.ParallelTime < 1.5*pp.Stats.ParallelTime {
		t.Errorf("naive makespan %v not well above pipelined %v",
			res.Stats.ParallelTime, pp.Stats.ParallelTime)
	}
	t.Logf("naive backend %v vs pipelined kernel %v (%.1fx)",
		res.Stats.ParallelTime, pp.Stats.ParallelTime,
		res.Stats.ParallelTime/pp.Stats.ParallelTime)
}

// TestExecCannon: the matmul IR executes correctly on a 2x2 grid.
func TestExecCannon(t *testing.T) {
	m := 8
	bm := matrix.RandomDense(m, m, 317)
	cm := matrix.RandomDense(m, m, 331)
	p := ir.Cannon()
	st := ir.NewStorage(p)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			st.Store("B", []int{i, j}, bm.At(i-1, j-1))
			st.Store("C", []int{i, j}, cm.At(i-1, j-1))
		}
	}
	ss := wholeProgramSchemes(t, p, m, 4)
	res, err := Run(p, ss, map[string]int{"m": m}, nil, 1, machine.DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	want := bm.Mul(cm)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			got := res.Values.Load(ir.R("A", ir.Const(i), ir.Const(j)), []int{i, j})
			if diff := got - want.At(i-1, j-1); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("A(%d,%d) = %v, want %v", i, j, got, want.At(i-1, j-1))
			}
		}
	}
}

func TestExecValidation(t *testing.T) {
	p := ir.Jacobi()
	ss := wholeProgramSchemes(t, p, 8, 2)
	// Missing scheme.
	ssCopy := &core.SchemeSet{Grid: ss.Grid, Schemes: nil}
	if _, err := Run(p, ssCopy, map[string]int{"m": 8}, nil, 1, machine.DefaultConfig(), ir.NewStorage(p)); err == nil {
		t.Fatal("missing schemes accepted")
	}
	// Statement without RHS but with flops.
	p2 := ir.Jacobi()
	p2.Nests[0].Stmts[1].RHS = nil
	if _, err := Run(p2, ss, map[string]int{"m": 8}, nil, 1, machine.DefaultConfig(), ir.NewStorage(p2)); err == nil {
		t.Fatal("missing RHS accepted")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, idx := range [][]int{{1}, {3, 7}, {12, 1}, {0, 5}} {
		key := pkey("A", idx)
		arr, got := splitKey(key)
		if arr != "A" || len(got) != len(idx) {
			t.Fatalf("split(%q) = %s, %v", key, arr, got)
		}
		for i := range idx {
			if got[i] != idx[i] {
				t.Fatalf("split(%q) = %v", key, got)
			}
		}
	}
}
