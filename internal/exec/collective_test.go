// Collective-redistribution transport properties: the headline gauss
// word drop (ISSUE 7's acceptance bar), and the fuzzed guarantee that
// the collective lowering never ships more words than the
// point-to-point exchange while reproducing its values and naive
// stats exactly.

package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dmcc/internal/ir"
	"dmcc/internal/machine"
	"dmcc/internal/matrix"
)

// TestCollectiveGaussWordDrop: at m=64 on 16 processors the composed
// collective transport must move at least 5x fewer words than the
// point-to-point exchange (144150 words at the seed; the bar is
// 28830), while staying bit-identical to RunExact on values and naive
// stats and never exceeding the naive transport (only-drop).
func TestCollectiveGaussWordDrop(t *testing.T) {
	const m, n = 64, 16
	p := ir.Gauss()
	a, bvec, _ := matrix.DiagonallyDominant(m, 401)
	input := loadLinearSystem(p, a, bvec, nil)
	ss := wholeProgramSchemes(t, p, m, n)
	bind := map[string]int{"m": m}
	cfg := machine.DefaultConfig()

	coll, err := RunOpts(p, ss, bind, nil, 1, cfg, input, Options{Redist: RedistCollective})
	if err != nil {
		t.Fatalf("collective: %v", err)
	}
	p2p, err := RunOpts(p, ss, bind, nil, 1, cfg, input, Options{Redist: RedistP2P})
	if err != nil {
		t.Fatalf("p2p: %v", err)
	}
	want, err := RunExact(p, ss, bind, nil, 1, exactCfg(cfg, m), input)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	requireIdentical(t, "gauss collective", coll, want)
	requireIdentical(t, "gauss p2p", p2p, want)

	if p2p.Transport.Words < 5*coll.Transport.Words {
		t.Errorf("collective words %d not a 5x drop from p2p words %d",
			coll.Transport.Words, p2p.Transport.Words)
	}
	if coll.Transport.Words > 28830 {
		t.Errorf("collective transport moved %d words, acceptance bar is 28830", coll.Transport.Words)
	}
	if coll.Transport.Messages > p2p.Transport.Messages {
		t.Errorf("collective transport sent %d messages, p2p only %d",
			coll.Transport.Messages, p2p.Transport.Messages)
	}
}

// TestCollectiveMatchesP2PFuzz: on random reduce programs at ChanCap=1,
// the collective and point-to-point lowerings produce byte-identical
// values and naive stats, and the collective transport never carries
// more words (dedup and trees only ever shed traffic).
func TestCollectiveMatchesP2PFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const m = 8
	tight := machine.DefaultConfig()
	tight.ChanCap = 1
	for trial := 0; trial < 20; trial++ {
		p := randomReduceProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		input := ir.NewStorage(p)
		for name, arr := range p.Arrays {
			if arr.Rank() == 1 {
				for i := 1; i <= m; i++ {
					input.Store(name, []int{i}, rng.Float64()*2-1)
				}
			} else {
				for i := 1; i <= m; i++ {
					for j := 1; j <= m; j++ {
						input.Store(name, []int{i, j}, rng.Float64()*2-1)
					}
				}
			}
		}
		iters := 1 + rng.Intn(2)
		for _, n := range []int{2, 4} {
			ss := fuzzSchemes(t, p, m, n)
			if ss == nil {
				continue
			}
			bind := map[string]int{"m": m}
			label := fmt.Sprintf("trial %d n=%d", trial, n)
			coll, err := RunOpts(p, ss, bind, nil, iters, tight, input, Options{Redist: RedistCollective})
			if err != nil {
				t.Fatalf("%s: collective: %v", label, err)
			}
			p2p, err := RunOpts(p, ss, bind, nil, iters, tight, input, Options{Redist: RedistP2P})
			if err != nil {
				t.Fatalf("%s: p2p: %v", label, err)
			}
			if !reflect.DeepEqual(coll.Values, p2p.Values) {
				t.Fatalf("%s: collective values differ from p2p", label)
			}
			if !reflect.DeepEqual(coll.Stats, p2p.Stats) {
				t.Fatalf("%s: collective naive stats differ from p2p", label)
			}
			if coll.Transport.Words > p2p.Transport.Words {
				t.Fatalf("%s: collective transport carried %d words, p2p only %d",
					label, coll.Transport.Words, p2p.Transport.Words)
			}
		}
	}
}
