package exec

import (
	"sort"
	"strconv"
	"strings"

	"dmcc/internal/ir"
)

// pkey renders an array element as its canonical "arr!i,j" key — the
// subscript part is exactly the key ir.Storage uses within an array map.
// These strings survive only at the ir.Storage boundary and in reduction
// bookkeeping; the batched engine's hot path works on integer element
// offsets (see schedule.go).
func pkey(arr string, idx []int) string {
	var b strings.Builder
	b.Grow(len(arr) + 1 + 4*len(idx))
	b.WriteString(arr)
	b.WriteByte('!')
	b.WriteString(subKey(idx))
	return b.String()
}

// subKey renders a subscript list the way ir.Storage keys elements.
func subKey(idx []int) string {
	var b strings.Builder
	for i, v := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// parseKey parses a comma-separated subscript list ("3,-1,12") back into
// indices. Every component must be a canonical base-10 integer — exactly
// what subKey/ir.Storage emit — so parseKey(subKey(idx)) round-trips and
// subKey(parseKey(key)) == key. A malformed key (stray bytes, empty
// components, non-canonical digits) panics naming the key instead of
// silently folding garbage into the subscripts.
func parseKey(key string) []int {
	idx, ok := tryParseKey(key)
	if !ok {
		panic("exec: malformed element key " + strconv.Quote(key))
	}
	return idx
}

func tryParseKey(key string) ([]int, bool) {
	if key == "" {
		return nil, true
	}
	parts := strings.Split(key, ",")
	idx := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || strconv.Itoa(v) != p {
			return nil, false
		}
		idx[i] = v
	}
	return idx, true
}

// splitKey splits "arr!1,2" into the array name and parsed subscripts,
// panicking (with the key named) when the array part is missing or the
// subscripts are malformed.
func splitKey(key string) (string, []int) {
	for i := 0; i < len(key); i++ {
		if key[i] == '!' {
			if i == 0 {
				break
			}
			return key[:i], parseKey(key[i+1:])
		}
	}
	panic("exec: malformed element key " + strconv.Quote(key))
}

// anchorOf picks the reduction anchor read (most distinct subscript
// variables, excluding the accumulator), mirroring cost.CountNest.
func anchorOf(stmt *ir.Stmt) int {
	best, bestVars := -1, -1
	for i, rd := range stmt.Reads {
		if rd.Array == stmt.LHS.Array {
			continue
		}
		vars := map[string]bool{}
		for _, s := range rd.Subs {
			for _, v := range s.Vars() {
				vars[v] = true
			}
		}
		if len(vars) > bestVars {
			best, bestVars = i, len(vars)
		}
	}
	return best
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
