package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"dmcc/internal/align"
	"dmcc/internal/core"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// randomProgram builds a random but valid IR program: 1-3 nests over 2-3
// arrays, identity or +-1 subscripts (bounds keep them in range), and
// division-free RHS trees so no NaN can appear.
func randomProgram(rng *rand.Rand) *ir.Program {
	m := ir.V("m")
	names := []string{"P", "Q", "R"}[:2+rng.Intn(2)]
	p := &ir.Program{
		Name:      "fuzz",
		Iterative: rng.Intn(2) == 0,
		Params:    []string{"m"},
		Arrays:    map[string]*ir.Array{},
	}
	ranks := map[string]int{}
	for _, n := range names {
		rank := 1 + rng.Intn(2)
		ranks[n] = rank
		ext := make([]ir.Affine, rank)
		for i := range ext {
			ext[i] = m
		}
		p.Arrays[n] = &ir.Array{Name: n, Extents: ext}
	}

	subFor := func(idxVars []string, k int) ir.Affine {
		v := idxVars[k%len(idxVars)]
		switch rng.Intn(3) {
		case 0:
			return ir.V(v)
		case 1:
			return ir.V(v).PlusConst(-1)
		default:
			return ir.V(v).PlusConst(1)
		}
	}
	refFor := func(arr string, idxVars []string) ir.Ref {
		subs := make([]ir.Affine, ranks[arr])
		for k := range subs {
			subs[k] = subFor(idxVars, k+rng.Intn(2))
		}
		return ir.Ref{Array: arr, Subs: subs}
	}

	nNests := 1 + rng.Intn(3)
	for t := 0; t < nNests; t++ {
		depth := 1 + rng.Intn(2)
		idxVars := []string{"i", "j"}[:depth]
		nest := &ir.Nest{Label: fmt.Sprintf("N%d", t+1)}
		for d := 0; d < depth; d++ {
			// Bounds 2..m-1 keep +-1 subscripts legal.
			nest.Loops = append(nest.Loops, ir.Loop{
				Index: idxVars[d], Lo: ir.Const(2), Hi: m.PlusConst(-1), Step: 1,
			})
		}
		nStmts := 1 + rng.Intn(2)
		for s := 0; s < nStmts; s++ {
			lhsArr := names[rng.Intn(len(names))]
			// The LHS uses identity subscripts so owner-computes is clean.
			lhsSubs := make([]ir.Affine, ranks[lhsArr])
			for k := range lhsSubs {
				lhsSubs[k] = ir.V(idxVars[k%len(idxVars)])
			}
			lhs := ir.Ref{Array: lhsArr, Subs: lhsSubs}
			// RHS: a small sum/product tree over random refs and constants;
			// no division, coefficients shrink values to avoid overflow.
			r1 := refFor(names[rng.Intn(len(names))], idxVars)
			r2 := refFor(names[rng.Intn(len(names))], idxVars)
			var rhs ir.Expr
			switch rng.Intn(3) {
			case 0:
				rhs = ir.Add(ir.MulE(ir.Num(0.5), ir.Rd(r1)), ir.MulE(ir.Num(0.25), ir.Rd(r2)))
			case 1:
				rhs = ir.Sub(ir.Rd(r1), ir.MulE(ir.Num(0.5), ir.Rd(r2)))
			default:
				rhs = ir.Add(ir.MulE(ir.Num(0.5), ir.Rd(lhs)), ir.MulE(ir.Num(0.125), ir.Rd(r1)))
			}
			reads := ir.ExprReads(rhs)
			nest.Stmts = append(nest.Stmts, &ir.Stmt{
				Line:  10*t + s + 1,
				Depth: depth,
				LHS:   lhs,
				Reads: reads,
				RHS:   rhs,
				Flops: ir.ExprFlops(rhs),
				Text:  fmt.Sprintf("%s = %s", lhs, rhs),
			})
		}
		p.Nests = append(p.Nests, nest)
	}
	return p
}

// TestExecDifferentialFuzz: for random programs, random schemes (via the
// compiler) and random inputs, the parallel naive backend agrees with the
// sequential interpreter on every processor count.
func TestExecDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	const m = 8
	for trial := 0; trial < 25; trial++ {
		p := randomProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		// Random inputs.
		input := ir.NewStorage(p)
		for name, arr := range p.Arrays {
			if arr.Rank() == 1 {
				for i := 1; i <= m; i++ {
					input.Store(name, []int{i}, rng.Float64()*2-1)
				}
			} else {
				for i := 1; i <= m; i++ {
					for j := 1; j <= m; j++ {
						input.Store(name, []int{i, j}, rng.Float64()*2-1)
					}
				}
			}
		}
		iters := 1 + rng.Intn(2)

		// Sequential reference on a deep copy.
		ref := ir.NewStorage(p)
		for name, elems := range input {
			for k, v := range elems {
				ref[name][k] = v
			}
		}
		if err := ir.EvalProgram(p, map[string]int{"m": m}, ref, nil, iters); err != nil {
			t.Fatalf("trial %d: sequential eval: %v", trial, err)
		}

		for _, n := range []int{1, 2, 4} {
			ss := fuzzSchemes(t, p, m, n)
			if ss == nil {
				continue
			}
			res, err := Run(p, ss, map[string]int{"m": m}, nil, iters, machine.DefaultConfig(), input)
			if err != nil {
				t.Fatalf("trial %d n=%d: %v", trial, n, err)
			}
			for name, elems := range ref {
				for k, want := range elems {
					got := res.Values[name][k]
					if d := got - want; d > 1e-9 || d < -1e-9 {
						t.Fatalf("trial %d n=%d: %s[%s] = %v, want %v\nprogram nests=%d",
							trial, n, name, k, got, want, len(p.Nests))
					}
				}
			}
		}
	}
}

func fuzzSchemes(t *testing.T, p *ir.Program, m, n int) *core.SchemeSet {
	t.Helper()
	g, err := align.BuildGraph(p, p.Nests, align.WeightParams{Bind: map[string]int{"m": m}, N: n, Tc: 1})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := align.ExactAlign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.DeriveSchemes(p, pt, [2]int{n, 1}, map[string]int{"m": m}, false)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}
