// Package exec is the straightforward compiler backend: it executes any
// IR program directly on the simulated machine under a set of
// distribution schemes, using the owner-computes rule, per-element
// Transfers for remote operands, and per-element Reductions for
// travelling accumulators.
//
// This is precisely the "naive" compilation the paper warns about — "A
// naive compiler may generate a lot of OneToManyMulticast operations ...
// It will certainly incur excessive communication overhead" (Section 6)
// — made executable. The naive COST MODEL is preserved exactly: Run
// reports the simulated clocks, message counts and trace of an engine
// that walks the full iteration space in lockstep on every processor
// and ships every remote operand as its own one-word message
// (RunExact, kept as the oracle). The TRANSPORT, however, is batched:
// an inspector pass (schedule.go) walks each nest once per (nest,
// env-binding), precomputes per processor pair the ordered element list
// crossing the wire, and the executor (executor.go) moves each pair's
// epoch traffic as one vectored Send. That makes Run deadlock-free at
// ChanCap=1 by construction — the old minExecChanCap floor that pinned
// every channel at 4096 words is gone, and Config.ChanCap is a genuine
// backpressure knob again — while Result.Values and Result.Stats stay
// byte-identical to RunExact.
//
// Reductions are handled the way a dataflow-correct naive backend must:
// partial sums accumulate at the owners of the anchoring operand and are
// combined at the accumulator's owner the moment any later statement
// reads it (or at nest end), which preserves even SOR's interleaved
// update semantics.
package exec

import (
	"fmt"
	"time"

	"dmcc/internal/core"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// Result is the outcome of an execution.
type Result struct {
	// Values is the final global state of every array.
	Values ir.Storage
	// Stats is the naive cost model's outcome: the simulated clocks,
	// flop/message/word counts (and trace events) of the per-element
	// lockstep engine, identical between Run and RunExact.
	Stats machine.Stats
	// Transport is what actually crossed the simulated wire: for Run,
	// the batched engine's vectored exchanges (far fewer messages,
	// never more words — the pruned reduction fan-out can drop words a
	// non-reader owner would have received — MaxMsgWords up to a full
	// epoch block); for RunExact it equals Stats.
	Transport machine.Stats
	// SimWall is the wall-clock time of the engine-dependent phase —
	// constructing the transport machine and running the schedules on it
	// — excluding schedule building, stats replay and result assembly,
	// which are identical across engines. The scale sweep reports it as
	// the engines' like-for-like wall-clock comparison.
	SimWall time.Duration
}

// Engine selects the runtime that moves the batched transport.
type Engine int

const (
	// EngineAuto picks the discrete-event runtime unless a
	// TransportTracer is attached (trace consumers keep the goroutine
	// runtime, whose live interleaving is what the traces depict).
	EngineAuto Engine = iota
	// EngineEvents is the discrete-event runtime (machine.EventMachine):
	// sparse per-pair queues, one runnable processor at a time, feasible
	// at N in the thousands. Stats and values are bit-identical to the
	// goroutine runtime.
	EngineEvents
	// EngineGoroutines is the live goroutine runtime (machine.Machine),
	// kept as the semantics oracle exactly like RunExact.
	EngineGoroutines
)

func (e Engine) String() string {
	switch e {
	case EngineEvents:
		return "events"
	case EngineGoroutines:
		return "goroutines"
	}
	return "auto"
}

// Redist selects the transport lowering for batched operand ships —
// the third schedule kind next to the vectored pair exchange and the
// two-phase / ring reduction exchange.
type Redist int

const (
	// RedistAuto (the zero value) resolves to RedistCollective.
	RedistAuto Redist = iota
	// RedistCollective lowers each epoch's operand traffic to a composed
	// collective plan: per-pair duplicate ships collapse to one copy
	// (value-safe — within an epoch no batched-shipped element is
	// written), elements bound for the same destination set travel a
	// binomial multicast tree instead of a star, and the remaining
	// single-destination traffic stays a vectored pair exchange. Values
	// and the naive Stats are identical to RedistP2P; only
	// Result.Transport changes (fewer words and messages).
	RedistCollective
	// RedistP2P keeps the original per-pair vectored exchange: every
	// ship travels point-to-point, duplicates included.
	RedistP2P
)

func (r Redist) String() string {
	switch r {
	case RedistCollective:
		return "collective"
	case RedistP2P:
		return "p2p"
	}
	return "auto"
}

// Options tune the batched engine's transport. The zero value is the
// default configuration: pipelined finalizes on, no transport tracer,
// automatic engine choice.
type Options struct {
	// NoPipeline disables the vectored two-phase / ring reduction
	// exchange, reverting every finalize to a per-element star (the
	// pre-pipelining transport). Values and the naive Stats are
	// identical either way; only Result.Transport changes.
	NoPipeline bool
	// TransportTracer, when non-nil, receives the batched transport's
	// own trace events — vectored sends, waits, and the
	// gather/fan-out/ring phase markers (machine.EvGather, EvFanout,
	// EvRing). This is distinct from cfg.Tracer, which traces the naive
	// per-element model that Stats describes.
	TransportTracer machine.Tracer
	// Engine picks the transport runtime; EngineAuto (the zero value)
	// selects events unless TransportTracer is set.
	Engine Engine
	// Redist picks the operand-ship lowering; RedistAuto (the zero
	// value) selects the collective redistribution schedule.
	Redist Redist
}

// validate performs the shared pre-flight checks of both engines.
func validate(p *ir.Program, ss *core.SchemeSet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, nest := range p.Nests {
		for _, st := range nest.Stmts {
			if st.RHS == nil && st.Flops > 0 {
				return fmt.Errorf("exec: statement at line %d has no executable RHS", st.Line)
			}
		}
	}
	for name := range p.Arrays {
		if _, ok := ss.Schemes[name]; !ok {
			return fmt.Errorf("exec: no scheme for array %s", name)
		}
	}
	return nil
}

// Run executes the program under the scheme set for the given number of
// outer iterations (ignored for non-iterative programs). input provides
// the initial array contents; scalars binds free scalar names.
//
// Communication is batched per (processor pair, epoch) via the
// inspector/executor schedule of schedule.go; Run works at any
// ChanCap >= 1. The reported Stats (and trace events, if cfg.Tracer is
// set) are the naive per-element model's, bit-identical to RunExact;
// the batched transport's own statistics are returned as
// Result.Transport.
func Run(p *ir.Program, ss *core.SchemeSet, bind map[string]int, scalars map[string]float64,
	iters int, cfg machine.Config, input ir.Storage) (Result, error) {
	return RunOpts(p, ss, bind, scalars, iters, cfg, input, Options{})
}

// RunOpts is Run with transport options.
func RunOpts(p *ir.Program, ss *core.SchemeSet, bind map[string]int, scalars map[string]float64,
	iters int, cfg machine.Config, input ir.Storage, opt Options) (Result, error) {

	if err := validate(p, ss); err != nil {
		return Result{}, err
	}
	if !p.Iterative {
		iters = 1
	}

	sched := buildSchedule(p, ss, bind, !opt.NoPipeline, opt.Redist != RedistP2P)
	nprocs := sched.nprocs

	// Value pass: the batched transport computes every array element.
	// cfg.Tracer is replaced by the (usually nil) transport tracer —
	// the naive-model replay below feeds cfg.Tracer, so its events
	// describe the per-element schedule the Stats describe.
	vcfg := cfg
	vcfg.Tracer = opt.TransportTracer
	stores := make([][][]float64, nprocs)
	marks := make([][][]bool, nprocs)
	loads := buildLoads(sched, input)
	body := func(proc machine.Port) {
		x := newValExec(sched, proc, scalars)
		x.installInput(loads)
		for it := 0; it < iters; it++ {
			for _, ns := range sched.nests {
				x.runNest(ns)
			}
		}
		stores[x.me] = x.store
		marks[x.me] = x.has
	}
	engine := opt.Engine
	if engine == EngineAuto {
		if opt.TransportTracer != nil {
			engine = EngineGoroutines
		} else {
			engine = EngineEvents
		}
	}
	var transport machine.Stats
	simStart := time.Now()
	if engine == EngineGoroutines {
		mach, err := machine.New(ss.Grid, vcfg)
		if err != nil {
			return Result{}, err
		}
		if transport, err = mach.Run(func(proc *machine.Proc) { body(proc) }); err != nil {
			return Result{}, err
		}
	} else {
		mach, err := machine.NewEvent(ss.Grid, vcfg)
		if err != nil {
			return Result{}, err
		}
		if transport, err = mach.Run(func(proc *machine.EventProc) { body(proc) }); err != nil {
			return Result{}, err
		}
	}
	simWall := time.Since(simStart)

	// Timing pass: replay the per-element engine's event timeline
	// single-threadedly. The naive cost model is value-independent, so
	// this reproduces RunExact's Stats exactly.
	stats := sched.replayStats(iters, cfg)

	// Assemble the global state: each element from its first owner.
	// Ranks are scanned outermost in ascending order and an element is
	// filled only once, which is the same first-owner rule as the old
	// per-element rank scan but skips the (many, at large N) processors
	// whose lazily-allocated marks for an array were never touched.
	out := ir.NewStorage(p)
	filled := make([][]bool, len(sched.arrays))
	for a, am := range sched.arrays {
		filled[a] = make([]bool, am.size)
	}
	for r := 0; r < nprocs; r++ {
		for a, am := range sched.arrays {
			mk := marks[r][a]
			if mk == nil {
				continue
			}
			elems := out[am.name]
			for off, ok := range mk {
				if ok && !filled[a][off] {
					filled[a][off] = true
					_, idx := sched.decode(mkElem(a, off))
					elems[subKey(idx)] = stores[r][a][off]
				}
			}
		}
	}
	return Result{Values: out, Stats: stats, Transport: transport, SimWall: simWall}, nil
}
