// The per-element reference engine: the original naive backend kept as
// the oracle behind RunExact, mirroring the CountNestOptsExact
// discipline. Every remote operand crosses the network as its own
// one-word message, exactly as a 1993 naive compiler would emit it; the
// batched engine in schedule.go/executor.go must reproduce its Values
// and Stats bit for bit (TestBatchedMatchesExact).

package exec

import (
	"fmt"
	"math"
	"sort"

	"dmcc/internal/core"
	"dmcc/internal/ir"
	"dmcc/internal/machine"
)

// RunExact executes the program with the per-element reference engine.
//
// Unlike Run it performs no message batching, so a processor may emit a
// full boundary row (m words, plus reduction traffic) before its peer
// drains any of it; with the old minExecChanCap floor gone, callers are
// responsible for sizing cfg.ChanCap above the largest per-pair burst
// (m*m words is always safe) or the simulated machine deadlocks. That
// is precisely the crutch the batched engine removes — use RunExact
// only as a differential oracle.
func RunExact(p *ir.Program, ss *core.SchemeSet, bind map[string]int, scalars map[string]float64,
	iters int, cfg machine.Config, input ir.Storage) (Result, error) {

	if err := validate(p, ss); err != nil {
		return Result{}, err
	}
	if !p.Iterative {
		iters = 1
	}

	nprocs := ss.Grid.Size()
	locals := make([]ir.Storage, nprocs)
	mach, err := machine.New(ss.Grid, cfg)
	if err != nil {
		return Result{}, err
	}

	st, err := mach.Run(func(proc *machine.Proc) {
		e := &engine{
			p: p, ss: ss, bind: bind, scalars: scalars,
			proc:     proc,
			store:    ir.NewStorage(p),
			partials: map[string]float64{},
			pending:  map[string][]int{},
		}
		// Load owned (and replicated) elements from the input, free of
		// charge: input distribution cost is measured separately by
		// package data.
		for name, elems := range input {
			for key, v := range elems {
				idx := parseKey(key)
				if e.owns(name, idx) {
					e.store[name][key] = v
				}
			}
		}
		for it := 0; it < iters; it++ {
			for _, nest := range p.Nests {
				e.runNest(nest)
			}
		}
		locals[proc.Rank()] = e.store
	})
	if err != nil {
		return Result{}, err
	}

	// Assemble the global state: each element from its first owner.
	out := ir.NewStorage(p)
	for r := 0; r < nprocs; r++ {
		for name, elems := range locals[r] {
			for key, v := range elems {
				if _, done := out[name][key]; !done {
					out[name][key] = v
				}
			}
		}
	}
	// The per-element engine is its own transport: one word per message.
	return Result{Values: out, Stats: st, Transport: st}, nil
}

// engine is the per-processor interpreter state.
type engine struct {
	p       *ir.Program
	ss      *core.SchemeSet
	bind    map[string]int
	scalars map[string]float64
	proc    *machine.Proc
	store   ir.Storage
	// partials holds this processor's running partial sums for reduce
	// statements, keyed by array!elem.
	partials map[string]float64
	// pending maps array!elem to the sorted contributor ranks whose
	// partials have not been combined yet. Maintained identically at
	// every processor (the walk is lockstep and deterministic).
	pending map[string][]int
}

func (e *engine) owns(arr string, idx []int) bool {
	return e.ss.Schemes[arr].IsOwner(e.ss.Grid, e.proc.Rank(), idx...)
}

func (e *engine) owners(arr string, idx []int) []int {
	return e.ss.Schemes[arr].Owners(e.ss.Grid, idx...)
}

// runNest walks the nest's iteration space in lockstep with every other
// processor, executing owned statement instances.
func (e *engine) runNest(nest *ir.Nest) {
	env := map[string]int{}
	for k, v := range e.bind {
		env[k] = v
	}
	var walk func(level int)
	walk = func(level int) {
		for _, stmt := range nest.Stmts {
			if stmt.Depth == level && !nest.IsPost(stmt) {
				e.instance(nest, stmt, env)
			}
		}
		if level < len(nest.Loops) {
			l := nest.Loops[level]
			lo, hi := l.Lo.Eval(env), l.Hi.Eval(env)
			if l.Step >= 0 {
				for v := lo; v <= hi; v++ {
					env[l.Index] = v
					walk(level + 1)
				}
			} else {
				for v := lo; v >= hi; v-- {
					env[l.Index] = v
					walk(level + 1)
				}
			}
			delete(env, l.Index)
		}
		for _, stmt := range nest.Stmts {
			if stmt.Depth == level && nest.IsPost(stmt) {
				e.instance(nest, stmt, env)
			}
		}
	}
	walk(0)
	// Combine any reductions still pending at nest end.
	var keys []string
	for k := range e.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.finalize(k)
	}
}

// instance executes one dynamic statement instance.
func (e *engine) instance(nest *ir.Nest, stmt *ir.Stmt, env map[string]int) {
	lhsIdx := make([]int, len(stmt.LHS.Subs))
	for k, s := range stmt.LHS.Subs {
		lhsIdx[k] = s.Eval(env)
	}
	lhsKey := pkey(stmt.LHS.Array, lhsIdx)

	// Resolve read elements.
	type readElem struct {
		ref ir.Ref
		idx []int
		key string
	}
	var reads []readElem
	for _, rd := range stmt.Reads {
		idx := make([]int, len(rd.Subs))
		for k, s := range rd.Subs {
			idx[k] = s.Eval(env)
		}
		reads = append(reads, readElem{ref: rd, idx: idx, key: pkey(rd.Array, idx)})
	}

	// Any pending reduction read by this instance (other than the
	// statement's own accumulator) must be combined first; a write to a
	// pending element also forces combining.
	for _, rd := range reads {
		if stmt.Reduce && rd.key == lhsKey {
			continue
		}
		if _, pend := e.pending[rd.key]; pend {
			e.finalize(rd.key)
		}
	}
	if _, pend := e.pending[lhsKey]; pend && !stmt.Reduce {
		e.finalize(lhsKey)
	}

	// Executor set: anchor owners for reductions, LHS owners otherwise.
	var executors []int
	if stmt.Reduce {
		anchor := anchorOf(stmt)
		if anchor >= 0 {
			executors = e.owners(reads[anchor].ref.Array, reads[anchor].idx)
		} else {
			executors = e.owners(stmt.LHS.Array, lhsIdx)
		}
	} else {
		executors = e.owners(stmt.LHS.Array, lhsIdx)
	}

	// Ship remote operands: for each read element and each executor that
	// lacks it, the element's first owner sends one word. (The reduce
	// accumulator is never shipped; it lives in the partial store.)
	values := map[string]float64{}
	me := e.proc.Rank()
	amExec := contains(executors, me)
	for _, rd := range reads {
		if stmt.Reduce && rd.key == lhsKey {
			continue
		}
		owners := e.owners(rd.ref.Array, rd.idx)
		src := owners[0]
		for _, ex := range executors {
			if contains(owners, ex) {
				if ex == me {
					values[rd.key] = e.store[rd.ref.Array][rd.key[len(rd.ref.Array)+1:]]
				}
				continue
			}
			switch me {
			case src:
				e.proc.SendValue(ex, e.store[rd.ref.Array][rd.key[len(rd.ref.Array)+1:]])
			case ex:
				values[rd.key] = e.proc.RecvValue(src)
			}
		}
	}

	if stmt.Reduce {
		// Record the contributor (identically at every processor).
		contrib := executors[0]
		list := e.pending[lhsKey]
		if len(list) == 0 || !contains(list, contrib) {
			e.pending[lhsKey] = insertSorted(list, contrib)
		}
		if !amExec || me != contrib {
			return
		}
		// Evaluate with the accumulator redirected to the partial store.
		v := e.eval(stmt, env, values, lhsKey, true)
		e.partials[lhsKey] = v
		e.proc.Compute(stmt.Flops)
		return
	}

	if !amExec {
		return
	}
	v := e.eval(stmt, env, values, lhsKey, false)
	if math.IsNaN(v) {
		panic(fmt.Sprintf("exec: NaN at %s line %d", stmt.LHS, stmt.Line))
	}
	e.store[stmt.LHS.Array][lhsKey[len(stmt.LHS.Array)+1:]] = v
	e.proc.Compute(stmt.Flops)
}

// eval evaluates a statement's RHS with remote values spliced in and,
// for reductions, the accumulator read from the partial store.
func (e *engine) eval(stmt *ir.Stmt, env map[string]int, remote map[string]float64, accKey string, reduce bool) float64 {
	load := func(r ir.Ref, idx []int) float64 {
		key := pkey(r.Array, idx)
		if reduce && key == accKey {
			return e.partials[accKey]
		}
		if v, ok := remote[key]; ok {
			return v
		}
		return e.store[r.Array][key[len(r.Array)+1:]]
	}
	return stmt.RHS.Eval(env, load, e.scalars)
}

// finalize combines a pending reduction: contributors send their partials
// to the accumulator's first owner, which folds them into the stored
// value and redistributes the total to all owners.
func (e *engine) finalize(key string) {
	contribs := e.pending[key]
	delete(e.pending, key)
	arr, idx := splitKey(key)
	owners := e.owners(arr, idx)
	root := owners[0]
	me := e.proc.Rank()
	ekey := key[len(arr)+1:]

	if me == root {
		total := e.store[arr][ekey]
		for _, c := range contribs {
			var part float64
			if c == root {
				part = e.partials[key]
			} else {
				part = e.proc.RecvValue(c)
			}
			total += part
			e.proc.Compute(1)
		}
		e.store[arr][ekey] = total
		for _, o := range owners {
			if o != root {
				e.proc.SendValue(o, total)
			}
		}
	} else {
		if contains(contribs, me) {
			e.proc.SendValue(root, e.partials[key])
		}
		if contains(owners, me) {
			e.store[arr][ekey] = e.proc.RecvValue(root)
		}
	}
	delete(e.partials, key)
}
