// Package matrix provides the dense linear-algebra substrate: matrix and
// vector helpers, reproducible test-system generators, and the sequential
// reference algorithms (Jacobi, SOR, Gauss elimination) that the parallel
// kernels are checked against.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major m x n matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates an m x n zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j), 0-based.
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns element (i, j), 0-based.
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// Row returns a view of row i.
func (a *Dense) Row(i int) []float64 { return a.Data[i*a.Cols : (i+1)*a.Cols] }

// Clone deep-copies the matrix.
func (a *Dense) Clone() *Dense {
	b := NewDense(a.Rows, a.Cols)
	copy(b.Data, a.Data)
	return b
}

// MulVec computes y = A x.
func (a *Dense) MulVec(x []float64) []float64 {
	if len(x) != a.Cols {
		panic("matrix: dimension mismatch in MulVec")
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul computes C = A B.
func (a *Dense) Mul(b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("matrix: dimension mismatch in Mul")
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			crow := c.Row(i)
			for j := range brow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// DiagonallyDominant generates a reproducible random m x m system A x = b
// with strict diagonal dominance (so Jacobi and SOR converge) and a known
// solution vector x*; it returns A, b, and x*.
func DiagonallyDominant(m int, seed int64) (*Dense, []float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := NewDense(m, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			v := rng.Float64()*2 - 1
			a.Set(i, j, v)
			sum += math.Abs(v)
		}
		a.Set(i, i, sum+1+rng.Float64())
	}
	xStar := make([]float64, m)
	for i := range xStar {
		xStar[i] = rng.Float64()*4 - 2
	}
	b := a.MulVec(xStar)
	return a, b, xStar
}

// RandomDense generates a reproducible random matrix with entries in
// [-1, 1).
func RandomDense(rows, cols int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := NewDense(rows, cols)
	for i := range a.Data {
		a.Data[i] = rng.Float64()*2 - 1
	}
	return a
}

// RandomVector generates a reproducible random vector.
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// MaxAbsDiff returns the infinity-norm distance between two vectors.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: length mismatch")
	}
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// Residual returns the infinity norm of A x - b.
func Residual(a *Dense, x, b []float64) float64 {
	ax := a.MulVec(x)
	return MaxAbsDiff(ax, b)
}

// JacobiSeq runs iters iterations of Jacobi's method (the Section 3
// listing: V = A X; X += (B - V) / diag(A)) starting from x0 and returns
// the final X. It is the bit-level reference for the parallel kernels.
func JacobiSeq(a *Dense, b, x0 []float64, iters int) []float64 {
	m := a.Rows
	x := append([]float64(nil), x0...)
	v := make([]float64, m)
	for k := 0; k < iters; k++ {
		for i := 0; i < m; i++ {
			v[i] = 0
			row := a.Row(i)
			for j := 0; j < m; j++ {
				v[i] += row[j] * x[j]
			}
		}
		for i := 0; i < m; i++ {
			x[i] = x[i] + (b[i]-v[i])/a.At(i, i)
		}
	}
	return x
}

// SORSeq runs iters iterations of the successive over-relaxation method
// (the Section 5 listing) with relaxation factor omega and returns the
// final X. Note the in-place update: iteration i already uses the new
// X(1..i-1).
func SORSeq(a *Dense, b, x0 []float64, omega float64, iters int) []float64 {
	m := a.Rows
	x := append([]float64(nil), x0...)
	for k := 0; k < iters; k++ {
		for i := 0; i < m; i++ {
			v := 0.0
			row := a.Row(i)
			for j := 0; j < m; j++ {
				v += row[j] * x[j]
			}
			x[i] = x[i] + omega*(b[i]-v)/a.At(i, i)
		}
	}
	return x
}

// GaussSeq solves A x = b by the Section 6 listing: triangularization
// without pivoting followed by the paper's back-substitution with the
// V accumulator. It returns x. A and b are not modified.
func GaussSeq(a0 *Dense, b0 []float64) []float64 {
	m := a0.Rows
	a := a0.Clone()
	b := append([]float64(nil), b0...)
	// Matrix triangularization (lines 2-8).
	for k := 0; k < m; k++ {
		for i := k + 1; i < m; i++ {
			l := a.At(i, k) / a.At(k, k)
			b[i] -= l * b[k]
			for j := k + 1; j < m; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	// Triangular system U x = y (lines 10-17).
	v := make([]float64, m)
	x := make([]float64, m)
	for j := m - 1; j >= 0; j-- {
		x[j] = (b[j] - v[j]) / a.At(j, j)
		for i := j - 1; i >= 0; i-- {
			v[i] += a.At(i, j) * x[j]
		}
	}
	return x
}

// GaussPivotSeq solves A x = b by Gauss elimination with partial (row)
// pivoting — the numerical-stability extension of the Section 6
// algorithm. It returns x and the pivot permutation applied (perm[k] =
// original row index used as the k-th pivot). A and b are not modified.
func GaussPivotSeq(a0 *Dense, b0 []float64) ([]float64, []int) {
	m := a0.Rows
	a := a0.Clone()
	b := append([]float64(nil), b0...)
	perm := make([]int, m)
	rowID := make([]int, m)
	for i := range rowID {
		rowID[i] = i
	}
	for k := 0; k < m; k++ {
		// Pick the largest |A(i,k)| for i >= k.
		piv := k
		for i := k + 1; i < m; i++ {
			if math.Abs(a.At(i, k)) > math.Abs(a.At(piv, k)) {
				piv = i
			}
		}
		if piv != k {
			ra, rb := a.Row(k), a.Row(piv)
			for j := 0; j < m; j++ {
				ra[j], rb[j] = rb[j], ra[j]
			}
			b[k], b[piv] = b[piv], b[k]
			rowID[k], rowID[piv] = rowID[piv], rowID[k]
		}
		perm[k] = rowID[k]
		for i := k + 1; i < m; i++ {
			l := a.At(i, k) / a.At(k, k)
			b[i] -= l * b[k]
			for j := k + 1; j < m; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	// Back substitution (paper style, with the V accumulator).
	v := make([]float64, m)
	x := make([]float64, m)
	for j := m - 1; j >= 0; j-- {
		x[j] = (b[j] - v[j]) / a.At(j, j)
		for i := j - 1; i >= 0; i-- {
			v[i] += a.At(i, j) * x[j]
		}
	}
	return x, perm
}

// NearSingularLeading generates a reproducible system whose leading pivot
// is tiny, so Gauss elimination without pivoting loses accuracy while
// partial pivoting stays stable.
func NearSingularLeading(m int, eps float64, seed int64) (*Dense, []float64, []float64) {
	a, _, _ := DiagonallyDominant(m, seed)
	a.Set(0, 0, eps)
	xStar := RandomVector(m, seed+1)
	b := a.MulVec(xStar)
	return a, b, xStar
}
