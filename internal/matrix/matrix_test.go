package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(1, 2, 5)
	if a.At(1, 2) != 5 || a.At(0, 0) != 0 {
		t.Fatal("At/Set wrong")
	}
	r := a.Row(1)
	if len(r) != 3 || r[2] != 5 {
		t.Fatal("Row wrong")
	}
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 0 {
		t.Fatal("Clone aliases")
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 3)
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("y = %v", y)
	}
}

func TestMul(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			b.Set(i, j, float64(i*2+j+1))
		}
	}
	c := a.Mul(b)
	// [1 2 3; 4 5 6] * [1 2; 3 4; 5 6] = [22 28; 49 64]
	want := [][]float64{{22, 28}, {49, 64}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c = %+v", c)
			}
		}
	}
}

func TestMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 2))
}

func TestDiagonallyDominantIsDominantAndReproducible(t *testing.T) {
	a, b, xs := DiagonallyDominant(20, 42)
	for i := 0; i < 20; i++ {
		sum := 0.0
		for j := 0; j < 20; j++ {
			if i != j {
				sum += math.Abs(a.At(i, j))
			}
		}
		if math.Abs(a.At(i, i)) <= sum {
			t.Fatalf("row %d not dominant", i)
		}
	}
	if Residual(a, xs, b) > 1e-9 {
		t.Fatal("b != A x*")
	}
	a2, b2, xs2 := DiagonallyDominant(20, 42)
	if MaxAbsDiff(a.Data, a2.Data) != 0 || MaxAbsDiff(b, b2) != 0 || MaxAbsDiff(xs, xs2) != 0 {
		t.Fatal("not reproducible")
	}
	a3, _, _ := DiagonallyDominant(20, 43)
	if MaxAbsDiff(a.Data, a3.Data) == 0 {
		t.Fatal("different seeds give identical systems")
	}
}

func TestJacobiConverges(t *testing.T) {
	a, b, xs := DiagonallyDominant(24, 7)
	x0 := make([]float64, 24)
	x := JacobiSeq(a, b, x0, 200)
	if d := MaxAbsDiff(x, xs); d > 1e-8 {
		t.Fatalf("Jacobi did not converge: %v", d)
	}
}

func TestSORConvergesFasterThanJacobi(t *testing.T) {
	a, b, xs := DiagonallyDominant(24, 9)
	x0 := make([]float64, 24)
	iters := 4
	xj := JacobiSeq(a, b, x0, iters)
	xs1 := SORSeq(a, b, x0, 1.0, iters) // omega=1: Gauss-Seidel
	dj := MaxAbsDiff(xj, xs)
	ds := MaxAbsDiff(xs1, xs)
	if ds >= dj {
		t.Fatalf("SOR (%v) should beat Jacobi (%v) after %d iters", ds, dj, iters)
	}
}

func TestGaussSolves(t *testing.T) {
	a, b, xs := DiagonallyDominant(30, 11)
	x := GaussSeq(a, b)
	if d := MaxAbsDiff(x, xs); d > 1e-8 {
		t.Fatalf("Gauss error %v", d)
	}
	// Inputs untouched.
	a2, b2, _ := DiagonallyDominant(30, 11)
	if MaxAbsDiff(a.Data, a2.Data) != 0 || MaxAbsDiff(b, b2) != 0 {
		t.Fatal("GaussSeq modified inputs")
	}
}

// Property: GaussSeq solves random diagonally dominant systems to high
// accuracy.
func TestGaussQuick(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw)%20 + 2
		a, b, xs := DiagonallyDominant(m, seed)
		x := GaussSeq(a, b)
		return MaxAbsDiff(x, xs) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualAndDiff(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	if Residual(a, []float64{1, 2}, []float64{1, 2}) != 0 {
		t.Fatal("residual of exact solution nonzero")
	}
	if MaxAbsDiff([]float64{1, 5}, []float64{2, 3}) != 2 {
		t.Fatal("MaxAbsDiff wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	MaxAbsDiff([]float64{1}, []float64{1, 2})
}

func TestRandomHelpers(t *testing.T) {
	m1 := RandomDense(3, 4, 5)
	m2 := RandomDense(3, 4, 5)
	if MaxAbsDiff(m1.Data, m2.Data) != 0 {
		t.Fatal("RandomDense not reproducible")
	}
	v1 := RandomVector(6, 5)
	v2 := RandomVector(6, 5)
	if MaxAbsDiff(v1, v2) != 0 {
		t.Fatal("RandomVector not reproducible")
	}
	for _, x := range m1.Data {
		if x < -1 || x >= 1 {
			t.Fatal("entry out of range")
		}
	}
}

func TestGaussPivotSeqSolvesAndPermutes(t *testing.T) {
	m := 20
	a, b, xs := DiagonallyDominant(m, 51)
	x, perm := GaussPivotSeq(a, b)
	if d := MaxAbsDiff(x, xs); d > 1e-8 {
		t.Fatalf("pivoting error %v", d)
	}
	// perm is a permutation of 0..m-1.
	seen := make([]bool, m)
	for _, p := range perm {
		if p < 0 || p >= m || seen[p] {
			t.Fatalf("perm invalid: %v", perm)
		}
		seen[p] = true
	}
	// Inputs untouched.
	a2, b2, _ := DiagonallyDominant(m, 51)
	if MaxAbsDiff(a.Data, a2.Data) != 0 || MaxAbsDiff(b, b2) != 0 {
		t.Fatal("GaussPivotSeq modified inputs")
	}
}

func TestNearSingularLeadingStabilityGap(t *testing.T) {
	m := 24
	a, b, xs := NearSingularLeading(m, 1e-13, 53)
	if math.Abs(a.At(0, 0)) != 1e-13 {
		t.Fatal("leading pivot not tiny")
	}
	plain := GaussSeq(a, b)
	piv, _ := GaussPivotSeq(a, b)
	errPlain := MaxAbsDiff(plain, xs)
	errPiv := MaxAbsDiff(piv, xs)
	if errPiv > 1e-8 {
		t.Fatalf("pivoting inaccurate: %v", errPiv)
	}
	if errPlain < errPiv*1e3 {
		t.Fatalf("no stability gap: plain %v vs pivot %v", errPlain, errPiv)
	}
}

// Property: on random well-conditioned systems GaussPivotSeq and GaussSeq
// agree to high accuracy (pivoting changes row order, not the answer).
func TestPivotVsPlainQuick(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw)%16 + 3
		a, b, _ := DiagonallyDominant(m, seed)
		x1 := GaussSeq(a, b)
		x2, _ := GaussPivotSeq(a, b)
		return MaxAbsDiff(x1, x2) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
